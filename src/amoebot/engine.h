// The strong scheduler's run loop, extracted into an Engine (paper §2.2).
//
// An asynchronous round is a minimal execution fragment in which every
// particle is activated at least once; the Engine counts rounds exactly that
// way, so measured round counts are the quantity the paper's theorems bound.
//
// Orders:
//   RoundRobin   — fixed id order each round,
//   RandomPerm   — a fresh random permutation each round,
//   RandomStream — i.i.d. uniform activations; rounds counted by coverage
//                  (the adversary-friendliest fair order we provide).
//
// The Engine improves on the seed scheduler (kept verbatim as
// run_reference()) in three ways, none of which changes observable behavior
// for a fixed seed — engine_test asserts bit-for-bit identical RunResults:
//
//  * Incremental termination. Instead of an O(n) all-final rescan at every
//    round boundary, the Engine maintains the count of non-final particles.
//    After each activation it re-evaluates finality for exactly the
//    particles the activation may have mutated, as recorded by the
//    ParticleView TouchList (every non-const state access and movement
//    partner). This is exact under the Algo contract below.
//
//  * Template hooks. The post-activation observation hook is a template
//    parameter invoked directly (inlined, zero-cost when absent) instead of
//    a per-activation std::function indirection.
//
//  * Per-run metrics. RunResult reports movements, wall time, and the peak
//    dense-occupancy extent next to rounds and activations.
//
// Algo requirements:
//   using State = ...;
//   void activate(ParticleView<State>& p);
//   bool is_final(const System<State>& sys, ParticleId p) const;
// Contract for incremental tracking: is_final(sys, p) must depend only on
// particle p's own state and body (true for every algorithm in this repo —
// protocols encode neighborhood conditions into the particle's own memory,
// e.g. DLE's `terminated` flag). Hooks must not mutate particle state. An
// algorithm violating the contract can still be driven with run_reference().
#pragma once

#include <chrono>
#include <numeric>
#include <vector>

#include "amoebot/view.h"
#include "telemetry/telemetry.h"
#include "util/rng.h"
#include "util/snapshot.h"
#include "util/timing.h"

namespace pm::amoebot {

enum class Order { RoundRobin, RandomPerm, RandomStream };

[[nodiscard]] const char* order_name(Order o) noexcept;

struct RunOptions {
  Order order = Order::RandomPerm;
  std::uint64_t seed = 1;
  long max_rounds = 1'000'000;
};

struct RunResult {
  long rounds = 0;
  long long activations = 0;
  bool completed = false;  // all particles reached a final state
  // Per-run metrics (filled by Engine; run_reference leaves them zero).
  long long moves = 0;            // movement operations performed
  double wall_ms = 0.0;           // wall-clock time of the run loop
  long long peak_occupancy_cells = 0;  // peak dense-occupancy box size
};

// No-op post-activation hook (the default Engine hook parameter).
struct NoHook {
  template <typename Sys>
  void operator()(Sys&, ParticleId) const {}
};

// Incremental finality tracking, shared by the sequential Engine and
// exec::ParallelEngine so the exactness contract lives in one place: flags
// mirror is_final per particle, the non-final count replaces the seed
// scheduler's O(n) all-final rescan, and after every activation exactly the
// TouchList's particles are re-evaluated (with a full recount as the
// overflow fallback). Exact under the Algo contract documented above.
template <typename Algo>
class FinalityTracker {
 public:
  using State = typename Algo::State;

  // One-time O(n) pass; afterwards the count is maintained incrementally.
  void init(const System<State>& sys, const Algo& algo) {
    final_.assign(static_cast<std::size_t>(sys.particle_count()), 0);
    recount(sys, algo);
  }

  [[nodiscard]] bool all_final() const { return nonfinal_ == 0; }
  [[nodiscard]] bool is_final_flag(ParticleId p) const {
    return final_[static_cast<std::size_t>(p)] != 0;
  }
  // The raw flag array (exec::Batcher consumes it during batch planning).
  [[nodiscard]] const std::vector<char>& flags() const { return final_; }

  // Re-evaluates exactly the particles one activation may have mutated.
  // `touches` must already include the activated particle itself.
  void process(const System<State>& sys, const Algo& algo, const TouchList& touches) {
    if (touches.overflowed()) {
      recount(sys, algo);
    } else {
      for (int i = 0; i < touches.size(); ++i) refresh(sys, algo, touches[i]);
    }
  }

  void refresh(const System<State>& sys, const Algo& algo, ParticleId q) {
    const bool f = algo.is_final(sys, q);
    char& flag = final_[static_cast<std::size_t>(q)];
    if (static_cast<bool>(flag) != f) {
      nonfinal_ += f ? -1 : 1;
      flag = f ? 1 : 0;
    }
  }

  void recount(const System<State>& sys, const Algo& algo) {
    nonfinal_ = 0;
    for (ParticleId p = 0; p < sys.particle_count(); ++p) {
      final_[static_cast<std::size_t>(p)] = algo.is_final(sys, p) ? 1 : 0;
      if (!final_[static_cast<std::size_t>(p)]) ++nonfinal_;
    }
  }

 private:
  std::vector<char> final_;
  int nonfinal_ = 0;
};

// Fills the per-run metrics every engine reports the same way.
inline RunResult& finalize_metrics(RunResult& res, const SystemCore& sys,
                                   WallClock::time_point t0, long long moves0) {
  res.moves = sys.moves() - moves0;
  res.peak_occupancy_cells = sys.peak_occupancy_cells();
  res.wall_ms = ms_since(t0);
  return res;
}

// Produces each round's activation sequence for an Order, shared by the
// sequential Engine and exec::ParallelEngine so the order semantics cannot
// drift between them. RandomStream's draws are configuration-independent
// (the coverage-counted round boundary depends only on which ids come up),
// so materializing the whole round up front is observably identical to the
// seed scheduler's interleaved draws — engine_test's differential runs
// against run_reference() pin that down.
class RoundSequencer {
 public:
  void init(int n) {
    order_.resize(static_cast<std::size_t>(n));
    std::iota(order_.begin(), order_.end(), 0);
  }

  // Checkpoint/resume. The persistent cross-round state is `order_` alone
  // (RandomPerm shuffles it in place; RandomStream's buffers are rebuilt
  // every round), so saving at a round boundary is exact.
  void save(Snapshot& snap) const {
    snap.put(order_.size());
    for (const ParticleId p : order_) snap.put_i(p);
  }
  void restore(const Snapshot& snap) {
    order_.resize(static_cast<std::size_t>(snap.get()));
    for (ParticleId& p : order_) p = static_cast<ParticleId>(snap.get_i());
  }

  // Returns the round's sequence; the reference stays valid until the next
  // call. Advances `rng` exactly as the seed scheduler's loop would.
  const std::vector<ParticleId>& next_round(Order order, Rng& rng) {
    switch (order) {
      case Order::RoundRobin:
        return order_;
      case Order::RandomPerm:
        rng.shuffle(order_);
        return order_;
      case Order::RandomStream: {
        // Keep drawing uniformly random particles until every particle has
        // come up at least once — that fragment is one round.
        const auto n = static_cast<std::uint64_t>(order_.size());
        stream_.clear();
        covered_.assign(order_.size(), 0);
        std::size_t left = order_.size();
        while (left > 0) {
          const auto p = static_cast<ParticleId>(rng.below(n));
          stream_.push_back(p);
          if (!covered_[static_cast<std::size_t>(p)]) {
            covered_[static_cast<std::size_t>(p)] = 1;
            --left;
          }
        }
        return stream_;
      }
    }
    return order_;
  }

 private:
  std::vector<ParticleId> order_;
  std::vector<ParticleId> stream_;   // RandomStream round buffer
  std::vector<char> covered_;        // RandomStream coverage marks
};

// THE engine checkpoint word layout — one definition, used by both the
// sequential Engine and exec::ParallelEngine, which is what makes their
// snapshots interchangeable (a run saved under either engine resumes under
// either): mark, rng state, round permutation, rounds, activations, moves0.
inline void save_engine_core(Snapshot& snap, const Rng& rng, const RoundSequencer& seq,
                             const RunResult& res, long long moves0) {
  snap.put_mark(kSnapEngine);
  for (const std::uint64_t w : rng.state()) snap.put(w);
  seq.save(snap);
  snap.put_i(res.rounds);
  snap.put_i(res.activations);
  snap.put_i(moves0);
}

inline void restore_engine_core(const Snapshot& snap, Rng& rng, RoundSequencer& seq,
                                RunResult& res, long long& moves0) {
  snap.expect_mark(kSnapEngine);
  std::array<std::uint64_t, 4> s;
  for (std::uint64_t& w : s) w = snap.get();
  rng.set_state(s);
  seq.restore(snap);
  res.rounds = snap.get_i();
  res.activations = snap.get_i();
  moves0 = snap.get_i();
}

template <typename Algo, typename Hook = NoHook>
class Engine {
 public:
  using State = typename Algo::State;

  Engine(System<State>& sys, Algo& algo, const RunOptions& opts, Hook hook = Hook{})
      : sys_(sys), algo_(algo), opts_(opts), hook_(std::move(hook)) {}

  RunResult run() {
    start();
    while (!step_round()) {
    }
    return finish();
  }

  // --- steppable API (pipeline::DleStage and the checkpoint path) ---
  //
  // start(); while (!step_round()) ...; finish();  is exactly run(), with
  // the loop in the caller's hands. step_round() executes one asynchronous
  // round and returns true once the run is over (all particles final, or
  // the round budget exhausted) with result().completed set accordingly.

  void start() {
    t0_ = WallClock::now();
    moves0_ = sys_.moves();
    res_ = RunResult{};
    const int n = sys_.particle_count();
    if (n == 0) {
      res_.completed = true;
      trivial_ = true;
      return;
    }
    trivial_ = false;
    rng_ = Rng(opts_.seed);
    sequencer_.init(n);
    tracker_.init(sys_, algo_);
  }

  bool step_round() {
    if (trivial_) return true;
    if (tracker_.all_final()) {
      res_.completed = true;
      return true;
    }
    if (res_.rounds >= opts_.max_rounds) {
      res_.completed = false;
      return true;
    }
    // Telemetry at round granularity: the per-activation cost is amortized
    // to ~zero, and the clock is only read when metrics are collected, so a
    // plain run pays two shard increments per round.
    const bool timed = telemetry::enabled();
    const auto rt0 = timed ? WallClock::now() : WallClock::time_point{};
    const long long acts0 = res_.activations;
    for (const ParticleId p : sequencer_.next_round(opts_.order, rng_)) {
      activate_one(p, res_);
    }
    ++res_.rounds;
    {
      static const telemetry::Counter c_rounds("engine.rounds");
      static const telemetry::Counter c_acts("engine.activations");
      const auto acts = static_cast<std::uint64_t>(res_.activations - acts0);
      c_rounds.inc();
      c_acts.add(acts);
      if (timed) {
        static const telemetry::Histogram h_round("engine.round_ns", telemetry::Kind::Time);
        static const telemetry::Histogram h_act("engine.activation_ns",
                                                telemetry::Kind::Time);
        const auto ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(WallClock::now() - rt0)
                .count());
        h_round.observe(ns);
        // Mean activation latency of this round — per-activation clocking
        // would dominate the ~30ns activations it is measuring.
        h_act.observe(acts > 0 ? ns / acts : 0);
      }
    }
    return false;
  }

  [[nodiscard]] const RunResult& result() const { return res_; }

  RunResult finish() { return finalize_metrics(res_, sys_, t0_, moves0_); }

  // --- checkpoint/resume ---
  //
  // Valid at round boundaries (between step_round() calls). The word layout
  // is shared with exec::ParallelEngine, so a snapshot taken under either
  // engine resumes under either (their observable behavior is identical).
  // The finality tracker is rebuilt by recount on restore — exact under the
  // Algo contract (is_final depends only on the particle's own state).

  void save(Snapshot& snap) const {
    save_engine_core(snap, rng_, sequencer_, res_, moves0_);
  }

  // Restores a run saved mid-flight; the system must already hold the
  // snapshotted configuration. Replaces start().
  void restore(const Snapshot& snap) {
    t0_ = WallClock::now();
    res_ = RunResult{};
    trivial_ = sys_.particle_count() == 0;
    if (trivial_) {
      res_.completed = true;
    } else {
      tracker_.init(sys_, algo_);
    }
    restore_engine_core(snap, rng_, sequencer_, res_, moves0_);
  }

 private:
  void activate_one(ParticleId p, RunResult& res) {
    // A particle in a final state performs none of the activation steps.
    if (tracker_.is_final_flag(p)) return;
    TouchList touches;
    ParticleView<State> view(sys_, p, &touches);
    algo_.activate(view);
    ++res.activations;
    touches.add(p);  // the activated particle is always re-evaluated
    tracker_.process(sys_, algo_, touches);
    hook_(sys_, p);
  }

  System<State>& sys_;
  Algo& algo_;
  RunOptions opts_;
  Hook hook_;
  FinalityTracker<Algo> tracker_;
  RoundSequencer sequencer_;
  Rng rng_{0};
  RunResult res_;
  WallClock::time_point t0_{};
  long long moves0_ = 0;
  bool trivial_ = false;
};

template <typename Algo>
RunResult run(System<typename Algo::State>& sys, Algo& algo, const RunOptions& opts) {
  Engine<Algo> engine(sys, algo, opts);
  return engine.run();
}

template <typename Algo, typename Hook>
RunResult run(System<typename Algo::State>& sys, Algo& algo, const RunOptions& opts,
              Hook hook) {
  Engine<Algo, Hook> engine(sys, algo, opts, std::move(hook));
  return engine.run();
}

// The seed scheduler's loop, kept verbatim as the behavioral reference: an
// O(n) all-final scan at every round boundary and a fresh is_final
// evaluation per activation. engine_test asserts Engine::run() matches it
// bit-for-bit; it is also the fallback for algorithms whose is_final
// violates the locality contract above.
template <typename Algo, typename Hook = NoHook>
RunResult run_reference(System<typename Algo::State>& sys, Algo& algo,
                        const RunOptions& opts, Hook hook = Hook{}) {
  RunResult res;
  const int n = sys.particle_count();
  if (n == 0) {
    res.completed = true;
    return res;
  }
  Rng rng(opts.seed);
  std::vector<ParticleId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);

  auto all_final = [&] {
    for (ParticleId p = 0; p < n; ++p) {
      if (!algo.is_final(sys, p)) return false;
    }
    return true;
  };

  auto activate_one = [&](ParticleId p) {
    if (algo.is_final(sys, p)) return;
    ParticleView<typename Algo::State> view(sys, p);
    algo.activate(view);
    ++res.activations;
    hook(sys, p);
  };

  while (res.rounds < opts.max_rounds) {
    if (all_final()) {
      res.completed = true;
      return res;
    }
    switch (opts.order) {
      case Order::RoundRobin:
        for (const ParticleId p : order) activate_one(p);
        break;
      case Order::RandomPerm:
        rng.shuffle(order);
        for (const ParticleId p : order) activate_one(p);
        break;
      case Order::RandomStream: {
        std::vector<char> covered(static_cast<std::size_t>(n), 0);
        int left = n;
        while (left > 0) {
          const auto p = static_cast<ParticleId>(rng.below(static_cast<std::uint64_t>(n)));
          activate_one(p);
          if (!covered[static_cast<std::size_t>(p)]) {
            covered[static_cast<std::size_t>(p)] = 1;
            --left;
          }
        }
        break;
      }
    }
    ++res.rounds;
  }
  res.completed = all_final();
  return res;
}

}  // namespace pm::amoebot
