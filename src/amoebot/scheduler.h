// The strong scheduler (paper §2.2): a fair sequence of atomic particle
// activations. An asynchronous round is a minimal execution fragment in
// which every particle is activated at least once; the Runner counts rounds
// exactly that way, so measured round counts are the quantity the paper's
// theorems bound.
//
// Orders:
//   RoundRobin   — fixed id order each round,
//   RandomPerm   — a fresh random permutation each round,
//   RandomStream — i.i.d. uniform activations; rounds counted by coverage
//                  (the adversary-friendliest fair order we provide).
#pragma once

#include <functional>
#include <numeric>
#include <vector>

#include "amoebot/view.h"
#include "util/rng.h"

namespace pm::amoebot {

enum class Order { RoundRobin, RandomPerm, RandomStream };

struct RunOptions {
  Order order = Order::RandomPerm;
  std::uint64_t seed = 1;
  long max_rounds = 1'000'000;
};

struct RunResult {
  long rounds = 0;
  long long activations = 0;
  bool completed = false;  // all particles reached a final state
};

// Algo requirements:
//   using State = ...;
//   void activate(ParticleView<State>& p);
//   bool is_final(const System<State>& sys, ParticleId p) const;
template <typename Algo>
RunResult run(System<typename Algo::State>& sys, Algo& algo, const RunOptions& opts,
              const std::function<void(System<typename Algo::State>&, ParticleId)>&
                  post_activation = nullptr) {
  RunResult res;
  const int n = sys.particle_count();
  if (n == 0) {
    res.completed = true;
    return res;
  }
  Rng rng(opts.seed);
  std::vector<ParticleId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);

  auto all_final = [&] {
    for (ParticleId p = 0; p < n; ++p) {
      if (!algo.is_final(sys, p)) return false;
    }
    return true;
  };

  auto activate_one = [&](ParticleId p) {
    // A particle in a final state performs none of the activation steps.
    if (algo.is_final(sys, p)) return;
    ParticleView<typename Algo::State> view(sys, p);
    algo.activate(view);
    ++res.activations;
    if (post_activation) post_activation(sys, p);
  };

  while (res.rounds < opts.max_rounds) {
    if (all_final()) {
      res.completed = true;
      return res;
    }
    switch (opts.order) {
      case Order::RoundRobin:
        for (const ParticleId p : order) activate_one(p);
        break;
      case Order::RandomPerm:
        rng.shuffle(order);
        for (const ParticleId p : order) activate_one(p);
        break;
      case Order::RandomStream: {
        // Keep activating uniformly random particles until every particle
        // has been hit at least once — that fragment is one round.
        std::vector<char> covered(static_cast<std::size_t>(n), 0);
        int left = n;
        while (left > 0) {
          const auto p = static_cast<ParticleId>(rng.below(static_cast<std::uint64_t>(n)));
          activate_one(p);
          if (!covered[static_cast<std::size_t>(p)]) {
            covered[static_cast<std::size_t>(p)] = 1;
            --left;
          }
        }
        break;
      }
    }
    ++res.rounds;
  }
  res.completed = all_final();
  return res;
}

}  // namespace pm::amoebot
