// Compatibility header: the strong scheduler's types and run() entry points
// moved to amoebot/engine.h when the run loop was extracted into the Engine
// (incremental termination tracking, template hooks, per-run metrics).
// Existing includes of this header keep working unchanged.
#pragma once

#include "amoebot/engine.h"
