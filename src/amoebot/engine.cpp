#include "amoebot/engine.h"

namespace pm::amoebot {

const char* order_name(Order o) noexcept {
  switch (o) {
    case Order::RoundRobin: return "round_robin";
    case Order::RandomPerm: return "random_perm";
    case Order::RandomStream: return "random_stream";
  }
  return "?";
}

}  // namespace pm::amoebot
