// The amoebot particle system (paper §2.2).
//
// SystemCore owns the geometric configuration: particle bodies (head/tail
// nodes, per-particle orientation offset implementing common chirality with
// anonymous rotations), the occupancy map, and the three legal movement
// operations — expand, contract, handover — with model-rule enforcement.
//
// System<State> adds the per-particle algorithm memory. Algorithm code
// accesses the system only through ParticleView (view.h), which restricts it
// to local, port-addressed reads/writes exactly as the model allows; the
// Collect engine (core/collect) is the one documented exception, driving
// SystemCore moves directly as a round-synchronous compilation of the
// paper's token protocols.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "grid/coord.h"
#include "grid/dense_occupancy.h"
#include "grid/shape.h"
#include "telemetry/telemetry.h"
#include "util/check.h"
#include "util/rng.h"

namespace pm {
class Snapshot;  // util/snapshot.h
}

namespace pm::amoebot {

using ParticleId = std::int32_t;
inline constexpr ParticleId kNoParticle = -1;

// Which occupancy index backs occupied()/particle_at():
//   Dense        — grid::DenseOccupancy flat array (the fast path),
//   Hash         — the seed engine's std::unordered_map (kept for A/B
//                  benchmarking and as the differential-check reference),
//   Differential — both, with every query checked for agreement.
enum class OccupancyMode : std::uint8_t { Dense, Hash, Differential };

// Debug builds cross-check the dense index against the hash map on every
// query; release builds take the dense path alone.
#ifdef NDEBUG
inline constexpr OccupancyMode kDefaultOccupancy = OccupancyMode::Dense;
#else
inline constexpr OccupancyMode kDefaultOccupancy = OccupancyMode::Differential;
#endif

struct Body {
  grid::Node head{};
  grid::Node tail{};      // == head when contracted
  std::uint8_t ori = 0;   // port p points toward global dir (ori + p) mod 6

  [[nodiscard]] bool expanded() const { return !(head == tail); }
};

// The deferred occupancy effects of one activation executed inside a
// parallel batch (exec/parallel_engine.h). While a batch is active, movement
// operations mutate particle bodies directly — batch members have disjoint
// footprints, so body writes never collide — but their occupancy-index
// updates are journaled here instead of applied, and committed by the engine
// in the original sequential order once the batch joins. A single activation
// performs at most one movement, hence at most two ops (a handover frees a
// node and re-fills it).
struct ActivationLog {
  struct Op {
    grid::Node v{};
    ParticleId id = kNoParticle;  // kNoParticle = erase, otherwise insert
  };
  std::array<Op, 2> ops{};
  int op_count = 0;
  int moves = 0;
  int expanded_delta = 0;

  void clear() {
    op_count = 0;
    moves = 0;
    expanded_delta = 0;
  }
};

class SystemCore {
 public:
  SystemCore() = default;
  explicit SystemCore(OccupancyMode mode) : mode_(mode) {}

  // --- construction ---

  ParticleId add_particle(grid::Node at, std::uint8_t ori);

  // Pre-sizes the particle store and the occupancy indices for n particles
  // whose initial nodes lie in [lo, hi].
  void reserve(std::size_t n, grid::Node lo, grid::Node hi);

  // --- configuration queries ---

  [[nodiscard]] int particle_count() const { return static_cast<int>(bodies_.size()); }
  [[nodiscard]] const Body& body(ParticleId p) const { return bodies_[checked(p)]; }
  [[nodiscard]] bool occupied(grid::Node v) const {
    if (telemetry::detail()) note_query();
    if (batch_active_) {
      if (ParticleId id; overlay_lookup(v, id)) return id != kNoParticle;
    }
    if (mode_ == OccupancyMode::Dense) return dense_.contains(v);
    if (mode_ == OccupancyMode::Hash) return map_.contains(v);
    const bool d = dense_.contains(v);
    PM_CHECK_MSG(d == map_.contains(v), "occupancy divergence at " << v);
    return d;
  }
  [[nodiscard]] ParticleId particle_at(grid::Node v) const {
    if (telemetry::detail()) note_query();
    if (batch_active_) {
      if (ParticleId id; overlay_lookup(v, id)) return id;
    }
    if (mode_ == OccupancyMode::Dense) return dense_.find(v);
    const auto it = map_.find(v);
    const ParticleId h = it == map_.end() ? kNoParticle : it->second;
    if (mode_ == OccupancyMode::Differential) {
      PM_CHECK_MSG(dense_.find(v) == h, "occupancy divergence at " << v);
    }
    return h;
  }
  [[nodiscard]] bool is_head(grid::Node v) const;  // v occupied by some particle's head

  [[nodiscard]] OccupancyMode occupancy_mode() const { return mode_; }

  // Peak cell count of the dense occupancy box over the system's lifetime —
  // the run metric reported as peak extent. 0 in a pure hash-mode run; a
  // hash system restored from a dense-geometry checkpoint keeps the gauge
  // alive through a geometry shadow (grid::BoxShadow), so the metric
  // survives occupancy switches across kills and resumes.
  [[nodiscard]] long long peak_occupancy_cells() const {
    return mode_ == OccupancyMode::Hash ? shadow_.peak_cells() : dense_.peak_cells();
  }

  // Read-only view of the dense index, for instrumentation that needs real
  // cell addresses (the bench/ false-sharing probe maps batch members' cell
  // footprints onto cache lines). Empty in pure hash mode.
  [[nodiscard]] const grid::DenseOccupancy& dense_index() const { return dense_; }

  // All occupied nodes (heads and tails), deterministic order by particle.
  [[nodiscard]] std::vector<grid::Node> occupied_nodes() const;

  // The particle system's shape S_P (set of occupied points).
  [[nodiscard]] grid::Shape shape() const;

  // Number of connected components of S_P (1 = connected).
  [[nodiscard]] int component_count() const;
  [[nodiscard]] bool all_contracted() const { return expanded_count_ == 0; }
  [[nodiscard]] int expanded_count() const { return expanded_count_; }

  // --- port arithmetic (common chirality) ---

  [[nodiscard]] grid::Dir port_dir(ParticleId p, int port) const {
    return grid::dir_from_index(static_cast<int>(bodies_[checked(p)].ori) + port);
  }
  [[nodiscard]] int dir_port(ParticleId p, grid::Dir d) const {
    return ((grid::index(d) - static_cast<int>(bodies_[checked(p)].ori)) % 6 + 6) % 6;
  }
  // Port that particle p assigns, from its occupied node `from`, to the
  // adjacent node `to` (paper's port(p, u, v)).
  [[nodiscard]] int port_between(ParticleId p, grid::Node from, grid::Node to) const;

  // --- movement operations ---

  // Contracted p expands into the empty adjacent node `to`; `to` becomes the
  // head, the old node the tail.
  void expand(ParticleId p, grid::Node to);

  void contract_to_head(ParticleId p);
  void contract_to_tail(ParticleId p);

  // Handover: contracted p expands into expanded q's tail while q contracts
  // into its head (one atomic movement, performable by either party).
  void handover(ParticleId p, ParticleId q);

  [[nodiscard]] long long moves() const { return moves_; }

  // --- parallel batch sessions (exec/parallel_engine.h) ---
  //
  // Between begin_batch() and end_batch(), activations with pairwise-disjoint
  // footprints may run on different threads: each thread registers its
  // member's ActivationLog via set_thread_log, movement operations journal
  // their occupancy updates there (bodies mutate in place — footprints are
  // disjoint), and occupancy queries overlay the calling thread's own pending
  // ops so an activation reads its own movement. After end_batch() the engine
  // replays the logs through commit() in the original sequential order, which
  // makes the final index state — and the dense index's growth history, hence
  // peak_occupancy_cells — bit-for-bit identical to a sequential run.

  void begin_batch() { batch_active_ = true; }
  void end_batch() { batch_active_ = false; }
  [[nodiscard]] bool batch_active() const { return batch_active_; }

  // Registers the calling thread's journal for the activation it is about to
  // run (nullptr to deregister). Thread-local: each pool thread sets its own.
  // Defined out-of-line in system.cpp, the TU that owns tls_log_: when the
  // store is inlined into other TUs, GCC's UBSan instrumentation of the
  // extern-TLS wrapper falsely "proves" the destination null and emits an
  // unconditional trap (-fsanitize=null false positive).
  static void set_thread_log(ActivationLog* log);

  // While set, ParticleView enforces the two algorithm-contract rules the
  // ParallelEngine's conflict margins rest on (see exec/conflict.h):
  //   * pull-only handovers — a push handover (handover_expand_head)
  //     contracts the non-activating party, so pull/push chains could
  //     displace a pending particle arbitrarily far without it ever
  //     activating, voiding the one-node displacement bound;
  //   * movement last — ports resolve against the live body, so reading or
  //     writing neighbors *after* a movement reaches one node beyond the
  //     footprint the batch was planned with.
  // Every algorithm in this repo satisfies both; others must use the
  // sequential Engine, and violations fail loudly instead of racing.
  void set_parallel_contract(bool on) { parallel_contract_ = on; }
  [[nodiscard]] bool parallel_contract() const { return parallel_contract_; }

  // Applies one journaled activation to the occupancy indices and counters.
  // Must be called outside a batch session, in sequential activation order.
  void commit(const ActivationLog& log);

  // --- checkpoint/resume (pipeline layer) ---
  //
  // save_core captures bodies, the movement counter, and the exact box
  // geometry + peak (from the dense index, or from the shadow when a hash
  // system carries restored dense geometry); restore_core rebuilds a
  // freshly constructed SystemCore — of any OccupancyMode — into a
  // configuration with identical observable state, peak_occupancy_cells
  // included, so a resumed run reports the same metrics as an uninterrupted
  // one even across occupancy switches. Per-particle algorithm state is the
  // caller's (System<State> owner's) to serialize alongside.
  void save_core(Snapshot& snap) const;
  void restore_core(const Snapshot& snap);

 private:
  [[nodiscard]] std::size_t checked(ParticleId p) const {
    PM_CHECK_MSG(p >= 0 && p < particle_count(), "bad particle id " << p);
    return static_cast<std::size_t>(p);
  }

  void occ_insert(grid::Node v, ParticleId p) {
    if (mode_ != OccupancyMode::Hash) {
      dense_.insert(v, p);
    } else {
      shadow_.cover(v);  // no-op unless armed by a dense-geometry restore
    }
    if (mode_ != OccupancyMode::Dense) map_.emplace(v, p);
  }
  void occ_erase(grid::Node v) {
    if (mode_ != OccupancyMode::Hash) dense_.erase(v);
    if (mode_ != OccupancyMode::Dense) map_.erase(v);
  }

  // Per-query occupancy telemetry: only reached at detail level (pm_bench
  // --metrics-detail) — an unconditional count here would tax the ~30ns
  // activations it profiles. Shard increments are thread-local, so pooled
  // batch workers count race-free; overlay hits are attributed separately.
  void note_query() const {
    static const telemetry::Counter c_dense("occupancy.query.dense");
    static const telemetry::Counter c_hash("occupancy.query.hash");
    static const telemetry::Counter c_diff("occupancy.query.differential");
    static const telemetry::Counter c_overlay("occupancy.query.overlay");
    if (batch_active_ && tls_log_ != nullptr) c_overlay.inc();
    switch (mode_) {
      case OccupancyMode::Dense: c_dense.inc(); break;
      case OccupancyMode::Hash: c_hash.inc(); break;
      case OccupancyMode::Differential: c_diff.inc(); break;
    }
  }

  // Looks up v in the calling thread's pending-op journal (latest op wins).
  // Only consulted while a batch is active; another member's ops can never
  // cover a cell this thread reads, because footprints are disjoint.
  static bool overlay_lookup(grid::Node v, ParticleId& out) {
    const ActivationLog* log = tls_log_;
    if (log == nullptr) return false;
    for (int i = log->op_count; i-- > 0;) {
      if (log->ops[static_cast<std::size_t>(i)].v == v) {
        out = log->ops[static_cast<std::size_t>(i)].id;
        return true;
      }
    }
    return false;
  }

  // Routes a movement's occupancy effect: journaled during a batch (on a
  // thread that registered a log), applied directly otherwise.
  void move_insert(grid::Node v, ParticleId p);
  void move_erase(grid::Node v);
  void move_done(int expanded_delta);

  OccupancyMode mode_ = kDefaultOccupancy;
  std::vector<Body> bodies_;
  grid::DenseOccupancy dense_;
  grid::BoxShadow shadow_;  // hash mode's stand-in for the dense peak gauge
  // Hash-order proof (rule pm-unordered-iter): this map answers point
  // queries only — contains/find/emplace/erase above — and is never
  // iterated, so its bucket order can never leak into results.
  std::unordered_map<grid::Node, ParticleId, grid::NodeHash> map_;
  int expanded_count_ = 0;
  long long moves_ = 0;
  bool batch_active_ = false;
  bool parallel_contract_ = false;
  static thread_local ActivationLog* tls_log_;
};

template <typename State>
class System : public SystemCore {
 public:
  System() = default;
  explicit System(OccupancyMode mode) : SystemCore(mode) {}

  // Builds a contracted configuration from a shape, one particle per node,
  // with rng-chosen anonymous orientations (common chirality).
  static System from_shape(const grid::Shape& s, Rng& rng,
                           OccupancyMode mode = kDefaultOccupancy) {
    System sys(mode);
    if (!s.empty()) {
      sys.reserve(s.size(), s.bbox_min(), s.bbox_max());
      sys.states_.reserve(s.size());
    }
    for (const grid::Node v : s.nodes()) {
      sys.add_particle(v, static_cast<std::uint8_t>(rng.below(6)));
      sys.states_.emplace_back();
    }
    return sys;
  }

  // Checkpoint/resume companion to restore_core: sizes the per-particle
  // state store to the restored bodies (default-constructed values; the
  // caller deserializes into them).
  void reset_states() {
    states_.assign(static_cast<std::size_t>(particle_count()), State{});
  }

  [[nodiscard]] State& state(ParticleId p) {
    PM_CHECK(p >= 0 && p < particle_count());
    return states_[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] const State& state(ParticleId p) const {
    PM_CHECK(p >= 0 && p < particle_count());
    return states_[static_cast<std::size_t>(p)];
  }

 private:
  std::vector<State> states_;
};

}  // namespace pm::amoebot
