// The amoebot particle system (paper §2.2).
//
// SystemCore owns the geometric configuration: particle bodies (head/tail
// nodes, per-particle orientation offset implementing common chirality with
// anonymous rotations), the occupancy map, and the three legal movement
// operations — expand, contract, handover — with model-rule enforcement.
//
// System<State> adds the per-particle algorithm memory. Algorithm code
// accesses the system only through ParticleView (view.h), which restricts it
// to local, port-addressed reads/writes exactly as the model allows; the
// Collect engine (core/collect) is the one documented exception, driving
// SystemCore moves directly as a round-synchronous compilation of the
// paper's token protocols.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "grid/coord.h"
#include "grid/dense_occupancy.h"
#include "grid/shape.h"
#include "util/check.h"
#include "util/rng.h"

namespace pm::amoebot {

using ParticleId = std::int32_t;
inline constexpr ParticleId kNoParticle = -1;

// Which occupancy index backs occupied()/particle_at():
//   Dense        — grid::DenseOccupancy flat array (the fast path),
//   Hash         — the seed engine's std::unordered_map (kept for A/B
//                  benchmarking and as the differential-check reference),
//   Differential — both, with every query checked for agreement.
enum class OccupancyMode : std::uint8_t { Dense, Hash, Differential };

// Debug builds cross-check the dense index against the hash map on every
// query; release builds take the dense path alone.
#ifdef NDEBUG
inline constexpr OccupancyMode kDefaultOccupancy = OccupancyMode::Dense;
#else
inline constexpr OccupancyMode kDefaultOccupancy = OccupancyMode::Differential;
#endif

struct Body {
  grid::Node head{};
  grid::Node tail{};      // == head when contracted
  std::uint8_t ori = 0;   // port p points toward global dir (ori + p) mod 6

  [[nodiscard]] bool expanded() const { return !(head == tail); }
};

class SystemCore {
 public:
  SystemCore() = default;
  explicit SystemCore(OccupancyMode mode) : mode_(mode) {}

  // --- construction ---

  ParticleId add_particle(grid::Node at, std::uint8_t ori);

  // Pre-sizes the particle store and the occupancy indices for n particles
  // whose initial nodes lie in [lo, hi].
  void reserve(std::size_t n, grid::Node lo, grid::Node hi);

  // --- configuration queries ---

  [[nodiscard]] int particle_count() const { return static_cast<int>(bodies_.size()); }
  [[nodiscard]] const Body& body(ParticleId p) const { return bodies_[checked(p)]; }
  [[nodiscard]] bool occupied(grid::Node v) const {
    if (mode_ == OccupancyMode::Dense) return dense_.contains(v);
    if (mode_ == OccupancyMode::Hash) return map_.contains(v);
    const bool d = dense_.contains(v);
    PM_CHECK_MSG(d == map_.contains(v), "occupancy divergence at " << v);
    return d;
  }
  [[nodiscard]] ParticleId particle_at(grid::Node v) const {
    if (mode_ == OccupancyMode::Dense) return dense_.find(v);
    const auto it = map_.find(v);
    const ParticleId h = it == map_.end() ? kNoParticle : it->second;
    if (mode_ == OccupancyMode::Differential) {
      PM_CHECK_MSG(dense_.find(v) == h, "occupancy divergence at " << v);
    }
    return h;
  }
  [[nodiscard]] bool is_head(grid::Node v) const;  // v occupied by some particle's head

  [[nodiscard]] OccupancyMode occupancy_mode() const { return mode_; }

  // Peak cell count of the dense occupancy box over the system's lifetime
  // (0 in pure hash mode) — the run metric reported as peak extent.
  [[nodiscard]] long long peak_occupancy_cells() const { return dense_.peak_cells(); }

  // All occupied nodes (heads and tails), deterministic order by particle.
  [[nodiscard]] std::vector<grid::Node> occupied_nodes() const;

  // The particle system's shape S_P (set of occupied points).
  [[nodiscard]] grid::Shape shape() const;

  // Number of connected components of S_P (1 = connected).
  [[nodiscard]] int component_count() const;
  [[nodiscard]] bool all_contracted() const { return expanded_count_ == 0; }
  [[nodiscard]] int expanded_count() const { return expanded_count_; }

  // --- port arithmetic (common chirality) ---

  [[nodiscard]] grid::Dir port_dir(ParticleId p, int port) const {
    return grid::dir_from_index(static_cast<int>(bodies_[checked(p)].ori) + port);
  }
  [[nodiscard]] int dir_port(ParticleId p, grid::Dir d) const {
    return ((grid::index(d) - static_cast<int>(bodies_[checked(p)].ori)) % 6 + 6) % 6;
  }
  // Port that particle p assigns, from its occupied node `from`, to the
  // adjacent node `to` (paper's port(p, u, v)).
  [[nodiscard]] int port_between(ParticleId p, grid::Node from, grid::Node to) const;

  // --- movement operations ---

  // Contracted p expands into the empty adjacent node `to`; `to` becomes the
  // head, the old node the tail.
  void expand(ParticleId p, grid::Node to);

  void contract_to_head(ParticleId p);
  void contract_to_tail(ParticleId p);

  // Handover: contracted p expands into expanded q's tail while q contracts
  // into its head (one atomic movement, performable by either party).
  void handover(ParticleId p, ParticleId q);

  [[nodiscard]] long long moves() const { return moves_; }

 private:
  [[nodiscard]] std::size_t checked(ParticleId p) const {
    PM_CHECK_MSG(p >= 0 && p < particle_count(), "bad particle id " << p);
    return static_cast<std::size_t>(p);
  }

  void occ_insert(grid::Node v, ParticleId p) {
    if (mode_ != OccupancyMode::Hash) dense_.insert(v, p);
    if (mode_ != OccupancyMode::Dense) map_.emplace(v, p);
  }
  void occ_erase(grid::Node v) {
    if (mode_ != OccupancyMode::Hash) dense_.erase(v);
    if (mode_ != OccupancyMode::Dense) map_.erase(v);
  }

  OccupancyMode mode_ = kDefaultOccupancy;
  std::vector<Body> bodies_;
  grid::DenseOccupancy dense_;
  std::unordered_map<grid::Node, ParticleId, grid::NodeHash> map_;
  int expanded_count_ = 0;
  long long moves_ = 0;
};

template <typename State>
class System : public SystemCore {
 public:
  System() = default;
  explicit System(OccupancyMode mode) : SystemCore(mode) {}

  // Builds a contracted configuration from a shape, one particle per node,
  // with rng-chosen anonymous orientations (common chirality).
  static System from_shape(const grid::Shape& s, Rng& rng,
                           OccupancyMode mode = kDefaultOccupancy) {
    System sys(mode);
    if (!s.empty()) {
      sys.reserve(s.size(), s.bbox_min(), s.bbox_max());
      sys.states_.reserve(s.size());
    }
    for (const grid::Node v : s.nodes()) {
      sys.add_particle(v, static_cast<std::uint8_t>(rng.below(6)));
      sys.states_.emplace_back();
    }
    return sys;
  }

  [[nodiscard]] State& state(ParticleId p) {
    PM_CHECK(p >= 0 && p < particle_count());
    return states_[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] const State& state(ParticleId p) const {
    PM_CHECK(p >= 0 && p < particle_count());
    return states_[static_cast<std::size_t>(p)];
  }

 private:
  std::vector<State> states_;
};

}  // namespace pm::amoebot
