#include "amoebot/system.h"

#include <deque>

#include "util/snapshot.h"

namespace pm::amoebot {

using grid::Node;

thread_local ActivationLog* SystemCore::tls_log_ = nullptr;

void SystemCore::set_thread_log(ActivationLog* log) { tls_log_ = log; }

void SystemCore::move_insert(Node v, ParticleId p) {
  if (ActivationLog* log = batch_active_ ? tls_log_ : nullptr) {
    PM_CHECK_MSG(log->op_count < 2, "more than one movement journaled");
    log->ops[static_cast<std::size_t>(log->op_count++)] = {v, p};
  } else {
    occ_insert(v, p);
  }
}

void SystemCore::move_erase(Node v) {
  if (ActivationLog* log = batch_active_ ? tls_log_ : nullptr) {
    PM_CHECK_MSG(log->op_count < 2, "more than one movement journaled");
    log->ops[static_cast<std::size_t>(log->op_count++)] = {v, kNoParticle};
  } else {
    occ_erase(v);
  }
}

void SystemCore::move_done(int expanded_delta) {
  if (ActivationLog* log = batch_active_ ? tls_log_ : nullptr) {
    ++log->moves;
    log->expanded_delta += expanded_delta;
  } else {
    expanded_count_ += expanded_delta;
    ++moves_;
  }
}

void SystemCore::commit(const ActivationLog& log) {
  PM_CHECK_MSG(!batch_active_, "commit inside an active batch session");
  for (int i = 0; i < log.op_count; ++i) {
    const ActivationLog::Op& op = log.ops[static_cast<std::size_t>(i)];
    if (op.id == kNoParticle) {
      occ_erase(op.v);
    } else {
      occ_insert(op.v, op.id);
    }
  }
  expanded_count_ += log.expanded_delta;
  moves_ += log.moves;
}

ParticleId SystemCore::add_particle(Node at, std::uint8_t ori) {
  PM_CHECK_MSG(!occupied(at), "add_particle: node " << at << " already occupied");
  PM_CHECK(ori < 6);
  const ParticleId id = particle_count();
  bodies_.push_back(Body{at, at, ori});
  occ_insert(at, id);
  return id;
}

void SystemCore::reserve(std::size_t n, Node lo, Node hi) {
  bodies_.reserve(n);
  if (mode_ != OccupancyMode::Hash) dense_.reserve_box(lo, hi);
  if (mode_ != OccupancyMode::Dense) map_.reserve(2 * n);
}

bool SystemCore::is_head(Node v) const {
  const ParticleId p = particle_at(v);
  return p != kNoParticle && bodies_[static_cast<std::size_t>(p)].head == v;
}

std::vector<Node> SystemCore::occupied_nodes() const {
  std::vector<Node> out;
  out.reserve(bodies_.size() + static_cast<std::size_t>(expanded_count_));
  for (const Body& b : bodies_) {
    out.push_back(b.head);
    if (b.expanded()) out.push_back(b.tail);
  }
  return out;
}

grid::Shape SystemCore::shape() const { return grid::Shape(occupied_nodes()); }

int SystemCore::component_count() const {
  if (bodies_.empty()) return 0;
  // BFS over particle ids with a flat visited vector; a particle's head and
  // tail are always adjacent, so particle-level connectivity equals
  // node-level connectivity and every frontier step is a particle_at query.
  std::vector<char> seen(bodies_.size(), 0);
  std::vector<ParticleId> queue;
  queue.reserve(bodies_.size());
  int components = 0;
  for (ParticleId start = 0; start < particle_count(); ++start) {
    if (seen[static_cast<std::size_t>(start)]) continue;
    ++components;
    seen[static_cast<std::size_t>(start)] = 1;
    queue.clear();
    queue.push_back(start);
    auto expand_from = [&](Node v) {
      for (int i = 0; i < grid::kDirCount; ++i) {
        const Node u = grid::neighbor(v, grid::dir_from_index(i));
        const ParticleId q = particle_at(u);
        if (q != kNoParticle && !seen[static_cast<std::size_t>(q)]) {
          seen[static_cast<std::size_t>(q)] = 1;
          queue.push_back(q);
        }
      }
    };
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      const Body& b = bodies_[static_cast<std::size_t>(queue[qi])];
      expand_from(b.head);
      if (b.expanded()) expand_from(b.tail);
    }
  }
  return components;
}

void SystemCore::save_core(Snapshot& snap) const {
  PM_CHECK_MSG(!batch_active_, "save_core inside an active batch session");
  snap.put_mark(kSnapSystem);
  snap.put(static_cast<std::uint64_t>(mode_));
  snap.put_i(particle_count());
  snap.put_i(moves_);
  // A hash system whose shadow gauge is armed still carries dense geometry:
  // it writes the shadow's box, so a later restore into a dense system
  // reinstates the exact allocation an uninterrupted dense run would hold.
  const bool has_dense = mode_ != OccupancyMode::Hash || shadow_.armed();
  snap.put(has_dense ? 1 : 0);
  if (has_dense) {
    if (mode_ != OccupancyMode::Hash) {
      const auto& box = dense_.box();
      snap.put_i(box.min_x());
      snap.put_i(box.min_y());
      snap.put_i(box.width());
      snap.put_i(box.height());
      snap.put_i(dense_.peak_cells());
    } else {
      snap.put_i(shadow_.min_x());
      snap.put_i(shadow_.min_y());
      snap.put_i(shadow_.width());
      snap.put_i(shadow_.height());
      snap.put_i(shadow_.peak_cells());
    }
  }
  for (const Body& b : bodies_) {
    snap.put_i(b.head.x);
    snap.put_i(b.head.y);
    snap.put_i(b.tail.x);
    snap.put_i(b.tail.y);
    snap.put(b.ori);
  }
}

void SystemCore::restore_core(const Snapshot& snap) {
  snap.expect_mark(kSnapSystem);
  // The saved occupancy mode is informational: snapshots are portable
  // across modes (the index choice is observably neutral, the peak gauge
  // included). A dense-saved snapshot restored into a hash system arms the
  // geometry shadow, which replays the dense growth rule so the gauge keeps
  // advancing exactly as the dense box would; restoring back into a dense
  // system reinstates the shadow's box as the real allocation.
  (void)snap.get();
  const auto n = static_cast<std::size_t>(snap.get_i());
  PM_CHECK_MSG(bodies_.empty(), "restore_core requires a freshly constructed system");
  const long long moves = snap.get_i();
  const bool has_dense = snap.get() != 0;
  if (has_dense) {
    const std::int64_t min_x = snap.get_i();
    const std::int64_t min_y = snap.get_i();
    const std::int64_t width = snap.get_i();
    const std::int64_t height = snap.get_i();
    const long long peak = snap.get_i();
    if (mode_ != OccupancyMode::Hash) {
      dense_.restore_box(min_x, min_y, width, height, peak);
    } else {
      shadow_.arm(min_x, min_y, width, height, peak);
    }
  }
  bodies_.reserve(n);
  if (mode_ != OccupancyMode::Dense) map_.reserve(2 * n);
  expanded_count_ = 0;
  for (std::size_t i = 0; i < n; ++i) {
    Body b;
    b.head.x = static_cast<std::int32_t>(snap.get_i());
    b.head.y = static_cast<std::int32_t>(snap.get_i());
    b.tail.x = static_cast<std::int32_t>(snap.get_i());
    b.tail.y = static_cast<std::int32_t>(snap.get_i());
    b.ori = static_cast<std::uint8_t>(snap.get());
    const auto id = static_cast<ParticleId>(i);
    bodies_.push_back(b);
    occ_insert(b.head, id);
    if (b.expanded()) {
      occ_insert(b.tail, id);
      ++expanded_count_;
    }
  }
  moves_ = moves;
}

int SystemCore::port_between(ParticleId p, Node from, Node to) const {
  const Body& b = bodies_[checked(p)];
  PM_CHECK_MSG(from == b.head || from == b.tail, "port_between: particle not at " << from);
  return dir_port(p, grid::dir_between(from, to));
}

void SystemCore::expand(ParticleId p, Node to) {
  Body& b = bodies_[checked(p)];
  PM_CHECK_MSG(!b.expanded(), "expand: particle " << p << " already expanded");
  PM_CHECK_MSG(grid::adjacent(b.head, to), "expand: target not adjacent");
  PM_CHECK_MSG(!occupied(to), "expand: target " << to << " occupied");
  b.tail = b.head;
  b.head = to;
  move_insert(to, p);
  move_done(+1);
}

void SystemCore::contract_to_head(ParticleId p) {
  Body& b = bodies_[checked(p)];
  PM_CHECK_MSG(b.expanded(), "contract_to_head: particle " << p << " is contracted");
  move_erase(b.tail);
  b.tail = b.head;
  move_done(-1);
}

void SystemCore::contract_to_tail(ParticleId p) {
  Body& b = bodies_[checked(p)];
  PM_CHECK_MSG(b.expanded(), "contract_to_tail: particle " << p << " is contracted");
  move_erase(b.head);
  b.head = b.tail;
  move_done(-1);
}

void SystemCore::handover(ParticleId p, ParticleId q) {
  Body& bp = bodies_[checked(p)];
  Body& bq = bodies_[checked(q)];
  PM_CHECK_MSG(!bp.expanded(), "handover: p must be contracted");
  PM_CHECK_MSG(bq.expanded(), "handover: q must be expanded");
  PM_CHECK_MSG(grid::adjacent(bp.head, bq.tail), "handover: p not adjacent to q's tail");
  const Node freed = bq.tail;
  // q contracts into its head...
  move_erase(freed);
  bq.tail = bq.head;
  // ...and p expands into the freed node, atomically.
  bp.tail = bp.head;
  bp.head = freed;
  move_insert(freed, p);
  // (q contracted, p expanded: the expanded count is unchanged.)
  move_done(0);
}

}  // namespace pm::amoebot
