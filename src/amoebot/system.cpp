#include "amoebot/system.h"

#include <deque>

namespace pm::amoebot {

using grid::Node;

ParticleId SystemCore::add_particle(Node at, std::uint8_t ori) {
  PM_CHECK_MSG(!occupied(at), "add_particle: node " << at << " already occupied");
  PM_CHECK(ori < 6);
  const ParticleId id = particle_count();
  bodies_.push_back(Body{at, at, ori});
  occ_.emplace(at, id);
  return id;
}

ParticleId SystemCore::particle_at(Node v) const {
  const auto it = occ_.find(v);
  return it == occ_.end() ? kNoParticle : it->second;
}

bool SystemCore::is_head(Node v) const {
  const ParticleId p = particle_at(v);
  return p != kNoParticle && bodies_[static_cast<std::size_t>(p)].head == v;
}

std::vector<Node> SystemCore::occupied_nodes() const {
  std::vector<Node> out;
  out.reserve(bodies_.size());
  for (const Body& b : bodies_) {
    out.push_back(b.head);
    if (b.expanded()) out.push_back(b.tail);
  }
  return out;
}

grid::Shape SystemCore::shape() const { return grid::Shape(occupied_nodes()); }

int SystemCore::component_count() const {
  if (bodies_.empty()) return 0;
  // BFS over occupied nodes; a particle's head and tail are always adjacent,
  // so node-level connectivity equals particle-level connectivity.
  std::unordered_map<Node, char, grid::NodeHash> seen;
  int components = 0;
  for (const Body& b : bodies_) {
    if (seen.contains(b.head)) continue;
    ++components;
    std::deque<Node> queue{b.head};
    seen.emplace(b.head, 1);
    while (!queue.empty()) {
      const Node v = queue.front();
      queue.pop_front();
      for (int i = 0; i < grid::kDirCount; ++i) {
        const Node u = grid::neighbor(v, grid::dir_from_index(i));
        if (occupied(u) && seen.emplace(u, 1).second) queue.push_back(u);
      }
    }
  }
  return components;
}

bool SystemCore::all_contracted() const {
  for (const Body& b : bodies_) {
    if (b.expanded()) return false;
  }
  return true;
}

int SystemCore::port_between(ParticleId p, Node from, Node to) const {
  const Body& b = bodies_[checked(p)];
  PM_CHECK_MSG(from == b.head || from == b.tail, "port_between: particle not at " << from);
  return dir_port(p, grid::dir_between(from, to));
}

void SystemCore::expand(ParticleId p, Node to) {
  Body& b = bodies_[checked(p)];
  PM_CHECK_MSG(!b.expanded(), "expand: particle " << p << " already expanded");
  PM_CHECK_MSG(grid::adjacent(b.head, to), "expand: target not adjacent");
  PM_CHECK_MSG(!occupied(to), "expand: target " << to << " occupied");
  b.tail = b.head;
  b.head = to;
  occ_.emplace(to, p);
  ++moves_;
}

void SystemCore::contract_to_head(ParticleId p) {
  Body& b = bodies_[checked(p)];
  PM_CHECK_MSG(b.expanded(), "contract_to_head: particle " << p << " is contracted");
  occ_.erase(b.tail);
  b.tail = b.head;
  ++moves_;
}

void SystemCore::contract_to_tail(ParticleId p) {
  Body& b = bodies_[checked(p)];
  PM_CHECK_MSG(b.expanded(), "contract_to_tail: particle " << p << " is contracted");
  occ_.erase(b.head);
  b.head = b.tail;
  ++moves_;
}

void SystemCore::handover(ParticleId p, ParticleId q) {
  Body& bp = bodies_[checked(p)];
  Body& bq = bodies_[checked(q)];
  PM_CHECK_MSG(!bp.expanded(), "handover: p must be contracted");
  PM_CHECK_MSG(bq.expanded(), "handover: q must be expanded");
  PM_CHECK_MSG(grid::adjacent(bp.head, bq.tail), "handover: p not adjacent to q's tail");
  const Node freed = bq.tail;
  // q contracts into its head...
  occ_.erase(freed);
  bq.tail = bq.head;
  // ...and p expands into the freed node, atomically.
  bp.tail = bp.head;
  bp.head = freed;
  occ_.emplace(freed, p);
  ++moves_;
}

}  // namespace pm::amoebot
