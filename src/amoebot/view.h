// ParticleView: the local, port-addressed interface an activated particle
// uses during its atomic activation (paper §2.2). It exposes exactly what
// the model grants:
//   (i)  reading its own and its neighbors' memories,
//   (ii) writing its own and its neighbors' memories,
//   (iii) at most one movement operation.
// Neighbors are addressed by port number relative to the particle's own
// (anonymous, chirality-consistent) orientation; the view also exposes the
// reverse port of a neighbor for the shared edge, which the model assumes
// known (paper §2.2, "p knows port(q, v, u)").
#pragma once

#include <array>

#include "amoebot/system.h"

namespace pm::amoebot {

// Records which particles an activation may have mutated: every non-const
// state access and every movement partner. The Engine (engine.h) re-evaluates
// finality for exactly these particles after the activation, which is what
// makes its incremental termination count exact without an O(n) rescan.
// Bounded: a single activation touches the particle itself and its <= 10
// node-neighbors; if an algorithm exceeds the capacity the engine falls back
// to a full recount for that activation (correct, just slower).
class TouchList {
 public:
  static constexpr int kCapacity = 24;

  void add(ParticleId p) {
    if (count_ < kCapacity) {
      ids_[static_cast<std::size_t>(count_++)] = p;
    } else {
      overflow_ = true;
    }
  }
  [[nodiscard]] int size() const { return count_; }
  [[nodiscard]] ParticleId operator[](int i) const {
    return ids_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] bool overflowed() const { return overflow_; }

 private:
  std::array<ParticleId, kCapacity> ids_;  // intentionally uninitialized;
                                           // only [0, count_) is ever read
  int count_ = 0;
  bool overflow_ = false;
};

template <typename State>
class ParticleView {
 public:
  ParticleView(System<State>& sys, ParticleId id, TouchList* touches = nullptr)
      : sys_(sys), id_(id), touches_(touches) {}

  [[nodiscard]] ParticleId id() const { return id_; }
  [[nodiscard]] bool contracted() const { return !sys_.body(id_).expanded(); }
  [[nodiscard]] bool expanded() const { return sys_.body(id_).expanded(); }

  [[nodiscard]] State& self() {
    touch(id_);
    return sys_.state(id_);
  }
  [[nodiscard]] const State& self() const { return sys_.state(id_); }

  // --- neighborhood of the head node, by port ---

  [[nodiscard]] bool occupied_head(int port) const {
    return sys_.occupied(head_nbr(port));
  }

  // True iff the node via `port` is occupied and is that particle's head.
  [[nodiscard]] bool head_of_nbr_at(int port) const {
    return sys_.is_head(head_nbr(port));
  }

  [[nodiscard]] ParticleId nbr_id_head(int port) const {
    const ParticleId q = sys_.particle_at(head_nbr(port));
    PM_CHECK_MSG(q != kNoParticle, "no neighbor at head port " << port);
    return q;
  }

  [[nodiscard]] State& nbr_state_head(int port) {
    const ParticleId q = nbr_id_head(port);
    touch(q);
    return sys_.state(q);
  }
  [[nodiscard]] const State& nbr_state_head(int port) const {
    return sys_.state(nbr_id_head(port));
  }

  // Port the neighbor at `port` (from the shared node) assigns to the edge
  // back to this particle's head.
  [[nodiscard]] int reverse_port_head(int port) const {
    const grid::Node u = head_nbr(port);
    const ParticleId q = sys_.particle_at(u);
    PM_CHECK_MSG(q != kNoParticle, "no neighbor at head port " << port);
    return sys_.port_between(q, u, sys_.body(id_).head);
  }

  // --- neighborhood of the tail node (expanded particles) ---

  [[nodiscard]] bool occupied_tail(int port) const {
    return sys_.occupied(tail_nbr(port));
  }

  [[nodiscard]] ParticleId nbr_id_tail(int port) const {
    const ParticleId q = sys_.particle_at(tail_nbr(port));
    PM_CHECK_MSG(q != kNoParticle, "no neighbor at tail port " << port);
    return q;
  }

  // True iff the node via tail `port` belongs to this particle itself
  // (an expanded particle's head and tail are mutually adjacent).
  [[nodiscard]] bool tail_port_is_self(int port) const {
    return sys_.particle_at(tail_nbr(port)) == id_;
  }

  // --- any-neighbor iteration helper: all distinct neighboring particles ---

  // Calls fn(ParticleId) once per distinct neighboring particle of this
  // particle's occupied node(s).
  template <typename Fn>
  void for_each_neighbor_particle(Fn&& fn) const {
    check_access_before_move();
    ParticleId seen[10];
    int count = 0;
    auto visit = [&](grid::Node at) {
      for (int i = 0; i < grid::kDirCount; ++i) {
        const grid::Node u = grid::neighbor(at, grid::dir_from_index(i));
        const ParticleId q = sys_.particle_at(u);
        if (q == kNoParticle || q == id_) continue;
        bool dup = false;
        for (int k = 0; k < count; ++k) dup = dup || (seen[k] == q);
        if (dup) continue;
        seen[count++] = q;
        fn(q);
      }
    };
    visit(sys_.body(id_).head);
    if (expanded()) visit(sys_.body(id_).tail);
  }

  [[nodiscard]] const State& state_of(ParticleId q) const { return sys_.state(q); }
  [[nodiscard]] State& state_of(ParticleId q) {
    touch(q);
    return sys_.state(q);
  }

  // Read-only neighbor state access that never counts as a touch. Algorithms
  // should prefer this on pure-read paths: on a non-const view the non-const
  // state_of overload wins overload resolution and records a (harmless but
  // costly) touch per call.
  [[nodiscard]] const State& peek_state(ParticleId q) const { return sys_.state(q); }

  // Whether another particle is contracted (readable state in the model:
  // "a particle stores in its memory whether it is contracted or expanded").
  [[nodiscard]] bool is_contracted(ParticleId q) const { return !sys_.body(q).expanded(); }

  // --- movement (at most one per activation) ---

  void expand_head(int port) {
    const grid::Node to = head_nbr(port);
    take_move();
    touch(id_);
    sys_.expand(id_, to);
  }

  void contract_to_head() {
    take_move();
    touch(id_);
    sys_.contract_to_head(id_);
  }

  void contract_to_tail() {
    take_move();
    touch(id_);
    sys_.contract_to_tail(id_);
  }

  // Handover-expand into the tail of the expanded neighbor at head `port`.
  // A *push* handover: it contracts the neighbor, which never activates.
  // Rejected under the ParallelEngine (see SystemCore::set_parallel_contract).
  void handover_expand_head(int port) {
    const ParticleId q = sys_.particle_at(head_nbr(port));
    take_move();
    PM_CHECK_MSG(!sys_.parallel_contract(),
                 "push handovers (handover_expand_head) displace a particle that "
                 "never activates — unsupported under the ParallelEngine; drive "
                 "this algorithm with the sequential Engine");
    PM_CHECK(q != kNoParticle);
    touch(id_);
    touch(q);
    sys_.handover(id_, q);
  }

  // Handover initiated by this (expanded) particle: the contracted neighbor
  // at tail `port` expands into this particle's tail while it contracts into
  // its head (the model lets either party perform the handover).
  void handover_pull_tail(int port) {
    const ParticleId q = sys_.particle_at(tail_nbr(port));
    take_move();
    PM_CHECK(q != kNoParticle);
    touch(id_);
    touch(q);
    sys_.handover(q, id_);
  }

  // Instrumentation only — algorithms must not base decisions on global
  // coordinates; tests use this to replay point-set invariants (Lemma 11).
  [[nodiscard]] grid::Node head_node_instrumentation() const {
    return sys_.body(id_).head;
  }

 private:
  [[nodiscard]] grid::Node head_nbr(int port) const {
    check_access_before_move();
    return grid::neighbor(sys_.body(id_).head, sys_.port_dir(id_, port));
  }
  [[nodiscard]] grid::Node tail_nbr(int port) const {
    check_access_before_move();
    return grid::neighbor(sys_.body(id_).tail, sys_.port_dir(id_, port));
  }
  void take_move() {
    PM_CHECK_MSG(!moved_, "a particle may perform at most one movement per activation");
    moved_ = true;
  }
  // Ports resolve against the live body, so neighborhood access after the
  // movement reaches one node beyond the plan-time footprint — sound under
  // the sequential Engine, rejected under the ParallelEngine's batch
  // planning (movement must be the activation's last act there).
  void check_access_before_move() const {
    PM_CHECK_MSG(!(moved_ && sys_.parallel_contract()),
                 "neighborhood access after a movement is unsupported under the "
                 "ParallelEngine — make the movement the activation's last act, "
                 "or drive this algorithm with the sequential Engine");
  }
  void touch(ParticleId p) {
    if (touches_ != nullptr) touches_->add(p);
  }

  System<State>& sys_;
  ParticleId id_;
  TouchList* touches_ = nullptr;
  bool moved_ = false;
};

}  // namespace pm::amoebot
