#include "obs/obs.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <tuple>
#include <utility>

#include "pipeline/pipeline.h"
#include "util/check.h"

namespace pm::obs {

const char* type_name(Type t) noexcept {
  switch (t) {
    case Type::StageEnter: return "stage_enter";
    case Type::StageExit: return "stage_exit";
    case Type::ObdArm: return "obd_arm";
    case Type::TrainCreate: return "train_create";
    case Type::TrainConsume: return "train_consume";
    case Type::ObdVerdict: return "obd_verdict";
    case Type::ObdAbort: return "obd_abort";
    case Type::ObdAbsorb: return "obd_absorb";
    case Type::ObdFree: return "obd_free";
    case Type::ObdStable: return "obd_stable";
    case Type::ObdOuter: return "obd_outer";
    case Type::Erode: return "erode";
    case Type::Leader: return "leader";
    case Type::CollectPhase: return "collect_phase";
    case Type::ZooSubphase: return "zoo_subphase";
    case Type::AuditViolation: return "audit_violation";
    case Type::FaultKill: return "fault_kill";
    case Type::FaultResume: return "fault_resume";
  }
  return "unknown";
}

void Recorder::emit(Event e) {
  e.round = round_;
  pending_.push_back(std::move(e));
}

void Recorder::emit_async(Event e) {
  e.round = round_;
  const std::lock_guard<std::mutex> lock(async_mu_);
  async_.push_back(std::move(e));
}

void Recorder::begin_round() {
  flush_pending();
  ++round_;
  seq_ = 0;
}

void Recorder::end_round() { flush_pending(); }

void Recorder::finalize() { flush_pending(); }

void Recorder::flush_pending() {
  // Async events first join the pending tail in canonical payload order:
  // within one round every async event is unique (a node erodes at most
  // once, a leader is elected once), so sorting by the full payload is a
  // deterministic total order for any thread interleaving.
  {
    const std::lock_guard<std::mutex> lock(async_mu_);
    if (!async_.empty()) {
      std::sort(async_.begin(), async_.end(), [](const Event& a, const Event& b) {
        return std::tie(a.type, a.v, a.peer, a.epoch, a.val, a.note) <
               std::tie(b.type, b.v, b.peer, b.epoch, b.val, b.note);
      });
      pending_.insert(pending_.end(), std::make_move_iterator(async_.begin()),
                      std::make_move_iterator(async_.end()));
      async_.clear();
    }
  }
  if (pending_.empty()) return;
  for (Event& e : pending_) {
    e.seq = seq_++;
    events_.push_back(std::move(e));
  }
  pending_.clear();
  if (opts_.ring_rounds > 0) {
    while (!events_.empty() && events_.front().round + opts_.ring_rounds <= round_) {
      events_.pop_front();
    }
  }
}

void Recorder::capture(const std::string& reason) {
  if (captured_) return;  // the first failure's window is the forensic one
  flush_pending();
  captured_ = true;
  capture_reason_ = reason;
  capture_.assign(events_.begin(), events_.end());
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::string to_ndjson_line(const Event& e) {
  std::string out;
  out += "{\"round\":";
  out += std::to_string(e.round);
  out += ",\"seq\":";
  out += std::to_string(e.seq);
  out += ",\"type\":\"";
  out += type_name(e.type);
  out += "\",\"stage\":\"";
  append_escaped(out, e.stage);
  out += "\",\"v\":";
  out += std::to_string(e.v);
  out += ",\"peer\":";
  out += std::to_string(e.peer);
  out += ",\"epoch\":";
  out += std::to_string(e.epoch);
  out += ",\"val\":";
  out += std::to_string(e.val);
  out += ",\"note\":\"";
  append_escaped(out, e.note);
  out += "\"}";
  return out;
}

void Recorder::write_ndjson(std::ostream& out) const {
  PM_CHECK_MSG(pending_.empty() && async_.empty(),
               "Recorder::write_ndjson before finalize()");
  for (const Event& e : events_) {
    out << to_ndjson_line(e) << '\n';
  }
}

namespace {

// The virtual clock: microseconds advance 1000 per round, 1 per event, so
// Perfetto renders rounds as millisecond ticks. Purely round-derived — no
// wall-clock input, byte-deterministic. Rounds wider than 1000 events spill
// into the next tick visually but keep strict event order.
std::int64_t virtual_ts(const Event& e) {
  return e.round * 1000 + static_cast<std::int64_t>(std::min<std::uint32_t>(e.seq, 999u));
}

// Perfetto "tid" lanes group event families into separate tracks.
int lane_of(Type t) {
  switch (t) {
    case Type::StageEnter:
    case Type::StageExit: return 0;
    case Type::Erode:
    case Type::Leader: return 2;
    case Type::CollectPhase: return 3;
    case Type::ZooSubphase: return 4;
    case Type::AuditViolation: return 5;
    case Type::FaultKill:
    case Type::FaultResume: return 6;
    case Type::ObdArm:
    case Type::TrainCreate:
    case Type::TrainConsume:
    case Type::ObdVerdict:
    case Type::ObdAbort:
    case Type::ObdAbsorb:
    case Type::ObdFree:
    case Type::ObdStable:
    case Type::ObdOuter: return 1;  // the OBD comparison machinery
  }
  return 1;  // unreachable: -Wswitch keeps the cases exhaustive
}

}  // namespace

void Recorder::write_perfetto(std::ostream& out) const {
  PM_CHECK_MSG(pending_.empty() && async_.empty(),
               "Recorder::write_perfetto before finalize()");
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit_one = [&](const std::string& body) {
    if (!first) out << ',';
    first = false;
    out << '\n' << body;
  };
  for (const Event& e : events_) {
    std::string body = "{\"name\":\"";
    if (e.type == Type::StageEnter || e.type == Type::StageExit) {
      append_escaped(body, e.stage);
      body += "\",\"ph\":\"";
      body += (e.type == Type::StageEnter) ? 'B' : 'E';
    } else {
      body += type_name(e.type);
      body += "\",\"ph\":\"i\",\"s\":\"t";
    }
    body += "\",\"ts\":";
    body += std::to_string(virtual_ts(e));
    body += ",\"pid\":1,\"tid\":";
    body += std::to_string(lane_of(e.type));
    body += ",\"args\":{\"round\":";
    body += std::to_string(e.round);
    body += ",\"seq\":";
    body += std::to_string(e.seq);
    body += ",\"stage\":\"";
    append_escaped(body, e.stage);
    body += "\",\"v\":";
    body += std::to_string(e.v);
    body += ",\"peer\":";
    body += std::to_string(e.peer);
    body += ",\"epoch\":";
    body += std::to_string(e.epoch);
    body += ",\"val\":";
    body += std::to_string(e.val);
    body += ",\"note\":\"";
    append_escaped(body, e.note);
    body += "\"}}";
    emit_one(body);
  }
  out << "\n]}\n";
}

std::vector<std::string> Recorder::capture_ndjson() const {
  std::vector<std::string> lines;
  lines.reserve(capture_.size());
  for (const Event& e : capture_) lines.push_back(to_ndjson_line(e));
  return lines;
}

void attach(Recorder& rec, pipeline::RunContext& ctx) {
  ctx.events = &rec;
  auto prev = ctx.erode_hook;
  ctx.erode_hook = [&rec, prev = std::move(prev)](grid::Node v) {
    if (prev) prev(v);
    Event e;
    e.type = Type::Erode;
    e.stage = "dle";
    e.val = pack_xy(v.x, v.y);
    rec.emit_async(std::move(e));
  };
}

}  // namespace pm::obs
