#include "obs/explain.h"

#include <algorithm>
#include <cstdint>
#include <istream>
#include <map>
#include <sstream>

#include "workload/json.h"

namespace pm::obs {

namespace {

long long int_field(const workload::Json& obj, const char* key,
                    const std::string& where) {
  const workload::Json* f = obj.find(key);
  if (f == nullptr) {
    throw workload::WorkloadError(where + ": missing field \"" + key + "\"");
  }
  return f->as_int(INT64_MIN / 2, INT64_MAX / 2, where + "." + key);
}

std::string str_field(const workload::Json& obj, const char* key,
                      const std::string& where) {
  const workload::Json* f = obj.find(key);
  if (f == nullptr) {
    throw workload::WorkloadError(where + ": missing field \"" + key + "\"");
  }
  return f->as_str(where + "." + key);
}

}  // namespace

std::vector<ExplainEvent> load_ndjson(std::istream& in, const std::string& where) {
  std::vector<ExplainEvent> events;
  std::string line;
  long lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    const std::string ctx = where + ":" + std::to_string(lineno);
    const workload::Json obj = workload::Json::parse(line, ctx);
    ExplainEvent e;
    e.round = static_cast<long>(int_field(obj, "round", ctx));
    e.seq = static_cast<long>(int_field(obj, "seq", ctx));
    e.type = str_field(obj, "type", ctx);
    e.stage = str_field(obj, "stage", ctx);
    e.v = static_cast<int>(int_field(obj, "v", ctx));
    e.peer = static_cast<int>(int_field(obj, "peer", ctx));
    e.epoch = static_cast<int>(int_field(obj, "epoch", ctx));
    e.val = int_field(obj, "val", ctx);
    e.note = str_field(obj, "note", ctx);
    events.push_back(std::move(e));
  }
  return events;
}

std::string format_event(const ExplainEvent& e) {
  std::ostringstream out;
  out << "round " << e.round << " seq " << e.seq << ": " << e.type;
  if (!e.stage.empty()) out << " [" << e.stage << "]";
  if (e.v >= 0) out << " v=" << e.v;
  if (e.peer >= 0) out << " peer=" << e.peer;
  if (e.epoch >= 0) out << " epoch=" << e.epoch;
  out << " val=" << e.val;
  if (!e.note.empty()) out << " (" << e.note << ")";
  return out.str();
}

namespace {

bool is_comparison_event(const ExplainEvent& e) {
  return e.type == "obd_arm" || e.type == "obd_verdict" || e.type == "obd_abort" ||
         e.type == "train_create" || e.type == "train_consume";
}

bool closes_comparison(const ExplainEvent& e) {
  return e.type == "obd_verdict" || e.type == "obd_abort";
}

}  // namespace

std::string why(const std::vector<ExplainEvent>& events, int v, long round) {
  std::ostringstream out;
  out << "why: v-node " << v;
  if (round >= 0) out << " at round " << round;
  out << "\n";

  // The anchor: the newest comparison event of v at or before `round`.
  long anchor = -1;
  for (long i = 0; i < static_cast<long>(events.size()); ++i) {
    const ExplainEvent& e = events[static_cast<std::size_t>(i)];
    if (round >= 0 && e.round > round) break;
    if (e.v != v || !is_comparison_event(e)) continue;
    if (anchor < 0 || closes_comparison(e) ||
        !closes_comparison(events[static_cast<std::size_t>(anchor)])) {
      anchor = i;
    }
  }
  if (anchor < 0) {
    out << "  no comparison events for v-node " << v
        << (round >= 0 ? " at or before that round" : "") << "\n";
    return out.str();
  }
  const ExplainEvent& a = events[static_cast<std::size_t>(anchor)];
  out << "  anchor: " << format_event(a) << "\n";

  // The epoch tag names the comparison; every event of (v, epoch) up to the
  // anchor is its causal chain, and the arm event initiated it. Length
  // verdicts can form at a *successor* v-node (train ran dry mid-segment),
  // so peer matches count too.
  const int epoch = a.epoch;
  if (epoch < 0) {
    out << "  anchor carries no epoch tag; nothing to chain\n";
    return out.str();
  }
  // Walk back to the initiating arm: the most recent arm of (v, epoch) at
  // or before the anchor. (Epochs are per-head counters mod 100, so an
  // ancient comparison can share the tag — starting at the newest arm keeps
  // the chain to this launch.)
  long arm = -1;
  for (long i = anchor; i >= 0; --i) {
    const ExplainEvent& e = events[static_cast<std::size_t>(i)];
    if (e.type == "obd_arm" && e.v == v && e.epoch == epoch) {
      arm = i;
      break;
    }
  }
  out << "  causal chain (epoch " << epoch << "):\n";
  if (arm < 0) {
    out << "    (no arm event retained for this epoch — the stream may be a "
           "flight-recorder window that starts after the launch)\n";
  }
  for (long i = (arm >= 0 ? arm : 0); i <= anchor; ++i) {
    const ExplainEvent& e = events[static_cast<std::size_t>(i)];
    if (e.epoch != epoch || !is_comparison_event(e)) continue;
    if (e.v != v && e.peer != v) continue;
    out << "    " << format_event(e);
    if (i == arm) out << "    <- initiating arm";
    out << "\n";
  }
  return out.str();
}

Divergence first_divergence(const std::vector<ExplainEvent>& a,
                            const std::vector<ExplainEvent>& b) {
  Divergence d;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const ExplainEvent& x = a[i];
    const ExplainEvent& y = b[i];
    const bool same = x.round == y.round && x.seq == y.seq && x.type == y.type &&
                      x.stage == y.stage && x.v == y.v && x.peer == y.peer &&
                      x.epoch == y.epoch && x.val == y.val && x.note == y.note;
    if (same) continue;
    d.diverged = true;
    d.index = static_cast<long>(i);
    std::ostringstream out;
    out << "first divergence at event " << i << ":\n";
    out << "  A: " << format_event(x) << "\n";
    out << "  B: " << format_event(y) << "\n";
    d.report = out.str();
    return d;
  }
  if (a.size() != b.size()) {
    d.diverged = true;
    d.index = static_cast<long>(n);
    std::ostringstream out;
    out << "streams agree on the first " << n << " events, then "
        << (a.size() > b.size() ? "A" : "B") << " continues with:\n  "
        << format_event(a.size() > b.size() ? a[n] : b[n]) << "\n";
    d.report = out.str();
    return d;
  }
  d.report = "streams are identical (" + std::to_string(a.size()) + " events)\n";
  return d;
}

std::string summarize(const std::vector<ExplainEvent>& events) {
  std::ostringstream out;
  if (events.empty()) {
    out << "empty event stream\n";
    return out.str();
  }
  std::map<std::string, long> counts;
  long lo = events.front().round;
  long hi = events.front().round;
  for (const ExplainEvent& e : events) {
    ++counts[e.type];
    lo = std::min(lo, e.round);
    hi = std::max(hi, e.round);
  }
  out << events.size() << " events, rounds " << lo << ".." << hi << "\n";
  for (const auto& [type, n] : counts) {
    out << "  " << type << ": " << n << "\n";
  }
  return out.str();
}

}  // namespace pm::obs
