// Causal queries over a recorded event stream (the pm_explain engine).
//
// Loads the NDJSON produced by obs::Recorder::write_ndjson and answers the
// forensic questions PR 8's livelock hunt had to reconstruct by hand:
//   * why(v, round) — walk the epoch-tagged comparison-train chain backward
//     from the newest verdict/abort of v-node v at or before `round` to the
//     arm event that initiated it, and print the chain forward;
//   * first_divergence(a, b) — the first event where two streams of the
//     same spec disagree (complementing pm_diff's state-level view).
//
// Header-level API so tests drive the queries directly; bench/pm_explain.cpp
// is a thin CLI over this.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace pm::obs {

// A parsed event line. Mirrors obs::Event but with the type as its wire
// name: pm_explain consumes streams from other builds/commits, so it keys
// on the serialized schema, not the in-process enum.
struct ExplainEvent {
  long round = 0;
  long seq = 0;
  std::string type;
  std::string stage;
  int v = -1;
  int peer = -1;
  int epoch = -1;
  long long val = 0;
  std::string note;
};

// Strict parse of a full NDJSON stream; throws workload::WorkloadError with
// the offending line number on malformed input. `where` names the source.
[[nodiscard]] std::vector<ExplainEvent> load_ndjson(std::istream& in,
                                                    const std::string& where);

// One event re-rendered for the report ("round 118 seq 4: obd_verdict ...").
[[nodiscard]] std::string format_event(const ExplainEvent& e);

// The causal chain behind v-node `v`'s newest comparison event at or before
// `round` (-1 = end of stream): the initiating arm, the train launches and
// consumptions of that epoch, and the verdict/abort that closed it.
// Returns a human-readable multi-line report; empty chain cases explain
// themselves in the report text.
[[nodiscard]] std::string why(const std::vector<ExplainEvent>& events, int v,
                              long round);

// First index at which the two streams differ (compares the serialized
// payload, not the text line), or -1 when one is a prefix of the other
// (length mismatch reported via the report string) or the streams match.
struct Divergence {
  long index = -1;        // event index of the first difference
  bool diverged = false;  // false = identical streams
  std::string report;     // human-readable summary
};
[[nodiscard]] Divergence first_divergence(const std::vector<ExplainEvent>& a,
                                          const std::vector<ExplainEvent>& b);

// Per-type event counts plus the round span ("--summary", also the default
// output when pm_explain gets no query).
[[nodiscard]] std::string summarize(const std::vector<ExplainEvent>& events);

}  // namespace pm::obs
