// Protocol flight recorder — causal event tracing for the whole pipeline.
//
// The telemetry layer (src/telemetry) answers "how much": aggregate counters
// and histograms, deterministic in their count kind. This layer answers
// "why": a structured log of typed protocol events — stage transitions, OBD
// comparison lifecycles (arm/verdict/abort with their epoch tags), token
// train launches, S_e erosions, zoo subphase transitions, audit outcomes,
// fault injections — ordered by (round, commit-order sequence index).
//
// Determinism contract (the same one telemetry's count kind and the BENCH
// artifacts obey): for a fixed spec the event stream is bit-identical across
// reruns, thread counts, `--jobs` shards, and sequential-vs-parallel
// engines. Two lanes make that hold:
//   * the ordered lane (emit): main-thread protocol engines (OBD, Collect,
//     the zoo, the pipeline itself, the auditor) — events keep emission
//     order, which is already deterministic;
//   * the async lane (emit_async): callbacks that fire on pool threads
//     under exec::ParallelEngine (DLE erosions, leader election). These are
//     buffered under a mutex and sorted into a canonical payload order at
//     the round flush, after the round's ordered events — exactly the
//     Auditor's erosion-buffer idiom, applied to the event stream.
//
// Modes: unbounded (every event retained, for --events captures) or a
// bounded flight-recorder ring (ring_rounds > 0: only the last K rounds are
// retained). capture() freezes the retained window — the auditor calls it
// on the first violation (round-budget watchdog trips included), pm_serve
// on a job error — generalising the watchdog's ad-hoc last-8-rounds dump.
//
// Export: NDJSON (one uniform-schema object per line, the pm_explain input
// format) and Chrome/Perfetto trace-event JSON with round-clock virtual
// timestamps (ts = round * 1000 + seq microseconds) — both byte-
// deterministic, no wall-clock fields at all.
//
// Level gating follows telemetry's runtime-level idiom, collapsed to the
// pointer itself: a null Recorder* is "off" and instrument sites pay one
// branch; there is no global registry, so concurrent --jobs scenarios each
// record into their own instance without sharing state.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace pm::pipeline {
struct RunContext;
}

namespace pm::obs {

enum class Type : std::uint8_t {
  StageEnter,     // pipeline stage begins; stage = name
  StageExit,      // pipeline stage done; val = rounds the stage took
  ObdArm,         // head v armed a comparison against successor peer
  TrainCreate,    // a token train launched; note names the kind
  TrainConsume,   // a train fully consumed, producing a result token
  ObdVerdict,     // comparison verdict reached head v; note = len/lbl/sum/stab
  ObdAbort,       // head v aborted its comparison; note = reason
  ObdAbsorb,      // head v absorbed free successor peer
  ObdFree,        // defector v-node v freed itself
  ObdStable,      // head v passed the stability check; val = count sum
  ObdOuter,       // outer ring detected at head v; val = ring id
  Erode,          // DLE removed a point from S_e; val = packed (x, y)
  Leader,         // a particle became leader; v = particle id
  CollectPhase,   // Collect engine transition; note = stage, val = phase k
  ZooSubphase,    // zoo agent v changed subphase/role; note names it
  AuditViolation, // an invariant fired; note = invariant name
  FaultKill,      // fault injection killed the run; val = kill index
  FaultResume,    // the run resumed from the post-kill snapshot
};

[[nodiscard]] const char* type_name(Type t) noexcept;

// One protocol event. `round` and `seq` are assigned by the Recorder:
// round is the pipeline-global round counter, seq the commit-order index
// within the round (ordered-lane events first, in emission order; async-
// lane events after, in canonical payload order).
struct Event {
  long round = 0;
  std::uint32_t seq = 0;
  Type type{};
  const char* stage = "";   // static-duration stage name
  std::int32_t v = -1;      // primary entity: v-node / agent / particle id
  std::int32_t peer = -1;   // secondary entity
  std::int32_t epoch = -1;  // comparison-epoch tag (OBD trains)
  std::int64_t val = 0;     // verdict / sum / phase / packed payload
  std::string note;         // short static-ish detail (train kind, reason)
};

// Packs a grid coordinate pair into Event::val (and back, for pm_explain).
[[nodiscard]] constexpr std::int64_t pack_xy(std::int32_t x, std::int32_t y) noexcept {
  return (static_cast<std::int64_t>(static_cast<std::uint32_t>(x)) << 32) |
         static_cast<std::int64_t>(static_cast<std::uint32_t>(y));
}

class Recorder {
 public:
  struct Options {
    // 0 = unbounded stream; K > 0 = flight-recorder ring keeping only
    // events of the last K rounds.
    long ring_rounds = 0;
  };

  Recorder() = default;
  explicit Recorder(Options opts) : opts_(opts) {}

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  // --- recording ---------------------------------------------------------

  // Ordered lane: main thread only (the thread driving the pipeline).
  void emit(Event e);
  // Async lane: safe from any thread; sorted into canonical payload order
  // at the next round flush.
  void emit_async(Event e);

  // Round boundary, driven by pipeline::Pipeline::step_round: flushes the
  // pending events of the round that just ran (ordered first, async events
  // sorted after), assigns seq, prunes the ring. begin_round() bumps the
  // round counter the subsequent events are tagged with.
  void begin_round();
  void end_round();
  [[nodiscard]] long round() const { return round_; }

  // Flushes any events emitted after the last end_round (stage exits,
  // fault kills at the boundary). Call before export.
  void finalize();

  // --- flight capture ----------------------------------------------------

  // Freezes a copy of the retained window (first call wins; later calls
  // are ignored so the dump describes the *first* failure).
  void capture(const std::string& reason);
  [[nodiscard]] bool captured() const { return captured_; }
  [[nodiscard]] const std::string& capture_reason() const { return capture_reason_; }
  [[nodiscard]] const std::vector<Event>& capture_events() const { return capture_; }

  // --- inspection / export ------------------------------------------------

  [[nodiscard]] std::size_t event_count() const { return events_.size(); }
  [[nodiscard]] const std::deque<Event>& events() const { return events_; }

  // One JSON object per line, uniform schema — the pm_explain input format.
  void write_ndjson(std::ostream& out) const;
  // Chrome/Perfetto trace-event JSON (chrome://tracing and ui.perfetto.dev
  // both load it): stage spans as B/E pairs, everything else as instants,
  // with virtual timestamps ts = round * 1000 + seq.
  void write_perfetto(std::ostream& out) const;
  // The frozen capture window as NDJSON lines (empty when !captured()).
  [[nodiscard]] std::vector<std::string> capture_ndjson() const;

 private:
  void flush_pending();

  Options opts_{};
  long round_ = 0;
  std::uint32_t seq_ = 0;          // next seq within the current round
  std::vector<Event> pending_;     // ordered lane, current round
  std::vector<Event> async_;       // async lane, current round (mutexed)
  std::mutex async_mu_;
  std::deque<Event> events_;       // flushed, ring-pruned when bounded

  bool captured_ = false;
  std::string capture_reason_;
  std::vector<Event> capture_;
};

// Serializes one event as its NDJSON line (shared by the stream writer and
// the flight-dump paths so the formats cannot drift).
[[nodiscard]] std::string to_ndjson_line(const Event& e);

// Chains `rec` onto a pipeline run context: sets ctx.events and wraps
// ctx.erode_hook so S_e removals land in the async lane (previous hooks
// keep firing, the Auditor's chaining idiom). Call before stages are
// initialized; re-call after a fault-injection rebuild.
void attach(Recorder& rec, pipeline::RunContext& ctx);

}  // namespace pm::obs
