#include "baselines/baselines.h"

#include <algorithm>

#include "grid/local_boundary.h"
#include "grid/metrics.h"
#include "grid/vnode.h"
#include "util/check.h"

namespace pm::baselines {

using grid::Node;
using grid::Shape;

// --- sequential erosion ----------------------------------------------------

ErosionRun::ErosionRun(const Shape& initial) : s_(initial) {
  if (!initial.simply_connected()) {
    done_ = true;  // the erosion class cannot handle holes
    return;
  }
  if (s_.size() <= 1) {
    done_ = true;
    completed_ = true;
  }
}

bool ErosionRun::step_round() {
  if (done_) return true;
  const auto sce = grid::sce_points(s_);
  PM_CHECK_MSG(!sce.empty(), "Proposition 7 violated");
  // One erosion per round: the permission token admits a single removal.
  std::vector<Node> pts(s_.nodes().begin(), s_.nodes().end());
  std::erase(pts, sce.front());
  s_ = Shape(std::move(pts));
  ++rounds_;
  if (s_.size() <= 1) {
    done_ = true;
    completed_ = true;
  }
  return done_;
}

void ErosionRun::save(Snapshot& snap) const {
  snap.put_mark(kSnapErosion);
  snap.put_i(rounds_);
  snap.put(done_ ? 1 : 0);
  snap.put(completed_ ? 1 : 0);
  snap.put(s_.size());
  for (const Node v : s_.nodes()) {
    snap.put_i(v.x);
    snap.put_i(v.y);
  }
}

ErosionRun::ErosionRun(const Shape& initial, const Snapshot& snap) {
  (void)initial;  // the eroded shape is carried whole by the snapshot
  snap.expect_mark(kSnapErosion);
  rounds_ = snap.get_i();
  done_ = snap.get() != 0;
  completed_ = snap.get() != 0;
  std::vector<Node> pts(static_cast<std::size_t>(snap.get()));
  for (Node& v : pts) {
    v.x = static_cast<std::int32_t>(snap.get_i());
    v.y = static_cast<std::int32_t>(snap.get_i());
  }
  s_ = Shape(std::move(pts));
}

BaselineResult sequential_erosion(const Shape& initial) {
  PM_CHECK_MSG(initial.simply_connected(),
               "sequential_erosion requires a shape without holes");
  ErosionRun run(initial);
  while (!run.step_round()) {
  }
  return {run.rounds(), run.completed()};
}

// --- randomized boundary contest -------------------------------------------

ContestRun::ContestRun(const Shape& initial, std::uint64_t seed)
    : shape_(initial), rng_(seed) {
  if (initial.size() == 1) {
    rounds_ = 1;
    done_ = true;
    completed_ = true;
    return;
  }
  const grid::VNodeRings rings(initial);
  const auto& ring = rings.rings()[static_cast<std::size_t>(rings.outer_ring())];
  len_ = static_cast<int>(ring.size());
  candidates_.resize(static_cast<std::size_t>(len_));
  for (int i = 0; i < len_; ++i) candidates_[static_cast<std::size_t>(i)] = i;
}

bool ContestRun::step_round() {
  if (done_) return true;
  if (candidates_.size() <= 1) {
    // Leader announcement: broadcast over the shape, O(D).
    rounds_ += grid::diameter_within_estimate(shape_.nodes(), shape_, 2, rng_);
    done_ = true;
    completed_ = true;
    return true;
  }
  // Each candidate flips; a head whose clockwise predecessor candidate
  // flipped tails eliminates that predecessor. Tokens must travel the
  // candidate gaps, which is the phase's round cost.
  std::vector<char> flips(candidates_.size());
  for (auto& f : flips) f = rng_.coin() ? 1 : 0;
  std::vector<int> survivors;
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    const std::size_t prev = (i + candidates_.size() - 1) % candidates_.size();
    const bool eliminated = flips[prev] == 1 && flips[i] == 0;
    if (!eliminated) survivors.push_back(candidates_[i]);
  }
  if (survivors.empty() || survivors.size() == candidates_.size()) {
    // Degenerate flip pattern: retry, paying one traversal.
    rounds_ += 1;
    return false;
  }
  int max_gap = 0;
  for (std::size_t i = 0; i < survivors.size(); ++i) {
    const int a = survivors[i];
    const int b = survivors[(i + 1) % survivors.size()];
    const int gap = (b - a + len_) % len_;
    max_gap = std::max(max_gap, gap == 0 ? len_ : gap);
  }
  rounds_ += max_gap;
  candidates_ = std::move(survivors);
  return false;
}

void ContestRun::save(Snapshot& snap) const {
  snap.put_mark(kSnapContest);
  for (const std::uint64_t w : rng_.state()) snap.put(w);
  snap.put_i(rounds_);
  snap.put(done_ ? 1 : 0);
  snap.put(completed_ ? 1 : 0);
  snap.put_i(len_);
  snap.put(candidates_.size());
  for (const int c : candidates_) snap.put_i(c);
}

ContestRun::ContestRun(const Shape& initial, const Snapshot& snap) : shape_(initial) {
  snap.expect_mark(kSnapContest);
  std::array<std::uint64_t, 4> s;
  for (std::uint64_t& w : s) w = snap.get();
  rng_.set_state(s);
  rounds_ = snap.get_i();
  done_ = snap.get() != 0;
  completed_ = snap.get() != 0;
  len_ = static_cast<int>(snap.get_i());
  candidates_.resize(static_cast<std::size_t>(snap.get()));
  for (int& c : candidates_) c = static_cast<int>(snap.get_i());
}

BaselineResult randomized_boundary_contest(const Shape& initial, std::uint64_t seed) {
  ContestRun run(initial, seed);
  while (!run.step_round()) {
  }
  return {run.rounds(), run.completed()};
}

}  // namespace pm::baselines
