#include "baselines/baselines.h"

#include <algorithm>
#include <vector>

#include "grid/local_boundary.h"
#include "grid/metrics.h"
#include "grid/vnode.h"
#include "util/check.h"
#include "util/rng.h"

namespace pm::baselines {

using grid::Node;
using grid::Shape;

BaselineResult sequential_erosion(const Shape& initial) {
  PM_CHECK_MSG(initial.simply_connected(),
               "sequential_erosion requires a shape without holes");
  BaselineResult res;
  Shape s = initial;
  while (s.size() > 1) {
    const auto sce = grid::sce_points(s);
    PM_CHECK_MSG(!sce.empty(), "Proposition 7 violated");
    // One erosion per round: the permission token admits a single removal.
    std::vector<Node> pts(s.nodes().begin(), s.nodes().end());
    std::erase(pts, sce.front());
    s = Shape(std::move(pts));
    ++res.rounds;
  }
  res.completed = true;
  return res;
}

BaselineResult randomized_boundary_contest(const Shape& initial, std::uint64_t seed) {
  BaselineResult res;
  if (initial.size() == 1) {
    res.completed = true;
    res.rounds = 1;
    return res;
  }
  Rng rng(seed);
  const grid::VNodeRings rings(initial);
  const auto& ring = rings.rings()[static_cast<std::size_t>(rings.outer_ring())];
  const int len = static_cast<int>(ring.size());
  // Candidate positions on the outer ring.
  std::vector<int> candidates(static_cast<std::size_t>(len));
  for (int i = 0; i < len; ++i) candidates[static_cast<std::size_t>(i)] = i;

  while (candidates.size() > 1) {
    // Each candidate flips; a head whose clockwise predecessor candidate
    // flipped tails eliminates that predecessor. Tokens must travel the
    // candidate gaps, which is the phase's round cost.
    std::vector<char> flips(candidates.size());
    for (auto& f : flips) f = rng.coin() ? 1 : 0;
    std::vector<int> survivors;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const std::size_t prev = (i + candidates.size() - 1) % candidates.size();
      const bool eliminated = flips[prev] == 1 && flips[i] == 0;
      if (!eliminated) survivors.push_back(candidates[i]);
    }
    if (survivors.empty() || survivors.size() == candidates.size()) {
      // Degenerate flip pattern: retry, paying one traversal.
      res.rounds += 1;
      continue;
    }
    int max_gap = 0;
    for (std::size_t i = 0; i < survivors.size(); ++i) {
      const int a = survivors[i];
      const int b = survivors[(i + 1) % survivors.size()];
      const int gap = (b - a + len) % len;
      max_gap = std::max(max_gap, gap == 0 ? len : gap);
    }
    res.rounds += max_gap;
    candidates = std::move(survivors);
  }
  // Leader announcement: broadcast over the shape, O(D).
  res.rounds += grid::diameter_within_estimate(initial.nodes(), initial, 2, rng);
  res.completed = true;
  return res;
}

}  // namespace pm::baselines
