// Representative baselines for the paper's Table 1 comparison (one per
// complexity class; see DESIGN.md §4 for the substitution rationale).
#pragma once

#include <cstdint>

#include "grid/shape.h"

namespace pm::baselines {

struct BaselineResult {
  long rounds = 0;
  bool completed = false;
};

// Stand-in for the O(n)/O(n^2) weak-parallelism deterministic class
// ([22], [3]): erosion where only one SCE point may erode per round (a
// circulating permission token serializes removals). Requires a
// simply-connected shape; rounds = n - 1 by construction.
BaselineResult sequential_erosion(const grid::Shape& initial);

// Stand-in for the randomized boundary-contest class ([19], [10]):
// candidates on the outer boundary ring eliminate each other by coin
// flips per phase; round cost of a phase is the maximal candidate gap the
// tokens must travel, plus a final O(D) broadcast. Expected O(L_out log
// L_out + D) rounds — near-linear, which suffices to reproduce Table 1's
// ordering.
BaselineResult randomized_boundary_contest(const grid::Shape& initial, std::uint64_t seed);

}  // namespace pm::baselines
