// Representative baselines for the paper's Table 1 comparison (one per
// complexity class; see DESIGN.md §4 for the substitution rationale).
//
// Each baseline is a steppable engine (ErosionRun / ContestRun) so the
// pipeline layer can drive, observe, and checkpoint it like the paper's own
// phases; the original one-shot functions remain as thin wrappers.
#pragma once

#include <cstdint>
#include <vector>

#include "grid/shape.h"
#include "util/rng.h"
#include "util/snapshot.h"

namespace pm::baselines {

struct BaselineResult {
  long rounds = 0;
  bool completed = false;
};

// Stand-in for the O(n)/O(n^2) weak-parallelism deterministic class
// ([22], [3]): erosion where only one SCE point may erode per round (a
// circulating permission token serializes removals). Requires a
// simply-connected shape; rounds = n - 1 by construction. A holey input
// makes the run fail immediately (done, not completed) rather than erode.
class ErosionRun {
 public:
  explicit ErosionRun(const grid::Shape& initial);
  ErosionRun(const grid::Shape& initial, const Snapshot& snap);  // resume

  // Erodes one SCE point; returns true once the run is over.
  bool step_round();

  [[nodiscard]] bool done() const { return done_; }
  [[nodiscard]] bool completed() const { return completed_; }
  [[nodiscard]] long rounds() const { return rounds_; }

  void save(Snapshot& snap) const;

 private:
  grid::Shape s_;
  long rounds_ = 0;
  bool done_ = false;
  bool completed_ = false;
};

// Stand-in for the randomized boundary-contest class ([19], [10]):
// candidates on the outer boundary ring eliminate each other by coin
// flips per phase; round cost of a phase is the maximal candidate gap the
// tokens must travel, plus a final O(D) broadcast. Expected O(L_out log
// L_out + D) rounds — near-linear, which suffices to reproduce Table 1's
// ordering. step_round() advances one elimination phase (or the final
// broadcast) — phase granularity, since a phase's round cost is variable.
class ContestRun {
 public:
  ContestRun(const grid::Shape& initial, std::uint64_t seed);
  ContestRun(const grid::Shape& initial, const Snapshot& snap);  // resume

  bool step_round();

  [[nodiscard]] bool done() const { return done_; }
  [[nodiscard]] bool completed() const { return completed_; }
  [[nodiscard]] long rounds() const { return rounds_; }

  void save(Snapshot& snap) const;

 private:
  grid::Shape shape_;  // copied: a caller's temporary must not dangle
  Rng rng_{0};
  std::vector<int> candidates_;
  int len_ = 0;  // outer-ring length (gap arithmetic modulus)
  long rounds_ = 0;
  bool done_ = false;
  bool completed_ = false;
};

// One-shot wrappers (the Table 1 drivers' original entry points).
BaselineResult sequential_erosion(const grid::Shape& initial);
BaselineResult randomized_boundary_contest(const grid::Shape& initial, std::uint64_t seed);

}  // namespace pm::baselines
