#include "scenario/scenario.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <utility>

#include "audit/audit.h"
#include "audit/fault.h"
#include "audit/trace.h"
#include "exec/thread_pool.h"
#include "grid/metrics.h"
#include "obs/obs.h"
#include "pipeline/pipeline.h"
#include "pipeline/stages.h"
#include "shapegen/shapegen.h"
#include "util/check.h"
#include "util/stats.h"
#include "util/timing.h"
#include "util/table.h"
#include "workload/workload.h"
#include "zoo/zoo.h"

// Stamped into every BENCH_*.json next to schema_version so each perf
// artifact names the commit that produced it (set by CMake at configure
// time from `git describe --always --dirty --tags`).
#ifndef PM_GIT_DESCRIBE
#define PM_GIT_DESCRIBE "unknown"
#endif

namespace pm::scenario {

using amoebot::OccupancyMode;
using amoebot::Order;
using core::DleState;

grid::Shape build_shape(const Spec& spec) {
  const auto& f = spec.family;
  if (f == "hexagon") return shapegen::hexagon(spec.p1);
  if (f == "line") return shapegen::line(spec.p1);
  if (f == "parallelogram") return shapegen::parallelogram(spec.p1, spec.p2);
  if (f == "annulus") return shapegen::annulus(spec.p1, spec.p2);
  if (f == "spiral") return shapegen::spiral(spec.p1, std::max(1, spec.p2));
  if (f == "comb") return shapegen::comb(spec.p1, spec.p2);
  if (f == "cheese") return shapegen::swiss_cheese(spec.p1, spec.p2, spec.shape_seed);
  if (f == "blob") return shapegen::random_blob(spec.p1, spec.shape_seed);
  PM_CHECK_MSG(false, "unknown shape family '" << f << "' (known: "
                                               << known_shape_families() << ")");
  return {};
}

bool algo_uses_engine(Algo a) noexcept {
  switch (a) {
    case Algo::DleOracle:
    case Algo::DlePull:
    case Algo::DleCollect:
    case Algo::PipelineOracle:
    case Algo::PipelineFull:
      return true;
    case Algo::ObdOnly:
    case Algo::BaselineErosion:
    case Algo::BaselineContest:
    case Algo::ZooDaymude:
    case Algo::ZooEmekKutten:
      // The zoo engines are round-synchronous like OBD: they never consult
      // the Engine, so Spec::threads is rejected for them (determinism
      // across --jobs is what the zoo tests pin instead).
      return false;
  }
  return false;
}

namespace {

// Algos that run a zoo::ZooStageBase stage: they elect a leader (so the
// unique-leader count applies) and carry a particle trajectory (so tracing
// works), without routing through the Engine.
bool is_zoo_algo(Algo a) noexcept {
  return a == Algo::ZooDaymude || a == Algo::ZooEmekKutten;
}

std::string default_name(const Spec& spec) {
  std::ostringstream os;
  os << spec.family << "(" << spec.p1;
  if (spec.p2 != 0) os << "," << spec.p2;
  os << ")";
  if (spec.threads > 0) os << "@t" << spec.threads;
  if (spec.fault_seed != 0) os << "!f" << spec.fault_seed;
  return os.str();
}

// Hook tracking the maximum number of connected components seen after any
// activation (the disconnection ablation's observable).
struct ComponentTracker {
  int* max_components;
  void operator()(amoebot::System<DleState>& sys, amoebot::ParticleId) const {
    *max_components = std::max(*max_components, sys.component_count());
  }
};

// The one seed policy (pipeline::SeedPolicy) a Spec's base seed maps to:
// unified for every algo except the two the seed repo drove with its split
// convention — DleCollect and the component-tracking ablation rows — which
// keep the legacy mode so their suites reproduce bit-for-bit.
pipeline::SeedPolicy seed_policy_for(const Spec& spec) {
  if (spec.algo == Algo::DleCollect || spec.track_components) {
    return pipeline::SeedPolicy::legacy_split(spec.seed);
  }
  return pipeline::SeedPolicy::unified(spec.seed);
}

// The stage composition a Spec's algo selects.
pipeline::Pipeline build_pipeline(const Spec& spec, pipeline::RunContext ctx) {
  using pipeline::Pipeline;
  switch (spec.algo) {
    case Algo::ObdOnly: {
      Pipeline p(std::move(ctx));
      p.add(std::make_unique<pipeline::ObdStage>());
      return p;
    }
    case Algo::DleOracle:
    case Algo::DlePull:
      return Pipeline::standard(std::move(ctx),
                                {.use_boundary_oracle = true,
                                 .reconnect = false,
                                 .connected_pull = spec.algo == Algo::DlePull});
    case Algo::DleCollect:
    case Algo::PipelineOracle:
      return Pipeline::standard(
          std::move(ctx),
          {.use_boundary_oracle = true, .reconnect = true, .connected_pull = false});
    case Algo::PipelineFull:
      return Pipeline::standard(
          std::move(ctx),
          {.use_boundary_oracle = false, .reconnect = true, .connected_pull = false});
    case Algo::BaselineErosion: {
      Pipeline p(std::move(ctx));
      p.add(std::make_unique<pipeline::ErosionStage>());
      return p;
    }
    case Algo::BaselineContest: {
      Pipeline p(std::move(ctx));
      p.add(std::make_unique<pipeline::ContestStage>());
      return p;
    }
    case Algo::ZooDaymude: {
      Pipeline p(std::move(ctx));
      p.add(std::make_unique<zoo::DaymudeLeStage>());
      return p;
    }
    case Algo::ZooEmekKutten: {
      Pipeline p(std::move(ctx));
      p.add(std::make_unique<zoo::EkLeStage>());
      return p;
    }
  }
  PM_CHECK_MSG(false, "unhandled algo");
  return Pipeline(pipeline::RunContext{});
}

// Maps a finished pipeline's outcome into the flat Result rows.
void fill_result(Result& res, const Spec& spec, const grid::Shape& shape,
                 const pipeline::PipelineOutcome& out,
                 const pipeline::RunContext& pctx) {
  for (const pipeline::StageReport& s : out.stages) {
    switch (s.kind) {
      case pipeline::StageKind::Obd:
        res.obd_rounds = s.metrics.rounds;
        res.obd_ms = s.metrics.wall_ms;
        break;
      case pipeline::StageKind::Dle:
        res.dle_rounds = s.metrics.rounds;
        res.dle_ms = s.metrics.wall_ms;
        res.activations = s.metrics.activations;
        break;
      case pipeline::StageKind::Collect:
        res.collect_rounds = s.metrics.rounds;
        // The seed Result reported doubling phases for DleCollect rows only
        // (elect_leader never surfaced them); keep that field bit-for-bit.
        if (spec.algo == Algo::DleCollect) res.phases = s.metrics.phases;
        res.collect_ms = s.metrics.wall_ms;
        break;
      case pipeline::StageKind::Baseline:
        res.baseline_rounds = s.metrics.rounds;
        break;
      case pipeline::StageKind::Zoo:
        // Zoo stages are single-stage competitor runs: their rounds land in
        // the baseline_rounds column (same cross-algorithm comparison slot
        // the baselines use; schema unchanged) and their deterministic
        // token/controller work count in activations.
        res.baseline_rounds = s.metrics.rounds;
        res.activations = s.metrics.activations;
        break;
    }
  }
  res.completed = out.completed;
  if (pctx.sys != nullptr) {
    // Success requires a *unique* leader (the DLE stage enforces it); the
    // reported count is the true outcome — 0, 1, or several.
    if (algo_uses_engine(spec.algo) || is_zoo_algo(spec.algo)) {
      res.leaders = core::election_outcome(*pctx.sys).leaders;
    }
    res.moves = pctx.sys->moves();
    res.peak_occupancy_cells = pctx.sys->peak_occupancy_cells();
  }
  if (spec.algo == Algo::DleCollect) {
    // Leader eccentricity w.r.t. the initial shape, measured at the
    // DLE -> Collect transition point (the leader may move during Collect).
    const pipeline::StageReport* dle = out.stage(pipeline::StageKind::Dle);
    if (dle != nullptr && dle->status == pipeline::StageStatus::Succeeded) {
      res.ecc = grid::eccentricity_grid(pctx.leader_node, shape.nodes());
    }
  }
}

const char* spec_label(const Result& res) { return res.spec.name.c_str(); }

}  // namespace

Result run_scenario(const Spec& spec) { return run_scenario(spec, RunHooks{}); }

Result run_scenario(const Spec& spec, const RunHooks& hooks) {
  PM_CHECK_MSG(!(spec.threads > 0 && spec.track_components),
               "component tracking hooks require the sequential engine");
  PM_CHECK_MSG(spec.threads == 0 || algo_uses_engine(spec.algo),
               "threads set on algo '" << algo_name(spec.algo)
                                       << "', which never consults the Engine — the "
                                          "reported thread count would be a lie");
  PM_CHECK_MSG(!(spec.fault_seed != 0 && spec.track_components),
               "fault plans may resume under a parallel engine; component tracking "
               "requires the sequential one throughout");
  Result res;
  res.spec = spec;
  if (res.spec.name.empty()) res.spec.name = default_name(spec);

  const grid::Shape shape = build_shape(spec);
  const auto m = grid::compute_metrics(shape);
  res.n = m.n;
  res.holes = m.holes;
  res.d = m.d;
  res.d_area = m.d_area;
  res.d_grid = m.d_grid;
  res.l_out = m.l_out;

  const auto t0 = WallClock::now();

  auto make_ctx = [&](int threads, OccupancyMode occupancy) {
    pipeline::RunContext ctx;
    ctx.initial = shape;
    ctx.seeds = seed_policy_for(spec);
    ctx.order = spec.order;
    ctx.occupancy = occupancy;
    ctx.threads = threads;
    ctx.max_rounds = spec.max_rounds;
    if (spec.track_components) {
      ctx.activation_hook = ComponentTracker{&res.max_components};
    }
    return ctx;
  };

  const bool recording = !hooks.events_path.empty();
  PM_CHECK_MSG(!(recording && hooks.events != nullptr),
               "events_path and a caller-owned events recorder are mutually exclusive");
  const bool instrumented = spec.fault_seed != 0 || hooks.audit ||
                            !hooks.trace_path.empty() || hooks.checkpoint_every > 0 ||
                            hooks.resume || recording || hooks.events != nullptr;
  if (!instrumented) {
    // The plain path, untouched: build one pipeline, run it to completion.
    pipeline::Pipeline pipe = build_pipeline(spec, make_ctx(spec.threads, spec.occupancy));
    const pipeline::PipelineOutcome out = pipe.run();
    fill_result(res, spec, shape, out, pipe.context());
    res.peak_rss_kb = telemetry::peak_rss_kb();
    res.wall_ms = ms_since(t0);
    return res;
  }

  // Instrumented path: the FaultRunner hosts faults, auditing, tracing and
  // checkpointing in one loop (an empty plan degrades to a plain stepped
  // run).
  audit::FaultPlan plan;
  if (spec.fault_seed != 0) {
    // Horizon scaled to the DLE erosion span so kills land mid-run across
    // the registry's shapes; kills past completion never fire.
    const long horizon = std::max<long>(6, 2L * m.d_area);
    plan = audit::FaultPlan::from_seed(spec.fault_seed, horizon, spec.threads,
                                       spec.occupancy);
  }
  audit::FaultRunner runner(
      [&](int threads, OccupancyMode occupancy) {
        return build_pipeline(spec, make_ctx(threads, occupancy));
      },
      std::move(plan), spec.threads, spec.occupancy);

  obs::Recorder recorder;  // unbounded: the whole run, flushed to a file
  if (recording) {
    PM_CHECK_MSG(hooks.events_format == "ndjson" || hooks.events_format == "perfetto",
                 "unknown events format '" << hooks.events_format
                                           << "' (known: ndjson, perfetto)");
    runner.set_events(&recorder);
  } else if (hooks.events != nullptr) {
    runner.set_events(hooks.events);
  }
  std::unique_ptr<audit::Auditor> auditor;
  if (hooks.audit) {
    audit::Options aopts;
    aopts.check_every = std::max<long>(1, hooks.audit_every);
    auditor = audit::Auditor::standard(aopts);
    runner.set_auditor(auditor.get(), &m);
  }
  audit::TraceWriter writer;
  bool tracing = false;
  if (!hooks.trace_path.empty()) {
    if (hooks.resume) {
      // A resumed run starts mid-trajectory; a trace with a fresh-run
      // header but mid-run frames would fail its own --replay contract.
      std::fprintf(stderr,
                   "scenario %s: --trace records whole runs and --resume may start "
                   "mid-run, not tracing\n",
                   spec_label(res));
    } else if (algo_uses_engine(spec.algo) || spec.algo == Algo::ObdOnly ||
               is_zoo_algo(spec.algo)) {
      tracing = true;
      runner.set_trace(&writer);
    } else {
      std::fprintf(stderr, "scenario %s: baseline algos have no trajectory, not tracing\n",
                   spec_label(res));
    }
  }
  if (hooks.checkpoint_every > 0 || hooks.resume) {
    runner.set_checkpoint(hooks.checkpoint_every, hooks.checkpoint_path);
  }
  if (hooks.resume) {
    std::string why;
    if (runner.try_resume(&why)) {
      std::fprintf(stderr, "scenario %s: resumed from %s\n", spec_label(res),
                   hooks.checkpoint_path.c_str());
    } else {
      std::fprintf(stderr, "scenario %s: %s — running fresh\n", spec_label(res),
                   why.c_str());
    }
  }

  const pipeline::PipelineOutcome out = runner.run();
  const pipeline::RunContext& pctx = runner.pipeline().context();
  fill_result(res, spec, shape, out, pctx);

  if (auditor != nullptr) {
    auditor->finish(out, pctx);
    res.audit_violations = static_cast<int>(auditor->violations().size());
    if (!auditor->clean()) {
      std::fprintf(stderr, "scenario %s: %s\n", spec_label(res),
                   auditor->report().c_str());
    }
    if (hooks.audit_report != nullptr) {
      for (const audit::Violation& v : auditor->violations()) {
        hooks.audit_report->push_back("[" + v.invariant + "] round " +
                                      std::to_string(v.round) + " (" + v.stage +
                                      "): " + v.detail);
      }
    }
  }
  if (recording) {
    // After auditor->finish: end-of-run violations belong in the stream.
    recorder.finalize();
    std::ofstream file(hooks.events_path);
    if (file) {
      if (hooks.events_format == "perfetto") {
        recorder.write_perfetto(file);
      } else {
        recorder.write_ndjson(file);
      }
    } else {
      std::fprintf(stderr, "scenario %s: cannot write events %s\n", spec_label(res),
                   hooks.events_path.c_str());
    }
  }
  if (tracing) {
    writer.finish(out, pctx);
    std::ofstream file(hooks.trace_path);
    if (file) {
      file << writer.snapshot().serialize();
    } else {
      std::fprintf(stderr, "scenario %s: cannot write trace %s\n", spec_label(res),
                   hooks.trace_path.c_str());
    }
  }
  if ((hooks.checkpoint_every > 0 || hooks.resume) && !hooks.checkpoint_path.empty()) {
    // An orderly end makes the periodic checkpoint stale; only a killed
    // process leaves one behind for --resume.
    std::remove(hooks.checkpoint_path.c_str());
  }
  res.peak_rss_kb = telemetry::peak_rss_kb();
  res.wall_ms = ms_since(t0);
  return res;
}

std::vector<Result> run_suite(const Suite& suite, const SuiteRunOptions& opts) {
  // reps = 0 would make every scenario silently report as failed; fail
  // loudly instead (bench_main validates its flags, direct callers may not).
  PM_CHECK_MSG(opts.reps >= 1, "run_suite needs reps >= 1 (got " << opts.reps << ")");
  // Per-scenario instrumentation file names are index-keyed: scenario
  // labels contain shell-hostile characters, indices are stable.
  auto hooks_for = [&](int index) {
    RunHooks hooks;
    hooks.audit = opts.audit;
    hooks.audit_every = opts.audit_every;
    char idx[16];
    std::snprintf(idx, sizeof idx, "%03d", index);
    if (!opts.trace_prefix.empty()) {
      hooks.trace_path = opts.trace_prefix + "." + suite.name + "." + idx + ".trace";
    }
    if (!opts.events_prefix.empty()) {
      hooks.events_format = opts.events_format;
      hooks.events_path = opts.events_prefix + "." + suite.name + "." + idx +
                          (opts.events_format == "perfetto" ? ".json" : ".ndjson");
    }
    if (opts.checkpoint_every > 0 || opts.resume) {
      hooks.checkpoint_every = opts.checkpoint_every;
      hooks.checkpoint_path =
          opts.checkpoint_dir + "/CKPT_" + suite.name + "_" + idx + ".snap";
      hooks.resume = opts.resume;
    }
    return hooks;
  };

  auto run_one = [&](int index, const Spec& s) -> Result {
    // Best-of-N repetitions: every rep rebuilds the system from scratch, so
    // the dense occupancy index starts from a fresh bounding box each time.
    // Results are identical across reps except for the wall-clock fields;
    // the fastest rep is kept. Errors are caught per rep — a failed
    // invariant, or a system error like thread exhaustion, must not abort
    // the suite (the ThreadPool's workers require it) nor discard a
    // complete Result an earlier rep already produced.
    const RunHooks hooks = hooks_for(index);
    bool have = false;
    Result best;
    for (int rep = 0; rep < opts.reps; ++rep) {
      try {
        Result next = run_scenario(s, hooks);
        if (!have || next.wall_ms < best.wall_ms) best = std::move(next);
        have = true;
      } catch (const std::exception& e) {
        std::fprintf(stderr, "scenario %s/%s rep %d failed: %s\n", suite.name.c_str(),
                     s.name.empty() ? s.family.c_str() : s.name.c_str(), rep, e.what());
      } catch (...) {
        std::fprintf(stderr, "scenario %s/%s rep %d failed\n", suite.name.c_str(),
                     s.name.empty() ? s.family.c_str() : s.name.c_str(), rep);
      }
    }
    if (have) return best;
    Result failed;  // every rep failed: record the scenario as incomplete
    failed.spec = s;
    if (failed.spec.name.empty()) failed.spec.name = default_name(s);
    return failed;
  };

  std::vector<Result> results(suite.specs.size());
  const int n = static_cast<int>(suite.specs.size());
  if (opts.jobs > 1 && n > 1) {
    // Scenario-level fan-out: one self-contained system per worker, results
    // written into fixed slots — bit-for-bit the serial output, reordered
    // in time only. (run_one never throws; the pool requires that.)
    exec::ThreadPool pool(std::min(opts.jobs, n));
    pool.for_each_index(n, [&](int i) {
      results[static_cast<std::size_t>(i)] = run_one(i, suite.specs[static_cast<std::size_t>(i)]);
    });
  } else {
    for (int i = 0; i < n; ++i) {
      results[static_cast<std::size_t>(i)] = run_one(i, suite.specs[static_cast<std::size_t>(i)]);
    }
  }
  return results;
}

// --- suite registry --------------------------------------------------------
//
// The registry itself is data: src/workload defines each built-in suite as
// a workload::WorkloadSuite (sweeps + named parameter sets), and the two
// functions below are thin resolve() calls over it. `pm_bench --emit-spec`
// writes the same data out as the committed workloads/*.json files, which
// reproduce every suite bit-for-bit without this binary's registry.

std::vector<std::string> suite_names() { return workload::registry_names(); }

Suite make_suite(const std::string& name) {
  return workload::to_scenario_suite(workload::registry_suite(name));
}

namespace {

// Suites excluded from the "all" expansion (heavy large-n sweeps).
bool heavy_suite(const std::string& name) {
  return name == "dle_large" || name == "parallel_scaling";
}

}  // namespace

// --- reporting -------------------------------------------------------------

void print_results(const Suite& suite, const std::vector<Result>& results,
                   std::ostream& os) {
  Table table({"scenario", "algo", "thr", "n", "holes", "D", "D_A", "L_out", "obd", "dle",
               "collect", "base", "total", "ok", "comps", "wall ms"});
  for (const Result& r : results) {
    table.add_row({r.spec.name, algo_name(r.spec.algo),
                   r.spec.threads > 0 ? Table::num(static_cast<long long>(r.spec.threads))
                                      : "-",
                   Table::num(static_cast<long long>(r.n)),
                   Table::num(static_cast<long long>(r.holes)),
                   Table::num(static_cast<long long>(r.d)),
                   Table::num(static_cast<long long>(r.d_area)),
                   Table::num(static_cast<long long>(r.l_out)),
                   Table::num(static_cast<long long>(r.obd_rounds)),
                   Table::num(static_cast<long long>(r.dle_rounds)),
                   Table::num(static_cast<long long>(r.collect_rounds)),
                   Table::num(static_cast<long long>(r.baseline_rounds)),
                   Table::num(static_cast<long long>(r.total_rounds())),
                   r.completed ? "yes" : "NO",
                   r.spec.track_components ? Table::num(static_cast<long long>(r.max_components))
                                           : "-",
                   Table::num(r.wall_ms)});
  }
  os << "=== suite " << suite.name << " — " << suite.description << " ===\n"
     << table.to_string();

  // Audit summary (only when the suite ran with --audit).
  {
    int audited = 0;
    int violations = 0;
    for (const Result& r : results) {
      if (r.audit_violations >= 0) {
        ++audited;
        violations += r.audit_violations;
      }
    }
    if (audited > 0) {
      os << "audit: " << audited << " scenarios checked, "
         << (violations == 0 ? std::string("all invariants clean")
                             : std::to_string(violations) + " violation(s) — see stderr")
         << "\n";
    }
  }

  // Suite-specific scaling summaries (the fits the seed benches printed).
  auto fit_line = [&](const char* label, std::vector<double> xs, std::vector<double> ys,
                      bool with_linear) {
    if (xs.size() < 2) return;
    char buf[160];
    const LinearFit pow = fit_power(xs, ys);
    if (with_linear) {
      const LinearFit lin = fit_linear(xs, ys);
      std::snprintf(buf, sizeof buf,
                    "%s: linear slope %.2f (r^2 %.3f), power exponent %.2f\n", label,
                    lin.slope, lin.r2, pow.slope);
    } else {
      std::snprintf(buf, sizeof buf, "%s: power exponent %.2f\n", label, pow.slope);
    }
    os << buf;
  };
  std::vector<double> xs;
  std::vector<double> ys;
  if (suite.name == "obd_scaling") {
    for (const Result& r : results) {
      if (!r.completed) continue;
      xs.push_back(r.l_out + r.d);
      ys.push_back(static_cast<double>(r.obd_rounds));
    }
    fit_line("OBD rounds vs L_out+D (Theorem 41 predicts exponent 1)", xs, ys, false);
  } else if (suite.name == "dle_scaling" || suite.name == "dle_large") {
    for (const Result& r : results) {
      if (!r.completed) continue;
      xs.push_back(r.d_area);
      ys.push_back(static_cast<double>(r.dle_rounds));
    }
    fit_line("DLE rounds vs D_A (Theorem 18 predicts exponent 1)", xs, ys, true);
  } else if (suite.name == "collect_scaling") {
    for (const Result& r : results) {
      if (!r.completed || r.ecc < 0) continue;
      xs.push_back(std::max(1, r.ecc));
      ys.push_back(static_cast<double>(r.collect_rounds));
    }
    fit_line("Collect rounds vs ecc(l) (Theorem 23 predicts exponent 1)", xs, ys, false);
  } else if (suite.name == "ablation_disconnection") {
    for (const Result& r : results) {
      if (!r.completed || r.spec.algo != Algo::BaselineErosion) continue;
      xs.push_back(r.d_area);
      ys.push_back(static_cast<double>(r.baseline_rounds));
    }
    fit_line("erosion-class rounds vs D_A (quadratic class; DLE stays linear)", xs, ys,
             false);
  } else if (suite.name == "parallel_scaling" || suite.name == "parallel_smoke") {
    // Per-workload speedup vs the sequential (threads = 0) row.
    for (const Result& r : results) {
      if (!r.completed || r.spec.threads <= 0) continue;
      for (const Result& base : results) {
        if (base.spec.threads == 0 && base.completed &&
            base.spec.family == r.spec.family && base.spec.p1 == r.spec.p1 &&
            base.spec.p2 == r.spec.p2) {
          char buf[160];
          std::snprintf(buf, sizeof buf, "%s: %.2fx vs sequential (%.1f -> %.1f ms)\n",
                        r.spec.name.c_str(), r.wall_ms > 0 ? base.wall_ms / r.wall_ms : 0.0,
                        base.wall_ms, r.wall_ms);
          os << buf;
          break;
        }
      }
    }
  }
  os << "\n";
}

// --- serialization ---------------------------------------------------------

using workload::json_escape;

std::string result_json_line(const Result& r, bool with_wall) {
  std::ostringstream os;
  char wall[64];
  os << "{\"scenario\": \"" << json_escape(r.spec.name) << "\", "
     << "\"family\": \"" << json_escape(r.spec.family) << "\", "
     << "\"p1\": " << r.spec.p1 << ", \"p2\": " << r.spec.p2 << ", "
     << "\"shape_seed\": " << r.spec.shape_seed << ", "
     << "\"algo\": \"" << algo_name(r.spec.algo) << "\", "
     << "\"order\": \"" << amoebot::order_name(r.spec.order) << "\", "
     << "\"seed\": " << r.spec.seed << ", "
     << "\"fault_seed\": " << r.spec.fault_seed << ", "
     << "\"occupancy\": \"" << occupancy_name(r.spec.occupancy) << "\", "
     << "\"threads\": " << r.spec.threads << ", "
     << "\"n\": " << r.n << ", \"holes\": " << r.holes << ", \"d\": " << r.d
     << ", \"d_area\": " << r.d_area << ", \"d_grid\": " << r.d_grid
     << ", \"l_out\": " << r.l_out << ", \"ecc\": " << r.ecc
     << ", \"obd_rounds\": " << r.obd_rounds << ", \"dle_rounds\": " << r.dle_rounds
     << ", \"collect_rounds\": " << r.collect_rounds
     << ", \"baseline_rounds\": " << r.baseline_rounds
     << ", \"total_rounds\": " << r.total_rounds() << ", \"phases\": " << r.phases
     << ", \"activations\": " << r.activations << ", \"moves\": " << r.moves
     << ", \"completed\": " << (r.completed ? "true" : "false")
     << ", \"leaders\": " << r.leaders
     << ", \"max_components\": " << r.max_components
     << ", \"peak_occupancy_cells\": " << r.peak_occupancy_cells
     << ", \"peak_rss_kb\": " << (with_wall ? r.peak_rss_kb : 0)
     << ", \"audit_violations\": " << r.audit_violations;
  std::snprintf(wall, sizeof wall, "%.3f", with_wall ? r.wall_ms : 0.0);
  os << ", \"wall_ms\": " << wall;
  std::snprintf(wall, sizeof wall, "%.3f", with_wall ? r.obd_ms : 0.0);
  os << ", \"obd_ms\": " << wall;
  std::snprintf(wall, sizeof wall, "%.3f", with_wall ? r.dle_ms : 0.0);
  os << ", \"dle_ms\": " << wall;
  std::snprintf(wall, sizeof wall, "%.3f", with_wall ? r.collect_ms : 0.0);
  os << ", \"collect_ms\": " << wall << "}";
  return os.str();
}

std::string to_json(const Suite& suite, const std::vector<Result>& results,
                    const std::vector<telemetry::MetricValue>* metrics, bool with_time) {
  std::ostringstream os;
  os << "{\n  \"suite\": \"" << json_escape(suite.name) << "\",\n"
     << "  \"description\": \"" << json_escape(suite.description) << "\",\n"
     << "  \"schema_version\": 5,\n"
     << "  \"git_describe\": \"" << json_escape(PM_GIT_DESCRIBE) << "\",\n"
     << "  \"workload_hash\": \"" << workload::content_hash_hex(suite.specs) << "\",\n";
  // v5 telemetry block: null when the run collected no metrics (level 0),
  // so artifact diffs distinguish "off" from "on but nothing fired".
  os << "  \"telemetry\": {\"metrics\": ";
  if (metrics == nullptr) {
    os << "null";
  } else {
    os << "[";
    for (std::size_t i = 0; i < metrics->size(); ++i) {
      if (i > 0) os << ", ";
      os << "\n    " << telemetry::to_json_object((*metrics)[i], with_time);
    }
    os << (metrics->empty() ? "]" : "\n  ]");
  }
  os << "},\n"
     << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    os << "    " << result_json_line(results[i], /*with_wall=*/true);
    if (i + 1 < results.size()) os << ",";
    os << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

std::string to_csv(const std::vector<Result>& results) {
  std::ostringstream os;
  os << "scenario,family,algo,order,seed,fault_seed,occupancy,threads,n,holes,d,d_area,"
        "d_grid,l_out,ecc,obd_rounds,dle_rounds,collect_rounds,baseline_rounds,"
        "total_rounds,phases,activations,moves,completed,leaders,max_components,"
        "peak_occupancy_cells,peak_rss_kb,audit_violations,wall_ms\n";
  for (const Result& r : results) {
    // Scenario labels like "annulus(8,5)" contain commas — always quoted.
    // Workload files let authors pick names, so embedded quotes must be
    // CSV-doubled or they would shift every following column.
    std::string label = r.spec.name;
    for (std::size_t i = 0; i < label.size(); ++i) {
      if (label[i] == '"') label.insert(i++, 1, '"');
    }
    os << '"' << label << "\"," << r.spec.family << "," << algo_name(r.spec.algo) << ","
       << amoebot::order_name(r.spec.order) << "," << r.spec.seed << ","
       << r.spec.fault_seed << ","
       << occupancy_name(r.spec.occupancy) << "," << r.spec.threads << ","
       << r.n << "," << r.holes << "," << r.d
       << "," << r.d_area << "," << r.d_grid << "," << r.l_out << "," << r.ecc << ","
       << r.obd_rounds << "," << r.dle_rounds << "," << r.collect_rounds << ","
       << r.baseline_rounds << "," << r.total_rounds() << "," << r.phases << ","
       << r.activations << "," << r.moves << "," << (r.completed ? 1 : 0) << ","
       << r.leaders << "," << r.max_components << "," << r.peak_occupancy_cells << ","
       << r.peak_rss_kb << "," << r.audit_violations << "," << r.wall_ms << "\n";
  }
  return os.str();
}

// --- CLI -------------------------------------------------------------------

namespace {

// Strict integer parse: the whole string must be a number >= lo (atoi would
// turn a typo like "four" into a silently-valid 0).
bool parse_count(const std::string& s, int lo, int& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const long val = std::strtol(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  if (val < lo || val > 1'000'000) return false;
  out = static_cast<int>(val);
  return true;
}

void usage(const char* prog) {
  std::printf(
      "usage: %s [SUITE ...] [options]\n"
      "  --list                 list registered suites and exit\n"
      "  --suite FILTER         run every registered suite whose name contains\n"
      "                         FILTER (may repeat; combines with named suites)\n"
      "  --spec FILE            run the workload suite described by FILE (a\n"
      "                         workloads/*.json document; may repeat; combines\n"
      "                         with named suites)\n"
      "  --emit-spec DIR        write each named suite (default: every registered\n"
      "                         suite) as DIR/<suite>.json and exit — the files\n"
      "                         reproduce the built-in registry via --spec\n"
      "  --threads N            override the thread count of every spec:\n"
      "                         0 = sequential engine, N >= 1 = ParallelEngine\n"
      "                         (component-tracking ablation specs always stay\n"
      "                         sequential — hooks have no parallel counterpart)\n"
      "  --jobs N               run up to N scenarios of a suite concurrently\n"
      "                         (one particle system per worker; results are\n"
      "                         bit-for-bit the serial output)\n"
      "  --reps N               run each scenario N times, keep the fastest\n"
      "                         (fresh system and occupancy index per rep)\n"
      "  --json-dir=DIR         directory for BENCH_<suite>.json (default .)\n"
      "  --no-json              skip JSON output\n"
      "  --no-wall              zero the wall-clock fields in all output, making\n"
      "                         artifacts bit-for-bit reproducible (golden diffs)\n"
      "  --csv=FILE             also write all results to FILE as CSV\n"
      "  --occupancy=MODE       dense | hash | differential (default: build default)\n"
      "  --compare-occupancy    run each suite with dense AND hash occupancy and\n"
      "                         report the wall-time speedup per scenario\n"
      "  --audit                check the paper's invariants every round (connectivity,\n"
      "                         S_e erosion, OBD ring conservation, unique leader,\n"
      "                         termination, round budget); non-zero exit on violation\n"
      "  --audit-every=N        audit cadence in rounds (default 1; stage transitions\n"
      "                         are always audited)\n"
      "  --trace=PREFIX         record one trajectory trace per scenario to\n"
      "                         PREFIX.<suite>.<NNN>.trace (baselines skipped)\n"
      "  --events=PREFIX        record one protocol event stream per scenario to\n"
      "                         PREFIX.<suite>.<NNN>.{ndjson,json}; timestamps are\n"
      "                         the deterministic round clock, so files are\n"
      "                         byte-identical across reruns, --threads and --jobs\n"
      "  --events-format=F      ndjson (default; pm_explain input) | perfetto\n"
      "                         (Chrome trace JSON, load via ui.perfetto.dev)\n"
      "  --replay=FILE          replay a recorded trace instead of running suites:\n"
      "                         re-executes it, checks bit-identical trajectory, and\n"
      "                         audits both live and offline; exit 0 iff clean\n"
      "  --checkpoint-every=N   write a per-scenario checkpoint every N rounds to\n"
      "                         <checkpoint-dir>/CKPT_<suite>_<NNN>.snap (removed on\n"
      "                         orderly completion)\n"
      "  --checkpoint-dir=DIR   where checkpoints live (default .)\n"
      "  --resume               resume each scenario from its checkpoint file when\n"
      "                         one is present and valid (else run fresh)\n"
      "  --metrics=FILE         collect telemetry and append one NDJSON snapshot per\n"
      "                         suite to FILE; count-kind metrics are deterministic\n"
      "                         (diffable across runs/threads/jobs), time-kind ones\n"
      "                         are zeroed under --no-wall. Also embeds the metrics\n"
      "                         in BENCH_<suite>.json (schema v5 telemetry block)\n"
      "  --metrics-detail       level-2 telemetry: adds per-query occupancy-mode\n"
      "                         counters (measurably slower; implies --metrics\n"
      "                         collection even without a FILE)\n"
      "SUITE may be a registered name or 'all' (every suite except the heavy\n"
      "large-n sweeps dle_large and parallel_scaling).\n",
      prog);
}

}  // namespace

namespace {

// Standalone --replay mode: the file is re-executed against its recorded
// configuration, compared round-for-round, and audited twice (live during
// the re-execution, then offline on the reconstructed trajectory alone).
int replay_main(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read trace %s\n", path.c_str());
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  try {
    const Snapshot trace = Snapshot::parse(buf.str());
    const audit::ReplayResult rr = audit::replay_trace(trace);
    if (rr.identical) {
      std::printf("replay %s: %ld rounds re-executed, trajectory bit-identical\n",
                  path.c_str(), rr.rounds);
    } else {
      std::printf("replay %s: DIVERGED at round %ld: %s\n", path.c_str(),
                  rr.divergence_round, rr.detail.c_str());
    }
    std::printf("audit (live replay): %zu violation(s)\n", rr.violations.size());
    for (const audit::Violation& v : rr.violations) {
      std::printf("  [%s] round %ld (%s): %s\n", v.invariant.c_str(), v.round,
                  v.stage.c_str(), v.detail.c_str());
    }
    const std::vector<audit::Violation> offline = audit::audit_trace(trace);
    std::printf("audit (offline, from trace alone): %zu violation(s)\n", offline.size());
    for (const audit::Violation& v : offline) {
      std::printf("  [%s] round %ld (%s): %s\n", v.invariant.c_str(), v.round,
                  v.stage.c_str(), v.detail.c_str());
    }
    return rr.identical && rr.violations.empty() && offline.empty() ? 0 : 1;
  } catch (const CheckError& e) {
    std::fprintf(stderr, "replay %s failed: %s\n", path.c_str(), e.what());
    return 2;
  }
}

}  // namespace

int bench_main(int argc, char** argv, const char* default_suite) {
  std::vector<std::string> wanted;
  std::vector<std::string> filters;
  std::vector<std::string> spec_files;
  std::string json_dir = ".";
  std::string csv_path;
  std::string replay_path;
  std::string trace_prefix;
  std::string events_prefix;
  std::string events_format = "ndjson";
  bool have_events_format = false;
  std::string checkpoint_dir = ".";
  std::string emit_spec_dir;
  std::string metrics_path;
  bool no_json = false;
  bool no_wall = false;
  bool compare = false;
  bool metrics_on = false;
  bool metrics_detail = false;
  bool have_occ = false;
  bool do_audit = false;
  bool resume = false;
  OccupancyMode occ = OccupancyMode::Dense;
  int threads = -1;  // -1 = leave each spec's own value
  int jobs = 1;
  int reps = 1;
  int audit_every = 1;
  int checkpoint_every = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) { return arg.substr(std::strlen(prefix)); };
    // Accepts both "--flag=V" and "--flag V" for the value-taking flags.
    auto next_value = [&](const char* flag, std::string& out) {
      if (arg.rfind(std::string(flag) + "=", 0) == 0) {
        out = arg.substr(std::strlen(flag) + 1);
        return true;
      }
      if (arg == flag && i + 1 < argc) {
        out = argv[++i];
        return true;
      }
      return arg == flag;  // flag without a value: caught by empty `out`
    };
    std::string v;
    if (arg == "--list") {
      for (const auto& name : suite_names()) {
        std::printf("%-24s %s\n", name.c_str(), make_suite(name).description.c_str());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg.rfind("--json-dir=", 0) == 0) {
      json_dir = value("--json-dir=");
    } else if (arg == "--no-json") {
      no_json = true;
    } else if (arg == "--no-wall") {
      no_wall = true;
    } else if (arg == "--spec" || arg.rfind("--spec=", 0) == 0) {
      if (!next_value("--spec", v) || v.empty()) {
        std::fprintf(stderr, "--spec needs a workload file\n");
        return 2;
      }
      spec_files.push_back(v);
    } else if (arg == "--emit-spec" || arg.rfind("--emit-spec=", 0) == 0) {
      if (!next_value("--emit-spec", v) || v.empty()) {
        std::fprintf(stderr, "--emit-spec needs a directory\n");
        return 2;
      }
      emit_spec_dir = v;
    } else if (arg.rfind("--csv=", 0) == 0) {
      csv_path = value("--csv=");
    } else if (arg.rfind("--occupancy=", 0) == 0) {
      if (!parse_occupancy(value("--occupancy="), occ)) {
        std::fprintf(stderr, "bad --occupancy value\n");
        return 2;
      }
      have_occ = true;
    } else if (arg == "--compare-occupancy") {
      compare = true;
    } else if (arg == "--suite" || arg.rfind("--suite=", 0) == 0) {
      if (!next_value("--suite", v) || v.empty()) {
        std::fprintf(stderr, "--suite needs a filter string\n");
        return 2;
      }
      filters.push_back(v);
    } else if (arg == "--threads" || arg.rfind("--threads=", 0) == 0) {
      // 1024 is far above any real pool; a typo'd extra digit must not send
      // the ThreadPool constructor off to spawn a million OS threads.
      if (!next_value("--threads", v) || !parse_count(v, 0, threads) || threads > 1024) {
        std::fprintf(stderr, "bad --threads value (need an integer in [0, 1024])\n");
        return 2;
      }
    } else if (arg == "--jobs" || arg.rfind("--jobs=", 0) == 0) {
      // Same ceiling rationale as --threads: a typo must not ask the pool
      // for a million workers.
      if (!next_value("--jobs", v) || !parse_count(v, 1, jobs) || jobs > 1024) {
        std::fprintf(stderr, "bad --jobs value (need an integer in [1, 1024])\n");
        return 2;
      }
    } else if (arg == "--reps" || arg.rfind("--reps=", 0) == 0) {
      if (!next_value("--reps", v) || !parse_count(v, 1, reps)) {
        std::fprintf(stderr, "bad --reps value (need an integer >= 1)\n");
        return 2;
      }
    } else if (arg == "--audit") {
      do_audit = true;
    } else if (arg == "--audit-every" || arg.rfind("--audit-every=", 0) == 0) {
      if (!next_value("--audit-every", v) || !parse_count(v, 1, audit_every)) {
        std::fprintf(stderr, "bad --audit-every value (need an integer >= 1)\n");
        return 2;
      }
      do_audit = true;
    } else if (arg == "--trace" || arg.rfind("--trace=", 0) == 0) {
      if (!next_value("--trace", v) || v.empty()) {
        std::fprintf(stderr, "--trace needs a file prefix\n");
        return 2;
      }
      trace_prefix = v;
    } else if (arg == "--events" || arg.rfind("--events=", 0) == 0) {
      if (!next_value("--events", v) || v.empty()) {
        std::fprintf(stderr, "--events needs a file prefix\n");
        return 2;
      }
      events_prefix = v;
    } else if (arg == "--events-format" || arg.rfind("--events-format=", 0) == 0) {
      if (!next_value("--events-format", v) || (v != "ndjson" && v != "perfetto")) {
        std::fprintf(stderr, "bad --events-format value (ndjson | perfetto)\n");
        return 2;
      }
      events_format = v;
      have_events_format = true;
    } else if (arg == "--replay" || arg.rfind("--replay=", 0) == 0) {
      if (!next_value("--replay", v) || v.empty()) {
        std::fprintf(stderr, "--replay needs a trace file\n");
        return 2;
      }
      replay_path = v;
    } else if (arg == "--checkpoint-every" || arg.rfind("--checkpoint-every=", 0) == 0) {
      if (!next_value("--checkpoint-every", v) || !parse_count(v, 1, checkpoint_every)) {
        std::fprintf(stderr, "bad --checkpoint-every value (need an integer >= 1)\n");
        return 2;
      }
    } else if (arg == "--checkpoint-dir" || arg.rfind("--checkpoint-dir=", 0) == 0) {
      if (!next_value("--checkpoint-dir", v) || v.empty()) {
        std::fprintf(stderr, "--checkpoint-dir needs a directory\n");
        return 2;
      }
      checkpoint_dir = v;
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--metrics" || arg.rfind("--metrics=", 0) == 0) {
      if (!next_value("--metrics", v) || v.empty()) {
        std::fprintf(stderr, "--metrics needs an output file (NDJSON)\n");
        return 2;
      }
      metrics_path = v;
      metrics_on = true;
    } else if (arg == "--metrics-detail") {
      metrics_on = true;
      metrics_detail = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    } else {
      wanted.push_back(arg);
    }
  }
  if (!replay_path.empty()) return replay_main(replay_path);
  if (!emit_spec_dir.empty() && !spec_files.empty()) {
    std::fprintf(stderr, "--emit-spec writes the built-in registry; it cannot be "
                         "combined with --spec\n");
    return 2;
  }
  if (have_events_format && events_prefix.empty()) {
    std::fprintf(stderr, "--events-format without --events records nothing\n");
    return 2;
  }
  if (compare && have_occ) {
    std::fprintf(stderr,
                 "--compare-occupancy runs dense and hash itself; it cannot be "
                 "combined with --occupancy\n");
    return 2;
  }
  if (compare && no_wall) {
    std::fprintf(stderr,
                 "--no-wall zeroes exactly the wall times --compare-occupancy "
                 "exists to report; the combination is always a mistake\n");
    return 2;
  }
  // Expand --suite filters into registered names (substring match).
  for (const auto& f : filters) {
    bool matched = false;
    for (const auto& name : suite_names()) {
      if (name.find(f) != std::string::npos) {
        wanted.push_back(name);
        matched = true;
      }
    }
    if (!matched) {
      std::fprintf(stderr, "--suite '%s' matches no registered suite (see --list)\n",
                   f.c_str());
      return 2;
    }
  }
  // --spec alone runs just the named files, and --emit-spec defaults to the
  // whole registry; the registry default kicks in only when nothing at all
  // was requested.
  if (wanted.empty() && spec_files.empty() && emit_spec_dir.empty()) {
    wanted.emplace_back(default_suite ? default_suite : "all");
  }

  // Expand "all" (everything except the heavy large-n sweeps), then dedup
  // keep-first: overlapping --suite filters, or a positional name a filter
  // also matches, must not run a suite (and rewrite its JSON) twice.
  std::vector<std::string> names;
  for (const auto& w : wanted) {
    if (w == "all") {
      for (const auto& name : suite_names()) {
        if (!heavy_suite(name)) names.push_back(name);
      }
    } else {
      names.push_back(w);
    }
  }
  std::vector<std::string> unique_names;
  for (const auto& name : names) {
    if (std::find(unique_names.begin(), unique_names.end(), name) == unique_names.end()) {
      unique_names.push_back(name);
    }
  }
  names = std::move(unique_names);

  if (!emit_spec_dir.empty()) {
    // Emit mode runs after name expansion so --suite filters and "all"
    // mean the same thing they mean for running; with nothing named it
    // writes the whole registry (heavy sweeps included — emitting is
    // free).
    if (names.empty()) names = suite_names();
    for (const auto& name : names) {
      workload::WorkloadSuite wsuite;
      try {
        wsuite = workload::registry_suite(name);
      } catch (const CheckError& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
      const std::string path = emit_spec_dir + "/" + name + ".json";
      std::ofstream out(path);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
      }
      out << workload::to_json(wsuite);
      std::printf("wrote %s\n", path.c_str());
    }
    return 0;
  }

  // Everything that will run, in request order: registered suites first,
  // then workload files. A file is just another suite once loaded — every
  // flag (--jobs, --audit, --compare-occupancy, ...) applies uniformly.
  std::vector<Suite> suites;
  for (const auto& name : names) {
    try {
      suites.push_back(make_suite(name));
    } catch (const CheckError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }
  for (const auto& path : spec_files) {
    try {
      suites.push_back(workload::to_scenario_suite(workload::load_suite_file(path)));
    } catch (const CheckError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
    // A file whose internal suite name collides with an already-requested
    // suite would silently overwrite its BENCH_<name>.json; refuse loudly
    // (the differential workflow runs the two paths in separate
    // invocations with distinct --json-dir values).
    for (std::size_t i = 0; i + 1 < suites.size(); ++i) {
      if (suites[i].name == suites.back().name) {
        std::fprintf(stderr,
                     "--spec %s: suite '%s' is already being run in this invocation; "
                     "both runs would write BENCH_%s.json — run them separately "
                     "(e.g. with different --json-dir)\n",
                     path.c_str(), suites.back().name.c_str(), suites.back().name.c_str());
        return 2;
      }
    }
  }

  // Metrics collection: level 1 adds the time histograms at per-round
  // granularity, level 2 the per-query occupancy counters. The NDJSON file
  // is truncated once and appended per suite.
  if (metrics_on) telemetry::set_level(metrics_detail ? 2 : 1);
  std::ofstream metrics_out;
  if (!metrics_path.empty()) {
    metrics_out.open(metrics_path);
    if (!metrics_out) {
      std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
      return 1;
    }
  }

  std::vector<Result> all_results;
  // Violations from runs that are not part of all_results (the hash pass
  // of --compare-occupancy) still count toward the audit exit gate.
  long side_violations = 0;
  for (Suite& suite : suites) {
    if (have_occ) {
      for (Spec& s : suite.specs) s.occupancy = occ;
    }
    if (threads >= 0) {
      // Only specs whose algo actually routes through the Engine take the
      // override — hooks stay sequential, and OBD-only/baseline rows must
      // not be stamped with a thread count they never used.
      for (Spec& s : suite.specs) {
        if (!s.track_components && algo_uses_engine(s.algo)) s.threads = threads;
      }
    }

    // In compare mode the suite's reported results ARE the dense pass, and
    // a hash pass runs next to it — each spec executes exactly twice.
    SuiteRunOptions ropts;
    ropts.jobs = jobs;
    ropts.reps = reps;
    ropts.audit = do_audit;
    ropts.audit_every = audit_every;
    ropts.trace_prefix = trace_prefix;
    ropts.events_prefix = events_prefix;
    ropts.events_format = events_format;
    ropts.checkpoint_every = checkpoint_every;
    ropts.checkpoint_dir = checkpoint_dir;
    ropts.resume = resume;
    Suite primary = suite;
    if (compare) {
      for (Spec& s : primary.specs) s.occupancy = OccupancyMode::Dense;
    }
    if (metrics_on) telemetry::reset();  // each suite's harvest stands alone
    std::vector<Result> results = run_suite(primary, ropts);
    // Harvested before the --compare-occupancy hash pass runs, so the
    // reported metrics describe exactly the suite's primary results.
    std::vector<telemetry::MetricValue> metrics;
    if (metrics_on) {
      metrics = telemetry::harvest();
      if (metrics_out.is_open()) {
        metrics_out << telemetry::to_ndjson(metrics, suite.name, /*with_time=*/!no_wall);
      }
    }
    std::vector<Result> hash_results;
    if (compare) {
      Suite hashed = suite;
      for (Spec& s : hashed.specs) s.occupancy = OccupancyMode::Hash;
      hash_results = run_suite(hashed, ropts);
      for (const Result& r : hash_results) {
        if (r.audit_violations > 0) side_violations += r.audit_violations;
      }
    }
    if (no_wall) {
      // The wall clocks are the only nondeterministic Result fields; with
      // them zeroed, reruns of the same workload are bit-identical files.
      // (hash_results needs no scrub: --no-wall + --compare-occupancy is
      // rejected up front, so it is always empty here.)
      for (Result& r : results) {
        r.wall_ms = r.obd_ms = r.dle_ms = r.collect_ms = 0.0;
        r.peak_rss_kb = 0;  // machine-dependent, like the wall clocks
      }
    }
    print_results(suite, results, std::cout);

    if (compare) {
      Table table({"scenario", "algo", "n", "dense ms", "hash ms", "speedup"});
      double dense_total = 0.0;
      double hash_total = 0.0;
      for (std::size_t i = 0; i < results.size(); ++i) {
        const Result& rd = results[i];
        const Result& rh = hash_results[i];
        if (!rd.completed || !rh.completed) continue;
        dense_total += rd.wall_ms;
        hash_total += rh.wall_ms;
        table.add_row({rd.spec.name, algo_name(rd.spec.algo),
                       Table::num(static_cast<long long>(rd.n)), Table::num(rd.wall_ms),
                       Table::num(rh.wall_ms),
                       Table::num(rd.wall_ms > 0 ? rh.wall_ms / rd.wall_ms : 0.0)});
      }
      std::cout << "=== occupancy comparison (hash ms / dense ms) ===\n"
                << table.to_string();
      std::printf("total: dense %.1f ms, hash %.1f ms, speedup %.2fx\n\n", dense_total,
                  hash_total, dense_total > 0 ? hash_total / dense_total : 0.0);
    }

    if (!no_json) {
      const std::string path = json_dir + "/BENCH_" + suite.name + ".json";
      std::ofstream out(path);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
      }
      // `primary` carries the specs as actually run (occupancy forced dense
      // in compare mode), so the embedded workload_hash names the executed
      // workload exactly.
      out << to_json(primary, results, metrics_on ? &metrics : nullptr,
                     /*with_time=*/!no_wall);
      std::printf("wrote %s\n\n", path.c_str());
    }
    all_results.insert(all_results.end(), results.begin(), results.end());
  }

  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
      return 1;
    }
    out << to_csv(all_results);
    std::printf("wrote %s\n", csv_path.c_str());
  }
  if (do_audit) {
    long violations = side_violations;
    for (const Result& r : all_results) {
      if (r.audit_violations > 0) violations += r.audit_violations;
    }
    if (violations > 0) {
      std::fprintf(stderr, "AUDIT FAILED: %ld invariant violation(s) across all suites\n",
                   violations);
      return 1;
    }
  }
  return 0;
}

}  // namespace pm::scenario
