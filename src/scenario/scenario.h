// The experiment layer: a scenario registry and a unified driver.
//
// A Spec is one fully-determined experiment — shape family × size × shape
// seed × algorithm (or baseline) × scheduler order × run seed × occupancy
// mode. A Suite is a named list of Specs; the registry provides the suites
// the paper's evaluation needs (Table 1, the three scaling laws, the
// disconnection ablation, and a large-n stress sweep). run_scenario()
// executes one Spec and returns a flat, machine-readable Result; bench_main()
// is the shared CLI behind `pm_bench` and the per-suite shim binaries, and
// writes one BENCH_<suite>.json per suite so performance trajectories can be
// tracked across PRs.
//
// Everything is seed-driven and deterministic: running the same suite twice
// yields identical Results except for the wall-clock fields.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "amoebot/engine.h"
#include "grid/shape.h"
#include "telemetry/telemetry.h"
// The name <-> enum tables (algo_name, parse_algo, occupancy_name, ...)
// live in scenario/names.h; included here so every scenario user keeps
// seeing them.
#include "scenario/names.h"

namespace pm::obs {
class Recorder;
}

namespace pm::scenario {

// Which algorithm (or baseline) a scenario drives.
enum class Algo {
  ObdOnly,          // Primitive OBD on its own (Theorem 41 scaling)
  DleOracle,        // DLE with the boundary oracle, no reconnection
  DlePull,          // the connected-pull ablation variant (Remark §4.2.1)
  DleCollect,       // DLE then Collect, with leader-eccentricity metrics
  PipelineOracle,   // oracle boundary -> DLE -> Collect
  PipelineFull,     // OBD -> DLE -> Collect (the paper's full pipeline)
  BaselineErosion,  // sequential erosion class ([22]/[3]-style stand-in)
  BaselineContest,  // randomized boundary contest ([19]/[10]-style stand-in)
  ZooDaymude,       // algorithm zoo: Daymude et al. improved LE (1701.03616)
  ZooEmekKutten,    // algorithm zoo: Emek–Kutten-style deterministic LE
};

struct Spec {
  std::string name;    // row label, auto-derived from the family if empty
  std::string family;  // hexagon|line|parallelogram|annulus|spiral|comb|cheese|blob
  int p1 = 0;          // family parameter 1 (radius / n / outer / teeth)
  int p2 = 0;          // family parameter 2 (inner / holes / tooth_len)
  std::uint64_t shape_seed = 0;

  Algo algo = Algo::DleOracle;
  amoebot::Order order = amoebot::Order::RandomPerm;
  // Base seed, mapped to a pipeline::SeedPolicy by run_scenario: unified
  // for most algos; the legacy-split mode for DleCollect and the
  // component-tracking ablation rows, which reproduces the seed repo's
  // convention for those suites bit-for-bit (see seed_policy_for).
  std::uint64_t seed = 1;
  long max_rounds = 8'000'000;
  amoebot::OccupancyMode occupancy = amoebot::kDefaultOccupancy;
  bool track_components = false;  // per-activation component count (ablation)
  // 0 = sequential Engine; >= 1 = exec::ParallelEngine with that many
  // threads driving the Engine-scheduled (DLE) stage. Results are
  // bit-for-bit identical across thread counts; only wall times move.
  // Incompatible with track_components (hooks are sequential-only).
  int threads = 0;
  // Non-zero: a seeded audit::FaultPlan kills the run at derived round
  // boundaries and resumes it from its own checkpoint (possibly under the
  // other engine kind), proving crash-determinism per scenario — every
  // Result field except wall times is bit-identical to an uninterrupted
  // run. Incompatible with track_components (fault plans switch engines).
  std::uint64_t fault_seed = 0;

  friend bool operator==(const Spec&, const Spec&) = default;
};

// Materializes the Spec's shape (deterministic in the Spec fields).
[[nodiscard]] grid::Shape build_shape(const Spec& spec);

// Whether an algo routes its DLE stage through the Engine, i.e. can honor
// Spec::threads; OBD-only and the baselines run their own sequential or
// round-synchronous loops. Shared by run_scenario's preconditions and the
// workload layer's load-time validation — one predicate, no drift.
[[nodiscard]] bool algo_uses_engine(Algo a) noexcept;

struct Result {
  Spec spec;
  // Shape metrics (paper §2.1 quantities).
  int n = 0;
  int holes = 0;
  int d = 0;
  int d_area = 0;
  int d_grid = 0;
  int l_out = 0;
  int ecc = -1;  // leader eccentricity (DleCollect only)
  // Outcome.
  long obd_rounds = 0;
  long dle_rounds = 0;
  long collect_rounds = 0;
  long baseline_rounds = 0;
  int phases = 0;  // Collect doubling phases
  long long activations = 0;
  long long moves = 0;
  bool completed = false;
  int leaders = -1;  // unique-leader check, -1 = not applicable
  int max_components = 0;  // only when spec.track_components
  long long peak_occupancy_cells = 0;
  // Peak resident set size (kB) of the whole process at the end of the run
  // (Linux VmHWM; 0 where unavailable). Like the wall clocks it is
  // machine-dependent: zeroed in --no-wall artifacts.
  long peak_rss_kb = 0;
  int audit_violations = -1;  // -1 = not audited; else the Auditor's count
  // Wall-clock (the only nondeterministic fields).
  double wall_ms = 0.0;
  double obd_ms = 0.0;
  double dle_ms = 0.0;
  double collect_ms = 0.0;

  [[nodiscard]] long total_rounds() const {
    return obd_rounds + dle_rounds + collect_rounds + baseline_rounds;
  }
};

Result run_scenario(const Spec& spec);

// Optional per-run instrumentation (src/audit wiring), all off by default.
// run_scenario(spec) is exactly run_scenario(spec, {}).
struct RunHooks {
  // Attach the standard invariant Auditor (paper invariants, see
  // audit/audit.h); the violation count lands in Result::audit_violations
  // and details go to stderr / `audit_report`.
  bool audit = false;
  long audit_every = 1;  // audit cadence in pipeline rounds
  // Record a delta-encoded trace of the run to this file (audit/trace.h);
  // baseline algos carry no particle trajectory and are skipped with a
  // warning.
  std::string trace_path;
  // Periodic auto-checkpointing: write pipeline (+ audit) state to
  // `checkpoint_path` every N pipeline rounds; the file is removed once
  // the run ends in an orderly way.
  long checkpoint_every = 0;
  std::string checkpoint_path;
  // Resume from `checkpoint_path` when it holds a valid checkpoint of this
  // exact scenario; otherwise run fresh (with a stderr note).
  bool resume = false;
  // Record the structured protocol event stream (src/obs) to this file.
  // `events_format` is "ndjson" (one event object per line) or "perfetto"
  // (Chrome trace JSON, load via ui.perfetto.dev). Timestamps are the
  // deterministic round clock, so under --no-wall conventions the file is
  // byte-identical across reruns, thread counts, and --jobs fan-out.
  std::string events_path;
  std::string events_format = "ndjson";
  // Caller-owned recorder wired into the run instead of `events_path` (the
  // two are mutually exclusive). pm_serve's per-job flight ring records
  // through this; the caller finalizes and exports, run_scenario only
  // attaches it (and the Auditor freezes it on the first violation).
  obs::Recorder* events = nullptr;
  // Out-param (may be null): one formatted line per audit violation.
  std::vector<std::string>* audit_report = nullptr;
};

Result run_scenario(const Spec& spec, const RunHooks& hooks);

struct Suite {
  std::string name;
  std::string description;
  std::vector<Spec> specs;
};

// How run_suite executes a suite's specs.
struct SuiteRunOptions {
  // Scenario-level fan-out: specs run concurrently on an exec::ThreadPool,
  // one particle system per worker. Results are bit-for-bit identical to a
  // serial run (each scenario is self-contained and deterministic); only
  // wall times move. Composes with Spec::threads (each worker may itself
  // drive a ParallelEngine).
  int jobs = 1;
  // Best-of-N repetitions per spec: every rep rebuilds the system from
  // scratch; the fastest rep's Result is kept.
  int reps = 1;
  // Per-scenario instrumentation, fanned out to run_scenario: invariant
  // auditing, trace recording (one file per scenario under trace_prefix),
  // and periodic checkpointing with resume-from-latest (one checkpoint
  // file per scenario under checkpoint_dir).
  bool audit = false;
  long audit_every = 1;
  std::string trace_prefix;
  long checkpoint_every = 0;
  std::string checkpoint_dir = ".";
  bool resume = false;
  // Protocol event recording, one stream per scenario under
  // PREFIX.<suite>.<NNN>.{ndjson,json} (extension follows the format).
  std::string events_prefix;
  std::string events_format = "ndjson";
};

// Runs every spec of a suite (in spec order; a failed scenario yields an
// incomplete Result instead of aborting the suite).
std::vector<Result> run_suite(const Suite& suite, const SuiteRunOptions& opts = {});

// Registered suite names, in registry order. "all" (accepted by bench_main)
// expands to every suite except the large-n stress sweep. The registry
// itself is data: each name maps to a workload::WorkloadSuite (see
// src/workload), and make_suite is a thin resolve() over it.
[[nodiscard]] std::vector<std::string> suite_names();

// Throws pm::CheckError for an unknown name.
[[nodiscard]] Suite make_suite(const std::string& name);

void print_results(const Suite& suite, const std::vector<Result>& results,
                   std::ostream& os);

// One Result as a single canonical JSON object line (no trailing newline).
// `with_wall` = false zeroes the wall-clock fields, making the record
// deterministic — the form pm_serve streams and --no-wall artifacts use.
[[nodiscard]] std::string result_json_line(const Result& r, bool with_wall = true);

// One JSON document per suite (schema versioned; see README). Each document
// carries `workload_hash`, the content hash of the fully-resolved spec list
// (workload::content_hash_hex), so an artifact names exactly the workload
// that produced it and silent spec drift is a visible diff. Since schema v5
// a `telemetry` block holds the suite's harvested metrics (`metrics` may be
// null when the run collected none); count-kind entries are deterministic,
// time-kind entries are zeroed when `with_time` is false (--no-wall).
[[nodiscard]] std::string to_json(const Suite& suite, const std::vector<Result>& results,
                                  const std::vector<telemetry::MetricValue>* metrics = nullptr,
                                  bool with_time = true);

// Flat CSV rows (with header) for spreadsheet-style analysis.
[[nodiscard]] std::string to_csv(const std::vector<Result>& results);

// Shared CLI driver:
//   pm_bench [SUITE ...] [--list] [--suite FILTER] [--spec FILE]
//            [--emit-spec DIR] [--threads N] [--jobs N]
//            [--reps N] [--json-dir=DIR] [--no-json] [--no-wall] [--csv=FILE]
//            [--occupancy=dense|hash|differential] [--compare-occupancy]
//            [--audit] [--audit-every=N] [--trace=PREFIX] [--replay=FILE]
//            [--events=PREFIX] [--events-format=ndjson|perfetto]
//            [--checkpoint-every=N] [--checkpoint-dir=DIR] [--resume]
//            [--metrics=FILE] [--metrics-detail]
// `default_suite` is what a per-suite shim binary runs when no suite is
// named on the command line (nullptr = "all"). Returns non-zero when
// --audit found violations or a --replay diverged.
int bench_main(int argc, char** argv, const char* default_suite = nullptr);

}  // namespace pm::scenario
