// The one name <-> enum table module for the experiment layer.
//
// Every serializer and parser that spells an Algo, Order, OccupancyMode or
// shape family as a string goes through here: the scenario JSON/CSV
// emitters, bench_main's flag parsing, and the workload layer's spec codec.
// Each enum gets a matched pair — `X_name` (never fails) and `parse_X`
// (returns false on an unknown string) — plus a `known_X` listing for
// actionable "got 'foo', expected one of ..." error messages.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "amoebot/engine.h"

namespace pm::scenario {

enum class Algo;  // defined in scenario/scenario.h

[[nodiscard]] const char* algo_name(Algo a) noexcept;
[[nodiscard]] bool parse_algo(std::string_view s, Algo& out) noexcept;

[[nodiscard]] const char* occupancy_name(amoebot::OccupancyMode m) noexcept;
[[nodiscard]] bool parse_occupancy(std::string_view s,
                                   amoebot::OccupancyMode& out) noexcept;

// order_name itself lives with the Order enum (amoebot/engine.h); the
// inverse lives here with the other parsers.
[[nodiscard]] bool parse_order(std::string_view s, amoebot::Order& out) noexcept;

// The shapegen families build_shape accepts, in registry order.
[[nodiscard]] const std::vector<std::string>& shape_families();
[[nodiscard]] bool is_shape_family(std::string_view s) noexcept;

// Comma-separates any name list — the one formatter every "expected one
// of ..." error message uses.
[[nodiscard]] std::string join_names(const std::vector<std::string>& names);

// Comma-separated name listings for error messages ("expected one of ...").
[[nodiscard]] std::string known_algo_names();
[[nodiscard]] std::string known_order_names();
[[nodiscard]] std::string known_occupancy_names();
[[nodiscard]] std::string known_shape_families();

}  // namespace pm::scenario
