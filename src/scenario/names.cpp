#include "scenario/names.h"

#include "scenario/scenario.h"

namespace pm::scenario {

namespace {

// One row per enumerator; `parse` walks the table, `known_*` prints it.
// Keeping name and enum side by side in a single array is the point of this
// module — the previous code spelled these strings in three places.
template <typename E>
struct NameRow {
  E value;
  const char* name;
};

constexpr NameRow<Algo> kAlgoRows[] = {
    {Algo::ObdOnly, "obd"},
    {Algo::DleOracle, "dle_oracle"},
    {Algo::DlePull, "dle_pull"},
    {Algo::DleCollect, "dle_collect"},
    {Algo::PipelineOracle, "pipeline_oracle"},
    {Algo::PipelineFull, "pipeline_full"},
    {Algo::BaselineErosion, "baseline_erosion"},
    {Algo::BaselineContest, "baseline_contest"},
    {Algo::ZooDaymude, "zoo_daymude"},
    {Algo::ZooEmekKutten, "zoo_ek"},
};

constexpr NameRow<amoebot::Order> kOrderRows[] = {
    {amoebot::Order::RoundRobin, "round_robin"},
    {amoebot::Order::RandomPerm, "random_perm"},
    {amoebot::Order::RandomStream, "random_stream"},
};

constexpr NameRow<amoebot::OccupancyMode> kOccupancyRows[] = {
    {amoebot::OccupancyMode::Dense, "dense"},
    {amoebot::OccupancyMode::Hash, "hash"},
    {amoebot::OccupancyMode::Differential, "differential"},
};

template <typename E, std::size_t N>
const char* lookup_name(const NameRow<E> (&rows)[N], E value) noexcept {
  for (const auto& row : rows) {
    if (row.value == value) return row.name;
  }
  return "?";
}

template <typename E, std::size_t N>
bool lookup_value(const NameRow<E> (&rows)[N], std::string_view s, E& out) noexcept {
  for (const auto& row : rows) {
    if (s == row.name) {
      out = row.value;
      return true;
    }
  }
  return false;
}

template <typename E, std::size_t N>
std::string join_names(const NameRow<E> (&rows)[N]) {
  std::string out;
  for (const auto& row : rows) {
    if (!out.empty()) out += ", ";
    out += row.name;
  }
  return out;
}

}  // namespace

const char* algo_name(Algo a) noexcept { return lookup_name(kAlgoRows, a); }

bool parse_algo(std::string_view s, Algo& out) noexcept {
  return lookup_value(kAlgoRows, s, out);
}

const char* occupancy_name(amoebot::OccupancyMode m) noexcept {
  return lookup_name(kOccupancyRows, m);
}

bool parse_occupancy(std::string_view s, amoebot::OccupancyMode& out) noexcept {
  return lookup_value(kOccupancyRows, s, out);
}

bool parse_order(std::string_view s, amoebot::Order& out) noexcept {
  return lookup_value(kOrderRows, s, out);
}

const std::vector<std::string>& shape_families() {
  static const std::vector<std::string> families = {
      "hexagon", "line", "parallelogram", "annulus",
      "spiral",  "comb", "cheese",        "blob",
  };
  return families;
}

bool is_shape_family(std::string_view s) noexcept {
  for (const auto& f : shape_families()) {
    if (s == f) return true;
  }
  return false;
}

std::string join_names(const std::vector<std::string>& names) {
  std::string out;
  for (const auto& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

std::string known_algo_names() { return join_names(kAlgoRows); }
std::string known_order_names() { return join_names(kOrderRows); }
std::string known_occupancy_names() { return join_names(kOccupancyRows); }

std::string known_shape_families() { return join_names(shape_families()); }

}  // namespace pm::scenario
