// pm_serve's engine: a deterministic NDJSON job loop.
//
// Jobs arrive one JSON object per line; each is either a bare workload spec
// ({"family": "hexagon", "p1": 8, ...}) or an envelope wrapping one:
//
//   {"id": "caller-key", "spec": {...},
//    "audit": true, "audit_every": 4,          // per-job RunHooks
//    "trace": "out.trace",
//    "checkpoint_every": 64, "checkpoint": "ckpt.snap", "resume": true}
//
// "audit_every" implies auditing; an explicit "audit": false wins wherever
// it appears in the envelope. The file-writing hooks ("trace",
// "checkpoint") name plain paths the jobs open themselves — with jobs > 1,
// two in-flight jobs naming the same path would interleave writes, so give
// each job its own file (key the path by the job id).
//
// Jobs are scheduled onto the existing exec::ThreadPool in windows of
// `jobs * kWindowFactor` (fork/join per window — jobs = 1 degrades to fully
// streamed execution), and every job runs isolated: a failure — malformed
// JSON, validation, a runner CheckError — produces an error record for its
// line, never kills the server. One record is emitted per input line, in
// input order:
//
//   {"job": 3, "id": "...", "ok": true, "spec": {...}, "result": {...}}
//   {"job": 4, "ok": false, "error": "..."}
//
// Determinism contract: with `wall` off (the default), the output byte
// stream is a pure function of the input byte stream — the same jobs give
// the same records for any `jobs` value, because every scenario is
// deterministic, records carry no clocks, and emission order is input
// order. `--wall` trades that away for timing data.
#pragma once

#include <iosfwd>
#include <string>

namespace pm::workload {

struct ServeOptions {
  // Concurrent jobs per window (the exec::ThreadPool width). 1 = run and
  // emit each job as it arrives.
  int jobs = 1;
  // Include real wall-clock fields in result records (breaks the
  // deterministic-output contract; off by default).
  bool wall = false;
  // Attach the invariant Auditor to every job that does not say otherwise.
  bool audit = false;
  long audit_every = 1;
  // K > 0: every job records protocol events (src/obs) into a bounded
  // flight ring of the last K rounds; a job that fails — or whose audit
  // finds a violation — dumps the frozen window into its own record as a
  // "flight" object ({"reason", "events": [...]}). Events carry only the
  // deterministic round clock, so the output contract is unchanged.
  long flight = 0;
  // Periodic server stats: when non-null, one NDJSON line (throughput,
  // queue depth, per-job p50/p99 latency) is written to *stats after every
  // `stats_every` completed jobs and once at end of stream. Deliberately a
  // stream of its own: stats carry wall-derived rates, so they must never
  // share `out` — the result stream stays a pure function of the input
  // whether or not stats are enabled (tests/workload/serve_test.cpp pins
  // this byte-for-byte).
  std::ostream* stats = nullptr;
  long stats_every = 64;
};

struct ServeStats {
  long jobs = 0;
  long failed = 0;           // records with "ok": false
  long audit_violations = 0; // summed over audited jobs
};

// Drains `in` to EOF, writing one record per job line to `out` (flushed per
// window so pipe consumers see progress). Blank lines are ignored.
ServeStats serve(std::istream& in, std::ostream& out, const ServeOptions& opts);

}  // namespace pm::workload
