// A strict, dependency-free JSON reader for workload files.
//
// Scope is deliberately narrow: this parses *configuration*, not arbitrary
// interchange. It accepts exactly the JSON subset the workload schema uses —
// objects, arrays, strings, booleans, null, and integers (no floats: every
// numeric spec field is integral, and silently rounding "p1": 8.5 would be a
// validation hole) — and it is strict where lenient parsers hide user
// errors:
//   * trailing garbage after the top-level value is rejected,
//   * duplicate object keys are rejected,
//   * object key order is preserved (the canonical emitter and the
//     round-trip guarantee depend on it).
// All failures throw WorkloadError with a line:column position.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/check.h"

namespace pm::workload {

// Every failure in the workload layer — JSON syntax, schema shape, spec
// validation — is a WorkloadError; the what() string is the actionable
// message (position for syntax errors, field context for schema errors).
class WorkloadError : public CheckError {
 public:
  explicit WorkloadError(const std::string& what) : CheckError(what) {}
};

class Json {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Int, Str, Arr, Obj };

  // Objects as ordered key/value lists: canonical re-emission must preserve
  // the author's ordering, and workload objects are small enough that
  // linear key lookup beats a map.
  using Members = std::vector<std::pair<std::string, Json>>;

  Json() = default;
  static Json make_bool(bool b);
  // Integers carry sign + magnitude so the full uint64 seed range and
  // negative validation inputs both survive parsing exactly.
  static Json make_int(bool negative, std::uint64_t magnitude);
  static Json make_str(std::string s);
  static Json make_arr(std::vector<Json> items);
  static Json make_obj(Members members);

  // Strict parse of a complete document. `where` names the source (a file
  // path, "stdin job 12", ...) and prefixes every error message.
  static Json parse(std::string_view text, const std::string& where);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_obj() const { return kind_ == Kind::Obj; }
  [[nodiscard]] bool is_arr() const { return kind_ == Kind::Arr; }
  [[nodiscard]] bool is_str() const { return kind_ == Kind::Str; }
  [[nodiscard]] static const char* kind_name(Kind k) noexcept;

  // Typed accessors; `context` names the field for the error message.
  [[nodiscard]] bool as_bool(const std::string& context) const;
  // Checked integral conversion into [lo, hi].
  [[nodiscard]] long long as_int(long long lo, long long hi,
                                 const std::string& context) const;
  [[nodiscard]] std::uint64_t as_u64(const std::string& context) const;
  [[nodiscard]] const std::string& as_str(const std::string& context) const;
  [[nodiscard]] const std::vector<Json>& as_arr(const std::string& context) const;
  [[nodiscard]] const Members& as_obj(const std::string& context) const;

  // Object member lookup (nullptr when absent; requires is_obj()).
  [[nodiscard]] const Json* find(std::string_view key) const;

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  bool negative_ = false;
  std::uint64_t magnitude_ = 0;
  std::string str_;
  std::vector<Json> arr_;
  Members obj_;
};

}  // namespace pm::workload
