// The declarative workload API: experiments as data.
//
// A workload file is a versioned JSON document that fully determines a
// scenario::Suite — no recompile needed to add shapes, seeds, orders,
// occupancy modes or thread ladders. The model has three layers:
//
//   * SpecPatch — a partial assignment of Spec fields ({"family":
//     "hexagon", "p1": 8}); the unit every generator composes.
//   * Sweep — a cartesian generator: a base patch plus ordered axes, where
//     each axis is a list of patches (inline, or a reference into the
//     suite's named parameter sets). Expansion applies suite defaults, the
//     base, then one patch per axis (last axis varies fastest — the nested-
//     loop order the C++ registry used). Seed ladders are one-axis sweeps.
//   * WorkloadSuite — name + description + defaults + named parameter sets
//     + an ordered list of items (explicit specs and sweeps).
//
// resolve() expands a suite into the flat, validated spec list run_suite
// executes; to_json()/parse_suite() are a canonical codec with a round-trip
// guarantee (emit(parse(emit(x))) == emit(x), byte for byte — the committed
// workloads/*.json files are emitter output). content_hash() fingerprints
// the fully-resolved spec list; BENCH artifacts carry it (schema v4) so
// silent spec drift between an artifact and the workload that claims to
// describe it fails loudly.
//
// The built-in registry lives here too, as data: registry_suite() returns
// the WorkloadSuite behind each scenario::make_suite() name, and
// `pm_bench --emit-spec DIR` writes them out as the committed files.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "scenario/scenario.h"
#include "workload/json.h"

namespace pm::workload {

// The workload data model reuses the runner's Spec struct verbatim: a
// workload *is* input data for run_scenario, and duplicating the field list
// would buy a conversion seam and nothing else. What this layer adds is
// everything the struct lacks — strict validation, a canonical JSON codec,
// generators, and a content hash.
using WorkloadSpec = scenario::Spec;

// Bumped when the file schema changes shape; parse_suite rejects documents
// from a different major version with an actionable message.
inline constexpr int kWorkloadVersion = 1;

// A partial assignment of WorkloadSpec fields. Absent fields leave the
// target untouched, so patches compose: defaults, then a sweep's base, then
// one patch per axis.
struct SpecPatch {
  std::optional<std::string> name;
  std::optional<std::string> family;
  std::optional<int> p1;
  std::optional<int> p2;
  std::optional<std::uint64_t> shape_seed;
  std::optional<scenario::Algo> algo;
  std::optional<amoebot::Order> order;
  std::optional<std::uint64_t> seed;
  std::optional<long> max_rounds;
  std::optional<amoebot::OccupancyMode> occupancy;
  std::optional<bool> track_components;
  std::optional<int> threads;
  std::optional<std::uint64_t> fault_seed;

  // Derived integer fields. Each slot holds a canonical integer expression
  // over the spec's *literal* integer fields ("p1 - 3", "seed + 1"),
  // evaluated at resolve time after defaults, base, and every axis patch
  // have applied — so one sweep can express co-varying fields (the
  // dle_adversarial suite needed one item per scheduler seed only because
  // its cheese/blob shape seeds track it; le_zoo spells that as data). In
  // JSON a derived field is a string where the number would be:
  // {"p2": "p1 - 3"}. A later patch assigning the same field — literal or
  // expression — replaces the earlier assignment (see merge()).
  std::optional<std::string> p1_expr;
  std::optional<std::string> p2_expr;
  std::optional<std::string> shape_seed_expr;
  std::optional<std::string> seed_expr;
  std::optional<std::string> max_rounds_expr;
  std::optional<std::string> fault_seed_expr;

  // Writes the literal fields onto `spec`; expression slots are resolve-time
  // (resolve()/parse_spec() evaluate them after all patches merge).
  void apply(WorkloadSpec& spec) const;
  // Field-wise overlay: every assignment in `other` — literal or expression
  // — replaces this patch's assignment of the same field.
  void merge(const SpecPatch& other);
  [[nodiscard]] bool empty() const;
  friend bool operator==(const SpecPatch&, const SpecPatch&) = default;
};

// One cartesian generator. Each axis is either a reference to a named
// parameter set (`ref` non-empty) or an inline patch list.
struct Sweep {
  struct Axis {
    std::string ref;                 // mutually exclusive with `patches`
    std::vector<SpecPatch> patches;  // inline axis values
    friend bool operator==(const Axis&, const Axis&) = default;
  };
  SpecPatch base;
  std::vector<Axis> axes;
  friend bool operator==(const Sweep&, const Sweep&) = default;
};

// One entry of a suite's ordered item list: an explicit spec row or a sweep.
struct Item {
  enum class Kind : std::uint8_t { Spec, Sweep };
  Kind kind = Kind::Spec;
  SpecPatch spec;  // valid when kind == Spec
  Sweep sweep;     // valid when kind == Sweep
  friend bool operator==(const Item&, const Item&) = default;
};

struct WorkloadSuite {
  std::string name;
  std::string description;
  SpecPatch defaults;
  // Named parameter sets, in declaration order (order matters for the
  // canonical emit, and files are written for human diffing).
  std::vector<std::pair<std::string, std::vector<SpecPatch>>> params;
  std::vector<Item> items;
  friend bool operator==(const WorkloadSuite&, const WorkloadSuite&) = default;
};

// --- derived-field expressions ---------------------------------------------
//
// The expression mini-language behind SpecPatch's *_expr slots. Grammar
// (integer arithmetic, C++ precedence and truncation):
//   expr    := term (('+' | '-') term)*
//   term    := unary (('*' | '/' | '%') unary)*
//   unary   := '-' unary | primary
//   primary := integer | field | '(' expr ')'
// where field is one of: p1, p2, shape_seed, seed, max_rounds, threads,
// fault_seed. Evaluation is signed 64-bit; overflow and division by zero
// are reported as WorkloadError, not wrapped.

// Parses `text`, rejecting syntax errors and unknown fields, and returns
// the canonical rendering (single-spaced tokens, minimal parentheses) that
// the codec stores and emits. Idempotent on its own output.
[[nodiscard]] std::string canonical_expr(std::string_view text, const std::string& context);

// Evaluates a previously validated expression; `lookup` maps a field name
// to its literal value (and may throw to reject the reference).
[[nodiscard]] long long eval_expr(std::string_view text,
                                  const std::function<long long(std::string_view)>& lookup,
                                  const std::string& context);

// Validates one fully-resolved spec (family known, ranges sane, option
// combinations run_scenario would reject). Throws WorkloadError whose
// message starts with `context`.
void validate(const WorkloadSpec& spec, const std::string& context);

// Expands a suite into its flat spec list: defaults -> item (spec patch, or
// sweep base + one patch per axis, last axis fastest). Every resolved spec
// is validated. Throws WorkloadError on dangling parameter references,
// empty axes, or a cartesian blow-up past 1,000,000 specs.
[[nodiscard]] std::vector<WorkloadSpec> resolve(const WorkloadSuite& suite);

// resolve() packaged as the runnable scenario::Suite.
[[nodiscard]] scenario::Suite to_scenario_suite(const WorkloadSuite& suite);

// --- canonical JSON codec --------------------------------------------------

[[nodiscard]] std::string to_json(const WorkloadSuite& suite);
[[nodiscard]] WorkloadSuite parse_suite(std::string_view text, const std::string& where);
[[nodiscard]] WorkloadSuite load_suite_file(const std::string& path);

// One fully-resolved spec as a single canonical JSON line (every field,
// fixed order) — the unit content_hash digests, and the job echo format
// pm_serve uses.
[[nodiscard]] std::string spec_json(const WorkloadSpec& spec);

// Parses one spec object (a patch applied to a default-constructed spec)
// and validates it; the shape pm_serve jobs use.
[[nodiscard]] WorkloadSpec parse_spec(const Json& obj, const std::string& context);

// JSON string escaping shared by every emitter in the repo.
[[nodiscard]] std::string json_escape(std::string_view s);

// --- content hash ----------------------------------------------------------

// FNV-1a 64 over the canonical spec_json lines of the resolved list.
[[nodiscard]] std::uint64_t content_hash(const std::vector<WorkloadSpec>& specs);
// The 16-hex-digit rendering stamped into BENCH artifacts.
[[nodiscard]] std::string content_hash_hex(const std::vector<WorkloadSpec>& specs);

// --- the built-in registry, as data ----------------------------------------

[[nodiscard]] std::vector<std::string> registry_names();
// Throws WorkloadError for an unknown name.
[[nodiscard]] WorkloadSuite registry_suite(const std::string& name);

}  // namespace pm::workload
