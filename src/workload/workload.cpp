#include "workload/workload.h"

#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>

#include "scenario/names.h"
#include "util/check.h"

namespace pm::workload {

using amoebot::OccupancyMode;
using amoebot::Order;
using scenario::Algo;

// --- patch application -----------------------------------------------------

void SpecPatch::apply(WorkloadSpec& spec) const {
  if (name) spec.name = *name;
  if (family) spec.family = *family;
  if (p1) spec.p1 = *p1;
  if (p2) spec.p2 = *p2;
  if (shape_seed) spec.shape_seed = *shape_seed;
  if (algo) spec.algo = *algo;
  if (order) spec.order = *order;
  if (seed) spec.seed = *seed;
  if (max_rounds) spec.max_rounds = *max_rounds;
  if (occupancy) spec.occupancy = *occupancy;
  if (track_components) spec.track_components = *track_components;
  if (threads) spec.threads = *threads;
  if (fault_seed) spec.fault_seed = *fault_seed;
}

void SpecPatch::merge(const SpecPatch& o) {
  if (o.name) name = o.name;
  if (o.family) family = o.family;
  if (o.p1) { p1 = o.p1; p1_expr.reset(); }
  if (o.p1_expr) { p1_expr = o.p1_expr; p1.reset(); }
  if (o.p2) { p2 = o.p2; p2_expr.reset(); }
  if (o.p2_expr) { p2_expr = o.p2_expr; p2.reset(); }
  if (o.shape_seed) { shape_seed = o.shape_seed; shape_seed_expr.reset(); }
  if (o.shape_seed_expr) { shape_seed_expr = o.shape_seed_expr; shape_seed.reset(); }
  if (o.algo) algo = o.algo;
  if (o.order) order = o.order;
  if (o.seed) { seed = o.seed; seed_expr.reset(); }
  if (o.seed_expr) { seed_expr = o.seed_expr; seed.reset(); }
  if (o.max_rounds) { max_rounds = o.max_rounds; max_rounds_expr.reset(); }
  if (o.max_rounds_expr) { max_rounds_expr = o.max_rounds_expr; max_rounds.reset(); }
  if (o.occupancy) occupancy = o.occupancy;
  if (o.track_components) track_components = o.track_components;
  if (o.threads) threads = o.threads;
  if (o.fault_seed) { fault_seed = o.fault_seed; fault_seed_expr.reset(); }
  if (o.fault_seed_expr) { fault_seed_expr = o.fault_seed_expr; fault_seed.reset(); }
}

bool SpecPatch::empty() const { return *this == SpecPatch{}; }

// --- derived-field expressions ---------------------------------------------

namespace {

bool is_expr_field(std::string_view name) {
  for (const char* f : {"p1", "p2", "shape_seed", "seed", "max_rounds", "threads",
                        "fault_seed"}) {
    if (name == f) return true;
  }
  return false;
}

// AST of the expression mini-language. op: '#' integer literal, '$' field
// reference, 'n' unary minus (lhs only), else the binary operator char.
struct ExprNode {
  char op = '#';
  long long value = 0;
  std::string field;
  std::unique_ptr<ExprNode> lhs, rhs;
};

class ExprParser {
 public:
  ExprParser(std::string_view text, const std::string& context)
      : text_(text), context_(context) {}

  std::unique_ptr<ExprNode> parse() {
    auto node = parse_sum();
    skip_ws();
    if (pos_ != text_.size()) fail(std::string("unexpected '") + text_[pos_] + "'");
    return node;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw WorkloadError(context_ + ": bad expression \"" + std::string(text_) + "\": " +
                        msg + " at offset " + std::to_string(pos_));
  }
  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t')) ++pos_;
  }
  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  std::unique_ptr<ExprNode> binary(char op, std::unique_ptr<ExprNode> lhs,
                                   std::unique_ptr<ExprNode> rhs) {
    auto node = std::make_unique<ExprNode>();
    node->op = op;
    node->lhs = std::move(lhs);
    node->rhs = std::move(rhs);
    return node;
  }
  std::unique_ptr<ExprNode> parse_sum() {
    auto lhs = parse_term();
    for (;;) {
      if (eat('+')) lhs = binary('+', std::move(lhs), parse_term());
      else if (eat('-')) lhs = binary('-', std::move(lhs), parse_term());
      else return lhs;
    }
  }
  std::unique_ptr<ExprNode> parse_term() {
    auto lhs = parse_unary();
    for (;;) {
      if (eat('*')) lhs = binary('*', std::move(lhs), parse_unary());
      else if (eat('/')) lhs = binary('/', std::move(lhs), parse_unary());
      else if (eat('%')) lhs = binary('%', std::move(lhs), parse_unary());
      else return lhs;
    }
  }
  std::unique_ptr<ExprNode> parse_unary() {
    if (eat('-')) {
      auto node = std::make_unique<ExprNode>();
      node->op = 'n';
      node->lhs = parse_unary();
      return node;
    }
    return parse_primary();
  }
  std::unique_ptr<ExprNode> parse_primary() {
    if (eat('(')) {
      auto node = parse_sum();
      if (!eat(')')) fail("missing ')'");
      return node;
    }
    skip_ws();
    if (pos_ >= text_.size()) fail("expected a number, a field, or '('");
    const char c = text_[pos_];
    if (c >= '0' && c <= '9') {
      long long v = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        const int digit = text_[pos_] - '0';
        if (v > (std::numeric_limits<long long>::max() - digit) / 10) {
          fail("integer literal overflows 64 bits");
        }
        v = v * 10 + digit;
        ++pos_;
      }
      auto node = std::make_unique<ExprNode>();
      node->value = v;
      return node;
    }
    if ((c >= 'a' && c <= 'z') || c == '_') {
      const std::size_t start = pos_;
      while (pos_ < text_.size() &&
             ((text_[pos_] >= 'a' && text_[pos_] <= 'z') ||
              (text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '_')) {
        ++pos_;
      }
      std::string name(text_.substr(start, pos_ - start));
      if (!is_expr_field(name)) {
        fail("unknown field '" + name + "' (fields: p1, p2, shape_seed, seed, "
             "max_rounds, threads, fault_seed)");
      }
      auto node = std::make_unique<ExprNode>();
      node->op = '$';
      node->field = std::move(name);
      return node;
    }
    fail("expected a number, a field, or '('");
  }

  std::string_view text_;
  const std::string& context_;
  std::size_t pos_ = 0;
};

int expr_prec(const ExprNode& n) {
  switch (n.op) {
    case '#': case '$': return 4;
    case 'n': return 3;
    case '*': case '/': case '%': return 2;
    default: return 1;
  }
}

void render_expr(const ExprNode& n, int min_prec, std::string& out) {
  const int prec = expr_prec(n);
  const bool parens = prec < min_prec;
  if (parens) out += '(';
  switch (n.op) {
    case '#': out += std::to_string(n.value); break;
    case '$': out += n.field; break;
    case 'n':
      out += '-';
      render_expr(*n.lhs, 4, out);
      break;
    default:
      // Left-associative: the right child needs strictly higher precedence
      // to drop its parentheses ("p1 - (p2 - 1)" keeps them).
      render_expr(*n.lhs, prec, out);
      out += ' ';
      out += n.op;
      out += ' ';
      render_expr(*n.rhs, prec + 1, out);
  }
  if (parens) out += ')';
}

long long eval_node(const ExprNode& n, const std::function<long long(std::string_view)>& lookup,
                    std::string_view text, const std::string& context) {
  auto fail = [&](const char* msg) -> long long {
    throw WorkloadError(context + ": expression \"" + std::string(text) + "\": " + msg);
  };
  long long out = 0;
  switch (n.op) {
    case '#': return n.value;
    case '$': return lookup(n.field);
    case 'n': {
      const long long v = eval_node(*n.lhs, lookup, text, context);
      if (__builtin_sub_overflow(0LL, v, &out)) return fail("overflow");
      return out;
    }
    default: {
      const long long a = eval_node(*n.lhs, lookup, text, context);
      const long long b = eval_node(*n.rhs, lookup, text, context);
      switch (n.op) {
        case '+': if (__builtin_add_overflow(a, b, &out)) return fail("overflow"); return out;
        case '-': if (__builtin_sub_overflow(a, b, &out)) return fail("overflow"); return out;
        case '*': if (__builtin_mul_overflow(a, b, &out)) return fail("overflow"); return out;
        case '/':
        case '%':
          if (b == 0) return fail("division by zero");
          if (a == std::numeric_limits<long long>::min() && b == -1) return fail("overflow");
          return n.op == '/' ? a / b : a % b;
        default: PM_CHECK_MSG(false, "corrupt expression node");
      }
    }
  }
}

}  // namespace

std::string canonical_expr(std::string_view text, const std::string& context) {
  const auto ast = ExprParser(text, context).parse();
  std::string out;
  render_expr(*ast, 0, out);
  return out;
}

long long eval_expr(std::string_view text,
                    const std::function<long long(std::string_view)>& lookup,
                    const std::string& context) {
  const auto ast = ExprParser(text, context).parse();
  return eval_node(*ast, lookup, text, context);
}

// --- validation ------------------------------------------------------------

void validate(const WorkloadSpec& spec, const std::string& context) {
  auto fail = [&](const std::string& msg) { throw WorkloadError(context + ": " + msg); };
  if (spec.family.empty()) {
    fail("no shape family (set \"family\" in the spec, a sweep base, or the "
         "suite defaults)");
  }
  if (!scenario::is_shape_family(spec.family)) {
    fail("unknown shape family '" + spec.family + "' (known: " +
         scenario::known_shape_families() + ")");
  }
  if (spec.p1 < 0) fail("p1 must be >= 0, got " + std::to_string(spec.p1));
  if (spec.p2 < 0) fail("p2 must be >= 0, got " + std::to_string(spec.p2));
  // Mirror shapegen's per-family parameter preconditions so a bad file
  // fails here with the file's context instead of mid-suite inside
  // build_shape (where run_suite would downgrade it to an incomplete row).
  const auto p = [&](const char* what, bool ok) {
    if (!ok) {
      fail(spec.family + " needs " + what + ", got p1 = " + std::to_string(spec.p1) +
           ", p2 = " + std::to_string(spec.p2));
    }
  };
  if (spec.family == "line" || spec.family == "blob") p("p1 >= 1", spec.p1 >= 1);
  if (spec.family == "parallelogram") p("p1 >= 1 and p2 >= 1", spec.p1 >= 1 && spec.p2 >= 1);
  if (spec.family == "annulus") p("p1 >= 2 and p2 < p1", spec.p1 >= 2 && spec.p2 < spec.p1);
  if (spec.family == "spiral") p("p1 >= 1", spec.p1 >= 1);
  if (spec.family == "comb") p("p1 >= 1", spec.p1 >= 1);
  if (spec.family == "cheese") p("p1 >= 3", spec.p1 >= 3);
  if (spec.max_rounds < 1) {
    fail("max_rounds must be >= 1, got " + std::to_string(spec.max_rounds));
  }
  if (spec.threads < 0 || spec.threads > 1024) {
    fail("threads must be in [0, 1024], got " + std::to_string(spec.threads));
  }
  // Mirror run_scenario's preconditions so a bad file fails at load time
  // with the file's context, not mid-suite with a runner backtrace.
  if (spec.threads > 0 && !scenario::algo_uses_engine(spec.algo)) {
    fail(std::string("threads > 0 on algo '") + scenario::algo_name(spec.algo) +
         "', which never consults the Engine");
  }
  if (spec.track_components && spec.threads > 0) {
    fail("track_components requires the sequential engine (threads = 0)");
  }
  if (spec.track_components && spec.fault_seed != 0) {
    fail("track_components cannot combine with fault_seed (fault plans may "
         "switch engines)");
  }
}

// --- resolution ------------------------------------------------------------

namespace {

const std::vector<SpecPatch>& axis_patches(
    const WorkloadSuite& suite, const Sweep::Axis& axis, const std::string& context) {
  if (axis.ref.empty()) return axis.patches;
  for (const auto& [name, patches] : suite.params) {
    if (name == axis.ref) return patches;
  }
  std::vector<std::string> declared;
  declared.reserve(suite.params.size());
  for (const auto& [name, patches] : suite.params) declared.push_back(name);
  const std::string known = scenario::join_names(declared);
  throw WorkloadError(context + ": axis references unknown parameter set '" +
                      axis.ref + "'" +
                      (known.empty() ? std::string(" (the suite declares none)")
                                     : " (declared: " + known + ")"));
}

constexpr std::size_t kMaxResolvedSpecs = 1'000'000;

// Fully merged patch -> validated spec: apply the literal fields, then
// evaluate the derived expressions against that literal snapshot.
// Expressions see literal fields only — a reference to a field that is
// itself derived would make the result depend on evaluation order, so it
// fails loudly instead.
WorkloadSpec materialize(const SpecPatch& p, const std::string& context) {
  WorkloadSpec spec;
  p.apply(spec);
  if (p.p1_expr || p.p2_expr || p.shape_seed_expr || p.seed_expr || p.max_rounds_expr ||
      p.fault_seed_expr) {
    const auto lookup = [&](std::string_view f) -> long long {
      const auto lit = [&](bool derived, long long v) {
        if (derived) {
          throw WorkloadError(context + ": expression references \"" + std::string(f) +
                              "\", which is itself derived in the same resolved patch");
        }
        return v;
      };
      if (f == "p1") return lit(p.p1_expr.has_value(), spec.p1);
      if (f == "p2") return lit(p.p2_expr.has_value(), spec.p2);
      if (f == "shape_seed") {
        return lit(p.shape_seed_expr.has_value(), static_cast<long long>(spec.shape_seed));
      }
      if (f == "seed") return lit(p.seed_expr.has_value(), static_cast<long long>(spec.seed));
      if (f == "max_rounds") return lit(p.max_rounds_expr.has_value(), spec.max_rounds);
      if (f == "threads") return lit(false, spec.threads);
      if (f == "fault_seed") {
        return lit(p.fault_seed_expr.has_value(), static_cast<long long>(spec.fault_seed));
      }
      PM_CHECK_MSG(false, "expression references a field the parser does not admit");
    };
    const auto derive = [&](const char* fname, const std::optional<std::string>& e,
                            long long lo, long long hi,
                            const std::function<void(long long)>& assign) {
      if (!e) return;
      const std::string field_ctx = context + ": \"" + fname + "\"";
      const long long v = eval_expr(*e, lookup, field_ctx);
      if (v < lo || v > hi) {
        throw WorkloadError(field_ctx + ": \"" + *e + "\" evaluates to " +
                            std::to_string(v) + ", outside [" + std::to_string(lo) +
                            ", " + std::to_string(hi) + "]");
      }
      assign(v);
    };
    derive("p1", p.p1_expr, 0, 1'000'000'000,
           [&](long long v) { spec.p1 = static_cast<int>(v); });
    derive("p2", p.p2_expr, 0, 1'000'000'000,
           [&](long long v) { spec.p2 = static_cast<int>(v); });
    derive("shape_seed", p.shape_seed_expr, 0, std::numeric_limits<long long>::max(),
           [&](long long v) { spec.shape_seed = static_cast<std::uint64_t>(v); });
    derive("seed", p.seed_expr, 0, std::numeric_limits<long long>::max(),
           [&](long long v) { spec.seed = static_cast<std::uint64_t>(v); });
    derive("max_rounds", p.max_rounds_expr, 1, 1'000'000'000'000LL,
           [&](long long v) { spec.max_rounds = static_cast<long>(v); });
    derive("fault_seed", p.fault_seed_expr, 0, std::numeric_limits<long long>::max(),
           [&](long long v) { spec.fault_seed = static_cast<std::uint64_t>(v); });
  }
  validate(spec, context);
  return spec;
}

}  // namespace

std::vector<WorkloadSpec> resolve(const WorkloadSuite& suite) {
  std::vector<WorkloadSpec> out;
  for (std::size_t item_idx = 0; item_idx < suite.items.size(); ++item_idx) {
    const Item& item = suite.items[item_idx];
    const std::string context =
        "workload '" + suite.name + "' item " + std::to_string(item_idx);
    if (item.kind == Item::Kind::Spec) {
      SpecPatch merged = suite.defaults;
      merged.merge(item.spec);
      out.push_back(materialize(merged, context));
      continue;
    }
    // Sweep: cartesian product of the axes, last axis fastest (the nested-
    // loop order, so a sweep reads like the loops it replaced).
    const Sweep& sweep = item.sweep;
    if (sweep.axes.empty()) throw WorkloadError(context + ": sweep has no axes");
    std::vector<const std::vector<SpecPatch>*> axes;
    std::size_t total = 1;
    for (const Sweep::Axis& axis : sweep.axes) {
      const std::vector<SpecPatch>& patches = axis_patches(suite, axis, context);
      if (patches.empty()) throw WorkloadError(context + ": empty sweep axis");
      axes.push_back(&patches);
      total *= patches.size();
      if (total > kMaxResolvedSpecs) {
        throw WorkloadError(context + ": sweep expands past " +
                            std::to_string(kMaxResolvedSpecs) + " specs");
      }
    }
    if (out.size() + total > kMaxResolvedSpecs) {
      throw WorkloadError(context + ": suite expands past " +
                          std::to_string(kMaxResolvedSpecs) + " specs");
    }
    std::vector<std::size_t> digits(axes.size(), 0);
    for (std::size_t row = 0; row < total; ++row) {
      SpecPatch merged = suite.defaults;
      merged.merge(sweep.base);
      for (std::size_t a = 0; a < axes.size(); ++a) merged.merge((*axes[a])[digits[a]]);
      out.push_back(materialize(merged, context + " row " + std::to_string(row)));
      for (std::size_t a = axes.size(); a-- > 0;) {
        if (++digits[a] < axes[a]->size()) break;
        digits[a] = 0;
      }
    }
  }
  if (out.empty()) {
    throw WorkloadError("workload '" + suite.name + "' resolves to zero specs");
  }
  return out;
}

scenario::Suite to_scenario_suite(const WorkloadSuite& suite) {
  return scenario::Suite{suite.name, suite.description, resolve(suite)};
}

// --- canonical emit --------------------------------------------------------

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

namespace {

// Shared by the patch emitter and the full-spec emitter: appends the
// key/value pairs in the one canonical field order.
class FieldWriter {
 public:
  explicit FieldWriter(std::ostream& os) : os_(os) {}

  void str(const char* key, const std::string& value) {
    sep();
    os_ << '"' << key << "\": \"" << json_escape(value) << '"';
  }
  void num(const char* key, long long value) {
    sep();
    os_ << '"' << key << "\": " << value;
  }
  void u64(const char* key, std::uint64_t value) {
    sep();
    os_ << '"' << key << "\": " << value;
  }
  void boolean(const char* key, bool value) {
    sep();
    os_ << '"' << key << "\": " << (value ? "true" : "false");
  }

 private:
  void sep() {
    if (!first_) os_ << ", ";
    first_ = false;
  }
  std::ostream& os_;
  bool first_ = true;
};

void emit_patch(std::ostream& os, const SpecPatch& p) {
  os << '{';
  FieldWriter w(os);
  if (p.name) w.str("name", *p.name);
  if (p.family) w.str("family", *p.family);
  if (p.p1) w.num("p1", *p.p1);
  else if (p.p1_expr) w.str("p1", *p.p1_expr);
  if (p.p2) w.num("p2", *p.p2);
  else if (p.p2_expr) w.str("p2", *p.p2_expr);
  if (p.shape_seed) w.u64("shape_seed", *p.shape_seed);
  else if (p.shape_seed_expr) w.str("shape_seed", *p.shape_seed_expr);
  if (p.algo) w.str("algo", scenario::algo_name(*p.algo));
  if (p.order) w.str("order", amoebot::order_name(*p.order));
  if (p.seed) w.u64("seed", *p.seed);
  else if (p.seed_expr) w.str("seed", *p.seed_expr);
  if (p.max_rounds) w.num("max_rounds", *p.max_rounds);
  else if (p.max_rounds_expr) w.str("max_rounds", *p.max_rounds_expr);
  if (p.occupancy) w.str("occupancy", scenario::occupancy_name(*p.occupancy));
  if (p.track_components) w.boolean("track_components", *p.track_components);
  if (p.threads) w.num("threads", *p.threads);
  if (p.fault_seed) w.u64("fault_seed", *p.fault_seed);
  else if (p.fault_seed_expr) w.str("fault_seed", *p.fault_seed_expr);
  os << '}';
}

void emit_patch_list(std::ostream& os, const std::vector<SpecPatch>& patches,
                     const std::string& indent) {
  os << "[\n";
  for (std::size_t i = 0; i < patches.size(); ++i) {
    os << indent << "  ";
    emit_patch(os, patches[i]);
    os << (i + 1 < patches.size() ? ",\n" : "\n");
  }
  os << indent << ']';
}

void emit_sweep(std::ostream& os, const Sweep& sweep, const std::string& indent) {
  os << "{\"sweep\": {\n";
  if (!sweep.base.empty()) {
    os << indent << "  \"base\": ";
    emit_patch(os, sweep.base);
    os << ",\n";
  }
  os << indent << "  \"axes\": [\n";
  for (std::size_t a = 0; a < sweep.axes.size(); ++a) {
    const Sweep::Axis& axis = sweep.axes[a];
    os << indent << "    ";
    if (!axis.ref.empty()) {
      os << '"' << json_escape(axis.ref) << '"';
    } else {
      emit_patch_list(os, axis.patches, indent + "    ");
    }
    os << (a + 1 < sweep.axes.size() ? ",\n" : "\n");
  }
  os << indent << "  ]\n" << indent << "}}";
}

}  // namespace

std::string to_json(const WorkloadSuite& suite) {
  std::ostringstream os;
  os << "{\n"
     << "  \"workload_version\": " << kWorkloadVersion << ",\n"
     << "  \"suite\": \"" << json_escape(suite.name) << "\",\n"
     << "  \"description\": \"" << json_escape(suite.description) << "\",\n";
  if (!suite.defaults.empty()) {
    os << "  \"defaults\": ";
    emit_patch(os, suite.defaults);
    os << ",\n";
  }
  if (!suite.params.empty()) {
    os << "  \"params\": {\n";
    for (std::size_t i = 0; i < suite.params.size(); ++i) {
      os << "    \"" << json_escape(suite.params[i].first) << "\": ";
      emit_patch_list(os, suite.params[i].second, "    ");
      os << (i + 1 < suite.params.size() ? ",\n" : "\n");
    }
    os << "  },\n";
  }
  os << "  \"items\": [\n";
  for (std::size_t i = 0; i < suite.items.size(); ++i) {
    const Item& item = suite.items[i];
    os << "    ";
    if (item.kind == Item::Kind::Spec) {
      os << "{\"spec\": ";
      emit_patch(os, item.spec);
      os << '}';
    } else {
      emit_sweep(os, item.sweep, "    ");
    }
    os << (i + 1 < suite.items.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
  return os.str();
}

std::string spec_json(const WorkloadSpec& spec) {
  // Every field, fixed order, one line: the canonical unit content_hash
  // digests. Unlike the patch emitter this never omits defaults — the hash
  // must cover the *resolved* value of every field.
  std::ostringstream os;
  os << '{';
  FieldWriter w(os);
  w.str("name", spec.name);
  w.str("family", spec.family);
  w.num("p1", spec.p1);
  w.num("p2", spec.p2);
  w.u64("shape_seed", spec.shape_seed);
  w.str("algo", scenario::algo_name(spec.algo));
  w.str("order", amoebot::order_name(spec.order));
  w.u64("seed", spec.seed);
  w.num("max_rounds", spec.max_rounds);
  w.str("occupancy", scenario::occupancy_name(spec.occupancy));
  w.boolean("track_components", spec.track_components);
  w.num("threads", spec.threads);
  w.u64("fault_seed", spec.fault_seed);
  os << '}';
  return os.str();
}

// --- parse -----------------------------------------------------------------

namespace {

SpecPatch parse_patch(const Json& obj, const std::string& context) {
  SpecPatch p;
  for (const auto& [key, value] : obj.as_obj(context)) {
    const std::string field = context + "." + key;
    if (key == "name") {
      p.name = value.as_str(field);
    } else if (key == "family") {
      const std::string& fam = value.as_str(field);
      if (!scenario::is_shape_family(fam)) {
        throw WorkloadError(field + ": unknown shape family '" + fam +
                            "' (known: " + scenario::known_shape_families() + ")");
      }
      p.family = fam;
    } else if (key == "p1") {
      if (value.is_str()) p.p1_expr = canonical_expr(value.as_str(field), field);
      else p.p1 = static_cast<int>(value.as_int(0, 1'000'000'000, field));
    } else if (key == "p2") {
      if (value.is_str()) p.p2_expr = canonical_expr(value.as_str(field), field);
      else p.p2 = static_cast<int>(value.as_int(0, 1'000'000'000, field));
    } else if (key == "shape_seed") {
      if (value.is_str()) p.shape_seed_expr = canonical_expr(value.as_str(field), field);
      else p.shape_seed = value.as_u64(field);
    } else if (key == "algo") {
      Algo algo;
      if (!scenario::parse_algo(value.as_str(field), algo)) {
        throw WorkloadError(field + ": unknown algo '" + value.as_str(field) +
                            "' (known: " + scenario::known_algo_names() + ")");
      }
      p.algo = algo;
    } else if (key == "order") {
      Order order;
      if (!scenario::parse_order(value.as_str(field), order)) {
        throw WorkloadError(field + ": unknown order '" + value.as_str(field) +
                            "' (known: " + scenario::known_order_names() + ")");
      }
      p.order = order;
    } else if (key == "seed") {
      if (value.is_str()) p.seed_expr = canonical_expr(value.as_str(field), field);
      else p.seed = value.as_u64(field);
    } else if (key == "max_rounds") {
      if (value.is_str()) p.max_rounds_expr = canonical_expr(value.as_str(field), field);
      else p.max_rounds = static_cast<long>(value.as_int(1, 1'000'000'000'000LL, field));
    } else if (key == "occupancy") {
      OccupancyMode mode;
      if (!scenario::parse_occupancy(value.as_str(field), mode)) {
        throw WorkloadError(field + ": unknown occupancy '" + value.as_str(field) +
                            "' (known: " + scenario::known_occupancy_names() + ")");
      }
      p.occupancy = mode;
    } else if (key == "track_components") {
      p.track_components = value.as_bool(field);
    } else if (key == "threads") {
      p.threads = static_cast<int>(value.as_int(0, 1024, field));
    } else if (key == "fault_seed") {
      if (value.is_str()) p.fault_seed_expr = canonical_expr(value.as_str(field), field);
      else p.fault_seed = value.as_u64(field);
    } else {
      throw WorkloadError(context + ": unknown spec field \"" + key +
                          "\" (known: name, family, p1, p2, shape_seed, algo, order, "
                          "seed, max_rounds, occupancy, track_components, threads, "
                          "fault_seed; integer fields other than threads also accept "
                          "a derived expression string like \"p1 - 1\")");
    }
  }
  return p;
}

std::vector<SpecPatch> parse_patch_list(const Json& arr, const std::string& context) {
  std::vector<SpecPatch> out;
  const auto& items = arr.as_arr(context);
  if (items.empty()) throw WorkloadError(context + ": empty patch list");
  for (std::size_t i = 0; i < items.size(); ++i) {
    out.push_back(parse_patch(items[i], context + "[" + std::to_string(i) + "]"));
  }
  return out;
}

Sweep parse_sweep(const Json& obj, const std::string& context) {
  Sweep sweep;
  bool have_axes = false;
  for (const auto& [key, value] : obj.as_obj(context)) {
    if (key == "base") {
      sweep.base = parse_patch(value, context + ".base");
    } else if (key == "axes") {
      have_axes = true;
      const auto& axes = value.as_arr(context + ".axes");
      if (axes.empty()) throw WorkloadError(context + ".axes: must not be empty");
      for (std::size_t a = 0; a < axes.size(); ++a) {
        const std::string axis_ctx = context + ".axes[" + std::to_string(a) + "]";
        Sweep::Axis axis;
        if (axes[a].is_str()) {
          axis.ref = axes[a].as_str(axis_ctx);
          if (axis.ref.empty()) throw WorkloadError(axis_ctx + ": empty parameter-set name");
        } else {
          axis.patches = parse_patch_list(axes[a], axis_ctx);
        }
        sweep.axes.push_back(std::move(axis));
      }
    } else {
      throw WorkloadError(context + ": unknown sweep field \"" + key +
                          "\" (known: base, axes)");
    }
  }
  if (!have_axes) throw WorkloadError(context + ": sweep needs \"axes\"");
  return sweep;
}

}  // namespace

WorkloadSpec parse_spec(const Json& obj, const std::string& context) {
  return materialize(parse_patch(obj, context), context);
}

WorkloadSuite parse_suite(std::string_view text, const std::string& where) {
  const Json doc = Json::parse(text, where);
  WorkloadSuite suite;
  bool have_version = false;
  bool have_items = false;
  for (const auto& [key, value] : doc.as_obj(where)) {
    const std::string field = where + ": \"" + key + "\"";
    if (key == "workload_version") {
      have_version = true;
      const long long version = value.as_int(0, 1'000'000, field);
      if (version != kWorkloadVersion) {
        throw WorkloadError(where + ": workload_version " + std::to_string(version) +
                            " is not supported (this build reads version " +
                            std::to_string(kWorkloadVersion) + ")");
      }
    } else if (key == "suite") {
      suite.name = value.as_str(field);
      if (suite.name.empty()) throw WorkloadError(field + ": must not be empty");
      // The name becomes part of the BENCH_<name>.json path; restrict it
      // to a filename-safe charset so a bad file fails here, not after the
      // whole suite has run and the artifact write falls over.
      for (const char c : suite.name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == '-';
        if (!ok) {
          throw WorkloadError(field + ": suite name '" + suite.name +
                              "' must use only [A-Za-z0-9_-] (it names the "
                              "BENCH_<suite>.json artifact)");
        }
      }
    } else if (key == "description") {
      suite.description = value.as_str(field);
    } else if (key == "defaults") {
      suite.defaults = parse_patch(value, where + ": defaults");
    } else if (key == "params") {
      for (const auto& [pname, plist] : value.as_obj(where + ": params")) {
        suite.params.emplace_back(
            pname, parse_patch_list(plist, where + ": params." + pname));
      }
    } else if (key == "items") {
      have_items = true;
      const auto& items = value.as_arr(field);
      if (items.empty()) throw WorkloadError(where + ": suite has no items");
      for (std::size_t i = 0; i < items.size(); ++i) {
        const std::string item_ctx = where + ": items[" + std::to_string(i) + "]";
        const auto& members = items[i].as_obj(item_ctx);
        if (members.size() != 1 ||
            (members[0].first != "spec" && members[0].first != "sweep")) {
          throw WorkloadError(item_ctx +
                              ": each item is {\"spec\": {...}} or {\"sweep\": {...}}");
        }
        Item item;
        if (members[0].first == "spec") {
          item.kind = Item::Kind::Spec;
          item.spec = parse_patch(members[0].second, item_ctx + ".spec");
        } else {
          item.kind = Item::Kind::Sweep;
          item.sweep = parse_sweep(members[0].second, item_ctx + ".sweep");
        }
        suite.items.push_back(std::move(item));
      }
    } else {
      throw WorkloadError(where + ": unknown key \"" + key +
                          "\" (known: workload_version, suite, description, defaults, "
                          "params, items)");
    }
  }
  if (!have_version) {
    throw WorkloadError(where + ": missing \"workload_version\" (expected " +
                        std::to_string(kWorkloadVersion) + ")");
  }
  if (suite.name.empty()) throw WorkloadError(where + ": missing \"suite\" name");
  if (!have_items) throw WorkloadError(where + ": missing \"items\"");
  return suite;
}

WorkloadSuite load_suite_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw WorkloadError("cannot read workload file " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return parse_suite(buf.str(), path);
}

// --- content hash ----------------------------------------------------------

std::uint64_t content_hash(const std::vector<WorkloadSpec>& specs) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64 offset basis
  auto mix = [&](std::string_view bytes) {
    for (const char c : bytes) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;  // FNV-1a 64 prime
    }
  };
  for (const WorkloadSpec& spec : specs) {
    mix(spec_json(spec));
    mix("\n");
  }
  return h;
}

std::string content_hash_hex(const std::vector<WorkloadSpec>& specs) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(content_hash(specs)));
  return buf;
}

// --- the built-in registry, as data ----------------------------------------

namespace {

// Patch builders for the registry tables below. Fields default to "absent";
// zero-valued shape parameters are simply not written (resolution starts
// from a zero-initialized Spec either way, and the emitted files stay
// minimal).
SpecPatch shape(const char* family, int p1, int p2 = 0, std::uint64_t shape_seed = 0) {
  SpecPatch p;
  p.family = family;
  p.p1 = p1;
  if (p2 != 0) p.p2 = p2;
  if (shape_seed != 0) p.shape_seed = shape_seed;
  return p;
}

SpecPatch algo_patch(Algo algo) {
  SpecPatch p;
  p.algo = algo;
  return p;
}

SpecPatch base_patch(Algo algo, std::uint64_t seed) {
  SpecPatch p;
  p.algo = algo;
  p.seed = seed;
  return p;
}

SpecPatch threads_patch(int threads) {
  SpecPatch p;
  p.threads = threads;
  return p;
}

Sweep::Axis axis_ref(const char* name) {
  Sweep::Axis a;
  a.ref = name;
  return a;
}

Sweep::Axis axis(std::vector<SpecPatch> patches) {
  Sweep::Axis a;
  a.patches = std::move(patches);
  return a;
}

Item sweep_item(SpecPatch base, std::vector<Sweep::Axis> axes) {
  Item item;
  item.kind = Item::Kind::Sweep;
  item.sweep.base = std::move(base);
  item.sweep.axes = std::move(axes);
  return item;
}

WorkloadSuite wl_table1() {
  WorkloadSuite s{"table1",
                  "Table 1 reproduction: every algorithm class on a common shape sweep",
                  {},
                  {},
                  {}};
  s.params.emplace_back(
      "shapes", std::vector<SpecPatch>{shape("hexagon", 8), shape("annulus", 8, 5),
                                       shape("cheese", 8, 5, 7), shape("blob", 400, 0, 11),
                                       shape("comb", 8, 8)});
  s.params.emplace_back(
      "algos",
      std::vector<SpecPatch>{base_patch(Algo::BaselineContest, 3),
                             base_patch(Algo::BaselineErosion, 0),
                             base_patch(Algo::DleOracle, 5),
                             base_patch(Algo::PipelineOracle, 5),
                             base_patch(Algo::PipelineFull, 5)});
  s.items.push_back(sweep_item({}, {axis_ref("shapes"), axis_ref("algos")}));
  return s;
}

WorkloadSuite wl_obd_scaling() {
  WorkloadSuite s{"obd_scaling", "Theorem 41: OBD rounds vs L_out + D", {}, {}, {}};
  std::vector<SpecPatch> shapes;
  for (const int r : {3, 5, 8, 12, 16}) shapes.push_back(shape("hexagon", r));
  for (const int n : {100, 200, 400, 800}) shapes.push_back(shape("blob", n, 0, 41));
  for (const int r : {5, 8, 11}) shapes.push_back(shape("cheese", r, 3, 9));
  s.items.push_back(
      sweep_item(base_patch(Algo::ObdOnly, 17), {axis(std::move(shapes))}));
  return s;
}

WorkloadSuite wl_dle_scaling() {
  WorkloadSuite s{"dle_scaling",
                  "Theorem 18: DLE rounds vs D_A (including D_A < D annuli)",
                  {},
                  {},
                  {}};
  std::vector<SpecPatch> shapes;
  for (const int r : {4, 8, 12, 16, 24, 32}) shapes.push_back(shape("hexagon", r));
  for (const int r : {8, 12, 16, 24}) shapes.push_back(shape("annulus", r, r - 3));
  for (const int n : {200, 400, 800, 1600}) shapes.push_back(shape("blob", n, 0, 21));
  for (const int r : {6, 10, 14}) shapes.push_back(shape("cheese", r, r / 2, 5));
  s.items.push_back(
      sweep_item(base_patch(Algo::DleOracle, 9), {axis(std::move(shapes))}));
  return s;
}

WorkloadSuite wl_collect_scaling() {
  WorkloadSuite s{"collect_scaling",
                  "Theorem 23: Collect rounds vs leader eccentricity, phases ~ log",
                  {},
                  {},
                  {}};
  std::vector<SpecPatch> shapes;
  for (const int n : {100, 200, 400, 800, 1600, 3200}) {
    shapes.push_back(shape("blob", n, 0, 31));
  }
  for (const int r : {6, 10, 14, 18}) shapes.push_back(shape("annulus", r, r - 1));
  s.items.push_back(
      sweep_item(base_patch(Algo::DleCollect, 13), {axis(std::move(shapes))}));
  return s;
}

WorkloadSuite wl_ablation() {
  WorkloadSuite s{"ablation_disconnection",
                  "Disconnection ablation: pull variant vs DLE; erosion class vs DLE",
                  {},
                  {},
                  {}};
  // Part A: the annulus rows track components under both DLE variants.
  {
    SpecPatch base;
    base.seed = 23;
    base.track_components = true;
    std::vector<SpecPatch> shapes;
    for (const int r : {6, 9, 12, 15}) shapes.push_back(shape("annulus", r, r - 1));
    s.items.push_back(sweep_item(
        std::move(base),
        {axis(std::move(shapes)),
         axis({algo_patch(Algo::DleOracle), algo_patch(Algo::DlePull)})}));
  }
  // Part B: hexagons, DLE (with the seed bench's component hook) vs the
  // erosion baseline.
  {
    SpecPatch base;
    base.seed = 23;
    std::vector<SpecPatch> shapes;
    for (const int r : {4, 8, 12, 16, 20}) shapes.push_back(shape("hexagon", r));
    SpecPatch dle = algo_patch(Algo::DleOracle);
    dle.track_components = true;
    s.items.push_back(sweep_item(
        std::move(base),
        {axis(std::move(shapes)), axis({dle, algo_patch(Algo::BaselineErosion)})}));
  }
  return s;
}

WorkloadSuite wl_dle_large() {
  WorkloadSuite s{"dle_large",
                  "Large-n stress sweep (n >= 20k): dense-occupancy engine scaling",
                  {},
                  {},
                  {}};
  s.items.push_back(sweep_item(
      base_patch(Algo::DleOracle, 9),
      {axis({shape("hexagon", 82), shape("blob", 20000, 0, 21),
             shape("blob", 40000, 0, 21)})}));
  return s;
}

WorkloadSuite wl_parallel_scaling() {
  WorkloadSuite s{
      "parallel_scaling",
      "ParallelEngine thread ladder on the dle_large workload (n = 20,419)",
      {},
      {},
      {}};
  SpecPatch base = base_patch(Algo::DleOracle, 9);
  base.family = "hexagon";
  base.p1 = 82;
  std::vector<SpecPatch> ladder;
  for (const int t : {0, 1, 2, 4, 8}) ladder.push_back(threads_patch(t));
  s.items.push_back(sweep_item(std::move(base), {axis(std::move(ladder))}));
  return s;
}

WorkloadSuite wl_parallel_smoke() {
  WorkloadSuite s{"parallel_smoke", "ParallelEngine smoke ladder at small n (CI-sized)",
                  {}, {}, {}};
  {
    SpecPatch base = base_patch(Algo::DleOracle, 9);
    base.family = "hexagon";
    base.p1 = 10;
    s.items.push_back(sweep_item(
        std::move(base),
        {axis({threads_patch(0), threads_patch(2), threads_patch(4)})}));
  }
  {
    SpecPatch base = base_patch(Algo::DleOracle, 9);
    base.family = "blob";
    base.p1 = 400;
    base.shape_seed = 21;
    s.items.push_back(
        sweep_item(std::move(base), {axis({threads_patch(0), threads_patch(4)})}));
  }
  return s;
}

WorkloadSuite wl_dle_adversarial() {
  WorkloadSuite s{"dle_adversarial",
                  "Adversarial sweep: mixed shapegen populations x seeds x orders",
                  {},
                  {},
                  {}};
  // The shape seeds co-vary with the scheduler seed (cheese/blob regenerate
  // per seed), so each scheduler seed gets its own sweep with literal
  // shape_seed values.
  for (const std::uint64_t seed : {101, 202, 303}) {
    s.items.push_back(sweep_item(
        base_patch(Algo::DleOracle, seed),
        {axis({shape("cheese", 7, 4, seed), shape("blob", 400, 0, seed + 1),
               shape("spiral", 6, 2), shape("comb", 10, 6), shape("annulus", 10, 7)})}));
  }
  {
    SpecPatch base = base_patch(Algo::DleOracle, 404);
    base.order = Order::RandomStream;
    s.items.push_back(sweep_item(
        std::move(base),
        {axis({shape("cheese", 6, 3, 9), shape("blob", 300, 0, 17), shape("comb", 8, 5)})}));
  }
  s.items.push_back(sweep_item(
      base_patch(Algo::PipelineFull, 8),
      {axis({shape("cheese", 5, 2, 4), shape("blob", 300, 0, 7)})}));
  s.items.push_back(sweep_item(
      base_patch(Algo::DleCollect, 13),
      {axis({shape("blob", 250, 0, 31), shape("annulus", 8, 7)})}));
  return s;
}

WorkloadSuite wl_le_zoo() {
  WorkloadSuite s{"le_zoo",
                  "Algorithm zoo: paper pipeline vs competitor LE engines on the "
                  "adversarial shape mix",
                  {},
                  {},
                  {}};
  // The cheese/blob shape seeds co-vary with the scheduler seed exactly as
  // in dle_adversarial — but spelled as derived expressions, so one sweep
  // covers what took that suite a literal item per seed.
  {
    SpecPatch cheese = shape("cheese", 7, 4);
    cheese.shape_seed_expr = "seed";
    SpecPatch blob = shape("blob", 400);
    blob.shape_seed_expr = "seed + 1";
    SpecPatch ring = shape("annulus", 10);
    ring.p2_expr = "p1 - 3";
    s.params.emplace_back(
        "shapes", std::vector<SpecPatch>{std::move(cheese), std::move(blob),
                                         shape("spiral", 6, 2), shape("comb", 10, 6),
                                         std::move(ring)});
  }
  s.params.emplace_back(
      "algos", std::vector<SpecPatch>{
                   algo_patch(Algo::DleOracle), algo_patch(Algo::PipelineFull),
                   algo_patch(Algo::BaselineContest), algo_patch(Algo::ZooDaymude),
                   algo_patch(Algo::ZooEmekKutten)});
  {
    std::vector<SpecPatch> seeds;
    for (const std::uint64_t seed : {101, 202, 303}) {
      SpecPatch p;
      p.seed = seed;
      seeds.push_back(std::move(p));
    }
    s.items.push_back(
        sweep_item({}, {axis(std::move(seeds)), axis_ref("shapes"), axis_ref("algos")}));
  }
  {
    SpecPatch base;
    base.order = Order::RandomStream;
    base.seed = 404;
    s.items.push_back(sweep_item(
        std::move(base),
        {axis({shape("cheese", 6, 3, 9), shape("blob", 300, 0, 17), shape("comb", 8, 5)}),
         axis_ref("algos")}));
  }
  return s;
}

WorkloadSuite wl_audit_fuzz() {
  WorkloadSuite s{"audit_fuzz",
                  "Audit fuzz: shapegen families x seeds x fault plans (kill/resume)",
                  {},
                  {},
                  {}};
  // Orders alternate and fault seeds increment across the whole row list
  // (the original loop counted one global index); the data spells both out.
  std::uint64_t fault = 0xF00D;
  int i = 0;
  for (const std::uint64_t seed : {11, 47, 83}) {
    std::vector<SpecPatch> rows;
    for (SpecPatch p : {shape("cheese", 6, 3, seed), shape("blob", 300, 0, seed),
                        shape("spiral", 5, 2), shape("comb", 8, 5)}) {
      p.order = (i++ % 2 == 0) ? Order::RandomPerm : Order::RandomStream;
      p.fault_seed = ++fault;
      rows.push_back(std::move(p));
    }
    s.items.push_back(
        sweep_item(base_patch(Algo::DleOracle, seed), {axis(std::move(rows))}));
  }
  {
    std::vector<SpecPatch> rows;
    for (SpecPatch p : {shape("cheese", 5, 2, 4), shape("comb", 6, 4)}) {
      p.fault_seed = ++fault;
      rows.push_back(std::move(p));
    }
    s.items.push_back(
        sweep_item(base_patch(Algo::PipelineFull, 8), {axis(std::move(rows))}));
  }
  {
    std::vector<SpecPatch> rows;
    for (SpecPatch p : {shape("blob", 200, 0, 31), shape("annulus", 8, 6)}) {
      p.fault_seed = ++fault;
      rows.push_back(std::move(p));
    }
    s.items.push_back(
        sweep_item(base_patch(Algo::DleCollect, 13), {axis(std::move(rows))}));
  }
  return s;
}

using SuiteBuilder = WorkloadSuite (*)();

const std::vector<std::pair<const char*, SuiteBuilder>>& registry() {
  static const std::vector<std::pair<const char*, SuiteBuilder>> reg = {
      {"table1", wl_table1},
      {"obd_scaling", wl_obd_scaling},
      {"dle_scaling", wl_dle_scaling},
      {"collect_scaling", wl_collect_scaling},
      {"ablation_disconnection", wl_ablation},
      {"dle_large", wl_dle_large},
      {"parallel_scaling", wl_parallel_scaling},
      {"parallel_smoke", wl_parallel_smoke},
      {"dle_adversarial", wl_dle_adversarial},
      {"audit_fuzz", wl_audit_fuzz},
      {"le_zoo", wl_le_zoo},
  };
  return reg;
}

}  // namespace

std::vector<std::string> registry_names() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, builder] : registry()) names.emplace_back(name);
  return names;
}

WorkloadSuite registry_suite(const std::string& name) {
  for (const auto& [reg_name, builder] : registry()) {
    if (name == reg_name) return builder();
  }
  throw WorkloadError("unknown suite '" + name +
                      "' (registered: " + scenario::join_names(registry_names()) + ")");
}

}  // namespace pm::workload
