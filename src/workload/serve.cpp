#include "workload/serve.h"

#include <algorithm>
#include <cstdio>
#include <istream>
#include <optional>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <memory>

#include "exec/thread_pool.h"
#include "obs/obs.h"
#include "scenario/scenario.h"
#include "telemetry/telemetry.h"
#include "util/timing.h"
#include "workload/json.h"
#include "workload/workload.h"

namespace pm::workload {

namespace {

// How many jobs a window holds per pool thread. Wider windows amortize the
// fork/join barrier; the emitter still writes strictly in input order, so
// the factor moves latency and nothing else.
constexpr int kWindowFactor = 4;

struct JobOutcome {
  std::string record;  // one NDJSON line, no trailing newline
  bool ok = false;
  int audit_violations = 0;  // only when the job was audited
  double ms = 0.0;  // job latency; measured only when stats/telemetry want it
};

// The frozen flight window as one JSON object (events embedded as the same
// objects the NDJSON export writes, so pm_explain-style tooling can read
// them back out).
std::string flight_json(const obs::Recorder& rec) {
  std::string s = "{\"reason\": \"" + json_escape(rec.capture_reason()) + "\", \"events\": [";
  const std::vector<std::string> lines = rec.capture_ndjson();
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (i > 0) s += ", ";
    s += lines[i];
  }
  s += "]}";
  return s;
}

// Finalizes the job's flight ring and returns its dump — freezing it first
// when nothing (e.g. the Auditor) already did, so the window describes the
// rounds leading up to this failure. Empty when flight recording is off.
std::string flight_dump(obs::Recorder* rec, const std::string& reason) {
  if (rec == nullptr) return {};
  rec->finalize();
  if (!rec->captured()) rec->capture(reason);
  return flight_json(*rec);
}

// `id` is included whenever the envelope got far enough to yield one, so
// failures stay attributable to the caller's key, not just the line number.
std::string error_record(long seq, const std::string& id, const std::string& what,
                         const std::string& flight = {}) {
  std::string rec = "{\"job\": " + std::to_string(seq);
  if (!id.empty()) rec += ", \"id\": \"" + json_escape(id) + "\"";
  rec += ", \"ok\": false, \"error\": \"" + json_escape(what) + "\"";
  if (!flight.empty()) rec += ", \"flight\": " + flight;
  rec += "}";
  return rec;
}

// Parses and runs one job line. Never throws (the pool's workers require
// it): every failure becomes this line's error record.
JobOutcome run_job(long seq, const std::string& line, const ServeOptions& opts) {
  JobOutcome out;
  const bool timed = opts.stats != nullptr || telemetry::enabled();
  const auto jt0 = timed ? WallClock::now() : WallClock::time_point{};
  const std::string context = "job " + std::to_string(seq);
  std::string id;
  // One bounded ring per job (no shared state across pool workers); lives
  // outside the try so a failing job can still dump its window.
  std::unique_ptr<obs::Recorder> flight;
  if (opts.flight > 0) {
    flight = std::make_unique<obs::Recorder>(
        obs::Recorder::Options{.ring_rounds = opts.flight});
  }
  try {
    const Json doc = Json::parse(line, context);
    const Json* spec_obj = &doc;
    scenario::RunHooks hooks;
    hooks.audit_every = std::max<long>(1, opts.audit_every);
    // Collected first, combined after the loop: the envelope's semantics
    // must not depend on its key order ("audit": false next to
    // "audit_every" disables auditing wherever it appears).
    std::optional<bool> audit_flag;
    std::optional<long> audit_cadence;
    if (doc.is_obj() && doc.find("spec") != nullptr) {
      // Envelope form: per-job id and RunHooks around the spec.
      for (const auto& [key, value] : doc.as_obj(context)) {
        const std::string field = context + "." + key;
        if (key == "spec") {
          spec_obj = &value;
        } else if (key == "id") {
          id = value.as_str(field);
        } else if (key == "audit") {
          audit_flag = value.as_bool(field);
        } else if (key == "audit_every") {
          audit_cadence = value.as_int(1, 1'000'000'000, field);
        } else if (key == "trace") {
          hooks.trace_path = value.as_str(field);
        } else if (key == "checkpoint_every") {
          hooks.checkpoint_every = value.as_int(1, 1'000'000'000, field);
        } else if (key == "checkpoint") {
          hooks.checkpoint_path = value.as_str(field);
        } else if (key == "resume") {
          hooks.resume = value.as_bool(field);
        } else {
          throw WorkloadError(field + ": unknown job field (known: spec, id, audit, "
                              "audit_every, trace, checkpoint_every, checkpoint, "
                              "resume)");
        }
      }
    }
    // A cadence implies auditing (the pm_bench --audit-every convention),
    // but an explicit "audit": false always wins.
    if (audit_cadence) hooks.audit_every = *audit_cadence;
    hooks.audit = audit_flag ? *audit_flag : (opts.audit || audit_cadence.has_value());

    const WorkloadSpec spec = parse_spec(*spec_obj, context + ".spec");
    std::vector<std::string> audit_report;
    if (hooks.audit) hooks.audit_report = &audit_report;
    if (flight != nullptr) hooks.events = flight.get();

    const scenario::Result res = scenario::run_scenario(spec, hooks);

    std::ostringstream os;
    os << "{\"job\": " << seq;
    if (!id.empty()) os << ", \"id\": \"" << json_escape(id) << "\"";
    os << ", \"ok\": true, \"spec\": " << spec_json(res.spec)
       << ", \"result\": " << scenario::result_json_line(res, opts.wall);
    if (hooks.audit) {
      out.audit_violations = std::max(0, res.audit_violations);
      os << ", \"audit_report\": [";
      for (std::size_t i = 0; i < audit_report.size(); ++i) {
        if (i > 0) os << ", ";
        os << '"' << json_escape(audit_report[i]) << '"';
      }
      os << ']';
    }
    if (flight != nullptr) {
      // A clean job dumps nothing; an audited job whose Auditor froze the
      // ring (first violation) carries the window even though it "ran".
      flight->finalize();
      if (flight->captured()) os << ", \"flight\": " << flight_json(*flight);
    }
    os << '}';
    out.record = os.str();
    out.ok = true;
  } catch (const std::exception& e) {
    out.record = error_record(seq, id, e.what(),
                              flight_dump(flight.get(), std::string("job error: ") + e.what()));
  } catch (...) {
    out.record = error_record(seq, id, "unknown error",
                              flight_dump(flight.get(), "job error: unknown"));
  }
  if (timed) out.ms = ms_since(jt0);
  return out;
}

// One NDJSON stats line ({"stats": {...}}). `lat` holds every timed job's
// latency so far; p50/p99 via nth_element on a scratch copy.
void emit_stats(std::ostream& os, const ServeStats& stats, std::size_t queue_depth,
                const std::vector<double>& lat, double elapsed_ms) {
  auto pct = [&](double q) {
    if (lat.empty()) return 0.0;
    std::vector<double> v(lat);
    const auto k = static_cast<std::ptrdiff_t>(q * static_cast<double>(v.size() - 1));
    std::nth_element(v.begin(), v.begin() + k, v.end());
    return v[static_cast<std::size_t>(k)];
  };
  char num[64];
  os << "{\"stats\": {\"jobs\": " << stats.jobs << ", \"failed\": " << stats.failed
     << ", \"audit_violations\": " << stats.audit_violations
     << ", \"queue_depth\": " << queue_depth;
  std::snprintf(num, sizeof num, "%.3f", elapsed_ms);
  os << ", \"elapsed_ms\": " << num;
  std::snprintf(num, sizeof num, "%.3f",
                elapsed_ms > 0 ? 1000.0 * static_cast<double>(stats.jobs) / elapsed_ms
                               : 0.0);
  os << ", \"jobs_per_s\": " << num;
  std::snprintf(num, sizeof num, "%.3f", pct(0.50));
  os << ", \"p50_ms\": " << num;
  std::snprintf(num, sizeof num, "%.3f", pct(0.99));
  os << ", \"p99_ms\": " << num << "}}\n";
  os.flush();
}

}  // namespace

ServeStats serve(std::istream& in, std::ostream& out, const ServeOptions& opts) {
  const int jobs = std::max(1, opts.jobs);
  const int window = jobs == 1 ? 1 : jobs * kWindowFactor;
  exec::ThreadPool pool(jobs);
  ServeStats stats;

  const auto t0 = WallClock::now();
  std::vector<double> latencies;
  long last_stats_jobs = 0;
  const long stats_every = std::max<long>(1, opts.stats_every);

  std::vector<std::pair<long, std::string>> batch;
  std::vector<JobOutcome> outcomes;
  auto flush = [&]() {
    if (batch.empty()) return;
    outcomes.assign(batch.size(), {});
    pool.for_each_index(static_cast<int>(batch.size()), [&](int i) {
      const auto& [seq, line] = batch[static_cast<std::size_t>(i)];
      outcomes[static_cast<std::size_t>(i)] = run_job(seq, line, opts);
    });
    static const telemetry::Counter c_jobs("serve.jobs");
    static const telemetry::Counter c_failed("serve.failed");
    static const telemetry::Counter c_violations("serve.violations");
    for (const JobOutcome& o : outcomes) {
      out << o.record << '\n';
      ++stats.jobs;
      if (!o.ok) ++stats.failed;
      stats.audit_violations += o.audit_violations;
      c_jobs.inc();
      if (!o.ok) c_failed.inc();
      c_violations.add(static_cast<std::uint64_t>(o.audit_violations));
      if (telemetry::enabled()) {
        static const telemetry::Histogram h_job("serve.job_ns", telemetry::Kind::Time);
        h_job.observe(static_cast<std::uint64_t>(o.ms * 1e6));
      }
      if (opts.stats != nullptr) latencies.push_back(o.ms);
    }
    out.flush();
    batch.clear();
    // Stats ride the window boundary (a quiescent point — the pool joined),
    // never the result stream.
    if (opts.stats != nullptr && stats.jobs - last_stats_jobs >= stats_every) {
      last_stats_jobs = stats.jobs;
      emit_stats(*opts.stats, stats, batch.size(), latencies, ms_since(t0));
    }
  };

  long seq = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    batch.emplace_back(seq++, line);
    if (static_cast<int>(batch.size()) >= window) flush();
  }
  flush();
  // Final summary line, cadence or not: a consumer tailing the stats stream
  // always sees the end-of-stream totals.
  if (opts.stats != nullptr) emit_stats(*opts.stats, stats, 0, latencies, ms_since(t0));
  return stats;
}

}  // namespace pm::workload
