#include "workload/serve.h"

#include <algorithm>
#include <istream>
#include <optional>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "exec/thread_pool.h"
#include "scenario/scenario.h"
#include "workload/json.h"
#include "workload/workload.h"

namespace pm::workload {

namespace {

// How many jobs a window holds per pool thread. Wider windows amortize the
// fork/join barrier; the emitter still writes strictly in input order, so
// the factor moves latency and nothing else.
constexpr int kWindowFactor = 4;

struct JobOutcome {
  std::string record;  // one NDJSON line, no trailing newline
  bool ok = false;
  int audit_violations = 0;  // only when the job was audited
};

// `id` is included whenever the envelope got far enough to yield one, so
// failures stay attributable to the caller's key, not just the line number.
std::string error_record(long seq, const std::string& id, const std::string& what) {
  std::string rec = "{\"job\": " + std::to_string(seq);
  if (!id.empty()) rec += ", \"id\": \"" + json_escape(id) + "\"";
  rec += ", \"ok\": false, \"error\": \"" + json_escape(what) + "\"}";
  return rec;
}

// Parses and runs one job line. Never throws (the pool's workers require
// it): every failure becomes this line's error record.
JobOutcome run_job(long seq, const std::string& line, const ServeOptions& opts) {
  JobOutcome out;
  const std::string context = "job " + std::to_string(seq);
  std::string id;
  try {
    const Json doc = Json::parse(line, context);
    const Json* spec_obj = &doc;
    scenario::RunHooks hooks;
    hooks.audit_every = std::max<long>(1, opts.audit_every);
    // Collected first, combined after the loop: the envelope's semantics
    // must not depend on its key order ("audit": false next to
    // "audit_every" disables auditing wherever it appears).
    std::optional<bool> audit_flag;
    std::optional<long> audit_cadence;
    if (doc.is_obj() && doc.find("spec") != nullptr) {
      // Envelope form: per-job id and RunHooks around the spec.
      for (const auto& [key, value] : doc.as_obj(context)) {
        const std::string field = context + "." + key;
        if (key == "spec") {
          spec_obj = &value;
        } else if (key == "id") {
          id = value.as_str(field);
        } else if (key == "audit") {
          audit_flag = value.as_bool(field);
        } else if (key == "audit_every") {
          audit_cadence = value.as_int(1, 1'000'000'000, field);
        } else if (key == "trace") {
          hooks.trace_path = value.as_str(field);
        } else if (key == "checkpoint_every") {
          hooks.checkpoint_every = value.as_int(1, 1'000'000'000, field);
        } else if (key == "checkpoint") {
          hooks.checkpoint_path = value.as_str(field);
        } else if (key == "resume") {
          hooks.resume = value.as_bool(field);
        } else {
          throw WorkloadError(field + ": unknown job field (known: spec, id, audit, "
                              "audit_every, trace, checkpoint_every, checkpoint, "
                              "resume)");
        }
      }
    }
    // A cadence implies auditing (the pm_bench --audit-every convention),
    // but an explicit "audit": false always wins.
    if (audit_cadence) hooks.audit_every = *audit_cadence;
    hooks.audit = audit_flag ? *audit_flag : (opts.audit || audit_cadence.has_value());

    const WorkloadSpec spec = parse_spec(*spec_obj, context + ".spec");
    std::vector<std::string> audit_report;
    if (hooks.audit) hooks.audit_report = &audit_report;

    const scenario::Result res = scenario::run_scenario(spec, hooks);

    std::ostringstream os;
    os << "{\"job\": " << seq;
    if (!id.empty()) os << ", \"id\": \"" << json_escape(id) << "\"";
    os << ", \"ok\": true, \"spec\": " << spec_json(res.spec)
       << ", \"result\": " << scenario::result_json_line(res, opts.wall);
    if (hooks.audit) {
      out.audit_violations = std::max(0, res.audit_violations);
      os << ", \"audit_report\": [";
      for (std::size_t i = 0; i < audit_report.size(); ++i) {
        if (i > 0) os << ", ";
        os << '"' << json_escape(audit_report[i]) << '"';
      }
      os << ']';
    }
    os << '}';
    out.record = os.str();
    out.ok = true;
  } catch (const std::exception& e) {
    out.record = error_record(seq, id, e.what());
  } catch (...) {
    out.record = error_record(seq, id, "unknown error");
  }
  return out;
}

}  // namespace

ServeStats serve(std::istream& in, std::ostream& out, const ServeOptions& opts) {
  const int jobs = std::max(1, opts.jobs);
  const int window = jobs == 1 ? 1 : jobs * kWindowFactor;
  exec::ThreadPool pool(jobs);
  ServeStats stats;

  std::vector<std::pair<long, std::string>> batch;
  std::vector<JobOutcome> outcomes;
  auto flush = [&]() {
    if (batch.empty()) return;
    outcomes.assign(batch.size(), {});
    pool.for_each_index(static_cast<int>(batch.size()), [&](int i) {
      const auto& [seq, line] = batch[static_cast<std::size_t>(i)];
      outcomes[static_cast<std::size_t>(i)] = run_job(seq, line, opts);
    });
    for (const JobOutcome& o : outcomes) {
      out << o.record << '\n';
      ++stats.jobs;
      if (!o.ok) ++stats.failed;
      stats.audit_violations += o.audit_violations;
    }
    out.flush();
    batch.clear();
  };

  long seq = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    batch.emplace_back(seq++, line);
    if (static_cast<int>(batch.size()) >= window) flush();
  }
  flush();
  return stats;
}

}  // namespace pm::workload
