#include "workload/json.h"

#include <limits>
#include <sstream>

namespace pm::workload {

Json Json::make_bool(bool b) {
  Json j;
  j.kind_ = Kind::Bool;
  j.bool_ = b;
  return j;
}

Json Json::make_int(bool negative, std::uint64_t magnitude) {
  Json j;
  j.kind_ = Kind::Int;
  j.negative_ = negative && magnitude != 0;
  j.magnitude_ = magnitude;
  return j;
}

Json Json::make_str(std::string s) {
  Json j;
  j.kind_ = Kind::Str;
  j.str_ = std::move(s);
  return j;
}

Json Json::make_arr(std::vector<Json> items) {
  Json j;
  j.kind_ = Kind::Arr;
  j.arr_ = std::move(items);
  return j;
}

Json Json::make_obj(Members members) {
  Json j;
  j.kind_ = Kind::Obj;
  j.obj_ = std::move(members);
  return j;
}

const char* Json::kind_name(Kind k) noexcept {
  switch (k) {
    case Kind::Null: return "null";
    case Kind::Bool: return "a boolean";
    case Kind::Int: return "an integer";
    case Kind::Str: return "a string";
    case Kind::Arr: return "an array";
    case Kind::Obj: return "an object";
  }
  return "?";
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, const std::string& where)
      : text_(text), where_(where) {}

  Json parse_document() {
    skip_ws();
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing garbage after the top-level value");
    }
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    // Offsets are unreadable in a hand-edited file; report line:column.
    std::size_t line = 1;
    std::size_t col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    std::ostringstream os;
    os << where_ << ":" << line << ":" << col << ": " << msg;
    throw WorkloadError(os.str());
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!at_end()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  void expect(char c, const char* what) {
    if (at_end() || peek() != c) fail(std::string("expected ") + what);
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  // The parser recurses per nesting level; without a ceiling a hostile
  // line of 200k '[' would overflow the stack and take the whole process
  // (pm_serve's isolation contract forbids that). Workload documents nest
  // ~5 deep; 64 is far past any legitimate file.
  static constexpr int kMaxDepth = 64;

  Json parse_value() {
    if (depth_ >= kMaxDepth) fail("nesting deeper than 64 levels");
    if (at_end()) fail("unexpected end of input");
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json::make_str(parse_string());
      case 't':
        if (consume_literal("true")) return Json::make_bool(true);
        fail("invalid literal (did you mean 'true'?)");
      case 'f':
        if (consume_literal("false")) return Json::make_bool(false);
        fail("invalid literal (did you mean 'false'?)");
      case 'n':
        if (consume_literal("null")) return Json();
        fail("invalid literal (did you mean 'null'?)");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail("unexpected character");
    }
  }

  Json parse_object() {
    ++depth_;
    expect('{', "'{'");
    Json::Members members;
    skip_ws();
    if (!at_end() && peek() == '}') {
      ++pos_;
      --depth_;
      return Json::make_obj(std::move(members));
    }
    while (true) {
      skip_ws();
      if (at_end() || peek() != '"') fail("expected a string key");
      std::string key = parse_string();
      for (const auto& [existing, unused] : members) {
        if (existing == key) fail("duplicate key \"" + key + "\"");
      }
      skip_ws();
      expect(':', "':' after key");
      skip_ws();
      Json value = parse_value();
      members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (at_end()) fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        --depth_;
        return Json::make_obj(std::move(members));
      }
      fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    ++depth_;
    expect('[', "'['");
    std::vector<Json> items;
    skip_ws();
    if (!at_end() && peek() == ']') {
      ++pos_;
      --depth_;
      return Json::make_arr(std::move(items));
    }
    while (true) {
      skip_ws();
      items.push_back(parse_value());
      skip_ws();
      if (at_end()) fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        --depth_;
        return Json::make_arr(std::move(items));
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"', "'\"'");
    std::string out;
    while (true) {
      if (at_end()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (at_end()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (at_end()) fail("unterminated \\u escape");
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // Workload strings are suite names and families — ASCII. The
          // emitter only produces \u00xx for control characters, so that is
          // all the reader accepts; anything wider is a schema smell.
          if (code > 0x7F) fail("non-ASCII \\u escape (workload strings are ASCII)");
          out.push_back(static_cast<char>(code));
          break;
        }
        default: fail("unknown escape sequence");
      }
    }
  }

  Json parse_number() {
    const bool negative = peek() == '-';
    if (negative) ++pos_;
    if (at_end() || peek() < '0' || peek() > '9') fail("expected a digit");
    // Leading zeros are a JSON syntax error ("01"); a bare zero is fine.
    if (peek() == '0' && pos_ + 1 < text_.size() && text_[pos_ + 1] >= '0' &&
        text_[pos_ + 1] <= '9') {
      fail("leading zero in number");
    }
    std::uint64_t magnitude = 0;
    while (!at_end() && peek() >= '0' && peek() <= '9') {
      const std::uint64_t digit = static_cast<std::uint64_t>(peek() - '0');
      if (magnitude > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
        fail("integer overflows 64 bits");
      }
      magnitude = magnitude * 10 + digit;
      ++pos_;
    }
    if (!at_end() && (peek() == '.' || peek() == 'e' || peek() == 'E')) {
      fail("floating-point numbers are not used in workload files");
    }
    if (negative && magnitude > 0x8000000000000000ull) {
      fail("negative integer overflows 64 bits");
    }
    return Json::make_int(negative, magnitude);
  }

  std::string_view text_;
  const std::string& where_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

[[noreturn]] void type_fail(const std::string& context, Json::Kind want,
                            Json::Kind got) {
  throw WorkloadError(context + ": expected " + Json::kind_name(want) + ", got " +
                      Json::kind_name(got));
}

}  // namespace

Json Json::parse(std::string_view text, const std::string& where) {
  return Parser(text, where).parse_document();
}

bool Json::as_bool(const std::string& context) const {
  if (kind_ != Kind::Bool) type_fail(context, Kind::Bool, kind_);
  return bool_;
}

long long Json::as_int(long long lo, long long hi, const std::string& context) const {
  if (kind_ != Kind::Int) type_fail(context, Kind::Int, kind_);
  long long value = 0;
  if (negative_) {
    if (magnitude_ > 0x8000000000000000ull) {
      throw WorkloadError(context + ": value out of range");
    }
    value = static_cast<long long>(-magnitude_);
  } else {
    if (magnitude_ > static_cast<std::uint64_t>(std::numeric_limits<long long>::max())) {
      throw WorkloadError(context + ": value out of range");
    }
    value = static_cast<long long>(magnitude_);
  }
  if (value < lo || value > hi) {
    throw WorkloadError(context + ": " + std::to_string(value) + " is outside [" +
                        std::to_string(lo) + ", " + std::to_string(hi) + "]");
  }
  return value;
}

std::uint64_t Json::as_u64(const std::string& context) const {
  if (kind_ != Kind::Int) type_fail(context, Kind::Int, kind_);
  if (negative_) {
    throw WorkloadError(context + ": must be non-negative");
  }
  return magnitude_;
}

const std::string& Json::as_str(const std::string& context) const {
  if (kind_ != Kind::Str) type_fail(context, Kind::Str, kind_);
  return str_;
}

const std::vector<Json>& Json::as_arr(const std::string& context) const {
  if (kind_ != Kind::Arr) type_fail(context, Kind::Arr, kind_);
  return arr_;
}

const Json::Members& Json::as_obj(const std::string& context) const {
  if (kind_ != Kind::Obj) type_fail(context, Kind::Obj, kind_);
  return obj_;
}

const Json* Json::find(std::string_view key) const {
  PM_CHECK_MSG(kind_ == Kind::Obj, "Json::find on a non-object");
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

}  // namespace pm::workload
