// Deterministic, seedable PRNG (xoshiro256** seeded via splitmix64).
//
// Every source of randomness in the project (shape generation, scheduler
// permutations, the randomized baseline) flows through an explicitly seeded
// Rng so that all tests and benchmarks are reproducible bit-for-bit.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace pm {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  // The full generator state, for checkpoint/resume: a generator built via
  // set_state(state()) continues the exact draw sequence.
  [[nodiscard]] std::array<std::uint64_t, 4> state() const noexcept {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& s) noexcept {
    for (int i = 0; i < 4; ++i) s_[static_cast<std::size_t>(i)] = s[static_cast<std::size_t>(i)];
  }

  // Uniform in [0, 2^64).
  std::uint64_t next() noexcept;

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept;

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  // Fair coin.
  bool coin() noexcept;

  // Uniform double in [0, 1).
  double uniform() noexcept;

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace pm
