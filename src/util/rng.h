// Deterministic, seedable PRNG (xoshiro256** seeded via splitmix64).
//
// Every source of randomness in the project (shape generation, scheduler
// permutations, the randomized baseline) flows through an explicitly seeded
// Rng so that all tests and benchmarks are reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

namespace pm {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  // Uniform in [0, 2^64).
  std::uint64_t next() noexcept;

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept;

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  // Fair coin.
  bool coin() noexcept;

  // Uniform double in [0, 1).
  double uniform() noexcept;

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace pm
