// Shared wall-clock helpers for the engines' per-phase metrics.
#pragma once

#include <chrono>

namespace pm {

using WallClock = std::chrono::steady_clock;

// Milliseconds elapsed since t0 (the single definition of "wall_ms" across
// the Engine, the pipeline, and the scenario runner).
[[nodiscard]] inline double ms_since(WallClock::time_point t0) {
  return std::chrono::duration<double, std::milli>(WallClock::now() - t0).count();
}

}  // namespace pm
