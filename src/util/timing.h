// Shared wall-clock helpers for the engines' per-phase metrics.
//
// This header is the repo's single sanctioned wall-clock chokepoint: rule
// pm-wall-clock (tools/pm_lint) bans <chrono> clock sources and time(NULL)
// everywhere else, so every timing read flows through WallClock / ms_since
// and is therefore trivially excluded from byte-determinism by --no-wall.
// Do not add clock reads elsewhere; include this header instead.
#pragma once

#include <chrono>

namespace pm {

using WallClock = std::chrono::steady_clock;

// Milliseconds elapsed since t0 (the single definition of "wall_ms" across
// the Engine, the pipeline, and the scenario runner).
[[nodiscard]] inline double ms_since(WallClock::time_point t0) {
  return std::chrono::duration<double, std::milli>(WallClock::now() - t0).count();
}

}  // namespace pm
