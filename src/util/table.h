// Fixed-width console table printer. The benchmark binaries use it to emit
// the same row layout as the paper's Table 1 next to the measured numbers.
#pragma once

#include <string>
#include <vector>

namespace pm {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  // Renders with column widths fitted to content, e.g.
  //   algorithm      | rounds | slope
  //   ---------------+--------+------
  //   DLE            | 412    | 2.01
  [[nodiscard]] std::string to_string() const;

  // Convenience for numeric cells.
  static std::string num(double v, int precision = 2);
  static std::string num(long long v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pm
