// Snapshot: the checkpoint/resume word stream shared by every steppable
// engine (amoebot::Engine, exec::ParallelEngine, core::ObdRun,
// core::CollectRun, the baselines) and composed by pipeline::Pipeline.
//
// A Snapshot is an ordered sequence of 64-bit words written by save() paths
// and consumed in the same order by restore() paths; section marks
// (put_mark/expect_mark) catch writer/reader drift loudly instead of
// silently misinterpreting state. serialize()/parse() round-trip the stream
// through a line-oriented text form, so a snapshot taken in one process can
// be written to disk and resumed in a fresh process image — the
// checkpoint/resume tests do exactly that, and assert the resumed run's
// Result and trajectory are bit-for-bit identical to an uninterrupted run.
//
// Deliberately value-only: no type tags, no schema evolution. A snapshot is
// a short-lived artifact of one build (the version stamp in the header is
// checked at parse time); it is not an archival format.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/check.h"

namespace pm {

class Snapshot {
 public:
  // Malformed snapshot *input* (a truncated file, corrupt hex, a bad
  // header). Derives from CheckError so existing catch sites keep working,
  // but lets callers that read checkpoint files from disk distinguish
  // "this file is corrupt — fall back to a fresh run" from a logic error.
  class ParseError : public CheckError {
   public:
    explicit ParseError(const std::string& what) : CheckError(what) {}
  };

  // --- writing ---

  void put(std::uint64_t v) { words_.push_back(v); }
  void put_i(std::int64_t v) { put(static_cast<std::uint64_t>(v)); }
  void put_mark(std::uint32_t mark);

  // --- reading (cursor-based; a parsed or rewound snapshot reads from the
  // start, in write order) ---

  [[nodiscard]] std::uint64_t get() const;
  [[nodiscard]] std::int64_t get_i() const { return static_cast<std::int64_t>(get()); }
  // Throws pm::CheckError when the next word is not the expected mark.
  void expect_mark(std::uint32_t mark) const;

  void rewind() const { cursor_ = 0; }
  [[nodiscard]] std::size_t size() const { return words_.size(); }
  [[nodiscard]] bool exhausted() const { return cursor_ == words_.size(); }

  // --- process-image portability ---

  // A small text document ("pm-snapshot 1 <n>" header + hex words); the
  // inverse of parse. Suitable for writing to a checkpoint file.
  [[nodiscard]] std::string serialize() const;
  // Throws Snapshot::ParseError for malformed input: a bad or truncated
  // header, a version mismatch, an implausible word count, non-hex or
  // oversized words, truncation, or trailing garbage after the last word.
  static Snapshot parse(const std::string& text);
  // Non-throwing variant for callers that must survive corrupt input (the
  // checkpoint auto-resume path): nullopt on malformed text, with the
  // parse failure reported through `error` when non-null.
  static std::optional<Snapshot> try_parse(const std::string& text,
                                           std::string* error = nullptr);

 private:
  std::vector<std::uint64_t> words_;
  mutable std::size_t cursor_ = 0;
};

// Section marks used across the engines' save/restore paths (arbitrary
// distinct constants; listed here so collisions are impossible).
inline constexpr std::uint32_t kSnapSystem = 0x53595301;    // SystemCore
inline constexpr std::uint32_t kSnapEngine = 0x454e4701;    // Engine / ParallelEngine
inline constexpr std::uint32_t kSnapObd = 0x4f424401;       // core::ObdRun
inline constexpr std::uint32_t kSnapCollect = 0x434f4c01;   // core::CollectRun
inline constexpr std::uint32_t kSnapErosion = 0x45524f01;   // baselines::ErosionRun
inline constexpr std::uint32_t kSnapContest = 0x434e5401;   // baselines::ContestRun
inline constexpr std::uint32_t kSnapPipeline = 0x50495001;  // pipeline::Pipeline
inline constexpr std::uint32_t kSnapStage = 0x53544701;     // pipeline::Stage framing
inline constexpr std::uint32_t kSnapZoo = 0x5a4f4f01;       // zoo::* LE engines
inline constexpr std::uint32_t kSnapTrace = 0x54524301;     // audit::TraceWriter
inline constexpr std::uint32_t kSnapAudit = 0x41554401;     // audit::Auditor

}  // namespace pm
