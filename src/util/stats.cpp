#include "util/stats.h"

#include <cmath>
#include <vector>

#include "util/check.h"

namespace pm {

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  PM_CHECK(xs.size() == ys.size());
  PM_CHECK(xs.size() >= 2);
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (denom == 0.0) return fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double r = ys[i] - (fit.slope * xs[i] + fit.intercept);
    ss_res += r * r;
  }
  fit.r2 = (ss_tot > 0) ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

LinearFit fit_power(std::span<const double> xs, std::span<const double> ys) {
  PM_CHECK(xs.size() == ys.size());
  std::vector<double> lx(xs.size()), ly(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    PM_CHECK_MSG(xs[i] > 0 && ys[i] > 0, "fit_power requires positive data");
    lx[i] = std::log(xs[i]);
    ly[i] = std::log(ys[i]);
  }
  return fit_linear(lx, ly);
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0;
  for (const double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

}  // namespace pm
