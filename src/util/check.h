// Lightweight precondition / invariant checking.
//
// PM_CHECK fires in every build type: the simulator is a correctness tool, and
// a model-rule violation (e.g. expanding onto an occupied node) must never be
// silently ignored. Failures throw pm::CheckError so tests can assert on them.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pm {

class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_fail(const char* expr, const char* file, int line,
                                    const std::string& msg) {
  std::ostringstream os;
  os << "PM_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace pm

#define PM_CHECK(cond)                                                \
  do {                                                                \
    if (!(cond)) ::pm::detail::check_fail(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define PM_CHECK_MSG(cond, msg)                                      \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::ostringstream pm_check_os;                                \
      pm_check_os << msg;                                            \
      ::pm::detail::check_fail(#cond, __FILE__, __LINE__, pm_check_os.str()); \
    }                                                                \
  } while (0)
