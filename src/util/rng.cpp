#include "util/rng.h"

namespace pm {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Debiased modulo via rejection sampling. NOTE: the value stream of this
  // method is load-bearing — every recorded trajectory and the shape
  // generators' outputs depend on it, so it must not be swapped for a
  // faster mapping (e.g. Lemire's multiply-shift) without revalidating
  // every seed-sensitive suite.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

bool Rng::coin() noexcept { return (next() >> 63) != 0; }

double Rng::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

}  // namespace pm
