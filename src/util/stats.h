// Small statistics helpers used by the benchmark harness to turn measured
// (parameter, rounds) series into the slope / exponent summaries reported in
// EXPERIMENTS.md.
#pragma once

#include <cstddef>
#include <span>

namespace pm {

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;  // coefficient of determination
};

// Ordinary least squares fit of y = slope * x + intercept.
// Requires xs.size() == ys.size() and at least 2 points.
LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys);

// Fits log(y) = e * log(x) + c, i.e. y ~ x^e; returns e in `slope`.
// All inputs must be positive.
LinearFit fit_power(std::span<const double> xs, std::span<const double> ys);

double mean(std::span<const double> xs);

}  // namespace pm
