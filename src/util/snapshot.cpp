#include "util/snapshot.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/check.h"

namespace pm {

void Snapshot::put_mark(std::uint32_t mark) { put(mark); }

std::uint64_t Snapshot::get() const {
  PM_CHECK_MSG(cursor_ < words_.size(), "snapshot underrun at word " << cursor_);
  return words_[cursor_++];
}

void Snapshot::expect_mark(std::uint32_t mark) const {
  const std::uint64_t got = get();
  PM_CHECK_MSG(got == mark, "snapshot section mismatch: expected mark 0x"
                                << std::hex << mark << ", found 0x" << got << std::dec
                                << " at word " << (cursor_ - 1));
}

std::string Snapshot::serialize() const {
  std::ostringstream os;
  os << "pm-snapshot 1 " << words_.size() << "\n";
  char buf[20];
  for (std::size_t i = 0; i < words_.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%llx",
                  static_cast<unsigned long long>(words_[i]));
    os << buf << ((i + 1) % 8 == 0 ? "\n" : " ");
  }
  if (words_.size() % 8 != 0) os << "\n";
  return os.str();
}

Snapshot Snapshot::parse(const std::string& text) {
  std::istringstream is(text);
  std::string magic;
  int version = 0;
  std::size_t count = 0;
  is >> magic >> version >> count;
  PM_CHECK_MSG(is && magic == "pm-snapshot", "not a pm-snapshot document");
  PM_CHECK_MSG(version == 1, "unsupported snapshot version " << version);
  // A corrupted header must fail cleanly, not turn into a multi-gigabyte
  // reserve: 2^27 words (1 GiB) is far above any real checkpoint.
  PM_CHECK_MSG(count <= (1ULL << 27), "snapshot header word count " << count
                                          << " implausibly large");
  Snapshot snap;
  snap.words_.reserve(count);
  std::string word;
  for (std::size_t i = 0; i < count; ++i) {
    is >> word;
    PM_CHECK_MSG(is, "snapshot truncated: " << i << " of " << count << " words");
    // strtoull accepts signs and saturates on overflow — both are
    // corruption here, not values.
    PM_CHECK_MSG(!word.empty() && word.size() <= 16 && word[0] != '-' && word[0] != '+',
                 "snapshot word " << i << " malformed: '" << word << "'");
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(word.c_str(), &end, 16);
    PM_CHECK_MSG(errno == 0 && end != nullptr && *end == '\0',
                 "snapshot word " << i << " is not hex: '" << word << "'");
    snap.words_.push_back(static_cast<std::uint64_t>(v));
  }
  return snap;
}

}  // namespace pm
