#include "util/snapshot.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/check.h"

namespace pm {

void Snapshot::put_mark(std::uint32_t mark) { put(mark); }

std::uint64_t Snapshot::get() const {
  PM_CHECK_MSG(cursor_ < words_.size(), "snapshot underrun at word " << cursor_);
  return words_[cursor_++];
}

void Snapshot::expect_mark(std::uint32_t mark) const {
  const std::uint64_t got = get();
  PM_CHECK_MSG(got == mark, "snapshot section mismatch: expected mark 0x"
                                << std::hex << mark << ", found 0x" << got << std::dec
                                << " at word " << (cursor_ - 1));
}

std::string Snapshot::serialize() const {
  std::ostringstream os;
  os << "pm-snapshot 1 " << words_.size() << "\n";
  char buf[20];
  for (std::size_t i = 0; i < words_.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%llx",
                  static_cast<unsigned long long>(words_[i]));
    os << buf << ((i + 1) % 8 == 0 ? "\n" : " ");
  }
  if (words_.size() % 8 != 0) os << "\n";
  return os.str();
}

namespace {

// Fails a parse with a structured error: all malformed-input paths funnel
// here so corrupt checkpoint/trace files surface as Snapshot::ParseError
// (never UB, never a plain assert).
[[noreturn]] void parse_fail(const std::string& what) {
  throw Snapshot::ParseError("snapshot parse: " + what);
}

}  // namespace

Snapshot Snapshot::parse(const std::string& text) {
  std::istringstream is(text);
  std::string magic;
  std::string version_tok;
  std::string count_tok;
  is >> magic >> version_tok >> count_tok;
  if (!is || magic != "pm-snapshot") parse_fail("not a pm-snapshot document");
  // Parse version and count from their tokens by hand: extracting into an
  // unsigned integer would silently wrap a negative header field.
  if (version_tok != "1") parse_fail("unsupported snapshot version '" + version_tok + "'");
  errno = 0;
  char* end = nullptr;
  const unsigned long long count_v = std::strtoull(count_tok.c_str(), &end, 10);
  if (count_tok.empty() || count_tok[0] == '-' || count_tok[0] == '+' || errno != 0 ||
      end == nullptr || *end != '\0') {
    parse_fail("malformed word count '" + count_tok + "'");
  }
  // A corrupted header must fail cleanly, not turn into a multi-gigabyte
  // reserve: 2^27 words (1 GiB) is far above any real checkpoint.
  if (count_v > (1ULL << 27)) {
    parse_fail("header word count " + count_tok + " implausibly large");
  }
  const auto count = static_cast<std::size_t>(count_v);
  Snapshot snap;
  snap.words_.reserve(count);
  std::string word;
  for (std::size_t i = 0; i < count; ++i) {
    is >> word;
    if (!is) {
      parse_fail("truncated: " + std::to_string(i) + " of " + count_tok + " words");
    }
    // strtoull accepts signs and saturates on overflow — both are
    // corruption here, not values.
    if (word.empty() || word.size() > 16 || word[0] == '-' || word[0] == '+') {
      parse_fail("word " + std::to_string(i) + " malformed: '" + word + "'");
    }
    errno = 0;
    end = nullptr;
    const unsigned long long v = std::strtoull(word.c_str(), &end, 16);
    if (errno != 0 || end == nullptr || *end != '\0') {
      parse_fail("word " + std::to_string(i) + " is not hex: '" + word + "'");
    }
    snap.words_.push_back(static_cast<std::uint64_t>(v));
  }
  // Anything but whitespace after the last word means the document was
  // damaged (e.g. a header word count clipped by a partial write).
  if (is >> word) parse_fail("trailing garbage after word " + count_tok + ": '" + word + "'");
  return snap;
}

std::optional<Snapshot> Snapshot::try_parse(const std::string& text, std::string* error) {
  try {
    return parse(text);
  } catch (const ParseError& e) {
    if (error != nullptr) *error = e.what();
    return std::nullopt;
  }
}

}  // namespace pm
