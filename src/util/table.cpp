#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/check.h"

namespace pm {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  PM_CHECK_MSG(cells.size() == headers_.size(),
               "row has " << cells.size() << " cells, expected " << headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << " | ";
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << '\n';
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) os << "-+-";
    os << std::string(widths[c], '-');
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::num(long long v) { return std::to_string(v); }

}  // namespace pm
