// A small fixed-size thread pool for batch-parallel activation execution.
//
// The pool exists for exactly one call shape: for_each_index(count, fn) runs
// fn(i) for every i in [0, count) across the pool's threads (the calling
// thread participates) and returns only when all indices have completed —
// a fork/join parallel-for with no task queue, no futures, and no per-call
// allocation. Indices are claimed from a shared atomic counter, so uneven
// per-index cost load-balances automatically.
//
// A pool of size 1 spawns no worker threads at all and executes inline on
// the caller. (Note the ParallelEngine bypasses the pool entirely for
// single-threaded runs and for batches too narrow to amortize the barrier —
// see execute_sequence; its journal path is exercised by wide batches and,
// in the tests, by forcing ParallelRunOptions::inline_batch_below down.)
//
// fn must not throw: the ParallelEngine captures activation exceptions into
// per-batch records itself (an escaping exception would std::terminate via
// the worker thread).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace pm::exec {

class ThreadPool {
 public:
  // Total concurrency including the calling thread; spawns threads - 1
  // workers. threads < 1 is clamped to 1.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int thread_count() const {
    return static_cast<int>(workers_.size()) + 1;
  }

  // What a default-constructed engine should use: the hardware concurrency,
  // with a floor of 1 when the runtime reports nothing.
  [[nodiscard]] static int default_thread_count();

  // Runs fn(i) for each i in [0, count), returning when all are done.
  template <typename Fn>
  void for_each_index(int count, Fn&& fn) {
    using F = std::remove_reference_t<Fn>;
    run_impl(
        count, [](void* ctx, int i) { (*static_cast<F*>(ctx))(i); },
        const_cast<std::remove_const_t<F>*>(&fn));
  }

 private:
  void run_impl(int count, void (*fn)(void*, int), void* ctx);
  void worker_loop();
  void drain_indices();

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a new generation
  std::condition_variable done_cv_;   // caller waits for workers to finish
  std::uint64_t generation_ = 0;      // incremented per for_each_index call
  int working_ = 0;                   // workers still inside the current job
  bool stop_ = false;

  // Current job (valid while generation_ is the one a worker saw).
  void (*fn_)(void*, int) = nullptr;
  void* ctx_ = nullptr;
  int count_ = 0;
  std::atomic<int> next_{0};
};

}  // namespace pm::exec
