// Conflict detection for parallel activation batching.
//
// An activation of particle p may, per the amoebot model (view.h):
//   * read/write p's own state and body,
//   * read/write the states (and, via handover, the bodies) of particles
//     occupying nodes adjacent to p's head/tail,
//   * probe the occupancy of adjacent nodes,
//   * perform one movement, mutating occupancy on adjacent nodes.
// Every cell it probes or mutates lies within distance 1 of its occupied
// nodes, and every particle it reads or writes has a body node there.
//
// Two activations p, q therefore commute unless some particle x is accessed
// by both: x needs a body node within distance 1 of p and one within
// distance 1 of q, and a body spans at most 1 — possible only when the
// occupied-node distance between p and q is <= 3.
//
// Batches are built by jump-ahead scanning, not prefix-taking: the pending
// sequence is scanned in order, and a particle joins the current batch if
// it commutes with every *earlier* pending particle — members and deferred
// ones alike. Both roles claim the distance-<=2 ball around their occupied
// nodes and candidates probe their own distance-<=2 ball against the
// claims, which blocks occupied-node distance <= 4. That margin is exactly
// what deferral requires: a deferred particle can be displaced before it
// finally executes, but by at most one node in total — displacement means
// being pulled through a handover, which leaves it expanded, and a second
// displacement would need it contracted again, i.e. an activation of its
// own. (This is where the engine's runtime contract bites, enforced via
// SystemCore::set_parallel_contract: a *push* handover contracts the
// non-activating party, so pull/push chains could displace a pending
// particle without bound; and neighborhood access after a movement would
// reach one node beyond the plan-time footprint, so movement must be the
// activation's last act.) A member m touches particles with a
// body node within distance 1 of
// m; a deferred d eventually touches particles with a body node within
// distance 1 of its displaced body, i.e. within 2 of its current nodes. A
// particle touched by both therefore forces dist(m, d) <= 1 + 1 + 2 = 4 —
// exactly what the symmetric ball-2 claims block. Skipping ahead of a
// *final* particle needs no claim at all: it activates as a pure no-op at
// its sequential turn, and anything that could flip its finality before
// that turn already blocks it from being skipped in place.
//
// This is the same soundness condition the Engine's TouchList tracks a
// posteriori; the footprint over-approximates it a priori, before the
// activation runs. Batch width — not batch count — is what the ThreadPool
// amortizes its fork/join barrier over, which is why jump-ahead matters:
// on dense shapes it cuts batches per round by an order of magnitude
// compared to maximal independent prefixes. The planner stops scanning
// once a batch is wide enough to saturate the pool (max_batch), so the
// unexamined tail of the sequence costs nothing this pass.
#pragma once

#include <cstdint>
#include <vector>

#include "amoebot/system.h"
#include "grid/coord.h"
#include "grid/flat_box.h"

namespace pm::exec {

// The distance-<=k ball offsets around a single node, built once from the
// grid's neighbor function: 7 nodes for k=1, 19 for k=2, 37 for k=3.
[[nodiscard]] const std::vector<grid::Node>& ball_offsets(int k);

// Appends the distance-<=2 ball around p's occupied nodes to `out` (entries
// may repeat where head and tail balls overlap) — the a-priori write/read
// footprint of one activation, used by the soundness tests.
void collect_footprint(const amoebot::SystemCore& sys, amoebot::ParticleId p,
                       std::vector<grid::Node>& out);

// A set of claimed grid nodes backed by a flat epoch-stamped array over a
// growable bounding box (grid::FlatBox): claim/check is a bounds check plus
// one indexed load, and advancing the epoch clears the whole set in O(1).
class ClaimTable {
 public:
  void next_epoch() {
    if (++epoch_ == 0) {  // wrapped: stale stamps would alias, start over
      box_.fill(0u);
      epoch_ = 1;
    }
  }

  // Pre-sizes the box to cover [lo, hi] plus padding (one allocation).
  void reserve_box(grid::Node lo, grid::Node hi);

  [[nodiscard]] bool claimed(grid::Node v) const {
    const std::uint32_t* stamp = box_.find(v);
    return stamp != nullptr && *stamp == epoch_;  // outside the box: unclaimed
  }

  void claim(grid::Node v) {
    std::uint32_t* stamp = box_.find(v);
    if (stamp == nullptr) {
      grow_to(v);
      stamp = box_.find(v);
    }
    *stamp = epoch_;
  }

 private:
  void grow_to(grid::Node v);

  grid::FlatBox<std::uint32_t> box_;
  // Starts at 1 so the zero-initialized stamps mean "never claimed" even
  // before the first next_epoch() call.
  std::uint32_t epoch_ = 1;
};

class Batcher {
 public:
  // Sizes the claim table from the system's current bounding box.
  explicit Batcher(const amoebot::SystemCore& sys);

  // Plans one batch by jump-ahead scanning `pending` in order:
  //   * final particles (per `final_flags`) whose bodies no earlier claim
  //     covers are no-ops at their turn — removed without joining;
  //   * particles that commute with everything earlier join the batch and
  //     are removed;
  //   * everything else stays in `pending`, order preserved, claimed so
  //     that later particles cannot jump over it.
  // The scan stops once `batch` reaches max_batch members; the unexamined
  // tail of `pending` is left untouched for the next pass. Progress is
  // guaranteed: the first pending particle always joins or is removed.
  // `batch` may come back empty when only no-op finals remained.
  void plan_batch(std::vector<amoebot::ParticleId>& pending,
                  const std::vector<char>& final_flags,
                  std::vector<amoebot::ParticleId>& batch, int max_batch);

 private:
  const amoebot::SystemCore& sys_;
  ClaimTable claims_;
};

}  // namespace pm::exec
