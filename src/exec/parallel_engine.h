// ParallelEngine: multi-threaded rounds with sequential semantics.
//
// The paper's algorithms are specified under a sequential fair scheduler,
// but two activations commute whenever their footprints — own state,
// movement partners, probed occupancy cells — are disjoint (conflict.h).
// The ParallelEngine exploits exactly that: each round's activation
// sequence is greedily partitioned into maximal prefixes of pairwise-
// independent particles (Batcher), each batch executes concurrently on a
// fixed ThreadPool with occupancy writes journaled per activation
// (amoebot::ActivationLog), and the journals are committed in the original
// sequential order. For any fixed (Order, seed) the RunResult — rounds,
// activations, moves, completion — and the final trajectory are bit-for-bit
// identical to the sequential Engine's (tests/exec/parallel_engine_test.cpp
// enforces this differentially); only wall_ms varies. Batches are built by
// jump-ahead scanning (conflict.h), so commits reorder only *commuting*
// activations: every observable above is order-invariant under commuting
// swaps. The one metric that is not in general is peak_occupancy_cells —
// the dense index's growth history depends on which out-of-box insert comes
// first — but systems built via from_shape reserve a box covering their
// whole motion range, so no in-repo algorithm grows the box mid-run and the
// peak matches too (the differential tests assert it).
//
// Sequential-order commitment is also what keeps the incremental finality
// tracking exact: each member's TouchList is processed at its commit point,
// exactly as the sequential Engine would, and batch independence guarantees
// no member can change another member's (or a skipped final particle's)
// observable neighborhood before its turn.
//
// Scope: Algo must satisfy the same contract as amoebot::Engine (is_final
// local to the particle). Post-activation hooks are not supported — a hook
// observes global state after every activation, which has no faithful
// parallel counterpart; hook-driven runs (e.g. the component-tracking
// ablation) stay on the sequential Engine. The round-synchronous OBD and
// Collect engines are untouched; pipelines parallelize their DLE stage.
#pragma once

#include <algorithm>
#include <exception>
#include <numeric>
#include <vector>

#include "amoebot/engine.h"
#include "amoebot/view.h"
#include "exec/conflict.h"
#include "exec/thread_pool.h"
#include "telemetry/telemetry.h"
#include "util/rng.h"
#include "util/timing.h"

namespace pm::exec {

struct ParallelRunOptions {
  amoebot::Order order = amoebot::Order::RandomPerm;
  std::uint64_t seed = 1;
  long max_rounds = 1'000'000;
  int threads = 0;  // <= 0: ThreadPool::default_thread_count()
  // Batches narrower than this run inline (sequentially, no journals)
  // because the fork/join barrier would cost more than the batch.
  // 0 = heuristic max(16, 4 * threads); tests set a small value to force
  // the pool + journal path even on small systems.
  int inline_batch_below = 0;
};

template <typename Algo>
class ParallelEngine {
 public:
  using State = typename Algo::State;
  using System = amoebot::System<State>;
  using ParticleId = amoebot::ParticleId;

  ParallelEngine(System& sys, Algo& algo, const ParallelRunOptions& opts)
      : sys_(sys),
        algo_(algo),
        opts_(opts),
        pool_(opts.threads > 0 ? opts.threads : ThreadPool::default_thread_count()),
        batcher_(sys) {}

  ~ParallelEngine() { release_contract(); }

  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  amoebot::RunResult run() {
    start();
    while (!step_round()) {
    }
    return finish();
  }

  // --- steppable API (mirrors amoebot::Engine; see engine.h) ---

  void start() {
    t0_ = WallClock::now();
    moves0_ = sys_.moves();
    res_ = amoebot::RunResult{};
    const int n = sys_.particle_count();
    if (n == 0) {
      res_.completed = true;
      trivial_ = true;
      return;
    }
    trivial_ = false;
    // The conflict margins assume pull-only handovers and movement-last
    // activations (conflict.h): enforce both for the whole stepped run,
    // including inline-executed batches. Released by finish() or the
    // destructor, whichever comes first.
    acquire_contract();
    rng_ = Rng(opts_.seed);
    sequencer_.init(n);
    tracker_.init(sys_, algo_);
  }

  bool step_round() {
    if (trivial_) return true;
    if (tracker_.all_final()) {
      res_.completed = true;
      return true;
    }
    if (res_.rounds >= opts_.max_rounds) {
      res_.completed = false;
      return true;
    }
    const bool timed = telemetry::enabled();
    const auto rt0 = timed ? WallClock::now() : WallClock::time_point{};
    const long long acts0 = res_.activations;
    execute_sequence(sequencer_.next_round(opts_.order, rng_), res_);
    ++res_.rounds;
    {
      static const telemetry::Counter c_rounds("exec.rounds");
      static const telemetry::Counter c_acts("exec.activations");
      c_rounds.inc();
      c_acts.add(static_cast<std::uint64_t>(res_.activations - acts0));
      if (timed) {
        static const telemetry::Histogram h_round("exec.round_ns", telemetry::Kind::Time);
        h_round.observe(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(WallClock::now() - rt0)
                .count()));
      }
    }
    return false;
  }

  [[nodiscard]] const amoebot::RunResult& result() const { return res_; }

  amoebot::RunResult finish() {
    release_contract();
    return amoebot::finalize_metrics(res_, sys_, t0_, moves0_);
  }

  // Checkpoint/resume: the word layout is identical to amoebot::Engine's,
  // so snapshots resume under either engine (sequential-order commitment
  // makes their observable behavior bit-for-bit equal).

  void save(Snapshot& snap) const {
    amoebot::save_engine_core(snap, rng_, sequencer_, res_, moves0_);
  }

  void restore(const Snapshot& snap) {
    t0_ = WallClock::now();
    res_ = amoebot::RunResult{};
    trivial_ = sys_.particle_count() == 0;
    if (trivial_) {
      res_.completed = true;
    } else {
      acquire_contract();
      tracker_.init(sys_, algo_);
    }
    amoebot::restore_engine_core(snap, rng_, sequencer_, res_, moves0_);
  }

 private:
  void acquire_contract() {
    if (!contract_held_) {
      sys_.set_parallel_contract(true);
      contract_held_ = true;
    }
  }
  void release_contract() {
    if (contract_held_) {
      sys_.set_parallel_contract(false);
      contract_held_ = false;
    }
  }
  // One batch member's concurrent-execution record. Padded so neighboring
  // members' journals and touch lists never share a cache line.
  struct alignas(128) Record {
    amoebot::ActivationLog log;
    amoebot::TouchList touches;
    std::exception_ptr error;
  };

  void execute_sequence(const std::vector<ParticleId>& seq, amoebot::RunResult& res) {
    // Wide enough to keep every pool thread busy through the fork/join
    // barrier, small enough that the planner never scans deep past what
    // this pass can execute.
    const int max_batch = 64 * pool_.thread_count();
    pending_.assign(seq.begin(), seq.end());
    // Below this width the fork/join barrier costs more than the batch:
    // execute inline, in order — which is simply sequential execution, no
    // journals needed. The pool only ever sees batches worth parallelizing.
    const std::size_t inline_below = static_cast<std::size_t>(
        opts_.inline_batch_below > 0 ? opts_.inline_batch_below
                                     : std::max(16, 4 * pool_.thread_count()));
    static const telemetry::Histogram h_width("exec.batch_width");
    static const telemetry::Counter c_inline("exec.batches_inline");
    static const telemetry::Counter c_pooled("exec.batches_pooled");
    while (!pending_.empty()) {
      batcher_.plan_batch(pending_, tracker_.flags(), batch_, max_batch);
      if (batch_.empty()) continue;  // only no-op finals were removed
      h_width.observe(batch_.size());
      if (batch_.size() < inline_below || pool_.thread_count() == 1) {
        c_inline.inc();
        for (const ParticleId p : batch_) activate_sequential(p, res);
        continue;
      }
      c_pooled.inc();
      if (records_.size() < batch_.size()) records_.resize(batch_.size());
      sys_.begin_batch();
      pool_.for_each_index(static_cast<int>(batch_.size()), [this](int i) {
        Record& rec = records_[static_cast<std::size_t>(i)];
        rec.log.clear();
        rec.touches = amoebot::TouchList{};
        rec.error = nullptr;
        amoebot::SystemCore::set_thread_log(&rec.log);
        try {
          amoebot::ParticleView<State> view(sys_, batch_[static_cast<std::size_t>(i)],
                                            &rec.touches);
          algo_.activate(view);
        } catch (...) {
          rec.error = std::current_exception();
        }
        amoebot::SystemCore::set_thread_log(nullptr);
      });
      sys_.end_batch();
      // Commit in sequential order. On an activation failure, commit the
      // members before it — matching the sequential prefix — then surface
      // the earliest error (later members have already run; as with any
      // thrown model violation, the configuration is not usable further).
      bool recount_after = false;
      for (std::size_t i = 0; i < batch_.size(); ++i) {
        Record& rec = records_[i];
        if (rec.error) std::rethrow_exception(rec.error);
        sys_.commit(rec.log);
        ++res.activations;
        rec.touches.add(batch_[i]);
        // An overflow recount is deferred to the end of the batch: mid-loop
        // it would evaluate is_final against later members' uncommitted
        // journals. (Per the Algo contract is_final reads only own state and
        // body, so a post-batch recount observes exactly the values the
        // per-commit refreshes converge to — just without the subtlety.)
        if (rec.touches.overflowed()) {
          recount_after = true;
        } else {
          tracker_.process(sys_, algo_, rec.touches);
        }
      }
      if (recount_after) tracker_.recount(sys_, algo_);
    }
  }

  // Inline batches skip the journal round-trip entirely: executing the
  // members in order on this thread is already sequential execution.
  void activate_sequential(ParticleId p, amoebot::RunResult& res) {
    amoebot::TouchList touches;
    amoebot::ParticleView<State> view(sys_, p, &touches);
    algo_.activate(view);
    ++res.activations;
    touches.add(p);
    tracker_.process(sys_, algo_, touches);
  }

  System& sys_;
  Algo& algo_;
  ParallelRunOptions opts_;
  ThreadPool pool_;
  Batcher batcher_;
  amoebot::FinalityTracker<Algo> tracker_;
  amoebot::RoundSequencer sequencer_;
  std::vector<ParticleId> pending_;
  std::vector<ParticleId> batch_;
  std::vector<Record> records_;
  Rng rng_{0};
  amoebot::RunResult res_;
  WallClock::time_point t0_{};
  long long moves0_ = 0;
  bool trivial_ = false;
  bool contract_held_ = false;
};

template <typename Algo>
amoebot::RunResult run_parallel(amoebot::System<typename Algo::State>& sys, Algo& algo,
                                const ParallelRunOptions& opts) {
  ParallelEngine<Algo> engine(sys, algo, opts);
  return engine.run();
}

}  // namespace pm::exec
