#include "exec/thread_pool.h"

namespace pm::exec {

ThreadPool::ThreadPool(int threads) {
  const int n = threads < 1 ? 1 : threads;
  workers_.reserve(static_cast<std::size_t>(n - 1));
  for (int i = 0; i < n - 1; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

int ThreadPool::default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::drain_indices() {
  // Claim indices until the shared counter runs past count_. Relaxed is
  // enough for the counter itself: the mutex hand-off that published the job
  // ordered fn_/ctx_/count_ before any claim, and completion is signaled
  // back under the same mutex.
  while (true) {
    const int i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count_) return;
    fn_(ctx_, i);
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    drain_indices();
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (--working_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::run_impl(int count, void (*fn)(void*, int), void* ctx) {
  if (count <= 0) return;
  if (workers_.empty()) {
    for (int i = 0; i < count; ++i) fn(ctx, i);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    fn_ = fn;
    ctx_ = ctx;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    working_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  work_cv_.notify_all();
  drain_indices();  // the caller is one of the pool's threads
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return working_ == 0; });
}

}  // namespace pm::exec
