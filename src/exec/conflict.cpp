#include "exec/conflict.h"

#include <algorithm>

#include "telemetry/telemetry.h"
#include "util/check.h"

namespace pm::exec {

using amoebot::Body;
using amoebot::ParticleId;
using grid::Node;

namespace {

std::vector<Node> build_ball(int k) {
  // BFS out to distance k from the origin using the grid's own neighbors.
  std::vector<Node> out{{0, 0}};
  std::size_t frontier_begin = 0;
  for (int d = 0; d < k; ++d) {
    const std::size_t frontier_end = out.size();
    for (std::size_t i = frontier_begin; i < frontier_end; ++i) {
      for (int j = 0; j < grid::kDirCount; ++j) {
        const Node v = grid::neighbor(out[i], grid::dir_from_index(j));
        if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
      }
    }
    frontier_begin = frontier_end;
  }
  return out;
}

}  // namespace

const std::vector<Node>& ball_offsets(int k) {
  PM_CHECK(k >= 1 && k <= 3);
  static const std::vector<Node> ball1 = build_ball(1);
  static const std::vector<Node> ball2 = build_ball(2);
  static const std::vector<Node> ball3 = build_ball(3);
  if (k == 1) return ball1;
  return k == 2 ? ball2 : ball3;
}

void collect_footprint(const amoebot::SystemCore& sys, ParticleId p,
                       std::vector<Node>& out) {
  const Body& b = sys.body(p);
  const auto& offsets = ball_offsets(2);
  for (const Node o : offsets) out.push_back({b.head.x + o.x, b.head.y + o.y});
  if (b.expanded()) {
    for (const Node o : offsets) out.push_back({b.tail.x + o.x, b.tail.y + o.y});
  }
}

// Claims reach 3 cells beyond a body and particles drift, so pad the box
// more generously than the occupancy index does.
constexpr std::int64_t kClaimPad = 8;

// Named in the FlatBox too-sparse diagnostic: conflict planning needs a
// dense-feasible bounding box even when the occupancy index is the hash
// map, so configurations past the cell cap must use the sequential Engine.
constexpr const char* kClaimBoxName =
    "ClaimTable (ParallelEngine conflict planning — configurations this "
    "sparse need the sequential Engine)";

void ClaimTable::reserve_box(Node lo, Node hi) {
  PM_CHECK(lo.x <= hi.x && lo.y <= hi.y);
  box_.grow_to(lo.x, lo.y, hi.x, hi.y, kClaimPad, 0u, kClaimBoxName);
}

void ClaimTable::grow_to(Node v) {
  box_.grow_to(v.x, v.y, v.x, v.y, kClaimPad, 0u, kClaimBoxName);
}

Batcher::Batcher(const amoebot::SystemCore& sys) : sys_(sys) {
  if (sys.particle_count() > 0) {
    Node lo = sys.body(0).head;
    Node hi = lo;
    for (ParticleId p = 0; p < sys.particle_count(); ++p) {
      for (const Node v : {sys.body(p).head, sys.body(p).tail}) {
        lo.x = std::min(lo.x, v.x);
        lo.y = std::min(lo.y, v.y);
        hi.x = std::max(hi.x, v.x);
        hi.y = std::max(hi.y, v.y);
      }
    }
    claims_.reserve_box(lo, hi);
  }
}

void Batcher::plan_batch(std::vector<ParticleId>& pending,
                         const std::vector<char>& final_flags,
                         std::vector<ParticleId>& batch, int max_batch) {
  batch.clear();
  claims_.next_epoch();
  const auto& ball2 = ball_offsets(2);  // symmetric probe and claim

  // Accumulated in plain locals through the scan (free next to the claim
  // probes) and flushed to the telemetry shard once per plan.
  std::uint64_t scanned = 0;
  std::uint64_t conflicts = 0;

  std::size_t keep = 0;
  std::size_t i = 0;
  for (; i < pending.size(); ++i) {
    if (static_cast<int>(batch.size()) >= max_batch) break;  // pool saturated
    const ParticleId p = pending[i];
    const Body& b = sys_.body(p);
    ++scanned;

    bool joined = false;
    if (final_flags[static_cast<std::size_t>(p)] != 0) {
      // A no-op at its turn — removable in place unless something earlier in
      // this batch plan could flip its finality (or move it) before then. A
      // deferred final still claims below: it may be unfinalized and act at
      // its turn, so later candidates must not commute past it either.
      if (!claims_.claimed(b.head) && !(b.expanded() && claims_.claimed(b.tail))) {
        continue;  // removed, claims nothing
      }
    } else {
      bool conflict = false;
      for (const Node o : ball2) {
        if (claims_.claimed({b.head.x + o.x, b.head.y + o.y})) {
          conflict = true;
          break;
        }
      }
      if (!conflict && b.expanded()) {
        for (const Node o : ball2) {
          if (claims_.claimed({b.tail.x + o.x, b.tail.y + o.y})) {
            conflict = true;
            break;
          }
        }
      }
      joined = !conflict;
      if (conflict) ++conflicts;
    }
    // Member or deferred, final or not, the particle claims the same ball-2
    // region: members to exclude conflicting later candidates from this
    // batch, deferred ones to keep later candidates from commuting past
    // them (see the displacement argument in the header).
    for (const Node o : ball2) claims_.claim({b.head.x + o.x, b.head.y + o.y});
    if (b.expanded()) {
      for (const Node o : ball2) claims_.claim({b.tail.x + o.x, b.tail.y + o.y});
    }
    if (joined) {
      batch.push_back(p);
    } else {
      pending[keep++] = p;
    }
  }
  // The unexamined tail (batch-width cap) stays pending verbatim.
  for (; i < pending.size(); ++i) pending[keep++] = pending[i];
  pending.resize(keep);

  // ClaimTable conflict rate = plan.claim_conflicts / plan.scanned; every
  // conflicting candidate is deferred to a later batch of the same round.
  static const telemetry::Counter c_scanned("exec.plan.scanned");
  static const telemetry::Counter c_joined("exec.plan.joined");
  static const telemetry::Counter c_conflicts("exec.plan.claim_conflicts");
  c_scanned.add(scanned);
  c_joined.add(batch.size());
  c_conflicts.add(conflicts);
}

}  // namespace pm::exec
