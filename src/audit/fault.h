// Deterministic fault injection over the checkpoint layer.
//
// A FaultPlan is a seeded schedule of kill points: at each one the running
// pipeline is checkpointed (optionally round-tripped through the serialized
// text form, i.e. what a fresh process image would receive), torn down, and
// resumed into a freshly built pipeline — possibly under a different engine
// kind (sequential <-> exec::ParallelEngine) or occupancy index (dense <->
// hash). Because checkpoints are exact and engine/occupancy choices are
// observably neutral, the completed run's Results are bit-identical to an
// uninterrupted run, and an attached Auditor stays clean across every kill.
//
// FaultRunner also hosts the two checkpoint workflows pm_bench exposes:
// periodic auto-checkpointing (--checkpoint-every) and resume-from-latest
// (--resume), sharing the same save/restore machinery as the kills.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "audit/audit.h"
#include "audit/trace.h"
#include "pipeline/pipeline.h"

namespace pm::audit {

struct FaultPlan {
  struct Kill {
    long after_round = 1;  // kill once this many pipeline rounds have run
    int resume_threads = 0;
    amoebot::OccupancyMode resume_occupancy = amoebot::kDefaultOccupancy;
    bool through_text = true;  // serialize/parse round trip (process kill)
  };
  std::vector<Kill> kills;  // strictly increasing after_round

  [[nodiscard]] bool empty() const { return kills.empty(); }

  // Deterministic plan from a seed: 1-3 kills at rounds drawn within
  // `horizon` of each other, each randomly toggling the engine kind
  // against `base_threads`, optionally the occupancy index against
  // `base_occupancy`, and the text round trip. Kills scheduled past the
  // run's actual end simply never fire.
  [[nodiscard]] static FaultPlan from_seed(std::uint64_t seed, long horizon,
                                           int base_threads,
                                           amoebot::OccupancyMode base_occupancy,
                                           bool allow_occupancy_switch = false);
};

// Drives one run under a FaultPlan, rebuilding the pipeline at every kill
// via the caller's factory. Also provides periodic auto-checkpointing to a
// file and resume-from-latest.
class FaultRunner {
 public:
  // Builds a fresh pipeline of the run's fixed composition/configuration,
  // parameterized only by the two observably-neutral choices.
  using Factory =
      std::function<pipeline::Pipeline(int threads, amoebot::OccupancyMode occupancy)>;

  FaultRunner(Factory make, FaultPlan plan, int base_threads,
              amoebot::OccupancyMode base_occupancy);

  // Optional collaborators; all survive kills (they re-attach to every
  // rebuilt pipeline). The metrics pointer spares the auditor a recompute.
  void set_auditor(Auditor* auditor, const grid::ShapeMetrics* metrics = nullptr);
  void set_trace(TraceWriter* writer);
  // Event recorder (src/obs): re-attached to every rebuilt pipeline, so one
  // stream spans all kills; each kill/resume pair is itself recorded.
  void set_events(obs::Recorder* events);
  // Write a checkpoint (pipeline + auditor state) to `path` every
  // `every_rounds` pipeline rounds, atomically (tmp file + rename).
  void set_checkpoint(long every_rounds, std::string path);

  // Attempts to resume from the checkpoint file configured via
  // set_checkpoint (call before run()). Returns false — leaving a fresh
  // run — when the file is missing, corrupt, or belongs to a different
  // configuration; `why` (optional) receives the reason.
  [[nodiscard]] bool try_resume(std::string* why = nullptr);

  // Runs to completion (kills included) and returns the final outcome.
  pipeline::PipelineOutcome run();

  // The final pipeline, for outcome wiring (leader node, system metrics).
  [[nodiscard]] pipeline::Pipeline& pipeline();
  [[nodiscard]] int kills_executed() const { return kills_executed_; }
  [[nodiscard]] long rounds_run() const { return steps_; }

 private:
  void build(int threads, amoebot::OccupancyMode occupancy);
  void do_kill(const FaultPlan::Kill& kill);
  void write_checkpoint();

  Factory make_;
  FaultPlan plan_;
  int base_threads_;
  amoebot::OccupancyMode base_occupancy_;
  Auditor* auditor_ = nullptr;
  const grid::ShapeMetrics* metrics_ = nullptr;
  TraceWriter* trace_ = nullptr;
  obs::Recorder* events_ = nullptr;
  long checkpoint_every_ = 0;
  std::string checkpoint_path_;
  std::unique_ptr<pipeline::Pipeline> pipe_;
  long steps_ = 0;
  std::size_t next_kill_ = 0;
  int kills_executed_ = 0;
};

}  // namespace pm::audit
