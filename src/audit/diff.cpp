#include "audit/diff.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "audit/trace.h"
#include "core/dle/dle.h"

namespace pm::audit {

namespace {

std::string node_str(grid::Node v) {
  return "(" + std::to_string(v.x) + "," + std::to_string(v.y) + ")";
}

std::string mask_str(const std::array<bool, 6>& m) {
  std::string s(6, '0');
  for (int i = 0; i < 6; ++i) {
    if (m[static_cast<std::size_t>(i)]) s[static_cast<std::size_t>(i)] = '1';
  }
  return s;
}

const char* status_str(core::Status s) {
  switch (s) {
    case core::Status::Undecided: return "undecided";
    case core::Status::Leader: return "leader";
    case core::Status::Follower: return "follower";
  }
  return "?";
}

const char* stage_kind_str(pipeline::StageKind k) {
  switch (k) {
    case pipeline::StageKind::Obd: return "obd";
    case pipeline::StageKind::Dle: return "dle";
    case pipeline::StageKind::Collect: return "collect";
    case pipeline::StageKind::Baseline: return "baseline";
    case pipeline::StageKind::Zoo: return "zoo";
  }
  return "?";
}

std::string stages_str(const std::vector<TraceConfig::StageDesc>& stages) {
  std::string s;
  for (const auto& d : stages) {
    if (!s.empty()) s += "+";
    s += stage_kind_str(d.kind);
    if (d.config != 0) s += "/" + std::to_string(d.config);
  }
  return s.empty() ? "(none)" : s;
}

// Header fields that may legitimately differ between two comparable traces
// are collected as notes; only a different initial shape voids the frame
// comparison (particle ids are assigned by shape order).
void compare_configs(const TraceConfig& a, const TraceConfig& b, TraceDiff& d) {
  std::ostringstream note;
  auto differ = [&](const char* what, const std::string& va, const std::string& vb) {
    if (note.tellp() > 0) note << "; ";
    note << what << ": " << va << " vs " << vb;
  };
  if (a.seeds.base != b.seeds.base) {
    differ("seed", std::to_string(a.seeds.base), std::to_string(b.seeds.base));
  }
  if (a.seeds.kind != b.seeds.kind) {
    differ("seed policy", std::to_string(static_cast<int>(a.seeds.kind)),
           std::to_string(static_cast<int>(b.seeds.kind)));
  }
  if (a.order != b.order) {
    differ("order", std::to_string(static_cast<int>(a.order)),
           std::to_string(static_cast<int>(b.order)));
  }
  if (a.occupancy != b.occupancy) {
    differ("occupancy", std::to_string(static_cast<int>(a.occupancy)),
           std::to_string(static_cast<int>(b.occupancy)));
  }
  if (a.threads != b.threads) {
    differ("threads", std::to_string(a.threads), std::to_string(b.threads));
  }
  if (a.max_rounds != b.max_rounds) {
    differ("max_rounds", std::to_string(a.max_rounds), std::to_string(b.max_rounds));
  }
  if (a.stages.size() != b.stages.size() ||
      !std::equal(a.stages.begin(), a.stages.end(), b.stages.begin(),
                  [](const TraceConfig::StageDesc& x, const TraceConfig::StageDesc& y) {
                    return x.kind == y.kind && x.config == y.config;
                  })) {
    differ("stages", stages_str(a.stages), stages_str(b.stages));
  }
  if (a.shape_nodes != b.shape_nodes) {
    differ("initial shape",
           std::to_string(a.shape_nodes.size()) + " nodes",
           std::to_string(b.shape_nodes.size()) + " nodes");
    d.comparable = false;
  }
  d.config_note = note.str();
}

// First differing field of one particle's two states; empty = identical.
void compare_particle(const TraceParticle& pa, const TraceParticle& pb, TraceDiff& d) {
  auto hit = [&](const char* field, const std::string& va, const std::string& vb) {
    d.field = field;
    d.detail = va + " vs " + vb;
  };
  if (pa.head != pb.head) return hit("head", node_str(pa.head), node_str(pb.head));
  if (pa.tail != pb.tail) return hit("tail", node_str(pa.tail), node_str(pb.tail));
  if (pa.ori != pb.ori) {
    return hit("ori", std::to_string(pa.ori), std::to_string(pb.ori));
  }
  if (pa.state.status != pb.state.status) {
    return hit("status", status_str(pa.state.status), status_str(pb.state.status));
  }
  if (pa.state.terminated != pb.state.terminated) {
    return hit("terminated", pa.state.terminated ? "true" : "false",
               pb.state.terminated ? "true" : "false");
  }
  if (pa.state.outer != pb.state.outer) {
    return hit("outer", mask_str(pa.state.outer), mask_str(pb.state.outer));
  }
  if (pa.state.eligible != pb.state.eligible) {
    return hit("eligible", mask_str(pa.state.eligible), mask_str(pb.state.eligible));
  }
}

// One frame of both trajectories. Returns true when a divergence was
// recorded into `d`.
bool compare_frame(const TraceReader& a, const TraceReader& b, TraceDiff& d) {
  d.round = a.round();
  d.diverged = true;  // provisional; cleared on a clean frame
  if (a.stage_index() != b.stage_index() || a.stage_done() != b.stage_done()) {
    d.field = "stage";
    d.detail = "stage " + std::to_string(a.stage_index()) +
               (a.stage_done() ? " (done)" : "") + " vs stage " +
               std::to_string(b.stage_index()) + (b.stage_done() ? " (done)" : "");
    return true;
  }
  // Particle states first: the lowest diverging particle id is the primary
  // forensic handle. Shapes match, so the vectors have equal length.
  const auto& pas = a.particles();
  const auto& pbs = b.particles();
  for (std::size_t p = 0; p < pas.size(); ++p) {
    compare_particle(pas[p], pbs[p], d);
    if (!d.field.empty()) {
      d.particle = static_cast<int>(p);
      return true;
    }
  }
  if (a.moves() != b.moves()) {
    d.field = "moves";
    d.detail = std::to_string(a.moves()) + " vs " + std::to_string(b.moves());
    return true;
  }
  // Erosion events are unordered within a round under a parallel engine:
  // compare as sorted multisets.
  auto sorted_eroded = [](std::span<const grid::Node> e) {
    std::vector<grid::Node> v(e.begin(), e.end());
    std::sort(v.begin(), v.end(), [](grid::Node x, grid::Node y) {
      return x.x != y.x ? x.x < y.x : x.y < y.y;
    });
    return v;
  };
  const auto ea = sorted_eroded(a.eroded());
  const auto eb = sorted_eroded(b.eroded());
  if (ea != eb) {
    auto list = [](const std::vector<grid::Node>& v) {
      std::string s = "{";
      for (const grid::Node n : v) {
        if (s.size() > 1) s += ",";
        s += node_str(n);
      }
      return s + "}";
    };
    d.field = "eroded";
    d.detail = list(ea) + " vs " + list(eb);
    return true;
  }
  d.diverged = false;
  d.round = -1;
  return false;
}

bool compare_outcomes(const TraceOutcome& a, const TraceOutcome& b, TraceDiff& d) {
  d.diverged = true;
  d.round = 0;  // outcome-level: past the last round
  d.field = "outcome";
  auto hit = [&](const char* what, const std::string& va, const std::string& vb) {
    d.detail = std::string(what) + ": " + va + " vs " + vb;
    return true;
  };
  if (a.completed != b.completed) {
    return hit("completed", a.completed ? "true" : "false",
               b.completed ? "true" : "false");
  }
  if (a.leader != b.leader) {
    return hit("leader", std::to_string(a.leader), std::to_string(b.leader));
  }
  if (a.leader_node != b.leader_node) {
    return hit("leader_node", node_str(a.leader_node), node_str(b.leader_node));
  }
  if (a.moves != b.moves) {
    return hit("moves", std::to_string(a.moves), std::to_string(b.moves));
  }
  for (std::size_t i = 0; i < a.stages.size() && i < b.stages.size(); ++i) {
    const auto& sa = a.stages[i];
    const auto& sb = b.stages[i];
    if (sa.rounds != sb.rounds) {
      return hit("stage rounds", std::to_string(sa.rounds), std::to_string(sb.rounds));
    }
    if (sa.activations != sb.activations) {
      return hit("stage activations", std::to_string(sa.activations),
                 std::to_string(sb.activations));
    }
    if (sa.status != sb.status) {
      return hit("stage status", std::to_string(static_cast<int>(sa.status)),
                 std::to_string(static_cast<int>(sb.status)));
    }
  }
  d.diverged = false;
  d.round = -1;
  d.field.clear();
  return false;
}

}  // namespace

TraceDiff diff_traces(const Snapshot& a_snap, const Snapshot& b_snap) {
  TraceReader a(a_snap);
  TraceReader b(b_snap);
  TraceDiff d;
  compare_configs(a.config(), b.config(), d);
  if (!d.comparable) return d;

  bool an = a.next();
  bool bn = b.next();
  while (an && bn) {
    ++d.rounds_compared;
    if (compare_frame(a, b, d)) return d;
    an = a.next();
    bn = b.next();
  }
  if (an != bn) {
    // One trajectory keeps going where the other ended: the divergence is
    // the first round only one trace has.
    d.diverged = true;
    d.round = (an ? a : b).round();
    d.field = "length";
    d.detail = an ? "A continues past B's last round" : "B continues past A's last round";
    return d;
  }
  compare_outcomes(a.outcome(), b.outcome(), d);
  return d;
}

std::string format_diff(const TraceDiff& d) {
  std::ostringstream os;
  if (!d.config_note.empty()) os << "config differs: " << d.config_note << "\n";
  if (!d.comparable) {
    os << "traces are not comparable (different initial shapes)\n";
    return os.str();
  }
  if (!d.diverged) {
    os << "traces identical over " << d.rounds_compared << " rounds\n";
    return os.str();
  }
  if (d.field == "outcome") {
    os << "traces diverge in the final outcome after " << d.rounds_compared
       << " identical rounds: " << d.detail << "\n";
    return os.str();
  }
  os << "first divergence at round " << d.round;
  if (d.particle >= 0) os << ", particle " << d.particle;
  os << ", field " << d.field << ": " << d.detail << "\n";
  os << "(" << d.rounds_compared - 1 << " identical rounds before the divergence)\n";
  return os.str();
}

}  // namespace pm::audit
