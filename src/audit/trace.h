// Compact trace record/replay on top of pm::Snapshot.
//
// A trace captures a pipeline run as its configuration header (seed policy,
// scheduler order, occupancy, round budget, initial shape, stage
// composition) followed by one delta-encoded frame per pipeline round: only
// the particles whose packed state changed that round are written (2 words
// each), plus the round's S_e erosion events and the cumulative movement
// counter, and a final outcome summary. Deterministic runs make the format
// complete: the header is sufficient to re-execute the run, the frames are
// sufficient to re-derive the full trajectory without executing anything.
//
// Three consumers:
//   * TraceReader — re-derives the trajectory frame by frame (bodies,
//     DLE states, the occupied-node set) for offline inspection;
//   * replay_trace — re-executes the run from the header and compares every
//     round's full particle state against the trace (bit-identical
//     trajectory regression) while a standard Auditor re-checks the paper
//     invariants live;
//   * audit_trace — runs the invariants on the reconstructed trajectory
//     alone, no re-execution (the OBD conservation check is skipped:
//     protocol internals are not traced).
//
// Like checkpoints, traces are artifacts of one build (the snapshot version
// stamp plus a trace version word), not an archival format.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "audit/audit.h"
#include "pipeline/pipeline.h"
#include "pipeline/stages.h"
#include "util/snapshot.h"

namespace pm::audit {

struct TraceConfig {
  pipeline::SeedPolicy seeds{};
  amoebot::Order order = amoebot::Order::RandomPerm;
  amoebot::OccupancyMode occupancy = amoebot::kDefaultOccupancy;
  int threads = 0;  // informational: replay is engine-agnostic
  long max_rounds = 0;
  std::vector<grid::Node> shape_nodes;
  struct StageDesc {
    pipeline::StageKind kind = pipeline::StageKind::Dle;
    std::uint64_t config = 0;
  };
  std::vector<StageDesc> stages;
};

struct TraceParticle {
  grid::Node head{};
  grid::Node tail{};
  std::uint8_t ori = 0;
  core::DleState state{};
};

struct TraceOutcome {
  bool completed = false;
  amoebot::ParticleId leader = amoebot::kNoParticle;
  grid::Node leader_node{};
  long long moves = 0;
  struct StageSummary {
    pipeline::StageStatus status = pipeline::StageStatus::Pending;
    long rounds = 0;
    long long activations = 0;
    int phases = 0;
  };
  std::vector<StageSummary> stages;  // aligned with TraceConfig::stages
};

// Records a run. Attach to a freshly built pipeline before it starts (and
// again to every rebuilt pipeline when fault injection kills and resumes
// the run — recording continues seamlessly); call finish() once the
// pipeline is done. Only system-driving compositions are traceable (the
// baselines carry no particle state).
class TraceWriter {
 public:
  TraceWriter() = default;
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void attach(pipeline::Pipeline& pipe);
  void finish(const pipeline::PipelineOutcome& out, const pipeline::RunContext& ctx);

  [[nodiscard]] bool finished() const { return finished_; }
  // The encoded trace; write snapshot().serialize() to a file.
  [[nodiscard]] const Snapshot& snapshot() const;

 private:
  void on_round(const pipeline::Stage& stage, const pipeline::RunContext& ctx);
  void on_erode(grid::Node v);

  Snapshot snap_;
  bool header_written_ = false;
  bool finished_ = false;
  std::size_t particle_count_ = 0;
  std::vector<TraceConfig::StageDesc> stage_descs_;
  std::vector<const pipeline::Stage*> stages_;  // current pipeline's stages
  std::vector<std::array<std::uint64_t, 2>> mirror_;  // last written packed state
  mutable std::mutex erode_mu_;
  std::vector<grid::Node> erode_buffer_;
};

// Re-derives the recorded trajectory frame by frame.
class TraceReader {
 public:
  // Takes its own copy of the word stream; throws pm::CheckError for a
  // stream that is not a trace or is internally inconsistent.
  explicit TraceReader(Snapshot snap);

  [[nodiscard]] const TraceConfig& config() const { return config_; }

  // Advances one frame; false once the terminator is reached (outcome()
  // becomes valid). Throws pm::CheckError on a corrupt frame.
  bool next();

  [[nodiscard]] long round() const { return round_; }
  [[nodiscard]] int stage_index() const { return stage_index_; }
  [[nodiscard]] bool stage_done() const { return stage_done_; }
  [[nodiscard]] long long moves() const { return moves_; }
  [[nodiscard]] std::span<const grid::Node> eroded() const { return eroded_; }
  [[nodiscard]] std::span<const int> changed() const { return changed_; }

  [[nodiscard]] const std::vector<TraceParticle>& particles() const { return particles_; }
  [[nodiscard]] const grid::NodeSet& occupied() const { return occupied_; }
  [[nodiscard]] int expanded_count() const { return expanded_count_; }

  [[nodiscard]] const TraceOutcome& outcome() const;

 private:
  Snapshot snap_;
  TraceConfig config_;
  TraceOutcome outcome_;
  bool done_ = false;
  long round_ = 0;
  int stage_index_ = -1;
  bool stage_done_ = false;
  long long moves_ = 0;
  std::vector<grid::Node> eroded_;
  std::vector<int> changed_;
  std::vector<TraceParticle> particles_;
  std::vector<char> present_;  // particle seen in some frame yet?
  grid::NodeSet occupied_;
  int expanded_count_ = 0;
};

struct ReplayResult {
  bool identical = false;     // re-execution matched the trace round for round
  long divergence_round = -1; // first mismatching round (-1: none)
  std::string detail;         // human-readable divergence description
  long rounds = 0;            // rounds re-executed
  pipeline::PipelineOutcome outcome;
  std::vector<Violation> violations;  // the replay audit's findings
};

// Golden-trace regression: re-executes the traced run from its recorded
// configuration (sequential engine) and compares every round plus the final
// outcome against the trace, with a standard Auditor re-checking all
// invariants along the way.
[[nodiscard]] ReplayResult replay_trace(const Snapshot& trace,
                                        const Options& audit_options = {});

// Offline audit: the invariants run against the trajectory reconstructed
// from the trace alone — nothing is re-executed.
[[nodiscard]] std::vector<Violation> audit_trace(const Snapshot& trace,
                                                 const Options& audit_options = {});

}  // namespace pm::audit
