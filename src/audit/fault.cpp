#include "audit/fault.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "obs/obs.h"
#include "util/check.h"
#include "util/rng.h"

namespace pm::audit {

using amoebot::OccupancyMode;
using pipeline::Pipeline;

FaultPlan FaultPlan::from_seed(std::uint64_t seed, long horizon, int base_threads,
                               OccupancyMode base_occupancy,
                               bool allow_occupancy_switch) {
  PM_CHECK_MSG(seed != 0, "fault seed 0 means 'no faults' by convention");
  Rng rng(seed);
  FaultPlan plan;
  const auto gap = static_cast<std::uint64_t>(std::max<long>(2, horizon));
  const int kills = 1 + static_cast<int>(rng.below(3));
  long round = 0;
  for (int k = 0; k < kills; ++k) {
    round += 1 + static_cast<long>(rng.below(gap));
    Kill kill;
    kill.after_round = round;
    // Half the kills resume under the other engine kind; a resumed
    // sequential run may come back parallel and vice versa.
    kill.resume_threads = rng.coin() ? (base_threads > 0 ? 0 : 2) : base_threads;
    kill.resume_occupancy = base_occupancy;
    if (allow_occupancy_switch && rng.coin()) {
      kill.resume_occupancy = base_occupancy == OccupancyMode::Hash
                                  ? OccupancyMode::Dense
                                  : OccupancyMode::Hash;
    }
    kill.through_text = rng.coin();
    plan.kills.push_back(kill);
  }
  return plan;
}

FaultRunner::FaultRunner(Factory make, FaultPlan plan, int base_threads,
                         OccupancyMode base_occupancy)
    : make_(std::move(make)),
      plan_(std::move(plan)),
      base_threads_(base_threads),
      base_occupancy_(base_occupancy) {
  for (std::size_t i = 1; i < plan_.kills.size(); ++i) {
    PM_CHECK_MSG(plan_.kills[i].after_round > plan_.kills[i - 1].after_round,
                 "fault plan kill rounds must be strictly increasing");
  }
}

void FaultRunner::set_auditor(Auditor* auditor, const grid::ShapeMetrics* metrics) {
  PM_CHECK_MSG(pipe_ == nullptr, "set_auditor before the run starts");
  auditor_ = auditor;
  metrics_ = metrics;
}

void FaultRunner::set_trace(TraceWriter* writer) {
  PM_CHECK_MSG(pipe_ == nullptr, "set_trace before the run starts");
  trace_ = writer;
}

void FaultRunner::set_events(obs::Recorder* events) {
  PM_CHECK_MSG(pipe_ == nullptr, "set_events before the run starts");
  events_ = events;
}

void FaultRunner::set_checkpoint(long every_rounds, std::string path) {
  PM_CHECK_MSG(every_rounds >= 0, "checkpoint cadence must be >= 0");
  PM_CHECK_MSG(every_rounds == 0 || !path.empty(), "checkpointing needs a file path");
  checkpoint_every_ = every_rounds;
  checkpoint_path_ = std::move(path);
}

void FaultRunner::build(int threads, OccupancyMode occupancy) {
  pipe_ = std::make_unique<Pipeline>(make_(threads, occupancy));
  // Recorder first: the auditor reads ctx.events at attach time.
  if (events_ != nullptr) obs::attach(*events_, pipe_->context());
  if (auditor_ != nullptr) auditor_->attach(pipe_->context(), metrics_);
  if (trace_ != nullptr) trace_->attach(*pipe_);
}

bool FaultRunner::try_resume(std::string* why) {
  const auto fail = [&](const std::string& reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  PM_CHECK_MSG(pipe_ == nullptr, "try_resume before the run starts");
  PM_CHECK_MSG(!checkpoint_path_.empty(), "try_resume needs set_checkpoint first");
  std::ifstream in(checkpoint_path_);
  if (!in) return fail("no checkpoint file at " + checkpoint_path_);
  std::stringstream buf;
  buf << in.rdbuf();
  std::string error;
  const auto parsed = Snapshot::try_parse(buf.str(), &error);
  if (!parsed) return fail("corrupt checkpoint: " + error);
  build(base_threads_, base_occupancy_);
  try {
    pipe_->restore(*parsed);
    if (auditor_ != nullptr) {
      // A checkpoint from an unaudited process has no audit section; an
      // auditor started mid-run would report nonsense (its eligible-set
      // mirror only matches when tracked from round one), so run fresh.
      PM_CHECK_MSG(!parsed->exhausted(),
                   "checkpoint carries no audit state but this run audits");
      auditor_->restore(*parsed);
    }
  } catch (const CheckError& e) {
    // Mismatched configuration or a damaged word stream: discard the
    // half-restored pipeline AND any half-restored audit state (a fresh
    // run must be judged from a fresh eligible-set mirror), start over.
    pipe_.reset();
    if (auditor_ != nullptr) auditor_->reset_for_fresh_run();
    build(base_threads_, base_occupancy_);
    return fail(std::string("checkpoint rejected: ") + e.what());
  }
  steps_ = 0;
  for (const auto& s : pipe_->stages()) steps_ += s->metrics().rounds;
  // Kills the resumed run already lived through never fire again.
  while (next_kill_ < plan_.kills.size() &&
         plan_.kills[next_kill_].after_round <= steps_) {
    ++next_kill_;
  }
  return true;
}

void FaultRunner::write_checkpoint() {
  Snapshot snap;
  pipe_->save(snap);
  if (auditor_ != nullptr) auditor_->save(snap);
  const std::string tmp = checkpoint_path_ + ".tmp";
  {
    std::ofstream out(tmp);
    PM_CHECK_MSG(out.good(), "cannot write checkpoint " << tmp);
    out << snap.serialize();
  }
  PM_CHECK_MSG(std::rename(tmp.c_str(), checkpoint_path_.c_str()) == 0,
               "cannot move checkpoint into place at " << checkpoint_path_);
}

namespace {

void note_fault(obs::Recorder* rec, obs::Type type, const FaultPlan::Kill& kill,
                long steps) {
  if (rec == nullptr) return;
  obs::Event e;
  e.type = type;
  e.stage = "fault";
  e.v = kill.resume_threads;
  e.val = steps;
  e.note = kill.through_text ? "text" : "memory";
  rec->emit(std::move(e));
}

}  // namespace

void FaultRunner::do_kill(const FaultPlan::Kill& kill) {
  note_fault(events_, obs::Type::FaultKill, kill, steps_);
  Snapshot snap;
  pipe_->save(snap);
  ++kills_executed_;
  if (kill.through_text) {
    // The full process-image death: nothing survives but the text — the
    // auditor's state (O(|S_e|) words) rides along only here.
    if (auditor_ != nullptr) auditor_->save(snap);
    const Snapshot parsed = Snapshot::parse(snap.serialize());
    build(kill.resume_threads, kill.resume_occupancy);
    pipe_->restore(parsed);
    if (auditor_ != nullptr) auditor_->restore(parsed);
  } else {
    snap.rewind();
    build(kill.resume_threads, kill.resume_occupancy);
    pipe_->restore(snap);
    // In-process resume: the live auditor object carries its own state.
  }
  note_fault(events_, obs::Type::FaultResume, kill, steps_);
}

pipeline::PipelineOutcome FaultRunner::run() {
  if (pipe_ == nullptr) build(base_threads_, base_occupancy_);
  while (!pipe_->done()) {
    if (next_kill_ < plan_.kills.size() &&
        plan_.kills[next_kill_].after_round == steps_ && steps_ > 0) {
      do_kill(plan_.kills[next_kill_]);
      ++next_kill_;
      continue;
    }
    pipe_->step_round();
    ++steps_;
    if (checkpoint_every_ > 0 && steps_ % checkpoint_every_ == 0 && !pipe_->done()) {
      write_checkpoint();
    }
  }
  return pipe_->outcome();
}

pipeline::Pipeline& FaultRunner::pipeline() {
  PM_CHECK_MSG(pipe_ != nullptr, "no pipeline yet: call run()");
  return *pipe_;
}

}  // namespace pm::audit
