// Shared node wire-encoding and node-set topology helpers for the audit
// subsystem. One definition on purpose: the Auditor's checkpoint words and
// the trace format both encode grid nodes this way, and a drift between
// them would make audit checkpoints and traces silently disagree.
#pragma once

#include <cstdint>
#include <vector>

#include "grid/coord.h"
#include "grid/shape.h"

namespace pm::audit::codec {

inline std::uint64_t pack_node(grid::Node v) {
  return static_cast<std::uint64_t>(static_cast<std::uint32_t>(v.x)) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(v.y)) << 32);
}

inline grid::Node unpack_node(std::uint64_t w) {
  return grid::Node{
      static_cast<std::int32_t>(static_cast<std::uint32_t>(w & 0xffffffffULL)),
      static_cast<std::int32_t>(static_cast<std::uint32_t>(w >> 32))};
}

// Number of 6-adjacency connected components of a node set.
inline int count_components(const grid::NodeSet& set) {
  if (set.empty()) return 0;
  grid::NodeSet seen;
  seen.reserve(set.size() * 2);
  std::vector<grid::Node> queue;
  queue.reserve(set.size());
  int components = 0;
  // pm-lint: allow(pm-unordered-iter) the component count is a set cardinality; BFS seed order cannot change it
  for (const grid::Node start : set) {
    if (seen.contains(start)) continue;
    ++components;
    queue.clear();
    queue.push_back(start);
    seen.insert(start);
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      for (int i = 0; i < grid::kDirCount; ++i) {
        const grid::Node u = grid::neighbor(queue[qi], grid::dir_from_index(i));
        if (set.contains(u) && seen.insert(u).second) queue.push_back(u);
      }
    }
  }
  return components;
}

inline bool connected(const grid::NodeSet& set) { return count_components(set) <= 1; }

}  // namespace pm::audit::codec
