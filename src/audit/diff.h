// Trace forensics: structural diff of two recorded runs.
//
// Given two traces of the same spec, diff_traces re-derives both
// trajectories frame by frame (TraceReader) and reports the *first*
// diverging round, the lowest diverging particle id, and exactly which
// field differs (head, tail, orientation, a DLE state component, the
// movement counter, the erosion events, or the final outcome). Under the
// repo's determinism contract two runs of the same spec must be
// bit-identical, so the first divergence localizes a nondeterminism bug —
// or, for deliberately different configurations, pinpoints where two
// variants first behave differently.
//
// Traces of different initial shapes are incomparable (particle ids do not
// correspond); configuration differences that leave the shape intact
// (seed, order, threads, budget, stage composition) are noted but do not
// block the frame comparison.
#pragma once

#include <string>

#include "util/snapshot.h"

namespace pm::audit {

struct TraceDiff {
  // False when the initial shapes differ: no frame comparison was possible.
  bool comparable = true;
  // Human-readable notes on header fields that differ (empty: same spec).
  std::string config_note;

  bool diverged = false;
  long round = -1;    // first diverging pipeline round (1-based; 0 = outcome)
  int particle = -1;  // lowest diverging particle id (-1: not particle-level)
  std::string field;  // "head" | "tail" | "ori" | "status" | "terminated"
                      // | "outer" | "eligible" | "stage" | "moves"
                      // | "eroded" | "length" | "outcome"
  std::string detail;  // the two values, A vs B

  long rounds_compared = 0;
};

// Both arguments must parse as traces (throws pm::CheckError otherwise).
[[nodiscard]] TraceDiff diff_traces(const Snapshot& a, const Snapshot& b);

// Multi-line human-readable report.
[[nodiscard]] std::string format_diff(const TraceDiff& d);

}  // namespace pm::audit
