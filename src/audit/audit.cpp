#include "audit/audit.h"

// The audit layer's round-budget envelopes are calibrated real-valued
// constants (c * factor * (L_max + D)): they gate pass/fail verdicts and
// appear only in violation text, never in BENCH result rows, and the
// comparisons are one-sided thresholds where IEEE rounding cannot flip a
// byte of serialized output.
// pm-lint: allow-file(pm-float-protocol) budget envelopes gate verdicts; floats never reach BENCH bytes

#include <algorithm>
#include <sstream>
#include <string_view>
#include <utility>
#include <vector>

#include "audit/node_codec.h"
#include "core/obd/obd.h"
#include "obs/obs.h"
#include "pipeline/stages.h"
#include "telemetry/telemetry.h"
#include "util/check.h"
#include "util/timing.h"
#include "zoo/zoo.h"

namespace pm::audit {

using amoebot::ParticleId;
using grid::Node;
using pipeline::StageKind;

namespace {

// Round-budget per-stage constants, calibrated on the registry suites (see
// RoundBudgetInvariant's header comment): observed worst cases are ~0.26x
// for DLE, ~18x for DLE+Collect, and ~225x for OBD on near-symmetric
// shapes whose lexicographic comparisons tie repeatedly.
constexpr double kObdBudgetC = 512.0;
constexpr double kDleBudgetC = 4.0;
constexpr double kCollectBudgetC = 64.0;
// Algorithm-zoo protocols, keyed by the stage's config word (the protocol
// id), calibrated on the le_zoo suite like the paper stages above: observed
// worst cases over the 90-row sweep are ~12.6x (Daymude, comb(10,6)) and
// ~13.7x (Emek–Kutten, comb(10,6)). Daymude et al. is expected O(L log L)
// but randomized, so its tail gets extra slack; the Emek–Kutten tournament
// re-compares after every absorption, which can degrade toward quadratic
// in ring length on adversarial count strings.
constexpr double kZooDaymudeBudgetC = 96.0;
constexpr double kZooEkBudgetC = 64.0;

constexpr std::uint64_t kDlePullBit = 1;  // DleStage::config_word()

bool is_pull_dle(StageKind kind, std::uint64_t config) {
  return kind == StageKind::Dle && (config & kDlePullBit) != 0;
}

double zoo_budget_c(std::uint64_t config) {
  return config == zoo::kZooConfigEk ? kZooEkBudgetC : kZooDaymudeBudgetC;
}

using codec::pack_node;
using codec::unpack_node;

// AuditView over a live run. `sys` may be null for baseline-only pipelines
// (whose stages none of the paper invariants inspect); any dereference in
// that configuration is a bug and fails loudly.
class LiveView final : public AuditView {
 public:
  LiveView(const pipeline::RunContext::System* sys, const core::ObdRun* obd)
      : sys_(sys), obd_(obd) {}

  [[nodiscard]] int particle_count() const override { return checked().particle_count(); }
  [[nodiscard]] core::Status status(ParticleId p) const override {
    return checked().state(p).status;
  }
  [[nodiscard]] bool expanded(ParticleId p) const override {
    return checked().body(p).expanded();
  }
  [[nodiscard]] Node head(ParticleId p) const override { return checked().body(p).head; }
  [[nodiscard]] bool occupied(Node v) const override { return checked().occupied(v); }
  [[nodiscard]] int expanded_count() const override { return checked().expanded_count(); }
  [[nodiscard]] int component_count() const override { return checked().component_count(); }
  [[nodiscard]] long long moves() const override { return checked().moves(); }
  [[nodiscard]] const core::ObdRun* obd() const override { return obd_; }

 private:
  [[nodiscard]] const pipeline::RunContext::System& checked() const {
    PM_CHECK_MSG(sys_ != nullptr, "audit view consulted on a system-less run");
    return *sys_;
  }

  const pipeline::RunContext::System* sys_;
  const core::ObdRun* obd_;
};

}  // namespace

// --- Invariant base --------------------------------------------------------

void Invariant::violate(long round, const std::string& stage,
                        const std::string& detail) const {
  PM_CHECK_MSG(sink_ != nullptr, "invariant fired before being added to an Auditor");
  sink_->push_back(Violation{bound_name_, round, stage, detail});
}

// --- ConnectivityInvariant -------------------------------------------------

void ConnectivityInvariant::start(const AuditContext& ctx) {
  (void)ctx;
  checked_moves_ = -1;
}

void ConnectivityInvariant::round(const AuditView& view, const RoundInfo& info) {
  // DLE rounds are exempt for both variants: plain DLE disconnects by
  // design, and the pull ablation only reduces splits (no follower in
  // reach => the release still happens; the registry's thin annuli record
  // max_components up to 10 for it). Zoo stages are stationary like OBD,
  // so connectivity must hold throughout them too.
  if (info.stage != StageKind::Obd && info.stage != StageKind::Zoo) return;
  // Connectivity can only change when a movement happened; OBD never moves,
  // so its whole stage costs one BFS.
  if (view.moves() == checked_moves_) return;
  checked_moves_ = view.moves();
  const int components = view.component_count();
  if (components != 1) {
    violate(info.round, info.stage_name,
            "system split into " + std::to_string(components) +
                " components during a stage that guarantees connectivity");
  }
}

void ConnectivityInvariant::finish(const AuditView* view, const FinishInfo& info) {
  if (!info.completed || !info.has_system || view == nullptr) return;
  if (!info.collect_succeeded) return;  // only Collect re-guarantees connectivity
  const int components = view->component_count();
  if (components != 1) {
    violate(0, "final",
            "final configuration has " + std::to_string(components) +
                " components after Collect completed");
  }
}

void ConnectivityInvariant::state_save(Snapshot& snap) const { snap.put_i(checked_moves_); }
void ConnectivityInvariant::state_restore(const Snapshot& snap) {
  checked_moves_ = snap.get_i();
}

// --- ErosionInvariant ------------------------------------------------------

void ErosionInvariant::start(const AuditContext& ctx) {
  se_.clear();
  events_ = 0;
  const grid::Shape area = ctx.initial.area();
  se_.reserve(area.size() * 2);
  for (const Node v : area.nodes()) se_.insert(v);
}

void ErosionInvariant::apply_events(const AuditView& view, long round, const char* stage,
                                    std::span<const Node> eroded) {
  for (const Node v : eroded) {
    ++events_;
    if (se_.erase(v) == 0) {
      std::ostringstream os;
      os << "point " << v << " eroded but not in S_e (double erosion or spurious event)";
      violate(round, stage, os.str());
    }
  }
  // Every S_e neighbor of a removed point is now on the boundary of S_e and
  // must be occupied at the round boundary (Lemma 11: ∂S_e ⊆ S_P — the
  // eroding particle expands into the unique empty adjacent eligible point
  // in the same activation).
  for (const Node v : eroded) {
    for (int i = 0; i < grid::kDirCount; ++i) {
      const Node u = grid::neighbor(v, grid::dir_from_index(i));
      if (se_.contains(u) && !view.occupied(u)) {
        std::ostringstream os;
        os << "boundary point " << u << " of S_e unoccupied after erosion of " << v;
        violate(round, stage, os.str());
      }
    }
  }
  // The eligible set S_e is not a particle configuration, so
  // SystemCore::component_count does not apply — BFS the plain node set.
  if (!eroded.empty() && !codec::connected(se_)) {
    violate(round, stage,
            "S_e disconnected after eroding " + std::to_string(eroded.size()) +
                " point(s) this round");
  }
}

void ErosionInvariant::round(const AuditView& view, const RoundInfo& info) {
  if (info.eroded.empty()) return;
  apply_events(view, info.round, info.stage_name, info.eroded);
}

void ErosionInvariant::finish(const AuditView* view, const FinishInfo& info) {
  if (!info.eroded.empty() && view != nullptr) {
    apply_events(*view, 0, "final", info.eroded);
  }
  if (!info.saw_dle || !info.dle_succeeded) return;
  if (se_.size() != 1) {
    violate(0, "final",
            "S_e holds " + std::to_string(se_.size()) +
                " points after a successful election (expected exactly the leader's)");
    return;
  }
  if (!se_.contains(info.leader_node)) {
    std::ostringstream os;
    // pm-lint: allow(pm-unordered-iter) se_.size() == 1 was established above; a singleton's begin() is order-free
    os << "last eligible point " << *se_.begin() << " is not the elected leader's node "
       << info.leader_node;
    violate(0, "final", os.str());
  }
}

void ErosionInvariant::state_save(Snapshot& snap) const {
  snap.put_i(events_);
  snap.put(se_.size());
  // Snapshot bytes must not depend on hash-iteration order (checkpoints are
  // diffed across engines and --jobs counts): serialize S_e sorted.
  // pm-lint: allow(pm-unordered-iter) materialization point; sorted below before any byte is emitted
  std::vector<Node> nodes(se_.begin(), se_.end());
  std::sort(nodes.begin(), nodes.end(), [](const Node a, const Node b) {
    return a.x != b.x ? a.x < b.x : a.y < b.y;
  });
  for (const Node v : nodes) snap.put(pack_node(v));
}

void ErosionInvariant::state_restore(const Snapshot& snap) {
  events_ = snap.get_i();
  se_.clear();
  const auto n = snap.get();
  se_.reserve(n * 2);
  for (std::uint64_t i = 0; i < n; ++i) se_.insert(unpack_node(snap.get()));
}

// --- ObdRingInvariant ------------------------------------------------------

void ObdRingInvariant::start(const AuditContext& ctx) {
  (void)ctx;
  sums_.clear();
  plus_ring_ = -1;
  captured_ = false;
  detection_checked_ = false;
}

void ObdRingInvariant::round(const AuditView& view, const RoundInfo& info) {
  if (info.stage != StageKind::Obd) return;
  const core::ObdRun* obd = view.obd();
  if (obd == nullptr) return;  // offline replay: protocol internals not traced
  const int rings = obd->ring_count();
  if (!captured_) {
    sums_.resize(static_cast<std::size_t>(rings));
    int plus = 0;
    for (int r = 0; r < rings; ++r) {
      const int sum = obd->protocol_ring_sum(r);
      sums_[static_cast<std::size_t>(r)] = sum;
      if (sum == 6) {
        plus_ring_ = r;
        ++plus;
      } else if (sum != -6) {
        violate(info.round, info.stage_name,
                "ring " + std::to_string(r) + " count sum " + std::to_string(sum) +
                    " (Observation 4 demands +6 or -6)");
      }
    }
    if (plus != 1) {
      violate(info.round, info.stage_name,
              std::to_string(plus) + " rings sum to +6 (expected exactly the outer one)");
    }
    captured_ = true;
  } else {
    for (int r = 0; r < rings; ++r) {
      const int sum = obd->protocol_ring_sum(r);
      if (sum != sums_[static_cast<std::size_t>(r)]) {
        violate(info.round, info.stage_name,
                "ring " + std::to_string(r) + " count sum drifted from " +
                    std::to_string(sums_[static_cast<std::size_t>(r)]) + " to " +
                    std::to_string(sum));
        sums_[static_cast<std::size_t>(r)] = sum;  // report drift once
      }
    }
  }
  if (!detection_checked_ && obd->detected_ring() >= 0) {
    detection_checked_ = true;
    if (obd->detected_ring() != plus_ring_) {
      violate(info.round, info.stage_name,
              "protocol announced ring " + std::to_string(obd->detected_ring()) +
                  " as outer; the +6 ring is " + std::to_string(plus_ring_));
    }
  }
}

void ObdRingInvariant::state_save(Snapshot& snap) const {
  snap.put(captured_ ? 1 : 0);
  snap.put(detection_checked_ ? 1 : 0);
  snap.put_i(plus_ring_);
  snap.put(sums_.size());
  for (const int s : sums_) snap.put_i(s);
}

void ObdRingInvariant::state_restore(const Snapshot& snap) {
  captured_ = snap.get() != 0;
  detection_checked_ = snap.get() != 0;
  plus_ring_ = static_cast<int>(snap.get_i());
  sums_.resize(static_cast<std::size_t>(snap.get()));
  for (int& s : sums_) s = static_cast<int>(snap.get_i());
}

// --- UniqueLeaderInvariant -------------------------------------------------

void UniqueLeaderInvariant::round(const AuditView& view, const RoundInfo& info) {
  // Statuses only change inside DLE and the zoo's competitor elections.
  if (info.stage != StageKind::Dle && info.stage != StageKind::Zoo) return;
  int leaders = 0;
  const int n = view.particle_count();
  for (ParticleId p = 0; p < n; ++p) {
    if (view.status(p) == core::Status::Leader) ++leaders;
  }
  if (leaders > 1) {
    violate(info.round, info.stage_name,
            std::to_string(leaders) + " particles hold Leader status simultaneously");
  }
}

// --- TerminationInvariant --------------------------------------------------

void TerminationInvariant::round(const AuditView& view, const RoundInfo& info) {
  (void)view;
  (void)info;
}

void TerminationInvariant::finish(const AuditView* view, const FinishInfo& info) {
  if (!info.completed || !info.has_system || view == nullptr) return;
  if (!info.saw_dle && !info.saw_zoo) return;
  int leaders = 0;
  int undecided = 0;
  const int n = view->particle_count();
  for (ParticleId p = 0; p < n; ++p) {
    const core::Status st = view->status(p);
    if (st == core::Status::Leader) ++leaders;
    if (st == core::Status::Undecided) ++undecided;
  }
  if (leaders != 1) {
    violate(0, "final", std::to_string(leaders) + " leaders in the final configuration");
  }
  if (undecided != 0) {
    violate(0, "final", std::to_string(undecided) + " particles remain Undecided");
  }
  if (view->expanded_count() != 0) {
    violate(0, "final",
            std::to_string(view->expanded_count()) +
                " particles still expanded after completion");
  }
  if (info.leader != amoebot::kNoParticle) {
    if (view->status(info.leader) != core::Status::Leader) {
      violate(0, "final",
              "reported leader " + std::to_string(info.leader) + " lacks Leader status");
    }
    // Without Collect the leader never moves after election; its head must
    // still be the point DLE finished on. Zoo elections are stationary
    // throughout, so the same check applies unconditionally to them.
    if (((info.dle_succeeded && !info.collect_succeeded) || info.zoo_succeeded) &&
        !(view->head(info.leader) == info.leader_node)) {
      std::ostringstream os;
      os << "leader moved from its election node " << info.leader_node << " to "
         << view->head(info.leader) << " without a Collect stage";
      violate(0, "final", os.str());
    }
  }
}

// --- RoundBudgetInvariant --------------------------------------------------

void RoundBudgetInvariant::start(const AuditContext& ctx) {
  base_ = ctx.metrics.l_max + ctx.metrics.d;
  factor_ = ctx.options.budget_factor;
  slack_ = ctx.options.budget_slack;
  have_stage_ = false;
  stage_config_ = 0;
  stage_start_round_ = 0;
  tripped_ = false;
  ring_n_ = 0;
}

void RoundBudgetInvariant::round(const AuditView& view, const RoundInfo& info) {
  // Baselines carry no paper envelope — and run without a particle system,
  // so even the forensics ring must not consult the view (le_zoo audits
  // baseline_contest rows alongside the engine- and zoo-driven ones).
  if (info.stage == StageKind::Baseline) return;
  if (!have_stage_ || stage_kind_ != info.stage || stage_config_ != info.stage_config) {
    have_stage_ = true;
    stage_kind_ = info.stage;
    stage_config_ = info.stage_config;
    stage_start_round_ = info.round;
    tripped_ = false;
    ring_n_ = 0;
  }
  ring_[ring_n_ % kRing] =
      RoundSample{info.round, view.moves(), static_cast<long>(info.eroded.size())};
  ++ring_n_;
  if (tripped_) return;  // one dump per stage visit
  double c = 0.0;
  switch (info.stage) {
    case StageKind::Obd: c = kObdBudgetC; break;
    case StageKind::Dle: c = kDleBudgetC; break;
    case StageKind::Collect: c = kCollectBudgetC; break;
    case StageKind::Baseline: return;  // baselines carry no paper envelope
    case StageKind::Zoo: c = zoo_budget_c(info.stage_config); break;
  }
  if (is_pull_dle(info.stage, info.stage_config)) return;  // O(D_A^2) by design
  const long limit = static_cast<long>(c * factor_ * static_cast<double>(base_)) + slack_;
  const long in_stage = info.round - stage_start_round_ + 1;
  if (in_stage <= limit) return;
  tripped_ = true;
  std::ostringstream os;
  os << "watchdog: " << in_stage << " rounds in the running stage exceed the envelope "
     << limit << " (c=" << c << ", L_max+D=" << base_ << ")";
  const int count = ring_n_ < kRing ? ring_n_ : kRing;
  os << "; last " << count << " audited rounds:";
  for (int i = 0; i < count; ++i) {
    const RoundSample& s = ring_[(ring_n_ - count + i) % kRing];
    os << " [round " << s.round << ": moves " << s.moves << ", eroded " << s.eroded
       << "]";
  }
  // Count-kind metrics only: the dump must read the same for any thread
  // count or wall clock (it lands in violation details compared by tests).
  os << "; telemetry:";
  bool any = false;
  for (const auto& m : telemetry::harvest()) {
    if (m.kind != telemetry::Kind::Count) continue;
    os << (any ? "," : " ") << m.name << "="
       << (m.type == telemetry::Type::Histogram ? m.count : m.value);
    any = true;
  }
  if (!any) os << " (off)";
  violate(info.round, info.stage_name, os.str());
}

void RoundBudgetInvariant::state_save(Snapshot& snap) const {
  snap.put(have_stage_ ? 1 : 0);
  snap.put(static_cast<std::uint64_t>(stage_kind_));
  snap.put(stage_config_);
  snap.put_i(stage_start_round_);
  snap.put(tripped_ ? 1 : 0);
  snap.put_i(ring_n_);
  const int count = ring_n_ < kRing ? ring_n_ : kRing;
  for (int i = 0; i < count; ++i) {
    const RoundSample& s = ring_[(ring_n_ - count + i) % kRing];
    snap.put_i(s.round);
    snap.put_i(s.moves);
    snap.put_i(s.eroded);
  }
}

void RoundBudgetInvariant::state_restore(const Snapshot& snap) {
  have_stage_ = snap.get() != 0;
  stage_kind_ = static_cast<StageKind>(snap.get());
  stage_config_ = snap.get();
  stage_start_round_ = snap.get_i();
  tripped_ = snap.get() != 0;
  ring_n_ = static_cast<int>(snap.get_i());
  const int count = ring_n_ < kRing ? ring_n_ : kRing;
  for (int i = 0; i < count; ++i) {
    RoundSample& s = ring_[(ring_n_ - count + i) % kRing];
    s.round = snap.get_i();
    s.moves = snap.get_i();
    s.eroded = snap.get_i();
  }
}

void RoundBudgetInvariant::finish(const AuditView* view, const FinishInfo& info) {
  (void)view;
  if (!info.completed) return;  // budget-exhausted runs already report as failed
  const auto limit = [&](double c) {
    return static_cast<long>(c * factor_ * static_cast<double>(base_)) + slack_;
  };
  const auto check = [&](const char* stage, long rounds, double c) {
    if (rounds > limit(c)) {
      violate(0, stage,
              std::to_string(rounds) + " rounds exceed the envelope " +
                  std::to_string(limit(c)) + " (c=" + std::to_string(c) +
                  ", L_max+D=" + std::to_string(base_) + ")");
    }
  };
  check("obd", info.obd_rounds, kObdBudgetC);
  // The connected-pull ablation is O(D_A^2) by design — exempt.
  if (info.saw_dle && !info.dle_pull) check("dle", info.dle_rounds, kDleBudgetC);
  check("collect", info.collect_rounds, kCollectBudgetC);
  if (info.saw_zoo) check("zoo", info.zoo_rounds, zoo_budget_c(info.zoo_config));
}

// --- Auditor ---------------------------------------------------------------

Auditor::Auditor(Options opts) : opts_(opts) {
  PM_CHECK_MSG(opts_.check_every >= 1, "audit cadence must be >= 1");
}

std::unique_ptr<Auditor> Auditor::standard(Options opts) {
  auto auditor = std::make_unique<Auditor>(opts);
  auditor->add(std::make_unique<ConnectivityInvariant>());
  auditor->add(std::make_unique<ErosionInvariant>());
  auditor->add(std::make_unique<ObdRingInvariant>());
  auditor->add(std::make_unique<UniqueLeaderInvariant>());
  auditor->add(std::make_unique<TerminationInvariant>());
  auditor->add(std::make_unique<RoundBudgetInvariant>());
  return auditor;
}

Auditor& Auditor::add(std::unique_ptr<Invariant> inv) {
  PM_CHECK_MSG(!began_, "invariants must be added before the audit begins");
  inv->sink_ = &violations_;
  inv->bound_name_ = inv->name();
  invariants_.push_back(std::move(inv));
  return *this;
}

void Auditor::begin(const grid::Shape& initial, const grid::ShapeMetrics* metrics) {
  PM_CHECK_MSG(!began_, "audit already begun");
  began_ = true;
  ctx_.initial = initial;
  ctx_.metrics = metrics != nullptr ? *metrics : grid::compute_metrics(initial);
  ctx_.options = opts_;
  for (const auto& inv : invariants_) inv->start(ctx_);
}

void Auditor::attach(pipeline::RunContext& ctx, const grid::ShapeMetrics* metrics) {
  if (!began_) begin(ctx.initial, metrics);
  if (ctx.events != nullptr) events_ = ctx.events;
  auto prev_erode = ctx.erode_hook;
  ctx.erode_hook = [this, prev_erode](Node v) {
    if (prev_erode) prev_erode(v);
    on_erode(v);
  };
  auto prev_round = ctx.on_round;
  ctx.on_round = [this, prev_round](const pipeline::Stage& stage,
                                    const pipeline::RunContext& c) {
    if (prev_round) prev_round(stage, c);
    const core::ObdRun* obd = nullptr;
    if (stage.kind() == StageKind::Obd) {
      if (const auto* os = dynamic_cast<const pipeline::ObdStage*>(&stage)) {
        obd = os->run();
      }
    }
    const LiveView view(c.sys, obd);
    observe_round(view, stage.kind(), stage.config_word(), stage.name(), stage.done());
  };
}

void Auditor::on_erode(Node v) {
  const std::lock_guard<std::mutex> lock(erode_mu_);
  erode_buffer_.push_back(v);
}

void Auditor::observe_round(const AuditView& view, StageKind kind,
                            std::uint64_t stage_config, const char* stage_name,
                            bool stage_done) {
  PM_CHECK_MSG(began_, "observe_round before begin");
  ++round_;
  {
    const std::lock_guard<std::mutex> lock(erode_mu_);
    pending_eroded_.insert(pending_eroded_.end(), erode_buffer_.begin(),
                           erode_buffer_.end());
    erode_buffer_.clear();
  }
  if (is_pull_dle(kind, stage_config)) saw_dle_pull_ = true;
  // Stage boundaries are always audited: erosion events must be delivered
  // while the DLE-round occupancy still stands, and OBD's detection verdict
  // appears on its closing rounds.
  const bool stage_boundary = stage_done || !have_last_kind_ || kind != last_kind_;
  have_last_kind_ = true;
  last_kind_ = kind;
  static const telemetry::Counter c_observed("audit.rounds_observed");
  static const telemetry::Counter c_checked("audit.rounds_checked");
  c_observed.inc();
  if (!stage_boundary && opts_.check_every > 1 && round_ % opts_.check_every != 0) return;
  c_checked.inc();  // cadence hit: the invariants actually ran this round
  const bool timed = telemetry::enabled();
  const auto ct0 = timed ? WallClock::now() : WallClock::time_point{};
  RoundInfo info;
  info.round = round_;
  info.stage = kind;
  info.stage_config = stage_config;
  info.stage_name = stage_name;
  info.stage_done = stage_done;
  info.eroded = pending_eroded_;
  const std::size_t viol_before = violations_.size();
  for (const auto& inv : invariants_) inv->round(view, info);
  publish_violations(viol_before);
  if (timed) {
    static const telemetry::Histogram h_check("audit.check_ns", telemetry::Kind::Time);
    h_check.observe(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(WallClock::now() - ct0)
            .count()));
  }
  pending_eroded_.clear();
  maybe_fail_fast();
}

void Auditor::end(const AuditView* final_view, FinishInfo info) {
  PM_CHECK_MSG(began_, "end before begin");
  PM_CHECK_MSG(!ended_, "audit already ended");
  ended_ = true;
  {
    const std::lock_guard<std::mutex> lock(erode_mu_);
    pending_eroded_.insert(pending_eroded_.end(), erode_buffer_.begin(),
                           erode_buffer_.end());
    erode_buffer_.clear();
  }
  info.eroded = pending_eroded_;
  info.dle_pull = info.dle_pull || saw_dle_pull_;
  const std::size_t viol_before = violations_.size();
  for (const auto& inv : invariants_) inv->finish(final_view, info);
  publish_violations(viol_before);
  pending_eroded_.clear();
  maybe_fail_fast();
}

void Auditor::finish(const pipeline::PipelineOutcome& out,
                     const pipeline::RunContext& ctx) {
  FinishInfo info;
  info.completed = out.completed;
  info.has_system = ctx.sys != nullptr;
  info.leader = ctx.leader;
  info.leader_node = ctx.leader_node;
  for (const pipeline::StageReport& s : out.stages) {
    switch (s.kind) {
      case StageKind::Obd:
        info.obd_rounds += s.metrics.rounds;
        break;
      case StageKind::Dle:
        info.dle_rounds += s.metrics.rounds;
        info.saw_dle = true;
        info.dle_succeeded =
            info.dle_succeeded || s.status == pipeline::StageStatus::Succeeded;
        break;
      case StageKind::Collect:
        info.collect_rounds += s.metrics.rounds;
        info.collect_succeeded =
            info.collect_succeeded || s.status == pipeline::StageStatus::Succeeded;
        break;
      case StageKind::Baseline:
        break;
      case StageKind::Zoo:
        info.zoo_rounds += s.metrics.rounds;
        info.saw_zoo = true;
        info.zoo_succeeded =
            info.zoo_succeeded || s.status == pipeline::StageStatus::Succeeded;
        // StageReports carry no config word; the stage name identifies the
        // protocol (one zoo stage per pipeline).
        info.zoo_config = std::string_view(s.name) == "zoo_ek" ? zoo::kZooConfigEk
                                                               : zoo::kZooConfigDaymude;
        break;
    }
  }
  const LiveView view(ctx.sys, nullptr);
  end(ctx.sys != nullptr ? &view : nullptr, info);
}

void Auditor::save(Snapshot& snap) const {
  {
    const std::lock_guard<std::mutex> lock(erode_mu_);
    PM_CHECK_MSG(erode_buffer_.empty(),
                 "audit checkpoint mid-round: undrained erosion events");
  }
  snap.put_mark(kSnapAudit);
  snap.put_i(round_);
  snap.put(have_last_kind_ ? 1 : 0);
  snap.put(static_cast<std::uint64_t>(last_kind_));
  snap.put(saw_dle_pull_ ? 1 : 0);
  snap.put(pending_eroded_.size());
  for (const Node v : pending_eroded_) snap.put(pack_node(v));
  snap.put(invariants_.size());
  for (const auto& inv : invariants_) inv->state_save(snap);
}

void Auditor::restore(const Snapshot& snap) {
  PM_CHECK_MSG(began_, "restore before begin (attach or begin first)");
  snap.expect_mark(kSnapAudit);
  round_ = snap.get_i();
  have_last_kind_ = snap.get() != 0;
  last_kind_ = static_cast<StageKind>(snap.get());
  saw_dle_pull_ = snap.get() != 0;
  pending_eroded_.clear();
  const auto pending = snap.get();
  pending_eroded_.reserve(pending);
  for (std::uint64_t i = 0; i < pending; ++i) {
    pending_eroded_.push_back(unpack_node(snap.get()));
  }
  PM_CHECK_MSG(snap.get() == invariants_.size(),
               "audit snapshot invariant-set mismatch");
  for (const auto& inv : invariants_) inv->state_restore(snap);
  // Already-collected violations are kept: a fault-injection kill must not
  // launder a breach observed before it (a genuinely fresh process starts
  // with an empty list anyway — snapshots never carry violations).
  ended_ = false;
}

void Auditor::reset_for_fresh_run() {
  PM_CHECK_MSG(began_, "reset before begin");
  {
    const std::lock_guard<std::mutex> lock(erode_mu_);
    erode_buffer_.clear();
  }
  pending_eroded_.clear();
  violations_.clear();
  round_ = 0;
  have_last_kind_ = false;
  saw_dle_pull_ = false;
  ended_ = false;
  for (const auto& inv : invariants_) inv->start(ctx_);
}

std::string Auditor::report() const {
  std::ostringstream os;
  if (violations_.empty()) {
    os << "audit clean: " << invariants_.size() << " invariants over " << round_
       << " rounds";
    return os.str();
  }
  os << violations_.size() << " invariant violation(s) over " << round_ << " rounds:";
  for (const Violation& v : violations_) {
    os << "\n  [" << v.invariant << "] round " << v.round << " (" << v.stage
       << "): " << v.detail;
  }
  return os.str();
}

void Auditor::maybe_fail_fast() {
  if (opts_.fail_fast && !violations_.empty()) throw CheckError(report());
}

// Mirrors newly detected violations into the event stream (ordered lane —
// observe_round and end both run on the main thread) and freezes the flight
// window on the first breach so the retained ring documents the lead-up.
void Auditor::publish_violations(std::size_t first_new) {
  if (events_ == nullptr || violations_.size() <= first_new) return;
  for (std::size_t i = first_new; i < violations_.size(); ++i) {
    const Violation& vi = violations_[i];
    obs::Event e;
    e.type = obs::Type::AuditViolation;
    e.stage = "audit";
    e.val = vi.round;
    e.note = vi.invariant + ": " + vi.detail;
    events_->emit(std::move(e));
  }
  if (!events_->captured()) {
    events_->capture("audit violation: " + violations_[first_new].invariant);
  }
}

}  // namespace pm::audit
