#include "audit/trace.h"

#include <algorithm>
#include <memory>
#include <sstream>
#include <utility>

#include "audit/node_codec.h"
#include "core/dle/dle.h"
#include "util/check.h"
#include "zoo/zoo.h"

namespace pm::audit {

using amoebot::ParticleId;
using grid::Node;
using pipeline::Pipeline;
using pipeline::RunContext;
using pipeline::Stage;
using pipeline::StageKind;

namespace {

// --- word packing ----------------------------------------------------------

constexpr std::uint64_t kTerminatorStage = 0xFF;

using codec::pack_node;
using codec::unpack_node;

// Word A of a particle entry: id (32 bits) | tail code (3: 0 = contracted,
// 1..6 = direction index of head->tail + 1) | orientation (3) | packed
// DleState (15). Word B: the head node.
std::uint64_t pack_entry_a(ParticleId id, const amoebot::Body& b,
                           const core::DleState& st) {
  std::uint64_t tail_code = 0;
  if (b.expanded()) {
    tail_code = static_cast<std::uint64_t>(grid::index(grid::dir_between(b.head, b.tail))) + 1;
  }
  return static_cast<std::uint64_t>(static_cast<std::uint32_t>(id)) | (tail_code << 32) |
         (static_cast<std::uint64_t>(b.ori) << 35) | (core::pack_dle_state(st) << 38);
}

struct EntryA {
  ParticleId id;
  int tail_code;
  std::uint8_t ori;
  core::DleState state;
};

EntryA unpack_entry_a(std::uint64_t w) {
  EntryA e;
  e.id = static_cast<ParticleId>(static_cast<std::uint32_t>(w & 0xffffffffULL));
  e.tail_code = static_cast<int>((w >> 32) & 0x7);
  e.ori = static_cast<std::uint8_t>((w >> 35) & 0x7);
  e.state = core::unpack_dle_state(w >> 38);
  return e;
}

const char* stage_kind_name(StageKind k) {
  switch (k) {
    case StageKind::Obd: return "obd";
    case StageKind::Dle: return "dle";
    case StageKind::Collect: return "collect";
    case StageKind::Baseline: return "baseline";
    case StageKind::Zoo: return "zoo";
  }
  return "?";
}

// AuditView over a TraceReader's reconstructed trajectory.
class OfflineView final : public AuditView {
 public:
  explicit OfflineView(const TraceReader& reader) : r_(reader) {}

  [[nodiscard]] int particle_count() const override {
    return static_cast<int>(r_.particles().size());
  }
  [[nodiscard]] core::Status status(ParticleId p) const override {
    return r_.particles()[static_cast<std::size_t>(p)].state.status;
  }
  [[nodiscard]] bool expanded(ParticleId p) const override {
    const TraceParticle& tp = r_.particles()[static_cast<std::size_t>(p)];
    return !(tp.head == tp.tail);
  }
  [[nodiscard]] Node head(ParticleId p) const override {
    return r_.particles()[static_cast<std::size_t>(p)].head;
  }
  [[nodiscard]] bool occupied(Node v) const override { return r_.occupied().contains(v); }
  [[nodiscard]] int expanded_count() const override { return r_.expanded_count(); }
  [[nodiscard]] int component_count() const override {
    return codec::count_components(r_.occupied());
  }
  [[nodiscard]] long long moves() const override { return r_.moves(); }

 private:
  const TraceReader& r_;
};

}  // namespace

// --- TraceWriter -----------------------------------------------------------

void TraceWriter::attach(Pipeline& pipe) {
  PM_CHECK_MSG(!finished_, "trace already finished");
  const auto& stages = pipe.stages();
  PM_CHECK_MSG(!stages.empty(), "trace attach on an empty pipeline");
  bool uses_system = false;
  for (const auto& s : stages) uses_system = uses_system || s->uses_system();
  PM_CHECK_MSG(uses_system,
               "traces record particle trajectories; baseline-only pipelines have none");

  RunContext& ctx = pipe.context();
  if (!header_written_) {
    header_written_ = true;
    particle_count_ = ctx.initial.size();
    snap_.put_mark(kSnapTrace);
    snap_.put(1);  // trace format version
    snap_.put(ctx.seeds.base);
    snap_.put(static_cast<std::uint64_t>(ctx.seeds.kind));
    snap_.put(static_cast<std::uint64_t>(ctx.order));
    snap_.put(static_cast<std::uint64_t>(ctx.occupancy));
    snap_.put_i(ctx.threads);
    snap_.put_i(ctx.max_rounds);
    snap_.put(ctx.initial.size());
    for (const Node v : ctx.initial.nodes()) snap_.put(pack_node(v));
    snap_.put(stages.size());
    for (const auto& s : stages) {
      stage_descs_.push_back({s->kind(), s->config_word()});
      snap_.put(static_cast<std::uint64_t>(s->kind()));
      snap_.put(s->config_word());
    }
  } else {
    // A fault-injection resume rebuilt the pipeline: recording continues,
    // but only under the same composition the header promised.
    PM_CHECK_MSG(stages.size() == stage_descs_.size(),
                 "trace resume under a different stage composition");
    for (std::size_t i = 0; i < stages.size(); ++i) {
      PM_CHECK_MSG(stages[i]->kind() == stage_descs_[i].kind &&
                       stages[i]->config_word() == stage_descs_[i].config,
                   "trace resume under a different stage composition");
    }
  }
  stages_.clear();
  for (const auto& s : stages) stages_.push_back(s.get());

  auto prev_erode = ctx.erode_hook;
  ctx.erode_hook = [this, prev_erode](Node v) {
    if (prev_erode) prev_erode(v);
    on_erode(v);
  };
  auto prev_round = ctx.on_round;
  ctx.on_round = [this, prev_round](const Stage& stage, const RunContext& c) {
    if (prev_round) prev_round(stage, c);
    on_round(stage, c);
  };
}

void TraceWriter::on_erode(Node v) {
  const std::lock_guard<std::mutex> lock(erode_mu_);
  erode_buffer_.push_back(v);
}

void TraceWriter::on_round(const Stage& stage, const RunContext& ctx) {
  PM_CHECK_MSG(ctx.sys != nullptr, "traced pipeline has no particle system");
  const auto& sys = *ctx.sys;
  const auto n = static_cast<std::size_t>(sys.particle_count());
  PM_CHECK_MSG(n == particle_count_, "traced system size changed mid-run");

  std::size_t stage_index = stages_.size();
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    if (stages_[i] == &stage) stage_index = i;
  }
  PM_CHECK_MSG(stage_index < stages_.size(), "trace observer saw a foreign stage");

  // Erosion events since the previous frame, sorted so parallel-engine
  // arrival order cannot leak into the format.
  std::vector<Node> eroded;
  {
    const std::lock_guard<std::mutex> lock(erode_mu_);
    eroded.swap(erode_buffer_);
  }
  std::sort(eroded.begin(), eroded.end(),
            [](Node a, Node b) { return pack_node(a) < pack_node(b); });
  PM_CHECK_MSG(eroded.size() < (1ULL << 16), "implausible erosion burst in one round");

  // Delta pass: compare every particle's packed pair against the mirror.
  mirror_.resize(n, {~0ULL, ~0ULL});
  std::vector<std::array<std::uint64_t, 2>> changed;
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<ParticleId>(i);
    const std::uint64_t a = pack_entry_a(id, sys.body(id), sys.state(id));
    const std::uint64_t b = pack_node(sys.body(id).head);
    if (mirror_[i][0] != a || mirror_[i][1] != b) {
      mirror_[i] = {a, b};
      changed.push_back({a, b});
    }
  }

  snap_.put(static_cast<std::uint64_t>(stage_index) |
            (static_cast<std::uint64_t>(stage.done() ? 1 : 0) << 8) |
            (static_cast<std::uint64_t>(eroded.size()) << 16) |
            (static_cast<std::uint64_t>(changed.size()) << 32));
  snap_.put_i(sys.moves());
  for (const Node v : eroded) snap_.put(pack_node(v));
  for (const auto& e : changed) {
    snap_.put(e[0]);
    snap_.put(e[1]);
  }
}

void TraceWriter::finish(const pipeline::PipelineOutcome& out, const RunContext& ctx) {
  PM_CHECK_MSG(header_written_, "trace finish before attach");
  PM_CHECK_MSG(!finished_, "trace already finished");
  finished_ = true;
  snap_.put(kTerminatorStage);
  snap_.put(out.completed ? 1 : 0);
  snap_.put_i(ctx.leader);
  snap_.put(pack_node(ctx.leader_node));
  snap_.put_i(ctx.sys != nullptr ? ctx.sys->moves() : 0);
  snap_.put(out.stages.size());
  for (const pipeline::StageReport& s : out.stages) {
    snap_.put(static_cast<std::uint64_t>(s.status));
    snap_.put_i(s.metrics.rounds);
    snap_.put_i(s.metrics.activations);
    snap_.put_i(s.metrics.phases);
  }
}

const Snapshot& TraceWriter::snapshot() const {
  PM_CHECK_MSG(finished_, "trace snapshot requested before finish");
  return snap_;
}

// --- TraceReader -----------------------------------------------------------

TraceReader::TraceReader(Snapshot snap) : snap_(std::move(snap)) {
  snap_.rewind();
  snap_.expect_mark(kSnapTrace);
  const std::uint64_t version = snap_.get();
  PM_CHECK_MSG(version == 1, "unsupported trace version " << version);
  config_.seeds.base = snap_.get();
  config_.seeds.kind = static_cast<pipeline::SeedPolicy::Kind>(snap_.get());
  config_.order = static_cast<amoebot::Order>(snap_.get());
  config_.occupancy = static_cast<amoebot::OccupancyMode>(snap_.get());
  config_.threads = static_cast<int>(snap_.get_i());
  config_.max_rounds = snap_.get_i();
  const std::uint64_t n = snap_.get();
  PM_CHECK_MSG(n >= 1 && n <= (1ULL << 26), "implausible trace shape size " << n);
  config_.shape_nodes.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) config_.shape_nodes.push_back(unpack_node(snap_.get()));
  const std::uint64_t stages = snap_.get();
  PM_CHECK_MSG(stages >= 1 && stages <= 8, "implausible trace stage count " << stages);
  for (std::uint64_t i = 0; i < stages; ++i) {
    TraceConfig::StageDesc desc;
    desc.kind = static_cast<StageKind>(snap_.get());
    desc.config = snap_.get();
    config_.stages.push_back(desc);
  }
  particles_.resize(n);
  present_.assign(n, 0);
  occupied_.reserve(2 * n);
}

bool TraceReader::next() {
  PM_CHECK_MSG(!done_, "trace exhausted");
  const std::uint64_t header = snap_.get();
  const std::uint64_t stage = header & 0xFF;
  if (stage == kTerminatorStage) {
    done_ = true;
    outcome_.completed = snap_.get() != 0;
    outcome_.leader = static_cast<ParticleId>(snap_.get_i());
    outcome_.leader_node = unpack_node(snap_.get());
    outcome_.moves = snap_.get_i();
    const std::uint64_t reports = snap_.get();
    PM_CHECK_MSG(reports == config_.stages.size(), "trace outcome stage-count mismatch");
    for (std::uint64_t i = 0; i < reports; ++i) {
      TraceOutcome::StageSummary s;
      s.status = static_cast<pipeline::StageStatus>(snap_.get());
      s.rounds = snap_.get_i();
      s.activations = snap_.get_i();
      s.phases = static_cast<int>(snap_.get_i());
      outcome_.stages.push_back(s);
    }
    return false;
  }
  PM_CHECK_MSG(stage < config_.stages.size(), "trace frame names stage " << stage);
  stage_index_ = static_cast<int>(stage);
  stage_done_ = ((header >> 8) & 0xFF) != 0;
  const std::uint64_t eroded = (header >> 16) & 0xFFFF;
  const std::uint64_t changed = header >> 32;
  PM_CHECK_MSG(changed <= particles_.size(), "trace frame changes " << changed
                                                 << " of " << particles_.size()
                                                 << " particles");
  ++round_;
  moves_ = snap_.get_i();
  eroded_.clear();
  eroded_.reserve(eroded);
  for (std::uint64_t i = 0; i < eroded; ++i) eroded_.push_back(unpack_node(snap_.get()));
  changed_.clear();
  changed_.reserve(changed);
  // Two-phase apply: nodes hand off between particles within one round
  // (handovers, Collect chain pulls), so every old position must leave
  // occupied_ before any new one enters — interleaving would erase a node
  // another changed particle just claimed.
  std::vector<std::pair<EntryA, Node>> entries;
  entries.reserve(changed);
  for (std::uint64_t i = 0; i < changed; ++i) {
    const EntryA a = unpack_entry_a(snap_.get());
    const Node head = unpack_node(snap_.get());
    PM_CHECK_MSG(a.id >= 0 && static_cast<std::size_t>(a.id) < particles_.size(),
                 "trace entry names particle " << a.id);
    PM_CHECK_MSG(a.tail_code <= 6, "trace entry tail code " << a.tail_code);
    entries.emplace_back(a, head);
  }
  for (const auto& [a, head] : entries) {
    if (!present_[static_cast<std::size_t>(a.id)]) continue;
    const TraceParticle& tp = particles_[static_cast<std::size_t>(a.id)];
    if (!(tp.head == tp.tail)) --expanded_count_;
    occupied_.erase(tp.head);
    if (!(tp.tail == tp.head)) occupied_.erase(tp.tail);
  }
  for (const auto& [a, head] : entries) {
    TraceParticle& tp = particles_[static_cast<std::size_t>(a.id)];
    tp.head = head;
    tp.tail = a.tail_code == 0
                  ? head
                  : grid::neighbor(head, grid::dir_from_index(a.tail_code - 1));
    tp.ori = a.ori;
    tp.state = a.state;
    occupied_.insert(tp.head);
    if (!(tp.tail == tp.head)) {
      occupied_.insert(tp.tail);
      ++expanded_count_;
    }
    present_[static_cast<std::size_t>(a.id)] = 1;
    changed_.push_back(a.id);
  }
  return true;
}

const TraceOutcome& TraceReader::outcome() const {
  PM_CHECK_MSG(done_, "trace outcome requested before the terminator");
  return outcome_;
}

// --- replay / offline audit ------------------------------------------------

namespace {

Pipeline build_from_config(const TraceConfig& config) {
  RunContext ctx;
  ctx.initial = grid::Shape(config.shape_nodes);
  ctx.seeds = config.seeds;
  ctx.order = config.order;
  ctx.occupancy = config.occupancy;
  ctx.threads = 0;  // replay is sequential; trajectories are engine-invariant
  ctx.max_rounds = config.max_rounds;
  Pipeline pipe(std::move(ctx));
  for (const TraceConfig::StageDesc& desc : config.stages) {
    switch (desc.kind) {
      case StageKind::Obd:
        pipe.add(std::make_unique<pipeline::ObdStage>(
            pipeline::ObdStage::Options{.skip_if_single = (desc.config & 1) != 0}));
        break;
      case StageKind::Dle:
        pipe.add(std::make_unique<pipeline::DleStage>(
            core::Dle::Options{.connected_pull = (desc.config & 1) != 0}));
        break;
      case StageKind::Collect:
        pipe.add(std::make_unique<pipeline::CollectStage>());
        break;
      case StageKind::Baseline:
        PM_CHECK_MSG(false, "baseline stages are never traced");
        break;
      case StageKind::Zoo:
        // The config word is the zoo protocol id (kZooConfig*), restored
        // here so a replay re-runs the exact competitor that was recorded.
        if (desc.config == zoo::kZooConfigEk) {
          pipe.add(std::make_unique<zoo::EkLeStage>());
        } else {
          PM_CHECK_MSG(desc.config == zoo::kZooConfigDaymude,
                       "trace names unknown zoo protocol " << desc.config);
          pipe.add(std::make_unique<zoo::DaymudeLeStage>());
        }
        break;
    }
  }
  return pipe;
}

}  // namespace

ReplayResult replay_trace(const Snapshot& trace, const Options& audit_options) {
  Snapshot copy = trace;
  copy.rewind();
  TraceReader reader(std::move(copy));
  ReplayResult rr;

  Pipeline pipe = build_from_config(reader.config());
  const auto auditor = Auditor::standard(audit_options);
  auditor->attach(pipe.context());

  bool diverged = false;
  auto diverge = [&](long round, const std::string& detail) {
    if (diverged) return;
    diverged = true;
    rr.divergence_round = round;
    rr.detail = detail;
  };

  RunContext& ctx = pipe.context();
  auto prev_round = ctx.on_round;
  ctx.on_round = [&](const Stage& stage, const RunContext& c) {
    if (prev_round) prev_round(stage, c);
    ++rr.rounds;
    if (diverged) return;
    if (!reader.next()) {
      diverge(rr.rounds, "trace ended but the re-executed run kept going");
      return;
    }
    std::size_t live_index = pipe.stages().size();
    for (std::size_t i = 0; i < pipe.stages().size(); ++i) {
      if (pipe.stages()[i].get() == &stage) live_index = i;
    }
    if (static_cast<int>(live_index) != reader.stage_index()) {
      diverge(rr.rounds, "stage mismatch: trace ran stage " +
                             std::to_string(reader.stage_index()) + ", replay stage " +
                             std::to_string(live_index));
      return;
    }
    if (c.sys->moves() != reader.moves()) {
      diverge(rr.rounds, "movement counter mismatch: trace " +
                             std::to_string(reader.moves()) + ", replay " +
                             std::to_string(c.sys->moves()));
      return;
    }
    const auto& parts = reader.particles();
    for (ParticleId p = 0; p < c.sys->particle_count(); ++p) {
      const auto& body = c.sys->body(p);
      const TraceParticle& tp = parts[static_cast<std::size_t>(p)];
      if (!(body.head == tp.head) || !(body.tail == tp.tail) || body.ori != tp.ori ||
          core::pack_dle_state(c.sys->state(p)) != core::pack_dle_state(tp.state)) {
        std::ostringstream os;
        os << "particle " << p << " diverged: trace head " << tp.head << ", replay head "
           << body.head;
        diverge(rr.rounds, os.str());
        return;
      }
    }
  };

  rr.outcome = pipe.run();
  auditor->finish(rr.outcome, pipe.context());
  rr.violations = auditor->violations();

  if (!diverged) {
    if (reader.next()) {
      diverge(rr.rounds, "trace has more rounds than the re-executed run");
    } else {
      const TraceOutcome& to = reader.outcome();
      if (to.completed != rr.outcome.completed) {
        diverge(0, "completion mismatch");
      } else if (to.leader != pipe.context().leader) {
        diverge(0, "leader mismatch");
      } else if (pipe.context().sys != nullptr && to.moves != pipe.context().sys->moves()) {
        diverge(0, "final movement counter mismatch");
      } else {
        for (std::size_t i = 0; i < rr.outcome.stages.size(); ++i) {
          const auto& live = rr.outcome.stages[i];
          const auto& rec = to.stages[i];
          if (live.status != rec.status || live.metrics.rounds != rec.rounds ||
              live.metrics.activations != rec.activations ||
              live.metrics.phases != rec.phases) {
            diverge(0, "stage " + std::to_string(i) + " summary mismatch");
            break;
          }
        }
      }
    }
  }
  rr.identical = !diverged;
  return rr;
}

std::vector<Violation> audit_trace(const Snapshot& trace, const Options& audit_options) {
  Snapshot copy = trace;
  copy.rewind();
  TraceReader reader(std::move(copy));
  const TraceConfig& config = reader.config();
  const grid::Shape initial(config.shape_nodes);

  const auto auditor = Auditor::standard(audit_options);
  auditor->begin(initial);
  const OfflineView view(reader);

  while (reader.next()) {
    const TraceConfig::StageDesc& desc =
        config.stages[static_cast<std::size_t>(reader.stage_index())];
    for (const Node v : reader.eroded()) auditor->on_erode(v);
    auditor->observe_round(view, desc.kind, desc.config, stage_kind_name(desc.kind),
                           reader.stage_done());
  }

  const TraceOutcome& to = reader.outcome();
  FinishInfo info;
  info.completed = to.completed;
  info.has_system = true;
  info.leader = to.leader;
  info.leader_node = to.leader_node;
  for (std::size_t i = 0; i < config.stages.size(); ++i) {
    const auto kind = config.stages[i].kind;
    const auto& s = to.stages[i];
    if (kind == StageKind::Obd) info.obd_rounds += s.rounds;
    if (kind == StageKind::Dle) {
      info.dle_rounds += s.rounds;
      info.saw_dle = true;
      info.dle_succeeded =
          info.dle_succeeded || s.status == pipeline::StageStatus::Succeeded;
      info.dle_pull = info.dle_pull || (config.stages[i].config & 1) != 0;
    }
    if (kind == StageKind::Collect) {
      info.collect_rounds += s.rounds;
      info.collect_succeeded =
          info.collect_succeeded || s.status == pipeline::StageStatus::Succeeded;
    }
    if (kind == StageKind::Zoo) {
      info.zoo_rounds += s.rounds;
      info.saw_zoo = true;
      info.zoo_succeeded =
          info.zoo_succeeded || s.status == pipeline::StageStatus::Succeeded;
      info.zoo_config = config.stages[i].config;
    }
  }
  auditor->end(&view, info);
  return auditor->violations();
}

}  // namespace pm::audit
