// Runtime invariant auditing for the paper's guarantees.
//
// The paper states its correctness as invariants — the eligible set S_e
// erodes monotonically and stays connected with an occupied boundary
// (Lemma 11), every global boundary's v-node counts sum to ±6 with exactly
// one +6 ring (Observation 4), at most one leader ever exists, termination
// leaves a unique contracted leader, and the whole pipeline finishes within
// a constant multiple of L_max + D (Theorems 18/23/41). Tests compare final
// Results; the Auditor checks the invariants *while a run executes*, and
// again offline when a recorded trace is replayed (src/audit/trace.h).
//
// Structure:
//   * AuditView — the minimal read interface the checks consume. A live run
//     adapts pipeline::RunContext's particle system; the offline replayer
//     adapts a trajectory reconstructed from a trace. One set of checks,
//     two transports.
//   * Invariant — a pluggable check: started against the initial shape,
//     fed one observation per pipeline round (with the S_e erosion events
//     accumulated since the previous audited round), finished against the
//     run outcome. Checkpointable, so a killed-and-resumed run audits
//     cleanly end to end (src/audit/fault.h).
//   * Auditor — owns the invariant set, wires into RunContext's per-round
//     observer + the DLE erosion hook (attach), applies the check cadence,
//     and aggregates Violations.
//
// Checks are incremental where the invariant allows it: erosion checks are
// event-driven (O(1) per eroded point, plus an S_e BFS only on eroding
// rounds), connectivity re-runs only when the movement counter advanced,
// OBD ring sums touch v-nodes (boundary-sized, not n), and only the leader
// scan is a true O(n) per-round pass — `Options::check_every` thins all of
// them for large sweeps.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/dle/dle.h"
#include "grid/metrics.h"
#include "grid/shape.h"
#include "pipeline/pipeline.h"

namespace pm::core {
class ObdRun;
}

namespace pm::audit {

// One detected invariant breach. `round` is the pipeline round at which the
// check ran (0 = start/finish checks).
struct Violation {
  std::string invariant;
  long round = 0;
  std::string stage;
  std::string detail;
};

struct Options {
  // Cadence of the per-round checks: 1 audits every pipeline round, N
  // audits every Nth (stage transitions are always audited). Erosion
  // events are never dropped — they accumulate until the next audited
  // round.
  long check_every = 1;
  // Global scale on the round-budget envelope's per-stage constants
  // (RoundBudgetInvariant); > 1 loosens, < 1 tightens.
  // pm-lint: allow(pm-float-protocol) envelope scale; gates verdicts only, never serialized
  double budget_factor = 1.0;
  // Additive slack of the envelope (absorbs small-shape constants).
  long budget_slack = 64;
  // Throw pm::CheckError at the first violation instead of collecting.
  bool fail_fast = false;
};

// What invariants may read each audited round. Implemented over a live
// particle system (Auditor::attach) and over a trace-reconstructed
// trajectory (trace.h's offline replay).
class AuditView {
 public:
  virtual ~AuditView() = default;

  [[nodiscard]] virtual int particle_count() const = 0;
  [[nodiscard]] virtual core::Status status(amoebot::ParticleId p) const = 0;
  [[nodiscard]] virtual bool expanded(amoebot::ParticleId p) const = 0;
  [[nodiscard]] virtual grid::Node head(amoebot::ParticleId p) const = 0;
  [[nodiscard]] virtual bool occupied(grid::Node v) const = 0;
  [[nodiscard]] virtual int expanded_count() const = 0;
  [[nodiscard]] virtual int component_count() const = 0;
  [[nodiscard]] virtual long long moves() const = 0;
  // The live OBD engine while an OBD stage is active; nullptr offline
  // (protocol internals are not traced) and outside OBD stages.
  [[nodiscard]] virtual const core::ObdRun* obd() const { return nullptr; }
};

// Everything an invariant learns when a run starts.
struct AuditContext {
  grid::Shape initial;
  grid::ShapeMetrics metrics;  // l_max + d feed the round-budget envelope
  Options options;
};

// One audited round's metadata.
struct RoundInfo {
  long round = 0;  // 1-based pipeline round index (continues across resume)
  pipeline::StageKind stage = pipeline::StageKind::Dle;
  std::uint64_t stage_config = 0;
  const char* stage_name = "";
  bool stage_done = false;  // the active stage finished on this round
  // S_e points eroded since the previous audited round. Unordered within a
  // round when a parallel engine drives DLE.
  std::span<const grid::Node> eroded;
};

// Everything an invariant learns when the run finishes.
struct FinishInfo {
  bool completed = false;
  bool has_system = false;
  amoebot::ParticleId leader = amoebot::kNoParticle;
  grid::Node leader_node{};
  long obd_rounds = 0;
  long dle_rounds = 0;
  long collect_rounds = 0;
  long zoo_rounds = 0;
  bool saw_dle = false;
  bool dle_succeeded = false;
  bool collect_succeeded = false;
  bool dle_pull = false;  // the connected-pull ablation variant ran
  bool saw_zoo = false;   // an algorithm-zoo LE stage ran
  bool zoo_succeeded = false;
  std::uint64_t zoo_config = 0;  // the zoo stage's config word (protocol id)
  // Erosion events not yet delivered through a round observation.
  std::span<const grid::Node> eroded;
};

// A pluggable invariant check. Violations are pushed into the Auditor's
// shared sink via violate().
class Invariant {
 public:
  virtual ~Invariant() = default;

  [[nodiscard]] virtual const char* name() const = 0;
  virtual void start(const AuditContext& ctx) { (void)ctx; }
  virtual void round(const AuditView& view, const RoundInfo& info) = 0;
  virtual void finish(const AuditView* view, const FinishInfo& info) {
    (void)view;
    (void)info;
  }
  // Checkpoint support: mutable check state only (violations stay with the
  // collecting process). Default: stateless.
  virtual void state_save(Snapshot& snap) const { (void)snap; }
  virtual void state_restore(const Snapshot& snap) { (void)snap; }

 protected:
  void violate(long round, const std::string& stage, const std::string& detail) const;

 private:
  friend class Auditor;
  std::vector<Violation>* sink_ = nullptr;
  const char* bound_name_ = "";
};

// Global connectivity where this implementation guarantees it: during OBD
// (no movement at all) and in the final configuration once Collect
// succeeded. Plain DLE may disconnect temporarily by design; the
// connected-pull ablation only *reduces* disconnection (a pull needs a
// contracted follower in reach — the registry's thin annuli still split,
// which is exactly what the ablation's component tracking measures), so
// DLE rounds of either variant are exempt.
// Incremental: the BFS re-runs only when the movement counter advanced.
class ConnectivityInvariant final : public Invariant {
 public:
  [[nodiscard]] const char* name() const override { return "connectivity"; }
  void start(const AuditContext& ctx) override;
  void round(const AuditView& view, const RoundInfo& info) override;
  void finish(const AuditView* view, const FinishInfo& info) override;
  void state_save(Snapshot& snap) const override;
  void state_restore(const Snapshot& snap) override;

 private:
  long long checked_moves_ = -1;
};

// Lemma 11 for the eligible set S_e, driven by the DLE erosion events:
//   * monotone erosion — every removed point was in S_e, exactly once;
//   * occupied boundary — after each removal, every S_e neighbor of the
//     removed point (now on ∂S_e) is occupied at the round boundary;
//   * connectivity — S_e stays connected (BFS on eroding rounds only);
//   * at termination of a successful DLE, S_e is exactly the leader's
//     point (the "last eligible point's occupant becomes leader" rule).
class ErosionInvariant final : public Invariant {
 public:
  [[nodiscard]] const char* name() const override { return "erosion"; }
  void start(const AuditContext& ctx) override;
  void round(const AuditView& view, const RoundInfo& info) override;
  void finish(const AuditView* view, const FinishInfo& info) override;
  void state_save(Snapshot& snap) const override;
  void state_restore(const Snapshot& snap) override;

 private:
  void apply_events(const AuditView& view, long round, const char* stage,
                    std::span<const grid::Node> eroded);

  grid::NodeSet se_;
  long long events_ = 0;
};

// Observation 4 conservation on the live OBD engine: every ring's v-node
// count sum is +6 (outer) or -6 (inner), exactly one ring sums to +6, the
// sums never change while the protocol runs, and the ring the protocol
// announces as outer is the +6 one.
class ObdRingInvariant final : public Invariant {
 public:
  [[nodiscard]] const char* name() const override { return "obd_conservation"; }
  void start(const AuditContext& ctx) override;
  void round(const AuditView& view, const RoundInfo& info) override;
  void state_save(Snapshot& snap) const override;
  void state_restore(const Snapshot& snap) override;

 private:
  std::vector<int> sums_;  // captured on the first audited OBD round
  int plus_ring_ = -1;
  bool captured_ = false;
  bool detection_checked_ = false;
};

// At most one particle ever holds Leader status (checked on audited DLE
// rounds — statuses only change inside DLE).
class UniqueLeaderInvariant final : public Invariant {
 public:
  [[nodiscard]] const char* name() const override { return "unique_leader"; }
  void round(const AuditView& view, const RoundInfo& info) override;
};

// Final-configuration contract of a completed election: exactly one
// Leader, no Undecided, everyone contracted, the leader where the DLE
// stage said it finished — plus global connectivity when a reconnecting
// composition (Collect, or pull-DLE) completed.
class TerminationInvariant final : public Invariant {
 public:
  [[nodiscard]] const char* name() const override { return "termination"; }
  void round(const AuditView& view, const RoundInfo& info) override;
  void finish(const AuditView* view, const FinishInfo& info) override;
};

// Round-budget envelope: each paper stage of a *completed* run stays below
// c_stage * budget_factor * (L_max + D) + slack, with per-stage constants
// calibrated on the registry suites (OBD's pipelined comparisons carry a
// large constant on near-symmetric shapes; DLE is tight). Catches
// asymptotic regressions, not constant-factor drift. The connected-pull
// ablation is exempt (the paper credits it with O(D_A^2)).
//
// Doubles as a live watchdog: the same envelope is checked *while* a stage
// runs, so a livelocked stage (the known comb(6,5) OBD case never
// terminates at all) is diagnosed in flight instead of silently spinning
// to max_rounds. On the first trip per stage visit it dumps the last few
// audited rounds' activity plus a count-kind telemetry snapshot into the
// violation detail.
class RoundBudgetInvariant final : public Invariant {
 public:
  [[nodiscard]] const char* name() const override { return "round_budget"; }
  void start(const AuditContext& ctx) override;
  void round(const AuditView& view, const RoundInfo& info) override;
  void finish(const AuditView* view, const FinishInfo& info) override;
  void state_save(Snapshot& snap) const override;
  void state_restore(const Snapshot& snap) override;

 private:
  // One audited round's activity, ring-buffered for the watchdog dump.
  struct RoundSample {
    long round = 0;
    long long moves = 0;
    long eroded = 0;
  };
  static constexpr int kRing = 8;

  long base_ = 0;  // L_max + D of the initial shape
  // pm-lint: allow(pm-float-protocol) envelope scale; gates verdicts only, never serialized
  double factor_ = 1.0;
  long slack_ = 64;
  // Watchdog tracking of the active stage (reset on every stage change).
  bool have_stage_ = false;
  pipeline::StageKind stage_kind_ = pipeline::StageKind::Dle;
  std::uint64_t stage_config_ = 0;
  long stage_start_round_ = 0;
  bool tripped_ = false;
  RoundSample ring_[kRing]{};
  int ring_n_ = 0;  // audited rounds recorded in the active stage
};

// Owns the invariant set and drives it — live (attach to a RunContext) or
// from any transport that can produce AuditViews (the trace replayer).
// Not movable once attached: the installed hooks capture `this`.
class Auditor {
 public:
  explicit Auditor(Options opts = {});
  Auditor(const Auditor&) = delete;
  Auditor& operator=(const Auditor&) = delete;

  // The full paper invariant set.
  [[nodiscard]] static std::unique_ptr<Auditor> standard(Options opts = {});

  Auditor& add(std::unique_ptr<Invariant> inv);

  // --- live wiring ---

  // Chains onto ctx.on_round and ctx.erode_hook (existing hooks keep
  // firing). Call again on every freshly built pipeline context of the
  // same run (checkpoint resume rebuilds contexts); the audit state
  // carries over. `metrics` avoids recomputing shape metrics when the
  // caller already has them. When ctx.events is set, every violation is
  // also emitted as an AuditViolation event and the first one freezes the
  // recorder's flight window (obs::Recorder::capture) — the generalized
  // form of the round-budget watchdog's ad-hoc last-rounds dump.
  void attach(pipeline::RunContext& ctx, const grid::ShapeMetrics* metrics = nullptr);
  // Final checks once the pipeline is done.
  void finish(const pipeline::PipelineOutcome& out, const pipeline::RunContext& ctx);

  // --- transport-agnostic core (the offline replayer drives these) ---

  void begin(const grid::Shape& initial, const grid::ShapeMetrics* metrics = nullptr);
  void observe_round(const AuditView& view, pipeline::StageKind kind,
                     std::uint64_t stage_config, const char* stage_name, bool stage_done);
  void on_erode(grid::Node v);  // thread-safe (parallel DLE batches)
  void end(const AuditView* final_view, FinishInfo info);

  // --- checkpointing (fault injection across process images) ---
  //
  // Serializes round counters, undelivered erosion events, and every
  // invariant's state. Collected violations are never serialized, and
  // restore keeps any this auditor already holds — an in-process
  // kill/resume cannot launder a breach observed before the kill.
  void save(Snapshot& snap) const;
  void restore(const Snapshot& snap);
  // Discards all progress and re-initializes every invariant against the
  // initial shape, as if the run were starting over (the corrupt-
  // checkpoint fallback: a half-restored audit state must not judge a
  // fresh run). Violations are cleared — nothing was validly observed.
  void reset_for_fresh_run();

  // --- results ---

  [[nodiscard]] bool clean() const { return violations_.empty(); }
  [[nodiscard]] const std::vector<Violation>& violations() const { return violations_; }
  [[nodiscard]] long rounds_observed() const { return round_; }
  [[nodiscard]] const Options& options() const { return opts_; }
  // Human-readable multi-line summary ("audit clean ..." / one line per
  // violation).
  [[nodiscard]] std::string report() const;

 private:
  void maybe_fail_fast();
  void publish_violations(std::size_t first_new);

  obs::Recorder* events_ = nullptr;  // set by attach(); may stay null
  Options opts_;
  std::vector<std::unique_ptr<Invariant>> invariants_;
  std::vector<Violation> violations_;
  AuditContext ctx_{};
  bool began_ = false;
  bool ended_ = false;
  long round_ = 0;
  bool have_last_kind_ = false;
  pipeline::StageKind last_kind_ = pipeline::StageKind::Dle;
  bool saw_dle_pull_ = false;

  mutable std::mutex erode_mu_;
  std::vector<grid::Node> erode_buffer_;   // filled by on_erode (any thread)
  std::vector<grid::Node> pending_eroded_; // drained, awaiting an audited round
};

}  // namespace pm::audit
