// The algorithm zoo: competitor leader-election protocols as pipeline
// stages, benchmarked against this paper's OBD→DLE→Collect under one
// harness (ROADMAP item 3).
//
// Both protocols are *stationary* — particles never move — and run on the
// oriented virtual rings of grid::VNodeRings, one agent per v-node (a
// particle hosts one agent per local boundary it touches, 1..3 of them;
// this is exactly AmoebotSim's boundary-agent rule). Like core::ObdRun the
// engines are round-synchronous: all agent state lives in engine-owned
// structs, every token moves at most one ring hop per round, so measured
// rounds reflect the protocols' published analyses. Election progress is
// mirrored into the system's per-particle DleState (status/terminated), so
// the generic audit invariants (unique leader, termination contract), the
// trace encoder, and core::election_outcome() all work unchanged.
//
// Engine-level shortcuts, deliberate and documented inline: tokens carry an
// initiator index for return routing and small integer accumulators where
// the papers use constant-memory streamed encodings. Round counts are
// unaffected (tokens still travel hop by hop); only per-agent memory is
// larger than the papers' O(1).
//
//  * zoo::DaymudeLeRun — Daymude/Gmyr/Richa/Scheideler/Strothmann's
//    improved leader election (arXiv:1701.03616): the randomized
//    Candidate/SoleCandidate/Demoted machine with the SegmentComparison,
//    CoinFlip and SolitudeVerification subphases plus the inner/outer
//    border test. Seeded — bit-reproducible per seed via the unified
//    SeedPolicy; expected O(L log L) rounds.
//  * zoo::EkLeRun — an Emek–Kutten-style deterministic leader election
//    (arXiv:1905.00580 class): deterministic lexicographic segment
//    tournament on every boundary ring; on a rotationally symmetric outer
//    boundary (where no ring-local deterministic tie-break exists) the
//    surviving co-candidates break symmetry by conquering the interior —
//    the occupant of the last claimed point wins, serialized by the
//    canonical activation order exactly as the strong scheduler serializes
//    EK's competition. Consumes no randomness: the elected leader is
//    seed-independent (a property the tests pin down).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "amoebot/system.h"
#include "core/dle/dle.h"
#include "grid/vnode.h"
#include "pipeline/pipeline.h"
#include "util/rng.h"
#include "util/snapshot.h"

namespace pm::zoo {

using LeSystem = amoebot::System<core::DleState>;

// Stage config words (pipeline checkpoint fingerprint + trace StageDesc +
// the audit layer's per-protocol round budgets key off these).
inline constexpr std::uint64_t kZooConfigDaymude = 1;
inline constexpr std::uint64_t kZooConfigEk = 2;

// --- Daymude et al. improved leader election (randomized) ------------------

class DaymudeLeRun {
 public:
  // Builds the agents from the system's current (connected, contracted,
  // >= 2 particles) configuration. The engine mutates per-particle DleState
  // as the election progresses and floods termination once a leader exists.
  DaymudeLeRun(LeSystem& sys, std::uint64_t seed);

  // One asynchronous round; returns true once every particle terminated.
  bool step_round();

  [[nodiscard]] long rounds() const { return rounds_; }
  // Work measure: token deliveries + controller actions (deterministic).
  [[nodiscard]] long long activations() const { return activations_; }
  [[nodiscard]] bool done() const { return done_; }
  [[nodiscard]] amoebot::ParticleId leader() const { return leader_; }

  // Live candidates across all rings (test/audit inspection).
  [[nodiscard]] int candidate_count() const;

  // Checkpoint/resume at round boundaries. The protocol is stationary, so
  // the ring structure is rebuilt from the (static) configuration by the
  // constructor; save/restore carry only the mutable protocol state.
  void save(Snapshot& snap) const;
  void restore(const Snapshot& snap);

  // Structured protocol event recorder (src/obs); null = off. The engine is
  // single-threaded: ordered lane. Not serialized (re-set after restore).
  obs::Recorder* events = nullptr;

  struct Token {
    enum class Kind : std::uint8_t {
      SegProbe,  // cw; counts hops to the next candidate (segment length)
      SegReply,  // ccw; the measured length back to the probe's initiator
      Announce,  // cw; a tails coin-flip offers this candidacy forward
      Ack,       // ccw; the receiving candidate's acceptance
      SolLead,   // cw; solitude-verification loop, accumulating unit vectors
      SolNack,   // ccw; another candidate exists
      Border,    // cw; inner/outer test, accumulating boundary counts
    };
    Kind kind{};
    std::int32_t value = 0;  // hop count / boundary-count sum
    std::int32_t init = -1;  // initiator v-node (engine return routing)
    std::int32_t dx = 0;     // SolLead: accumulated displacement — the
    std::int32_t dy = 0;     // paper's vector-cancellation certificate
    // Initiator's wait epoch at launch: every probe/offer carries it, every
    // reply copies it, and the initiator only consumes a verdict whose epoch
    // matches its live counter (rule pm-token-epoch — the bug class behind
    // the PR 8 OBD livelocks must stay impossible here too).
    std::int32_t epoch = 0;
    bool fresh = false;      // already moved this round (1 hop per round)
  };

 private:
  enum class Role : std::uint8_t { Demoted, Candidate, SoleCandidate, Leader, Finished };
  enum class Subphase : std::uint8_t {
    SegmentComparison,
    CoinFlip,
    SolitudeVerification,
    BorderTest,
  };
  enum class Wait : std::uint8_t { None, SegReply, Ack, SolVerdict, BorderVerdict };

  struct Agent {
    std::int8_t count = 0;  // boundary count of this v-node (Observation 4)
    int ring = -1;
    amoebot::ParticleId particle = amoebot::kNoParticle;
    Role role = Role::Candidate;
    Subphase subphase = Subphase::SegmentComparison;
    Wait wait = Wait::None;
    bool got_announce = false;  // candidacy transferred onto me while I waited
    std::int32_t back_len = -1;  // most recent absorbed SegProbe length
    std::int32_t epoch = 0;      // verdict epoch: bumped at every token launch
    std::deque<Token> cw;   // tokens travelling clockwise (to successor)
    std::deque<Token> ccw;  // tokens travelling counter-clockwise
  };

  [[nodiscard]] bool candidate_like(int v) const;
  void act(int v);
  void move_tokens();
  void receive_cw(int to, int from, Token t);
  void receive_ccw(int to, int from, Token t);
  void enter(int v, Subphase s);
  void demote(int v);
  void become_leader(int v);
  void finish_ring(int r);
  void refresh_particle_status(amoebot::ParticleId p);
  void step_flood();

  LeSystem& sys_;
  grid::Shape shape_;
  grid::VNodeRings rings_;
  std::vector<Agent> agents_;
  std::vector<std::vector<int>> particle_agents_;
  Rng rng_;

  std::vector<char> flooded_;
  std::vector<char> flood_next_;
  bool flood_started_ = false;
  amoebot::ParticleId leader_ = amoebot::kNoParticle;

  long rounds_ = 0;
  long long activations_ = 0;
  bool done_ = false;
};

// --- Emek–Kutten-style deterministic leader election -----------------------

class EkLeRun {
 public:
  // Deterministic: takes no seed, consumes no randomness. Same system
  // contract as DaymudeLeRun.
  explicit EkLeRun(LeSystem& sys);

  bool step_round();

  [[nodiscard]] long rounds() const { return rounds_; }
  [[nodiscard]] long long activations() const { return activations_; }
  [[nodiscard]] bool done() const { return done_; }
  [[nodiscard]] amoebot::ParticleId leader() const { return leader_; }

  // Surviving segment heads across all rings (test/audit inspection).
  [[nodiscard]] int head_count() const;

  void save(Snapshot& snap) const;
  void restore(const Snapshot& snap);

  // Structured protocol event recorder (src/obs); null = off, ordered lane.
  obs::Recorder* events = nullptr;

  struct Token {
    enum class Kind : std::uint8_t {
      Cmp,     // lexicographic segment comparison walk
      Absorb,  // the strictly smaller segment demotes its successor head
      Census,  // full-circle stability check: head count + boundary-count sum
    };
    enum class Mode : std::uint8_t {
      Collect,  // Cmp: cw through the initiator's own segment, recording it
      Compare,  // Cmp: cw through the successor segment, comparing
      Return,   // Cmp: ccw back to the initiator with the verdict
      Walk,     // Absorb / Census: cw
    };
    Kind kind{};
    Mode mode = Mode::Walk;
    std::int32_t init = -1;      // initiator v-node (engine return routing)
    std::int32_t verdict = 0;    // -1 initiator smaller, 0 equal, +1 larger
    std::int32_t heads_seen = 0;  // Census: other surviving heads on the ring
    std::int32_t count_sum = 0;   // Census/Absorb: boundary-count accumulator
    // Cmp/Census: the initiator's ring-change epoch at launch; a verdict or
    // census stamped under a superseded epoch is discarded on return (rule
    // pm-token-epoch).
    std::int64_t epoch = 0;
    std::vector<std::int8_t> labels;  // Cmp: the initiator's segment string
    std::uint32_t pos = 0;            // Cmp: comparison cursor into labels
    bool fresh = false;
  };

 private:
  enum class Role : std::uint8_t { Demoted, Head, CoCandidate, Leader, Finished };

  struct Agent {
    std::int8_t count = 0;
    int ring = -1;
    amoebot::ParticleId particle = amoebot::kNoParticle;
    Role role = Role::Head;
    bool busy = false;           // a Cmp or Census of mine is in flight
    bool compared = false;       // launched at least one Cmp
    std::int64_t cmp_epoch = -1;  // ring change epoch at the last Cmp launch
    std::deque<Token> cw;
    std::deque<Token> ccw;
  };

  [[nodiscard]] bool head_like(int v) const;  // Head or CoCandidate
  void act(int v);
  void move_tokens();
  void receive_cw(int to, Token t);
  void receive_ccw(int to, Token t);
  void handle_verdict(int v, const Token& t);
  void finish_census(int v, const Token& t);
  void demote(int v);
  void finish_agent(int v);
  void join_contest(int v);
  void step_contest();
  void become_leader(amoebot::ParticleId p);
  void refresh_particle_status(amoebot::ParticleId p);
  void step_flood();

  LeSystem& sys_;
  grid::Shape shape_;
  grid::VNodeRings rings_;
  std::vector<Agent> agents_;
  std::vector<std::vector<int>> particle_agents_;
  std::vector<std::int64_t> ring_changes_;  // bumped on every demotion

  // Interior contest among symmetric co-candidates (phase 2): BFS territory
  // claiming over particles, serialized by the canonical join + activation
  // order; the occupant of the last claimed point becomes the leader.
  struct Contestant {
    int vnode = -1;
    std::vector<amoebot::ParticleId> frontier;
  };
  std::vector<Contestant> contestants_;
  std::vector<std::int32_t> claim_;  // particle -> contestant index, -1 free
  int claimed_total_ = 0;
  amoebot::ParticleId last_claimed_ = amoebot::kNoParticle;

  std::vector<char> flooded_;
  std::vector<char> flood_next_;
  bool flood_started_ = false;
  amoebot::ParticleId leader_ = amoebot::kNoParticle;

  long rounds_ = 0;
  long long activations_ = 0;
  bool done_ = false;
};

// --- Stage adapters --------------------------------------------------------

// Shared chassis: budget check before each round (like ObdStage), engine
// stepping, leader publication into the RunContext, and the single-particle
// shortcut (no boundary rings; the lone particle simply leads).
class ZooStageBase : public pipeline::Stage {
 public:
  [[nodiscard]] pipeline::StageKind kind() const override {
    return pipeline::StageKind::Zoo;
  }
  void init(pipeline::RunContext& ctx) override;
  bool step_round() override;

 protected:
  // Engine factory + type-erased engine access, per protocol.
  virtual void make_engine(pipeline::RunContext& ctx) = 0;
  [[nodiscard]] virtual long engine_rounds() const = 0;
  [[nodiscard]] virtual long long engine_activations() const = 0;
  [[nodiscard]] virtual bool engine_step() = 0;
  [[nodiscard]] virtual amoebot::ParticleId engine_leader() const = 0;
  virtual void engine_save(Snapshot& snap) const = 0;
  virtual void engine_restore(const Snapshot& snap) = 0;
  virtual void note_rounds(long rounds) const = 0;  // telemetry histogram

  void state_save(Snapshot& snap) const override;
  void state_restore(pipeline::RunContext& ctx, const Snapshot& snap) override;

  pipeline::RunContext* ctx_ = nullptr;

 private:
  void finish();
};

class DaymudeLeStage final : public ZooStageBase {
 public:
  DaymudeLeStage();
  ~DaymudeLeStage() override;

  [[nodiscard]] const char* name() const override { return "zoo_daymude"; }
  [[nodiscard]] std::uint64_t config_word() const override { return kZooConfigDaymude; }

  // The live engine, for tests (nullptr while Pending or after the
  // single-particle shortcut).
  [[nodiscard]] const DaymudeLeRun* run() const { return run_.get(); }

 protected:
  void make_engine(pipeline::RunContext& ctx) override;
  [[nodiscard]] long engine_rounds() const override;
  [[nodiscard]] long long engine_activations() const override;
  [[nodiscard]] bool engine_step() override;
  [[nodiscard]] amoebot::ParticleId engine_leader() const override;
  void engine_save(Snapshot& snap) const override;
  void engine_restore(const Snapshot& snap) override;
  void note_rounds(long rounds) const override;

 private:
  std::unique_ptr<DaymudeLeRun> run_;
};

class EkLeStage final : public ZooStageBase {
 public:
  EkLeStage();
  ~EkLeStage() override;

  [[nodiscard]] const char* name() const override { return "zoo_ek"; }
  [[nodiscard]] std::uint64_t config_word() const override { return kZooConfigEk; }

  [[nodiscard]] const EkLeRun* run() const { return run_.get(); }

 protected:
  void make_engine(pipeline::RunContext& ctx) override;
  [[nodiscard]] long engine_rounds() const override;
  [[nodiscard]] long long engine_activations() const override;
  [[nodiscard]] bool engine_step() override;
  [[nodiscard]] amoebot::ParticleId engine_leader() const override;
  void engine_save(Snapshot& snap) const override;
  void engine_restore(const Snapshot& snap) override;
  void note_rounds(long rounds) const override;

 private:
  std::unique_ptr<EkLeRun> run_;
};

}  // namespace pm::zoo
