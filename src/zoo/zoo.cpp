#include "zoo/zoo.h"

#include <utility>

#include "grid/coord.h"
#include "obs/obs.h"
#include "telemetry/telemetry.h"
#include "util/check.h"

namespace pm::zoo {

using amoebot::kNoParticle;
using amoebot::ParticleId;
using core::Status;
using pipeline::RunContext;
using pipeline::StageStatus;

namespace {

// Per-subphase activation counters (ISSUE: telemetry for the zoo). Count
// kind: deterministic, byte-diffable across reruns.
struct DaymudeCounters {
  telemetry::Counter seg{"zoo.daymude.subphase.segment_comparison"};
  telemetry::Counter coin{"zoo.daymude.subphase.coin_flip"};
  telemetry::Counter sol{"zoo.daymude.subphase.solitude_verification"};
  telemetry::Counter border{"zoo.daymude.subphase.border_test"};
  telemetry::Counter flips{"zoo.daymude.coin_flips"};
  telemetry::Counter hops{"zoo.daymude.token_hops"};
};
DaymudeCounters& daymude_counters() {
  static DaymudeCounters c;
  return c;
}

struct EkCounters {
  telemetry::Counter cmp{"zoo.ek.subphase.compare"};
  telemetry::Counter census{"zoo.ek.subphase.census"};
  telemetry::Counter contest{"zoo.ek.subphase.contest"};
  telemetry::Counter absorb{"zoo.ek.absorptions"};
  telemetry::Counter claims{"zoo.ek.claims"};
  telemetry::Counter hops{"zoo.ek.token_hops"};
};
EkCounters& ek_counters() {
  static EkCounters c;
  return c;
}

// Agent role/subphase transitions into the event stream (ordered lane; both
// zoo engines are single-threaded).
void obs_zoo(obs::Recorder* rec, int v, const char* note, std::int64_t val = 0) {
  if (rec == nullptr) return;
  obs::Event e;
  e.type = obs::Type::ZooSubphase;
  e.stage = "zoo";
  e.v = v;
  e.val = val;
  e.note = note;
  rec->emit(std::move(e));
}

void obs_zoo_leader(obs::Recorder* rec, ParticleId p) {
  if (rec == nullptr) return;
  obs::Event e;
  e.type = obs::Type::Leader;
  e.stage = "zoo";
  e.v = static_cast<std::int32_t>(p);
  rec->emit(std::move(e));
}

}  // namespace

// === DaymudeLeRun ==========================================================

using DToken = DaymudeLeRun::Token;
using DKind = DaymudeLeRun::Token::Kind;

DaymudeLeRun::DaymudeLeRun(LeSystem& sys, std::uint64_t seed)
    : sys_(sys), shape_(sys.shape()), rings_(shape_), rng_(seed) {
  PM_CHECK_MSG(sys.all_contracted(), "zoo LE starts from a contracted configuration");
  const auto& vnodes = rings_.vnodes();
  agents_.resize(vnodes.size());
  particle_agents_.assign(static_cast<std::size_t>(sys.particle_count()), {});
  for (std::size_t i = 0; i < vnodes.size(); ++i) {
    Agent& a = agents_[i];
    a.count = static_cast<std::int8_t>(vnodes[i].count());
    a.ring = vnodes[i].ring;
    a.particle = sys.particle_at(vnodes[i].point);
    PM_CHECK(a.particle != kNoParticle);
    particle_agents_[static_cast<std::size_t>(a.particle)].push_back(static_cast<int>(i));
    // Every boundary agent starts as a candidate (arXiv:1701.03616 §3).
    a.role = Role::Candidate;
    a.subphase = Subphase::SegmentComparison;
  }
  flooded_.assign(static_cast<std::size_t>(sys.particle_count()), 0);
}

bool DaymudeLeRun::candidate_like(int v) const {
  const Role r = agents_[static_cast<std::size_t>(v)].role;
  return r == Role::Candidate || r == Role::SoleCandidate;
}

int DaymudeLeRun::candidate_count() const {
  int n = 0;
  for (int v = 0; v < static_cast<int>(agents_.size()); ++v) {
    if (candidate_like(v)) ++n;
  }
  return n;
}

void DaymudeLeRun::enter(int v, Subphase s) {
  Agent& a = agents_[static_cast<std::size_t>(v)];
  a.subphase = s;
  a.wait = Wait::None;
  if (events != nullptr) {
    const char* name = "";
    switch (s) {
      case Subphase::SegmentComparison: name = "segment_comparison"; break;
      case Subphase::CoinFlip: name = "coin_flip"; break;
      case Subphase::SolitudeVerification: name = "solitude_verification"; break;
      case Subphase::BorderTest: name = "border_test"; break;
    }
    obs_zoo(events, v, name);
  }
}

void DaymudeLeRun::refresh_particle_status(ParticleId p) {
  // A particle none of whose agents can still lead is a follower-in-waiting;
  // marking it early keeps traces informative. Interior particles (no
  // agents) and the final `terminated` flags are settled by the flood.
  for (const int v : particle_agents_[static_cast<std::size_t>(p)]) {
    const Role r = agents_[static_cast<std::size_t>(v)].role;
    if (r != Role::Demoted && r != Role::Finished) return;
  }
  core::DleState& st = sys_.state(p);
  if (st.status == Status::Undecided) st.status = Status::Follower;
}

void DaymudeLeRun::demote(int v) {
  Agent& a = agents_[static_cast<std::size_t>(v)];
  a.role = Role::Demoted;
  a.wait = Wait::None;
  a.got_announce = false;
  obs_zoo(events, v, "demoted");
  refresh_particle_status(a.particle);
}

void DaymudeLeRun::finish_ring(int r) {
  // An inner boundary's sole candidate retires the whole ring: no leader
  // comes from a ring whose boundary counts sum to -6 (Observation 4).
  obs_zoo(events, -1, "ring_finished", r);
  for (const int v : rings_.rings()[static_cast<std::size_t>(r)]) {
    Agent& a = agents_[static_cast<std::size_t>(v)];
    a.role = Role::Finished;
    a.wait = Wait::None;
    a.cw.clear();
    a.ccw.clear();
  }
  for (const int v : rings_.rings()[static_cast<std::size_t>(r)]) {
    refresh_particle_status(agents_[static_cast<std::size_t>(v)].particle);
  }
}

void DaymudeLeRun::become_leader(int v) {
  PM_CHECK_MSG(leader_ == kNoParticle, "second leader elected");
  Agent& a = agents_[static_cast<std::size_t>(v)];
  a.role = Role::Leader;
  leader_ = a.particle;
  obs_zoo_leader(events, leader_);
  core::DleState& st = sys_.state(leader_);
  st.status = Status::Leader;
  st.terminated = true;
  flood_started_ = true;
  flooded_[static_cast<std::size_t>(leader_)] = 1;
}

void DaymudeLeRun::act(int v) {
  Agent& a = agents_[static_cast<std::size_t>(v)];
  if (!candidate_like(v) || a.wait != Wait::None) return;
  ++activations_;
  DaymudeCounters& tc = daymude_counters();
  switch (a.subphase) {
    case Subphase::SegmentComparison: {
      tc.seg.inc();
      DToken t;
      t.kind = DKind::SegProbe;
      t.init = v;
      t.epoch = ++a.epoch;
      t.fresh = true;
      a.cw.push_back(t);
      a.wait = Wait::SegReply;
      break;
    }
    case Subphase::CoinFlip: {
      tc.coin.inc();
      tc.flips.inc();
      if (rng_.coin()) {
        // Heads: keep the candidacy, go verify solitude.
        enter(v, Subphase::SolitudeVerification);
      } else {
        // Tails: offer the candidacy forward; demote once another candidate
        // acknowledges (unless one was transferred onto us meanwhile).
        DToken t;
        t.kind = DKind::Announce;
        t.init = v;
        t.epoch = ++a.epoch;
        t.fresh = true;
        a.cw.push_back(t);
        a.wait = Wait::Ack;
      }
      break;
    }
    case Subphase::SolitudeVerification: {
      tc.sol.inc();
      DToken t;
      t.kind = DKind::SolLead;
      t.init = v;
      t.epoch = ++a.epoch;
      t.fresh = true;
      a.cw.push_back(t);
      a.wait = Wait::SolVerdict;
      break;
    }
    case Subphase::BorderTest: {
      tc.border.inc();
      DToken t;
      t.kind = DKind::Border;
      t.init = v;
      t.value = a.count;
      t.epoch = ++a.epoch;
      t.fresh = true;
      a.cw.push_back(t);
      a.wait = Wait::BorderVerdict;
      break;
    }
  }
}

void DaymudeLeRun::receive_cw(int to, int from, DToken t) {
  ++activations_;
  daymude_counters().hops.inc();
  Agent& a = agents_[static_cast<std::size_t>(to)];
  auto forward = [&] {
    t.fresh = true;
    a.cw.push_back(t);
  };
  switch (t.kind) {
    case DKind::SegProbe: {
      ++t.value;  // one more ring hop travelled
      if (candidate_like(to)) {
        a.back_len = t.value;  // my back segment = the prober's front segment
        DToken r;
        r.kind = DKind::SegReply;
        r.value = t.value;
        r.init = t.init;
        r.epoch = t.epoch;
        r.fresh = true;
        a.ccw.push_back(r);
      } else if (a.role == Role::Demoted) {
        forward();
      }  // Leader/Finished: the ring is settled; drop.
      break;
    }
    case DKind::Announce: {
      if (t.init == to) {
        // The offer came full circle: no other candidate exists. Solitude
        // verification confirms and runs the border test.
        if (a.role == Role::Candidate && a.wait == Wait::Ack &&
            t.epoch == a.epoch) {
          a.wait = Wait::None;
          a.got_announce = false;
          enter(to, Subphase::SolitudeVerification);
        }
      } else if (candidate_like(to)) {
        // Absorb the offered candidacy unconditionally. If I was offering
        // mine at the same time, the transfer keeps me a candidate when my
        // own ack returns (the gotAnnounceBeforeAck rule) — and if I have a
        // segment-comparison verdict in flight, the held transfer shields me
        // from its demotion. Gating this on wait == Ack loses a candidacy
        // whenever the acker later demotes itself, and a two-candidate ring
        // can then lose both (seen on comb(10,6), scheduler seed 101: the
        // acker lost its comparison, the announcer demoted on the ack, and
        // the ring ran forever with zero candidates).
        a.got_announce = true;
        DToken r;
        r.kind = DKind::Ack;
        r.init = t.init;
        r.epoch = t.epoch;
        r.fresh = true;
        a.ccw.push_back(r);
      } else if (a.role == Role::Demoted) {
        forward();
      }
      break;
    }
    case DKind::SolLead: {
      const grid::Node pa = rings_.vnodes()[static_cast<std::size_t>(from)].point;
      const grid::Node pb = rings_.vnodes()[static_cast<std::size_t>(to)].point;
      t.dx += pb.x - pa.x;
      t.dy += pb.y - pa.y;
      if (t.init == to) {
        // Full circle: the accumulated unit vectors cancel — the
        // certificate the paper streams through its L1/L2 lanes.
        PM_CHECK_MSG(t.dx == 0 && t.dy == 0, "solitude loop did not close");
        if (a.role == Role::Candidate && a.wait == Wait::SolVerdict &&
            t.epoch == a.epoch) {
          a.role = Role::SoleCandidate;
          enter(to, Subphase::BorderTest);
        }
      } else if (candidate_like(to)) {
        DToken r;
        r.kind = DKind::SolNack;
        r.init = t.init;
        r.epoch = t.epoch;
        r.fresh = true;
        a.ccw.push_back(r);
      } else if (a.role == Role::Demoted) {
        forward();
      }
      break;
    }
    case DKind::Border: {
      if (t.init == to) {
        if (a.role == Role::SoleCandidate && a.wait == Wait::BorderVerdict &&
            t.epoch == a.epoch) {
          a.wait = Wait::None;
          PM_CHECK_MSG(t.value == 6 || t.value == -6,
                       "border test sum " << t.value << " (Observation 4 violated)");
          if (t.value == 6) {
            become_leader(to);
          } else {
            finish_ring(a.ring);
          }
        }
      } else {
        t.value += a.count;
        forward();
      }
      break;
    }
    case DKind::SegReply:
    case DKind::Ack:
    case DKind::SolNack:
      PM_CHECK_MSG(false, "ccw-only token travelling clockwise");
      break;
  }
}

void DaymudeLeRun::receive_ccw(int to, int /*from*/, DToken t) {
  ++activations_;
  daymude_counters().hops.inc();
  Agent& a = agents_[static_cast<std::size_t>(to)];
  if (t.init != to) {
    // Replies route back through the (demoted) segment to their initiator.
    t.fresh = true;
    a.ccw.push_back(t);
    return;
  }
  switch (t.kind) {
    case DKind::SegReply: {
      if (a.role == Role::Candidate && a.wait == Wait::SegReply &&
          t.epoch == a.epoch) {
        a.wait = Wait::None;
        // Demote iff the back segment is strictly longer than the front
        // one: a strictly-decreasing cycle of lengths is impossible, so at
        // least one candidate always survives the comparison. A candidacy
        // transferred onto me while the reply was in flight is consumed
        // instead of my own — whoever announced it demotes on my ack, so
        // the total only ever drops by one per lost comparison.
        if (a.back_len >= 0 && a.back_len > t.value && !a.got_announce) {
          demote(to);
        } else {
          if (a.back_len >= 0 && a.back_len > t.value) a.got_announce = false;
          enter(to, Subphase::CoinFlip);
        }
      }
      break;
    }
    case DKind::Ack: {
      if (a.role == Role::Candidate && a.wait == Wait::Ack &&
          t.epoch == a.epoch) {
        a.wait = Wait::None;
        if (a.got_announce) {
          a.got_announce = false;
          enter(to, Subphase::SolitudeVerification);
        } else {
          demote(to);
        }
      }
      break;
    }
    case DKind::SolNack: {
      if (a.role == Role::Candidate && a.wait == Wait::SolVerdict &&
          t.epoch == a.epoch) {
        a.wait = Wait::None;
        enter(to, Subphase::SegmentComparison);
      }
      break;
    }
    case DKind::SegProbe:
    case DKind::Announce:
    case DKind::SolLead:
    case DKind::Border:
      PM_CHECK_MSG(false, "cw-only token travelling counter-clockwise");
      break;
  }
}

void DaymudeLeRun::move_tokens() {
  for (int v = 0; v < static_cast<int>(agents_.size()); ++v) {
    Agent& a = agents_[static_cast<std::size_t>(v)];
    if (!a.cw.empty() && !a.cw.front().fresh) {
      DToken t = a.cw.front();
      a.cw.pop_front();
      receive_cw(rings_.cw_succ(v), v, std::move(t));
    }
    if (!a.ccw.empty() && !a.ccw.front().fresh) {
      DToken t = a.ccw.front();
      a.ccw.pop_front();
      receive_ccw(rings_.cw_pred(v), v, std::move(t));
    }
  }
}

void DaymudeLeRun::step_flood() {
  flood_next_.assign(flooded_.size(), 0);
  bool all = true;
  for (ParticleId p = 0; p < sys_.particle_count(); ++p) {
    if (flooded_[static_cast<std::size_t>(p)]) continue;
    const grid::Node at = sys_.body(p).head;
    bool nbr_flooded = false;
    for (int d = 0; d < grid::kDirCount; ++d) {
      const ParticleId q = sys_.particle_at(grid::neighbor(at, grid::dir_from_index(d)));
      if (q != kNoParticle && flooded_[static_cast<std::size_t>(q)]) nbr_flooded = true;
    }
    if (nbr_flooded) {
      flood_next_[static_cast<std::size_t>(p)] = 1;
    } else {
      all = false;
    }
  }
  for (ParticleId p = 0; p < sys_.particle_count(); ++p) {
    if (!flood_next_[static_cast<std::size_t>(p)]) continue;
    flooded_[static_cast<std::size_t>(p)] = 1;
    core::DleState& st = sys_.state(p);
    if (st.status != Status::Leader) st.status = Status::Follower;
    st.terminated = true;
  }
  if (all) done_ = true;
}

bool DaymudeLeRun::step_round() {
  if (done_) return true;
  ++rounds_;
  if (flood_started_) {
    // Termination announcement: protocol activity ceases, the flood spreads
    // one particle hop per round (same discipline as Primitive OBD's).
    step_flood();
    return done_;
  }
  for (Agent& a : agents_) {
    for (DToken& t : a.cw) t.fresh = false;
    for (DToken& t : a.ccw) t.fresh = false;
  }
  for (int v = 0; v < static_cast<int>(agents_.size()); ++v) act(v);
  move_tokens();
  return done_;
}

namespace {

void save_daymude_token(Snapshot& snap, const DToken& t) {
  snap.put(static_cast<std::uint64_t>(t.kind));
  snap.put_i(t.value);
  snap.put_i(t.init);
  snap.put_i(t.dx);
  snap.put_i(t.dy);
  snap.put_i(t.epoch);
  snap.put(t.fresh ? 1 : 0);
}

DToken load_daymude_token(const Snapshot& snap) {
  DToken t;
  t.kind = static_cast<DKind>(snap.get());
  t.value = static_cast<std::int32_t>(snap.get_i());
  t.init = static_cast<std::int32_t>(snap.get_i());
  t.dx = static_cast<std::int32_t>(snap.get_i());
  t.dy = static_cast<std::int32_t>(snap.get_i());
  t.epoch = static_cast<std::int32_t>(snap.get_i());
  t.fresh = snap.get() != 0;
  return t;
}

}  // namespace

void DaymudeLeRun::save(Snapshot& snap) const {
  snap.put_mark(kSnapZoo);
  snap.put(kZooConfigDaymude);
  snap.put_i(rounds_);
  snap.put_i(activations_);
  snap.put(done_ ? 1 : 0);
  snap.put(flood_started_ ? 1 : 0);
  snap.put_i(leader_);
  for (const std::uint64_t w : rng_.state()) snap.put(w);
  snap.put(flooded_.size());
  for (const char f : flooded_) snap.put(static_cast<std::uint64_t>(f));
  snap.put(agents_.size());
  for (const Agent& a : agents_) {
    snap.put(static_cast<std::uint64_t>(a.role));
    snap.put(static_cast<std::uint64_t>(a.subphase));
    snap.put(static_cast<std::uint64_t>(a.wait));
    snap.put(a.got_announce ? 1 : 0);
    snap.put_i(a.back_len);
    snap.put_i(a.epoch);
    snap.put(a.cw.size());
    for (const DToken& t : a.cw) save_daymude_token(snap, t);
    snap.put(a.ccw.size());
    for (const DToken& t : a.ccw) save_daymude_token(snap, t);
  }
}

void DaymudeLeRun::restore(const Snapshot& snap) {
  snap.expect_mark(kSnapZoo);
  PM_CHECK_MSG(snap.get() == kZooConfigDaymude, "zoo snapshot protocol mismatch");
  rounds_ = snap.get_i();
  activations_ = snap.get_i();
  done_ = snap.get() != 0;
  flood_started_ = snap.get() != 0;
  leader_ = static_cast<ParticleId>(snap.get_i());
  std::array<std::uint64_t, 4> rs{};
  for (std::uint64_t& w : rs) w = snap.get();
  rng_.set_state(rs);
  PM_CHECK_MSG(snap.get() == flooded_.size(), "zoo snapshot particle count mismatch");
  for (char& f : flooded_) f = static_cast<char>(snap.get());
  PM_CHECK_MSG(snap.get() == agents_.size(), "zoo snapshot agent count mismatch");
  for (Agent& a : agents_) {
    a.role = static_cast<Role>(snap.get());
    a.subphase = static_cast<Subphase>(snap.get());
    a.wait = static_cast<Wait>(snap.get());
    a.got_announce = snap.get() != 0;
    a.back_len = static_cast<std::int32_t>(snap.get_i());
    a.epoch = static_cast<std::int32_t>(snap.get_i());
    a.cw.clear();
    a.ccw.clear();
    const std::size_t ncw = snap.get();
    for (std::size_t i = 0; i < ncw; ++i) a.cw.push_back(load_daymude_token(snap));
    const std::size_t nccw = snap.get();
    for (std::size_t i = 0; i < nccw; ++i) a.ccw.push_back(load_daymude_token(snap));
  }
}

// === EkLeRun ===============================================================

using EToken = EkLeRun::Token;
using EKind = EkLeRun::Token::Kind;
using EMode = EkLeRun::Token::Mode;

EkLeRun::EkLeRun(LeSystem& sys) : sys_(sys), shape_(sys.shape()), rings_(shape_) {
  PM_CHECK_MSG(sys.all_contracted(), "zoo LE starts from a contracted configuration");
  const auto& vnodes = rings_.vnodes();
  agents_.resize(vnodes.size());
  particle_agents_.assign(static_cast<std::size_t>(sys.particle_count()), {});
  for (std::size_t i = 0; i < vnodes.size(); ++i) {
    Agent& a = agents_[i];
    a.count = static_cast<std::int8_t>(vnodes[i].count());
    a.ring = vnodes[i].ring;
    a.particle = sys.particle_at(vnodes[i].point);
    PM_CHECK(a.particle != kNoParticle);
    particle_agents_[static_cast<std::size_t>(a.particle)].push_back(static_cast<int>(i));
    a.role = Role::Head;  // every v-node starts as a singleton segment head
  }
  ring_changes_.assign(rings_.rings().size(), 0);
  claim_.assign(static_cast<std::size_t>(sys.particle_count()), -1);
  flooded_.assign(static_cast<std::size_t>(sys.particle_count()), 0);
}

bool EkLeRun::head_like(int v) const {
  const Role r = agents_[static_cast<std::size_t>(v)].role;
  return r == Role::Head || r == Role::CoCandidate;
}

int EkLeRun::head_count() const {
  int n = 0;
  for (int v = 0; v < static_cast<int>(agents_.size()); ++v) {
    if (head_like(v)) ++n;
  }
  return n;
}

void EkLeRun::refresh_particle_status(ParticleId p) {
  for (const int v : particle_agents_[static_cast<std::size_t>(p)]) {
    const Role r = agents_[static_cast<std::size_t>(v)].role;
    if (r != Role::Demoted && r != Role::Finished) return;
  }
  core::DleState& st = sys_.state(p);
  if (st.status == Status::Undecided) st.status = Status::Follower;
}

void EkLeRun::demote(int v) {
  Agent& a = agents_[static_cast<std::size_t>(v)];
  a.role = Role::Demoted;
  a.busy = false;
  ++ring_changes_[static_cast<std::size_t>(a.ring)];
  ek_counters().absorb.inc();
  obs_zoo(events, v, "demoted");
  refresh_particle_status(a.particle);
}

void EkLeRun::finish_agent(int v) {
  Agent& a = agents_[static_cast<std::size_t>(v)];
  a.role = Role::Finished;
  a.busy = false;
  obs_zoo(events, v, "finished");
  refresh_particle_status(a.particle);
}

void EkLeRun::become_leader(ParticleId p) {
  PM_CHECK_MSG(leader_ == kNoParticle, "second leader elected");
  obs_zoo_leader(events, p);
  leader_ = p;
  core::DleState& st = sys_.state(p);
  st.status = Status::Leader;
  st.terminated = true;
  flood_started_ = true;
  flooded_[static_cast<std::size_t>(p)] = 1;
}

void EkLeRun::join_contest(int v) {
  Agent& a = agents_[static_cast<std::size_t>(v)];
  a.role = Role::CoCandidate;
  ek_counters().contest.inc();
  obs_zoo(events, v, "co_candidate");
  Contestant c;
  c.vnode = v;
  const ParticleId p = a.particle;
  if (claim_[static_cast<std::size_t>(p)] < 0) {
    claim_[static_cast<std::size_t>(p)] = static_cast<std::int32_t>(contestants_.size());
    ++claimed_total_;
    last_claimed_ = p;
    ek_counters().claims.inc();
    c.frontier.push_back(p);
  }
  // else: the seed point is already conquered (a twin agent on the same
  // particle, or a late joiner overrun by an earlier territory) — this
  // co-candidate starts eliminated.
  contestants_.push_back(std::move(c));
}

void EkLeRun::step_contest() {
  if (contestants_.empty() || flood_started_) return;
  for (std::size_t i = 0; i < contestants_.size(); ++i) {
    Contestant& c = contestants_[i];
    if (c.frontier.empty()) continue;
    ++activations_;
    std::vector<ParticleId> next;
    for (const ParticleId p : c.frontier) {
      const grid::Node at = sys_.body(p).head;
      for (int d = 0; d < grid::kDirCount; ++d) {
        const ParticleId q = sys_.particle_at(grid::neighbor(at, grid::dir_from_index(d)));
        if (q == kNoParticle || claim_[static_cast<std::size_t>(q)] >= 0) continue;
        claim_[static_cast<std::size_t>(q)] = static_cast<std::int32_t>(i);
        ++claimed_total_;
        last_claimed_ = q;
        ek_counters().claims.inc();
        next.push_back(q);
      }
    }
    c.frontier = std::move(next);
  }
  if (claimed_total_ == sys_.particle_count()) {
    // The interior is exhausted: the occupant of the last conquered point
    // wins — the deterministic "last point standing" the canonical
    // activation order serializes (EK's scheduler-driven symmetry break).
    for (const Contestant& c : contestants_) {
      finish_agent(c.vnode);
    }
    become_leader(last_claimed_);
  }
}

void EkLeRun::act(int v) {
  Agent& a = agents_[static_cast<std::size_t>(v)];
  if (a.role != Role::Head || a.busy) return;
  ++activations_;
  EkCounters& tc = ek_counters();
  const std::int64_t cur = ring_changes_[static_cast<std::size_t>(a.ring)];
  if (!a.compared || a.cmp_epoch != cur) {
    // The ring changed since my last comparison (or I never compared):
    // measure my segment against the successor's, lexicographically.
    tc.cmp.inc();
    EToken t;
    t.kind = EKind::Cmp;
    t.mode = EMode::Collect;
    t.init = v;
    t.epoch = cur;
    t.labels.push_back(a.count);
    t.fresh = true;
    a.compared = true;
    a.cmp_epoch = cur;
    a.busy = true;
    a.cw.push_back(std::move(t));
  } else {
    // Quiescent since the last comparison: run the full-circle stability
    // census (head count + boundary-count sum, stamped against changes).
    tc.census.inc();
    EToken t;
    t.kind = EKind::Census;
    t.mode = EMode::Walk;
    t.init = v;
    t.epoch = cur;
    t.count_sum = a.count;
    t.fresh = true;
    a.busy = true;
    a.cw.push_back(std::move(t));
  }
}

void EkLeRun::handle_verdict(int v, const EToken& t) {
  Agent& a = agents_[static_cast<std::size_t>(v)];
  if (a.role != Role::Head) return;  // demoted while the token was in flight
  a.busy = false;
  // Epoch discipline: only the verdict of the comparison launched under my
  // current cmp_epoch may trigger an absorption (a.busy makes a mismatch
  // unreachable today; the check keeps that a local property).
  if (t.epoch != a.cmp_epoch) return;
  if (t.verdict == -1) {
    // Strictly smaller: absorb the successor segment. The demotion bumps
    // the ring's change epoch, which re-arms my next comparison.
    EToken ab;
    ab.kind = EKind::Absorb;
    ab.mode = EMode::Walk;
    ab.init = v;
    ab.fresh = true;
    a.cw.push_back(std::move(ab));
  }
  // verdict 0 / +1: no action; the next activation runs the census (equal
  // all around a cycle of >= comparisons forces equality, i.e. stability).
}

void EkLeRun::finish_census(int v, const EToken& t) {
  Agent& a = agents_[static_cast<std::size_t>(v)];
  if (a.role != Role::Head) return;
  a.busy = false;
  if (t.epoch != ring_changes_[static_cast<std::size_t>(a.ring)]) return;  // stale epoch
  PM_CHECK_MSG(t.count_sum == 6 || t.count_sum == -6,
               "census sum " << t.count_sum << " (Observation 4 violated)");
  const bool outer = t.count_sum > 0;
  if (t.heads_seen == 0) {
    // Sole surviving head on a quiescent ring: the ring is decided.
    if (outer) {
      become_leader(a.particle);
    } else {
      for (const int u : rings_.rings()[static_cast<std::size_t>(a.ring)]) {
        Agent& b = agents_[static_cast<std::size_t>(u)];
        b.role = Role::Finished;
        b.busy = false;
        b.cw.clear();
        b.ccw.clear();
      }
      for (const int u : rings_.rings()[static_cast<std::size_t>(a.ring)]) {
        refresh_particle_status(agents_[static_cast<std::size_t>(u)].particle);
      }
    }
    return;
  }
  // k >= 2 heads with all comparisons equal: the boundary is rotationally
  // symmetric and no ring-local deterministic tie-break exists. Inner-ring
  // heads simply retire; outer-ring heads take the contest inside.
  if (outer) {
    join_contest(v);
  } else {
    finish_agent(v);
  }
}

void EkLeRun::receive_cw(int to, EToken t) {
  ++activations_;
  ek_counters().hops.inc();
  Agent& a = agents_[static_cast<std::size_t>(to)];
  auto forward = [&] {
    t.fresh = true;
    a.cw.push_back(std::move(t));
  };
  switch (t.kind) {
    case EKind::Cmp: {
      if (t.mode == EMode::Collect) {
        if (head_like(to) || to == t.init) {
          t.mode = EMode::Compare;
          t.pos = 0;
          // fall through to the comparison step below with this head's
          // label as the successor string's first element
        } else {
          t.labels.push_back(a.count);
          forward();
          break;
        }
      } else if (t.mode == EMode::Return) {
        if (to == t.init) {
          handle_verdict(to, t);
        } else {
          PM_CHECK_MSG(false, "Cmp return token travelling clockwise");
        }
        break;
      } else if (head_like(to) || to == t.init) {
        // Compare mode reached the head after the successor: end of the
        // successor string. Undecided means one string is a prefix of the
        // other (or they are equal).
        t.verdict = (t.pos == t.labels.size()) ? 0 : +1;
        t.mode = EMode::Return;
        t.fresh = true;
        a.ccw.push_back(std::move(t));
        break;
      }
      // One comparison step against this agent's label.
      const std::int8_t e = a.count;
      if (t.pos >= t.labels.size()) {
        t.verdict = -1;  // my string is a proper prefix: strictly smaller
      } else if (e < t.labels[t.pos]) {
        t.verdict = +1;  // successor string is smaller
      } else if (e > t.labels[t.pos]) {
        t.verdict = -1;
      } else {
        ++t.pos;
      }
      if (t.verdict != 0) {
        t.mode = EMode::Return;
        t.fresh = true;
        a.ccw.push_back(std::move(t));
      } else {
        forward();
      }
      break;
    }
    case EKind::Absorb: {
      if (a.role == Role::Demoted) {
        forward();
        break;
      }
      // First head-like agent clockwise: the absorption target. Only a
      // still-valid issuer may demote a still-plain head — this is what
      // makes a cycle of simultaneous absorptions unable to empty a ring.
      if (to != t.init && a.role == Role::Head &&
          agents_[static_cast<std::size_t>(t.init)].role == Role::Head) {
        demote(to);
      }
      break;  // CoCandidate / Finished target, stale issuer, or self: drop
    }
    case EKind::Census: {
      if (to == t.init) {
        finish_census(to, t);
      } else {
        if (head_like(to)) ++t.heads_seen;
        t.count_sum += a.count;
        forward();
      }
      break;
    }
  }
}

void EkLeRun::receive_ccw(int to, EToken t) {
  ++activations_;
  ek_counters().hops.inc();
  Agent& a = agents_[static_cast<std::size_t>(to)];
  PM_CHECK_MSG(t.kind == EKind::Cmp && t.mode == EMode::Return,
               "only Cmp verdicts travel counter-clockwise");
  if (t.init == to) {
    handle_verdict(to, t);
  } else {
    t.fresh = true;
    a.ccw.push_back(std::move(t));
  }
}

void EkLeRun::move_tokens() {
  for (int v = 0; v < static_cast<int>(agents_.size()); ++v) {
    Agent& a = agents_[static_cast<std::size_t>(v)];
    if (!a.cw.empty() && !a.cw.front().fresh) {
      EToken t = std::move(a.cw.front());
      a.cw.pop_front();
      receive_cw(rings_.cw_succ(v), std::move(t));
    }
    if (!a.ccw.empty() && !a.ccw.front().fresh) {
      EToken t = std::move(a.ccw.front());
      a.ccw.pop_front();
      receive_ccw(rings_.cw_pred(v), std::move(t));
    }
  }
}

void EkLeRun::step_flood() {
  flood_next_.assign(flooded_.size(), 0);
  bool all = true;
  for (ParticleId p = 0; p < sys_.particle_count(); ++p) {
    if (flooded_[static_cast<std::size_t>(p)]) continue;
    const grid::Node at = sys_.body(p).head;
    bool nbr_flooded = false;
    for (int d = 0; d < grid::kDirCount; ++d) {
      const ParticleId q = sys_.particle_at(grid::neighbor(at, grid::dir_from_index(d)));
      if (q != kNoParticle && flooded_[static_cast<std::size_t>(q)]) nbr_flooded = true;
    }
    if (nbr_flooded) {
      flood_next_[static_cast<std::size_t>(p)] = 1;
    } else {
      all = false;
    }
  }
  for (ParticleId p = 0; p < sys_.particle_count(); ++p) {
    if (!flood_next_[static_cast<std::size_t>(p)]) continue;
    flooded_[static_cast<std::size_t>(p)] = 1;
    core::DleState& st = sys_.state(p);
    if (st.status != Status::Leader) st.status = Status::Follower;
    st.terminated = true;
  }
  if (all) done_ = true;
}

bool EkLeRun::step_round() {
  if (done_) return true;
  ++rounds_;
  if (flood_started_) {
    step_flood();
    return done_;
  }
  for (Agent& a : agents_) {
    for (EToken& t : a.cw) t.fresh = false;
    for (EToken& t : a.ccw) t.fresh = false;
  }
  for (int v = 0; v < static_cast<int>(agents_.size()); ++v) act(v);
  move_tokens();
  step_contest();
  return done_;
}

namespace {

void save_ek_token(Snapshot& snap, const EToken& t) {
  snap.put(static_cast<std::uint64_t>(t.kind));
  snap.put(static_cast<std::uint64_t>(t.mode));
  snap.put_i(t.init);
  snap.put_i(t.verdict);
  snap.put_i(t.heads_seen);
  snap.put_i(t.count_sum);
  snap.put_i(t.epoch);
  snap.put(t.pos);
  snap.put(t.labels.size());
  for (const std::int8_t l : t.labels) snap.put_i(l);
  snap.put(t.fresh ? 1 : 0);
}

EToken load_ek_token(const Snapshot& snap) {
  EToken t;
  t.kind = static_cast<EKind>(snap.get());
  t.mode = static_cast<EMode>(snap.get());
  t.init = static_cast<std::int32_t>(snap.get_i());
  t.verdict = static_cast<std::int32_t>(snap.get_i());
  t.heads_seen = static_cast<std::int32_t>(snap.get_i());
  t.count_sum = static_cast<std::int32_t>(snap.get_i());
  t.epoch = snap.get_i();
  t.pos = static_cast<std::uint32_t>(snap.get());
  const std::size_t nl = snap.get();
  t.labels.reserve(nl);
  for (std::size_t i = 0; i < nl; ++i) t.labels.push_back(static_cast<std::int8_t>(snap.get_i()));
  t.fresh = snap.get() != 0;
  return t;
}

}  // namespace

void EkLeRun::save(Snapshot& snap) const {
  snap.put_mark(kSnapZoo);
  snap.put(kZooConfigEk);
  snap.put_i(rounds_);
  snap.put_i(activations_);
  snap.put(done_ ? 1 : 0);
  snap.put(flood_started_ ? 1 : 0);
  snap.put_i(leader_);
  snap.put(flooded_.size());
  for (const char f : flooded_) snap.put(static_cast<std::uint64_t>(f));
  snap.put(ring_changes_.size());
  for (const std::int64_t c : ring_changes_) snap.put_i(c);
  snap.put(claim_.size());
  for (const std::int32_t c : claim_) snap.put_i(c);
  snap.put_i(claimed_total_);
  snap.put_i(last_claimed_);
  snap.put(contestants_.size());
  for (const Contestant& c : contestants_) {
    snap.put_i(c.vnode);
    snap.put(c.frontier.size());
    for (const ParticleId p : c.frontier) snap.put_i(p);
  }
  snap.put(agents_.size());
  for (const Agent& a : agents_) {
    snap.put(static_cast<std::uint64_t>(a.role));
    snap.put(a.busy ? 1 : 0);
    snap.put(a.compared ? 1 : 0);
    snap.put_i(a.cmp_epoch);
    snap.put(a.cw.size());
    for (const EToken& t : a.cw) save_ek_token(snap, t);
    snap.put(a.ccw.size());
    for (const EToken& t : a.ccw) save_ek_token(snap, t);
  }
}

void EkLeRun::restore(const Snapshot& snap) {
  snap.expect_mark(kSnapZoo);
  PM_CHECK_MSG(snap.get() == kZooConfigEk, "zoo snapshot protocol mismatch");
  rounds_ = snap.get_i();
  activations_ = snap.get_i();
  done_ = snap.get() != 0;
  flood_started_ = snap.get() != 0;
  leader_ = static_cast<ParticleId>(snap.get_i());
  PM_CHECK_MSG(snap.get() == flooded_.size(), "zoo snapshot particle count mismatch");
  for (char& f : flooded_) f = static_cast<char>(snap.get());
  PM_CHECK_MSG(snap.get() == ring_changes_.size(), "zoo snapshot ring count mismatch");
  for (std::int64_t& c : ring_changes_) c = snap.get_i();
  PM_CHECK_MSG(snap.get() == claim_.size(), "zoo snapshot claim size mismatch");
  for (std::int32_t& c : claim_) c = static_cast<std::int32_t>(snap.get_i());
  claimed_total_ = static_cast<int>(snap.get_i());
  last_claimed_ = static_cast<ParticleId>(snap.get_i());
  contestants_.clear();
  const std::size_t nc = snap.get();
  for (std::size_t i = 0; i < nc; ++i) {
    Contestant c;
    c.vnode = static_cast<int>(snap.get_i());
    const std::size_t nf = snap.get();
    for (std::size_t j = 0; j < nf; ++j) {
      c.frontier.push_back(static_cast<ParticleId>(snap.get_i()));
    }
    contestants_.push_back(std::move(c));
  }
  PM_CHECK_MSG(snap.get() == agents_.size(), "zoo snapshot agent count mismatch");
  for (Agent& a : agents_) {
    a.role = static_cast<Role>(snap.get());
    a.busy = snap.get() != 0;
    a.compared = snap.get() != 0;
    a.cmp_epoch = snap.get_i();
    a.cw.clear();
    a.ccw.clear();
    const std::size_t ncw = snap.get();
    for (std::size_t i = 0; i < ncw; ++i) a.cw.push_back(load_ek_token(snap));
    const std::size_t nccw = snap.get();
    for (std::size_t i = 0; i < nccw; ++i) a.ccw.push_back(load_ek_token(snap));
  }
}

// === Stage adapters ========================================================

void ZooStageBase::init(RunContext& ctx) {
  ctx_ = &ctx;
  t0_ = WallClock::now();
  LeSystem& sys = ctx.system();
  if (sys.particle_count() <= 1) {
    // A lone particle has no boundary ring: it simply leads (the same
    // shortcut the elect_leader glue applies around OBD).
    PM_CHECK(sys.particle_count() == 1);
    sys.state(0).status = Status::Leader;
    sys.state(0).terminated = true;
    ctx.leader = 0;
    ctx.leader_node = sys.body(0).head;
    status_ = StageStatus::Succeeded;
    note_rounds(0);
    return;
  }
  make_engine(ctx);
  status_ = StageStatus::Running;
}

void ZooStageBase::finish() {
  const ParticleId leader = engine_leader();
  if (leader != kNoParticle) {
    ctx_->leader = leader;
    ctx_->leader_node = ctx_->system().body(leader).head;
    status_ = StageStatus::Succeeded;
    note_rounds(metrics_.rounds);
  } else {
    status_ = StageStatus::Failed;
  }
}

bool ZooStageBase::step_round() {
  if (done()) return true;
  // Budget check before the round, like ObdStage: an exhausted budget
  // executes nothing.
  if (engine_rounds() >= ctx_->max_rounds) {
    status_ = StageStatus::Failed;
    metrics_.wall_ms = ms_since(t0_);
    return true;
  }
  const bool fin = engine_step();
  metrics_.rounds = engine_rounds();
  metrics_.activations = engine_activations();
  if (fin) finish();
  if (done()) metrics_.wall_ms = ms_since(t0_);
  return done();
}

void ZooStageBase::state_save(Snapshot& snap) const { engine_save(snap); }

void ZooStageBase::state_restore(RunContext& ctx, const Snapshot& snap) {
  ctx_ = &ctx;
  t0_ = WallClock::now();
  make_engine(ctx);
  engine_restore(snap);
}

DaymudeLeStage::DaymudeLeStage() = default;
DaymudeLeStage::~DaymudeLeStage() = default;

void DaymudeLeStage::make_engine(RunContext& ctx) {
  // Coin flips are scheduling-class randomness: seeded from the policy's
  // schedule seed, so the unified SeedPolicy covers the zoo unchanged.
  run_ = std::make_unique<DaymudeLeRun>(ctx.system(), ctx.seeds.schedule_seed());
  run_->events = ctx.events;
}

long DaymudeLeStage::engine_rounds() const { return run_->rounds(); }
long long DaymudeLeStage::engine_activations() const { return run_->activations(); }
bool DaymudeLeStage::engine_step() { return run_->step_round(); }
ParticleId DaymudeLeStage::engine_leader() const { return run_->leader(); }
void DaymudeLeStage::engine_save(Snapshot& snap) const { run_->save(snap); }
void DaymudeLeStage::engine_restore(const Snapshot& snap) { run_->restore(snap); }

void DaymudeLeStage::note_rounds(long rounds) const {
  static telemetry::Histogram h("zoo.daymude.rounds");
  h.observe(static_cast<std::uint64_t>(rounds));
}

EkLeStage::EkLeStage() = default;
EkLeStage::~EkLeStage() = default;

void EkLeStage::make_engine(RunContext& ctx) {
  run_ = std::make_unique<EkLeRun>(ctx.system());
  run_->events = ctx.events;
}

long EkLeStage::engine_rounds() const { return run_->rounds(); }
long long EkLeStage::engine_activations() const { return run_->activations(); }
bool EkLeStage::engine_step() { return run_->step_round(); }
ParticleId EkLeStage::engine_leader() const { return run_->leader(); }
void EkLeStage::engine_save(Snapshot& snap) const { run_->save(snap); }
void EkLeStage::engine_restore(const Snapshot& snap) { run_->restore(snap); }

void EkLeStage::note_rounds(long rounds) const {
  static telemetry::Histogram h("zoo.ek.rounds");
  h.observe(static_cast<std::uint64_t>(rounds));
}

}  // namespace pm::zoo
