// Full leader-election pipeline (paper Table 1, last two rows):
//   OBD (O(L_out + D))  →  DLE (O(D_A))  →  Collect (O(D_G)).
//
// With `use_boundary_oracle = true` the OBD stage is replaced by the
// initially-known-outer-boundary input (the paper's first variant, total
// O(D_A) + reconnection); otherwise Primitive OBD computes that input and
// the total is O(L_out + D).
//
// elect_leader is a convenience wrapper over pipeline::Pipeline::standard
// (pipeline/pipeline.h), which is the composable form of the same run:
// per-stage stepping, observers, and checkpoint/resume.
#pragma once

#include "amoebot/scheduler.h"
#include "core/dle/dle.h"
#include "grid/shape.h"

namespace pm::obs {
class Recorder;
}

namespace pm::core {

struct PipelineOptions {
  bool use_boundary_oracle = false;  // skip OBD, use the geometric oracle
  bool reconnect = true;             // run Collect after DLE
  bool connected_pull = false;       // DLE ablation variant
  amoebot::Order order = amoebot::Order::RandomPerm;
  std::uint64_t seed = 1;
  long max_rounds = 8'000'000;
  amoebot::OccupancyMode occupancy = amoebot::kDefaultOccupancy;
  // 0 = sequential Engine; >= 1 = exec::ParallelEngine with that many
  // threads for the DLE stage (bit-for-bit identical results either way;
  // the round-synchronous OBD/Collect stages are unaffected).
  int threads = 0;
  // Optional protocol event recorder (src/obs); attached to the pipeline's
  // run context (obs::attach), so the stream covers all three stages.
  obs::Recorder* events = nullptr;
};

struct PipelineResult {
  long obd_rounds = 0;
  long dle_rounds = 0;
  long collect_rounds = 0;
  bool completed = false;
  amoebot::ParticleId leader = amoebot::kNoParticle;

  // Per-phase metrics (wall time per stage; activation/movement counts and
  // the peak dense-occupancy extent come from the DLE Engine run).
  double obd_ms = 0.0;      // pm-lint: allow(pm-float-protocol) wall telemetry; --no-wall drops it from BENCH bytes
  double dle_ms = 0.0;      // pm-lint: allow(pm-float-protocol) wall telemetry; --no-wall drops it from BENCH bytes
  double collect_ms = 0.0;  // pm-lint: allow(pm-float-protocol) wall telemetry; --no-wall drops it from BENCH bytes
  long long dle_activations = 0;
  long long moves = 0;  // movement ops across all stages
  long long peak_occupancy_cells = 0;

  [[nodiscard]] long total_rounds() const {
    return obd_rounds + dle_rounds + collect_rounds;
  }
};

// Runs the full pipeline on a fresh particle system built from `initial`.
// On success the system is connected, contracted, and has a unique leader.
PipelineResult elect_leader(const grid::Shape& initial, const PipelineOptions& opts);

// Same, but operating on a caller-provided system (as built by
// Dle::make_system; OBD re-derives all boundary information from the
// system's own configuration).
PipelineResult elect_leader(amoebot::System<DleState>& sys, const PipelineOptions& opts);

}  // namespace pm::core
