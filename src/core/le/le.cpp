#include "core/le/le.h"

#include "core/collect/collect.h"
#include "core/obd/obd.h"

namespace pm::core {

using amoebot::ParticleId;
using amoebot::System;

PipelineResult elect_leader(System<DleState>& sys, const grid::Shape& initial,
                            const PipelineOptions& opts) {
  PipelineResult res;

  // --- stage 1: boundary information ---
  if (!opts.use_boundary_oracle && sys.particle_count() > 1) {
    ObdRun obd(sys);
    const ObdRun::Result ores = obd.run(opts.max_rounds);
    res.obd_rounds = ores.rounds;
    if (!ores.completed) return res;
    for (ParticleId p = 0; p < sys.particle_count(); ++p) {
      DleState& st = sys.state(p);
      st.outer = obd.outer_ports(p);
      for (int i = 0; i < 6; ++i) {
        st.eligible[static_cast<std::size_t>(i)] = !st.outer[static_cast<std::size_t>(i)];
      }
    }
  }
  // (with the oracle, make_system already initialized outer/eligible)

  // --- stage 2: DLE ---
  Dle dle(Dle::Options{.connected_pull = opts.connected_pull});
  const auto dres = amoebot::run(sys, dle, {opts.order, opts.seed, opts.max_rounds});
  res.dle_rounds = dres.rounds;
  if (!dres.completed) return res;
  const ElectionOutcome outcome = election_outcome(sys);
  if (outcome.leaders != 1) return res;
  res.leader = outcome.leader;

  // --- stage 3: reconnection ---
  if (opts.reconnect && !opts.connected_pull) {
    CollectRun collect(sys, outcome.leader);
    const CollectRun::Result cres = collect.run(opts.max_rounds);
    res.collect_rounds = cres.rounds;
    if (!cres.completed) return res;
  }
  res.completed = true;
  return res;
}

PipelineResult elect_leader(const grid::Shape& initial, const PipelineOptions& opts) {
  Rng rng(opts.seed);
  auto sys = Dle::make_system(initial, rng);
  return elect_leader(sys, initial, opts);
}

}  // namespace pm::core
