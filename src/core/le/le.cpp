#include "core/le/le.h"

#include <utility>

#include "obs/obs.h"
#include "pipeline/pipeline.h"

namespace pm::core {

using amoebot::System;

// The stage composition and inter-stage glue live in pm::pipeline now; this
// entry point keeps the original one-call API (and its exact observable
// behavior) as a thin wrapper over Pipeline::standard.
PipelineResult elect_leader(System<DleState>& sys, const PipelineOptions& opts) {
  pipeline::RunContext ctx;
  ctx.seeds = pipeline::SeedPolicy::unified(opts.seed);
  ctx.order = opts.order;
  ctx.occupancy = opts.occupancy;
  ctx.threads = opts.threads;
  ctx.max_rounds = opts.max_rounds;
  ctx.sys = &sys;  // operate in place on the caller's system
  if (opts.events != nullptr) obs::attach(*opts.events, ctx);
  pipeline::Pipeline pipe = pipeline::Pipeline::standard(
      std::move(ctx), {.use_boundary_oracle = opts.use_boundary_oracle,
                       .reconnect = opts.reconnect,
                       .connected_pull = opts.connected_pull});
  const pipeline::PipelineOutcome out = pipe.run();

  PipelineResult res;
  for (const pipeline::StageReport& s : out.stages) {
    switch (s.kind) {
      case pipeline::StageKind::Obd:
        res.obd_rounds = s.metrics.rounds;
        res.obd_ms = s.metrics.wall_ms;
        break;
      case pipeline::StageKind::Dle:
        res.dle_rounds = s.metrics.rounds;
        res.dle_ms = s.metrics.wall_ms;
        res.dle_activations = s.metrics.activations;
        break;
      case pipeline::StageKind::Collect:
        res.collect_rounds = s.metrics.rounds;
        res.collect_ms = s.metrics.wall_ms;
        break;
      case pipeline::StageKind::Baseline:
      case pipeline::StageKind::Zoo:
        break;  // never part of the standard composition
    }
  }
  res.completed = out.completed;
  res.leader = pipe.context().leader;
  res.moves = out.moves;
  res.peak_occupancy_cells = out.peak_occupancy_cells;
  return res;
}

PipelineResult elect_leader(const grid::Shape& initial, const PipelineOptions& opts) {
  Rng rng(opts.seed);
  auto sys = Dle::make_system(initial, rng, opts.occupancy);
  return elect_leader(sys, opts);
}

}  // namespace pm::core
