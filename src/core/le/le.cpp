#include "core/le/le.h"

#include <chrono>

#include "core/collect/collect.h"
#include "core/obd/obd.h"
#include "exec/parallel_engine.h"
#include "util/timing.h"

namespace pm::core {

using amoebot::ParticleId;
using amoebot::System;

PipelineResult elect_leader(System<DleState>& sys, const PipelineOptions& opts) {
  PipelineResult res;
  const long long moves0 = sys.moves();
  auto finalize = [&](PipelineResult& r) -> PipelineResult& {
    r.moves = sys.moves() - moves0;
    r.peak_occupancy_cells = sys.peak_occupancy_cells();
    return r;
  };

  // --- stage 1: boundary information ---
  if (!opts.use_boundary_oracle && sys.particle_count() > 1) {
    const auto t0 = WallClock::now();
    ObdRun obd(sys);
    const ObdRun::Result ores = obd.run(opts.max_rounds);
    res.obd_rounds = ores.rounds;
    res.obd_ms = ms_since(t0);
    if (!ores.completed) return finalize(res);
    for (ParticleId p = 0; p < sys.particle_count(); ++p) {
      DleState& st = sys.state(p);
      st.outer = obd.outer_ports(p);
      for (int i = 0; i < 6; ++i) {
        st.eligible[static_cast<std::size_t>(i)] = !st.outer[static_cast<std::size_t>(i)];
      }
    }
  }
  // (with the oracle, make_system already initialized outer/eligible)

  // --- stage 2: DLE ---
  Dle dle(Dle::Options{.connected_pull = opts.connected_pull});
  const amoebot::RunResult dres =
      opts.threads > 0
          ? exec::run_parallel(sys, dle,
                               {opts.order, opts.seed, opts.max_rounds, opts.threads})
          : amoebot::run(sys, dle, {opts.order, opts.seed, opts.max_rounds});
  res.dle_rounds = dres.rounds;
  res.dle_ms = dres.wall_ms;
  res.dle_activations = dres.activations;
  if (!dres.completed) return finalize(res);
  const ElectionOutcome outcome = election_outcome(sys);
  if (outcome.leaders != 1) return finalize(res);
  res.leader = outcome.leader;

  // --- stage 3: reconnection ---
  if (opts.reconnect && !opts.connected_pull) {
    const auto t0 = WallClock::now();
    CollectRun collect(sys, outcome.leader);
    const CollectRun::Result cres = collect.run(opts.max_rounds);
    res.collect_rounds = cres.rounds;
    res.collect_ms = ms_since(t0);
    if (!cres.completed) return finalize(res);
  }
  res.completed = true;
  return finalize(res);
}

PipelineResult elect_leader(const grid::Shape& initial, const PipelineOptions& opts) {
  Rng rng(opts.seed);
  auto sys = Dle::make_system(initial, rng, opts.occupancy);
  return elect_leader(sys, opts);
}

}  // namespace pm::core
