// Algorithm Collect — reconnection after DLE (paper §4.3).
//
// After Algorithm DLE the particle system may be disconnected, but Lemma 19
// guarantees a contracted particle at every grid distance 0..ε_G(l) from the
// leader's final point l (the "breadcrumbs"). Collect gathers all particles
// in doubling phases: a stem of k = 2^{i-1} particles
//   (1) moves k points outward along the phase ray        (primitive OMP),
//   (2) rotates once fully around l like a fan blade,
//       sweeping the whole annulus of radii k..2k-1 and
//       collecting every particle it touches              (primitive PRP ×6),
//   (3) moves back to l, reabsorbing particles left behind
//       and doubling its size from the newly collected    (primitive SDP).
// A phase that collects nothing terminates the algorithm with the whole
// system connected (Lemma 20); total runtime O(D_G) rounds (Theorem 23).
//
// Implementation note (documented substitution, DESIGN.md §4): Collect is
// realized as a *round-synchronous engine* that compiles the paper's token
// protocols into per-round particle operations. All movement goes through
// the model-enforcing SystemCore API (expand / contract / handover, at most
// one movement per particle per round); virtual particles are represented
// as slot pairs of two contracted particles exactly as in §4.3.3; the wave
// disciplines (expansion permits, move messages, staggered rotation) are
// enforced with per-slot operation counters, so every primitive completes
// in O(k) rounds as in Lemmas 24/26/27; the Detect control primitive is
// charged explicitly as stem-length idle rounds.
#pragma once

#include <algorithm>
#include <functional>
#include <vector>

#include "amoebot/system.h"
#include "util/snapshot.h"

namespace pm::obs {
class Recorder;
}

namespace pm::core {

// A double-ended sequence of particle ids on one flat allocation: pushes and
// pops at both ends in amortized O(1) via a head offset with geometric front
// slack, replacing the std::deque chunk lists the Collect engine's branch
// chains used to be built from (ROADMAP "Collect at scale": one contiguous
// buffer per chain, index/iterate with no per-chunk indirection).
class FlatChain {
 public:
  using value_type = amoebot::ParticleId;
  using const_iterator = std::vector<value_type>::const_iterator;

  [[nodiscard]] bool empty() const { return head_ == buf_.size(); }
  [[nodiscard]] std::size_t size() const { return buf_.size() - head_; }
  [[nodiscard]] value_type operator[](std::size_t i) const { return buf_[head_ + i]; }
  [[nodiscard]] value_type front() const { return buf_[head_]; }
  [[nodiscard]] value_type back() const { return buf_.back(); }
  [[nodiscard]] const_iterator begin() const {
    return buf_.begin() + static_cast<std::ptrdiff_t>(head_);
  }
  [[nodiscard]] const_iterator end() const { return buf_.end(); }

  void push_back(value_type p) { buf_.push_back(p); }
  void push_front(value_type p) {
    if (head_ == 0) {
      // Relocate once with slack proportional to the current size, so a
      // run of push_fronts costs amortized O(1) like push_back.
      const std::size_t slack = std::max<std::size_t>(4, size());
      std::vector<value_type> next(slack + buf_.size());
      std::copy(buf_.begin(), buf_.end(), next.begin() + static_cast<std::ptrdiff_t>(slack));
      buf_ = std::move(next);
      head_ = slack;
    }
    buf_[--head_] = p;
  }
  void pop_front() {
    ++head_;
    if (empty()) clear();
  }
  void pop_back() { buf_.pop_back(); }
  void clear() {
    buf_.clear();
    head_ = 0;
  }

 private:
  std::vector<value_type> buf_;
  std::size_t head_ = 0;  // buf_[head_..) is the live range
};

class CollectRun {
 public:
  struct Result {
    long rounds = 0;
    int phases = 0;
    bool completed = false;
    int collected = 0;  // particles collected over the whole run
  };

  // `leader` must be contracted; all other particles must be contracted
  // (DLE's final configuration satisfies both).
  CollectRun(amoebot::SystemCore& sys, amoebot::ParticleId leader);

  // Checkpoint/resume: reconstructs a mid-run engine from a snapshot taken
  // by save() (the system must already hold the snapshotted configuration).
  CollectRun(amoebot::SystemCore& sys, const Snapshot& snap);
  void save(Snapshot& snap) const;

  // Runs to termination (or until max_rounds). On success the particle
  // system is connected and every particle has been collected.
  Result run(long max_rounds = 4'000'000);

  // Advances exactly one asynchronous round; returns true when terminated.
  bool step_round();

  [[nodiscard]] long rounds() const { return rounds_; }
  [[nodiscard]] int phase_count() const { return phases_; }
  [[nodiscard]] int stem_size() const { return static_cast<int>(stem_.size()); }

  // Observation hook: invoked at every stage transition (for the figure
  // reproduction examples and tests).
  std::function<void(const char* stage, int phase_k)> on_stage;

  // Structured protocol event recorder (src/obs); null = off. Single-
  // threaded engine: ordered lane, same sites as on_stage. Not serialized:
  // re-set after restore (CollectStage does).
  obs::Recorder* events = nullptr;

 private:
  enum class Stage {
    OmpExpand,    // step 1, first part: all slots expand outward
    OmpContract,  // step 1, second part: all slots contract, net +k shift
    PrpMove,      // step 2, part (1): k moves in v_rot
    PrpStagger,   // step 2, part (2): slot i moves i more in v_rot
    SdpExpand,    // step 3, part 1: expand inward toward l
    SdpCompact,   // step 3, parts 2-3: dissolve pairs, absorb, compact
    Done,
  };

  // A stem role: one particle, or a virtual pair of two contracted
  // particles (tail `body`, head `virt`) simulating one expanded particle.
  struct Slot {
    amoebot::ParticleId body = amoebot::kNoParticle;
    amoebot::ParticleId virt = amoebot::kNoParticle;

    [[nodiscard]] bool is_pair() const { return virt != amoebot::kNoParticle; }
  };

  using Chain = FlatChain;  // branch, root first

  [[nodiscard]] bool slot_expanded(const Slot& s) const;
  [[nodiscard]] grid::Node slot_head(const Slot& s) const;
  [[nodiscard]] grid::Node slot_tail(const Slot& s) const;

  [[nodiscard]] bool moved(amoebot::ParticleId p) const;
  void mark_moved(amoebot::ParticleId p);

  // True iff v lies on the phase ray {l + j * v_out : j >= 0}.
  [[nodiscard]] bool on_ray(grid::Node v) const;

  // True iff vacating the slot's tail keeps all occupied neighbors of the
  // tail connected to the slot's head.
  [[nodiscard]] bool tail_release_safe(const Slot& s) const;

  // Expands `slot` one step toward `target`; forms a virtual pair when the
  // target is occupied, collecting the occupant. Returns false if blocked.
  bool slot_expand(int i, grid::Node target, bool during_rotation);

  void collect_particle(amoebot::ParticleId q);

  void enter_stage(Stage s);
  void start_phase();

  void round_omp_expand();
  void round_omp_contract();
  void round_prp(bool stagger);
  void round_sdp_expand();
  void round_sdp_compact();
  void round_chains();  // branch caterpillar steps (rotation + compaction)

  [[nodiscard]] bool all_slots_expanded() const;
  [[nodiscard]] bool all_slots_contracted_single() const;

  void assert_phase_end_invariants();

  amoebot::SystemCore& sys_;
  grid::Node l_{};
  grid::Dir vout_ = grid::Dir::E;
  grid::Dir vrot_ = grid::Dir::SW;

  std::vector<Slot> stem_;
  std::vector<Chain> chains_;  // parallel to stem_ (rotation phase)
  // During SDP compaction, branches detach from slot indices (virtual
  // expansions migrate bodies between slots) and are absorbed by geometric
  // adjacency instead.
  std::vector<Chain> loose_;
  std::vector<char> collected_;
  std::vector<char> moved_;

  Stage stage_ = Stage::OmpExpand;
  int k_ = 1;           // stem size at phase start
  int rot_ = 0;         // completed 60° rotations this phase (0..6)
  std::vector<int> ops_;  // per-slot op counters for PRP wave discipline
  long idle_ = 0;       // pending Detect idle rounds
  int newly_ = 0;       // particles collected this phase
  int collected_total_ = 0;

  long rounds_ = 0;
  int phases_ = 0;
};

}  // namespace pm::core
