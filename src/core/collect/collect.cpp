#include "core/collect/collect.h"

#include <algorithm>
#include <array>

#include "grid/coord.h"
#include "obs/obs.h"

namespace pm::core {

using amoebot::kNoParticle;
using amoebot::ParticleId;
using grid::Dir;
using grid::Node;

namespace {

void obs_phase(obs::Recorder* rec, const char* name, int phase_k) {
  if (rec == nullptr) return;
  obs::Event e;
  e.type = obs::Type::CollectPhase;
  e.stage = "collect";
  e.val = phase_k;
  e.note = name;
  rec->emit(std::move(e));
}

}  // namespace

CollectRun::CollectRun(amoebot::SystemCore& sys, ParticleId leader) : sys_(sys) {
  PM_CHECK_MSG(!sys.body(leader).expanded(), "leader must be contracted");
  PM_CHECK_MSG(sys.all_contracted(), "Collect starts from a contracted configuration");
  l_ = sys.body(leader).head;
  collected_.assign(static_cast<std::size_t>(sys.particle_count()), 0);
  collected_[static_cast<std::size_t>(leader)] = 1;
  collected_total_ = 1;
  stem_ = {Slot{leader, kNoParticle}};
  start_phase();
}

bool CollectRun::slot_expanded(const Slot& s) const {
  return s.is_pair() || sys_.body(s.body).expanded();
}

Node CollectRun::slot_head(const Slot& s) const {
  return s.is_pair() ? sys_.body(s.virt).head : sys_.body(s.body).head;
}

Node CollectRun::slot_tail(const Slot& s) const { return sys_.body(s.body).tail; }

bool CollectRun::moved(ParticleId p) const {
  return moved_[static_cast<std::size_t>(p)] != 0;
}

void CollectRun::mark_moved(ParticleId p) { moved_[static_cast<std::size_t>(p)] = 1; }

bool CollectRun::on_ray(Node v) const {
  // v is on {l + j * v_out : j >= 0} iff (v - l) is a non-negative multiple
  // of the unit offset (closed form; this predicate runs on the release hot
  // path every round).
  const Node off = grid::offset(vout_);
  const std::int64_t dx = v.x - l_.x;
  const std::int64_t dy = v.y - l_.y;
  const std::int64_t j = off.x != 0 ? dx / off.x : dy / off.y;
  return j >= 0 && dx == j * off.x && dy == j * off.y;
}

bool CollectRun::tail_release_safe(const Slot& s) const {
  const Node tail = sys_.body(s.body).tail;
  const Node head = sys_.body(s.body).head;
  // Only collected particles are part of the structure being protected;
  // uncollected breadcrumbs adjacent by coincidence are picked up by a
  // later phase's sweep (Lemma 21). At most 6 neighbors: a fixed array
  // keeps this per-round predicate allocation-free in the common
  // nothing-to-watch case.
  std::array<Node, grid::kDirCount> watch;
  std::size_t watch_count = 0;
  for (int d = 0; d < grid::kDirCount; ++d) {
    const Node u = grid::neighbor(tail, grid::dir_from_index(d));
    if (u == head || !sys_.occupied(u)) continue;
    const ParticleId q = sys_.particle_at(u);
    if (collected_[static_cast<std::size_t>(q)]) watch[watch_count++] = u;
  }
  if (watch_count == 0) return true;
  // Flood from the head over occupied nodes, excluding the tail, until all
  // watched neighbors are reached.
  grid::NodeSet seen;
  std::vector<Node> queue{head};
  seen.insert(head);
  std::size_t found = 0;
  for (std::size_t qi = 0; qi < queue.size() && found < watch_count; ++qi) {
    const Node v = queue[qi];
    for (int d = 0; d < grid::kDirCount; ++d) {
      const Node u = grid::neighbor(v, grid::dir_from_index(d));
      if (u == tail || !sys_.occupied(u) || !seen.insert(u).second) continue;
      if (std::find(watch.begin(), watch.begin() + watch_count, u) !=
          watch.begin() + watch_count) {
        ++found;
      }
      queue.push_back(u);
    }
  }
  return found == watch_count;
}

void CollectRun::collect_particle(ParticleId q) {
  if (!collected_[static_cast<std::size_t>(q)]) {
    collected_[static_cast<std::size_t>(q)] = 1;
    ++collected_total_;
    ++newly_;
  }
}

void CollectRun::start_phase() {
  ++phases_;
  k_ = static_cast<int>(stem_.size());
  rot_ = 0;
  // v_rot starts as the clockwise predecessor of v_in (W -> SW) and advances
  // one clockwise step after each 60° rotation (§4.3.3).
  vrot_ = grid::ccw_next(grid::opposite(vout_));
  newly_ = 0;
  chains_.assign(stem_.size(), {});
  ops_.assign(stem_.size(), 0);
  stage_ = Stage::OmpExpand;
  // The constructor runs before the caller can attach on_stage (or events);
  // the first phase's notification is emitted by the first step_round().
  if (phases_ > 1) {
    if (on_stage) on_stage("phase-start", k_);
    obs_phase(events, "phase-start", k_);
  }
}

void CollectRun::enter_stage(Stage s) {
  stage_ = s;
  ops_.assign(stem_.size(), 0);
  // Detect (§4.3.3): the root/leaf verifies that the whole stem finished the
  // previous part by a token walk — charged as stem-length idle rounds.
  idle_ += static_cast<long>(stem_.size());
  const char* name = "";
  switch (s) {
    case Stage::OmpExpand: name = "omp-expand"; break;
    case Stage::OmpContract: name = "omp-contract"; break;
    case Stage::PrpMove: name = "prp-move"; break;
    case Stage::PrpStagger: name = "prp-stagger"; break;
    case Stage::SdpExpand: name = "sdp-expand"; break;
    case Stage::SdpCompact: name = "sdp-compact"; break;
    case Stage::Done: name = "done"; break;
  }
  if (on_stage) on_stage(name, k_);
  obs_phase(events, name, k_);
}

bool CollectRun::all_slots_expanded() const {
  return std::all_of(stem_.begin(), stem_.end(),
                     [&](const Slot& s) { return slot_expanded(s); });
}

bool CollectRun::all_slots_contracted_single() const {
  return std::all_of(stem_.begin(), stem_.end(), [&](const Slot& s) {
    return !s.is_pair() && !sys_.body(s.body).expanded();
  });
}

bool CollectRun::slot_expand(int i, Node target, bool during_rotation) {
  Slot& s = stem_[static_cast<std::size_t>(i)];
  PM_CHECK(!s.is_pair() && !sys_.body(s.body).expanded());
  if (moved(s.body)) return false;
  const ParticleId q = sys_.particle_at(target);
  if (q == kNoParticle) {
    sys_.expand(s.body, target);
    mark_moved(s.body);
    return true;
  }
  if (moved(q)) return false;
  PM_CHECK_MSG(!sys_.body(q).expanded(), "expansion target occupied by an expanded particle");
  // Occupied: virtual expansion (§4.3.3) — q becomes the head of the pair.
  if (during_rotation) {
    // The only structure member the sweep may meet is the back of this
    // slot's own branch (a fully packed ring); everything else must be an
    // uncollected particle or a parked, previously collected one.
    Chain& chain = chains_[static_cast<std::size_t>(i)];
    if (!chain.empty() && q == chain.back()) {
      chain.pop_back();
    }
#ifndef NDEBUG
    // Engine-internal invariant (not a model rule): the sweep may only meet
    // the back of its own branch. The scan is O(stem * branch) per virtual
    // expansion, so it runs in debug builds only.
    else {
      for (std::size_t j = 0; j < stem_.size(); ++j) {
        const Slot& other = stem_[j];
        PM_CHECK_MSG(other.body != q && other.virt != q,
                     "rotation sweep hit a stem member");
        const Chain& c = chains_[j];
        PM_CHECK_MSG(std::find(c.begin(), c.end(), q) == c.end(),
                     "rotation sweep hit a foreign branch member");
      }
    }
#endif
  }
  s.virt = q;
  collect_particle(q);
  mark_moved(s.body);
  mark_moved(q);
  return true;
}

// --- Step 1 part 1: all stem slots expand outward, leaf leading
// (procedure Expansion of Algorithm 1; virtual expansions absorb occupants).
void CollectRun::round_omp_expand() {
  const int n = static_cast<int>(stem_.size());
  for (int i = n - 1; i >= 0; --i) {
    Slot& s = stem_[static_cast<std::size_t>(i)];
    if (s.is_pair() || sys_.body(s.body).expanded()) continue;
    if (i == n - 1) {
      // The leaf pushes into new territory along v_out.
      slot_expand(i, grid::neighbor(sys_.body(s.body).head, vout_), false);
      continue;
    }
    Slot& f = stem_[static_cast<std::size_t>(i + 1)];  // frontward = child
    if (!slot_expanded(f)) continue;
    if (f.is_pair()) {
      // Virtual expansion into the pair's tail: the tail body joins this
      // slot's pair; the child slot becomes the (contracted) head body.
      if (moved(s.body) || moved(f.body)) continue;
      mark_moved(s.body);
      mark_moved(f.body);
      s.virt = f.body;
      f.body = f.virt;
      f.virt = kNoParticle;
    } else {
      if (moved(s.body) || moved(f.body)) continue;
      sys_.handover(s.body, f.body);
      mark_moved(s.body);
      mark_moved(f.body);
    }
  }
}

// --- Step 1 part 2: contraction wave from the root; virtual pairs cascade
// inward and pop out at the root as left-behind particles (Fig 2c).
void CollectRun::round_omp_contract() {
  const int n = static_cast<int>(stem_.size());
  for (int i = 0; i < n; ++i) {
    Slot& s = stem_[static_cast<std::size_t>(i)];
    if (i == 0) {
      if (s.is_pair()) {
        if (moved(s.body) || moved(s.virt)) continue;
        mark_moved(s.body);
        mark_moved(s.virt);
        // Dissolve: the tail body leaves the stem (left behind, parked).
        s.body = s.virt;
        s.virt = kNoParticle;
      } else if (sys_.body(s.body).expanded()) {
        if (moved(s.body)) continue;
        sys_.contract_to_head(s.body);
        mark_moved(s.body);
      }
      continue;
    }
    Slot& par = stem_[static_cast<std::size_t>(i - 1)];
    if (slot_expanded(par)) continue;  // parent must be contracted single
    if (s.is_pair()) {
      if (moved(par.body) || moved(s.body)) continue;
      mark_moved(par.body);
      mark_moved(s.body);
      par.virt = s.body;  // parent virtually expands into the pair's tail
      s.body = s.virt;
      s.virt = kNoParticle;
    } else if (sys_.body(s.body).expanded()) {
      if (moved(par.body) || moved(s.body)) continue;
      sys_.handover(par.body, s.body);
      mark_moved(par.body);
      mark_moved(s.body);
    }
  }
}

// --- Step 2: rotation rounds. `stagger` false = part (1) (k moves in
// v_rot for everyone), true = part (2) (slot i moves i more). The op
// counters enforce the message-wave discipline of Algorithm 2: a slot may
// perform its next (expand | contract) operation only if it stays at most
// one operation behind its parent and never overtakes it — which is exactly
// what keeps the stem connected (Observation 25).
void CollectRun::round_prp(bool stagger) {
  const int n = static_cast<int>(stem_.size());
  auto target_ops = [&](int i) { return 2 * (stagger ? i : k_); };
  for (int i = 0; i < n; ++i) {
    Slot& s = stem_[static_cast<std::size_t>(i)];
    const int t = target_ops(i);
    int& o = ops_[static_cast<std::size_t>(i)];
    if (o >= t) continue;
    const bool parent_ok =
        i == 0 || o < ops_[static_cast<std::size_t>(i - 1)] ||
        ops_[static_cast<std::size_t>(i - 1)] >= target_ops(i - 1);
    const bool child_ok = i == n - 1 || o <= ops_[static_cast<std::size_t>(i + 1)];
    if (!parent_ok || !child_ok) continue;

    if (!slot_expanded(s)) {
      // Expand operation in direction v_rot (may collect an obstacle).
      if (slot_expand(i, grid::neighbor(sys_.body(s.body).head, vrot_), true)) ++o;
      continue;
    }
    // Contract operation.
    Chain& chain = chains_[static_cast<std::size_t>(i)];
    if (s.is_pair()) {
      // Virtual contraction: the displaced tail body becomes the new root
      // of this slot's branch (step (2) of the phase description).
      if (moved(s.body) || moved(s.virt)) continue;
      mark_moved(s.body);
      mark_moved(s.virt);
      chain.push_front(s.body);
      s.body = s.virt;
      s.virt = kNoParticle;
      ++o;
    } else if (!chain.empty()) {
      // Contract through a handover with the branch root, dragging the
      // branch along (Algorithm 2 lines 4-5).
      const ParticleId br = chain.front();
      if (sys_.body(br).expanded() || moved(br) || moved(s.body)) continue;
      sys_.handover(br, s.body);
      mark_moved(br);
      mark_moved(s.body);
      ++o;
    } else {
      if (moved(s.body)) continue;
      sys_.contract_to_head(s.body);
      mark_moved(s.body);
      ++o;
    }
  }
}

// --- Step 3 part 1: expansion toward l, root leading; left-behind
// particles on the ray are absorbed as virtual pairs.
void CollectRun::round_sdp_expand() {
  const int n = static_cast<int>(stem_.size());
  const Dir vin = grid::opposite(vout_);
  for (int i = 0; i < n; ++i) {
    Slot& s = stem_[static_cast<std::size_t>(i)];
    if (s.is_pair() || sys_.body(s.body).expanded()) continue;
    if (i == 0) {
      // The root pushes inward until its head reaches l (k expansions).
      const Node head = sys_.body(s.body).head;
      if (head == l_) continue;
      slot_expand(i, grid::neighbor(head, vin), false);
      continue;
    }
    Slot& f = stem_[static_cast<std::size_t>(i - 1)];  // frontward = parent
    if (!slot_expanded(f)) continue;
    if (f.is_pair()) {
      if (moved(s.body) || moved(f.body)) continue;
      mark_moved(s.body);
      mark_moved(f.body);
      s.virt = f.body;
      f.body = f.virt;
      f.virt = kNoParticle;
    } else {
      if (moved(s.body) || moved(f.body)) continue;
      sys_.handover(s.body, f.body);
      mark_moved(s.body);
      mark_moved(f.body);
    }
  }
}

// --- Step 3 parts 2-3: after pair dissolution (done at stage entry), the
// stem compacts toward l. Expanded members pull mass from outside: first
// from their branch (absorbing newly collected particles into the stem, up
// to the doubling cap), else from their contracted outer neighbor, and the
// leaf releases spare span when nothing remains to absorb.
void CollectRun::round_sdp_compact() {
  const int cap = 2 * k_;
  for (int i = 0; i < static_cast<int>(stem_.size()); ++i) {
    Slot& s = stem_[static_cast<std::size_t>(i)];
    if (s.is_pair() || !sys_.body(s.body).expanded() || moved(s.body)) continue;
    const Node tail = sys_.body(s.body).tail;

    // 1) A branch whose (contracted) front sits next to this slot's tail
    //    hands its front over. If the vacated tail is a ray node and the
    //    doubling cap is not reached, the front joins the stem (absorption,
    //    §4.3.3 SDP part 3) — this keeps every stem body's resting node on
    //    the ray. Otherwise the chain merely slides one step forward so the
    //    slot can contract without stranding the parked branch.
    bool acted = false;
    for (Chain& chain : loose_) {
      if (chain.empty()) continue;
      const ParticleId br = chain.front();
      if (sys_.body(br).expanded() || moved(br)) continue;
      if (!grid::adjacent(sys_.body(br).head, tail)) continue;
      sys_.handover(br, s.body);
      mark_moved(br);
      mark_moved(s.body);
      if (static_cast<int>(stem_.size()) < cap && on_ray(tail)) {
        chain.pop_front();
        stem_.insert(stem_.begin() + i + 1, Slot{br, kNoParticle});
        chains_.insert(chains_.begin() + i + 1, Chain{});
      }
      acted = true;
      break;
    }
    if (acted) return;  // stem indices may have shifted; resume next round

    // 2) Pull mass inward: a contracted stem body adjacent to this slot's
    //    tail and strictly farther from l moves one node toward l. The
    //    strict-decrease requirement makes the compaction monotone (no
    //    mass ever flows back outward), which guarantees termination.
    int pull = -1;
    const int tail_dist = grid::grid_distance(l_, tail);
    for (int j = 0; j < static_cast<int>(stem_.size()); ++j) {
      if (j == i) continue;
      const Slot& o = stem_[static_cast<std::size_t>(j)];
      if (o.is_pair() || sys_.body(o.body).expanded() || moved(o.body)) continue;
      const Node at = sys_.body(o.body).head;
      if (!grid::adjacent(at, tail)) continue;
      if (grid::grid_distance(l_, at) <= tail_dist) continue;
      pull = j;
      break;
    }
    if (pull >= 0) {
      Slot& o = stem_[static_cast<std::size_t>(pull)];
      sys_.handover(o.body, s.body);
      mark_moved(o.body);
      mark_moved(s.body);
      continue;
    }

    // 3) Nothing pullable. Release the tail node if doing so keeps every
    //    occupied neighbor of the tail connected to this slot's head (a
    //    local flood check — the engine equivalent of the careful release
    //    order the paper's token protocol induces). A ray node is released
    //    only from the outer end inward so the stem settles as a compact
    //    prefix of the ray.
    if (on_ray(tail)) {
      bool outermost = true;
      for (const Slot& o : stem_) {
        const auto& b = sys_.body(o.body);
        const int far = std::max(grid::grid_distance(l_, b.head),
                                 grid::grid_distance(l_, b.tail));
        if (o.body != s.body && far >= tail_dist) outermost = false;
        if (o.is_pair() && grid::grid_distance(l_, sys_.body(o.virt).head) >= tail_dist) {
          outermost = false;
        }
      }
      if (!outermost) continue;
    }
    if (tail_release_safe(s)) {
      sys_.contract_to_head(s.body);
      mark_moved(s.body);
    }
  }
  // Loose-branch caterpillar: expanded members contract through handover
  // with their child, the last member contracts into its head.
  for (Chain& chain : loose_) {
    for (std::size_t m = 0; m < chain.size(); ++m) {
      const ParticleId p = chain[m];
      if (!sys_.body(p).expanded() || moved(p)) continue;
      if (m + 1 < chain.size()) {
        const ParticleId child = chain[m + 1];
        if (sys_.body(child).expanded() || moved(child)) continue;
        sys_.handover(child, p);
        mark_moved(child);
        mark_moved(p);
      } else {
        sys_.contract_to_head(p);
        mark_moved(p);
      }
    }
  }
}

// Branch caterpillar steps (Algorithm 2 lines 18-21): an expanded branch
// member contracts through a handover with its (contracted) child, the
// branch leaf contracts into its head.
void CollectRun::round_chains() {
  for (Chain& chain : chains_) {
    for (std::size_t m = 0; m < chain.size(); ++m) {
      const ParticleId p = chain[m];
      if (!sys_.body(p).expanded() || moved(p)) continue;
      if (m + 1 < chain.size()) {
        const ParticleId child = chain[m + 1];
        if (sys_.body(child).expanded() || moved(child)) continue;
        sys_.handover(child, p);
        mark_moved(child);
        mark_moved(p);
      } else {
        sys_.contract_to_head(p);
        mark_moved(p);
      }
    }
  }
}

void CollectRun::assert_phase_end_invariants() {
  // The stem is contracted and occupies the ray nodes 0..|stem|-1 exactly.
  PM_CHECK(all_slots_contracted_single());
  std::vector<char> seen(stem_.size(), 0);
  for (const Slot& s : stem_) {
    const Node v = sys_.body(s.body).head;
    const int j = grid::grid_distance(l_, v);
    PM_CHECK_MSG(j < static_cast<int>(stem_.size()), "stem body off the compact prefix");
    Node expect = l_;
    for (int t = 0; t < j; ++t) expect = grid::neighbor(expect, vout_);
    PM_CHECK_MSG(v == expect, "stem body not on the phase ray");
    PM_CHECK(!seen[static_cast<std::size_t>(j)]);
    seen[static_cast<std::size_t>(j)] = 1;
  }
  // Keep stem order root..leaf aligned with ray distance.
  std::sort(stem_.begin(), stem_.end(), [&](const Slot& a, const Slot& b) {
    return grid::grid_distance(l_, sys_.body(a.body).head) <
           grid::grid_distance(l_, sys_.body(b.body).head);
  });
}

bool CollectRun::step_round() {
  if (stage_ == Stage::Done) return true;
  if (rounds_ == 0) {
    if (on_stage) on_stage("phase-start", k_);
    obs_phase(events, "phase-start", k_);
  }
  ++rounds_;
  if (idle_ > 0) {
    --idle_;
    return false;
  }
  moved_.assign(static_cast<std::size_t>(sys_.particle_count()), 0);

  switch (stage_) {
    case Stage::OmpExpand:
      round_omp_expand();
      if (all_slots_expanded()) enter_stage(Stage::OmpContract);
      break;
    case Stage::OmpContract:
      round_omp_contract();
      if (all_slots_contracted_single()) enter_stage(Stage::PrpMove);
      break;
    case Stage::PrpMove:
    case Stage::PrpStagger: {
      const bool stagger = stage_ == Stage::PrpStagger;
      round_prp(stagger);
      round_chains();
      bool done = true;
      for (std::size_t i = 0; i < stem_.size(); ++i) {
        const int t = 2 * (stagger ? static_cast<int>(i) : k_);
        done = done && ops_[i] >= t;
      }
      for (const Chain& c : chains_) {
        for (const ParticleId p : c) done = done && !sys_.body(p).expanded();
      }
      if (done) {
        PM_CHECK(all_slots_contracted_single());
        if (!stagger) {
          enter_stage(Stage::PrpStagger);
        } else {
          ++rot_;
          vrot_ = grid::cw_next(vrot_);
          enter_stage(rot_ < 6 ? Stage::PrpMove : Stage::SdpExpand);
        }
      }
      break;
    }
    case Stage::SdpExpand:
      round_sdp_expand();
      if (all_slots_expanded()) {
        // Part 2 of SDP: virtual pairs break into two contracted stem
        // members (memory operation; both bodies stay where they are).
        for (std::size_t i = 0; i < stem_.size();) {
          if (!stem_[i].is_pair()) {
            ++i;
            continue;
          }
          const ParticleId inner = stem_[i].virt;
          stem_[i].virt = kNoParticle;
          stem_.insert(stem_.begin() + static_cast<std::ptrdiff_t>(i), Slot{inner, kNoParticle});
          chains_.insert(chains_.begin() + static_cast<std::ptrdiff_t>(i), Chain{});
          i += 2;
        }
        // Branches detach from slot indices for the compaction part: from
        // here on they are matched to stem tails geometrically.
        for (Chain& c : chains_) {
          if (!c.empty()) loose_.push_back(std::move(c));
        }
        chains_.assign(stem_.size(), {});
        enter_stage(Stage::SdpCompact);
      }
      break;
    case Stage::SdpCompact: {
      round_sdp_compact();
      bool settled = all_slots_contracted_single();
      for (const Chain& c : loose_) {
        for (const ParticleId p : c) settled = settled && !sys_.body(p).expanded();
      }
      if (settled) {
        assert_phase_end_invariants();
        loose_.clear();  // unabsorbed branches stay parked where they are
        if (newly_ == 0) {
          stage_ = Stage::Done;
          if (on_stage) on_stage("done", static_cast<int>(stem_.size()));
          obs_phase(events, "done", static_cast<int>(stem_.size()));
        } else {
          start_phase();
        }
      }
      break;
    }
    case Stage::Done:
      break;
  }
  return stage_ == Stage::Done;
}

namespace {

void save_chain(Snapshot& snap, const FlatChain& chain) {
  snap.put(chain.size());
  for (const ParticleId p : chain) snap.put_i(p);
}

FlatChain load_chain(const Snapshot& snap) {
  FlatChain chain;
  for (std::size_t k = snap.get(); k > 0; --k) {
    chain.push_back(static_cast<ParticleId>(snap.get_i()));
  }
  return chain;
}

}  // namespace

void CollectRun::save(Snapshot& snap) const {
  snap.put_mark(kSnapCollect);
  snap.put_i(l_.x);
  snap.put_i(l_.y);
  snap.put(static_cast<std::uint64_t>(grid::index(vout_)));
  snap.put(static_cast<std::uint64_t>(grid::index(vrot_)));
  snap.put(stem_.size());
  for (const Slot& s : stem_) {
    snap.put_i(s.body);
    snap.put_i(s.virt);
  }
  snap.put(chains_.size());
  for (const Chain& c : chains_) save_chain(snap, c);
  snap.put(loose_.size());
  for (const Chain& c : loose_) save_chain(snap, c);
  snap.put(collected_.size());
  for (const char c : collected_) snap.put(static_cast<std::uint64_t>(c));
  snap.put(static_cast<std::uint64_t>(stage_));
  snap.put_i(k_);
  snap.put_i(rot_);
  snap.put(ops_.size());
  for (const int o : ops_) snap.put_i(o);
  snap.put_i(idle_);
  snap.put_i(newly_);
  snap.put_i(collected_total_);
  snap.put_i(rounds_);
  snap.put_i(phases_);
}

CollectRun::CollectRun(amoebot::SystemCore& sys, const Snapshot& snap) : sys_(sys) {
  snap.expect_mark(kSnapCollect);
  l_.x = static_cast<std::int32_t>(snap.get_i());
  l_.y = static_cast<std::int32_t>(snap.get_i());
  vout_ = grid::dir_from_index(static_cast<int>(snap.get()));
  vrot_ = grid::dir_from_index(static_cast<int>(snap.get()));
  stem_.resize(static_cast<std::size_t>(snap.get()));
  for (Slot& s : stem_) {
    s.body = static_cast<ParticleId>(snap.get_i());
    s.virt = static_cast<ParticleId>(snap.get_i());
  }
  chains_.resize(static_cast<std::size_t>(snap.get()));
  for (Chain& c : chains_) c = load_chain(snap);
  loose_.resize(static_cast<std::size_t>(snap.get()));
  for (Chain& c : loose_) c = load_chain(snap);
  collected_.resize(static_cast<std::size_t>(snap.get()));
  PM_CHECK_MSG(collected_.size() == static_cast<std::size_t>(sys.particle_count()),
               "Collect snapshot particle count mismatch");
  for (char& c : collected_) c = static_cast<char>(snap.get());
  stage_ = static_cast<Stage>(snap.get());
  k_ = static_cast<int>(snap.get_i());
  rot_ = static_cast<int>(snap.get_i());
  ops_.resize(static_cast<std::size_t>(snap.get()));
  for (int& o : ops_) o = static_cast<int>(snap.get_i());
  idle_ = snap.get_i();
  newly_ = static_cast<int>(snap.get_i());
  collected_total_ = static_cast<int>(snap.get_i());
  rounds_ = snap.get_i();
  phases_ = static_cast<int>(snap.get_i());
}

CollectRun::Result CollectRun::run(long max_rounds) {
  Result res;
  while (rounds_ < max_rounds) {
    if (step_round()) break;
  }
  res.rounds = rounds_;
  res.phases = phases_;
  res.completed = stage_ == Stage::Done;
  res.collected = collected_total_;
  return res;
}

}  // namespace pm::core
