#include "core/obd/obd.h"

#include <algorithm>

#include "obs/obs.h"

namespace pm::core {

using amoebot::kNoParticle;
using amoebot::ParticleId;
using Kind = ObdRun::Token::Kind;

namespace {

// Ordered-lane emission helper; every OBD site is a one-liner through this.
void obs_emit(obs::Recorder* rec, obs::Type type, int v, int peer, int epoch,
              std::int64_t val, const char* note) {
  if (rec == nullptr) return;
  obs::Event e;
  e.type = type;
  e.stage = "obd";
  e.v = v;
  e.peer = peer;
  e.epoch = epoch;
  e.val = val;
  e.note = note;
  rec->emit(std::move(e));
}
// Sanity bound on per-v-node queues. The paper distributes each train over
// per-node constant slots; this engine lets a train accumulate at its
// comparison venue instead (same aggregate memory, simpler bookkeeping), so
// a venue may transiently hold O(|segment|) tokens.
constexpr std::size_t kQueueCap = 1 << 16;

std::uint8_t pack_lane(int original, int remaining) {
  return static_cast<std::uint8_t>((original << 4) | (remaining & 0x0F));
}
int lane_original(std::uint8_t lane) { return lane >> 4; }
int lane_remaining(std::uint8_t lane) { return lane & 0x0F; }
}  // namespace

ObdRun::ObdRun(const amoebot::SystemCore& sys)
    : sys_(sys), shape_(sys.shape()), rings_(shape_) {
  PM_CHECK_MSG(sys.all_contracted(), "OBD starts from a contracted configuration");
  const auto& vnodes = rings_.vnodes();
  vns_.resize(vnodes.size());
  for (std::size_t i = 0; i < vnodes.size(); ++i) {
    VN& vn = vns_[i];
    vn.count = static_cast<std::int8_t>(vnodes[i].count());
    vn.ring = vnodes[i].ring;
    vn.particle = sys.particle_at(vnodes[i].point);
    PM_CHECK(vn.particle != kNoParticle);
    vn.is_head = vn.is_tail = true;  // every v-node starts as a singleton
    vn.pledged = true;
  }
  flooded_.assign(static_cast<std::size_t>(sys.particle_count()), 0);
}

int ObdRun::protocol_ring_sum(int r) const {
  PM_CHECK_MSG(r >= 0 && r < ring_count(), "protocol_ring_sum: bad ring " << r);
  int sum = 0;
  for (const int v : rings_.rings()[static_cast<std::size_t>(r)]) {
    sum += vns_[static_cast<std::size_t>(v)].count;
  }
  return sum;
}

bool ObdRun::queue_has(const VN& vn, Kind k) const {
  auto match = [k](const Token& t) { return t.kind == k; };
  return std::any_of(vn.cw.begin(), vn.cw.end(), match) ||
         std::any_of(vn.ccw.begin(), vn.ccw.end(), match);
}

void ObdRun::reset_vnode_protocol(int v) {
  VN& vn = vns_[static_cast<std::size_t>(v)];
  vn.phase = HeadPhase::Idle;
  // Deliberately NOT reset: vn.lbl_verdict, the v-node's comparison-epoch
  // counter. A freed head is often re-absorbed as the neighbouring winner's
  // new head within a round, and emit_abort's successor sweep stops at the
  // first head it meets — so the dead head's old train can survive further
  // cw. If the epoch counter restarted at 0 here, the re-absorbed head's
  // next comparison would reuse the old train's epoch, and the orphaned
  // train's eventual verdict would pass the epoch check and be trusted. On
  // spiral(6,2) exactly that delivered a false "strictly smaller" to the
  // last surviving head mid-self-comparison, which then disbanded its own
  // segment and left the ring head-less forever.
  vn.sum_value = 0;
  vn.stab_k = vn.stab_j = 0;
  vn.stab_passed = false;
  vn.marked = false;
  vn.locked = false;
  vn.cw.clear();
  vn.ccw.clear();
}

// Purges the remnants of a comparison initiated by head v-node `v` from the
// successor segment (engine shortcut for the paper's cancellation tokens:
// constant-round equivalent cleanup when a comparing head dies).
void ObdRun::emit_abort(int v) {
  int cur = rings_.cw_succ(v);
  for (std::size_t guard = 0; guard < vns_.size(); ++guard) {
    VN& vn = vns_[static_cast<std::size_t>(cur)];
    auto is_cmp = [](const Token& t) {
      return t.kind == Kind::LenUnit || t.kind == Kind::LenResult ||
             t.kind == Kind::RevCreate || t.kind == Kind::RevUnit;
    };
    std::erase_if(vn.cw, is_cmp);
    std::erase_if(vn.ccw, is_cmp);
    const bool stop = vn.marked || vn.is_head || !vn.pledged;
    vn.marked = false;
    if (stop) break;
    cur = rings_.cw_succ(cur);
  }
}

void ObdRun::start_competition(int v) {
  VN& head = vns_[static_cast<std::size_t>(v)];
  head.phase = HeadPhase::LenWait;
  // Length trains are epoch-tagged like the label/sum trains: without the
  // tag, a
  // tail-flagged unit orphaned by an aborted earlier comparison can be
  // consumed by a later train's head token, which then "runs dry"
  // mid-segment and reports a false strictly-smaller verdict. On comb(6,5)
  // that false verdict eventually hit the last remaining segment, which
  // disbanded itself and left the ring head-less forever (the ROADMAP
  // livelock).
  head.lbl_verdict = static_cast<std::int8_t>((head.lbl_verdict + 1) % 100);
  const auto epoch = static_cast<std::int8_t>(head.lbl_verdict);
  obs_emit(events, obs::Type::ObdArm, v, rings_.cw_succ(v), epoch, 0, "");
  obs_emit(events, obs::Type::TrainCreate, v, -1, epoch, 0, "len");
  std::erase_if(head.cw, [](const Token& t) { return t.kind == Kind::LenUnit; });
  // The head's own length unit leads the train (HEAD flag); the create
  // token arms the rest of the segment tail-wards.
  Token unit;
  unit.kind = Kind::LenUnit;
  unit.epoch = epoch;
  unit.head = true;
  unit.tail = head.is_tail;
  // A singleton's train is its own tail: it starts exhausted.
  unit.positive = head.is_tail;
  unit.fresh = true;
  head.cw.push_back(unit);
  if (!head.is_tail) {
    Token create;
    create.kind = Kind::LenCreate;
    create.epoch = epoch;
    create.fresh = true;
    head.ccw.push_back(create);
  }
}

// --- movement predicates -------------------------------------------------

// Whether the clockwise-travelling token leaves v this round. May consume a
// co-located fodder token (the length train's head consumes one unit per
// hop, §5.2) and mutate the moving token's bookkeeping flags.
bool ObdRun::token_departs_cw(int v, Token& t) {
  VN& vn = vns_[static_cast<std::size_t>(v)];
  switch (t.kind) {
    case Kind::LenUnit:
      if (t.lane == 0) {
        // Units queued at the initiator's head cross it (stamped lane 1 on
        // arrival) only while the launching comparison is live; leftovers
        // park until the next launch purges them.
        return !(vn.is_head &&
                 (vn.phase != HeadPhase::LenWait || t.epoch != vn.lbl_verdict));
      }
      if (vn.is_head) return false;  // units wait at the successor's head
      if (!t.head) {
        // Plain units stop where their own train's head token waits,
        // serving as fodder (epoch match: stale heads are not fed).
        for (const Token& o : vn.cw) {
          if (o.kind == Kind::LenUnit && o.lane == 1 && o.head &&
              o.epoch == t.epoch) {
            return false;
          }
        }
        return true;
      }
      // Head token: advance only by consuming a co-located unit of its own
      // epoch (the tail unit last; consuming it flags exhaustion —
      // `positive` doubles as the consumed-tail marker for this train).
      for (std::size_t i = 0; i < vn.cw.size(); ++i) {
        const Token& o = vn.cw[i];
        if (o.kind == Kind::LenUnit && o.lane == 1 && !o.head &&
            o.epoch == t.epoch) {
          if (o.tail) t.positive = true;
          vn.cw.erase(vn.cw.begin() + static_cast<std::ptrdiff_t>(i));
          return true;
        }
      }
      return false;
    case Kind::LblUnit:
    case Kind::StabUnit:
      return !vn.is_head;  // label/unit trains queue at their segment's head
    case Kind::SumUnit:
      return !vn.is_head;  // sum trains merge and settle at the head
    case Kind::LenCreate:
    case Kind::LenResult:
    case Kind::LblCreate:
    case Kind::RevCreate:
    case Kind::RevUnit:
    case Kind::Abort:
    case Kind::Lock:
    case Kind::LockReply:
    case Kind::Unlock:
    case Kind::UnlockAck:
    case Kind::SumCreate:
    case Kind::StabCreate:
    case Kind::StabProbe:
    case Kind::StabVerdict:
    case Kind::StabCancel:
    case Kind::Outer:
      // Everything else either passes through or is consumed on arrival.
      return true;
  }
  return true;  // unreachable: -Wswitch keeps the cases exhaustive
}

bool ObdRun::token_departs_ccw(int v, const Token& t) const {
  const VN& vn = vns_[static_cast<std::size_t>(v)];
  switch (t.kind) {
    case Kind::RevUnit:
      return !vn.is_tail;  // reversed units queue at the successor's tail
    case Kind::StabProbe:
      return lane_remaining(t.lane) > 0;  // stop at the target's head
    case Kind::LenCreate:
    case Kind::LenUnit:
    case Kind::LenResult:
    case Kind::LblCreate:
    case Kind::LblUnit:
    case Kind::RevCreate:
    case Kind::Abort:
    case Kind::Lock:
    case Kind::LockReply:
    case Kind::Unlock:
    case Kind::UnlockAck:
    case Kind::SumCreate:
    case Kind::SumUnit:
    case Kind::StabCreate:
    case Kind::StabUnit:
    case Kind::StabVerdict:
    case Kind::StabCancel:
    case Kind::Outer:
      return true;
  }
  return true;  // unreachable: -Wswitch keeps the cases exhaustive
}

// --- arrival processing ---------------------------------------------------

void ObdRun::deliver_cw(int to, int from, Token t) {
  VN& vn = vns_[static_cast<std::size_t>(to)];
  const VN& src = vns_[static_cast<std::size_t>(from)];
  switch (t.kind) {
    case Kind::LenUnit:
      // Crossing the initiator's head -> the successor segment.
      if (src.is_head && t.lane == 0) t.lane = 1;
      vn.cw.push_back(t);
      return;
    case Kind::LblUnit:
    case Kind::SumUnit:
      if (t.kind == Kind::SumUnit) {
        // Merge with the last co-located token of the same train when the
        // combined value fits the constant memory bound (§5.4).
        for (auto it = vn.cw.rbegin(); it != vn.cw.rend(); ++it) {
          if (it->kind != Kind::SumUnit || it->positive != t.positive ||
              it->epoch != t.epoch) {
            continue;
          }
          const int sum = it->value + t.value;
          if (sum >= -6 && sum <= 6) {
            it->value = static_cast<std::int8_t>(sum);
            it->head = it->head || t.head;
            it->tail = it->tail || t.tail;
            return;
          }
          break;
        }
      }
      vn.cw.push_back(t);
      return;
    case Kind::RevCreate: {
      // Arm this successor v-node to emit its reversed label unit. The
      // create continuation is queued *before* the armed unit: both travel
      // clockwise in the same queue, and the unit overtaking the create
      // would invert the reversed train's arrival order at the tail.
      if (!vn.marked) vn.cw.push_back(t);  // create dies at the marked node
      Token unit;
      unit.kind = Kind::RevUnit;
      unit.value = vn.count;
      unit.epoch = t.epoch;  // inherit the comparison epoch
      unit.tail = vn.is_tail;
      unit.head = vn.marked;
      unit.back = vn.marked;  // the marked node's token bounces immediately
      unit.fresh = true;
      (vn.marked ? vn.ccw : vn.cw).push_back(unit);
      return;
    }
    case Kind::RevUnit:
      if (vn.marked && !t.back) {
        t.back = true;  // bounce: continue counter-clockwise to the tail
        vn.ccw.push_back(t);
      } else {
        vn.cw.push_back(t);
      }
      return;
    case Kind::StabProbe:
      PM_CHECK(!t.back);
      if (vn.is_head) {
        t.back = true;  // bounce at the initiator's own head
        vn.ccw.push_back(t);
      } else {
        vn.cw.push_back(t);
      }
      return;
    case Kind::StabUnit:
      vn.cw.push_back(t);
      return;
    case Kind::StabVerdict: {
      if (vn.is_tail) {
        t.lane = pack_lane(lane_original(t.lane), lane_remaining(t.lane) - 1);
      }
      if (vn.is_head && lane_remaining(t.lane) == 0) {
        // Back at the initiator.
        if (trace) std::printf("[r%ld] v%d STABVERDICT val=%d j=%d\n", rounds_, to, (int)t.value, lane_original(t.lane));
        obs_emit(events, obs::Type::ObdVerdict, to, lane_original(t.lane), -1,
                 t.value, "stab");
        // Epoch discipline: a verdict launched under a superseded comparison
        // epoch (the head aborted and restarted since) must not be trusted,
        // even if the lane index happens to match the live probe's.
        if (vn.phase == HeadPhase::StabWait && vn.stab_j == lane_original(t.lane) &&
            t.epoch == vn.lbl_verdict) {
          if (t.value != 0 && !vn.defector) {
            ++vn.stab_j;
            if (vn.stab_j > vn.stab_k) {
              became_stable(to);
            } else {
              launch_stab_probe(to);
            }
          } else {
            vn.phase = HeadPhase::Idle;
          }
        }
        return;  // consumed
      }
      vn.cw.push_back(t);
      return;
    }
    case Kind::StabCancel: {
      purge_stab(vn);
      if (vn.is_head && vn.phase == HeadPhase::StabWait) vn.phase = HeadPhase::Idle;
      if (vn.is_tail) {
        const int rem = lane_remaining(t.lane) - 1;
        if (rem <= 0) return;
        t.lane = pack_lane(lane_original(t.lane), rem);
      }
      vn.cw.push_back(t);
      return;
    }
    case Kind::Outer: {
      vn.knows_outer = true;
      if (vn.is_tail) ++t.value;
      if (vn.is_head && vn.phase == HeadPhase::OuterWait &&
          t.value == static_cast<int>(vn.stab_k)) {
        // Full circle: every outer v-node knows; announce via flooding.
        obs_emit(events, obs::Type::ObdOuter, to, -1, -1, vn.ring, "");
        vn.phase = HeadPhase::Announced;
        flood_started_ = true;
        detected_ring_ = vn.ring;
        flooded_[static_cast<std::size_t>(vn.particle)] = 1;
        return;
      }
      vn.cw.push_back(t);
      return;
    }
    // The head<->own-tail lock handshake never crosses a segment boundary
    // and is phase-gated: LockWait/UnlockWait admit exactly one in-flight
    // request, so there is no stale-verdict hazard for an epoch to guard.
    // pm-lint: allow(pm-token-epoch-check) phase-gated intra-segment handshake; one in-flight request
    case Kind::LockReply:
      if (vn.is_head && vn.phase == HeadPhase::LockWait) {
        vn.phase = (t.value != 0) ? HeadPhase::DisbandWait : HeadPhase::Idle;
        return;
      }
      vn.cw.push_back(t);
      return;
    // pm-lint: allow(pm-token-epoch-check) phase-gated intra-segment handshake; one in-flight request
    case Kind::UnlockAck:
      if (vn.is_head && vn.phase == HeadPhase::UnlockWait) {
        vn.phase = HeadPhase::Idle;  // competition successfully completed
        return;
      }
      vn.cw.push_back(t);
      return;
    case Kind::LenCreate:
    case Kind::LenResult:
    case Kind::LblCreate:
    case Kind::Abort:
    case Kind::Lock:
    case Kind::Unlock:
    case Kind::SumCreate:
    case Kind::StabCreate:
      break;  // ccw-only kinds: asserted unreachable below
  }
  PM_CHECK_MSG(false, "unexpected token delivered clockwise");
}

void ObdRun::deliver_ccw(int to, int /*from*/, Token t) {
  VN& vn = vns_[static_cast<std::size_t>(to)];
  switch (t.kind) {
    case Kind::LenCreate: {
      // Arming sweeps leftovers first: the new train's units all originate
      // at vnodes the create has already armed (cw of here) and travel
      // away from it, so any lane-0 unit still at this vnode is from an
      // aborted earlier comparison. Epochs alone can't catch these — they
      // are per-head counters mod 100, so a long-dead train's epoch can
      // collide with a live one (seen on spiral(6,2): the sole surviving
      // segment consumed a dead competitor's colliding tail unit, read a
      // false strictly-smaller verdict, and self-disbanded).
      std::erase_if(vn.cw, [](const Token& o) {
        return o.kind == Kind::LenUnit && o.lane == 0;
      });
      Token unit;
      unit.kind = Kind::LenUnit;
      unit.epoch = t.epoch;  // inherit the comparison epoch
      unit.tail = vn.is_tail;
      unit.fresh = true;
      vn.cw.push_back(unit);
      if (!vn.is_tail) vn.ccw.push_back(t);
      return;
    }
    case Kind::LblCreate: {
      Token unit;
      unit.kind = Kind::LblUnit;
      unit.value = vn.count;
      unit.epoch = t.epoch;  // inherit the comparison epoch
      unit.tail = vn.is_tail;
      unit.fresh = true;
      vn.cw.push_back(unit);
      if (!vn.is_tail) vn.ccw.push_back(t);
      return;
    }
    case Kind::SumCreate: {
      for (const bool positive : {true, false}) {
        Token unit;
        unit.kind = Kind::SumUnit;
        unit.positive = positive;
        unit.value = positive ? std::max<std::int8_t>(vn.count, 0)
                              : std::min<std::int8_t>(vn.count, 0);
        unit.epoch = t.epoch;  // inherit the verification epoch
        unit.tail = vn.is_tail;
        unit.fresh = true;
        vn.cw.push_back(unit);
      }
      if (!vn.is_tail) vn.ccw.push_back(t);
      return;
    }
    case Kind::StabCreate: {
      Token unit;
      unit.kind = (t.value == 0) ? Kind::StabProbe : Kind::StabUnit;
      unit.value = vn.count;
      unit.lane = t.lane;
      unit.epoch = t.epoch;  // inherit the initiating probe's epoch
      unit.tail = vn.is_tail;
      unit.fresh = true;
      vn.cw.push_back(unit);
      if (!vn.is_tail) vn.ccw.push_back(t);
      return;
    }
    case Kind::Lock:
      if (vn.is_tail) {
        Token reply;
        reply.kind = Kind::LockReply;
        reply.fresh = true;
        if (vn.defector) {
          reply.value = 0;
        } else {
          vn.locked = true;
          reply.value = 1;
        }
        vn.cw.push_back(reply);
        return;
      }
      vn.ccw.push_back(t);
      return;
    case Kind::Unlock:
      if (vn.is_tail) {
        vn.locked = false;
        Token ack;
        ack.kind = Kind::UnlockAck;
        ack.fresh = true;
        vn.cw.push_back(ack);
        return;
      }
      vn.ccw.push_back(t);
      return;
    case Kind::LenResult: {
      // Clean up this train's remnants and stale marks along the way
      // (other epochs' trains are live).
      std::erase_if(vn.cw, [&](const Token& o) {
        return o.kind == Kind::LenUnit && o.epoch == t.epoch;
      });
      if (!(vn.is_head && vn.phase == HeadPhase::LenWait)) {
        vn.marked = false;
        vn.ccw.push_back(t);
        return;
      }
      if (t.epoch != vn.lbl_verdict) {
        // A verdict for a superseded comparison of mine (the watchdog
        // restarted it): already cleaned its own remnants en route — drop.
        return;
      }
      // Remaining stale length units anywhere in the successor segment are
      // swept now (engine equivalent of the paper's delete tokens).
      {
        int cur = rings_.cw_succ(to);
        for (std::size_t guard = 0; guard < vns_.size(); ++guard) {
          VN& c = vns_[static_cast<std::size_t>(cur)];
          std::erase_if(c.cw, [](const Token& o) { return o.kind == Kind::LenUnit; });
          if (c.is_head || !c.pledged) break;
          cur = rings_.cw_succ(cur);
        }
      }
      // Verdict reached the initiator: -1 smaller, 0 equal, +1 larger.
      if (trace) std::printf("[r%ld] v%d LEN verdict %d\n", rounds_, to, (int)t.value);
      obs_emit(events, obs::Type::ObdVerdict, to, -1, t.epoch, t.value, "len");
      if (t.value < 0) {
        if (vn.is_tail) {  // singleton locks itself directly
          vn.locked = true;
          vn.phase = HeadPhase::DisbandWait;
        } else {
          vn.phase = HeadPhase::LockWait;
          Token lock;
          lock.kind = Kind::Lock;
          lock.fresh = true;
          vn.ccw.push_back(lock);
        }
      } else if (t.value == 0) {
        launch_label_compare(to);
      } else {
        vn.phase = HeadPhase::Idle;
      }
      return;
    }
    case Kind::RevUnit:
      vn.ccw.push_back(t);  // queues at the successor's tail (departs_ccw)
      return;
    case Kind::StabProbe: {
      PM_CHECK(t.back);
      if (vn.is_head) {
        const int rem = lane_remaining(t.lane) - 1;
        t.lane = pack_lane(lane_original(t.lane), rem);
      }
      vn.ccw.push_back(t);
      return;
    }
    case Kind::LenUnit:
    case Kind::LblUnit:
    case Kind::RevCreate:
    case Kind::Abort:
    case Kind::LockReply:
    case Kind::UnlockAck:
    case Kind::SumUnit:
    case Kind::StabUnit:
    case Kind::StabVerdict:
    case Kind::StabCancel:
    case Kind::Outer:
      break;  // cw-only kinds: asserted unreachable below
  }
  PM_CHECK_MSG(false, "unexpected token delivered counter-clockwise");
}

bool ObdRun::step_round() {
  if (done_) return true;
  ++rounds_;

  // --- termination flooding (particle level, one hop per round) ---
  if (flood_started_) {
    flood_next_.assign(flooded_.size(), 0);
    bool all = true;
    for (ParticleId p = 0; p < sys_.particle_count(); ++p) {
      if (flooded_[static_cast<std::size_t>(p)]) continue;
      const grid::Node at = sys_.body(p).head;
      bool nbr_flooded = false;
      for (int d = 0; d < grid::kDirCount; ++d) {
        const ParticleId q = sys_.particle_at(grid::neighbor(at, grid::dir_from_index(d)));
        if (q != kNoParticle && flooded_[static_cast<std::size_t>(q)]) nbr_flooded = true;
      }
      if (nbr_flooded) {
        flood_next_[static_cast<std::size_t>(p)] = 1;
      } else {
        all = false;
      }
    }
    for (std::size_t i = 0; i < flooded_.size(); ++i) {
      flooded_[i] = static_cast<char>(flooded_[i] | flood_next_[i]);
    }
    if (all) done_ = true;
    return done_;
  }

  // --- token movement: every token advances at most one ring hop ---
  for (auto& vn : vns_) {
    for (Token& t : vn.cw) t.fresh = false;
    for (Token& t : vn.ccw) t.fresh = false;
  }

  // Tokens of the same train stay FIFO; distinct trains may overtake a
  // parked one (the paper multiplexes trains through designated per-train
  // memory slots, Observation 29). Label/sum comparison trains are per-epoch
  // trains — a live train may overtake a stale epoch's parked remnant.
  // Length trains and the lane-routed stability trains are keyed without
  // the epoch: a new length train must not overtake a stale unit parked in
  // the same queue (the arming sweep purges it first), and stability
  // traffic multiplexes on the lane index alone.
  auto keyed_by_epoch = [](Kind k) {
    switch (k) {
      case Kind::LenResult:
      case Kind::LblCreate:
      case Kind::LblUnit:
      case Kind::RevCreate:
      case Kind::RevUnit:
      case Kind::SumCreate:
      case Kind::SumUnit:
        return true;
      case Kind::LenCreate:
      case Kind::LenUnit:
      case Kind::Abort:
      case Kind::Lock:
      case Kind::LockReply:
      case Kind::Unlock:
      case Kind::UnlockAck:
      case Kind::StabCreate:
      case Kind::StabProbe:
      case Kind::StabUnit:
      case Kind::StabVerdict:
      case Kind::StabCancel:
      case Kind::Outer:
        return false;
    }
    return false;  // unreachable: all Kinds enumerated above
  };
  auto train_key = [&](const Token& t) {
    const int ep = keyed_by_epoch(t.kind) ? static_cast<std::uint8_t>(t.epoch) : 0;
    return (static_cast<int>(t.kind) << 16) | (static_cast<int>(t.lane) << 8) | ep;
  };
  for (int v = 0; v < static_cast<int>(vns_.size()); ++v) {
    VN& vn = vns_[static_cast<std::size_t>(v)];

    std::vector<int> blocked;
    for (std::size_t pass = 0; pass < vn.cw.size();) {
      Token t = vn.cw[pass];
      const int key = train_key(t);
      const bool train_blocked =
          std::find(blocked.begin(), blocked.end(), key) != blocked.end();
      if (t.fresh || train_blocked || !token_departs_cw(v, t)) {
        blocked.push_back(key);
        ++pass;
        continue;
      }
      vn.cw.erase(vn.cw.begin() + static_cast<std::ptrdiff_t>(pass));
      t.fresh = true;
      deliver_cw(rings_.cw_succ(v), v, t);
    }
    blocked.clear();
    for (std::size_t pass = 0; pass < vn.ccw.size();) {
      Token t = vn.ccw[pass];
      const int key = train_key(t);
      const bool train_blocked =
          std::find(blocked.begin(), blocked.end(), key) != blocked.end();
      if (t.fresh || train_blocked || !token_departs_ccw(v, t)) {
        blocked.push_back(key);
        ++pass;
        continue;
      }
      vn.ccw.erase(vn.ccw.begin() + static_cast<std::ptrdiff_t>(pass));
      t.fresh = true;
      deliver_ccw(rings_.cw_pred(v), v, t);
    }
    PM_CHECK_MSG(vn.cw.size() < kQueueCap && vn.ccw.size() < kQueueCap,
                 "v-node token queue overflow");
  }

  // Length-train verdict detection (can fire at any successor v-node).
  for (int v = 0; v < static_cast<int>(vns_.size()); ++v) check_len_verdict(v);

  // --- defector dynamics: one dissolution step per round ---
  for (int v = 0; v < static_cast<int>(vns_.size()); ++v) {
    VN& vn = vns_[static_cast<std::size_t>(v)];
    if (!vn.pledged || !vn.defector) continue;
    if (trace) std::printf("[r%ld] v%d FREED (defector)\n", rounds_, v);
    obs_emit(events, obs::Type::ObdFree, v, -1, -1, 0, "");
    const bool was_head = vn.is_head;
    const bool was_comparing =
        vn.phase == HeadPhase::LenWait || vn.phase == HeadPhase::LblWait;
    if (was_head && was_comparing) emit_abort(v);
    // Cancel stability checks that may have already compared against this
    // segment (paper §5.4, fifth addition): purge stability traffic along
    // the next 6 segments clockwise.
    Token cancel;
    cancel.kind = Kind::StabCancel;
    cancel.lane = pack_lane(6, 6);
    cancel.fresh = false;
    const int succ = rings_.cw_succ(v);
    vn.pledged = false;
    vn.defector = false;
    vn.is_head = vn.is_tail = false;
    reset_vnode_protocol(v);
    vn.pledged = false;  // reset_vnode_protocol does not touch pledged
    if (!was_head) {
      VN& s = vns_[static_cast<std::size_t>(succ)];
      s.defector = true;
      s.is_tail = true;
      s.cw.push_back(cancel);
    }
    break;  // one defector resolution per round keeps dissolution 1/round
  }

  // --- head state machines ---
  for (int v = 0; v < static_cast<int>(vns_.size()); ++v) {
    process_head(v);
  }

  return done_;
}

// --- head state machines ---------------------------------------------------

void ObdRun::check_len_verdict(int v) {
  VN& vn = vns_[static_cast<std::size_t>(v)];
  // Locate the lane-1 (successor side) length-train head token; only units
  // of the same epoch belong to its train.
  bool has_head = false;
  bool consumed_tail = false;
  std::int8_t epoch = 0;
  int others = 0;
  for (const Token& t : vn.cw) {
    if (t.kind != Kind::LenUnit || t.lane != 1) continue;
    if (t.head && !has_head) {
      has_head = true;
      consumed_tail = t.positive;
      epoch = t.epoch;
    }
  }
  if (!has_head) return;
  for (const Token& t : vn.cw) {
    if (t.kind == Kind::LenUnit && t.lane == 1 && !t.head && t.epoch == epoch) ++others;
  }
  std::int8_t verdict = 0;
  bool decided = false;
  if (vn.is_head) {
    if (others > 0) {
      verdict = 1;  // |s| > |s1|: leftover units at the successor's head
      decided = true;
    } else if (consumed_tail) {
      verdict = 0;  // equal lengths; mark this head for the label phase
      vn.marked = true;
      decided = true;
    }
  } else if (others == 0 && consumed_tail) {
    verdict = -1;  // the train ran dry mid-segment: |s| < |s1|
    decided = true;
  }
  if (!decided) return;
  obs_emit(events, obs::Type::TrainConsume, v, -1, epoch, verdict, "len");
  std::erase_if(vn.cw, [&](const Token& t) {
    return t.kind == Kind::LenUnit && t.epoch == epoch;
  });
  Token res;
  res.kind = Kind::LenResult;
  res.value = verdict;
  res.epoch = epoch;  // route back epoch-checked
  res.fresh = true;
  vn.ccw.push_back(res);
}

void ObdRun::launch_label_compare(int v) {
  VN& vn = vns_[static_cast<std::size_t>(v)];
  vn.phase = HeadPhase::LblWait;
  // Epoch tag isolates this comparison's trains from stale remnants of
  // earlier, cancelled comparisons.
  vn.lbl_verdict = static_cast<std::int8_t>((vn.lbl_verdict + 1) % 100);
  const auto epoch = static_cast<std::int8_t>(vn.lbl_verdict);
  obs_emit(events, obs::Type::TrainCreate, v, -1, epoch, 0, "lbl");
  std::erase_if(vn.cw, [](const Token& t) { return t.kind == Kind::LblUnit; });
  Token mine;
  mine.kind = Kind::LblUnit;
  mine.value = vn.count;
  mine.epoch = epoch;
  mine.head = true;
  mine.tail = vn.is_tail;
  mine.fresh = true;
  vn.cw.push_back(mine);
  if (!vn.is_tail) {
    Token create;
    create.kind = Kind::LblCreate;
    create.epoch = epoch;
    create.fresh = true;
    vn.ccw.push_back(create);
  }
  Token rev;
  rev.kind = Kind::RevCreate;
  rev.epoch = epoch;
  rev.fresh = true;
  vn.cw.push_back(rev);
}

void ObdRun::launch_sum_verify(int v) {
  VN& vn = vns_[static_cast<std::size_t>(v)];
  vn.phase = HeadPhase::SumWait;
  vn.lbl_verdict = static_cast<std::int8_t>((vn.lbl_verdict + 1) % 100);
  const auto epoch = static_cast<std::int8_t>(vn.lbl_verdict);
  obs_emit(events, obs::Type::TrainCreate, v, -1, epoch, 0, "sum");
  std::erase_if(vn.cw, [](const Token& t) { return t.kind == Kind::SumUnit; });
  for (const bool positive : {true, false}) {
    Token unit;
    unit.kind = Kind::SumUnit;
    unit.positive = positive;
    unit.value = positive ? std::max<std::int8_t>(vn.count, 0)
                          : std::min<std::int8_t>(vn.count, 0);
    unit.epoch = epoch;
    unit.head = true;
    unit.tail = vn.is_tail;
    unit.fresh = true;
    vn.cw.push_back(unit);
  }
  if (!vn.is_tail) {
    Token create;
    create.kind = Kind::SumCreate;
    create.epoch = epoch;
    create.fresh = true;
    vn.ccw.push_back(create);
  }
}

void ObdRun::launch_stab_probe(int v) {
  VN& vn = vns_[static_cast<std::size_t>(v)];
  vn.phase = HeadPhase::StabWait;
  const int j = vn.stab_j;
  obs_emit(events, obs::Type::TrainCreate, v, -1, -1, j, "stab");
  Token mine;
  mine.kind = Kind::StabProbe;
  mine.value = vn.count;
  mine.lane = pack_lane(j, j);
  mine.epoch = vn.lbl_verdict;  // stability check runs under the sum epoch
  mine.head = true;
  mine.tail = vn.is_tail;
  mine.back = true;  // emitted at the head: bounce immediately
  mine.fresh = true;
  vn.ccw.push_back(mine);
  if (!vn.is_tail) {
    Token create;
    create.kind = Kind::StabCreate;
    create.value = 0;  // probe mode
    create.lane = pack_lane(j, j);
    create.epoch = vn.lbl_verdict;
    create.fresh = true;
    vn.ccw.push_back(create);
  }
}

void ObdRun::became_stable(int v) {
  VN& vn = vns_[static_cast<std::size_t>(v)];
  if (trace) std::printf("[r%ld] v%d STABLE sum=%d k=%d\n", rounds_, v, (int)vn.sum_value, (int)vn.stab_k);
  obs_emit(events, obs::Type::ObdStable, v, vn.stab_k, -1, vn.sum_value, "");
  vn.stab_passed = true;
  if (vn.sum_value > 0) {
    // Observation 4: positive total count sum identifies the outer ring.
    vn.phase = HeadPhase::OuterWait;
    vn.knows_outer = true;
    Token outer;
    outer.kind = Kind::Outer;
    outer.value = 0;
    outer.fresh = true;
    vn.cw.push_back(outer);
  } else {
    vn.phase = HeadPhase::Announced;  // stable inner ring: wait for flooding
  }
}

void ObdRun::purge_stab(VN& vn) {
  auto is_stab = [](const Token& t) {
    return t.kind == Kind::StabProbe || t.kind == Kind::StabUnit ||
           t.kind == Kind::StabVerdict || t.kind == Kind::StabCreate;
  };
  std::erase_if(vn.cw, is_stab);
  std::erase_if(vn.ccw, is_stab);
  vn.stab_service = 0;
}

// Target-side stability pairing: any head may be the j-th predecessor of a
// stability-checking segment; it pairs the arriving reversed probe train
// against its own label train and reports the verdict back.
void ObdRun::compare_stab_queues(int v) {
  VN& vn = vns_[static_cast<std::size_t>(v)];
  for (int j = 1; j <= 6; ++j) {
    const std::uint8_t bit = static_cast<std::uint8_t>(1 << j);
    // Trigger the unit-train service on the probe train's first (head) token.
    bool probe_head_waiting = false;
    std::int8_t probe_epoch = 0;
    for (const Token& t : vn.ccw) {
      if (t.kind == Kind::StabProbe && lane_original(t.lane) == j &&
          lane_remaining(t.lane) == 0 && t.head) {
        probe_head_waiting = true;
        probe_epoch = t.epoch;
      }
    }
    if (probe_head_waiting && !(vn.stab_service & bit)) {
      vn.stab_service |= bit;
      Token mine;
      mine.kind = Kind::StabUnit;
      mine.value = vn.count;
      mine.lane = pack_lane(j, j);
      mine.epoch = probe_epoch;  // this train serves that probe's epoch
      mine.head = true;
      mine.tail = vn.is_tail;
      mine.fresh = true;
      vn.cw.push_back(mine);
      if (!vn.is_tail) {
        Token create;
        create.kind = Kind::StabCreate;
        create.value = 1;  // unit mode
        create.lane = pack_lane(j, j);
        create.epoch = probe_epoch;
        create.fresh = true;
        vn.ccw.push_back(create);
      }
    }
    if (!(vn.stab_service & bit)) continue;
    // Pair the fronts (one pair per round — pipelined comparison).
    auto probe_it = std::find_if(vn.ccw.begin(), vn.ccw.end(), [&](const Token& t) {
      return t.kind == Kind::StabProbe && lane_original(t.lane) == j &&
             lane_remaining(t.lane) == 0;
    });
    auto unit_it = std::find_if(vn.cw.begin(), vn.cw.end(), [&](const Token& t) {
      return t.kind == Kind::StabUnit && lane_original(t.lane) == j;
    });
    if (probe_it == vn.ccw.end() || unit_it == vn.cw.end()) continue;
    const Token probe = *probe_it;
    const Token unit = *unit_it;
    vn.ccw.erase(probe_it);
    vn.cw.erase(unit_it);
    std::int8_t verdict = -1;  // -1 = undecided
    if (probe.value != unit.value || probe.tail != unit.tail) {
      verdict = 0;  // mismatch (value or length)
    } else if (probe.tail && unit.tail) {
      verdict = 1;  // full trains matched
    }
    if (verdict >= 0) {
      // Drop the remaining lane-j traffic and report back.
      auto lane_j = [&](const Token& t) {
        return (t.kind == Kind::StabProbe || t.kind == Kind::StabUnit) &&
               lane_original(t.lane) == j;
      };
      std::erase_if(vn.cw, lane_j);
      std::erase_if(vn.ccw, lane_j);
      vn.stab_service = static_cast<std::uint8_t>(vn.stab_service & ~bit);
      Token res;
      res.kind = Kind::StabVerdict;
      res.value = verdict;
      res.lane = pack_lane(j, j);
      res.epoch = probe.epoch;  // verdict routes back under the probe's epoch
      res.fresh = true;
      vn.cw.push_back(res);
    }
  }
}

// Shared abort path for the liveness watchdog and the competitor-vanished
// check: purge this head's own traffic, sweep the comparison remnants out of
// the successor segment, release a lock we may hold, and start over.
void ObdRun::abort_competition(int v, const char* reason) {
  VN& vn = vns_[static_cast<std::size_t>(v)];
  obs_emit(events, obs::Type::ObdAbort, v, -1, vn.lbl_verdict, 0, reason);
  emit_abort(v);
  auto own = [](const Token& t) {
    return t.kind == Kind::LenUnit || t.kind == Kind::LblUnit ||
           t.kind == Kind::SumUnit || t.kind == Kind::LenCreate ||
           t.kind == Kind::LblCreate || t.kind == Kind::SumCreate ||
           t.kind == Kind::RevCreate || t.kind == Kind::Lock ||
           t.kind == Kind::Unlock;
  };
  std::erase_if(vn.cw, own);
  std::erase_if(vn.ccw, own);
  purge_stab(vn);
  int cur = v;  // walk back to my tail to drop a dangling lock
  for (std::size_t guard = 0; guard < vns_.size(); ++guard) {
    VN& c = vns_[static_cast<std::size_t>(cur)];
    std::erase_if(c.cw, own);
    std::erase_if(c.ccw, own);
    if (c.is_tail || !c.pledged) {
      c.locked = false;
      break;
    }
    cur = rings_.cw_pred(cur);
  }
  vn.phase = HeadPhase::Idle;
  vn.last_phase = HeadPhase::Idle;
  vn.phase_since = rounds_;
}

void ObdRun::process_head(int v) {
  VN& vn = vns_[static_cast<std::size_t>(v)];
  if (!vn.pledged || !vn.is_head) return;
  compare_stab_queues(v);

  // Liveness watchdog (engine guard, see the header): a comparison whose
  // tokens were lost to a concurrent segment change would wait forever;
  // retrying after O(ring length) rounds is always safe because the
  // competition is idempotent — the paper's segments re-compare anyway.
  if (vn.phase != vn.last_phase) {
    vn.last_phase = vn.phase;
    vn.phase_since = rounds_;
  }
  const bool watched =
      vn.phase == HeadPhase::LenWait || vn.phase == HeadPhase::LblWait ||
      vn.phase == HeadPhase::LockWait || vn.phase == HeadPhase::DisbandWait ||
      vn.phase == HeadPhase::UnlockWait || vn.phase == HeadPhase::SumWait ||
      vn.phase == HeadPhase::StabWait;
  const long timeout =
      4 * static_cast<long>(rings_.rings()[static_cast<std::size_t>(vn.ring)].size()) + 64;
  if (watched && rounds_ - vn.phase_since > timeout) {
    if (trace) std::printf("[r%ld] v%d WATCHDOG phase=%d\n", rounds_, v, (int)vn.phase);
    abort_competition(v, "watchdog");
    return;
  }

  // A comparison is only meaningful while its competitor holds still. The
  // competitor's tail sits at cw_succ(v) (ring geometry, fixed) for the
  // whole life of a valid comparison: segments grow at their head and only
  // lose their tail when they dissolve. So if that v-node stops being a
  // pledged, non-defector tail while we are mid-comparison, the competitor
  // segment is dissolving under our train — any verdict the train still
  // delivers is about territory that no longer exists. On spiral(6,2) such
  // a verdict (a false "strictly smaller") reached the last surviving head
  // ~100 rounds before the watchdog would have fired, and — its successor
  // tail by then being its own tail — made it disband its own segment and
  // leave the ring head-less. Abort immediately instead of waiting for the
  // timeout; like the watchdog, this stands in for the paper's cancellation
  // tokens, and retrying is safe because competitions are idempotent.
  if (vn.phase == HeadPhase::LenWait || vn.phase == HeadPhase::LblWait ||
      vn.phase == HeadPhase::LockWait) {
    const VN& s = vns_[static_cast<std::size_t>(rings_.cw_succ(v))];
    if (!s.pledged || s.defector || !s.is_tail) {
      if (trace) std::printf("[r%ld] v%d COMPETITOR GONE phase=%d\n", rounds_, v, (int)vn.phase);
      abort_competition(v, "competitor_gone");
      return;
    }
  }

  switch (vn.phase) {
    case HeadPhase::Idle: {
      if (vn.defector) return;  // dying segments stop initiating (§5.3)
      const int succ = rings_.cw_succ(v);
      VN& s = vns_[static_cast<std::size_t>(succ)];
      if (!s.pledged) {
        // Absorb the free successor; it becomes the segment's new head.
        if (trace) std::printf("[r%ld] v%d ABSORBS v%d\n", rounds_, v, succ);
        obs_emit(events, obs::Type::ObdAbsorb, v, succ, -1, 0, "");
        s.pledged = true;
        s.is_head = true;
        s.is_tail = false;
        s.phase = HeadPhase::Idle;
        vn.is_head = false;
        return;
      }
      if (s.is_tail) {
        if (s.defector) return;  // successor is disbanding: wait, re-absorb
        start_competition(v);
      }
      return;
    }
    case HeadPhase::LblWait: {
      const int succ = rings_.cw_succ(v);
      VN& st = vns_[static_cast<std::size_t>(succ)];
      const auto epoch = static_cast<std::int8_t>(vn.lbl_verdict);
      // Stale tokens from cancelled comparisons (wrong epoch) are dropped.
      std::erase_if(vn.cw, [&](const Token& t) {
        return t.kind == Kind::LblUnit && t.epoch != epoch;
      });
      std::erase_if(st.ccw, [&](const Token& t) {
        return t.kind == Kind::RevUnit && t.back && t.epoch != epoch;
      });
      auto mine_it = std::find_if(vn.cw.begin(), vn.cw.end(), [&](const Token& t) {
        return t.kind == Kind::LblUnit && t.epoch == epoch;
      });
      auto theirs_it = std::find_if(st.ccw.begin(), st.ccw.end(), [&](const Token& t) {
        return t.kind == Kind::RevUnit && t.back && t.epoch == epoch;
      });
      if (mine_it == vn.cw.end() || theirs_it == st.ccw.end()) return;
      const Token mine = *mine_it;
      const Token theirs = *theirs_it;
      vn.cw.erase(mine_it);
      st.ccw.erase(theirs_it);
      std::int8_t verdict = 0;
      bool decided = false;
      if (mine.value != theirs.value) {
        verdict = (mine.value < theirs.value) ? -1 : 1;
        decided = true;
      } else if (mine.tail != theirs.tail) {
        verdict = 1;  // defensive: treat length surprise as a lost retry
        decided = true;
      } else if (mine.tail && theirs.tail) {
        verdict = 0;
        decided = true;
      }
      if (!decided) return;  // equal so far, compare next pair next round
      if (trace) std::printf("[r%ld] v%d LBL verdict %d (mine=%d theirs=%d)\n", rounds_, v, (int)verdict, (int)mine.value, (int)theirs.value);
      obs_emit(events, obs::Type::ObdVerdict, v, succ, epoch, verdict, "lbl");
      // Clean up both trains (the paper's delete/clean tokens, §5.2):
      // my remaining label units locally, the reversed-train remnants in
      // the successor segment up to (and unmarking) the marked v-node.
      // Only this comparison's tokens are touched — the successor's own
      // concurrently-running trains are not ours to delete.
      std::erase_if(vn.cw, [](const Token& t) { return t.kind == Kind::LblUnit; });
      int cur = rings_.cw_succ(v);
      for (std::size_t guard = 0; guard < vns_.size(); ++guard) {
        VN& c = vns_[static_cast<std::size_t>(cur)];
        auto is_rev = [](const Token& t) {
          return t.kind == Kind::RevUnit || t.kind == Kind::RevCreate;
        };
        std::erase_if(c.cw, is_rev);
        std::erase_if(c.ccw, is_rev);
        const bool stop = c.marked || c.is_head || !c.pledged;
        c.marked = false;
        if (stop) break;
        cur = rings_.cw_succ(cur);
      }
      if (verdict < 0) {
        if (vn.is_tail) {
          vn.locked = true;
          vn.phase = HeadPhase::DisbandWait;
        } else {
          vn.phase = HeadPhase::LockWait;
          Token lock;
          lock.kind = Kind::Lock;
          lock.fresh = true;
          vn.ccw.push_back(lock);
        }
      } else if (verdict > 0) {
        vn.phase = HeadPhase::Idle;
      } else {
        launch_sum_verify(v);
      }
      return;
    }
    case HeadPhase::DisbandWait: {
      const int succ = rings_.cw_succ(v);
      VN& s = vns_[static_cast<std::size_t>(succ)];
      PM_CHECK_MSG(s.pledged && s.is_tail, "competition successor vanished");
      if (s.locked) return;  // wait until the loser's tail is unlocked
      s.defector = true;
      if (vn.is_tail) {
        vn.locked = false;
        vn.phase = HeadPhase::Idle;
      } else {
        vn.phase = HeadPhase::UnlockWait;
        Token unlock;
        unlock.kind = Kind::Unlock;
        unlock.fresh = true;
        vn.ccw.push_back(unlock);
      }
      return;
    }
    case HeadPhase::SumWait: {
      // Head-side merging and positive/negative cancellation (§5.4).
      const auto epoch = static_cast<std::int8_t>(vn.lbl_verdict);
      std::erase_if(vn.cw, [&](const Token& t) {
        return t.kind == Kind::SumUnit && t.epoch != epoch;
      });
      std::vector<std::size_t> pos;
      std::vector<std::size_t> neg;
      for (std::size_t i = 0; i < vn.cw.size(); ++i) {
        if (vn.cw[i].kind != Kind::SumUnit) continue;
        (vn.cw[i].positive ? pos : neg).push_back(i);
      }
      auto try_merge = [&](std::vector<std::size_t>& idx) {
        for (std::size_t a = 0; a + 1 < idx.size(); ++a) {
          Token& x = vn.cw[idx[a]];
          Token& y = vn.cw[idx[a + 1]];
          const int s = x.value + y.value;
          if (s < -6 || s > 6) continue;
          x.value = static_cast<std::int8_t>(s);
          x.head = x.head || y.head;
          x.tail = x.tail || y.tail;
          vn.cw.erase(vn.cw.begin() + static_cast<std::ptrdiff_t>(idx[a + 1]));
          return true;
        }
        return false;
      };
      if (try_merge(pos) || try_merge(neg)) return;
      if (!pos.empty() && !neg.empty()) {
        Token& p = vn.cw[pos.front()];
        Token& n = vn.cw[neg.front()];
        if (p.value != 0 && n.value != 0) {
          const int s = p.value + n.value;
          p.value = static_cast<std::int8_t>(s > 0 ? s : 0);
          n.value = static_cast<std::int8_t>(s < 0 ? s : 0);
          return;
        }
      }
      if (pos.size() == 1 && neg.size() == 1) {
        const Token& p = vn.cw[pos.front()];
        const Token& n = vn.cw[neg.front()];
        if (p.head && p.tail && n.head && n.tail) {
          const int sum = p.value + n.value;
          std::erase_if(vn.cw, [](const Token& t) { return t.kind == Kind::SumUnit; });
          if (trace) std::printf("[r%ld] v%d SUM=%d\n", rounds_, v, sum);
          obs_emit(events, obs::Type::ObdVerdict, v, -1, epoch, sum, "sum");
          const int mag = sum < 0 ? -sum : sum;
          if (mag == 1 || mag == 2 || mag == 3 || mag == 6) {
            vn.sum_value = static_cast<std::int8_t>(sum);
            vn.stab_k = static_cast<std::uint8_t>(6 / mag);
            vn.stab_j = 1;
            launch_stab_probe(v);
          } else {
            vn.phase = HeadPhase::Idle;  // inconsistent with a stable ring
          }
        }
      }
      return;
    }
    case HeadPhase::LenWait:
    case HeadPhase::LockWait:
    case HeadPhase::UnlockWait:
    case HeadPhase::StabWait:
    case HeadPhase::OuterWait:
    case HeadPhase::Announced:
      return;  // waiting phases are driven by token deliveries
  }
}

ObdRun::Result ObdRun::run(long max_rounds) {
  // Trivial configurations have no rings to vote on.
  Result res;
  while (rounds_ < max_rounds) {
    if (step_round()) break;
  }
  res.rounds = rounds_;
  res.completed = done_;
  res.outer_ring = detected_ring_;
  return res;
}

namespace {

// One word per token: kind | value | lane | flag bits | epoch.
std::uint64_t pack_token(const ObdRun::Token& t) {
  return static_cast<std::uint64_t>(static_cast<std::uint8_t>(t.kind)) |
         (static_cast<std::uint64_t>(static_cast<std::uint8_t>(t.value)) << 8) |
         (static_cast<std::uint64_t>(t.lane) << 16) |
         (static_cast<std::uint64_t>(t.head) << 24) |
         (static_cast<std::uint64_t>(t.tail) << 25) |
         (static_cast<std::uint64_t>(t.back) << 26) |
         (static_cast<std::uint64_t>(t.positive) << 27) |
         (static_cast<std::uint64_t>(t.fresh) << 28) |
         (static_cast<std::uint64_t>(static_cast<std::uint8_t>(t.epoch)) << 32);
}

ObdRun::Token unpack_token(std::uint64_t w) {
  ObdRun::Token t;
  t.kind = static_cast<Kind>(w & 0xFF);
  t.value = static_cast<std::int8_t>(static_cast<std::uint8_t>((w >> 8) & 0xFF));
  t.lane = static_cast<std::uint8_t>((w >> 16) & 0xFF);
  t.head = ((w >> 24) & 1) != 0;
  t.tail = ((w >> 25) & 1) != 0;
  t.back = ((w >> 26) & 1) != 0;
  t.positive = ((w >> 27) & 1) != 0;
  t.fresh = ((w >> 28) & 1) != 0;
  t.epoch = static_cast<std::int8_t>(static_cast<std::uint8_t>((w >> 32) & 0xFF));
  return t;
}

}  // namespace

void ObdRun::save(Snapshot& snap) const {
  snap.put_mark(kSnapObd);
  snap.put_i(rounds_);
  snap.put(done_ ? 1 : 0);
  snap.put(flood_started_ ? 1 : 0);
  snap.put_i(detected_ring_);
  snap.put(flooded_.size());
  for (const char f : flooded_) snap.put(static_cast<std::uint64_t>(f));
  snap.put(vns_.size());
  for (const VN& vn : vns_) {
    // ring/particle are configuration-derived (rebuilt by the constructor);
    // everything protocol-mutable goes into the stream.
    snap.put_i(vn.count);
    std::uint64_t flags = 0;
    flags |= static_cast<std::uint64_t>(vn.is_head) << 0;
    flags |= static_cast<std::uint64_t>(vn.is_tail) << 1;
    flags |= static_cast<std::uint64_t>(vn.pledged) << 2;
    flags |= static_cast<std::uint64_t>(vn.defector) << 3;
    flags |= static_cast<std::uint64_t>(vn.locked) << 4;
    flags |= static_cast<std::uint64_t>(vn.marked) << 5;
    flags |= static_cast<std::uint64_t>(vn.knows_outer) << 6;
    flags |= static_cast<std::uint64_t>(vn.stab_passed) << 7;
    snap.put(flags);
    snap.put(static_cast<std::uint8_t>(vn.phase));
    snap.put_i(vn.lbl_verdict);
    snap.put_i(vn.sum_value);
    snap.put(vn.stab_k);
    snap.put(vn.stab_j);
    snap.put(vn.stab_service);
    snap.put_i(vn.phase_since);
    snap.put(static_cast<std::uint8_t>(vn.last_phase));
    snap.put(vn.cw.size());
    for (const Token& t : vn.cw) snap.put(pack_token(t));
    snap.put(vn.ccw.size());
    for (const Token& t : vn.ccw) snap.put(pack_token(t));
  }
}

void ObdRun::restore(const Snapshot& snap) {
  snap.expect_mark(kSnapObd);
  rounds_ = snap.get_i();
  done_ = snap.get() != 0;
  flood_started_ = snap.get() != 0;
  detected_ring_ = static_cast<int>(snap.get_i());
  const auto fn = static_cast<std::size_t>(snap.get());
  PM_CHECK_MSG(fn == flooded_.size(), "OBD snapshot particle count mismatch");
  for (char& f : flooded_) f = static_cast<char>(snap.get());
  const auto vn_count = static_cast<std::size_t>(snap.get());
  PM_CHECK_MSG(vn_count == vns_.size(), "OBD snapshot v-node count mismatch");
  for (VN& vn : vns_) {
    vn.count = static_cast<std::int8_t>(snap.get_i());
    const std::uint64_t flags = snap.get();
    vn.is_head = ((flags >> 0) & 1) != 0;
    vn.is_tail = ((flags >> 1) & 1) != 0;
    vn.pledged = ((flags >> 2) & 1) != 0;
    vn.defector = ((flags >> 3) & 1) != 0;
    vn.locked = ((flags >> 4) & 1) != 0;
    vn.marked = ((flags >> 5) & 1) != 0;
    vn.knows_outer = ((flags >> 6) & 1) != 0;
    vn.stab_passed = ((flags >> 7) & 1) != 0;
    vn.phase = static_cast<HeadPhase>(snap.get());
    vn.lbl_verdict = static_cast<std::int8_t>(snap.get_i());
    vn.sum_value = static_cast<std::int8_t>(snap.get_i());
    vn.stab_k = static_cast<std::uint8_t>(snap.get());
    vn.stab_j = static_cast<std::uint8_t>(snap.get());
    vn.stab_service = static_cast<std::uint8_t>(snap.get());
    vn.phase_since = snap.get_i();
    vn.last_phase = static_cast<HeadPhase>(snap.get());
    vn.cw.clear();
    for (std::size_t k = snap.get(); k > 0; --k) vn.cw.push_back(unpack_token(snap.get()));
    vn.ccw.clear();
    for (std::size_t k = snap.get(); k > 0; --k) vn.ccw.push_back(unpack_token(snap.get()));
  }
}

void ObdRun::debug_dump() const {
  std::printf("--- round %ld%s\n", rounds_, flood_started_ ? " (flooding)" : "");
  for (std::size_t i = 0; i < vns_.size(); ++i) {
    const VN& vn = vns_[i];
    std::printf(
        "  v%zu ring%d c=%d %s%s%s%s%s%s phase=%d j=%d k=%d cw=%zu ccw=%zu kinds:",
        i, vn.ring, vn.count, vn.pledged ? "P" : "-", vn.is_head ? "H" : "-",
        vn.is_tail ? "T" : "-", vn.defector ? "D" : "-", vn.locked ? "L" : "-",
        vn.marked ? "M" : "-", static_cast<int>(vn.phase), vn.stab_j, vn.stab_k,
        vn.cw.size(), vn.ccw.size());
    for (const Token& t : vn.cw) {
      std::printf(" cw%d(v%d,l%d,e%d%s%s%s)", static_cast<int>(t.kind), t.value,
                  t.lane, t.epoch, t.head ? ",H" : "", t.tail ? ",T" : "",
                  t.back ? ",B" : "");
    }
    for (const Token& t : vn.ccw) {
      std::printf(" ccw%d(v%d,l%d,e%d%s%s%s)", static_cast<int>(t.kind), t.value,
                  t.lane, t.epoch, t.head ? ",H" : "", t.tail ? ",T" : "",
                  t.back ? ",B" : "");
    }
    std::printf("\n");
  }
}

std::array<bool, 6> ObdRun::outer_ports(ParticleId p) const {
  std::array<bool, 6> out{};
  const auto& vnodes = rings_.vnodes();
  for (std::size_t i = 0; i < vnodes.size(); ++i) {
    if (vns_[i].particle != p || !vns_[i].knows_outer) continue;
    for (int k = 0; k < vnodes[i].run.length; ++k) {
      const grid::Dir d = grid::rotated(vnodes[i].run.first, k);
      out[static_cast<std::size_t>(sys_.dir_port(p, d))] = true;
    }
  }
  return out;
}

}  // namespace pm::core
