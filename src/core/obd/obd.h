// Primitive OBD — outer boundary detection (paper §5).
//
// Removes the known-outer-boundary assumption: starting from a connected,
// contracted configuration, every particle learns which of its local
// boundaries border the outer face, in O(L_out + D) rounds. The result is
// exactly the `outer` input Algorithm DLE consumes.
//
// Protocol structure (faithful to §5):
//  * the boundary points of each global boundary are subdivided into
//    v-nodes forming an oriented virtual ring (§5.1, our grid::VNodeRings);
//  * each v-node starts as a one-v-node segment; segment heads repeatedly
//    absorb free successors, and otherwise compare their segment against
//    the successor segment with the pipelined Lexicographic Comparison
//    Primitive (§5.2): a consuming length train, then a label train paired
//    against the successor's *reversed* label train, so comparisons cost
//    O(|initiator|) rounds instead of the O(|s|^2) of [3, 24];
//  * a strictly smaller segment locks its tail, forces the successor's
//    tail into the defector state and unlocks (§5.3); disbanding segments
//    dissolve one v-node per activation and are re-absorbed;
//  * a segment whose comparison returns "equal" runs the stability check
//    (§5.4): the positive/negative merging token trains compute sum(s)
//    under the constant-memory constraint; if |sum| ∈ {1,2,3,6} the head
//    compares labels with its 6/|sum| predecessor segments (reversed-train
//    pairing, lane-tagged so up to 6 concurrent probes coexist);
//  * a stable boundary with positive count sum (+6, Observation 4) is the
//    outer one; an outer token circles the ring so every segment knows
//    before a particle-level flooding announces global termination.
//
// Like core/collect, the implementation is a round-synchronous engine: all
// v-node state lives in engine-owned structs, every token moves at most one
// ring hop per round through bounded queues, so measured rounds reflect the
// paper's pipelined analysis (Lemmas 31/35, Theorem 41).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "amoebot/system.h"
#include "grid/vnode.h"
#include "util/snapshot.h"

namespace pm::obs {
class Recorder;
}

namespace pm::core {

class ObdRun {
 public:
  struct Result {
    long rounds = 0;
    bool completed = false;
    int outer_ring = -1;  // detected ring id (matches VNodeRings numbering)
  };

  // Builds the v-node rings from the system's current (connected,
  // contracted) configuration.
  explicit ObdRun(const amoebot::SystemCore& sys);

  Result run(long max_rounds = 8'000'000);
  bool step_round();  // returns true once every particle terminated

  [[nodiscard]] long rounds() const { return rounds_; }

  // After completion: which ports of particle p (at its head node) lead to
  // the outer face — the input Algorithm DLE expects.
  [[nodiscard]] std::array<bool, 6> outer_ports(amoebot::ParticleId p) const;

  // --- audit inspection (src/audit's OBD conservation invariant) ---

  // The static ring structure the protocol runs on.
  [[nodiscard]] const grid::VNodeRings& rings() const { return rings_; }
  [[nodiscard]] int ring_count() const { return static_cast<int>(rings_.rings().size()); }
  // Sum of the *protocol's* per-v-node boundary counts along ring r. The
  // geometry fixes this at +6 for the outer ring and -6 for each inner one
  // (Observation 4), and no token exchange may ever change it — the audit
  // layer re-sums it every audited round.
  [[nodiscard]] int protocol_ring_sum(int r) const;
  // Ring the protocol has decided is the outer one (-1 until detection).
  [[nodiscard]] int detected_ring() const { return detected_ring_; }

  // Checkpoint/resume at round boundaries. OBD never moves particles, so
  // the ring structure is reconstructed from the (static) configuration by
  // the constructor; save/restore carry only the mutable protocol state
  // (per-v-node segment + head fields, token queues, flooding, counters).
  void save(Snapshot& snap) const;
  void restore(const Snapshot& snap);

  // Prints per-v-node protocol state to stdout (debugging aid).
  void debug_dump() const;

  // Verbose event tracing to stdout (debugging aid).
  bool trace = false;

  // Structured protocol event recorder (src/obs); null = off. The engine is
  // round-synchronous and single-threaded, so every emission uses the
  // ordered lane. Not serialized: re-set after restore (ObdStage does).
  obs::Recorder* events = nullptr;

  // Implementation detail, public only so translation-unit helpers can name
  // the nested types.
  struct Token {
    enum class Kind : std::uint8_t {
      LenCreate,   // ccw; arms v-nodes to emit length units
      LenUnit,     // cw; unary length encoding (HEAD token consumes)
      LenResult,   // ccw; verdict back to the initiator's head
      LblCreate,   // ccw; arms v-nodes to emit label counts
      LblUnit,     // cw; label counts queue at the initiator's head
      RevCreate,   // cw; arms successor v-nodes to emit reversed counts
      RevUnit,     // cw to the marked v-node, then ccw to the tail
      Abort,       // ccw; emitted by freed v-nodes, kills a comparison
      Lock,        // ccw; initiator head -> own tail
      LockReply,   // cw; tail -> head (ok / defector)
      Unlock,      // ccw
      UnlockAck,   // cw
      SumCreate,   // ccw; arms v-nodes to emit the two sum trains
      SumUnit,     // cw; merging partial sums (positive or negative train)
      StabCreate,  // ccw; arms v-nodes to emit probe / unit label trains
      StabProbe,   // cw to own head, then ccw with lane = hops to target
      StabUnit,    // cw; target segment's label train toward its own head
      StabVerdict, // cw; equality verdict routed back to the initiator
      StabCancel,  // cw; disbanding segment cancels in-flight checks
      Outer,       // cw; full-circle announcement on the outer ring
    };
    Kind kind{};
    std::int8_t value = 0;   // count / verdict / sum
    std::uint8_t lane = 0;   // predecessor index for stability probes
    // Initiator's verdict epoch: every Len/Lbl/Rev/Sum/Stab train token is
    // stamped with its initiating head's comparison epoch at creation, and
    // every verdict is checked against the consumer's live epoch before it
    // is acted on. This is the livelock fix behind comb(6,5), spiral(6,2)
    // and cheese(11,3): an orphaned train from an aborted comparison must
    // never deliver a trusted verdict to a later comparison (rule
    // pm-token-epoch; pm_lint enforces that this field exists and that
    // verdict consumption references it).
    std::int8_t epoch = 0;
    bool head = false;       // train head marker
    bool tail = false;       // train tail marker
    bool back = false;       // RevUnit/StabProbe: bounced, heading ccw
    bool positive = false;   // SumUnit: which of the two trains
    bool fresh = false;      // already moved this round (1 hop per round)
  };

 private:
  enum class HeadPhase : std::uint8_t {
    Idle,
    LenWait,     // length train sent, waiting for LenResult
    LblWait,     // label trains running, comparing at the boundary
    LockWait,    // waiting for LockReply from own tail
    DisbandWait, // waiting for successor tail to be unlocked
    UnlockWait,  // waiting for UnlockAck
    SumWait,     // merging sum trains, waiting at head
    StabWait,    // comparing with predecessor segment `stab_j`
    OuterWait,   // outer token circling
    Announced,
  };

  struct VN {
    std::int8_t count = 0;
    int ring = -1;
    amoebot::ParticleId particle = amoebot::kNoParticle;
    bool is_head = false;
    bool is_tail = false;
    bool pledged = false;
    bool defector = false;
    bool locked = false;
    bool marked = false;   // successor head marked during LCP length phase
    bool knows_outer = false;
    // head-only protocol bookkeeping
    HeadPhase phase = HeadPhase::Idle;
    std::int8_t lbl_verdict = 0;
    std::int8_t sum_value = 0;
    std::uint8_t stab_k = 0;
    std::uint8_t stab_j = 0;
    std::uint8_t stab_service = 0;  // lanes for which a unit train is running
    bool stab_passed = false;
    // Liveness watchdog: round at which the current phase was entered.
    long phase_since = 0;
    HeadPhase last_phase = HeadPhase::Idle;
    std::deque<Token> cw;   // tokens travelling clockwise (to successor)
    std::deque<Token> ccw;  // tokens travelling counter-clockwise
  };

  void reset_vnode_protocol(int v);
  void start_competition(int v);
  void process_head(int v);
  void check_len_verdict(int v);
  void emit_abort(int v);
  void abort_competition(int v, const char* reason);
  [[nodiscard]] bool queue_has(const VN& vn, Token::Kind k) const;

  // Movement predicates and arrival processing for the two directions.
  [[nodiscard]] bool token_departs_cw(int v, Token& t);
  [[nodiscard]] bool token_departs_ccw(int v, const Token& t) const;
  void deliver_cw(int to, int from, Token t);
  void deliver_ccw(int to, int from, Token t);

  void launch_label_compare(int v);
  void launch_sum_verify(int v);
  void launch_stab_probe(int v);
  void became_stable(int v);
  void compare_stab_queues(int v);
  void purge_stab(VN& vn);

  const amoebot::SystemCore& sys_;
  grid::Shape shape_;
  grid::VNodeRings rings_;
  std::vector<VN> vns_;
  std::vector<char> moved_;  // per v-node per round token budget

  // flooding
  std::vector<char> flooded_;
  std::vector<char> flood_next_;
  bool flood_started_ = false;
  int detected_ring_ = -1;

  long rounds_ = 0;
  bool done_ = false;
};

}  // namespace pm::core
