#include "core/dle/dle.h"

#include "grid/local_boundary.h"

namespace pm::core {

using amoebot::ParticleId;
using amoebot::ParticleView;
using amoebot::System;
using grid::Node;

namespace {

// Analysis of the 6 eligible flags: number of maximal cyclic runs of
// *ineligible* ports and the length of the (unique) run if there is exactly
// one. S_e is simply-connected throughout (Lemma 11(2)), so "exactly one
// run" is exactly erodability (Proposition 6) and run length >= 3 makes the
// point strictly convex w.r.t. S_e, i.e. SCE.
struct EligibleRuns {
  int runs = 0;
  int single_run_length = 0;
  int eligible_count = 0;
};

EligibleRuns analyze(const std::array<bool, 6>& eligible) {
  EligibleRuns r;
  for (const bool e : eligible) {
    if (e) ++r.eligible_count;
  }
  if (r.eligible_count == 6) return r;  // interior point, no local boundary
  if (r.eligible_count == 0) {
    r.runs = 1;
    r.single_run_length = 6;
    return r;
  }
  int start = 0;
  while (!eligible[static_cast<std::size_t>(start)]) ++start;
  for (int k = 0; k < 6;) {
    const int i = (start + k) % 6;
    if (eligible[static_cast<std::size_t>(i)]) {
      ++k;
      continue;
    }
    int len = 0;
    while (len < 6 && !eligible[static_cast<std::size_t>((i + len) % 6)]) ++len;
    ++r.runs;
    r.single_run_length = len;
    k += len;
  }
  return r;
}

}  // namespace

System<DleState> Dle::make_system(const grid::Shape& initial, Rng& rng,
                                  amoebot::OccupancyMode occupancy) {
  PM_CHECK_MSG(initial.is_connected(), "initial configuration must be connected");
  PM_CHECK_MSG(!initial.empty(), "initial configuration must be non-empty");
  auto sys = System<DleState>::from_shape(initial, rng, occupancy);
  for (ParticleId p = 0; p < sys.particle_count(); ++p) {
    DleState& st = sys.state(p);
    const Node v = sys.body(p).head;
    for (int i = 0; i < 6; ++i) {
      const Node u = grid::neighbor(v, sys.port_dir(p, i));
      const bool outer = !initial.contains(u) && initial.face_of(u) == grid::kOuterFace;
      st.outer[static_cast<std::size_t>(i)] = outer;
      // eligible[i] := occupied or hole neighbor (line 6 of the pseudocode):
      st.eligible[static_cast<std::size_t>(i)] = !outer;
    }
  }
  return sys;
}

void Dle::activate(ParticleView<DleState>& p) {
  DleState& s = p.self();

  // Line 9: an expanded particle contracts into its head. In the
  // connected_pull ablation it first tries to hand its tail over to a
  // neighboring follower when releasing the tail could disconnect the shape
  // locally (the paper's Remark, §4.2.1).
  if (p.expanded()) {
    if (opts_.connected_pull) {
      // Local cut test on the tail: would the tail's occupied neighborhood
      // stay connected without it? (head counts as occupied: we keep it.)
      const bool locally_safe = [&] {
        std::array<bool, 6> occ{};
        for (int i = 0; i < 6; ++i) {
          occ[static_cast<std::size_t>(i)] =
              p.occupied_tail(i) || p.tail_port_is_self(i);
        }
        // Connected iff the occupied ports form at most one cyclic run.
        int transitions = 0;
        for (int i = 0; i < 6; ++i) {
          if (occ[static_cast<std::size_t>(i)] != occ[static_cast<std::size_t>((i + 1) % 6)]) {
            ++transitions;
          }
        }
        return transitions <= 2;
      }();
      if (!locally_safe) {
        for (int i = 0; i < 6; ++i) {
          if (!p.occupied_tail(i) || p.tail_port_is_self(i)) continue;
          const ParticleId q = p.nbr_id_tail(i);
          const DleState& qs = p.peek_state(q);
          // Only a contracted follower can take the tail in a handover.
          if (qs.status == Status::Follower && !qs.terminated && p.is_contracted(q)) {
            p.handover_pull_tail(i);
            return;
          }
        }
      }
    }
    p.contract_to_head();
    return;
  }

  // Lines 10-11: decided particle with all neighbors decided terminates.
  if (s.status != Status::Undecided) {
    bool all_decided = true;
    p.for_each_neighbor_particle([&](ParticleId q) {
      if (p.peek_state(q).status == Status::Undecided) all_decided = false;
    });
    if (all_decided) s.terminated = true;
    return;
  }

  // Lines 12-28: contracted, undecided particle occupying point v.
  const EligibleRuns runs = analyze(s.eligible);

  // Lines 14-15: no adjacent eligible points -> leader.
  if (runs.eligible_count == 0) {
    s.status = Status::Leader;
    if (on_leader) on_leader(p.id(), p.head_node_instrumentation());
    return;
  }

  // Line 16: v must be SCE w.r.t. S_e; otherwise do nothing.
  if (runs.runs != 1 || runs.single_run_length < 3) return;

  // Lines 17-19: remove v from S_e; fix neighbors' eligible flags.
  for (int i = 0; i < 6; ++i) {
    if (!p.occupied_head(i) || !p.head_of_nbr_at(i)) continue;
    DleState& qs = p.nbr_state_head(i);
    qs.eligible[static_cast<std::size_t>(p.reverse_port_head(i))] = false;
  }
  if (on_erode) on_erode(p.head_node_instrumentation());

  // Lines 21-26: if v has an (exactly one, Claim 10) empty adjacent point in
  // S_e, expand into it, pre-setting the eligible flags for the new head.
  int u_port = -1;
  int candidates = 0;
  for (int i = 0; i < 6; ++i) {
    if (s.eligible[static_cast<std::size_t>(i)] && !p.occupied_head(i)) {
      u_port = i;
      ++candidates;
    }
  }
  PM_CHECK_MSG(candidates <= 1, "Claim 10 violated: SCE point with "
                                    << candidates << " empty eligible neighbors");
  if (u_port >= 0) {
    const int iv = (u_port + 3) % 6;
    for (int i = 0; i < 6; ++i) s.eligible[static_cast<std::size_t>(i)] = (i != iv);
    p.expand_head(u_port);
    return;
  }

  // Line 28: nowhere to go — v stays occupied, p leaves candidacy.
  s.status = Status::Follower;
}

ElectionOutcome election_outcome(const System<DleState>& sys) {
  ElectionOutcome out;
  for (ParticleId p = 0; p < sys.particle_count(); ++p) {
    switch (sys.state(p).status) {
      case Status::Leader:
        ++out.leaders;
        out.leader = p;
        break;
      case Status::Follower:
        ++out.followers;
        break;
      case Status::Undecided:
        ++out.undecided;
        break;
    }
  }
  return out;
}

}  // namespace pm::core
