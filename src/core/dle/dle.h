// Algorithm DLE — disconnecting leader election (paper §4.1, pseudocode
// p.11). Deterministic, strong scheduler, any connected initial shape
// (holes allowed), common chirality, outer boundary known initially.
//
// The algorithm erodes the *eligible set* S_e, initialized to the area of
// the initial shape (occupied points plus hole points). An activated
// contracted particle on a strictly-convex-erodable (SCE) point of S_e
// removes the point from S_e — updating its neighbors' `eligible` port
// flags — and, if the point has an (exactly one, Claim 10) empty adjacent
// eligible point, expands into it so the boundary of S_e stays occupied.
// The last eligible point's occupant becomes the leader. Runtime O(D_A)
// rounds (Theorem 18); the particle system may disconnect temporarily.
//
// The `connected_pull` option implements the paper's Remark (§4.2.1): an
// expanded particle whose tail release would locally disconnect the system
// instead performs a handover that pulls a neighboring follower into the
// vacated point. This is the no-disconnection counterpart the paper credits
// with O(D_A^2) rounds; it serves as the disconnection ablation.
#pragma once

#include <array>
#include <cstdint>
#include <functional>

#include "amoebot/scheduler.h"
#include "amoebot/system.h"
#include "amoebot/view.h"
#include "grid/shape.h"

namespace pm::core {

enum class Status : std::uint8_t { Undecided, Leader, Follower };

struct DleState {
  Status status = Status::Undecided;
  // Input (read-only after init): which head-port neighbors were on the
  // outer face in the initial configuration.
  std::array<bool, 6> outer{};
  // Whether the point via head port i is in S_e (kept consistent by the
  // protocol, Lemma 11(4)).
  std::array<bool, 6> eligible{};
  bool terminated = false;
};

class Dle {
 public:
  using State = DleState;

  struct Options {
    bool connected_pull = false;  // ablation: keep the system connected
  };

  Dle() = default;
  explicit Dle(Options opts) : opts_(opts) {}

  // Builds a contracted system from the shape and fills in the `outer`
  // oracle input (the paper's initially-known-boundary assumption); the
  // pipeline in core/le replaces this oracle with Primitive OBD's output.
  static amoebot::System<State> make_system(
      const grid::Shape& initial, Rng& rng,
      amoebot::OccupancyMode occupancy = amoebot::kDefaultOccupancy);

  void activate(amoebot::ParticleView<State>& p);

  // Defined inline: the engine evaluates this on its termination-tracking
  // hot path (after every activation and n times per reference-run round).
  [[nodiscard]] bool is_final(const amoebot::System<State>& sys,
                              amoebot::ParticleId p) const {
    return sys.state(p).terminated && !sys.body(p).expanded();
  }

  // Instrumentation only (not consulted by the algorithm): reports every
  // point removed from S_e, letting tests replay Lemma 11's invariants.
  std::function<void(grid::Node)> on_erode;
  // Instrumentation only: fires when a particle declares itself Leader
  // (line 15 of the algorithm). Under exec::ParallelEngine both hooks run
  // on pool threads — implementations must be thread-safe.
  std::function<void(amoebot::ParticleId, grid::Node)> on_leader;

 private:
  Options opts_{};
};

// DleState packs into one 15-bit word: status (2 bits), terminated (1), and
// the outer/eligible port flags (6 each). Shared by the pipeline checkpoint
// layer and the audit trace encoder so the two formats cannot drift.
[[nodiscard]] inline std::uint64_t pack_dle_state(const DleState& st) {
  std::uint64_t w = static_cast<std::uint64_t>(st.status) |
                    (static_cast<std::uint64_t>(st.terminated) << 2);
  for (int i = 0; i < 6; ++i) {
    w |= static_cast<std::uint64_t>(st.outer[static_cast<std::size_t>(i)]) << (3 + i);
    w |= static_cast<std::uint64_t>(st.eligible[static_cast<std::size_t>(i)]) << (9 + i);
  }
  return w;
}

[[nodiscard]] inline DleState unpack_dle_state(std::uint64_t w) {
  DleState st;
  st.status = static_cast<Status>(w & 0x3);
  st.terminated = ((w >> 2) & 1) != 0;
  for (int i = 0; i < 6; ++i) {
    st.outer[static_cast<std::size_t>(i)] = ((w >> (3 + i)) & 1) != 0;
    st.eligible[static_cast<std::size_t>(i)] = ((w >> (9 + i)) & 1) != 0;
  }
  return st;
}

// Outcome inspection helpers shared by tests/benches.
struct ElectionOutcome {
  int leaders = 0;
  int followers = 0;
  int undecided = 0;
  amoebot::ParticleId leader = amoebot::kNoParticle;
};

[[nodiscard]] ElectionOutcome election_outcome(const amoebot::System<DleState>& sys);

}  // namespace pm::core
