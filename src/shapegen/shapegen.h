// Parameterized generators for the connected initial shapes used throughout
// tests, examples and benchmarks. All randomness is seed-driven.
//
// Families (paper-relevant stress axes):
//   hexagon      — dense, D = 2r, erosion proceeds layer by layer
//   line         — maximal D for given n
//   parallelogram— dense rectangle-like patch
//   annulus      — one big hole: D_A < D, exercises DLE's area-erosion
//   spiral       — long winding corridor: D >> D_G
//   comb         — spine with teeth: many simultaneous SCE points
//   swiss_cheese — hexagon minus many small holes (random, connected)
//   random_blob  — random connected aggregation (can grow natural holes)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "grid/shape.h"

namespace pm::shapegen {

[[nodiscard]] grid::Shape hexagon(int radius);

[[nodiscard]] grid::Shape line(int n);

[[nodiscard]] grid::Shape parallelogram(int width, int height);

// Hexagon of radius `outer` with the hexagon of radius `inner` removed
// around the center (inner < outer - 1 keeps it connected with a real hole).
[[nodiscard]] grid::Shape annulus(int outer, int inner);

// Rectangular spiral corridor of the given arm count; `thickness` >= 1.
[[nodiscard]] grid::Shape spiral(int arms, int thickness = 1);

// Horizontal spine with vertical teeth every other column.
[[nodiscard]] grid::Shape comb(int teeth, int tooth_len);

// Hexagon of radius `radius` minus `holes` randomly placed small holes
// (each a single point or radius-1 hexagon), guaranteed connected.
[[nodiscard]] grid::Shape swiss_cheese(int radius, int holes, std::uint64_t seed);

// Random connected aggregation of n points grown from the origin.
[[nodiscard]] grid::Shape random_blob(int n, std::uint64_t seed);

struct NamedShape {
  std::string name;
  grid::Shape shape;
};

// A deterministic mixed family for property sweeps: one of each family at a
// comparable scale parameter.
[[nodiscard]] std::vector<NamedShape> standard_family(int scale, std::uint64_t seed);

}  // namespace pm::shapegen
