#include "shapegen/shapegen.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace pm::shapegen {

using grid::Dir;
using grid::Node;
using grid::NodeSet;
using grid::Shape;

namespace {

// Cube-coordinate hex norm: max(|x|, |y|, |x+y|).
int hex_norm(Node v) {
  return std::max({std::abs(v.x), std::abs(v.y), std::abs(v.x + v.y)});
}

std::vector<Node> hex_disk(Node center, int radius) {
  std::vector<Node> out;
  for (int x = -radius; x <= radius; ++x) {
    for (int y = -radius; y <= radius; ++y) {
      const Node d{x, y};
      if (hex_norm(d) <= radius) out.push_back({center.x + x, center.y + y});
    }
  }
  return out;
}

}  // namespace

Shape hexagon(int radius) {
  PM_CHECK(radius >= 0);
  return Shape(hex_disk({0, 0}, radius));
}

Shape line(int n) {
  PM_CHECK(n >= 1);
  std::vector<Node> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) pts.push_back({i, 0});
  return Shape(std::move(pts));
}

Shape parallelogram(int width, int height) {
  PM_CHECK(width >= 1 && height >= 1);
  std::vector<Node> pts;
  pts.reserve(static_cast<std::size_t>(width) * static_cast<std::size_t>(height));
  for (int x = 0; x < width; ++x) {
    for (int y = 0; y < height; ++y) pts.push_back({x, y});
  }
  return Shape(std::move(pts));
}

Shape annulus(int outer, int inner) {
  PM_CHECK(outer >= 2 && inner >= 0 && inner < outer);
  std::vector<Node> pts;
  for (const Node v : hex_disk({0, 0}, outer)) {
    if (hex_norm(v) > inner) pts.push_back(v);
  }
  return Shape(std::move(pts));
}

Shape spiral(int arms, int thickness) {
  PM_CHECK(arms >= 1 && thickness >= 1);
  // Walk a rectangular spiral in axial E/NE/W/SW steps, stamping a small
  // disk of the requested thickness at every step.
  NodeSet set;
  std::vector<Node> pts;
  auto stamp = [&](Node v) {
    for (const Node u : hex_disk(v, thickness - 1)) {
      if (set.insert(u).second) pts.push_back(u);
    }
  };
  Node cur{0, 0};
  stamp(cur);
  // Direction cycle E, NE, W, SW with growing arm lengths; the gap of
  // 2*thickness+1 keeps adjacent arms from touching.
  const std::array<Dir, 4> cycle{Dir::E, Dir::NE, Dir::W, Dir::SW};
  int len = 2 * thickness + 2;
  for (int a = 0; a < arms; ++a) {
    const Dir d = cycle[static_cast<std::size_t>(a % 4)];
    for (int s = 0; s < len; ++s) {
      cur = neighbor(cur, d);
      stamp(cur);
    }
    if (a % 2 == 1) len += 2 * thickness + 2;
  }
  return Shape(std::move(pts));
}

Shape comb(int teeth, int tooth_len) {
  PM_CHECK(teeth >= 1 && tooth_len >= 0);
  NodeSet set;
  std::vector<Node> pts;
  auto add = [&](Node v) {
    if (set.insert(v).second) pts.push_back(v);
  };
  const int width = 2 * teeth - 1;
  for (int x = 0; x < width; ++x) add({x, 0});
  for (int t = 0; t < teeth; ++t) {
    for (int y = 1; y <= tooth_len; ++y) add({2 * t, y});
  }
  return Shape(std::move(pts));
}

Shape swiss_cheese(int radius, int holes, std::uint64_t seed) {
  PM_CHECK(radius >= 3);
  Rng rng(seed);
  NodeSet removed;
  // Carve single-point holes at interior positions that keep the remaining
  // shape connected and the carved point strictly interior (so it is a hole,
  // not a bay). Candidate centers stay radius-2 from the rim and at hex
  // distance >= 3 from each other so holes never merge or touch the rim.
  std::vector<Node> centers;
  int placed = 0;
  for (int attempt = 0; attempt < holes * 50 && placed < holes; ++attempt) {
    const int r = radius - 2;
    const Node c{static_cast<std::int32_t>(rng.range(-r, r)),
                 static_cast<std::int32_t>(rng.range(-r, r))};
    if (hex_norm(c) > r) continue;
    const bool clash = std::any_of(centers.begin(), centers.end(), [&](Node o) {
      return grid::grid_distance(c, o) < 3;
    });
    if (clash) continue;
    centers.push_back(c);
    removed.insert(c);
    ++placed;
  }
  std::vector<Node> pts;
  for (const Node v : hex_disk({0, 0}, radius)) {
    if (!removed.contains(v)) pts.push_back(v);
  }
  Shape s(std::move(pts));
  PM_CHECK(s.is_connected());
  return s;
}

Shape random_blob(int n, std::uint64_t seed) {
  PM_CHECK(n >= 1);
  Rng rng(seed);
  NodeSet set;
  std::vector<Node> pts;
  std::vector<Node> frontier;
  auto add = [&](Node v) {
    set.insert(v);
    pts.push_back(v);
    for (int i = 0; i < grid::kDirCount; ++i) {
      const Node u = neighbor(v, grid::dir_from_index(i));
      if (!set.contains(u)) frontier.push_back(u);
    }
  };
  add({0, 0});
  while (static_cast<int>(pts.size()) < n && !frontier.empty()) {
    const std::size_t i = static_cast<std::size_t>(rng.below(frontier.size()));
    const Node v = frontier[i];
    frontier[i] = frontier.back();
    frontier.pop_back();
    if (set.contains(v)) continue;
    add(v);
  }
  return Shape(std::move(pts));
}

std::vector<NamedShape> standard_family(int scale, std::uint64_t seed) {
  PM_CHECK(scale >= 4);
  std::vector<NamedShape> out;
  out.push_back({"hexagon", hexagon(scale)});
  out.push_back({"line", line(4 * scale)});
  out.push_back({"parallelogram", parallelogram(2 * scale, scale)});
  out.push_back({"annulus", annulus(scale, scale / 2)});
  out.push_back({"spiral", spiral(std::max(3, scale / 2))});
  out.push_back({"comb", comb(scale, scale)});
  out.push_back({"swiss_cheese", swiss_cheese(scale, scale / 2, seed)});
  out.push_back({"random_blob", random_blob(3 * scale * scale, seed + 1)});
  return out;
}

}  // namespace pm::shapegen
