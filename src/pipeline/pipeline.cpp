#include "pipeline/pipeline.h"

#include <utility>

#include "baselines/baselines.h"
#include "core/collect/collect.h"
#include "core/obd/obd.h"
#include "obs/obs.h"
#include "pipeline/stages.h"
#include "telemetry/telemetry.h"
#include "util/check.h"

namespace pm::pipeline {

using amoebot::ParticleId;
using core::DleState;

// --- Stage framing ---------------------------------------------------------

namespace {

void save_system(Snapshot& snap, const RunContext::System& sys) {
  sys.save_core(snap);
  for (ParticleId p = 0; p < sys.particle_count(); ++p) {
    snap.put(core::pack_dle_state(sys.state(p)));
  }
}

void restore_system(const Snapshot& snap, RunContext::System& sys) {
  sys.restore_core(snap);
  sys.reset_states();
  for (ParticleId p = 0; p < sys.particle_count(); ++p) {
    sys.state(p) = core::unpack_dle_state(snap.get());
  }
}

// FNV-1a over the initial shape's node list: stages without a system
// snapshot (the baselines) resume against ctx.initial, so a restore under a
// different shape must fail loudly instead of silently diverging.
std::uint64_t shape_fingerprint(const grid::Shape& s) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (const grid::Node v : s.nodes()) {
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(v.x)));
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(v.y)));
  }
  return h;
}

}  // namespace

void Stage::save(Snapshot& snap) const {
  snap.put_mark(kSnapStage);
  snap.put(static_cast<std::uint64_t>(status_));
  snap.put_i(metrics_.rounds);
  snap.put_i(metrics_.activations);
  snap.put_i(metrics_.phases);
  if (status_ == StageStatus::Running) state_save(snap);
}

void Stage::restore(RunContext& ctx, const Snapshot& snap) {
  snap.expect_mark(kSnapStage);
  status_ = static_cast<StageStatus>(snap.get());
  metrics_ = StageMetrics{};
  metrics_.rounds = snap.get_i();
  metrics_.activations = snap.get_i();
  metrics_.phases = static_cast<int>(snap.get_i());
  if (status_ == StageStatus::Running) state_restore(ctx, snap);
}

// --- PipelineOutcome -------------------------------------------------------

long PipelineOutcome::total_rounds() const {
  long total = 0;
  for (const StageReport& s : stages) total += s.metrics.rounds;
  return total;
}

const StageReport* PipelineOutcome::stage(StageKind k) const {
  for (const StageReport& s : stages) {
    if (s.kind == k) return &s;
  }
  return nullptr;
}

// --- Pipeline --------------------------------------------------------------

Pipeline::Pipeline(Pipeline&& other)
    : ctx_(std::move(other.ctx_)),
      stages_(std::move(other.stages_)),
      owned_sys_(std::move(other.owned_sys_)),
      current_(other.current_),
      inited_(other.inited_),
      done_(other.done_),
      moves0_(other.moves0_),
      t0_(other.t0_) {
  // Initialized stages hold pointers into the source pipeline's context and
  // system; only the pre-init move (what the standard()/build factories
  // need) is safe.
  PM_CHECK_MSG(!inited_, "a started pipeline cannot be moved");
  if (ctx_.sys == &other.owned_sys_) ctx_.sys = &owned_sys_;
}

Pipeline Pipeline::standard(RunContext ctx, const StandardOptions& opts) {
  Pipeline p(std::move(ctx));
  if (!opts.use_boundary_oracle) {
    p.add(std::make_unique<ObdStage>(ObdStage::Options{.skip_if_single = true}));
  }
  p.add(std::make_unique<DleStage>(core::Dle::Options{.connected_pull = opts.connected_pull}));
  if (opts.reconnect && !opts.connected_pull) p.add(std::make_unique<CollectStage>());
  return p;
}

Pipeline& Pipeline::add(std::unique_ptr<Stage> stage) {
  PM_CHECK_MSG(!inited_, "stages must be added before the pipeline starts");
  stages_.push_back(std::move(stage));
  return *this;
}

void Pipeline::init() {
  PM_CHECK_MSG(!inited_, "pipeline already initialized");
  PM_CHECK_MSG(!stages_.empty(), "pipeline has no stages");
  inited_ = true;
  t0_ = WallClock::now();
  const bool needs_system = [&] {
    for (const auto& s : stages_) {
      if (s->uses_system()) return true;
    }
    return false;
  }();
  if (needs_system && ctx_.sys == nullptr) {
    Rng rng(ctx_.seeds.build_seed());
    owned_sys_ = core::Dle::make_system(ctx_.initial, rng, ctx_.occupancy);
    ctx_.sys = &owned_sys_;
  }
  moves0_ = ctx_.sys != nullptr ? ctx_.sys->moves() : 0;
  enter_stage();
}

namespace {

void note_stage_enter(obs::Recorder* rec, const Stage& s) {
  if (rec == nullptr) return;
  obs::Event e;
  e.type = obs::Type::StageEnter;
  e.stage = s.name();
  rec->emit(std::move(e));
}

void note_stage_exit(obs::Recorder* rec, const Stage& s) {
  if (rec == nullptr) return;
  obs::Event e;
  e.type = obs::Type::StageExit;
  e.stage = s.name();
  e.val = s.metrics().rounds;
  if (!s.succeeded()) e.note = "failed";
  rec->emit(std::move(e));
}

}  // namespace

void Pipeline::enter_stage() {
  note_stage_enter(ctx_.events, *stages_[current_]);
  stages_[current_]->init(ctx_);
  advance_past_done();
}

namespace {

// Per-stage telemetry at stage completion (rare): the OBD vs DLE vs Collect
// round and wall breakdown, keyed by stage kind. The by-name slow path is
// fine here — a pipeline completes a handful of stages per run.
void note_stage_done(const Stage& s) {
  const char* key = "baseline";
  switch (s.kind()) {
    case StageKind::Obd: key = "obd"; break;
    case StageKind::Dle: key = "dle"; break;
    case StageKind::Collect: key = "collect"; break;
    case StageKind::Baseline: key = "baseline"; break;
    case StageKind::Zoo: key = "zoo"; break;
  }
  const std::string prefix = std::string("pipeline.") + key;
  const StageMetrics& m = s.metrics();
  telemetry::add_count(prefix + ".completions", 1);
  telemetry::add_count(prefix + ".rounds", static_cast<std::uint64_t>(m.rounds));
  if (telemetry::enabled() && m.wall_ms > 0) {
    telemetry::add_count(prefix + ".wall_ns",
                         static_cast<std::uint64_t>(m.wall_ms * 1e6),
                         telemetry::Kind::Time);
  }
}

}  // namespace

void Pipeline::advance_past_done() {
  while (!done_ && stages_[current_]->done()) {
    note_stage_done(*stages_[current_]);
    note_stage_exit(ctx_.events, *stages_[current_]);
    if (!stages_[current_]->succeeded()) {
      done_ = true;  // a failed stage stops the pipeline
      return;
    }
    if (++current_ == stages_.size()) {
      done_ = true;
      return;
    }
    note_stage_enter(ctx_.events, *stages_[current_]);
    stages_[current_]->init(ctx_);
  }
}

bool Pipeline::step_round() {
  if (!inited_) init();
  if (done_) return true;
  if (ctx_.events != nullptr) ctx_.events->begin_round();
  Stage& stage = *stages_[current_];
  stage.step_round();
  if (ctx_.on_round) ctx_.on_round(stage, ctx_);
  advance_past_done();
  if (ctx_.events != nullptr) ctx_.events->end_round();
  return done_;
}

PipelineOutcome Pipeline::run() {
  while (!step_round()) {
  }
  return outcome();
}

PipelineOutcome Pipeline::outcome() const {
  PipelineOutcome out;
  out.completed = done_ && !stages_.empty();
  out.stages.reserve(stages_.size());
  for (const auto& s : stages_) {
    out.completed = out.completed && s->succeeded();
    out.stages.push_back(StageReport{s->name(), s->kind(), s->status(), s->metrics()});
  }
  out.leader = ctx_.leader;
  if (ctx_.sys != nullptr) {
    out.moves = ctx_.sys->moves() - moves0_;
    out.peak_occupancy_cells = ctx_.sys->peak_occupancy_cells();
  }
  out.wall_ms = ms_since(t0_);
  return out;
}

void Pipeline::save(Snapshot& snap) const {
  PM_CHECK_MSG(inited_, "save before init: nothing to checkpoint");
  snap.put_mark(kSnapPipeline);
  // Configuration fingerprint, validated on restore: a snapshot resumed
  // under different seeds/order/occupancy or a different stage composition
  // would silently diverge instead of reproducing the run.
  snap.put(ctx_.seeds.base);
  snap.put(static_cast<std::uint64_t>(ctx_.seeds.kind));
  snap.put(static_cast<std::uint64_t>(ctx_.order));
  snap.put(static_cast<std::uint64_t>(ctx_.occupancy));
  snap.put_i(ctx_.max_rounds);
  snap.put(shape_fingerprint(ctx_.initial));
  snap.put(stages_.size());
  for (const auto& s : stages_) {
    snap.put(static_cast<std::uint64_t>(s->kind()));
    snap.put(s->config_word());
  }

  snap.put(current_);
  snap.put(done_ ? 1 : 0);
  snap.put_i(moves0_);
  snap.put_i(ctx_.leader);
  snap.put_i(ctx_.leader_node.x);
  snap.put_i(ctx_.leader_node.y);
  snap.put(ctx_.sys != nullptr ? 1 : 0);
  if (ctx_.sys != nullptr) save_system(snap, *ctx_.sys);
  for (const auto& s : stages_) s->save(snap);
}

void Pipeline::restore(const Snapshot& snap) {
  PM_CHECK_MSG(!inited_, "restore into an already-started pipeline");
  PM_CHECK_MSG(!stages_.empty(), "pipeline has no stages");
  snap.expect_mark(kSnapPipeline);
  PM_CHECK_MSG(snap.get() == ctx_.seeds.base, "snapshot seed mismatch");
  PM_CHECK_MSG(snap.get() == static_cast<std::uint64_t>(ctx_.seeds.kind),
               "snapshot seed-policy mismatch");
  PM_CHECK_MSG(snap.get() == static_cast<std::uint64_t>(ctx_.order),
               "snapshot scheduler-order mismatch");
  // The occupancy mode is an index implementation choice, observably
  // neutral (identical trajectories and metrics, the peak-extent gauge
  // included) — like the thread count, it may legitimately differ on
  // resume, and the fault-injection harness exercises exactly that.
  (void)snap.get();
  PM_CHECK_MSG(snap.get_i() == ctx_.max_rounds, "snapshot round-budget mismatch");
  PM_CHECK_MSG(snap.get() == shape_fingerprint(ctx_.initial),
               "snapshot initial-shape mismatch");
  PM_CHECK_MSG(snap.get() == stages_.size(), "snapshot stage-count mismatch");
  for (const auto& s : stages_) {
    PM_CHECK_MSG(snap.get() == static_cast<std::uint64_t>(s->kind()),
                 "snapshot stage-composition mismatch");
    PM_CHECK_MSG(snap.get() == s->config_word(),
                 "snapshot stage-option mismatch (same kind, different variant)");
  }

  inited_ = true;
  t0_ = WallClock::now();
  current_ = static_cast<std::size_t>(snap.get());
  done_ = snap.get() != 0;
  moves0_ = snap.get_i();
  ctx_.leader = static_cast<ParticleId>(snap.get_i());
  ctx_.leader_node.x = static_cast<std::int32_t>(snap.get_i());
  ctx_.leader_node.y = static_cast<std::int32_t>(snap.get_i());
  const bool has_sys = snap.get() != 0;
  if (has_sys) {
    if (ctx_.sys == nullptr) {
      owned_sys_ = RunContext::System(ctx_.occupancy);
      ctx_.sys = &owned_sys_;
    }
    restore_system(snap, *ctx_.sys);
  }
  for (const auto& s : stages_) s->restore(ctx_, snap);
}

}  // namespace pm::pipeline
