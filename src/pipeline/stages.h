// Stage adapters: the paper's phases and the Table 1 baselines behind the
// one Stage interface (pipeline.h). Each adapter owns its phase engine,
// maps its round loop onto step_round(), applies the inter-stage glue the
// legacy elect_leader code hand-wired (OBD output -> DLE input, DLE outcome
// -> Collect leader), and serializes the engine's protocol state while
// running.
#pragma once

#include <memory>

#include "core/dle/dle.h"
#include "pipeline/pipeline.h"

namespace pm::baselines {
class ErosionRun;
class ContestRun;
}  // namespace pm::baselines

namespace pm::core {
class CollectRun;
class ObdRun;
}  // namespace pm::core

namespace pm::pipeline {

// Primitive OBD (paper §5): steps the v-node engine; on completion writes
// outer_ports into every particle's DleState (`outer` plus the derived
// `eligible` flags) — exactly the input Algorithm DLE consumes.
class ObdStage final : public Stage {
 public:
  struct Options {
    // The elect_leader glue skips OBD for single-particle systems (the
    // oracle values from make_system already hold); standalone OBD runs
    // unconditionally.
    bool skip_if_single = false;
  };

  ObdStage();
  explicit ObdStage(Options opts);
  ~ObdStage() override;

  [[nodiscard]] const char* name() const override { return "obd"; }
  [[nodiscard]] StageKind kind() const override { return StageKind::Obd; }
  [[nodiscard]] std::uint64_t config_word() const override {
    return opts_.skip_if_single ? 1 : 0;
  }
  void init(RunContext& ctx) override;
  bool step_round() override;

  // The live protocol engine, for the audit layer's OBD conservation
  // invariant (nullptr while Pending or when the stage was skipped).
  [[nodiscard]] const core::ObdRun* run() const { return obd_.get(); }

 protected:
  void state_save(Snapshot& snap) const override;
  void state_restore(RunContext& ctx, const Snapshot& snap) override;

 private:
  void finish_success();

  Options opts_;
  RunContext* ctx_ = nullptr;
  std::unique_ptr<core::ObdRun> obd_;
};

// Algorithm DLE (paper §3/§4) driven by the strong-scheduler engine:
// sequential amoebot::Engine, exec::ParallelEngine (ctx.threads >= 1), or
// the hook-instrumented engine when ctx.activation_hook is set. Succeeds
// iff the engine terminates within budget with a unique leader, and then
// publishes ctx.leader / ctx.leader_node for downstream stages.
class DleStage final : public Stage {
 public:
  DleStage();
  explicit DleStage(core::Dle::Options opts);
  ~DleStage() override;

  [[nodiscard]] const char* name() const override { return "dle"; }
  [[nodiscard]] StageKind kind() const override { return StageKind::Dle; }
  [[nodiscard]] std::uint64_t config_word() const override;
  void init(RunContext& ctx) override;
  bool step_round() override;

 protected:
  void state_save(Snapshot& snap) const override;
  void state_restore(RunContext& ctx, const Snapshot& snap) override;

 private:
  // Type-erases Engine<Dle> / Engine<Dle, Hook> / ParallelEngine<Dle>; all
  // three share one checkpoint word layout, so snapshots are portable
  // across engine choices.
  struct Driver {
    virtual ~Driver() = default;
    virtual void start() = 0;
    virtual bool step_round() = 0;
    [[nodiscard]] virtual const amoebot::RunResult& result() const = 0;
    virtual amoebot::RunResult finish() = 0;
    virtual void save(Snapshot& snap) const = 0;
    virtual void restore(const Snapshot& snap) = 0;
  };
  template <typename EngineT>
  struct DriverImpl;

  void make_driver(RunContext& ctx, bool start_now);
  void finish_run();

  core::Dle::Options dle_opts_{};
  core::Dle algo_;
  RunContext* ctx_ = nullptr;
  std::unique_ptr<Driver> driver_;
};

// Algorithm Collect (paper §4.3): reconnection from the elected leader.
class CollectStage final : public Stage {
 public:
  CollectStage();
  ~CollectStage() override;

  [[nodiscard]] const char* name() const override { return "collect"; }
  [[nodiscard]] StageKind kind() const override { return StageKind::Collect; }
  void init(RunContext& ctx) override;
  bool step_round() override;

 protected:
  void state_save(Snapshot& snap) const override;
  void state_restore(RunContext& ctx, const Snapshot& snap) override;

 private:
  RunContext* ctx_ = nullptr;
  std::unique_ptr<core::CollectRun> collect_;
};

// Sequential-erosion baseline ([22]/[3] class). Runs on the initial shape
// (no particle system); fails immediately on a holey input.
class ErosionStage final : public Stage {
 public:
  ErosionStage();
  ~ErosionStage() override;

  [[nodiscard]] const char* name() const override { return "baseline_erosion"; }
  [[nodiscard]] StageKind kind() const override { return StageKind::Baseline; }
  [[nodiscard]] bool uses_system() const override { return false; }
  void init(RunContext& ctx) override;
  bool step_round() override;

 protected:
  void state_save(Snapshot& snap) const override;
  void state_restore(RunContext& ctx, const Snapshot& snap) override;

 private:
  void sync(bool fin);
  RunContext* ctx_ = nullptr;
  std::unique_ptr<baselines::ErosionRun> run_;
};

// Randomized boundary-contest baseline ([19]/[10] class); steps at phase
// granularity (a phase's round cost is variable). Seeded from the policy's
// base seed, matching the legacy driver.
class ContestStage final : public Stage {
 public:
  ContestStage();
  ~ContestStage() override;

  [[nodiscard]] const char* name() const override { return "baseline_contest"; }
  [[nodiscard]] StageKind kind() const override { return StageKind::Baseline; }
  [[nodiscard]] bool uses_system() const override { return false; }
  void init(RunContext& ctx) override;
  bool step_round() override;

 protected:
  void state_save(Snapshot& snap) const override;
  void state_restore(RunContext& ctx, const Snapshot& snap) override;

 private:
  void sync(bool fin);
  RunContext* ctx_ = nullptr;
  std::unique_ptr<baselines::ContestRun> run_;
};

}  // namespace pm::pipeline
