// The unified Stage/Pipeline API.
//
// The paper's algorithm is a pipeline of round-synchronous phases
// (OBD §5 → DLE §3/§4 → Collect §4.3); the repo's baselines are phases of
// the same shape. This layer gives every phase one interface — a Stage that
// is initialized against a RunContext, stepped one asynchronous round at a
// time, and checkpointed with save()/restore() — and a Pipeline that
// composes stages sequentially: a stage's success gates the next stage, any
// failure (round budget exhausted, no unique leader) stops the run.
//
// A RunContext carries everything a run needs exactly once:
//   * SeedPolicy — the single seed convention (construction + scheduling
//     derive from one base seed; a legacy mode reproduces the seed repo's
//     split convention bit-for-bit),
//   * OccupancyMode, scheduler Order, thread count, per-stage round budget,
//   * optional per-round observer and per-activation hooks.
//
// Checkpoint/resume: Pipeline::save captures the particle system (bodies,
// per-particle DleState, movement counter, dense-occupancy geometry + peak)
// and every stage's progress into a pm::Snapshot; a freshly constructed
// Pipeline with the same stage composition restores and continues, and the
// final outcome — including every metric except wall-clock times — is
// bit-for-bit identical to an uninterrupted run, even across process images
// (Snapshot::serialize/parse) and across engine choices (a run saved under
// the sequential Engine resumes under exec::ParallelEngine and vice versa).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "amoebot/engine.h"
#include "core/dle/dle.h"
#include "grid/shape.h"
#include "util/snapshot.h"
#include "util/timing.h"

namespace pm::obs {
class Recorder;
}

namespace pm::pipeline {

// The single seed convention. Every run derives both its construction rng
// (particle orientations) and its scheduler seed from one base:
//   Unified     — construction and scheduling share `base` (the convention
//                 the seed repo's elect_leader and scaling benches used),
//   LegacySplit — construction Rng(base), scheduling base + 1 (the seed
//                 repo's DleCollect/ablation convention, kept so those
//                 suites reproduce bit-for-bit).
struct SeedPolicy {
  enum class Kind : std::uint8_t { Unified, LegacySplit };

  std::uint64_t base = 1;
  Kind kind = Kind::Unified;

  [[nodiscard]] static SeedPolicy unified(std::uint64_t seed) { return {seed, Kind::Unified}; }
  [[nodiscard]] static SeedPolicy legacy_split(std::uint64_t seed) {
    return {seed, Kind::LegacySplit};
  }

  [[nodiscard]] std::uint64_t build_seed() const { return base; }
  [[nodiscard]] std::uint64_t schedule_seed() const {
    return kind == Kind::Unified ? base : base + 1;
  }
};

// What a stage reports while running and after it is done. wall_ms restarts
// from zero on checkpoint restore (the only non-deterministic field).
struct StageMetrics {
  long rounds = 0;
  long long activations = 0;  // Engine-driven and zoo stages only
  int phases = 0;             // Collect doubling phases only
  double wall_ms = 0.0;
};

enum class StageKind : std::uint8_t { Obd, Dle, Collect, Baseline, Zoo };
enum class StageStatus : std::uint8_t { Pending, Running, Succeeded, Failed };

class Stage;

// One run's full configuration plus the shared mutable state the stages
// hand to each other. The Pipeline owns the particle system unless the
// caller provides one (elect_leader's operate-in-place overload).
struct RunContext {
  using System = amoebot::System<core::DleState>;
  using RoundObserver = std::function<void(const Stage&, const RunContext&)>;
  using ActivationHook = std::function<void(System&, amoebot::ParticleId)>;
  using ErodeHook = std::function<void(grid::Node)>;

  // --- configuration ---
  grid::Shape initial;
  SeedPolicy seeds{};
  amoebot::Order order = amoebot::Order::RandomPerm;
  amoebot::OccupancyMode occupancy = amoebot::kDefaultOccupancy;
  // 0 = sequential Engine; >= 1 = exec::ParallelEngine with that many
  // threads driving the DLE stage (results identical either way).
  int threads = 0;
  long max_rounds = 8'000'000;  // per-stage asynchronous-round budget
  // Invoked after every pipeline round with the active stage (viz traces,
  // instrumentation). Not serialized: re-attach after restore.
  RoundObserver on_round;
  // Invoked after every activation of the DLE stage (e.g. the disconnection
  // ablation's component tracking). Sequential engine only.
  ActivationHook activation_hook;
  // Invoked for every point the DLE stage removes from the eligible set S_e
  // (the audit layer's erosion-invariant feed; see src/audit). Works under
  // every engine — with exec::ParallelEngine calls arrive concurrently from
  // pool threads, so the hook must be thread-safe. Not serialized:
  // re-attach after restore.
  ErodeHook erode_hook;
  // Optional protocol event recorder (src/obs). Null = tracing off; every
  // instrument site pays one pointer test. The Pipeline drives its round
  // clock; stages and engines emit through it. Not serialized: re-attach
  // (obs::attach) after restore, as with the hooks above.
  obs::Recorder* events = nullptr;

  // --- run state (managed by Pipeline) ---
  System* sys = nullptr;
  amoebot::ParticleId leader = amoebot::kNoParticle;
  grid::Node leader_node{};  // the leader's node when DLE finished

  [[nodiscard]] System& system() const {
    PM_CHECK_MSG(sys != nullptr, "RunContext has no particle system (baseline-only run?)");
    return *sys;
  }
};

// One composable phase. Lifecycle: Pending -> init() -> Running ->
// step_round() ... -> Succeeded | Failed. save()/restore() checkpoint any
// status; protocol state is serialized only while Running (a finished
// stage's effects live in the system snapshot).
class Stage {
 public:
  virtual ~Stage() = default;

  [[nodiscard]] virtual const char* name() const = 0;
  [[nodiscard]] virtual StageKind kind() const = 0;
  // Baseline stages run on the initial shape alone; the Pipeline skips
  // building a particle system when no stage needs one.
  [[nodiscard]] virtual bool uses_system() const { return true; }
  // Stage-specific option bits (e.g. DLE's connected_pull), folded into the
  // checkpoint fingerprint so a snapshot cannot resume under a stage that
  // shares the kind but runs a different variant.
  [[nodiscard]] virtual std::uint64_t config_word() const { return 0; }

  virtual void init(RunContext& ctx) = 0;
  // Advances one asynchronous round; returns true once the stage is done.
  virtual bool step_round() = 0;

  [[nodiscard]] StageStatus status() const { return status_; }
  [[nodiscard]] bool done() const {
    return status_ == StageStatus::Succeeded || status_ == StageStatus::Failed;
  }
  [[nodiscard]] bool succeeded() const { return status_ == StageStatus::Succeeded; }
  // Live while Running (wall time measured on demand — step_round stays
  // clock-free), final once done.
  [[nodiscard]] StageMetrics metrics() const {
    StageMetrics m = metrics_;
    if (status_ == StageStatus::Running) m.wall_ms = ms_since(t0_);
    return m;
  }

  void save(Snapshot& snap) const;
  void restore(RunContext& ctx, const Snapshot& snap);

 protected:
  // Running-state serialization, provided by each stage.
  virtual void state_save(Snapshot& snap) const = 0;
  virtual void state_restore(RunContext& ctx, const Snapshot& snap) = 0;

  StageStatus status_ = StageStatus::Pending;
  StageMetrics metrics_{};
  WallClock::time_point t0_{};  // set by init()/state_restore()
};

// Per-stage summary in a PipelineOutcome.
struct StageReport {
  const char* name = "";
  StageKind kind = StageKind::Dle;
  StageStatus status = StageStatus::Pending;
  StageMetrics metrics{};
};

struct PipelineOutcome {
  bool completed = false;  // every stage ran and succeeded
  std::vector<StageReport> stages;
  amoebot::ParticleId leader = amoebot::kNoParticle;
  long long moves = 0;  // movement ops across all stages of this run
  long long peak_occupancy_cells = 0;
  double wall_ms = 0.0;

  [[nodiscard]] long total_rounds() const;
  // First stage of the given kind, or nullptr.
  [[nodiscard]] const StageReport* stage(StageKind k) const;
};

class Pipeline {
 public:
  explicit Pipeline(RunContext ctx) : ctx_(std::move(ctx)) {}

  // Movable only before init(): initialized stages hold pointers into the
  // pipeline's context and owned system (enforced with a loud failure).
  Pipeline(Pipeline&& other);
  Pipeline& operator=(Pipeline&&) = delete;
  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  // The paper's standard composition: [OBD when no oracle] -> DLE ->
  // [Collect when reconnecting and not the connected-pull ablation].
  struct StandardOptions {
    bool use_boundary_oracle = false;
    bool reconnect = true;
    bool connected_pull = false;
  };
  [[nodiscard]] static Pipeline standard(RunContext ctx, const StandardOptions& opts);

  Pipeline& add(std::unique_ptr<Stage> stage);

  [[nodiscard]] RunContext& context() { return ctx_; }
  [[nodiscard]] const RunContext& context() const { return ctx_; }
  [[nodiscard]] const std::vector<std::unique_ptr<Stage>>& stages() const { return stages_; }

  // Builds the particle system (unless the context carries one) and enters
  // the first stage. step_round() calls init() implicitly.
  void init();
  // One round of the active stage; returns true once the pipeline is done.
  bool step_round();
  [[nodiscard]] bool done() const { return done_; }

  // init() + step to completion.
  PipelineOutcome run();
  [[nodiscard]] PipelineOutcome outcome() const;

  // Checkpoint/resume at round boundaries. restore() must be called on a
  // freshly constructed Pipeline with an identical stage composition and
  // configuration (seeds, order; the thread count and occupancy mode may
  // differ — engine snapshots are engine-portable, and the occupancy index
  // is observably neutral, peak-extent gauge included: a hash system
  // restored from dense geometry keeps the gauge via a shadow box).
  void save(Snapshot& snap) const;
  void restore(const Snapshot& snap);

 private:
  void enter_stage();        // init stages_[current_], then skip past done stages
  void advance_past_done();  // failure stops the pipeline; success moves on

  RunContext ctx_;
  std::vector<std::unique_ptr<Stage>> stages_;
  RunContext::System owned_sys_;
  std::size_t current_ = 0;
  bool inited_ = false;
  bool done_ = false;
  long long moves0_ = 0;
  WallClock::time_point t0_{};
};

}  // namespace pm::pipeline
