#include "pipeline/stages.h"

#include <utility>

#include "baselines/baselines.h"
#include "core/collect/collect.h"
#include "core/obd/obd.h"
#include "exec/parallel_engine.h"
#include "obs/obs.h"
#include "util/check.h"

namespace pm::pipeline {

using amoebot::ParticleId;
using core::DleState;

// --- ObdStage --------------------------------------------------------------

ObdStage::ObdStage() = default;
ObdStage::ObdStage(Options opts) : opts_(opts) {}
ObdStage::~ObdStage() = default;

void ObdStage::init(RunContext& ctx) {
  ctx_ = &ctx;
  t0_ = WallClock::now();
  if (opts_.skip_if_single && ctx.system().particle_count() <= 1) {
    // make_system's oracle initialization already holds; nothing to learn.
    status_ = StageStatus::Succeeded;
    return;
  }
  obd_ = std::make_unique<core::ObdRun>(ctx.system());
  obd_->events = ctx.events;
  status_ = StageStatus::Running;
}

void ObdStage::finish_success() {
  // The glue the legacy elect_leader hand-wired: publish the detected
  // boundary into every particle's DLE input flags.
  RunContext::System& sys = ctx_->system();
  for (ParticleId p = 0; p < sys.particle_count(); ++p) {
    DleState& st = sys.state(p);
    st.outer = obd_->outer_ports(p);
    for (int i = 0; i < 6; ++i) {
      st.eligible[static_cast<std::size_t>(i)] = !st.outer[static_cast<std::size_t>(i)];
    }
  }
  status_ = StageStatus::Succeeded;
}

bool ObdStage::step_round() {
  if (done()) return true;
  // Budget check before the round, exactly like the legacy run loop
  // (`while (rounds_ < max_rounds)`): an exhausted budget executes nothing.
  if (obd_->rounds() >= ctx_->max_rounds) {
    status_ = StageStatus::Failed;
    metrics_.wall_ms = ms_since(t0_);
    return true;
  }
  const bool fin = obd_->step_round();
  metrics_.rounds = obd_->rounds();
  if (fin) finish_success();
  if (done()) metrics_.wall_ms = ms_since(t0_);
  return done();
}

void ObdStage::state_save(Snapshot& snap) const { obd_->save(snap); }

void ObdStage::state_restore(RunContext& ctx, const Snapshot& snap) {
  ctx_ = &ctx;
  t0_ = WallClock::now();
  obd_ = std::make_unique<core::ObdRun>(ctx.system());
  obd_->events = ctx.events;
  obd_->restore(snap);
}

// --- DleStage --------------------------------------------------------------

template <typename EngineT>
struct DleStage::DriverImpl final : DleStage::Driver {
  EngineT engine;
  template <typename... Args>
  explicit DriverImpl(Args&&... args) : engine(std::forward<Args>(args)...) {}

  void start() override { engine.start(); }
  bool step_round() override { return engine.step_round(); }
  [[nodiscard]] const amoebot::RunResult& result() const override { return engine.result(); }
  amoebot::RunResult finish() override { return engine.finish(); }
  void save(Snapshot& snap) const override { engine.save(snap); }
  void restore(const Snapshot& snap) override { engine.restore(snap); }
};

DleStage::DleStage() = default;
DleStage::DleStage(core::Dle::Options opts) : dle_opts_(opts), algo_(opts) {}
DleStage::~DleStage() = default;

std::uint64_t DleStage::config_word() const { return dle_opts_.connected_pull ? 1 : 0; }

void DleStage::make_driver(RunContext& ctx, bool start_now) {
  RunContext::System& sys = ctx.system();
  // Feed S_e removals to whoever asked (the audit layer). Re-wired on every
  // driver construction, including checkpoint restore, because hooks are
  // never serialized.
  algo_.on_erode = ctx.erode_hook;
  if (obs::Recorder* rec = ctx.events; rec != nullptr) {
    // Leader election may fire on a pool thread: async lane.
    algo_.on_leader = [rec](ParticleId p, grid::Node at) {
      obs::Event e;
      e.type = obs::Type::Leader;
      e.stage = "dle";
      e.v = static_cast<std::int32_t>(p);
      e.val = obs::pack_xy(at.x, at.y);
      rec->emit_async(std::move(e));
    };
  } else {
    algo_.on_leader = nullptr;
  }
  const amoebot::RunOptions ropts{ctx.order, ctx.seeds.schedule_seed(), ctx.max_rounds};
  if (ctx.activation_hook) {
    PM_CHECK_MSG(ctx.threads == 0,
                 "activation hooks require the sequential engine (no parallel counterpart)");
    using HookEngine = amoebot::Engine<core::Dle, RunContext::ActivationHook>;
    driver_ = std::make_unique<DriverImpl<HookEngine>>(sys, algo_, ropts, ctx.activation_hook);
  } else if (ctx.threads > 0) {
    using Parallel = exec::ParallelEngine<core::Dle>;
    driver_ = std::make_unique<DriverImpl<Parallel>>(
        sys, algo_, exec::ParallelRunOptions{ctx.order, ropts.seed, ctx.max_rounds, ctx.threads});
  } else {
    driver_ = std::make_unique<DriverImpl<amoebot::Engine<core::Dle>>>(sys, algo_, ropts);
  }
  if (start_now) driver_->start();
}

void DleStage::init(RunContext& ctx) {
  ctx_ = &ctx;
  t0_ = WallClock::now();
  make_driver(ctx, /*start_now=*/true);
  status_ = StageStatus::Running;
}

void DleStage::finish_run() {
  const amoebot::RunResult rres = driver_->finish();
  metrics_.rounds = rres.rounds;
  metrics_.activations = rres.activations;
  metrics_.wall_ms = rres.wall_ms;
  const core::ElectionOutcome outcome = core::election_outcome(ctx_->system());
  if (rres.completed && outcome.leaders == 1) {
    ctx_->leader = outcome.leader;
    ctx_->leader_node = ctx_->system().body(outcome.leader).head;
    status_ = StageStatus::Succeeded;
  } else {
    // Termination without a unique leader is a failed election, exactly as
    // the legacy elect_leader and scenario runner treated it.
    status_ = StageStatus::Failed;
  }
}

bool DleStage::step_round() {
  if (done()) return true;
  const bool fin = driver_->step_round();
  metrics_.rounds = driver_->result().rounds;
  metrics_.activations = driver_->result().activations;
  if (fin) finish_run();
  return done();
}

void DleStage::state_save(Snapshot& snap) const { driver_->save(snap); }

void DleStage::state_restore(RunContext& ctx, const Snapshot& snap) {
  ctx_ = &ctx;
  t0_ = WallClock::now();
  make_driver(ctx, /*start_now=*/false);
  driver_->restore(snap);
}

// --- CollectStage ----------------------------------------------------------

CollectStage::CollectStage() = default;
CollectStage::~CollectStage() = default;

void CollectStage::init(RunContext& ctx) {
  ctx_ = &ctx;
  t0_ = WallClock::now();
  PM_CHECK_MSG(ctx.leader != amoebot::kNoParticle,
               "Collect requires an elected leader (run a DLE stage first)");
  collect_ = std::make_unique<core::CollectRun>(ctx.system(), ctx.leader);
  collect_->events = ctx.events;
  status_ = StageStatus::Running;
}

bool CollectStage::step_round() {
  if (done()) return true;
  // Budget check before the round (the legacy `while (rounds_ < max)`
  // semantics): an exhausted budget must not mutate the system further.
  if (collect_->rounds() >= ctx_->max_rounds) {
    status_ = StageStatus::Failed;
    metrics_.wall_ms = ms_since(t0_);
    return true;
  }
  const bool fin = collect_->step_round();
  metrics_.rounds = collect_->rounds();
  metrics_.phases = collect_->phase_count();
  if (fin) status_ = StageStatus::Succeeded;
  if (done()) metrics_.wall_ms = ms_since(t0_);
  return done();
}

void CollectStage::state_save(Snapshot& snap) const { collect_->save(snap); }

void CollectStage::state_restore(RunContext& ctx, const Snapshot& snap) {
  ctx_ = &ctx;
  t0_ = WallClock::now();
  collect_ = std::make_unique<core::CollectRun>(ctx.system(), snap);
  collect_->events = ctx.events;
}

// --- ErosionStage ----------------------------------------------------------

ErosionStage::ErosionStage() = default;
ErosionStage::~ErosionStage() = default;

void ErosionStage::sync(bool fin) {
  metrics_.rounds = run_->rounds();
  if (fin) {
    status_ = run_->completed() ? StageStatus::Succeeded : StageStatus::Failed;
    metrics_.wall_ms = ms_since(t0_);
  }
}

void ErosionStage::init(RunContext& ctx) {
  ctx_ = &ctx;
  t0_ = WallClock::now();
  run_ = std::make_unique<baselines::ErosionRun>(ctx.initial);
  status_ = StageStatus::Running;
  sync(run_->done());
}

bool ErosionStage::step_round() {
  if (done()) return true;
  sync(run_->step_round());
  return done();
}

void ErosionStage::state_save(Snapshot& snap) const { run_->save(snap); }

void ErosionStage::state_restore(RunContext& ctx, const Snapshot& snap) {
  ctx_ = &ctx;
  t0_ = WallClock::now();
  run_ = std::make_unique<baselines::ErosionRun>(ctx.initial, snap);
}

// --- ContestStage ----------------------------------------------------------

ContestStage::ContestStage() = default;
ContestStage::~ContestStage() = default;

void ContestStage::sync(bool fin) {
  metrics_.rounds = run_->rounds();
  if (fin) {
    status_ = run_->completed() ? StageStatus::Succeeded : StageStatus::Failed;
    metrics_.wall_ms = ms_since(t0_);
  }
}

void ContestStage::init(RunContext& ctx) {
  ctx_ = &ctx;
  t0_ = WallClock::now();
  run_ = std::make_unique<baselines::ContestRun>(ctx.initial, ctx.seeds.build_seed());
  status_ = StageStatus::Running;
  sync(run_->done());
}

bool ContestStage::step_round() {
  if (done()) return true;
  sync(run_->step_round());
  return done();
}

void ContestStage::state_save(Snapshot& snap) const { run_->save(snap); }

void ContestStage::state_restore(RunContext& ctx, const Snapshot& snap) {
  ctx_ = &ctx;
  t0_ = WallClock::now();
  run_ = std::make_unique<baselines::ContestRun>(ctx.initial, snap);
}

}  // namespace pm::pipeline
