#include "grid/local_boundary.h"

#include "util/check.h"

namespace pm::grid {

bool is_erodable(const Shape& s, Node v) {
  PM_CHECK(s.contains(v));
  const auto run = single_local_boundary(v, [&](Node u) { return s.contains(u); });
  if (!run) return false;
  // The run's empty neighbors all lie in one face; erodable requires that
  // face to be the outer one.
  const Node u = neighbor(v, run->first);
  return s.face_of(u) == kOuterFace;
}

bool is_sce(const Shape& s, Node v) {
  PM_CHECK(s.contains(v));
  const auto run = single_local_boundary(v, [&](Node u) { return s.contains(u); });
  if (!run || run->count() <= 0) return false;
  const Node u = neighbor(v, run->first);
  return s.face_of(u) == kOuterFace;
}

std::vector<Node> sce_points(const Shape& s) {
  std::vector<Node> out;
  for (const Node v : s.boundary_points()) {
    if (is_sce(s, v)) out.push_back(v);
  }
  return out;
}

}  // namespace pm::grid
