// Metric quantities from paper §2.1/§2.2: distances and diameters of the
// particle-system shape S_P with respect to itself (D), its area (D_A) and
// the full grid (D_G), plus eccentricities (ε_G).
//
// Exact diameters run an all-pairs BFS (O(n·m)); `diameter_*_estimate`
// variants use iterated double-sweep BFS, which on these bridged-graph-like
// shapes is a tight lower bound and is what the large benchmark sweeps use.
#pragma once

#include <span>

#include "grid/shape.h"
#include "util/rng.h"

namespace pm::grid {

// Greatest dist_G between two nodes of the set (exact, O(n) via cube coords).
[[nodiscard]] int diameter_grid(std::span<const Node> nodes);

// Greatest dist_G from v to any node of the set (ε_G(v), exact, O(n)).
[[nodiscard]] int eccentricity_grid(Node v, std::span<const Node> nodes);

// Diameter of `sub` measured through shortest paths inside `super`
// (super must contain sub). Exact: BFS from every node of sub.
[[nodiscard]] int diameter_within_exact(std::span<const Node> sub, const Shape& super);

// Lower-bound estimate by `sweeps` double-sweep BFS iterations.
[[nodiscard]] int diameter_within_estimate(std::span<const Node> sub, const Shape& super,
                                           int sweeps, Rng& rng);

// D: diameter of the shape w.r.t. itself.
[[nodiscard]] inline int diameter_exact(const Shape& s) {
  return diameter_within_exact(s.nodes(), s);
}

// D_A: diameter of the shape w.r.t. its area (shape + holes).
[[nodiscard]] inline int diameter_area_exact(const Shape& s) {
  return diameter_within_exact(s.nodes(), s.area());
}

struct ShapeMetrics {
  int n = 0;        // number of points
  int n_area = 0;   // points of the area
  int d = 0;        // D
  int d_area = 0;   // D_A
  int d_grid = 0;   // D_G
  int l_out = 0;    // outer boundary length
  int l_max = 0;    // max boundary length
  int holes = 0;
};

// Computes all metrics; uses exact diameters when n <= exact_cutoff,
// otherwise the double-sweep estimate (deterministic: fixed internal seed).
[[nodiscard]] ShapeMetrics compute_metrics(const Shape& s, int exact_cutoff = 4000);

}  // namespace pm::grid
