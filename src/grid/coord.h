// Axial coordinates on the infinite triangular grid G (paper §2).
//
// Every grid point has six neighbors. We embed axial (x, y) into the plane as
// pos = x * (1, 0) + y * (1/2, sqrt(3)/2), so the six unit directions in
// *clockwise* order (the common chirality assumed by the paper) are:
//   E (1,0), SE (1,-1), SW (0,-1), W (-1,0), NW (-1,1), NE (0,1).
// Grid distance (dist_G) has the closed form (|dx| + |dy| + |dx+dy|) / 2.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iosfwd>

namespace pm::grid {

struct Node {
  std::int32_t x = 0;
  std::int32_t y = 0;

  friend constexpr auto operator<=>(const Node&, const Node&) = default;
};

std::ostream& operator<<(std::ostream& os, Node v);

// The six lattice directions, indexed 0..5 in clockwise order.
enum class Dir : std::uint8_t { E = 0, SE = 1, SW = 2, W = 3, NW = 4, NE = 5 };

inline constexpr int kDirCount = 6;

inline constexpr std::array<Node, kDirCount> kDirOffset = {{
    {1, 0},   // E
    {1, -1},  // SE
    {0, -1},  // SW
    {-1, 0},  // W
    {-1, 1},  // NW
    {0, 1},   // NE
}};

[[nodiscard]] constexpr Node offset(Dir d) noexcept {
  return kDirOffset[static_cast<std::size_t>(d)];
}

[[nodiscard]] constexpr Node neighbor(Node v, Dir d) noexcept {
  const Node o = offset(d);
  return {v.x + o.x, v.y + o.y};
}

[[nodiscard]] constexpr Dir dir_from_index(int i) noexcept {
  return static_cast<Dir>(((i % kDirCount) + kDirCount) % kDirCount);
}

[[nodiscard]] constexpr int index(Dir d) noexcept { return static_cast<int>(d); }

// Clockwise successor / predecessor in the cyclic direction order.
[[nodiscard]] constexpr Dir cw_next(Dir d) noexcept { return dir_from_index(index(d) + 1); }
[[nodiscard]] constexpr Dir ccw_next(Dir d) noexcept { return dir_from_index(index(d) - 1); }
[[nodiscard]] constexpr Dir opposite(Dir d) noexcept { return dir_from_index(index(d) + 3); }

// Rotates d clockwise by `steps` sixths of a full turn (negative = ccw).
[[nodiscard]] constexpr Dir rotated(Dir d, int steps) noexcept {
  return dir_from_index(index(d) + steps);
}

// Direction from a to an adjacent b. Precondition: grid_distance(a, b) == 1.
[[nodiscard]] Dir dir_between(Node a, Node b);

// dist_G: length of the shortest path in the full triangular grid.
[[nodiscard]] constexpr int grid_distance(Node a, Node b) noexcept {
  constexpr auto abs64 = [](std::int64_t v) { return v < 0 ? -v : v; };
  const std::int64_t dx = b.x - a.x;
  const std::int64_t dy = b.y - a.y;
  const std::int64_t s = abs64(dx) + abs64(dy) + abs64(dx + dy);
  return static_cast<int>(s / 2);
}

[[nodiscard]] constexpr bool adjacent(Node a, Node b) noexcept {
  return grid_distance(a, b) == 1;
}

struct NodeHash {
  std::size_t operator()(Node v) const noexcept {
    // Pack into 64 bits, then mix (splitmix64 finalizer).
    std::uint64_t h = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(v.x)) << 32) |
                      static_cast<std::uint32_t>(v.y);
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(h ^ (h >> 31));
  }
};

const char* dir_name(Dir d) noexcept;

}  // namespace pm::grid
