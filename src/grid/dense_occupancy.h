// DenseOccupancy: a bounding-box-indexed flat-array map Node -> id.
//
// The simulator's hottest operations are point queries against the set of
// occupied grid nodes (occupied / particle_at on every port inspection of
// every activation). Particle systems live in a compact window of the
// infinite grid — the initial shape's bounding box plus the slack the
// movement primitives create — so a flat row-major array over a growable
// bounding box (grid::FlatBox) turns each query into a bounds check plus
// one indexed load, replacing the hash-map probe of the seed engine.
//
// `peak_cells()` reports the largest allocation seen, which the engine
// surfaces as the "peak occupancy extent" run metric.
//
// Values are std::int32_t with kEmpty (-1) meaning unoccupied; the amoebot
// layer stores ParticleIds. The structure itself is algorithm-agnostic and
// lives in the grid layer.
#pragma once

#include <algorithm>
#include <cstdint>

#include "grid/coord.h"
#include "grid/flat_box.h"

namespace pm::grid {

class DenseOccupancy {
 public:
  using Value = std::int32_t;
  static constexpr Value kEmpty = -1;
  // Padding floor of grow_to (shared with BoxShadow, which must replay the
  // exact same growth rule).
  static constexpr std::int64_t kGrowPad = 4;

  DenseOccupancy() = default;

  // --- queries ---

  [[nodiscard]] bool contains(Node v) const { return find(v) != kEmpty; }

  [[nodiscard]] Value find(Node v) const {
    const Value* cell = box_.find(v);
    return cell == nullptr ? kEmpty : *cell;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  // --- mutation ---

  // Inserts v -> value (value >= 0). Precondition: v not present.
  void insert(Node v, Value value);

  // Removes v. Precondition: v present.
  void erase(Node v);

  void clear();

  // Pre-sizes the box to cover [lo, hi] (plus padding) in one allocation,
  // so construction from a known shape does not re-grow repeatedly.
  void reserve_box(Node lo, Node hi);

  // --- instrumentation ---

  // Number of cells currently allocated (box width * height); 0 when empty.
  [[nodiscard]] long long extent_cells() const { return box_.extent_cells(); }

  // Largest extent_cells() ever reached (the engine's peak-extent metric).
  [[nodiscard]] long long peak_cells() const { return peak_cells_; }

  // --- checkpoint/resume ---
  //
  // The box geometry must round-trip exactly (grow_to's padding depends on
  // growth history, so re-deriving it from the occupied set would diverge);
  // restore_box() reinstates a saved geometry and peak with all cells empty,
  // after which the caller re-inserts the occupied nodes.

  [[nodiscard]] const FlatBox<Value>& box() const { return box_; }

  void restore_box(std::int64_t min_x, std::int64_t min_y, std::int64_t width,
                   std::int64_t height, long long peak) {
    box_.reset_to(min_x, min_y, width, height, kEmpty, "DenseOccupancy");
    size_ = 0;
    peak_cells_ = peak;
  }

 private:
  // Grows the box to cover [lo, hi] (padded, existing cells kept) and
  // refreshes the peak-extent metric.
  void grow_to(std::int64_t lo_x, std::int64_t lo_y, std::int64_t hi_x,
               std::int64_t hi_y);

  FlatBox<Value> box_;
  std::size_t size_ = 0;
  long long peak_cells_ = 0;
};

// Geometry-only shadow of a DenseOccupancy box. A system running on the
// hash index after restoring a dense-geometry checkpoint replays the dense
// box's exact growth rule here — no allocation, just the box arithmetic —
// so the peak-extent gauge survives occupancy switches: a dense → hash →
// dense round-trip reports the same peak as an uninterrupted dense run.
// Disarmed (the default, and the state of a pure hash-mode run that never
// held dense geometry) it reports peak 0 and cover() costs one branch.
class BoxShadow {
 public:
  [[nodiscard]] bool armed() const { return armed_; }
  [[nodiscard]] long long peak_cells() const { return peak_; }
  [[nodiscard]] std::int64_t min_x() const { return min_x_; }
  [[nodiscard]] std::int64_t min_y() const { return min_y_; }
  [[nodiscard]] std::int64_t width() const { return width_; }
  [[nodiscard]] std::int64_t height() const { return height_; }

  // Seeds the shadow with a checkpoint's box geometry and peak.
  void arm(std::int64_t min_x, std::int64_t min_y, std::int64_t width,
           std::int64_t height, long long peak) {
    armed_ = true;
    min_x_ = min_x;
    min_y_ = min_y;
    width_ = width;
    height_ = height;
    peak_ = peak;
  }

  // Replays the growth a dense insert of v would trigger (FlatBox::grow_to
  // union-and-pad with DenseOccupancy's floor), geometry only.
  void cover(Node v) {
    if (!armed_) return;
    const std::int64_t dx = v.x - min_x_;
    const std::int64_t dy = v.y - min_y_;
    if (static_cast<std::uint64_t>(dx) < static_cast<std::uint64_t>(width_) &&
        static_cast<std::uint64_t>(dy) < static_cast<std::uint64_t>(height_)) {
      return;
    }
    std::int64_t lo_x = v.x;
    std::int64_t lo_y = v.y;
    std::int64_t hi_x = v.x;
    std::int64_t hi_y = v.y;
    if (width_ > 0) {
      lo_x = std::min(lo_x, min_x_);
      lo_y = std::min(lo_y, min_y_);
      hi_x = std::max(hi_x, min_x_ + width_ - 1);
      hi_y = std::max(hi_y, min_y_ + height_ - 1);
    }
    const std::int64_t pad_x = std::max(DenseOccupancy::kGrowPad, (hi_x - lo_x + 1) / 4);
    const std::int64_t pad_y = std::max(DenseOccupancy::kGrowPad, (hi_y - lo_y + 1) / 4);
    min_x_ = lo_x - pad_x;
    min_y_ = lo_y - pad_y;
    width_ = (hi_x + pad_x) - min_x_ + 1;
    height_ = (hi_y + pad_y) - min_y_ + 1;
    peak_ = std::max(peak_, static_cast<long long>(width_ * height_));
  }

 private:
  bool armed_ = false;
  std::int64_t min_x_ = 0;
  std::int64_t min_y_ = 0;
  std::int64_t width_ = 0;
  std::int64_t height_ = 0;
  long long peak_ = 0;
};

}  // namespace pm::grid
