// DenseOccupancy: a bounding-box-indexed flat-array map Node -> id.
//
// The simulator's hottest operations are point queries against the set of
// occupied grid nodes (occupied / particle_at on every port inspection of
// every activation). Particle systems live in a compact window of the
// infinite grid — the initial shape's bounding box plus the slack the
// movement primitives create — so a flat row-major array over a growable
// bounding box turns each query into a bounds check plus one indexed load,
// replacing the hash-map probe of the seed engine.
//
// Growth is amortized: when an insert lands outside the current box, the box
// is re-centered on the union and padded geometrically (quarter of each
// dimension, at least kGrowPad), and existing cells are copied row by row.
// `peak_cells()` reports the largest allocation seen, which the engine
// surfaces as the "peak occupancy extent" run metric.
//
// Values are std::int32_t with kEmpty (-1) meaning unoccupied; the amoebot
// layer stores ParticleIds. The structure itself is algorithm-agnostic and
// lives in the grid layer.
#pragma once

#include <cstdint>
#include <vector>

#include "grid/coord.h"

namespace pm::grid {

class DenseOccupancy {
 public:
  using Value = std::int32_t;
  static constexpr Value kEmpty = -1;

  DenseOccupancy() = default;

  // --- queries ---

  [[nodiscard]] bool contains(Node v) const { return find(v) != kEmpty; }

  [[nodiscard]] Value find(Node v) const {
    // Unsigned-compare bounds check: two comparisons cover the whole box
    // (a negative offset wraps to a huge unsigned value and is rejected).
    const std::int64_t dx = v.x - min_x_;
    const std::int64_t dy = v.y - min_y_;
    if (static_cast<std::uint64_t>(dx) >= static_cast<std::uint64_t>(width_) ||
        static_cast<std::uint64_t>(dy) >= static_cast<std::uint64_t>(height_)) {
      return kEmpty;
    }
    return cells_[static_cast<std::size_t>(dy * width_ + dx)];
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  // --- mutation ---

  // Inserts v -> value (value >= 0). Precondition: v not present.
  void insert(Node v, Value value);

  // Removes v. Precondition: v present.
  void erase(Node v);

  void clear();

  // Pre-sizes the box to cover [lo, hi] (plus padding) in one allocation,
  // so construction from a known shape does not re-grow repeatedly.
  void reserve_box(Node lo, Node hi);

  // --- instrumentation ---

  // Number of cells currently allocated (box width * height); 0 when empty.
  [[nodiscard]] long long extent_cells() const { return width_ * height_; }

  // Largest extent_cells() ever reached (the engine's peak-extent metric).
  [[nodiscard]] long long peak_cells() const { return peak_cells_; }

 private:
  static constexpr std::int64_t kGrowPad = 4;

  [[nodiscard]] bool in_box(Node v) const {
    return v.x >= min_x_ && v.x < min_x_ + width_ && v.y >= min_y_ &&
           v.y < min_y_ + height_;
  }
  [[nodiscard]] std::size_t cell_index(Node v) const {
    return static_cast<std::size_t>((v.y - min_y_) * width_ + (v.x - min_x_));
  }

  // Reallocates so the box covers [lo, hi], padded, keeping existing cells.
  void grow_to(std::int64_t lo_x, std::int64_t lo_y, std::int64_t hi_x,
               std::int64_t hi_y);

  std::vector<Value> cells_;
  std::int64_t min_x_ = 0;
  std::int64_t min_y_ = 0;
  std::int64_t width_ = 0;   // 0 = nothing allocated yet
  std::int64_t height_ = 0;
  std::size_t size_ = 0;
  long long peak_cells_ = 0;
};

}  // namespace pm::grid
