#include "grid/coord.h"

#include <ostream>

#include "util/check.h"

namespace pm::grid {

std::ostream& operator<<(std::ostream& os, Node v) {
  return os << '(' << v.x << ',' << v.y << ')';
}

Dir dir_between(Node a, Node b) {
  for (int i = 0; i < kDirCount; ++i) {
    const Dir d = dir_from_index(i);
    if (neighbor(a, d) == b) return d;
  }
  PM_CHECK_MSG(false, "dir_between: nodes " << a << " and " << b << " are not adjacent");
}

const char* dir_name(Dir d) noexcept {
  switch (d) {
    case Dir::E: return "E";
    case Dir::SE: return "SE";
    case Dir::SW: return "SW";
    case Dir::W: return "W";
    case Dir::NW: return "NW";
    case Dir::NE: return "NE";
  }
  return "?";
}

}  // namespace pm::grid
