// Shapes on the triangular grid (paper §2.1).
//
// A Shape is a finite set of grid points. It provides the face analysis the
// paper's definitions rest on: the unbounded outer face, holes (bounded faces
// containing at least one grid point), the area (shape plus hole points),
// and global boundaries (points of the shape bordering each face).
//
// Implementation note on faces: we identify a bounded face by the 6-connected
// component of its empty grid points. A bounded planar face with no grid
// point in it (a single triangle of occupied vertices) is not a hole by the
// paper's definition and is irrelevant to eligibility, so this component
// based view coincides with the paper's face-based one on all shapes that
// matter here.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "grid/coord.h"

namespace pm::grid {

using NodeSet = std::unordered_set<Node, NodeHash>;

inline constexpr int kOuterFace = 0;

class Shape {
 public:
  Shape() = default;
  explicit Shape(std::vector<Node> nodes);

  [[nodiscard]] bool contains(Node v) const { return set_.contains(v); }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] bool empty() const { return nodes_.empty(); }
  [[nodiscard]] std::span<const Node> nodes() const { return nodes_; }
  [[nodiscard]] const NodeSet& node_set() const { return set_; }

  // Tight bounding box of the nodes (both {0,0} for the empty shape).
  [[nodiscard]] Node bbox_min() const { return bbox_min_; }
  [[nodiscard]] Node bbox_max() const { return bbox_max_; }

  [[nodiscard]] bool is_connected() const;

  // --- Face analysis (lazily computed, cached) ---

  // Face id of an *empty* node: kOuterFace for the outer (unbounded) face,
  // 1..hole_count() for hole faces. `v` may be any node; nodes far from the
  // shape are on the outer face. Precondition: !contains(v).
  [[nodiscard]] int face_of(Node v) const;

  [[nodiscard]] int hole_count() const;

  // Hole points grouped per hole, indexed by face id - 1.
  [[nodiscard]] const std::vector<std::vector<Node>>& holes() const;

  [[nodiscard]] bool simply_connected() const { return hole_count() == 0; }

  // The area of the shape: the shape plus all of its hole points (Fig 5).
  [[nodiscard]] Shape area() const;

  // Points of the shape that have at least one empty neighbor (any face).
  [[nodiscard]] const std::vector<Node>& boundary_points() const;

  // Points of the shape bordering the given face (kOuterFace = outer
  // boundary; f >= 1 = the inner boundary around hole f).
  [[nodiscard]] const std::vector<Node>& boundary_of_face(int f) const;

  // L_out: number of points on the outer boundary.
  [[nodiscard]] int outer_boundary_length() const;

  // L_max: maximum number of points over all global boundaries.
  [[nodiscard]] int max_boundary_length() const;

  // True iff point v of the shape borders the given face.
  [[nodiscard]] bool on_boundary_of(Node v, int f) const;

 private:
  struct Analysis {
    // face id for every empty node in the expanded bounding box.
    std::unordered_map<Node, int, NodeHash> face;
    std::vector<std::vector<Node>> holes;                  // by face id - 1
    std::vector<std::vector<Node>> boundary_by_face;       // by face id
    std::vector<Node> all_boundary;
  };

  const Analysis& analysis() const;

  std::vector<Node> nodes_;
  NodeSet set_;
  Node bbox_min_{0, 0};
  Node bbox_max_{0, 0};
  mutable std::optional<Analysis> analysis_;
};

// Builds the induced-subgraph adjacency of a set of nodes once, for
// BFS-heavy metric computations. Node indices follow the given order.
class ShapeGraph {
 public:
  explicit ShapeGraph(std::span<const Node> nodes);

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] Node node(int i) const { return nodes_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] int index_of(Node v) const;          // -1 if absent
  [[nodiscard]] bool contains(Node v) const { return index_of(v) >= 0; }

  // Neighbor indices of node i (only neighbors inside the set), -1 padded.
  [[nodiscard]] const std::array<std::int32_t, kDirCount>& neighbors(int i) const {
    return adj_[static_cast<std::size_t>(i)];
  }

  // BFS distances from `src` (node index); unreachable = -1.
  [[nodiscard]] std::vector<int> bfs(int src) const;

  [[nodiscard]] bool is_connected() const;

 private:
  std::vector<Node> nodes_;
  std::unordered_map<Node, std::int32_t, NodeHash> index_;
  std::vector<std::array<std::int32_t, kDirCount>> adj_;
};

}  // namespace pm::grid
