#include "grid/vnode.h"

#include <unordered_map>

#include "util/check.h"

namespace pm::grid {

namespace {

// Key for locating the v-node of point v whose run contains direction d.
struct PointDir {
  Node v;
  int dir;
  friend bool operator==(const PointDir&, const PointDir&) = default;
};

struct PointDirHash {
  std::size_t operator()(const PointDir& k) const noexcept {
    return NodeHash{}(k.v) * 31 + static_cast<std::size_t>(k.dir);
  }
};

}  // namespace

VNodeRings::VNodeRings(const Shape& s) {
  PM_CHECK_MSG(s.size() >= 2, "VNodeRings requires at least two points");

  // Create v-nodes and index each (point, empty-direction) -> v-node.
  // Hash-order proof (rule pm-unordered-iter): at_edge is a pure point
  // lookup (emplace during construction, find in cw_succ) and is never
  // iterated — ring successor order comes from the geometry, not from
  // bucket order.
  std::unordered_map<PointDir, int, PointDirHash> at_edge;
  for (const Node v : s.boundary_points()) {
    for (const LocalBoundary& run : local_boundaries(v, [&](Node u) { return s.contains(u); })) {
      VNode vn;
      vn.point = v;
      vn.run = run;
      vn.face = s.face_of(neighbor(v, run.first));
      const int id = static_cast<int>(vnodes_.size());
      vnodes_.push_back(vn);
      for (int k = 0; k < run.length; ++k) {
        at_edge.emplace(PointDir{v, index(rotated(run.first, k))}, id);
      }
    }
  }

  // Successor relation (Observation 3): from v-node v(B), the common point u
  // is the other endpoint of B's last edge; the successor point v' is
  // reached via the clockwise successor of that edge; the successor v-node
  // is v'(B') where B' contains the edge from v' to u.
  succ_.assign(vnodes_.size(), -1);
  pred_.assign(vnodes_.size(), -1);
  for (std::size_t i = 0; i < vnodes_.size(); ++i) {
    const VNode& vn = vnodes_[i];
    const Dir last = vn.run.last();
    const Node u = neighbor(vn.point, last);  // common point (unoccupied)
    PM_CHECK(!s.contains(u));
    const Node vp = neighbor(vn.point, cw_next(last));  // successor point
    PM_CHECK_MSG(s.contains(vp), "successor point must be occupied (run maximality)");
    const Dir d = dir_between(vp, u);
    const auto it = at_edge.find(PointDir{vp, index(d)});
    PM_CHECK_MSG(it != at_edge.end(), "successor v-node lookup failed");
    succ_[i] = it->second;
    PM_CHECK_MSG(pred_[static_cast<std::size_t>(it->second)] == -1,
                 "v-node has two predecessors");
    pred_[static_cast<std::size_t>(it->second)] = static_cast<int>(i);
  }

  // Group into rings by following successors.
  std::vector<char> visited(vnodes_.size(), 0);
  for (std::size_t i = 0; i < vnodes_.size(); ++i) {
    if (visited[i]) continue;
    const int r = static_cast<int>(rings_.size());
    rings_.emplace_back();
    int cur = static_cast<int>(i);
    while (!visited[static_cast<std::size_t>(cur)]) {
      visited[static_cast<std::size_t>(cur)] = 1;
      vnodes_[static_cast<std::size_t>(cur)].ring = r;
      rings_.back().push_back(cur);
      cur = succ_[static_cast<std::size_t>(cur)];
    }
    PM_CHECK_MSG(cur == static_cast<int>(i), "successor walk did not close a cycle");
  }

  ring_face_.assign(rings_.size(), -1);
  for (std::size_t r = 0; r < rings_.size(); ++r) {
    PM_CHECK(!rings_[r].empty());
    const int f = vnodes_[static_cast<std::size_t>(rings_[r].front())].face;
    for (const int vn : rings_[r]) {
      PM_CHECK_MSG(vnodes_[static_cast<std::size_t>(vn)].face == f,
                   "ring spans multiple faces");
    }
    ring_face_[r] = f;
    if (f == kOuterFace) {
      PM_CHECK_MSG(outer_ring_ == -1, "multiple outer rings");
      outer_ring_ = static_cast<int>(r);
    }
  }
  PM_CHECK_MSG(outer_ring_ >= 0, "no outer ring found");
}

Node VNodeRings::common_point(int vn) const {
  const VNode& v = vnodes_[static_cast<std::size_t>(vn)];
  return neighbor(v.point, v.run.last());
}

int VNodeRings::ring_count_sum(int r) const {
  int sum = 0;
  for (const int vn : rings_[static_cast<std::size_t>(r)]) {
    sum += vnodes_[static_cast<std::size_t>(vn)].count();
  }
  return sum;
}

std::vector<int> VNodeRings::vnodes_at(Node v) const {
  std::vector<int> out;
  for (std::size_t i = 0; i < vnodes_.size(); ++i) {
    if (vnodes_[i].point == v) out.push_back(static_cast<int>(i));
  }
  return out;
}

}  // namespace pm::grid
