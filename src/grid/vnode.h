// Virtual nodes (v-nodes) and the oriented virtual rings on global
// boundaries (paper §2.1, Fig 7, Observations 3-4).
//
// A boundary point with k local boundaries is subdivided into k v-nodes; the
// clockwise-successor relation of Observation 3 links the v-nodes of one
// global boundary into a ring. The sum of boundary counts around a ring is
// +6 for the outer boundary and -6 for an inner one (Observation 4) — the
// geometric fact Primitive OBD's outer-boundary test rests on.
#pragma once

#include <vector>

#include "grid/coord.h"
#include "grid/local_boundary.h"
#include "grid/shape.h"

namespace pm::grid {

struct VNode {
  Node point;            // the occupied boundary point
  LocalBoundary run;     // the local boundary this v-node corresponds to
  int ring = -1;         // ring id after ring construction
  int face = -1;         // face id this local boundary borders

  [[nodiscard]] int count() const { return run.count(); }
};

class VNodeRings {
 public:
  // Builds all v-nodes of the shape and links them into rings.
  // Requires a connected shape with at least 2 points.
  explicit VNodeRings(const Shape& s);

  [[nodiscard]] const std::vector<VNode>& vnodes() const { return vnodes_; }

  // Clockwise successor / predecessor v-node index (Observation 3).
  [[nodiscard]] int cw_succ(int vn) const { return succ_[static_cast<std::size_t>(vn)]; }
  [[nodiscard]] int cw_pred(int vn) const { return pred_[static_cast<std::size_t>(vn)]; }

  // The common (unoccupied) point of v-node vn and its clockwise successor:
  // the other endpoint of the last edge of vn's run.
  [[nodiscard]] Node common_point(int vn) const;

  // Rings: each is the cyclic sequence of v-node indices following cw_succ.
  [[nodiscard]] const std::vector<std::vector<int>>& rings() const { return rings_; }

  // Face bordered by ring r (kOuterFace for the outer ring).
  [[nodiscard]] int ring_face(int r) const { return ring_face_[static_cast<std::size_t>(r)]; }

  [[nodiscard]] int outer_ring() const { return outer_ring_; }

  // Sum of boundary counts along ring r (Observation 4: +6 outer, -6 inner).
  [[nodiscard]] int ring_count_sum(int r) const;

  // All v-node indices at a given point (1..3 of them).
  [[nodiscard]] std::vector<int> vnodes_at(Node v) const;

 private:
  std::vector<VNode> vnodes_;
  std::vector<int> succ_;
  std::vector<int> pred_;
  std::vector<std::vector<int>> rings_;
  std::vector<int> ring_face_;
  int outer_ring_ = -1;
};

}  // namespace pm::grid
