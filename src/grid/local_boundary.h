// Local boundaries, boundary counts, and the erodable / SCE predicates
// (paper §2.1, Figs 5-6).
//
// A local boundary B of an occupied point v is a maximal clockwise cyclic
// interval of v's incident edges leading to points *not* in the shape. The
// boundary count is c(v, B) = |B| - 2 ∈ {-1..3} (4 only for an isolated
// point, footnote 3). v is redundant iff it has at most one local boundary;
// erodable iff it has exactly one local boundary and that boundary is a
// local *outer* boundary; SCE iff additionally strictly convex (c > 0).
//
// The predicates are templated on a membership test so that the same
// geometry serves both a concrete Shape and Algorithm DLE's evolving
// eligible-point set S_e (where, S_e being simply-connected, "single local
// boundary" already implies erodable — Proposition 6).
#pragma once

#include <optional>
#include <vector>

#include "grid/coord.h"
#include "grid/shape.h"

namespace pm::grid {

struct LocalBoundary {
  Dir first = Dir::E;  // first edge of the clockwise run
  int length = 0;      // |B| = number of edges in the run (1..6)

  [[nodiscard]] int count() const { return length - 2; }
  [[nodiscard]] Dir last() const { return rotated(first, length - 1); }

  friend bool operator==(const LocalBoundary&, const LocalBoundary&) = default;
};

// Extracts the maximal cyclic runs of directions whose neighbor is NOT a
// member. Returns up to 3 runs (6 empty neighbors = one run of length 6).
template <typename Pred>
[[nodiscard]] std::vector<LocalBoundary> local_boundaries(Node v, Pred&& is_member) {
  bool empty_at[kDirCount];
  int empty_count = 0;
  for (int i = 0; i < kDirCount; ++i) {
    empty_at[i] = !is_member(neighbor(v, dir_from_index(i)));
    if (empty_at[i]) ++empty_count;
  }
  std::vector<LocalBoundary> runs;
  if (empty_count == 0) return runs;
  if (empty_count == kDirCount) {
    runs.push_back({Dir::E, kDirCount});
    return runs;
  }
  // Find a direction that is occupied, then scan clockwise collecting runs.
  int start = 0;
  while (empty_at[start]) ++start;
  for (int k = 0; k < kDirCount;) {
    const int i = (start + k) % kDirCount;
    if (!empty_at[i]) {
      ++k;
      continue;
    }
    int len = 0;
    while (len < kDirCount && empty_at[(i + len) % kDirCount]) ++len;
    runs.push_back({dir_from_index(i), len});
    k += len;
  }
  return runs;
}

// Single local boundary of v, if v has exactly one (Proposition 6's
// characterization of redundancy). For simply-connected membership sets this
// is exactly the erodability test.
template <typename Pred>
[[nodiscard]] std::optional<LocalBoundary> single_local_boundary(Node v, Pred&& is_member) {
  auto runs = local_boundaries(v, std::forward<Pred>(is_member));
  if (runs.size() != 1) return std::nullopt;
  return runs.front();
}

// Redundant: removal of v does not disconnect its 1-hop neighborhood,
// equivalently v has at most one local boundary (Proposition 6's proof).
template <typename Pred>
[[nodiscard]] bool is_redundant(Node v, Pred&& is_member) {
  return local_boundaries(v, std::forward<Pred>(is_member)).size() <= 1;
}

// Shape-based predicates (classify the single run's face as outer or hole).

[[nodiscard]] bool is_erodable(const Shape& s, Node v);

// Strictly convex and erodable w.r.t. the shape.
[[nodiscard]] bool is_sce(const Shape& s, Node v);

// All SCE points of the shape (test helper for Proposition 7 sweeps).
[[nodiscard]] std::vector<Node> sce_points(const Shape& s);

}  // namespace pm::grid
