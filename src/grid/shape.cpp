#include "grid/shape.h"

#include <algorithm>
#include <deque>

#include "util/check.h"

namespace pm::grid {

Shape::Shape(std::vector<Node> nodes) : nodes_(std::move(nodes)) {
  // De-duplicate while keeping first-seen order deterministic.
  set_.reserve(2 * nodes_.size());
  std::vector<Node> unique;
  unique.reserve(nodes_.size());
  for (const Node v : nodes_) {
    if (set_.insert(v).second) unique.push_back(v);
  }
  nodes_ = std::move(unique);
  if (!nodes_.empty()) {
    bbox_min_ = bbox_max_ = nodes_.front();
    for (const Node v : nodes_) {
      bbox_min_.x = std::min(bbox_min_.x, v.x);
      bbox_min_.y = std::min(bbox_min_.y, v.y);
      bbox_max_.x = std::max(bbox_max_.x, v.x);
      bbox_max_.y = std::max(bbox_max_.y, v.y);
    }
  }
}

bool Shape::is_connected() const {
  if (nodes_.size() <= 1) return true;
  NodeSet seen;
  std::deque<Node> queue{nodes_.front()};
  seen.insert(nodes_.front());
  while (!queue.empty()) {
    const Node v = queue.front();
    queue.pop_front();
    for (int i = 0; i < kDirCount; ++i) {
      const Node u = neighbor(v, dir_from_index(i));
      if (set_.contains(u) && seen.insert(u).second) queue.push_back(u);
    }
  }
  return seen.size() == nodes_.size();
}

const Shape::Analysis& Shape::analysis() const {
  if (analysis_) return *analysis_;
  Analysis a;
  if (nodes_.empty()) {
    a.boundary_by_face.resize(1);
    analysis_ = std::move(a);
    return *analysis_;
  }

  // Flood-fill the complement inside the bounding box expanded by one ring.
  // Everything reachable from the expanded box's corner is the outer face;
  // remaining empty nodes inside the box group into holes.
  const Node lo{bbox_min_.x - 1, bbox_min_.y - 1};
  const Node hi{bbox_max_.x + 1, bbox_max_.y + 1};
  auto in_box = [&](Node v) {
    return v.x >= lo.x && v.x <= hi.x && v.y >= lo.y && v.y <= hi.y;
  };

  // Outer flood from the corner.
  {
    std::deque<Node> queue{lo};
    a.face.emplace(lo, kOuterFace);
    while (!queue.empty()) {
      const Node v = queue.front();
      queue.pop_front();
      for (int i = 0; i < kDirCount; ++i) {
        const Node u = neighbor(v, dir_from_index(i));
        if (!in_box(u) || set_.contains(u)) continue;
        if (a.face.emplace(u, kOuterFace).second) queue.push_back(u);
      }
    }
  }

  // Hole floods: empty in-box nodes not labeled yet.
  for (std::int32_t x = lo.x; x <= hi.x; ++x) {
    for (std::int32_t y = lo.y; y <= hi.y; ++y) {
      const Node start{x, y};
      if (set_.contains(start) || a.face.contains(start)) continue;
      const int face_id = static_cast<int>(a.holes.size()) + 1;
      a.holes.emplace_back();
      std::deque<Node> queue{start};
      a.face.emplace(start, face_id);
      while (!queue.empty()) {
        const Node v = queue.front();
        queue.pop_front();
        a.holes.back().push_back(v);
        for (int i = 0; i < kDirCount; ++i) {
          const Node u = neighbor(v, dir_from_index(i));
          if (!in_box(u) || set_.contains(u)) continue;
          if (a.face.emplace(u, face_id).second) queue.push_back(u);
        }
      }
    }
  }

  // Boundary points per face, in deterministic node order.
  a.boundary_by_face.resize(a.holes.size() + 1);
  for (const Node v : nodes_) {
    bool any = false;
    // A point has at most 6 empty neighbors, hence at most 6 incident faces.
    int seen[kDirCount];
    int seen_count = 0;
    for (int i = 0; i < kDirCount; ++i) {
      const Node u = neighbor(v, dir_from_index(i));
      if (set_.contains(u)) continue;
      any = true;
      const auto it = a.face.find(u);
      PM_CHECK(it != a.face.end());
      const int f = it->second;
      const bool dup = std::find(seen, seen + seen_count, f) != seen + seen_count;
      if (!dup) {
        seen[seen_count++] = f;
        a.boundary_by_face[static_cast<std::size_t>(f)].push_back(v);
      }
    }
    if (any) a.all_boundary.push_back(v);
  }

  analysis_ = std::move(a);
  return *analysis_;
}

int Shape::face_of(Node v) const {
  PM_CHECK_MSG(!contains(v), "face_of called on an occupied node " << v);
  const auto& a = analysis();
  const auto it = a.face.find(v);
  // Nodes outside the expanded bounding box are always on the outer face.
  return it == a.face.end() ? kOuterFace : it->second;
}

int Shape::hole_count() const { return static_cast<int>(analysis().holes.size()); }

const std::vector<std::vector<Node>>& Shape::holes() const { return analysis().holes; }

Shape Shape::area() const {
  std::vector<Node> pts(nodes_.begin(), nodes_.end());
  for (const auto& hole : holes()) pts.insert(pts.end(), hole.begin(), hole.end());
  return Shape(std::move(pts));
}

const std::vector<Node>& Shape::boundary_points() const { return analysis().all_boundary; }

const std::vector<Node>& Shape::boundary_of_face(int f) const {
  const auto& a = analysis();
  PM_CHECK(f >= 0 && f < static_cast<int>(a.boundary_by_face.size()));
  return a.boundary_by_face[static_cast<std::size_t>(f)];
}

int Shape::outer_boundary_length() const {
  return static_cast<int>(boundary_of_face(kOuterFace).size());
}

int Shape::max_boundary_length() const {
  const auto& a = analysis();
  std::size_t best = 0;
  for (const auto& b : a.boundary_by_face) best = std::max(best, b.size());
  return static_cast<int>(best);
}

bool Shape::on_boundary_of(Node v, int f) const {
  if (!contains(v)) return false;
  for (int i = 0; i < kDirCount; ++i) {
    const Node u = neighbor(v, dir_from_index(i));
    if (!contains(u) && face_of(u) == f) return true;
  }
  return false;
}

ShapeGraph::ShapeGraph(std::span<const Node> nodes)
    : nodes_(nodes.begin(), nodes.end()) {
  index_.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const bool inserted = index_.emplace(nodes_[i], static_cast<std::int32_t>(i)).second;
    PM_CHECK_MSG(inserted, "duplicate node in ShapeGraph");
  }
  adj_.resize(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (int d = 0; d < kDirCount; ++d) {
      const auto it = index_.find(neighbor(nodes_[i], dir_from_index(d)));
      adj_[i][static_cast<std::size_t>(d)] = (it == index_.end()) ? -1 : it->second;
    }
  }
}

int ShapeGraph::index_of(Node v) const {
  const auto it = index_.find(v);
  return it == index_.end() ? -1 : it->second;
}

std::vector<int> ShapeGraph::bfs(int src) const {
  PM_CHECK(src >= 0 && src < static_cast<int>(size()));
  std::vector<int> dist(size(), -1);
  std::vector<std::int32_t> queue;
  queue.reserve(size());
  dist[static_cast<std::size_t>(src)] = 0;
  queue.push_back(src);
  for (std::size_t qi = 0; qi < queue.size(); ++qi) {
    const std::int32_t v = queue[qi];
    for (const std::int32_t u : adj_[static_cast<std::size_t>(v)]) {
      if (u >= 0 && dist[static_cast<std::size_t>(u)] < 0) {
        dist[static_cast<std::size_t>(u)] = dist[static_cast<std::size_t>(v)] + 1;
        queue.push_back(u);
      }
    }
  }
  return dist;
}

bool ShapeGraph::is_connected() const {
  if (size() <= 1) return true;
  const auto dist = bfs(0);
  return std::none_of(dist.begin(), dist.end(), [](int d) { return d < 0; });
}

}  // namespace pm::grid
