#include "grid/dense_occupancy.h"

#include <algorithm>

#include "util/check.h"

namespace pm::grid {

void DenseOccupancy::insert(Node v, Value value) {
  PM_CHECK_MSG(value >= 0, "DenseOccupancy::insert: negative value");
  Value* cell = box_.find(v);
  if (cell == nullptr) {
    grow_to(v.x, v.y, v.x, v.y);
    cell = box_.find(v);
  }
  PM_CHECK_MSG(*cell == kEmpty, "DenseOccupancy::insert: node " << v << " already present");
  *cell = value;
  ++size_;
}

void DenseOccupancy::erase(Node v) {
  Value* cell = box_.find(v);
  PM_CHECK_MSG(cell != nullptr && *cell != kEmpty,
               "DenseOccupancy::erase: node " << v << " not present");
  *cell = kEmpty;
  --size_;
}

void DenseOccupancy::clear() {
  // Release the allocation rather than just emptying it: a cleared index
  // must not carry a previous (larger) run's bounding box or memory into
  // the next use — the box is re-derived from scratch by the first
  // reserve_box/insert, and peak-extent history restarts at zero.
  box_.clear();
  size_ = 0;
  peak_cells_ = 0;
}

void DenseOccupancy::reserve_box(Node lo, Node hi) {
  PM_CHECK(lo.x <= hi.x && lo.y <= hi.y);
  grow_to(lo.x, lo.y, hi.x, hi.y);
}

void DenseOccupancy::grow_to(std::int64_t lo_x, std::int64_t lo_y, std::int64_t hi_x,
                             std::int64_t hi_y) {
  box_.grow_to(lo_x, lo_y, hi_x, hi_y, kGrowPad, kEmpty, "DenseOccupancy");
  peak_cells_ = std::max(peak_cells_, box_.extent_cells());
}

}  // namespace pm::grid
