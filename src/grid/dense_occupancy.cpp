#include "grid/dense_occupancy.h"

#include <algorithm>

#include "util/check.h"

namespace pm::grid {

void DenseOccupancy::insert(Node v, Value value) {
  PM_CHECK_MSG(value >= 0, "DenseOccupancy::insert: negative value");
  if (!in_box(v)) grow_to(v.x, v.y, v.x, v.y);
  Value& cell = cells_[cell_index(v)];
  PM_CHECK_MSG(cell == kEmpty, "DenseOccupancy::insert: node " << v << " already present");
  cell = value;
  ++size_;
}

void DenseOccupancy::erase(Node v) {
  PM_CHECK_MSG(in_box(v) && cells_[cell_index(v)] != kEmpty,
               "DenseOccupancy::erase: node " << v << " not present");
  cells_[cell_index(v)] = kEmpty;
  --size_;
}

void DenseOccupancy::clear() {
  cells_.clear();
  min_x_ = min_y_ = 0;
  width_ = height_ = 0;
  size_ = 0;
  peak_cells_ = 0;  // a cleared index starts a fresh peak-extent history
}

void DenseOccupancy::reserve_box(Node lo, Node hi) {
  PM_CHECK(lo.x <= hi.x && lo.y <= hi.y);
  grow_to(lo.x, lo.y, hi.x, hi.y);
}

void DenseOccupancy::grow_to(std::int64_t lo_x, std::int64_t lo_y, std::int64_t hi_x,
                             std::int64_t hi_y) {
  // Union with the current box, then pad geometrically so a sequence of
  // one-step expansions costs amortized O(1) per insert.
  if (width_ > 0) {
    lo_x = std::min(lo_x, min_x_);
    lo_y = std::min(lo_y, min_y_);
    hi_x = std::max(hi_x, min_x_ + width_ - 1);
    hi_y = std::max(hi_y, min_y_ + height_ - 1);
  }
  const std::int64_t pad_x = std::max(kGrowPad, (hi_x - lo_x + 1) / 4);
  const std::int64_t pad_y = std::max(kGrowPad, (hi_y - lo_y + 1) / 4);
  const std::int64_t new_min_x = lo_x - pad_x;
  const std::int64_t new_min_y = lo_y - pad_y;
  const std::int64_t new_w = (hi_x + pad_x) - new_min_x + 1;
  const std::int64_t new_h = (hi_y + pad_y) - new_min_y + 1;
  // Guard each dimension before forming the product: coordinates near the
  // int32 extremes would overflow new_w * new_h in int64 otherwise, which is
  // exactly the too-sparse case this check exists to reject. The cell cap
  // (2^28 cells = 1 GiB of int32) is far above any dense configuration —
  // n = 10^5 particles need ~10^6 cells — so hitting it means the
  // configuration is pathologically sparse and the diagnostic should fire
  // before a multi-gigabyte allocation is attempted.
  constexpr std::int64_t kMaxCells = 1LL << 28;
  PM_CHECK_MSG(new_w <= kMaxCells && new_h <= kMaxCells && new_w * new_h <= kMaxCells,
               "DenseOccupancy box " << new_w << "x" << new_h
                                     << " too large — configuration too sparse for the "
                                        "dense index; use the hash occupancy mode");

  std::vector<Value> next(static_cast<std::size_t>(new_w * new_h), kEmpty);
  for (std::int64_t y = 0; y < height_; ++y) {
    const auto src = cells_.begin() + static_cast<std::ptrdiff_t>(y * width_);
    const std::int64_t dst_row = (min_y_ + y - new_min_y) * new_w + (min_x_ - new_min_x);
    std::copy(src, src + static_cast<std::ptrdiff_t>(width_),
              next.begin() + static_cast<std::ptrdiff_t>(dst_row));
  }
  cells_ = std::move(next);
  min_x_ = new_min_x;
  min_y_ = new_min_y;
  width_ = new_w;
  height_ = new_h;
  peak_cells_ = std::max(peak_cells_, extent_cells());
}

}  // namespace pm::grid
