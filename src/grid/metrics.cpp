#include "grid/metrics.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace pm::grid {

int diameter_grid(std::span<const Node> nodes) {
  if (nodes.size() <= 1) return 0;
  // In cube coordinates (a, b, c) = (x, y, -x-y), dist_G is the Chebyshev
  // distance, so the diameter is the largest coordinate extent.
  auto lo = std::array<std::int64_t, 3>{std::numeric_limits<std::int64_t>::max(),
                                        std::numeric_limits<std::int64_t>::max(),
                                        std::numeric_limits<std::int64_t>::max()};
  auto hi = std::array<std::int64_t, 3>{std::numeric_limits<std::int64_t>::min(),
                                        std::numeric_limits<std::int64_t>::min(),
                                        std::numeric_limits<std::int64_t>::min()};
  for (const Node v : nodes) {
    const std::array<std::int64_t, 3> c{v.x, v.y, -static_cast<std::int64_t>(v.x) - v.y};
    for (int i = 0; i < 3; ++i) {
      lo[static_cast<std::size_t>(i)] = std::min(lo[static_cast<std::size_t>(i)], c[static_cast<std::size_t>(i)]);
      hi[static_cast<std::size_t>(i)] = std::max(hi[static_cast<std::size_t>(i)], c[static_cast<std::size_t>(i)]);
    }
  }
  std::int64_t best = 0;
  for (int i = 0; i < 3; ++i) {
    best = std::max(best, hi[static_cast<std::size_t>(i)] - lo[static_cast<std::size_t>(i)]);
  }
  return static_cast<int>(best);
}

int eccentricity_grid(Node v, std::span<const Node> nodes) {
  int best = 0;
  for (const Node u : nodes) best = std::max(best, grid_distance(v, u));
  return best;
}

namespace {

// Max BFS distance (within `g`) from src over target indices marked in mask.
int far_over(const ShapeGraph& g, int src, const std::vector<char>& mask, int& argmax) {
  const auto dist = g.bfs(src);
  int best = -1;
  argmax = src;
  for (std::size_t i = 0; i < dist.size(); ++i) {
    if (!mask[i]) continue;
    PM_CHECK_MSG(dist[i] >= 0, "diameter_within: super-shape is disconnected");
    if (dist[i] > best) {
      best = dist[i];
      argmax = static_cast<int>(i);
    }
  }
  return best;
}

std::vector<char> sub_mask(std::span<const Node> sub, const ShapeGraph& g) {
  std::vector<char> mask(g.size(), 0);
  for (const Node v : sub) {
    const int i = g.index_of(v);
    PM_CHECK_MSG(i >= 0, "diameter_within: sub node " << v << " not inside super shape");
    mask[static_cast<std::size_t>(i)] = 1;
  }
  return mask;
}

}  // namespace

int diameter_within_exact(std::span<const Node> sub, const Shape& super) {
  if (sub.size() <= 1) return 0;
  const ShapeGraph g(super.nodes());
  const auto mask = sub_mask(sub, g);
  int best = 0;
  for (const Node v : sub) {
    int unused = 0;
    best = std::max(best, far_over(g, g.index_of(v), mask, unused));
  }
  return best;
}

int diameter_within_estimate(std::span<const Node> sub, const Shape& super, int sweeps,
                             Rng& rng) {
  if (sub.size() <= 1) return 0;
  const ShapeGraph g(super.nodes());
  const auto mask = sub_mask(sub, g);
  int best = 0;
  for (int s = 0; s < sweeps; ++s) {
    const Node start = sub[static_cast<std::size_t>(rng.below(sub.size()))];
    int a = 0;
    far_over(g, g.index_of(start), mask, a);
    int b = 0;
    best = std::max(best, far_over(g, a, mask, b));
    // One extra hop from the far end tightens the bound on elongated shapes.
    int c = 0;
    best = std::max(best, far_over(g, b, mask, c));
  }
  return best;
}

ShapeMetrics compute_metrics(const Shape& s, int exact_cutoff) {
  ShapeMetrics m;
  m.n = static_cast<int>(s.size());
  const Shape area = s.area();
  m.n_area = static_cast<int>(area.size());
  m.d_grid = diameter_grid(s.nodes());
  m.l_out = s.outer_boundary_length();
  m.l_max = s.max_boundary_length();
  m.holes = s.hole_count();
  if (m.n <= exact_cutoff) {
    m.d = diameter_exact(s);
    m.d_area = diameter_area_exact(s);
  } else {
    Rng rng(0x9e3779b9u);
    m.d = diameter_within_estimate(s.nodes(), s, 4, rng);
    m.d_area = diameter_within_estimate(s.nodes(), area, 4, rng);
  }
  return m;
}

}  // namespace pm::grid
