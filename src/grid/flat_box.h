// FlatBox<Cell>: the growable bounding-box flat array shared by the grid
// layer's point-indexed structures (DenseOccupancy's Node -> id map, the
// exec layer's epoch-stamped ClaimTable).
//
// A box over [min, min + size) stores one Cell per grid node in row-major
// order; a point query is an unsigned-compare bounds check plus one indexed
// load. Growth is amortized: when a point lands outside the box, the box is
// unioned with it and padded geometrically (a quarter of each dimension,
// floored at pad_min), and existing cells are copied row by row — so a
// sequence of one-step expansions costs amortized O(1) per insert. The cell
// cap (2^28 cells) rejects pathologically sparse configurations before a
// multi-gigabyte allocation is attempted; `what` names the owner in the
// diagnostic.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "grid/coord.h"
#include "util/check.h"

namespace pm::grid {

template <typename Cell>
class FlatBox {
 public:
  // Pointer to v's cell, or nullptr when v is outside the box. The
  // unsigned-compare bounds check covers the whole box in two comparisons
  // (a negative offset wraps to a huge unsigned value and is rejected).
  [[nodiscard]] const Cell* find(Node v) const {
    const std::int64_t dx = v.x - min_x_;
    const std::int64_t dy = v.y - min_y_;
    if (static_cast<std::uint64_t>(dx) >= static_cast<std::uint64_t>(width_) ||
        static_cast<std::uint64_t>(dy) >= static_cast<std::uint64_t>(height_)) {
      return nullptr;
    }
    return &cells_[static_cast<std::size_t>(dy * width_ + dx)];
  }
  [[nodiscard]] Cell* find(Node v) {
    return const_cast<Cell*>(static_cast<const FlatBox&>(*this).find(v));
  }

  [[nodiscard]] bool in_box(Node v) const {
    return v.x >= min_x_ && v.x < min_x_ + width_ && v.y >= min_y_ &&
           v.y < min_y_ + height_;
  }

  // Number of cells currently allocated (width * height); 0 when empty.
  [[nodiscard]] long long extent_cells() const { return width_ * height_; }

  // Box geometry accessors (checkpoint/resume needs the exact box, because
  // grow_to's padding depends on growth history).
  [[nodiscard]] std::int64_t min_x() const { return min_x_; }
  [[nodiscard]] std::int64_t min_y() const { return min_y_; }
  [[nodiscard]] std::int64_t width() const { return width_; }
  [[nodiscard]] std::int64_t height() const { return height_; }

  // Reallocates to exactly [min, min + size) with every cell `empty` — no
  // padding, nothing kept. The checkpoint-restore counterpart of grow_to.
  void reset_to(std::int64_t min_x, std::int64_t min_y, std::int64_t width,
                std::int64_t height, Cell empty, const char* what) {
    constexpr std::int64_t kMaxCells = 1LL << 28;
    PM_CHECK_MSG(width >= 0 && height >= 0 && width <= kMaxCells && height <= kMaxCells &&
                     width * height <= kMaxCells,
                 what << " restored box " << width << "x" << height << " invalid");
    cells_.assign(static_cast<std::size_t>(width * height), empty);
    min_x_ = min_x;
    min_y_ = min_y;
    width_ = width;
    height_ = height;
  }

  void fill(Cell value) { std::fill(cells_.begin(), cells_.end(), value); }

  // Releases the allocation and resets the box: nothing carries over into
  // the next use.
  void clear() {
    std::vector<Cell>().swap(cells_);
    min_x_ = min_y_ = 0;
    width_ = height_ = 0;
  }

  // Reallocates so the box covers [lo, hi] union the current box, padded
  // geometrically (quarter of each dimension, at least pad_min), keeping
  // existing cells; new cells start as `empty`.
  void grow_to(std::int64_t lo_x, std::int64_t lo_y, std::int64_t hi_x,
               std::int64_t hi_y, std::int64_t pad_min, Cell empty, const char* what) {
    if (width_ > 0) {
      lo_x = std::min(lo_x, min_x_);
      lo_y = std::min(lo_y, min_y_);
      hi_x = std::max(hi_x, min_x_ + width_ - 1);
      hi_y = std::max(hi_y, min_y_ + height_ - 1);
    }
    const std::int64_t pad_x = std::max(pad_min, (hi_x - lo_x + 1) / 4);
    const std::int64_t pad_y = std::max(pad_min, (hi_y - lo_y + 1) / 4);
    const std::int64_t new_min_x = lo_x - pad_x;
    const std::int64_t new_min_y = lo_y - pad_y;
    const std::int64_t new_w = (hi_x + pad_x) - new_min_x + 1;
    const std::int64_t new_h = (hi_y + pad_y) - new_min_y + 1;
    // Guard each dimension before forming the product: coordinates near the
    // int32 extremes would overflow new_w * new_h in int64 otherwise, which
    // is exactly the too-sparse case this check exists to reject.
    constexpr std::int64_t kMaxCells = 1LL << 28;
    PM_CHECK_MSG(new_w <= kMaxCells && new_h <= kMaxCells && new_w * new_h <= kMaxCells,
                 what << " box " << new_w << "x" << new_h
                      << " too large — configuration too sparse for a flat index");

    std::vector<Cell> next(static_cast<std::size_t>(new_w * new_h), empty);
    for (std::int64_t y = 0; y < height_; ++y) {
      const auto src = cells_.begin() + static_cast<std::ptrdiff_t>(y * width_);
      const std::int64_t dst_row =
          (min_y_ + y - new_min_y) * new_w + (min_x_ - new_min_x);
      std::copy(src, src + static_cast<std::ptrdiff_t>(width_),
                next.begin() + static_cast<std::ptrdiff_t>(dst_row));
    }
    cells_ = std::move(next);
    min_x_ = new_min_x;
    min_y_ = new_min_y;
    width_ = new_w;
    height_ = new_h;
  }

 private:
  std::vector<Cell> cells_;
  std::int64_t min_x_ = 0;
  std::int64_t min_y_ = 0;
  std::int64_t width_ = 0;   // 0 = nothing allocated yet
  std::int64_t height_ = 0;
};

}  // namespace pm::grid
