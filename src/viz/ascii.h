// ASCII rendering of triangular-grid shapes and particle configurations.
//
// Axial (x, y) maps to a character cell at column 2*x + y, row -y, which
// reproduces the usual staggered hex-grid look:
//
//      . O O .
//     . O * O .
//      . O O .
//
// Used by the examples and by the figure-reproduction binaries (paper
// Figs 1-8).
#pragma once

#include <functional>
#include <string>

#include "grid/shape.h"

namespace pm::viz {

// Returns the glyph to draw at a node, or '\0' to fall through to default.
using Overlay = std::function<char(grid::Node)>;

struct RenderOptions {
  char occupied = 'O';
  char empty = '.';
  char hole = '*';       // hole points (empty, bounded face)
  bool show_empty = true;
  int margin = 1;        // rings of empty context around the bounding box
};

// Renders the shape; `overlay` (if given) is consulted first for every node.
[[nodiscard]] std::string render(const grid::Shape& s, const RenderOptions& opts = {},
                                 const Overlay& overlay = nullptr);

// Renders an arbitrary region given explicit bounds and an overlay that
// returns the glyph for every node ('\0' = blank). Used for configurations
// that have no Shape at hand (e.g. mid-run particle systems).
[[nodiscard]] std::string render_region(grid::Node lo, grid::Node hi, const Overlay& overlay);

}  // namespace pm::viz
