#include "viz/ascii.h"

#include <algorithm>
#include <vector>

#include "util/check.h"

namespace pm::viz {

using grid::Node;

std::string render_region(Node lo, Node hi, const Overlay& overlay) {
  PM_CHECK(lo.x <= hi.x && lo.y <= hi.y);
  std::string out;
  for (std::int32_t y = hi.y; y >= lo.y; --y) {
    // Column of node (x, y) is 2x + y; compute the row's glyphs with
    // left-padding so all rows align.
    const std::int32_t col0 = 2 * lo.x + y;
    const std::int32_t min_col = 2 * lo.x + lo.y;
    std::string row(static_cast<std::size_t>(col0 - min_col), ' ');
    for (std::int32_t x = lo.x; x <= hi.x; ++x) {
      const char c = overlay ? overlay({x, y}) : '\0';
      row.push_back(c == '\0' ? ' ' : c);
      if (x < hi.x) row.push_back(' ');
    }
    // Trim trailing blanks.
    while (!row.empty() && row.back() == ' ') row.pop_back();
    out += row;
    out += '\n';
  }
  return out;
}

std::string render(const grid::Shape& s, const RenderOptions& opts, const Overlay& overlay) {
  if (s.empty()) return "";
  Node lo = s.nodes().front();
  Node hi = lo;
  for (const Node v : s.nodes()) {
    lo.x = std::min(lo.x, v.x);
    lo.y = std::min(lo.y, v.y);
    hi.x = std::max(hi.x, v.x);
    hi.y = std::max(hi.y, v.y);
  }
  lo.x -= opts.margin;
  lo.y -= opts.margin;
  hi.x += opts.margin;
  hi.y += opts.margin;
  return render_region(lo, hi, [&](Node v) -> char {
    if (overlay) {
      const char c = overlay(v);
      if (c != '\0') return c;
    }
    if (s.contains(v)) return opts.occupied;
    if (s.face_of(v) != grid::kOuterFace) return opts.hole;
    return opts.show_empty ? opts.empty : '\0';
  });
}

}  // namespace pm::viz
