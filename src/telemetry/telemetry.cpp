#include "telemetry/telemetry.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <sstream>

#include "util/check.h"

namespace pm::telemetry {

// --- serialization (both build flavors) ------------------------------------

namespace {

const char* kind_name(Kind k) { return k == Kind::Time ? "time" : "count"; }

const char* type_name(Type t) {
  switch (t) {
    case Type::Counter: return "counter";
    case Type::Gauge: return "gauge";
    case Type::Histogram: return "histogram";
  }
  return "counter";
}

}  // namespace

std::string to_json_object(const MetricValue& m, bool with_time) {
  // Time-kind payloads are wall-clock-derived and nondeterministic; zero
  // them (like wall_ms under --no-wall) so count-kind snapshots stay
  // byte-diffable. A time histogram's observation count is deterministic
  // (one observation per round/batch/job) and survives the scrub.
  const bool scrub = !with_time && m.kind == Kind::Time;
  std::ostringstream os;
  os << "{\"name\": \"" << m.name << "\", \"type\": \"" << type_name(m.type)
     << "\", \"kind\": \"" << kind_name(m.kind) << "\"";
  if (m.type == Type::Histogram) {
    os << ", \"count\": " << m.count << ", \"sum\": " << (scrub ? 0 : m.sum)
       << ", \"buckets\": [";
    if (!scrub) {
      for (std::size_t i = 0; i < m.buckets.size(); ++i) {
        if (i > 0) os << ", ";
        os << m.buckets[i];
      }
    }
    os << "]";
  } else {
    os << ", \"value\": " << (scrub ? 0 : m.value);
  }
  os << "}";
  return os.str();
}

std::string to_ndjson(const std::vector<MetricValue>& metrics, const std::string& label,
                      bool with_time) {
  std::ostringstream os;
  for (const MetricValue& m : metrics) {
    std::string obj = to_json_object(m, with_time);
    // Tag each line with its suite label, keeping one flat object per line.
    os << "{\"label\": \"" << label << "\", " << obj.substr(1) << "\n";
  }
  return os.str();
}

long peak_rss_kb() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  long kb = 0;
  char line[256];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kb = std::strtol(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb;
#else
  return 0;  // no portable peak-RSS source; artifacts record 0
#endif
}

#if !defined(PM_TELEMETRY_DISABLED)

namespace impl {
std::atomic<int> g_level{0};
}  // namespace impl

inline namespace live {

namespace {

// Fixed slot capacity: no bounds checks or reallocation on the hot path.
// A histogram takes 1 (sum) + kHistogramBuckets slots; ~60 histograms or
// thousands of counters fit — registration past the cap throws.
constexpr std::size_t kSlotCap = 8192;

struct Shard {
  std::uint64_t slots[kSlotCap] = {};
};

struct Meta {
  std::string name;
  Kind kind;
  Type type;
  std::uint32_t slot;
};

struct Registry {
  std::mutex mu;
  std::vector<Meta> metas;
  std::uint32_t next_slot = 0;
  std::vector<Shard*> live_shards;
  // Totals folded in from exited threads (thread_local shard destructors).
  std::vector<std::uint64_t> retired = std::vector<std::uint64_t>(kSlotCap, 0);
  // Max-merge slots (gauges) vs sum-merge slots (everything else).
  std::vector<char> is_gauge = std::vector<char>(kSlotCap, 0);
};

// Leaked intentionally: thread_local shard destructors may run during
// process teardown, after function-local statics would have been destroyed.
Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

void merge_into(const Registry& r, const Shard& shard, std::vector<std::uint64_t>& out) {
  for (std::size_t i = 0; i < kSlotCap; ++i) {
    const std::uint64_t v = shard.slots[i];
    if (v == 0) continue;
    if (r.is_gauge[i]) {
      out[i] = std::max(out[i], v);
    } else {
      out[i] += v;
    }
  }
}

struct ShardHolder {
  Shard shard;
  ShardHolder() {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    r.live_shards.push_back(&shard);
  }
  ~ShardHolder() {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    merge_into(r, shard, r.retired);
    r.live_shards.erase(std::remove(r.live_shards.begin(), r.live_shards.end(), &shard),
                        r.live_shards.end());
  }
};

Shard& local_shard() {
  thread_local ShardHolder holder;
  return holder.shard;
}

std::uint32_t register_metric(const char* name, Kind kind, Type type) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  for (const Meta& m : r.metas) {
    if (m.name == name) {
      PM_CHECK_MSG(m.kind == kind && m.type == type,
                   "telemetry metric '" << name
                                        << "' re-registered with a different kind/type");
      return m.slot;
    }
  }
  const std::uint32_t width =
      type == Type::Histogram ? 1u + static_cast<std::uint32_t>(kHistogramBuckets) : 1u;
  PM_CHECK_MSG(r.next_slot + width <= kSlotCap,
               "telemetry slot capacity exhausted registering '" << name << "'");
  const std::uint32_t slot = r.next_slot;
  r.next_slot += width;
  if (type == Type::Gauge) r.is_gauge[slot] = 1;
  r.metas.push_back(Meta{name, kind, type, slot});
  return slot;
}

}  // namespace

void set_level(int level) noexcept {
  impl::g_level.store(level < 0 ? 0 : level, std::memory_order_relaxed);
}

Counter::Counter(const char* name, Kind kind)
    : slot_(register_metric(name, kind, Type::Counter)) {}

void Counter::add(std::uint64_t n) const noexcept { local_shard().slots[slot_] += n; }

Gauge::Gauge(const char* name, Kind kind) : slot_(register_metric(name, kind, Type::Gauge)) {}

void Gauge::record_max(std::uint64_t v) const noexcept {
  std::uint64_t& s = local_shard().slots[slot_];
  if (v > s) s = v;
}

Histogram::Histogram(const char* name, Kind kind)
    : slot_(register_metric(name, kind, Type::Histogram)) {}

void Histogram::observe(std::uint64_t v) const noexcept {
  Shard& sh = local_shard();
  sh.slots[slot_] += v;  // running sum
  sh.slots[slot_ + 1u + static_cast<std::uint32_t>(bucket_index(v))] += 1;
}

void add_count(const std::string& name, std::uint64_t v, Kind kind) {
  const std::uint32_t slot = register_metric(name.c_str(), kind, Type::Counter);
  local_shard().slots[slot] += v;
}

void observe_value(const std::string& name, std::uint64_t v, Kind kind) {
  const std::uint32_t slot = register_metric(name.c_str(), kind, Type::Histogram);
  Shard& sh = local_shard();
  sh.slots[slot] += v;
  sh.slots[slot + 1u + static_cast<std::uint32_t>(bucket_index(v))] += 1;
}

void gauge_max(const std::string& name, std::uint64_t v, Kind kind) {
  const std::uint32_t slot = register_metric(name.c_str(), kind, Type::Gauge);
  std::uint64_t& s = local_shard().slots[slot];
  if (v > s) s = v;
}

std::vector<MetricValue> harvest() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::uint64_t> combined = r.retired;
  for (const Shard* shard : r.live_shards) merge_into(r, *shard, combined);

  std::vector<MetricValue> out;
  out.reserve(r.metas.size());
  for (const Meta& meta : r.metas) {
    MetricValue m;
    m.name = meta.name;
    m.kind = meta.kind;
    m.type = meta.type;
    if (meta.type == Type::Histogram) {
      m.sum = combined[meta.slot];
      std::size_t last = 0;
      for (std::size_t b = 0; b < static_cast<std::size_t>(kHistogramBuckets); ++b) {
        const std::uint64_t c = combined[meta.slot + 1 + b];
        m.count += c;
        if (c != 0) last = b + 1;
      }
      m.buckets.assign(combined.begin() + meta.slot + 1,
                       combined.begin() + meta.slot + 1 + static_cast<long>(last));
    } else {
      m.value = combined[meta.slot];
    }
    out.push_back(std::move(m));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricValue& a, const MetricValue& b) { return a.name < b.name; });
  return out;
}

void reset() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  std::fill(r.retired.begin(), r.retired.end(), 0);
  for (Shard* shard : r.live_shards) std::fill(std::begin(shard->slots), std::end(shard->slots), 0);
}

}  // inline namespace live

#endif  // !PM_TELEMETRY_DISABLED

}  // namespace pm::telemetry
