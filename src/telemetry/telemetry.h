// Deterministic, low-overhead metrics: monotonic counters, gauges, and
// power-of-two histograms in a process-wide registry with thread-local
// shards merged at harvest points.
//
// Hot-path contract: Counter::add / Histogram::observe touch only the
// calling thread's shard — a plain (non-atomic, lock-free) array increment
// — so instrumented code is race-free under exec::ParallelEngine and costs
// nanoseconds per call. harvest() merges every shard with commutative
// operations (sum for counters and histogram buckets, max for gauges), so
// the merged totals are identical for any thread count and any scheduling
// interleaving: count-kind metrics join the repo's determinism contract
// and are byte-diffable across runs (see tests/telemetry).
//
// Kinds:
//   * Kind::Count — deterministic quantities (rounds, activations, batch
//     widths, conflict counts). Bit-identical across reruns of the same
//     spec and flags.
//   * Kind::Time — wall-clock-derived (round latencies, checker time).
//     Zeroed by the serializers when `with_time` is false, exactly like
//     the wall_ms fields under pm_bench --no-wall.
//
// Runtime levels (set_level):
//   0 = off      — instrument points skip all clock reads; count-kind
//                  counters still accumulate (per-round granularity, noise)
//   1 = standard — pm_bench --metrics: adds the time histograms; clocks
//                  are read at per-round/per-batch granularity only, so
//                  the overhead stays within the bench noise floor
//   2 = detail   — pm_bench --metrics-detail: adds per-query occupancy
//                  counters (measurably slower on query-heavy stages)
//
// Compile-out: defining PM_TELEMETRY_DISABLED (CMake -DPM_TELEMETRY=OFF)
// swaps every handle and entry point for a constexpr no-op stub in a
// distinct inline namespace, so instrumented call sites compile to nothing
// and the two builds cannot collide at link time.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace pm::telemetry {

enum class Kind : std::uint8_t { Count = 0, Time = 1 };
enum class Type : std::uint8_t { Counter = 0, Gauge = 1, Histogram = 2 };

// Histogram buckets are powers of two: bucket 0 holds the value 0, bucket
// i >= 1 holds values in [2^(i-1), 2^i). 65 buckets cover every uint64.
inline constexpr int kHistogramBuckets = 65;

[[nodiscard]] constexpr int bucket_index(std::uint64_t v) noexcept {
  int w = 0;
  while (v != 0) {
    v >>= 1;
    ++w;
  }
  return w;  // 0 for v == 0, else bit_width(v) in 1..64
}

// One harvested metric (merged across all shards).
struct MetricValue {
  std::string name;
  Kind kind = Kind::Count;
  Type type = Type::Counter;
  std::uint64_t value = 0;  // counter total / gauge maximum
  std::uint64_t count = 0;  // histogram: number of observations
  std::uint64_t sum = 0;    // histogram: sum of observed values
  std::vector<std::uint64_t> buckets;  // histogram: trailing zeros trimmed
};

// --- serialization (kind-aware; compiled in both build flavors) ------------

// One metric as a JSON object ({"name": ..., "type": ..., ...}). Time-kind
// values are zeroed when `with_time` is false; the observation count of a
// time histogram is deterministic and survives.
[[nodiscard]] std::string to_json_object(const MetricValue& m, bool with_time);

// One NDJSON line per metric, each tagged with `label` (the suite name).
[[nodiscard]] std::string to_ndjson(const std::vector<MetricValue>& metrics,
                                    const std::string& label, bool with_time);

// Peak resident set size of this process in kB (Linux: VmHWM from
// /proc/self/status; 0 on platforms without an equivalent). Wall-clock-like
// nondeterminism: zeroed in artifacts under --no-wall.
[[nodiscard]] long peak_rss_kb();

#if !defined(PM_TELEMETRY_DISABLED)

namespace impl {
extern std::atomic<int> g_level;
}  // namespace impl

inline namespace live {

[[nodiscard]] inline int level() noexcept {
  return impl::g_level.load(std::memory_order_relaxed);
}
[[nodiscard]] inline bool enabled() noexcept { return level() >= 1; }
[[nodiscard]] inline bool detail() noexcept { return level() >= 2; }
void set_level(int level) noexcept;

// Handles register by name on construction (idempotent: the same name
// always resolves to the same registry slot; a name re-registered with a
// different kind or type is a logic error and throws pm::CheckError).
// Intended use is a function-local static at the instrument site.

class Counter {
 public:
  explicit Counter(const char* name, Kind kind = Kind::Count);
  void add(std::uint64_t n) const noexcept;
  void inc() const noexcept { add(1); }

 private:
  std::uint32_t slot_;
};

class Gauge {
 public:
  explicit Gauge(const char* name, Kind kind = Kind::Count);
  // Merges by maximum, within the thread and across shards.
  void record_max(std::uint64_t v) const noexcept;

 private:
  std::uint32_t slot_;
};

class Histogram {
 public:
  explicit Histogram(const char* name, Kind kind = Kind::Count);
  void observe(std::uint64_t v) const noexcept;

 private:
  std::uint32_t slot_;
};

// Slow-path by-name conveniences for rare events (per-stage completion,
// per-job records): one registry lock per call.
void add_count(const std::string& name, std::uint64_t v, Kind kind = Kind::Count);
void observe_value(const std::string& name, std::uint64_t v, Kind kind = Kind::Count);
void gauge_max(const std::string& name, std::uint64_t v, Kind kind = Kind::Count);

// Merges every shard (sum / max) into one name-sorted snapshot. Call at
// quiescent points only (between rounds/suites/windows): concurrent
// writers would race the merge.
[[nodiscard]] std::vector<MetricValue> harvest();

// Zeroes all shards and retired totals (registrations survive). Same
// quiescence requirement as harvest().
void reset();

}  // inline namespace live

#else  // PM_TELEMETRY_DISABLED

inline namespace stub {

[[nodiscard]] constexpr int level() noexcept { return 0; }
[[nodiscard]] constexpr bool enabled() noexcept { return false; }
[[nodiscard]] constexpr bool detail() noexcept { return false; }
constexpr void set_level(int) noexcept {}

class Counter {
 public:
  constexpr explicit Counter(const char*, Kind = Kind::Count) noexcept {}
  constexpr void add(std::uint64_t) const noexcept {}
  constexpr void inc() const noexcept {}
};

class Gauge {
 public:
  constexpr explicit Gauge(const char*, Kind = Kind::Count) noexcept {}
  constexpr void record_max(std::uint64_t) const noexcept {}
};

class Histogram {
 public:
  constexpr explicit Histogram(const char*, Kind = Kind::Count) noexcept {}
  constexpr void observe(std::uint64_t) const noexcept {}
};

inline void add_count(const std::string&, std::uint64_t, Kind = Kind::Count) {}
inline void observe_value(const std::string&, std::uint64_t, Kind = Kind::Count) {}
inline void gauge_max(const std::string&, std::uint64_t, Kind = Kind::Count) {}

[[nodiscard]] inline std::vector<MetricValue> harvest() { return {}; }
inline void reset() {}

}  // inline namespace stub

#endif  // PM_TELEMETRY_DISABLED

}  // namespace pm::telemetry
