// Reproduces the worked examples of paper Figs 1-4: the three steps of a
// Collect phase (OMP outward move, PRP fan-blade rotation, SDP move-back and
// doubling), rendered as ASCII frames at every stage transition.
#include <cstdio>
#include <cstring>

#include "core/collect/collect.h"
#include "core/dle/dle.h"
#include "shapegen/shapegen.h"
#include "viz/ascii.h"

int main() {
  using namespace pm;
  using namespace pm::core;

  // A sparse breadcrumb-like configuration: DLE on a thin ring leaves a
  // disconnected trail, exactly the situation of Fig 1.
  const grid::Shape shape = shapegen::annulus(6, 5);
  Rng rng(5);
  auto sys = Dle::make_system(shape, rng);
  Dle dle;
  amoebot::run(sys, dle, {amoebot::Order::RandomPerm, 6, 1'000'000});
  const auto outcome = election_outcome(sys);
  std::printf("After DLE: %d particles, %d components (temporarily disconnected)\n\n",
              sys.particle_count(), sys.component_count());

  const grid::Node l = sys.body(outcome.leader).head;
  auto render_now = [&](const char* caption) {
    const grid::Shape occupied = sys.shape();
    std::printf("--- %s\n%s\n", caption,
                viz::render(occupied, {.show_empty = false}, [&](grid::Node v) -> char {
                  if (v == l) return 'L';
                  return '\0';
                }).c_str());
  };

  CollectRun collect(sys, outcome.leader);
  int frames = 0;
  collect.on_stage = [&](const char* stage, int k) {
    if (frames > 18) return;  // keep the demo short
    ++frames;
    char caption[96];
    std::snprintf(caption, sizeof caption,
                  "round %ld: stage %s (stem size k=%d)   [Figs 1-4]",
                  collect.rounds(), stage, k);
    render_now(caption);
  };
  const auto res = collect.run();
  std::printf("Collect finished: %d phases, %ld rounds, connected=%s\n", res.phases,
              res.rounds, sys.component_count() == 1 ? "yes" : "NO");
  render_now("final configuration (reconnected, Fig 1f)");
  return 0;
}
