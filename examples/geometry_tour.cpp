// Reproduces the preliminary figures of the paper (Figs 5-7): shapes with
// holes and their areas, boundary counts and erodable points, and the
// oriented v-node rings with their ±6 count sums (Observation 4).
#include <cstdio>

#include "grid/local_boundary.h"
#include "grid/metrics.h"
#include "grid/vnode.h"
#include "shapegen/shapegen.h"
#include "viz/ascii.h"

int main() {
  using namespace pm;
  using grid::Node;

  // --- Fig 5: a simply-connected shape and a holey one; area = shape+holes.
  const grid::Shape simple = shapegen::hexagon(3);
  const grid::Shape holey = shapegen::annulus(4, 1);
  std::printf("Fig 5 — simply-connected shape (no holes):\n%s\n",
              viz::render(simple).c_str());
  std::printf("Fig 5 — shape with a hole ('*' = hole points; area = 'O' + '*'):\n%s\n",
              viz::render(holey).c_str());
  std::printf("holes=%d, |shape|=%zu, |area|=%zu\n\n", holey.hole_count(), holey.size(),
              holey.area().size());

  // --- Fig 6: boundary counts and erodable / SCE points.
  const grid::Shape comb = shapegen::comb(3, 3);
  std::printf("Fig 6 — boundary counts ('digit' = count of that point, 'E' = SCE):\n%s\n",
              viz::render(comb, {.show_empty = false}, [&](Node v) -> char {
                if (!comb.contains(v)) return '\0';
                const auto run = grid::single_local_boundary(
                    v, [&](Node u) { return comb.contains(u); });
                if (!run) return 'O';
                if (grid::is_sce(comb, v)) return 'E';
                const int c = run->count();
                return static_cast<char>(c < 0 ? 'm' : '0' + c);
              }).c_str());
  std::printf("('m' = count -1, digits = count, 'E' = strictly convex erodable)\n\n");

  // --- Fig 7: v-node rings and Observation 4.
  const grid::Shape cheese = shapegen::swiss_cheese(5, 2, 12);
  const grid::VNodeRings rings(cheese);
  std::printf("Fig 7 — v-node rings of a 2-hole shape:\n");
  for (std::size_t r = 0; r < rings.rings().size(); ++r) {
    const bool outer = static_cast<int>(r) == rings.outer_ring();
    std::printf("  ring %zu: %zu v-nodes, count sum %+d (%s boundary)\n", r,
                rings.rings()[r].size(), rings.ring_count_sum(static_cast<int>(r)),
                outer ? "OUTER" : "inner");
  }
  std::printf("Observation 4: the outer ring sums to +6, every inner ring to -6.\n");
  return 0;
}
