// Quickstart: elect a leader on a holey shape with the full pipeline
// (OBD -> DLE -> Collect) through the Stage/Pipeline API, watching stage
// progress with a per-round observer, and visualize the before/after
// configurations.
#include <cstdio>
#include <cstring>

#include "grid/metrics.h"
#include "pipeline/pipeline.h"
#include "shapegen/shapegen.h"
#include "viz/ascii.h"

int main() {
  using namespace pm;

  // A hexagon of radius 6 with 4 holes — a shape no no-holes algorithm handles.
  const grid::Shape shape = shapegen::swiss_cheese(6, 4, /*seed=*/2024);
  const auto metrics = grid::compute_metrics(shape);
  std::printf("Initial shape: n=%d particles, %d holes, D=%d, D_A=%d, L_out=%d\n\n",
              metrics.n, metrics.holes, metrics.d, metrics.d_area, metrics.l_out);
  std::printf("%s\n", viz::render(shape).c_str());

  // One RunContext carries the whole configuration: a single SeedPolicy
  // (construction + scheduling from one base seed), occupancy, order,
  // threads, round budget, and an observer fired after every round.
  pipeline::RunContext ctx;
  ctx.initial = shape;
  ctx.seeds = pipeline::SeedPolicy::unified(8);
  const char* last_stage = "";
  long observed_rounds = 0;
  ctx.on_round = [&](const pipeline::Stage& stage, const pipeline::RunContext&) {
    ++observed_rounds;
    if (std::strcmp(stage.name(), last_stage) != 0) {
      last_stage = stage.name();
      std::printf("  -> entering stage '%s'\n", stage.name());
    }
  };

  pipeline::Pipeline pipe = pipeline::Pipeline::standard(
      std::move(ctx), {.use_boundary_oracle = false, .reconnect = true});
  const pipeline::PipelineOutcome out = pipe.run();
  if (!out.completed) {
    std::printf("pipeline failed\n");
    return 1;
  }

  std::printf("\nElected a unique leader (particle %d).\n", out.leader);
  for (const pipeline::StageReport& s : out.stages) {
    std::printf("  stage %-8s %6ld rounds%s\n", s.name, s.metrics.rounds,
                s.status == pipeline::StageStatus::Succeeded ? "" : "  (FAILED)");
  }
  std::printf("Total: %ld rounds, %lld moves (observer saw %ld rounds)\n",
              out.total_rounds(), out.moves, observed_rounds);

  auto& sys = pipe.context().system();
  std::printf("System connected afterwards: %s, all contracted: %s\n\n",
              sys.component_count() == 1 ? "yes" : "NO",
              sys.all_contracted() ? "yes" : "NO");

  const grid::Shape after = sys.shape();
  const grid::Node leader_at = sys.body(out.leader).head;
  std::printf("Final configuration ('L' = leader):\n%s\n",
              viz::render(after, {}, [&](grid::Node v) -> char {
                return v == leader_at ? 'L' : '\0';
              }).c_str());
  return 0;
}
