// Quickstart: elect a leader on a holey shape with the full pipeline
// (OBD -> DLE -> Collect) and visualize the before/after configurations.
#include <cstdio>

#include "core/le/le.h"
#include "grid/metrics.h"
#include "shapegen/shapegen.h"
#include "viz/ascii.h"

int main() {
  using namespace pm;

  // A hexagon of radius 6 with 4 holes — a shape no no-holes algorithm handles.
  const grid::Shape shape = shapegen::swiss_cheese(6, 4, /*seed=*/2024);
  const auto metrics = grid::compute_metrics(shape);
  std::printf("Initial shape: n=%d particles, %d holes, D=%d, D_A=%d, L_out=%d\n\n",
              metrics.n, metrics.holes, metrics.d, metrics.d_area, metrics.l_out);
  std::printf("%s\n", viz::render(shape).c_str());

  Rng rng(7);
  auto sys = core::Dle::make_system(shape, rng);
  const core::PipelineResult res =
      core::elect_leader(sys, {.use_boundary_oracle = false, .seed = 8});
  if (!res.completed) {
    std::printf("pipeline failed\n");
    return 1;
  }

  const auto outcome = core::election_outcome(sys);
  std::printf("Elected a unique leader (particle %d).\n", outcome.leader);
  std::printf("Rounds: OBD=%ld, DLE=%ld, Collect=%ld (total %ld)\n", res.obd_rounds,
              res.dle_rounds, res.collect_rounds, res.total_rounds());
  std::printf("System connected afterwards: %s, all contracted: %s\n\n",
              sys.component_count() == 1 ? "yes" : "NO",
              sys.all_contracted() ? "yes" : "NO");

  const grid::Shape after = sys.shape();
  const grid::Node leader_at = sys.body(outcome.leader).head;
  std::printf("Final configuration ('L' = leader):\n%s\n",
              viz::render(after, {}, [&](grid::Node v) -> char {
                return v == leader_at ? 'L' : '\0';
              }).c_str());
  return 0;
}
