// parallel_speedup — DLE on a large hexagon under the ParallelEngine.
//
//   ./parallel_speedup [radius]     (default 82: n = 20,419 particles)
//
// Runs Algorithm DLE once with the sequential Engine and then with the
// ParallelEngine at 1, 2, 4, and 8 threads, printing rounds, wall time, and
// speedup vs the sequential baseline. Every row reports identical rounds,
// activations, and moves — the parallel engine is bit-for-bit deterministic;
// only the wall clock moves. Speedup requires physical cores: on a 1-core
// machine the ladder shows the batching overhead instead.
#include <cstdio>
#include <cstdlib>

#include "core/dle/dle.h"
#include "exec/parallel_engine.h"
#include "shapegen/shapegen.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace pm;
  const int radius = argc > 1 ? std::atoi(argv[1]) : 82;
  if (radius < 1) {
    std::fprintf(stderr, "usage: %s [radius >= 1]\n", argv[0]);
    return 2;
  }
  const auto shape = shapegen::hexagon(radius);
  std::printf("DLE on hexagon(%d): n = %d particles, %d hardware threads\n\n", radius,
              static_cast<int>(shape.size()),
              exec::ThreadPool::default_thread_count());

  const amoebot::Order order = amoebot::Order::RandomPerm;
  const std::uint64_t seed = 9;
  const long max_rounds = 8'000'000;

  auto fresh_system = [&] {
    Rng rng(seed);
    return core::Dle::make_system(shape, rng, amoebot::OccupancyMode::Dense);
  };

  Table table({"engine", "threads", "rounds", "activations", "moves", "wall ms",
               "speedup"});
  double base_ms = 0.0;
  auto add_row = [&](const char* engine, int threads, const amoebot::RunResult& res) {
    if (base_ms == 0.0) base_ms = res.wall_ms;
    table.add_row({engine, threads > 0 ? Table::num(static_cast<long long>(threads)) : "-",
                   Table::num(static_cast<long long>(res.rounds)),
                   Table::num(res.activations), Table::num(res.moves),
                   Table::num(res.wall_ms),
                   Table::num(res.wall_ms > 0 ? base_ms / res.wall_ms : 0.0)});
  };

  {
    auto sys = fresh_system();
    core::Dle dle;
    const auto res = amoebot::run(sys, dle, {order, seed, max_rounds});
    if (!res.completed) {
      std::fprintf(stderr, "sequential run did not complete\n");
      return 1;
    }
    add_row("sequential", 0, res);
  }
  for (const int threads : {1, 2, 4, 8}) {
    auto sys = fresh_system();
    core::Dle dle;
    const auto res = exec::run_parallel(sys, dle, {order, seed, max_rounds, threads});
    add_row("parallel", threads, res);
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "All rows report identical rounds/activations/moves: the ParallelEngine\n"
      "commits every batch in sequential order, so results match the\n"
      "sequential Engine bit-for-bit for any fixed (order, seed).\n");
  return 0;
}
