// F-ABL: the disconnection ablation (paper §1.2, Remark §4.2.1).
//
// Two observations reproduce the paper's point that temporary disconnection
// is the source of the speedup:
//  (A) on thin shapes DLE demonstrably disconnects (components > 1); the
//      "pull" variant of the paper's Remark repairs connectivity locally
//      (fewer components; 1 on moderately thick shapes, see dle_test's
//      PullVariantSweep) at small extra cost;
//  (B) the classical no-movement erosion class ([22]-style, one erosion per
//      round) is Θ(n) = Θ(D_A^2) on dense shapes, while DLE is Θ(D_A): the
//      crossover the paper's Table 1 reports.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "baselines/baselines.h"
#include "core/dle/dle.h"
#include "grid/metrics.h"
#include "shapegen/shapegen.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace pm;
using namespace pm::core;

struct DleRun {
  long rounds = 0;
  int max_components = 0;
  bool ok = false;
};

DleRun run_dle(const grid::Shape& shape, bool pull) {
  Rng rng(23);
  auto sys = Dle::make_system(shape, rng);
  Dle dle(Dle::Options{.connected_pull = pull});
  DleRun out;
  auto hook = [&](amoebot::System<DleState>& s, amoebot::ParticleId) {
    out.max_components = std::max(out.max_components, s.component_count());
  };
  const auto res = amoebot::run(sys, dle, {amoebot::Order::RandomPerm, 24, 4'000'000}, hook);
  out.rounds = res.rounds;
  out.ok = res.completed && election_outcome(sys).leaders == 1;
  return out;
}

void print_ablation() {
  {
    Table table({"shape", "D_A", "DLE rounds", "DLE max comps", "pull rounds",
                 "pull max comps"});
    char buf[64];
    for (const int r : {6, 9, 12, 15}) {
      const auto shape = shapegen::annulus(r, r - 1);
      const auto m = grid::compute_metrics(shape);
      const DleRun dle = run_dle(shape, false);
      const DleRun pull = run_dle(shape, true);
      std::snprintf(buf, sizeof buf, "thin-ring(%d)", r);
      table.add_row({buf, Table::num(static_cast<long long>(m.d_area)),
                     Table::num(static_cast<long long>(dle.rounds)),
                     Table::num(static_cast<long long>(dle.max_components)),
                     Table::num(static_cast<long long>(pull.rounds)),
                     Table::num(static_cast<long long>(pull.max_components))});
    }
    std::printf("=== F-ABL (A): disconnection counts (pull variant repairs locally) ===\n%s\n",
                table.to_string().c_str());
  }
  {
    Table table({"shape", "n", "D_A", "DLE rounds", "erosion-class rounds"});
    std::vector<double> xs;
    std::vector<double> ye;
    char buf[64];
    for (const int r : {4, 8, 12, 16, 20}) {
      const auto shape = shapegen::hexagon(r);
      const auto m = grid::compute_metrics(shape);
      const DleRun dle = run_dle(shape, false);
      const auto seq = baselines::sequential_erosion(shape);
      std::snprintf(buf, sizeof buf, "hexagon(%d)", r);
      table.add_row({buf, Table::num(static_cast<long long>(m.n)),
                     Table::num(static_cast<long long>(m.d_area)),
                     Table::num(static_cast<long long>(dle.rounds)),
                     Table::num(static_cast<long long>(seq.rounds))});
      xs.push_back(m.d_area);
      ye.push_back(static_cast<double>(seq.rounds));
    }
    const LinearFit fe = fit_power(xs, ye);
    std::printf("=== F-ABL (B): the no-movement erosion class vs DLE ===\n%s",
                table.to_string().c_str());
    std::printf("erosion-class rounds ~ D_A^%.2f (quadratic class, paper Table 1 rows\n"
                "[22]/[3]); DLE stays linear (see bench_dle_scaling)\n\n",
                fe.slope);
  }
}

void BM_PullVariant(benchmark::State& state) {
  const auto shape = shapegen::annulus(static_cast<int>(state.range(0)),
                                       static_cast<int>(state.range(0)) - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_dle(shape, true));
  }
}
BENCHMARK(BM_PullVariant)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  print_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
