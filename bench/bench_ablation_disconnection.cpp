// F-ABL: the disconnection ablation (paper §1.2, Remark §4.2.1).
//
// Two observations reproduce the paper's point that temporary disconnection
// is the source of the speedup:
//  (A) on thin shapes DLE demonstrably disconnects (components > 1); the
//      "pull" variant of the paper's Remark repairs connectivity locally at
//      small extra cost;
//  (B) the classical no-movement erosion class ([22]-style) is Θ(n) =
//      Θ(D_A^2) on dense shapes, while DLE is Θ(D_A): the crossover the
//      paper's Table 1 reports.
//
// Shim over the unified scenario driver (suite "ablation_disconnection").
#include "scenario/scenario.h"

int main(int argc, char** argv) {
  return pm::scenario::bench_main(argc, argv, "ablation_disconnection");
}
