// pm_serve — the long-running workload job server.
//
//   # pipe mode: NDJSON jobs in on stdin, one record per job on stdout
//   printf '{"family":"hexagon","p1":4,"algo":"dle_oracle","seed":5}\n' | pm_serve
//
//   # 4 concurrent jobs, auditing every job, from a job file
//   pm_serve --jobs 4 --audit < jobs.ndjson > records.ndjson
//
//   # socket mode: serve clients on a UNIX socket, one job stream per
//   # connection (e.g. `nc -U /tmp/pm.sock < jobs.ndjson`)
//   pm_serve --socket /tmp/pm.sock --jobs 4
//
// With --jobs N > 1 the server batches up to 4N lines per scheduling
// window before records flush, so a socket client that waits for each
// record before sending the next job must either run against --jobs 1 or
// half-close its write side when done (as `nc -U` does at EOF); batch
// clients are unaffected.
//
// Output is deterministic: the same job stream yields byte-identical
// records for any --jobs value (wall-clock fields are zeroed unless --wall
// asks for them). See src/workload/serve.h for the job and record schema.
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "workload/serve.h"

namespace {

void usage(const char* prog) {
  std::printf(
      "usage: %s [options] < jobs.ndjson > records.ndjson\n"
      "  --jobs N          run up to N jobs concurrently (default 1); output\n"
      "                    order and bytes are independent of N\n"
      "  --audit           attach the paper-invariant auditor to every job\n"
      "                    (per-job override: {\"spec\": {...}, \"audit\": false})\n"
      "  --audit-every N   audit cadence in rounds (default 1; implies --audit)\n"
      "  --wall            include real wall-clock times in result records\n"
      "                    (makes the output nondeterministic)\n"
      "  --flight K        per-job flight recorder: keep the protocol events\n"
      "                    of the last K rounds; a failing job (or one whose\n"
      "                    audit finds a violation) dumps the frozen window\n"
      "                    into its record as \"flight\" (round-clock only,\n"
      "                    so output stays byte-deterministic)\n"
      "  --socket PATH     listen on a UNIX socket instead of stdin/stdout;\n"
      "                    each connection is one job stream\n"
      "  --stats           write periodic NDJSON server stats (jobs/s, queue\n"
      "                    depth, per-job p50/p99 latency) to stderr; the\n"
      "                    result stream on stdout stays byte-deterministic\n"
      "  --stats-file F    write the stats stream to file F instead of stderr\n"
      "  --stats-socket P  connect and write the stats stream to the UNIX\n"
      "                    socket at P (a listener must already be there)\n"
      "  --stats-every N   stats cadence in completed jobs (default 64; a\n"
      "                    final summary line is always written)\n"
      "Exit status (pipe mode): 0 when every job succeeded, 1 when any job\n"
      "failed or an audited job reported invariant violations. Socket mode\n"
      "serves until killed; per-connection stats go to stderr.\n",
      prog);
}

// iostream over a connected socket fd (both directions). Minimal by design:
// pm_serve reads lines and writes lines, nothing seeks.
class FdStreambuf : public std::streambuf {
 public:
  explicit FdStreambuf(int fd) : fd_(fd) { setg(rbuf_, rbuf_, rbuf_); }

 protected:
  int_type underflow() override {
    ssize_t n;
    do {
      n = ::read(fd_, rbuf_, sizeof rbuf_);
    } while (n < 0 && errno == EINTR);  // a signal mid-read is not EOF
    if (n <= 0) return traits_type::eof();
    setg(rbuf_, rbuf_, rbuf_ + n);
    return traits_type::to_int_type(rbuf_[0]);
  }

  int_type overflow(int_type ch) override {
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      const char c = traits_type::to_char_type(ch);
      if (!write_all(&c, 1)) return traits_type::eof();
    }
    return traits_type::not_eof(ch);
  }

  std::streamsize xsputn(const char* s, std::streamsize n) override {
    return write_all(s, static_cast<std::size_t>(n)) ? n : 0;
  }

 private:
  bool write_all(const char* data, std::size_t n) {
    while (n > 0) {
      const ssize_t w = ::write(fd_, data, n);
      if (w < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      data += w;
      n -= static_cast<std::size_t>(w);
    }
    return true;
  }

  int fd_;
  char rbuf_[4096];
};

int socket_main(const std::string& path, const pm::workload::ServeOptions& opts) {
  // A dropped client must error the write, not kill the server.
  std::signal(SIGPIPE, SIG_IGN);
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::perror("pm_serve: socket");
    return 2;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    std::fprintf(stderr, "pm_serve: socket path too long: %s\n", path.c_str());
    return 2;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  ::unlink(path.c_str());  // a stale socket from a previous run
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(listen_fd, 8) < 0) {
    std::perror("pm_serve: bind/listen");
    ::close(listen_fd);
    return 2;
  }
  std::fprintf(stderr, "pm_serve: listening on %s (jobs=%d%s)\n", path.c_str(),
               opts.jobs, opts.audit ? ", audit" : "");
  while (true) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      // Transient failures (a client aborting mid-handshake, a momentary
      // fd shortage) must not take the server down; anything else is
      // fatal and must exit non-zero so a supervisor restarts us.
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE) {
        ::usleep(100 * 1000);  // fd pressure: back off instead of spinning
        continue;
      }
      std::perror("pm_serve: accept");
      ::close(listen_fd);
      return 1;
    }
    FdStreambuf buf(fd);
    std::istream in(&buf);
    std::ostream out(&buf);
    const pm::workload::ServeStats stats = pm::workload::serve(in, out, opts);
    out.flush();
    ::close(fd);
    std::fprintf(stderr, "pm_serve: connection done — %ld job(s), %ld failed, %ld "
                 "audit violation(s)\n",
                 stats.jobs, stats.failed, stats.audit_violations);
  }
  ::close(listen_fd);
  return 0;
}

bool parse_int(const char* s, int lo, int hi, int& out) {
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == nullptr || *end != '\0' || s == end || v < lo || v > hi) return false;
  out = static_cast<int>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  pm::workload::ServeOptions opts;
  std::string socket_path;
  std::string stats_file;
  std::string stats_socket;
  bool stats_stderr = false;
  bool stats_cadence_set = false;
  int audit_every = 1;
  int stats_every = 64;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--jobs" && i + 1 < argc) {
      if (!parse_int(argv[++i], 1, 1024, opts.jobs)) {
        std::fprintf(stderr, "bad --jobs value (need an integer in [1, 1024])\n");
        return 2;
      }
    } else if (arg == "--audit") {
      opts.audit = true;
    } else if (arg == "--audit-every" && i + 1 < argc) {
      if (!parse_int(argv[++i], 1, 1'000'000'000, audit_every)) {
        std::fprintf(stderr, "bad --audit-every value (need an integer >= 1)\n");
        return 2;
      }
      opts.audit = true;
    } else if (arg == "--wall") {
      opts.wall = true;
    } else if (arg == "--flight" && i + 1 < argc) {
      int flight = 0;
      if (!parse_int(argv[++i], 1, 1'000'000'000, flight)) {
        std::fprintf(stderr, "bad --flight value (need an integer >= 1)\n");
        return 2;
      }
      opts.flight = flight;
    } else if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg == "--stats") {
      stats_stderr = true;
    } else if (arg == "--stats-file" && i + 1 < argc) {
      stats_file = argv[++i];
    } else if (arg == "--stats-socket" && i + 1 < argc) {
      stats_socket = argv[++i];
    } else if (arg == "--stats-every" && i + 1 < argc) {
      if (!parse_int(argv[++i], 1, 1'000'000'000, stats_every)) {
        std::fprintf(stderr, "bad --stats-every value (need an integer >= 1)\n");
        return 2;
      }
      stats_cadence_set = true;
    } else {
      std::fprintf(stderr, "unknown or incomplete option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  opts.audit_every = audit_every;
  opts.stats_every = stats_every;

  // The stats sink outlives serve(); exactly one destination wins, so a
  // misconfigured pair fails loudly. A bare --stats-every asks for the
  // default destination (stderr); next to an explicit one it only sets
  // the cadence.
  if ((stats_stderr ? 1 : 0) + (stats_file.empty() ? 0 : 1) +
          (stats_socket.empty() ? 0 : 1) >
      1) {
    std::fprintf(stderr, "pick one of --stats / --stats-file / --stats-socket\n");
    return 2;
  }
  if (stats_cadence_set && !stats_stderr && stats_file.empty() && stats_socket.empty()) {
    stats_stderr = true;
  }
  std::ofstream stats_ofs;
  std::unique_ptr<FdStreambuf> stats_buf;
  std::unique_ptr<std::ostream> stats_os;
  int stats_fd = -1;
  if (!stats_file.empty()) {
    stats_ofs.open(stats_file);
    if (!stats_ofs) {
      std::fprintf(stderr, "pm_serve: cannot write %s\n", stats_file.c_str());
      return 2;
    }
    opts.stats = &stats_ofs;
  } else if (!stats_socket.empty()) {
    stats_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (stats_fd < 0 || stats_socket.size() >= sizeof addr.sun_path) {
      std::fprintf(stderr, "pm_serve: bad stats socket %s\n", stats_socket.c_str());
      return 2;
    }
    std::strncpy(addr.sun_path, stats_socket.c_str(), sizeof addr.sun_path - 1);
    if (::connect(stats_fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
      std::perror("pm_serve: connect stats socket");
      ::close(stats_fd);
      return 2;
    }
    std::signal(SIGPIPE, SIG_IGN);  // a dropped stats consumer must not kill us
    stats_buf = std::make_unique<FdStreambuf>(stats_fd);
    stats_os = std::make_unique<std::ostream>(stats_buf.get());
    opts.stats = stats_os.get();
  } else if (stats_stderr) {
    opts.stats = &std::cerr;
  }

  if (!socket_path.empty()) {
    const int rc = socket_main(socket_path, opts);
    if (stats_fd >= 0) ::close(stats_fd);
    return rc;
  }

  const pm::workload::ServeStats stats = pm::workload::serve(std::cin, std::cout, opts);
  std::fprintf(stderr, "pm_serve: %ld job(s), %ld failed, %ld audit violation(s)\n",
               stats.jobs, stats.failed, stats.audit_violations);
  if (stats_fd >= 0) ::close(stats_fd);
  return (stats.failed > 0 || stats.audit_violations > 0) ? 1 : 0;
}
