// Table 1 reproduction: measured rounds for every implemented algorithm
// class on a common shape sweep. Absolute numbers are simulator rounds; the
// *ordering* — deterministic DLE matching the randomized class and beating
// the O(n)/O(n^2) deterministic classes — is the paper's claim.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "baselines/baselines.h"
#include "core/le/le.h"
#include "grid/metrics.h"
#include "shapegen/shapegen.h"
#include "util/table.h"

namespace {

using namespace pm;

void print_table1() {
  Table table({"shape", "n", "D_A", "L_out+D", "rand-contest [19,10]/R",
               "seq-erosion [22,3]/D", "DLE(oracle) [here]/D",
               "DLE+Collect [here]/D", "OBD+DLE+Collect [here]/D"});
  struct Row {
    const char* name;
    grid::Shape shape;
  };
  const std::vector<Row> rows = {
      {"hexagon(8)", shapegen::hexagon(8)},
      {"annulus(8,5)", shapegen::annulus(8, 5)},
      {"cheese(8,5)", shapegen::swiss_cheese(8, 5, 7)},
      {"blob(400)", shapegen::random_blob(400, 11)},
      {"comb(8,8)", shapegen::comb(8, 8)},
  };
  for (const auto& row : rows) {
    const auto m = grid::compute_metrics(row.shape);
    const auto rand_res = baselines::randomized_boundary_contest(row.shape, 3);
    std::string seq = "n/a (holes)";
    if (row.shape.simply_connected()) {
      seq = Table::num(static_cast<long long>(baselines::sequential_erosion(row.shape).rounds));
    }
    const auto dle_only = core::elect_leader(
        row.shape, {.use_boundary_oracle = true, .reconnect = false, .seed = 5});
    const auto dle_collect =
        core::elect_leader(row.shape, {.use_boundary_oracle = true, .seed = 5});
    const auto full = core::elect_leader(row.shape, {.use_boundary_oracle = false, .seed = 5});
    table.add_row({row.name, Table::num(static_cast<long long>(m.n)),
                   Table::num(static_cast<long long>(m.d_area)),
                   Table::num(static_cast<long long>(m.l_out + m.d)),
                   Table::num(static_cast<long long>(rand_res.rounds)), seq,
                   dle_only.completed ? Table::num(static_cast<long long>(dle_only.dle_rounds))
                                      : "FAILED",
                   dle_collect.completed
                       ? Table::num(static_cast<long long>(dle_collect.total_rounds()))
                       : "FAILED",
                   full.completed ? Table::num(static_cast<long long>(full.total_rounds()))
                                  : "FAILED"});
  }
  std::printf("=== Table 1 (measured rounds; D=deterministic, R=randomized) ===\n%s\n",
              table.to_string().c_str());
}

void BM_DleOracleHexagon(benchmark::State& state) {
  const auto shape = shapegen::hexagon(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const auto res = core::elect_leader(
        shape, {.use_boundary_oracle = true, .reconnect = false, .seed = 7});
    benchmark::DoNotOptimize(res);
    state.counters["rounds"] = static_cast<double>(res.dle_rounds);
  }
}
BENCHMARK(BM_DleOracleHexagon)->Arg(4)->Arg(8)->Arg(12);

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
