// Table 1 reproduction: measured rounds for every implemented algorithm
// class on a common shape sweep. Absolute numbers are simulator rounds; the
// *ordering* — deterministic DLE matching the randomized class and beating
// the O(n)/O(n^2) deterministic classes — is the paper's claim.
//
// Shim over the unified scenario driver (suite "table1"); see pm_bench for
// the full CLI and src/scenario/scenario.cpp for the suite definition.
#include "scenario/scenario.h"

int main(int argc, char** argv) {
  return pm::scenario::bench_main(argc, argv, "table1");
}
