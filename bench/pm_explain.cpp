// pm_explain — causal forensics over recorded protocol event streams.
//
//   pm_explain events.ndjson                      # per-type summary
//   pm_explain events.ndjson --summary
//   pm_explain events.ndjson --why vnode=42       # newest comparison of v42
//   pm_explain events.ndjson --why vnode=42 --round 118
//   pm_explain --diff A.ndjson B.ndjson           # first diverging event
//
// Event streams come from `pm_bench ... --events PREFIX` (NDJSON format) or
// a flight-recorder dump; see README "Event tracing & flight recorder".
// pm_diff answers "where did the *states* diverge"; this answers "which
// *event* diverged" and "why did this head fire that verdict" — the
// epoch-tagged comparison chain walked back to its initiating arm event.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/explain.h"
#include "util/check.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s EVENTS.ndjson [--summary] [--why vnode=N [--round R]]\n"
               "       %s --diff A.ndjson B.ndjson\n",
               argv0, argv0);
  return 2;
}

std::vector<pm::obs::ExplainEvent> load_file(const std::string& path) {
  std::ifstream in(path);
  PM_CHECK_MSG(in.good(), "cannot open event stream: " << path);
  return pm::obs::load_ndjson(in, path);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    // --diff mode: exactly two stream paths.
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (args[i] != "--diff") continue;
      if (args.size() != 3 || i != 0) return usage(argv[0]);
      const auto a = load_file(args[1]);
      const auto b = load_file(args[2]);
      const pm::obs::Divergence d = pm::obs::first_divergence(a, b);
      std::cout << d.report;
      return d.diverged ? 1 : 0;
    }

    std::string path;
    int why_vnode = -1;
    long round = -1;
    bool summary = false;
    for (std::size_t i = 0; i < args.size(); ++i) {
      const std::string& a = args[i];
      if (a == "--summary") {
        summary = true;
      } else if (a == "--why") {
        if (i + 1 >= args.size()) return usage(argv[0]);
        const std::string spec = args[++i];
        if (spec.rfind("vnode=", 0) != 0) return usage(argv[0]);
        why_vnode = std::atoi(spec.c_str() + 6);
      } else if (a == "--round") {
        if (i + 1 >= args.size()) return usage(argv[0]);
        round = std::atol(args[++i].c_str());
      } else if (!a.empty() && a[0] == '-') {
        return usage(argv[0]);
      } else if (path.empty()) {
        path = a;
      } else {
        return usage(argv[0]);
      }
    }
    if (path.empty()) return usage(argv[0]);
    const auto events = load_file(path);
    if (why_vnode >= 0) {
      std::cout << pm::obs::why(events, why_vnode, round);
      return 0;
    }
    if (summary || true) {
      std::cout << pm::obs::summarize(events);
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pm_explain: %s\n", e.what());
    return 2;
  }
}
