// Theorem 23 reproduction: Collect rounds are linear in D_G (via ε_G(l)),
// phases logarithmic (Corollary 22).
//
// Shim over the unified scenario driver (suite "collect_scaling").
#include "scenario/scenario.h"

int main(int argc, char** argv) {
  return pm::scenario::bench_main(argc, argv, "collect_scaling");
}
