// Theorem 23 reproduction: Collect rounds are linear in D_G (via ε_G(l)),
// phases logarithmic (Corollary 22).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "core/collect/collect.h"
#include "core/dle/dle.h"
#include "grid/metrics.h"
#include "shapegen/shapegen.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace pm;
using namespace pm::core;

void print_scaling() {
  Table table({"shape", "n", "ecc(l)", "phases", "collect rounds", "rounds/ecc"});
  std::vector<double> xs;
  std::vector<double> ys;
  auto measure = [&](const char* name, const grid::Shape& shape) {
    Rng rng(13);
    auto sys = Dle::make_system(shape, rng);
    Dle dle;
    amoebot::run(sys, dle, {amoebot::Order::RandomPerm, 14, 4'000'000});
    const auto o = election_outcome(sys);
    const grid::Node l = sys.body(o.leader).head;
    const int ecc = grid::eccentricity_grid(l, shape.nodes());
    CollectRun collect(sys, o.leader);
    const auto res = collect.run();
    table.add_row({name, Table::num(static_cast<long long>(shape.size())),
                   Table::num(static_cast<long long>(ecc)),
                   Table::num(static_cast<long long>(res.phases)),
                   Table::num(static_cast<long long>(res.rounds)),
                   Table::num(static_cast<double>(res.rounds) / std::max(1, ecc))});
    xs.push_back(std::max(1, ecc));
    ys.push_back(static_cast<double>(res.rounds));
  };
  char buf[64];
  for (const int n : {100, 200, 400, 800, 1600, 3200}) {
    std::snprintf(buf, sizeof buf, "blob(%d)", n);
    measure(buf, shapegen::random_blob(n, 31));
  }
  for (const int r : {6, 10, 14, 18}) {
    std::snprintf(buf, sizeof buf, "thin-ring(%d)", r);
    measure(buf, shapegen::annulus(r, r - 1));
  }
  const LinearFit pow = fit_power(xs, ys);
  std::printf("=== F-COLLECT: Collect rounds vs eccentricity (Theorem 23: O(D_G)) ===\n%s",
              table.to_string().c_str());
  std::printf("power fit: rounds ~ ecc^%.2f (paper predicts exponent 1)\n\n", pow.slope);
}

void BM_CollectBlob(benchmark::State& state) {
  const auto shape = shapegen::random_blob(static_cast<int>(state.range(0)), 31);
  for (auto _ : state) {
    Rng rng(13);
    auto sys = Dle::make_system(shape, rng);
    Dle dle;
    amoebot::run(sys, dle, {amoebot::Order::RandomPerm, 14, 4'000'000});
    const auto o = election_outcome(sys);
    CollectRun collect(sys, o.leader);
    benchmark::DoNotOptimize(collect.run());
  }
}
BENCHMARK(BM_CollectBlob)->Arg(200)->Arg(800);

}  // namespace

int main(int argc, char** argv) {
  print_scaling();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
