// Theorem 18 reproduction: DLE rounds are linear in D_A — including shapes
// where D_A < D (annuli), the regime the paper highlights. Prints the
// measured series and the fitted rounds-vs-D_A slope / power exponent.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "core/le/le.h"
#include "grid/metrics.h"
#include "shapegen/shapegen.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace pm;

void print_scaling() {
  Table table({"shape", "n", "D_A", "D", "DLE rounds", "rounds/D_A"});
  std::vector<double> xs;
  std::vector<double> ys;
  auto measure = [&](const char* name, const grid::Shape& shape) {
    const auto m = grid::compute_metrics(shape);
    const auto res = core::elect_leader(
        shape, {.use_boundary_oracle = true, .reconnect = false, .seed = 9});
    table.add_row({name, Table::num(static_cast<long long>(m.n)),
                   Table::num(static_cast<long long>(m.d_area)),
                   Table::num(static_cast<long long>(m.d)),
                   Table::num(static_cast<long long>(res.dle_rounds)),
                   Table::num(static_cast<double>(res.dle_rounds) / m.d_area)});
    xs.push_back(m.d_area);
    ys.push_back(static_cast<double>(res.dle_rounds));
  };
  char buf[64];
  for (const int r : {4, 8, 12, 16, 24, 32}) {
    std::snprintf(buf, sizeof buf, "hexagon(%d)", r);
    measure(buf, shapegen::hexagon(r));
  }
  for (const int r : {8, 12, 16, 24}) {
    std::snprintf(buf, sizeof buf, "annulus(%d,%d)", r, r - 3);
    measure(buf, shapegen::annulus(r, r - 3));
  }
  for (const int n : {200, 400, 800, 1600}) {
    std::snprintf(buf, sizeof buf, "blob(%d)", n);
    measure(buf, shapegen::random_blob(n, 21));
  }
  for (const int r : {6, 10, 14}) {
    std::snprintf(buf, sizeof buf, "cheese(%d)", r);
    measure(buf, shapegen::swiss_cheese(r, r / 2, 5));
  }
  const LinearFit lin = fit_linear(xs, ys);
  const LinearFit pow = fit_power(xs, ys);
  std::printf("=== F-DLE: DLE rounds vs D_A (Theorem 18: O(D_A)) ===\n%s", table.to_string().c_str());
  std::printf("linear fit: rounds = %.2f * D_A + %.1f (r^2 = %.3f)\n", lin.slope, lin.intercept, lin.r2);
  std::printf("power fit : rounds ~ D_A^%.2f (paper predicts exponent 1)\n\n", pow.slope);
}

void BM_DleBlob(benchmark::State& state) {
  const auto shape = shapegen::random_blob(static_cast<int>(state.range(0)), 21);
  for (auto _ : state) {
    const auto res = core::elect_leader(
        shape, {.use_boundary_oracle = true, .reconnect = false, .seed = 9});
    benchmark::DoNotOptimize(res);
    state.counters["rounds"] = static_cast<double>(res.dle_rounds);
  }
}
BENCHMARK(BM_DleBlob)->Arg(200)->Arg(800);

}  // namespace

int main(int argc, char** argv) {
  print_scaling();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
