// Theorem 18 reproduction: DLE rounds are linear in D_A — including shapes
// where D_A < D (annuli), the regime the paper highlights. Prints the
// measured series and the fitted rounds-vs-D_A slope / power exponent.
//
// Shim over the unified scenario driver (suite "dle_scaling"); the large-n
// stress sweep lives in the separate "dle_large" suite.
#include "scenario/scenario.h"

int main(int argc, char** argv) {
  return pm::scenario::bench_main(argc, argv, "dle_scaling");
}
