// pm_bench — the unified scenario driver for every benchmark suite.
//
//   pm_bench --list                 # registered suites
//   pm_bench                        # run all standard suites, write JSON
//   pm_bench dle_scaling table1     # run specific suites
//   pm_bench --suite scaling        # suites whose name contains "scaling"
//   pm_bench dle_large --compare-occupancy
//                                   # large-n sweep, dense vs hash engines
//   pm_bench parallel_scaling       # ParallelEngine thread ladder (n = 20k)
//   pm_bench dle_scaling --threads 4 --reps 3
//                                   # any suite on the parallel engine,
//                                   # best-of-3 wall times
//   pm_bench table1 --jobs 4        # sharded suite execution: up to 4
//                                   # scenarios at once, one system per
//                                   # worker, bit-identical results
//   pm_bench --spec workloads/table1.json
//                                   # the same suite from its committed
//                                   # workload file (see README "Workload
//                                   # API"); --emit-spec DIR writes them
//
// Each suite writes BENCH_<suite>.json (disable with --no-json) so the
// performance trajectory can be tracked across PRs; --csv aggregates all
// rows into one spreadsheet-friendly file. The per-suite shim binaries
// (bench_table1, bench_dle_scaling, ...) call the same driver with a default
// suite preselected.
#include "scenario/scenario.h"

int main(int argc, char** argv) { return pm::scenario::bench_main(argc, argv); }
