// pm_diff: first-divergence forensics for two recorded traces.
//
//   pm_diff A.trace B.trace
//
// Exit 0: traces identical (same trajectory and outcome).
// Exit 1: traces diverge (first round/particle/field printed) or are not
//         comparable (different initial shapes).
// Exit 2: a file could not be read or is not a trace of this build.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "audit/diff.h"
#include "util/check.h"
#include "util/snapshot.h"

namespace {

int load_trace(const char* path, pm::Snapshot& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "pm_diff: cannot read %s\n", path);
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  try {
    out = pm::Snapshot::parse(buf.str());
  } catch (const pm::CheckError& e) {
    std::fprintf(stderr, "pm_diff: %s is not a trace: %s\n", path, e.what());
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr,
                 "usage: %s A.trace B.trace\n"
                 "  Structural diff of two traces recorded with pm_bench --trace:\n"
                 "  prints the first diverging round, particle, and field.\n"
                 "  Exit 0 identical, 1 diverged/incomparable, 2 read error.\n",
                 argv[0]);
    return 2;
  }
  pm::Snapshot a;
  pm::Snapshot b;
  if (const int rc = load_trace(argv[1], a)) return rc;
  if (const int rc = load_trace(argv[2], b)) return rc;
  try {
    const pm::audit::TraceDiff d = pm::audit::diff_traces(a, b);
    std::fputs(pm::audit::format_diff(d).c_str(), stdout);
    return d.comparable && !d.diverged ? 0 : 1;
  } catch (const pm::CheckError& e) {
    std::fprintf(stderr, "pm_diff: %s\n", e.what());
    return 2;
  }
}
