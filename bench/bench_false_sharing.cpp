// Occupancy false-sharing probe (ROADMAP follow-on from PR 2).
//
// Question: when a ParallelEngine batch executes concurrently, do
// neighboring batch members write to the same 64-byte cache line? Three
// shared arrays are candidates:
//
//   * bodies_[p]  — mutated directly by expand/contract/handover even in
//                   batch mode (only *occupancy* writes are journaled),
//   * states_[p]  — mutated directly by the algorithm's activate(),
//   * dense cells — NOT written concurrently at all: batch members journal
//                   occupancy ops (amoebot::ActivationLog) and the engine
//                   commits them in sequential order after the join. The
//                   probe still maps each member's would-be cell footprint
//                   (ball-1 around its occupied nodes) onto cache lines to
//                   quantify what the journaling design avoids.
//
// Method: run the real DLE erosion sequentially, but plan each round's
// batches exactly as the ParallelEngine would (same exec::Batcher, same
// max_batch and inline-below thresholds), and for every batch wide enough
// to hit the thread pool, map each member's write ranges onto 64-byte
// lines and count members that share a line with another member of the
// same batch. Executing members in order afterwards keeps the trajectory
// identical to a real run, so the batches measured are the batches a
// parallel run would execute.
//
// Verdict (recorded in README "Concurrency model"): batch members are
// separated by occupied-node distance >= 5, but bodies_/states_ are
// indexed by ParticleId, so line sharing tracks how ids correlate with
// geometry: near zero on hexagons (scan-order ids make id-adjacent
// particles spatial neighbors, which batching separates), ~4% of pooled
// members for bodies_ and ~5% for states_ on random blobs (aggregation-
// order ids are spatially uncorrelated). The dense cell array would see
// ~59% of members sharing a written line if cells were written in place —
// that is the write sharing the journal + in-order-commit design avoids,
// and why cells are journaled rather than padded (4-byte cells padded to
// a line would inflate the box 16x).
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "amoebot/engine.h"
#include "amoebot/view.h"
#include "core/dle/dle.h"
#include "exec/conflict.h"
#include "grid/coord.h"
#include "shapegen/shapegen.h"
#include "util/rng.h"

namespace {

using pm::Rng;
using pm::amoebot::Order;
using pm::amoebot::ParticleId;
using pm::core::Dle;

constexpr std::uintptr_t kLine = 64;

// Accumulates one batch's write ranges as line -> set-of-members (members
// are batch-local indices; a line touched twice by the same member counts
// once).
class LineMap {
 public:
  void clear() { lines_.clear(); }

  void touch(const void* addr, std::size_t bytes, int member) {
    const auto lo = reinterpret_cast<std::uintptr_t>(addr) / kLine;
    const auto hi = (reinterpret_cast<std::uintptr_t>(addr) + bytes - 1) / kLine;
    for (std::uintptr_t line = lo; line <= hi; ++line) {
      auto& members = lines_[line];
      if (members.empty() || members.back() != member) members.push_back(member);
    }
  }

  // Number of distinct members that share at least one line with another
  // member, and the number of sharing pairs (summed per line).
  void tally(long long& shared_members, long long& shared_pairs,
             std::vector<char>& scratch, std::size_t batch_size) const {
    scratch.assign(batch_size, 0);
    for (const auto& [line, members] : lines_) {
      if (members.size() < 2) continue;
      const auto k = static_cast<long long>(members.size());
      shared_pairs += k * (k - 1) / 2;
      for (const int m : members) scratch[static_cast<std::size_t>(m)] = 1;
    }
    for (const char c : scratch) shared_members += c;
  }

 private:
  // line index -> batch-local member indices that touch it (appended in
  // member order, so duplicates from one member are always adjacent).
  std::unordered_map<std::uintptr_t, std::vector<int>> lines_;
};

struct Tally {
  long long pooled_batches = 0;
  long long pooled_members = 0;
  long long shared_members = 0;  // members sharing a line with a batch peer
  long long shared_pairs = 0;    // per-line sharing pairs
};

struct ProbeResult {
  long rounds = 0;
  long long batches = 0;
  Tally bodies, states, cells;
};

// The would-be-written dense cells of one activation: the ball-1 around
// the particle's occupied nodes (movement mutates adjacent cells only).
void touch_cells(const pm::amoebot::System<Dle::State>& sys, ParticleId p, int member,
                 LineMap& map) {
  const auto& box = sys.dense_index().box();
  auto touch_node = [&](pm::grid::Node v) {
    if (const std::int32_t* cell = box.find(v)) {
      map.touch(cell, sizeof *cell, member);
    }
  };
  const pm::amoebot::Body& b = sys.body(p);
  for (const pm::grid::Node base : {b.head, b.tail}) {
    touch_node(base);
    for (int i = 0; i < pm::grid::kDirCount; ++i) {
      touch_node(pm::grid::neighbor(base, pm::grid::dir_from_index(i)));
    }
    if (!b.expanded()) break;
  }
}

ProbeResult probe(const pm::grid::Shape& shape, std::uint64_t seed, int threads) {
  Rng build_rng(seed);
  auto sys = Dle::make_system(shape, build_rng, pm::amoebot::OccupancyMode::Dense);
  Dle dle;

  // Mirror ParallelEngine's planning parameters exactly.
  const int max_batch = 64 * threads;
  const std::size_t inline_below = static_cast<std::size_t>(std::max(16, 4 * threads));

  pm::exec::Batcher batcher(sys);
  pm::amoebot::RoundSequencer sequencer;
  pm::amoebot::FinalityTracker<Dle> tracker;
  Rng rng(seed + 1);
  sequencer.init(sys.particle_count());
  tracker.init(sys, dle);

  ProbeResult res;
  std::vector<ParticleId> pending;
  std::vector<ParticleId> batch;
  std::vector<char> scratch;
  LineMap body_map, state_map, cell_map;

  const long max_rounds = 1'000'000;
  while (!tracker.all_final() && res.rounds < max_rounds) {
    const std::vector<ParticleId>& seq = sequencer.next_round(Order::RandomPerm, rng);
    pending.assign(seq.begin(), seq.end());
    while (!pending.empty()) {
      batcher.plan_batch(pending, tracker.flags(), batch, max_batch);
      if (batch.empty()) continue;
      ++res.batches;
      if (batch.size() >= inline_below) {
        // This batch would run concurrently on the pool: map write lines.
        ++res.bodies.pooled_batches;
        ++res.states.pooled_batches;
        ++res.cells.pooled_batches;
        res.bodies.pooled_members += static_cast<long long>(batch.size());
        res.states.pooled_members += static_cast<long long>(batch.size());
        res.cells.pooled_members += static_cast<long long>(batch.size());
        body_map.clear();
        state_map.clear();
        cell_map.clear();
        for (std::size_t i = 0; i < batch.size(); ++i) {
          const ParticleId p = batch[i];
          const int m = static_cast<int>(i);
          body_map.touch(&sys.body(p), sizeof(pm::amoebot::Body), m);
          state_map.touch(&sys.state(p), sizeof(Dle::State), m);
          touch_cells(sys, p, m, cell_map);
        }
        body_map.tally(res.bodies.shared_members, res.bodies.shared_pairs, scratch,
                       batch.size());
        state_map.tally(res.states.shared_members, res.states.shared_pairs, scratch,
                        batch.size());
        cell_map.tally(res.cells.shared_members, res.cells.shared_pairs, scratch,
                       batch.size());
      }
      // Execute in order — sequential execution of a planned batch is
      // exactly what the engine's in-order commit reproduces, so the next
      // rounds' batches match a real parallel run.
      for (const ParticleId p : batch) {
        pm::amoebot::TouchList touches;
        pm::amoebot::ParticleView<Dle::State> view(sys, p, &touches);
        dle.activate(view);
        touches.add(p);
        tracker.process(sys, dle, touches);
      }
    }
    ++res.rounds;
  }
  return res;
}

void print_tally(const char* label, const Tally& t) {
  const double member_pct =
      t.pooled_members > 0
          ? 100.0 * static_cast<double>(t.shared_members) / static_cast<double>(t.pooled_members)
          : 0.0;
  std::printf("  %-14s shared members %8lld / %8lld (%5.1f%%), sharing pairs %8lld\n",
              label, t.shared_members, t.pooled_members, member_pct, t.shared_pairs);
}

}  // namespace

int main(int argc, char** argv) {
  int threads = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
      if (threads < 1) threads = 1;
    } else {
      std::printf("usage: %s [--threads N]\n", argv[0]);
      return std::strcmp(argv[i], "--help") == 0 ? 0 : 2;
    }
  }

  std::printf("occupancy false-sharing probe — 64B lines, ParallelEngine batch plan "
              "(threads=%d, max_batch=%d, inline below %d)\n",
              threads, 64 * threads, std::max(16, 4 * threads));
  std::printf("sizeof(Body)=%zu sizeof(DleState)=%zu cell=4B\n\n", sizeof(pm::amoebot::Body),
              sizeof(pm::core::DleState));

  struct Config {
    const char* name;
    pm::grid::Shape shape;
  };
  const Config configs[] = {
      {"hexagon r=40", pm::shapegen::hexagon(40)},
      {"blob n=6000", pm::shapegen::random_blob(6000, 21)},
      {"blob n=20000", pm::shapegen::random_blob(20000, 22)},
  };
  for (const Config& c : configs) {
    const ProbeResult r = probe(c.shape, 7, threads);
    std::printf("%s: %ld rounds, %lld batches, %lld pooled\n", c.name, r.rounds, r.batches,
                r.bodies.pooled_batches);
    print_tally("bodies_", r.bodies);
    print_tally("states_", r.states);
    print_tally("dense cells*", r.cells);
    std::printf("  (*cells are journaled per activation and committed in order — the\n"
                "   cell numbers are the write sharing the journal design avoids)\n\n");
  }
  return 0;
}
