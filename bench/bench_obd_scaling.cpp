// Theorem 41 reproduction: OBD rounds vs L_out + D.
//
// Shim over the unified scenario driver (suite "obd_scaling").
#include "scenario/scenario.h"

int main(int argc, char** argv) {
  return pm::scenario::bench_main(argc, argv, "obd_scaling");
}
