// Theorem 41 reproduction: OBD rounds vs L_out + D.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "core/dle/dle.h"
#include "core/obd/obd.h"
#include "grid/metrics.h"
#include "shapegen/shapegen.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace pm;
using namespace pm::core;

void print_scaling() {
  Table table({"shape", "n", "L_out", "D", "OBD rounds", "rounds/(L_out+D)"});
  std::vector<double> xs;
  std::vector<double> ys;
  auto measure = [&](const char* name, const grid::Shape& shape) {
    Rng rng(17);
    auto sys = amoebot::System<DleState>::from_shape(shape, rng);
    ObdRun obd(sys);
    const auto res = obd.run();
    const auto m = grid::compute_metrics(shape);
    table.add_row({name, Table::num(static_cast<long long>(m.n)),
                   Table::num(static_cast<long long>(m.l_out)),
                   Table::num(static_cast<long long>(m.d)), Table::num(static_cast<long long>(res.rounds)),
                   Table::num(static_cast<double>(res.rounds) / (m.l_out + m.d))});
    xs.push_back(m.l_out + m.d);
    ys.push_back(static_cast<double>(res.rounds));
  };
  char buf[64];
  for (const int r : {3, 5, 8, 12, 16}) {
    std::snprintf(buf, sizeof buf, "hexagon(%d)", r);
    measure(buf, shapegen::hexagon(r));
  }
  for (const int n : {100, 200, 400, 800}) {
    std::snprintf(buf, sizeof buf, "blob(%d)", n);
    measure(buf, shapegen::random_blob(n, 41));
  }
  for (const int r : {5, 8, 11}) {
    std::snprintf(buf, sizeof buf, "cheese(%d)", r);
    measure(buf, shapegen::swiss_cheese(r, 3, 9));
  }
  const LinearFit pow = fit_power(xs, ys);
  std::printf("=== F-OBD: OBD rounds vs L_out + D (Theorem 41) ===\n%s",
              table.to_string().c_str());
  std::printf("power fit: rounds ~ (L_out+D)^%.2f (paper predicts exponent 1; engine\n"
              "watchdog retries add variance on adversarial interleavings)\n\n",
              pow.slope);
}

void BM_ObdHexagon(benchmark::State& state) {
  const auto shape = shapegen::hexagon(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Rng rng(17);
    auto sys = amoebot::System<DleState>::from_shape(shape, rng);
    ObdRun obd(sys);
    benchmark::DoNotOptimize(obd.run());
  }
}
BENCHMARK(BM_ObdHexagon)->Arg(5)->Arg(10);

}  // namespace

int main(int argc, char** argv) {
  print_scaling();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
