// The event-stream determinism contract, end to end: for a fixed Spec the
// recorded stream is byte-identical across reruns, thread counts (i.e.
// sequential vs parallel engine), and --jobs fan-out — the same contract
// telemetry's count kind and the BENCH artifacts obey.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/scenario.h"

namespace pm::scenario {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing event file " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Runs the spec with event recording and returns the stream bytes.
std::string record(const Spec& spec, const std::string& tag) {
  const std::string path = ::testing::TempDir() + "/pm_events_" + tag + ".ndjson";
  RunHooks hooks;
  hooks.events_path = path;
  const Result res = run_scenario(spec, hooks);
  EXPECT_TRUE(res.completed) << tag;
  const std::string bytes = slurp(path);
  std::remove(path.c_str());
  return bytes;
}

// The mixed pipeline: OBD comparison machinery, DLE erosion (the async
// lane), and Collect phases all emit into one stream.
Spec mixed_spec() {
  Spec spec;
  spec.family = "comb";
  spec.p1 = 4;
  spec.p2 = 3;
  spec.algo = Algo::PipelineFull;
  spec.seed = 5;
  return spec;
}

TEST(EventDeterminism, RerunsAreByteIdentical) {
  const std::string a = record(mixed_spec(), "rerun_a");
  const std::string b = record(mixed_spec(), "rerun_b");
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // The mixed pipeline exercises every lane: ordered OBD events, async
  // erosions, and Collect phase transitions.
  EXPECT_NE(a.find("obd_arm"), std::string::npos);
  EXPECT_NE(a.find("erode"), std::string::npos);
  EXPECT_NE(a.find("collect_phase"), std::string::npos);
  EXPECT_NE(a.find("leader"), std::string::npos);
}

TEST(EventDeterminism, SequentialAndParallelEnginesEmitTheSameBytes) {
  Spec seq = mixed_spec();
  seq.threads = 0;  // amoebot::Engine
  Spec par = mixed_spec();
  par.threads = 4;  // exec::ParallelEngine — erosions arrive on pool threads
  EXPECT_EQ(record(seq, "eng_seq"), record(par, "eng_par"));
}

TEST(EventDeterminism, ZooProtocolStreamsAreByteIdentical) {
  Spec spec;
  spec.family = "hexagon";
  spec.p1 = 4;
  spec.algo = Algo::ZooDaymude;
  spec.seed = 9;
  const std::string a = record(spec, "zoo_a");
  const std::string b = record(spec, "zoo_b");
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("zoo_subphase"), std::string::npos);
}

TEST(EventDeterminism, SuiteJobsFanOutDoesNotChangeAnyStream) {
  Suite suite;
  suite.name = "events_jobs";
  for (const std::uint64_t seed : {3u, 4u, 5u}) {
    Spec spec = mixed_spec();
    spec.seed = seed;
    suite.specs.push_back(spec);
  }

  auto run_with_jobs = [&](int jobs, const char* tag) {
    SuiteRunOptions opts;
    opts.jobs = jobs;
    opts.events_prefix = ::testing::TempDir() + "/pm_ev_" + tag;
    const std::vector<Result> results = run_suite(suite, opts);
    EXPECT_EQ(results.size(), suite.specs.size());
    std::vector<std::string> streams;
    for (std::size_t i = 0; i < suite.specs.size(); ++i) {
      char idx[8];
      std::snprintf(idx, sizeof idx, "%03zu", i);
      const std::string path =
          opts.events_prefix + "." + suite.name + "." + idx + ".ndjson";
      streams.push_back(slurp(path));
      std::remove(path.c_str());
    }
    return streams;
  };

  const std::vector<std::string> serial = run_with_jobs(1, "j1");
  const std::vector<std::string> fanned = run_with_jobs(4, "j4");
  ASSERT_EQ(serial.size(), fanned.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_FALSE(serial[i].empty()) << i;
    EXPECT_EQ(serial[i], fanned[i]) << "spec " << i;
  }
}

}  // namespace
}  // namespace pm::scenario
