// Recorder unit tests: lane semantics, seq assignment, the flight ring,
// capture freezing, and export format stability. The cross-run determinism
// of real pipelines lives in events_determinism_test.cpp.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/obs.h"

namespace pm::obs {
namespace {

Event ev(Type type, std::int32_t v, std::int32_t epoch = -1, std::int64_t val = 0,
         const char* note = "") {
  Event e;
  e.type = type;
  e.stage = "test";
  e.v = v;
  e.epoch = epoch;
  e.val = val;
  e.note = note;
  return e;
}

std::string ndjson(const Recorder& rec) {
  std::ostringstream out;
  rec.write_ndjson(out);
  return out.str();
}

TEST(Recorder, OrderedLaneKeepsEmissionOrderAndAssignsSeqPerRound) {
  Recorder rec;
  rec.begin_round();
  rec.emit(ev(Type::ObdArm, 3));
  rec.emit(ev(Type::TrainCreate, 3, 1, 0, "len"));
  rec.begin_round();
  rec.emit(ev(Type::ObdVerdict, 3, 1));
  rec.finalize();

  const auto& events = rec.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].round, 1);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[0].type, Type::ObdArm);
  EXPECT_EQ(events[1].round, 1);
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(events[2].round, 2);
  EXPECT_EQ(events[2].seq, 0u);
}

TEST(Recorder, AsyncLaneSortsCanonicallyRegardlessOfArrivalOrder) {
  // The same three erosions arriving in two different thread interleavings
  // must flush to byte-identical streams, after the round's ordered events.
  auto record = [](const std::vector<int>& arrival) {
    Recorder rec;
    rec.begin_round();
    rec.emit(ev(Type::CollectPhase, -1, -1, 1, "gather"));
    for (const int v : arrival) {
      Event e = ev(Type::Erode, v);
      e.val = pack_xy(v, -v);
      rec.emit_async(std::move(e));
    }
    rec.end_round();
    rec.finalize();
    return ndjson(rec);
  };
  const std::string a = record({5, 1, 9});
  const std::string b = record({9, 5, 1});
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("collect_phase"), std::string::npos);
  // Ordered-lane event first, async events after it.
  EXPECT_LT(a.find("collect_phase"), a.find("erode"));
}

TEST(Recorder, RingRetainsOnlyTheLastKRounds) {
  Recorder rec(Recorder::Options{.ring_rounds = 3});
  for (int r = 0; r < 10; ++r) {
    rec.begin_round();
    rec.emit(ev(Type::ObdArm, r));
  }
  rec.finalize();
  ASSERT_EQ(rec.event_count(), 3u);
  EXPECT_EQ(rec.events().front().round, 8);
  EXPECT_EQ(rec.events().back().round, 10);
}

TEST(Recorder, CaptureFreezesTheFirstFailureWindow) {
  Recorder rec(Recorder::Options{.ring_rounds = 2});
  for (int r = 0; r < 5; ++r) {
    rec.begin_round();
    rec.emit(ev(Type::ObdArm, r));
  }
  rec.capture("first failure");
  // Later rounds and later captures must not disturb the frozen window.
  rec.begin_round();
  rec.emit(ev(Type::ObdAbort, 99));
  rec.capture("second failure");
  rec.finalize();

  ASSERT_TRUE(rec.captured());
  EXPECT_EQ(rec.capture_reason(), "first failure");
  const auto& frozen = rec.capture_events();
  ASSERT_EQ(frozen.size(), 2u);
  EXPECT_EQ(frozen[0].v, 3);
  EXPECT_EQ(frozen[1].v, 4);
  const std::vector<std::string> lines = rec.capture_ndjson();
  ASSERT_EQ(lines.size(), 2u);
  // The flight dump shares the stream serializer, so the formats agree.
  EXPECT_EQ(lines[0], to_ndjson_line(frozen[0]));
}

TEST(Recorder, NdjsonSchemaIsStable) {
  Recorder rec;
  rec.begin_round();
  Event e = ev(Type::ObdVerdict, 7, 4, 2, "len");
  e.peer = 11;
  rec.emit(std::move(e));
  rec.finalize();
  EXPECT_EQ(ndjson(rec),
            "{\"round\":1,\"seq\":0,\"type\":\"obd_verdict\",\"stage\":\"test\","
            "\"v\":7,\"peer\":11,\"epoch\":4,\"val\":2,\"note\":\"len\"}\n");
}

TEST(Recorder, PerfettoExportIsWellFormedTraceJson) {
  Recorder rec;
  rec.begin_round();
  Event enter = ev(Type::StageEnter, -1);
  enter.stage = "obd";
  rec.emit(std::move(enter));
  rec.emit(ev(Type::ObdArm, 1, 0));
  Event exit = ev(Type::StageExit, -1, -1, 1);
  exit.stage = "obd";
  rec.emit(std::move(exit));
  rec.finalize();

  std::ostringstream out;
  rec.write_perfetto(out);
  const std::string json = out.str();
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\"", 0), 0u);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  // Stage spans become a B/E pair; protocol events become instants.
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  // Braces and brackets balance (cheap well-formedness; CI runs a real
  // JSON parser over the pm_bench export).
  long braces = 0, brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(Recorder, NullRecorderPointerMeansOffByConvention) {
  // The instrument-site contract: a null Recorder* is "tracing off". This
  // is a compile-time idiom, but assert the type stays pointer-friendly.
  Recorder* rec = nullptr;
  EXPECT_EQ(rec, nullptr);
}

}  // namespace
}  // namespace pm::obs
