// pm_explain engine tests: NDJSON loading, the causal-chain walk, stream
// diffing, and the summary — on synthetic streams built through the real
// Recorder so the wire schema cannot drift between writer and reader.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/explain.h"
#include "obs/obs.h"
#include "workload/json.h"

namespace pm::obs {
namespace {

Event ev(Type type, std::int32_t v, std::int32_t peer, std::int32_t epoch,
         const char* note) {
  Event e;
  e.type = type;
  e.stage = "obd";
  e.v = v;
  e.peer = peer;
  e.epoch = epoch;
  e.note = note;
  return e;
}

// A two-comparison history for v-node 3: epoch 1 aborted, epoch 2 ran a
// train to a verdict. Plus an unrelated comparison at v-node 9.
std::vector<ExplainEvent> sample_stream() {
  Recorder rec;
  rec.begin_round();
  rec.emit(ev(Type::ObdArm, 3, 5, 1, ""));
  rec.begin_round();
  rec.emit(ev(Type::ObdAbort, 3, 5, 1, "peer dissolved"));
  rec.emit(ev(Type::ObdArm, 9, 2, 7, ""));
  rec.begin_round();
  rec.emit(ev(Type::ObdArm, 3, 5, 2, ""));
  rec.emit(ev(Type::TrainCreate, 3, 5, 2, "len"));
  rec.begin_round();
  rec.emit(ev(Type::TrainConsume, 3, 5, 2, "len"));
  rec.emit(ev(Type::ObdVerdict, 3, 5, 2, "len"));
  rec.finalize();
  std::ostringstream out;
  rec.write_ndjson(out);
  std::istringstream in(out.str());
  return load_ndjson(in, "sample");
}

TEST(Explain, LoadNdjsonRoundTripsTheRecorderSchema) {
  const std::vector<ExplainEvent> events = sample_stream();
  ASSERT_EQ(events.size(), 7u);
  EXPECT_EQ(events[0].type, "obd_arm");
  EXPECT_EQ(events[0].round, 1);
  EXPECT_EQ(events[0].v, 3);
  EXPECT_EQ(events[0].peer, 5);
  EXPECT_EQ(events[0].epoch, 1);
  EXPECT_EQ(events[1].note, "peer dissolved");
  EXPECT_EQ(events.back().type, "obd_verdict");
}

TEST(Explain, LoadNdjsonRejectsMalformedLinesWithTheLineNumber) {
  std::istringstream in("{\"round\":1}\n");
  try {
    load_ndjson(in, "bad");
    FAIL() << "expected WorkloadError";
  } catch (const workload::WorkloadError& e) {
    EXPECT_NE(std::string(e.what()).find("bad:1"), std::string::npos) << e.what();
  }
}

TEST(Explain, WhyWalksBackToTheInitiatingArmOfTheAnchorEpoch) {
  const std::vector<ExplainEvent> events = sample_stream();
  const std::string report = why(events, 3, -1);
  // Anchors on the newest closing event (the epoch-2 verdict), not the
  // earlier epoch-1 abort.
  EXPECT_NE(report.find("anchor: round 4"), std::string::npos) << report;
  EXPECT_NE(report.find("obd_verdict"), std::string::npos) << report;
  EXPECT_NE(report.find("causal chain (epoch 2)"), std::string::npos) << report;
  EXPECT_NE(report.find("<- initiating arm"), std::string::npos) << report;
  EXPECT_NE(report.find("train_create"), std::string::npos) << report;
  // The epoch-1 abort and v-node 9's comparison are not in this chain.
  EXPECT_EQ(report.find("peer dissolved"), std::string::npos) << report;
  EXPECT_EQ(report.find("epoch=7"), std::string::npos) << report;
}

TEST(Explain, WhyHonorsTheRoundCeiling) {
  const std::vector<ExplainEvent> events = sample_stream();
  // Capped at round 2, the newest closing event of v-node 3 is the epoch-1
  // abort.
  const std::string report = why(events, 3, 2);
  EXPECT_NE(report.find("obd_abort"), std::string::npos) << report;
  EXPECT_NE(report.find("causal chain (epoch 1)"), std::string::npos) << report;
}

TEST(Explain, WhyExplainsAnEmptyResult) {
  const std::vector<ExplainEvent> events = sample_stream();
  const std::string report = why(events, 42, -1);
  EXPECT_NE(report.find("no comparison events for v-node 42"), std::string::npos)
      << report;
}

TEST(Explain, FirstDivergenceFindsTheEarliestMismatch) {
  const std::vector<ExplainEvent> a = sample_stream();
  std::vector<ExplainEvent> b = a;
  EXPECT_FALSE(first_divergence(a, b).diverged);

  b[3].val = 99;
  const Divergence d = first_divergence(a, b);
  EXPECT_TRUE(d.diverged);
  EXPECT_EQ(d.index, 3);
  EXPECT_NE(d.report.find("first divergence at event 3"), std::string::npos);

  std::vector<ExplainEvent> prefix(a.begin(), a.end() - 2);
  const Divergence p = first_divergence(a, prefix);
  EXPECT_TRUE(p.diverged);
  EXPECT_EQ(p.index, static_cast<long>(prefix.size()));
  EXPECT_NE(p.report.find("A continues with"), std::string::npos) << p.report;
}

TEST(Explain, SummarizeCountsPerTypeAndRoundSpan) {
  const std::string report = summarize(sample_stream());
  EXPECT_NE(report.find("7 events, rounds 1..4"), std::string::npos) << report;
  EXPECT_NE(report.find("obd_arm: 3"), std::string::npos) << report;
  EXPECT_NE(report.find("obd_verdict: 1"), std::string::npos) << report;
}

}  // namespace
}  // namespace pm::obs
