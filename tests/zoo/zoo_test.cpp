// Algorithm-zoo stage contract: checkpoint/resume bit-equality mid-election,
// trace record -> replay round-trips, auditor-clean runs per protocol per
// shape family, Emek–Kutten seed-independence, and determinism across the
// suite runner's --jobs fan-out.
#include "zoo/zoo.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "audit/trace.h"
#include "pipeline/pipeline.h"
#include "scenario/scenario.h"
#include "shapegen/shapegen.h"
#include "util/snapshot.h"

namespace pm::zoo {
namespace {

using amoebot::ParticleId;
using pipeline::Pipeline;
using pipeline::PipelineOutcome;
using pipeline::RunContext;
using pipeline::SeedPolicy;
using pipeline::StageReport;

// Everything deterministic about a finished run (same shape as the pipeline
// checkpoint tests): per-stage status/rounds/activations, leader, moves,
// peak extent, and the final configuration (bodies + particle states).
struct RunFingerprint {
  std::vector<int> stage_status;
  std::vector<long> stage_rounds;
  std::vector<long long> stage_activations;
  bool completed = false;
  ParticleId leader = amoebot::kNoParticle;
  long long moves = 0;
  long long peak = 0;
  std::string trajectory;

  bool operator==(const RunFingerprint&) const = default;
};

RunFingerprint fingerprint(Pipeline& pipe, const PipelineOutcome& out) {
  RunFingerprint fp;
  for (const StageReport& s : out.stages) {
    fp.stage_status.push_back(static_cast<int>(s.status));
    fp.stage_rounds.push_back(s.metrics.rounds);
    fp.stage_activations.push_back(s.metrics.activations);
  }
  fp.completed = out.completed;
  fp.leader = out.leader;
  fp.moves = out.moves;
  fp.peak = out.peak_occupancy_cells;
  if (pipe.context().sys != nullptr) {
    std::ostringstream os;
    const auto& sys = *pipe.context().sys;
    for (ParticleId p = 0; p < sys.particle_count(); ++p) {
      const auto& b = sys.body(p);
      os << b.head << "/" << b.tail << "/" << static_cast<int>(b.ori);
      const core::DleState& st = sys.state(p);
      os << ":" << static_cast<int>(st.status) << st.terminated << ";";
    }
    fp.trajectory = os.str();
  }
  return fp;
}

Pipeline make_zoo_pipeline(std::uint64_t protocol, const grid::Shape& shape,
                           std::uint64_t seed) {
  RunContext ctx;
  ctx.initial = shape;
  ctx.seeds = SeedPolicy::unified(seed);
  Pipeline p(std::move(ctx));
  if (protocol == kZooConfigEk) {
    p.add(std::make_unique<EkLeStage>());
  } else {
    p.add(std::make_unique<DaymudeLeStage>());
  }
  return p;
}

RunFingerprint reference_run(std::uint64_t protocol, const grid::Shape& shape,
                             std::uint64_t seed, long& steps_out) {
  Pipeline pipe = make_zoo_pipeline(protocol, shape, seed);
  pipe.init();
  long steps = 0;
  while (!pipe.step_round()) ++steps;
  steps_out = steps;
  const PipelineOutcome out = pipe.outcome();
  return fingerprint(pipe, out);
}

// Steps `at` rounds, saves, serializes, restores a fresh pipeline from the
// parsed text (what a fresh process image would receive), finishes, and
// returns the resumed run's fingerprint.
RunFingerprint resumed_run(std::uint64_t protocol, const grid::Shape& shape,
                           std::uint64_t seed, long at) {
  Pipeline first = make_zoo_pipeline(protocol, shape, seed);
  first.init();
  for (long s = 0; s < at && !first.done(); ++s) first.step_round();
  Snapshot snap;
  first.save(snap);
  const std::string text = snap.serialize();

  const Snapshot parsed = Snapshot::parse(text);
  Pipeline second = make_zoo_pipeline(protocol, shape, seed);
  second.restore(parsed);
  while (!second.step_round()) {
  }
  const PipelineOutcome out = second.outcome();
  return fingerprint(second, out);
}

TEST(ZooCheckpoint, DaymudeResumesIdenticallyMidElection) {
  const grid::Shape shape = shapegen::comb(5, 4);
  long steps = 0;
  const RunFingerprint ref =
      reference_run(kZooConfigDaymude, shape, /*seed=*/11, steps);
  ASSERT_TRUE(ref.completed);
  ASSERT_GT(steps, 10);
  // Checkpoints spread over the whole election, including both endpoints.
  for (const long at : {0L, 1L, steps / 4, steps / 2, 3 * steps / 4, steps - 1, steps}) {
    EXPECT_EQ(resumed_run(kZooConfigDaymude, shape, 11, at), ref)
        << "checkpoint at step " << at;
  }
}

TEST(ZooCheckpoint, EkResumesIdenticallyMidElection) {
  const grid::Shape shape = shapegen::swiss_cheese(4, 2, 4);
  long steps = 0;
  const RunFingerprint ref = reference_run(kZooConfigEk, shape, /*seed=*/5, steps);
  ASSERT_TRUE(ref.completed);
  ASSERT_GT(steps, 10);
  for (const long at : {0L, 1L, steps / 4, steps / 2, 3 * steps / 4, steps - 1, steps}) {
    EXPECT_EQ(resumed_run(kZooConfigEk, shape, 5, at), ref)
        << "checkpoint at step " << at;
  }
}

// Records one zoo run and replays it bit-identically from the trace header
// alone — the trace names the protocol via the stage config word, so the
// replayer must rebuild the right zoo stage.
void expect_trace_round_trips(std::uint64_t protocol, const grid::Shape& shape,
                              std::uint64_t seed) {
  Pipeline pipe = make_zoo_pipeline(protocol, shape, seed);
  audit::TraceWriter writer;
  writer.attach(pipe);
  const PipelineOutcome out = pipe.run();
  ASSERT_TRUE(out.completed);
  writer.finish(out, pipe.context());
  const Snapshot trace = writer.snapshot();

  const audit::ReplayResult rr = audit::replay_trace(trace);
  EXPECT_TRUE(rr.identical) << "diverged at round " << rr.divergence_round << ": "
                            << rr.detail;
  EXPECT_TRUE(rr.outcome.completed);
  EXPECT_TRUE(rr.violations.empty());
  EXPECT_GT(rr.rounds, 0);
}

TEST(ZooTrace, DaymudeRecordedRunReplaysBitIdentically) {
  expect_trace_round_trips(kZooConfigDaymude, shapegen::annulus(4, 1), 3);
}

TEST(ZooTrace, EkRecordedRunReplaysBitIdentically) {
  expect_trace_round_trips(kZooConfigEk, shapegen::comb(5, 3), 3);
}

// Every zoo protocol, across the adversarial shape families the le_zoo
// suite sweeps, finishes with a unique leader and zero invariant
// violations under the standard Auditor.
TEST(ZooScenario, AuditorCleanPerProtocolPerShapeFamily) {
  struct Family {
    const char* family;
    int p1;
    int p2;
    std::uint64_t shape_seed;
  };
  const std::vector<Family> families = {
      {"hexagon", 3, 0, 0},
      {"comb", 5, 4, 0},
      {"annulus", 4, 1, 0},
      {"cheese", 4, 2, 7},
  };
  for (const scenario::Algo algo :
       {scenario::Algo::ZooDaymude, scenario::Algo::ZooEmekKutten}) {
    for (const Family& f : families) {
      scenario::Spec spec;
      spec.family = f.family;
      spec.p1 = f.p1;
      spec.p2 = f.p2;
      spec.shape_seed = f.shape_seed;
      spec.algo = algo;
      spec.seed = 9;
      scenario::RunHooks hooks;
      hooks.audit = true;
      std::vector<std::string> report;
      hooks.audit_report = &report;
      const scenario::Result res = scenario::run_scenario(spec, hooks);
      const std::string label = std::string(scenario::algo_name(algo)) + " on " +
                                f.family + "(" + std::to_string(f.p1) + "," +
                                std::to_string(f.p2) + ")";
      EXPECT_TRUE(res.completed) << label;
      EXPECT_EQ(res.leaders, 1) << label;
      EXPECT_EQ(res.audit_violations, 0)
          << label << (report.empty() ? "" : ": " + report.front());
      EXPECT_GT(res.baseline_rounds, 0) << label;
    }
  }
}

// The EK protocol is deterministic — it never consults the run seed, so the
// whole Result (minus wall clocks) is identical across seeds.
TEST(ZooScenario, EkResultIsSeedIndependent) {
  auto run_with_seed = [](std::uint64_t seed) {
    scenario::Spec spec;
    spec.family = "cheese";
    spec.p1 = 4;
    spec.p2 = 2;
    spec.shape_seed = 4;
    spec.algo = scenario::Algo::ZooEmekKutten;
    spec.seed = seed;
    scenario::Result res = scenario::run_scenario(spec);
    res.spec.seed = 0;  // compare everything but the seed itself
    return scenario::result_json_line(res, /*with_wall=*/false);
  };
  const std::string base = run_with_seed(1);
  EXPECT_EQ(run_with_seed(7), base);
  EXPECT_EQ(run_with_seed(123456789), base);
}

// ... while Daymude (randomized) must at least react to the seed somewhere
// in the sweep — a seed-blind "randomized" competitor would be a plumbing
// bug.
TEST(ZooScenario, DaymudeConsumesTheRunSeed) {
  auto rounds_with_seed = [](std::uint64_t seed) {
    scenario::Spec spec;
    spec.family = "comb";
    spec.p1 = 6;
    spec.p2 = 4;
    spec.algo = scenario::Algo::ZooDaymude;
    spec.seed = seed;
    return scenario::run_scenario(spec).baseline_rounds;
  };
  const long base = rounds_with_seed(1);
  bool moved = false;
  for (const std::uint64_t seed : {2ULL, 3ULL, 4ULL, 5ULL, 6ULL}) {
    if (rounds_with_seed(seed) != base) {
      moved = true;
      break;
    }
  }
  EXPECT_TRUE(moved) << "round count never varied across seeds";
}

// Suite-level fan-out: the zoo rows of a mixed suite are bit-for-bit
// identical whether run serially or across 4 scenario workers.
TEST(ZooSuite, ResultsAreIdenticalAcrossJobs) {
  scenario::Suite suite;
  suite.name = "zoo_jobs_probe";
  suite.description = "zoo determinism across --jobs";
  for (const scenario::Algo algo :
       {scenario::Algo::ZooDaymude, scenario::Algo::ZooEmekKutten}) {
    for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
      scenario::Spec spec;
      spec.family = "comb";
      spec.p1 = 5;
      spec.p2 = 3;
      spec.algo = algo;
      spec.seed = seed;
      suite.specs.push_back(spec);
    }
  }
  scenario::SuiteRunOptions serial;
  serial.jobs = 1;
  scenario::SuiteRunOptions fanned;
  fanned.jobs = 4;
  const std::vector<scenario::Result> a = scenario::run_suite(suite, serial);
  const std::vector<scenario::Result> b = scenario::run_suite(suite, fanned);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(scenario::result_json_line(a[i], /*with_wall=*/false),
              scenario::result_json_line(b[i], /*with_wall=*/false))
        << "row " << i;
  }
}

}  // namespace
}  // namespace pm::zoo
