// The experiment layer: scenario registry, runner determinism, serializers.
#include "scenario/scenario.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/check.h"

namespace pm::scenario {
namespace {

TEST(ScenarioRegistry, ListsAllSuites) {
  const auto names = suite_names();
  for (const char* expected :
       {"table1", "obd_scaling", "dle_scaling", "collect_scaling",
        "ablation_disconnection", "dle_large", "dle_adversarial", "audit_fuzz"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing suite " << expected;
  }
  for (const auto& name : names) {
    const Suite suite = make_suite(name);
    EXPECT_EQ(suite.name, name);
    EXPECT_FALSE(suite.specs.empty()) << name;
    EXPECT_FALSE(suite.description.empty()) << name;
  }
}

TEST(ScenarioRegistry, UnknownSuiteThrows) {
  EXPECT_THROW(make_suite("no_such_suite"), CheckError);
}

TEST(ScenarioRegistry, UnknownShapeFamilyThrows) {
  Spec spec;
  spec.family = "dodecahedron";
  EXPECT_THROW(build_shape(spec), CheckError);
}

Spec small_dle_spec() {
  Spec spec;
  spec.family = "hexagon";
  spec.p1 = 3;
  spec.algo = Algo::DleOracle;
  spec.seed = 5;
  return spec;
}

TEST(ScenarioRunner, RunsASmallDleScenario) {
  const Result res = run_scenario(small_dle_spec());
  EXPECT_EQ(res.spec.name, "hexagon(3)");  // auto-derived label
  EXPECT_EQ(res.n, 37);
  EXPECT_EQ(res.holes, 0);
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.leaders, 1);
  EXPECT_GT(res.dle_rounds, 0);
  EXPECT_GT(res.activations, 0);
  EXPECT_EQ(res.total_rounds(), res.dle_rounds);
}

TEST(ScenarioRunner, IsDeterministicUpToWallClock) {
  const Result a = run_scenario(small_dle_spec());
  const Result b = run_scenario(small_dle_spec());
  EXPECT_EQ(a.dle_rounds, b.dle_rounds);
  EXPECT_EQ(a.activations, b.activations);
  EXPECT_EQ(a.moves, b.moves);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.peak_occupancy_cells, b.peak_occupancy_cells);
}

TEST(ScenarioRunner, OccupancyModeDoesNotChangeRounds) {
  Spec dense = small_dle_spec();
  dense.occupancy = amoebot::OccupancyMode::Dense;
  Spec hash = small_dle_spec();
  hash.occupancy = amoebot::OccupancyMode::Hash;
  const Result rd = run_scenario(dense);
  const Result rh = run_scenario(hash);
  EXPECT_EQ(rd.dle_rounds, rh.dle_rounds);
  EXPECT_EQ(rd.activations, rh.activations);
  EXPECT_EQ(rd.moves, rh.moves);
  EXPECT_GT(rd.peak_occupancy_cells, 0);
  EXPECT_EQ(rh.peak_occupancy_cells, 0);
}

TEST(ScenarioRunner, ErosionBaselineRejectsHoleyShapes) {
  Spec spec;
  spec.family = "annulus";
  spec.p1 = 4;
  spec.p2 = 1;
  spec.algo = Algo::BaselineErosion;
  const Result res = run_scenario(spec);
  EXPECT_FALSE(res.completed);  // the erosion class cannot handle holes
  EXPECT_EQ(res.baseline_rounds, 0);
}

TEST(ScenarioRunner, PipelineScenarioFillsStageRounds) {
  Spec spec;
  spec.family = "cheese";
  spec.p1 = 5;
  spec.p2 = 2;
  spec.shape_seed = 4;
  spec.algo = Algo::PipelineFull;
  spec.seed = 8;
  const Result res = run_scenario(spec);
  ASSERT_TRUE(res.completed);
  EXPECT_GT(res.obd_rounds, 0);
  EXPECT_GT(res.dle_rounds, 0);
  EXPECT_GT(res.collect_rounds, 0);
  EXPECT_EQ(res.leaders, 1);
  EXPECT_EQ(res.total_rounds(), res.obd_rounds + res.dle_rounds + res.collect_rounds);
}

TEST(ScenarioSerialization, JsonContainsSuiteAndRows) {
  Suite suite{"demo", "demo suite", {small_dle_spec()}};
  const std::vector<Result> results = {run_scenario(suite.specs[0])};
  const std::string json = to_json(suite, results);
  EXPECT_NE(json.find("\"suite\": \"demo\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"workload_hash\": \""), std::string::npos);
  // v5: the telemetry block is always present (null without --metrics) and
  // every row carries the peak-RSS sample.
  EXPECT_NE(json.find("\"telemetry\": {\"metrics\": null}"), std::string::npos);
  EXPECT_NE(json.find("\"peak_rss_kb\": "), std::string::npos);
  EXPECT_NE(json.find("\"fault_seed\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"audit_violations\": -1"), std::string::npos);
  EXPECT_NE(json.find("\"git_describe\": \""), std::string::npos);
  EXPECT_NE(json.find("\"threads\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"scenario\": \"hexagon(3)\""), std::string::npos);
  EXPECT_NE(json.find("\"algo\": \"dle_oracle\""), std::string::npos);
  EXPECT_NE(json.find("\"completed\": true"), std::string::npos);
  EXPECT_NE(json.find("\"occupancy\": \""), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness smoke check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(ScenarioSerialization, CsvHasHeaderPlusOneRowPerResult) {
  const std::vector<Result> results = {run_scenario(small_dle_spec()),
                                       run_scenario(small_dle_spec())};
  const std::string csv = to_csv(results);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);  // header + 2 rows
  EXPECT_NE(csv.find("scenario,family,algo"), std::string::npos);
  EXPECT_NE(csv.find("hexagon(3)"), std::string::npos);
}

}  // namespace
}  // namespace pm::scenario
