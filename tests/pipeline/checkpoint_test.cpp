// Checkpoint/resume determinism: snapshot each stage mid-run at several
// round indices, restore into a fresh pipeline (through the serialized text
// form, i.e. what a fresh process image would receive), and assert the
// resumed run's outcome and final trajectory are bit-for-bit identical to
// an uninterrupted run.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "pipeline/pipeline.h"
#include "pipeline/stages.h"
#include "shapegen/shapegen.h"
#include "util/snapshot.h"

namespace pm::pipeline {
namespace {

using amoebot::ParticleId;
using core::DleState;

// Everything deterministic about a finished run: per-stage status/rounds/
// activations/phases, leader, moves, peak extent, and the full final
// configuration (bodies + particle states).
struct RunFingerprint {
  std::vector<int> stage_status;
  std::vector<long> stage_rounds;
  std::vector<long long> stage_activations;
  std::vector<int> stage_phases;
  bool completed = false;
  ParticleId leader = amoebot::kNoParticle;
  long long moves = 0;
  long long peak = 0;
  std::string trajectory;  // serialized bodies + states

  bool operator==(const RunFingerprint&) const = default;
};

RunFingerprint fingerprint(Pipeline& pipe, const PipelineOutcome& out) {
  RunFingerprint fp;
  for (const StageReport& s : out.stages) {
    fp.stage_status.push_back(static_cast<int>(s.status));
    fp.stage_rounds.push_back(s.metrics.rounds);
    fp.stage_activations.push_back(s.metrics.activations);
    fp.stage_phases.push_back(s.metrics.phases);
  }
  fp.completed = out.completed;
  fp.leader = out.leader;
  fp.moves = out.moves;
  fp.peak = out.peak_occupancy_cells;
  if (pipe.context().sys != nullptr) {
    std::ostringstream os;
    const auto& sys = *pipe.context().sys;
    for (ParticleId p = 0; p < sys.particle_count(); ++p) {
      const auto& b = sys.body(p);
      os << b.head << "/" << b.tail << "/" << static_cast<int>(b.ori);
      const DleState& st = sys.state(p);
      os << ":" << static_cast<int>(st.status) << st.terminated << ";";
    }
    fp.trajectory = os.str();
  }
  return fp;
}

enum class Comp { Full, DleCollectLegacy, DleOnly, Erosion, Contest };

Pipeline make_pipeline(Comp comp, const grid::Shape& shape, int threads = 0,
                       amoebot::OccupancyMode occupancy = amoebot::kDefaultOccupancy) {
  RunContext ctx;
  ctx.initial = shape;
  ctx.threads = threads;
  ctx.occupancy = occupancy;
  switch (comp) {
    case Comp::Full:
      ctx.seeds = SeedPolicy::unified(8);
      return Pipeline::standard(std::move(ctx),
                                {.use_boundary_oracle = false, .reconnect = true});
    case Comp::DleCollectLegacy:
      ctx.seeds = SeedPolicy::legacy_split(13);
      return Pipeline::standard(std::move(ctx),
                                {.use_boundary_oracle = true, .reconnect = true});
    case Comp::DleOnly:
      ctx.seeds = SeedPolicy::unified(9);
      return Pipeline::standard(std::move(ctx),
                                {.use_boundary_oracle = true, .reconnect = false});
    case Comp::Erosion: {
      ctx.seeds = SeedPolicy::unified(3);
      Pipeline p(std::move(ctx));
      p.add(std::make_unique<ErosionStage>());
      return p;
    }
    case Comp::Contest: {
      ctx.seeds = SeedPolicy::unified(3);
      Pipeline p(std::move(ctx));
      p.add(std::make_unique<ContestStage>());
      return p;
    }
  }
  PM_CHECK(false);
  return Pipeline(RunContext{});
}

// Runs uninterrupted; returns the fingerprint and the total step count.
RunFingerprint reference_run(Comp comp, const grid::Shape& shape, long& steps_out,
                             int threads = 0) {
  Pipeline pipe = make_pipeline(comp, shape, threads);
  pipe.init();
  long steps = 0;
  while (!pipe.step_round()) ++steps;
  steps_out = steps;
  const PipelineOutcome out = pipe.outcome();
  return fingerprint(pipe, out);
}

// Steps `at` rounds, saves, serializes, restores a fresh pipeline from the
// parsed text (optionally with a different thread count), finishes, and
// returns the resumed run's fingerprint.
RunFingerprint resumed_run(Comp comp, const grid::Shape& shape, long at,
                           int save_threads = 0, int resume_threads = 0) {
  Pipeline first = make_pipeline(comp, shape, save_threads);
  first.init();
  for (long s = 0; s < at && !first.done(); ++s) first.step_round();
  Snapshot snap;
  first.save(snap);
  const std::string text = snap.serialize();

  // Nothing of `first` survives into the resumed pipeline but the text.
  const Snapshot parsed = Snapshot::parse(text);
  Pipeline second = make_pipeline(comp, shape, resume_threads);
  second.restore(parsed);
  while (!second.step_round()) {
  }
  const PipelineOutcome out = second.outcome();
  return fingerprint(second, out);
}

TEST(Checkpoint, FullPipelineResumesIdenticallyFromEveryPhase) {
  const grid::Shape shape = shapegen::swiss_cheese(4, 2, 4);
  long steps = 0;
  const RunFingerprint ref = reference_run(Comp::Full, shape, steps);
  ASSERT_TRUE(ref.completed);
  ASSERT_GT(steps, 10);
  // Checkpoints spread over the whole run: inside OBD (early), around the
  // stage transitions, inside DLE and Collect, and right at the end.
  const std::vector<long> ats = {0,         1,         steps / 10, steps / 4,
                                 steps / 2, 3 * steps / 4, steps - 1, steps};
  for (const long at : ats) {
    EXPECT_EQ(resumed_run(Comp::Full, shape, at), ref) << "checkpoint at step " << at;
  }
}

TEST(Checkpoint, DleCollectLegacySplitResumesIdentically) {
  const grid::Shape shape = shapegen::random_blob(120, 31);
  long steps = 0;
  const RunFingerprint ref = reference_run(Comp::DleCollectLegacy, shape, steps);
  ASSERT_TRUE(ref.completed);
  for (const long at : {1L, steps / 3, steps / 2, steps - 1}) {
    EXPECT_EQ(resumed_run(Comp::DleCollectLegacy, shape, at), ref)
        << "checkpoint at step " << at;
  }
}

TEST(Checkpoint, SnapshotsArePortableAcrossEngines) {
  const grid::Shape shape = shapegen::random_blob(200, 21);
  long steps = 0;
  const RunFingerprint ref = reference_run(Comp::DleOnly, shape, steps);
  ASSERT_TRUE(ref.completed);
  const long mid = steps / 2;
  // Saved sequential, resumed parallel — and the reverse.
  EXPECT_EQ(resumed_run(Comp::DleOnly, shape, mid, /*save_threads=*/0,
                        /*resume_threads=*/2),
            ref);
  EXPECT_EQ(resumed_run(Comp::DleOnly, shape, mid, /*save_threads=*/2,
                        /*resume_threads=*/0),
            ref);
}

TEST(Checkpoint, RandomStreamOrderResumesIdentically) {
  const grid::Shape shape = shapegen::hexagon(4);
  RunContext ref_ctx;
  ref_ctx.initial = shape;
  ref_ctx.seeds = SeedPolicy::unified(5);
  ref_ctx.order = amoebot::Order::RandomStream;
  Pipeline ref_pipe = Pipeline::standard(std::move(ref_ctx),
                                         {.use_boundary_oracle = true, .reconnect = false});
  ref_pipe.init();
  long steps = 0;
  while (!ref_pipe.step_round()) ++steps;
  const RunFingerprint ref = fingerprint(ref_pipe, ref_pipe.outcome());
  ASSERT_TRUE(ref.completed);

  for (const long at : {1L, steps / 2}) {
    auto make = [&] {
      RunContext ctx;
      ctx.initial = shape;
      ctx.seeds = SeedPolicy::unified(5);
      ctx.order = amoebot::Order::RandomStream;
      return Pipeline::standard(std::move(ctx),
                                {.use_boundary_oracle = true, .reconnect = false});
    };
    Pipeline first = make();
    first.init();
    for (long s = 0; s < at; ++s) first.step_round();
    Snapshot snap;
    first.save(snap);
    const Snapshot parsed = Snapshot::parse(snap.serialize());
    Pipeline second = make();
    second.restore(parsed);
    while (!second.step_round()) {
    }
    EXPECT_EQ(fingerprint(second, second.outcome()), ref) << "checkpoint at step " << at;
  }
}

TEST(Checkpoint, BaselinesResumeIdentically) {
  const grid::Shape shape = shapegen::hexagon(5);
  for (const Comp comp : {Comp::Erosion, Comp::Contest}) {
    long steps = 0;
    const RunFingerprint ref = reference_run(comp, shape, steps);
    ASSERT_TRUE(ref.completed);
    for (const long at : {1L, steps / 2, steps - 1}) {
      EXPECT_EQ(resumed_run(comp, shape, at), ref)
          << "comp " << static_cast<int>(comp) << " checkpoint at step " << at;
    }
  }
}

TEST(Checkpoint, SurvivesARealFileRoundTrip) {
  const grid::Shape shape = shapegen::swiss_cheese(4, 1, 7);
  long steps = 0;
  const RunFingerprint ref = reference_run(Comp::Full, shape, steps);
  ASSERT_TRUE(ref.completed);

  Pipeline first = make_pipeline(Comp::Full, shape);
  first.init();
  for (long s = 0; s < steps / 2; ++s) first.step_round();
  Snapshot snap;
  first.save(snap);

  const std::string path = ::testing::TempDir() + "/pm_checkpoint.snap";
  {
    std::ofstream out(path);
    ASSERT_TRUE(out.good());
    out << snap.serialize();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  std::remove(path.c_str());

  Pipeline second = make_pipeline(Comp::Full, shape);
  second.restore(Snapshot::parse(buf.str()));
  while (!second.step_round()) {
  }
  EXPECT_EQ(fingerprint(second, second.outcome()), ref);
}

TEST(Checkpoint, ResumeMatrixAcrossOccupancyModesAndEngineKinds) {
  // One matrix over the two observably-neutral run choices: a snapshot
  // saved under any (occupancy, engine) pair resumes under any other pair.
  // Trajectories, rounds, activations, moves and leader are bit-identical
  // across all 16 cells; the dense peak-extent gauge is only comparable
  // when the occupancy mode is unchanged (hash runs report 0, and a
  // mid-run switch regrows the dense box from scratch).
  using amoebot::OccupancyMode;
  const grid::Shape shape = shapegen::random_blob(120, 31);
  const OccupancyMode modes[] = {OccupancyMode::Dense, OccupancyMode::Hash};

  // Reference fingerprints per final occupancy mode (peak differs: dense
  // tracks a box, hash has none).
  long steps = 0;
  std::map<int, RunFingerprint> ref;
  for (const OccupancyMode occ : modes) {
    Pipeline pipe = make_pipeline(Comp::DleOnly, shape, 0, occ);
    pipe.init();
    long s = 0;
    while (!pipe.step_round()) ++s;
    steps = s;
    ref[static_cast<int>(occ)] = fingerprint(pipe, pipe.outcome());
    ASSERT_TRUE(ref[static_cast<int>(occ)].completed);
  }

  const long at = steps / 2;
  for (const OccupancyMode save_occ : modes) {
    for (const int save_threads : {0, 2}) {
      Pipeline first = make_pipeline(Comp::DleOnly, shape, save_threads, save_occ);
      first.init();
      for (long s = 0; s < at && !first.done(); ++s) first.step_round();
      Snapshot snap;
      first.save(snap);
      const std::string text = snap.serialize();

      for (const OccupancyMode resume_occ : modes) {
        for (const int resume_threads : {0, 2}) {
          Pipeline second = make_pipeline(Comp::DleOnly, shape, resume_threads, resume_occ);
          second.restore(Snapshot::parse(text));
          while (!second.step_round()) {
          }
          RunFingerprint got = fingerprint(second, second.outcome());
          RunFingerprint want = ref[static_cast<int>(resume_occ)];
          if (save_occ != resume_occ) {
            // The gauge restarted mid-run; everything else must hold.
            got.peak = want.peak = 0;
          }
          EXPECT_EQ(got, want)
              << "save " << static_cast<int>(save_occ) << "/t" << save_threads
              << " -> resume " << static_cast<int>(resume_occ) << "/t" << resume_threads;
        }
      }
    }
  }
}

TEST(Checkpoint, RestoreRejectsMismatchedConfiguration) {
  const grid::Shape shape = shapegen::hexagon(3);
  Pipeline first = make_pipeline(Comp::DleOnly, shape);
  first.init();
  first.step_round();
  Snapshot snap;
  first.save(snap);

  // Different seed policy.
  RunContext ctx;
  ctx.initial = shape;
  ctx.seeds = SeedPolicy::unified(123);
  Pipeline wrong_seed = Pipeline::standard(std::move(ctx),
                                           {.use_boundary_oracle = true, .reconnect = false});
  EXPECT_THROW(wrong_seed.restore(snap), CheckError);

  // Different stage composition.
  snap.rewind();
  Pipeline wrong_comp = make_pipeline(Comp::Full, shape);
  EXPECT_THROW(wrong_comp.restore(snap), CheckError);

  // Different initial shape — matters most for the baselines, which carry
  // no system snapshot and resume against ctx.initial.
  snap.rewind();
  Pipeline wrong_shape = make_pipeline(Comp::DleOnly, shapegen::hexagon(4));
  EXPECT_THROW(wrong_shape.restore(snap), CheckError);
}

}  // namespace
}  // namespace pm::pipeline
