// The Stage/Pipeline API: composition, lifecycle, seed policy, observers,
// external systems, engine selection.
#include "pipeline/pipeline.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "baselines/baselines.h"
#include "core/le/le.h"
#include "pipeline/stages.h"
#include "shapegen/shapegen.h"
#include "util/check.h"

namespace pm::pipeline {
namespace {

using amoebot::Order;
using amoebot::System;
using core::DleState;

RunContext make_ctx(grid::Shape shape, std::uint64_t seed) {
  RunContext ctx;
  ctx.initial = std::move(shape);
  ctx.seeds = SeedPolicy::unified(seed);
  return ctx;
}

std::vector<amoebot::Body> bodies_of(const System<DleState>& sys) {
  std::vector<amoebot::Body> out;
  for (amoebot::ParticleId p = 0; p < sys.particle_count(); ++p) {
    out.push_back(sys.body(p));
  }
  return out;
}

bool same_bodies(const System<DleState>& a, const System<DleState>& b) {
  if (a.particle_count() != b.particle_count()) return false;
  for (amoebot::ParticleId p = 0; p < a.particle_count(); ++p) {
    const auto& ba = a.body(p);
    const auto& bb = b.body(p);
    if (!(ba.head == bb.head) || !(ba.tail == bb.tail) || ba.ori != bb.ori) return false;
  }
  return true;
}

TEST(SeedPolicy, SubsumesBothLegacyConventions) {
  const SeedPolicy unified = SeedPolicy::unified(9);
  EXPECT_EQ(unified.build_seed(), 9u);
  EXPECT_EQ(unified.schedule_seed(), 9u);
  const SeedPolicy split = SeedPolicy::legacy_split(9);
  EXPECT_EQ(split.build_seed(), 9u);
  EXPECT_EQ(split.schedule_seed(), 10u);
}

TEST(Pipeline, StandardFullCompositionRunsAllThreeStages) {
  Pipeline pipe = Pipeline::standard(make_ctx(shapegen::swiss_cheese(5, 2, 4), 8),
                                     {.use_boundary_oracle = false, .reconnect = true});
  ASSERT_EQ(pipe.stages().size(), 3u);
  EXPECT_EQ(pipe.stages()[0]->kind(), StageKind::Obd);
  EXPECT_EQ(pipe.stages()[1]->kind(), StageKind::Dle);
  EXPECT_EQ(pipe.stages()[2]->kind(), StageKind::Collect);

  const PipelineOutcome out = pipe.run();
  EXPECT_TRUE(out.completed);
  EXPECT_NE(out.leader, amoebot::kNoParticle);
  for (const StageReport& s : out.stages) {
    EXPECT_EQ(s.status, StageStatus::Succeeded) << s.name;
    EXPECT_GT(s.metrics.rounds, 0) << s.name;
  }
  EXPECT_EQ(out.total_rounds(), out.stages[0].metrics.rounds +
                                    out.stages[1].metrics.rounds +
                                    out.stages[2].metrics.rounds);
  EXPECT_GT(out.stage(StageKind::Dle)->metrics.activations, 0);
  const auto& sys = pipe.context().system();
  EXPECT_EQ(sys.component_count(), 1);
  EXPECT_TRUE(sys.all_contracted());
}

TEST(Pipeline, MatchesElectLeaderWrapperExactly) {
  const grid::Shape shape = shapegen::swiss_cheese(5, 2, 4);
  const core::PipelineOptions opts{.use_boundary_oracle = false, .seed = 8};
  Rng rng(8);
  auto legacy_sys = core::Dle::make_system(shape, rng);
  const core::PipelineResult legacy = core::elect_leader(legacy_sys, opts);

  Pipeline pipe = Pipeline::standard(make_ctx(shape, 8),
                                     {.use_boundary_oracle = false, .reconnect = true});
  const PipelineOutcome out = pipe.run();

  ASSERT_TRUE(legacy.completed);
  EXPECT_TRUE(out.completed);
  EXPECT_EQ(out.stage(StageKind::Obd)->metrics.rounds, legacy.obd_rounds);
  EXPECT_EQ(out.stage(StageKind::Dle)->metrics.rounds, legacy.dle_rounds);
  EXPECT_EQ(out.stage(StageKind::Dle)->metrics.activations, legacy.dle_activations);
  EXPECT_EQ(out.stage(StageKind::Collect)->metrics.rounds, legacy.collect_rounds);
  EXPECT_EQ(out.leader, legacy.leader);
  EXPECT_EQ(out.moves, legacy.moves);
  EXPECT_EQ(out.peak_occupancy_cells, legacy.peak_occupancy_cells);
  EXPECT_TRUE(same_bodies(pipe.context().system(), legacy_sys));
}

TEST(Pipeline, LegacySplitPolicyReproducesSeedDleCollectConvention) {
  const grid::Shape shape = shapegen::random_blob(150, 31);
  // The seed repo's DleCollect convention, spelled out by hand: system from
  // Rng(seed), scheduler from seed + 1.
  Rng rng(13);
  auto sys = core::Dle::make_system(shape, rng);
  core::Dle dle;
  const amoebot::RunResult rres = amoebot::run(sys, dle, {Order::RandomPerm, 14, 8'000'000});
  ASSERT_TRUE(rres.completed);

  RunContext ctx = make_ctx(shape, 13);
  ctx.seeds = SeedPolicy::legacy_split(13);
  Pipeline pipe = Pipeline::standard(std::move(ctx),
                                     {.use_boundary_oracle = true, .reconnect = false});
  const PipelineOutcome out = pipe.run();
  EXPECT_EQ(out.stage(StageKind::Dle)->metrics.rounds, rres.rounds);
  EXPECT_EQ(out.stage(StageKind::Dle)->metrics.activations, rres.activations);
  EXPECT_TRUE(same_bodies(pipe.context().system(), sys));
}

TEST(Pipeline, OperatesInPlaceOnAnExternalSystem) {
  const grid::Shape shape = shapegen::hexagon(4);
  Rng rng(5);
  auto sys = core::Dle::make_system(shape, rng);
  RunContext ctx = make_ctx(shape, 5);
  ctx.sys = &sys;
  Pipeline pipe = Pipeline::standard(std::move(ctx),
                                     {.use_boundary_oracle = true, .reconnect = false});
  const PipelineOutcome out = pipe.run();
  EXPECT_TRUE(out.completed);
  // The caller's system was the one mutated and holds the unique leader.
  EXPECT_EQ(core::election_outcome(sys).leaders, 1);
  EXPECT_EQ(core::election_outcome(sys).leader, out.leader);
}

TEST(Pipeline, ObserverFiresPerStepAndSeesStagesInOrder) {
  RunContext ctx = make_ctx(shapegen::swiss_cheese(4, 1, 3), 8);
  std::vector<std::string> stage_sequence;
  long fires = 0;
  ctx.on_round = [&](const Stage& stage, const RunContext& c) {
    ++fires;
    // The observer sees the live system mid-run.
    EXPECT_GT(c.system().particle_count(), 0);
    if (stage_sequence.empty() || stage_sequence.back() != stage.name()) {
      stage_sequence.emplace_back(stage.name());
    }
  };
  Pipeline pipe = Pipeline::standard(std::move(ctx),
                                     {.use_boundary_oracle = false, .reconnect = true});
  const PipelineOutcome out = pipe.run();
  ASSERT_TRUE(out.completed);
  EXPECT_EQ(stage_sequence, (std::vector<std::string>{"obd", "dle", "collect"}));
  // One fire per pipeline step; stepping includes each stage's terminal
  // completion check, so fires >= the sum of executed rounds.
  EXPECT_GE(fires, out.total_rounds());
  EXPECT_LE(fires, out.total_rounds() + static_cast<long>(out.stages.size()));
}

TEST(Pipeline, StepRoundDrivesTheRunIncrementally) {
  Pipeline pipe = Pipeline::standard(make_ctx(shapegen::hexagon(3), 5),
                                     {.use_boundary_oracle = true, .reconnect = false});
  pipe.init();
  long steps = 0;
  while (!pipe.step_round()) ++steps;
  EXPECT_GT(steps, 0);
  EXPECT_TRUE(pipe.done());
  EXPECT_TRUE(pipe.outcome().completed);
}

TEST(Pipeline, FailedStageStopsThePipeline) {
  // A one-round budget starves OBD; DLE and Collect must never start.
  RunContext ctx = make_ctx(shapegen::swiss_cheese(4, 1, 3), 8);
  ctx.max_rounds = 1;
  Pipeline pipe = Pipeline::standard(std::move(ctx),
                                     {.use_boundary_oracle = false, .reconnect = true});
  const PipelineOutcome out = pipe.run();
  EXPECT_FALSE(out.completed);
  EXPECT_EQ(out.stages[0].status, StageStatus::Failed);
  EXPECT_EQ(out.stages[1].status, StageStatus::Pending);
  EXPECT_EQ(out.stages[2].status, StageStatus::Pending);
}

TEST(Pipeline, BaselineStagesMatchTheFreeFunctions) {
  const grid::Shape shape = shapegen::hexagon(5);

  RunContext ctx_e = make_ctx(shape, 3);
  Pipeline erosion(std::move(ctx_e));
  erosion.add(std::make_unique<ErosionStage>());
  const PipelineOutcome eout = erosion.run();
  const auto eref = baselines::sequential_erosion(shape);
  EXPECT_TRUE(eout.completed);
  EXPECT_EQ(eout.stages[0].metrics.rounds, eref.rounds);
  // Baseline-only pipelines never build a particle system.
  EXPECT_EQ(erosion.context().sys, nullptr);

  RunContext ctx_c = make_ctx(shape, 3);
  Pipeline contest(std::move(ctx_c));
  contest.add(std::make_unique<ContestStage>());
  const PipelineOutcome cout_ = contest.run();
  const auto cref = baselines::randomized_boundary_contest(shape, 3);
  EXPECT_TRUE(cout_.completed);
  EXPECT_EQ(cout_.stages[0].metrics.rounds, cref.rounds);
}

TEST(Pipeline, ThreadCountDoesNotChangeTheOutcome) {
  const grid::Shape shape = shapegen::random_blob(200, 21);
  Pipeline seq = Pipeline::standard(make_ctx(shape, 9),
                                    {.use_boundary_oracle = true, .reconnect = true});
  const PipelineOutcome sout = seq.run();

  RunContext ctx = make_ctx(shape, 9);
  ctx.threads = 2;
  Pipeline par = Pipeline::standard(std::move(ctx),
                                    {.use_boundary_oracle = true, .reconnect = true});
  const PipelineOutcome pout = par.run();

  ASSERT_TRUE(sout.completed);
  EXPECT_TRUE(pout.completed);
  EXPECT_EQ(pout.leader, sout.leader);
  EXPECT_EQ(pout.moves, sout.moves);
  EXPECT_EQ(pout.peak_occupancy_cells, sout.peak_occupancy_cells);
  for (std::size_t i = 0; i < sout.stages.size(); ++i) {
    EXPECT_EQ(pout.stages[i].metrics.rounds, sout.stages[i].metrics.rounds);
    EXPECT_EQ(pout.stages[i].metrics.activations, sout.stages[i].metrics.activations);
  }
  EXPECT_EQ(bodies_of(par.context().system()).size(),
            bodies_of(seq.context().system()).size());
  EXPECT_TRUE(same_bodies(par.context().system(), seq.context().system()));
}

TEST(Pipeline, ActivationHookSeesEveryDleActivation) {
  RunContext ctx = make_ctx(shapegen::hexagon(4), 7);
  long long hook_calls = 0;
  ctx.activation_hook = [&](System<DleState>&, amoebot::ParticleId) { ++hook_calls; };
  Pipeline pipe = Pipeline::standard(std::move(ctx),
                                     {.use_boundary_oracle = true, .reconnect = false});
  const PipelineOutcome out = pipe.run();
  ASSERT_TRUE(out.completed);
  EXPECT_EQ(hook_calls, out.stage(StageKind::Dle)->metrics.activations);
}

TEST(Pipeline, ActivationHookRejectsParallelEngines) {
  RunContext ctx = make_ctx(shapegen::hexagon(3), 7);
  ctx.threads = 2;
  ctx.activation_hook = [](System<DleState>&, amoebot::ParticleId) {};
  Pipeline pipe = Pipeline::standard(std::move(ctx),
                                     {.use_boundary_oracle = true, .reconnect = false});
  EXPECT_THROW(pipe.run(), CheckError);
}

TEST(Pipeline, CollectWithoutLeaderFailsLoudly) {
  RunContext ctx = make_ctx(shapegen::hexagon(3), 7);
  Pipeline pipe(std::move(ctx));
  pipe.add(std::make_unique<CollectStage>());
  EXPECT_THROW(pipe.run(), CheckError);
}

}  // namespace
}  // namespace pm::pipeline
