// pipeline_vs_legacy: the API-redesign differential test.
//
// `legacy_run_scenario` below is a self-contained copy of the scenario
// runner as it existed before the pipeline layer: the hand-wired
// elect_leader glue (OBD -> copy boundary flags -> Engine-driven DLE ->
// Collect), the bespoke per-Algo switch, and both of the seed repo's seed
// conventions. The tests assert that run_scenario — now a thin mapping over
// pipeline::Pipeline — produces bit-for-bit identical Results (wall-clock
// fields excluded) for every spec of every registered suite, across
// scheduler orders, occupancy modes, and thread counts, and that the
// sharded run_suite fan-out (--jobs) changes nothing.
#include "scenario/scenario.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "baselines/baselines.h"
#include "core/collect/collect.h"
#include "core/dle/dle.h"
#include "core/le/le.h"
#include "core/obd/obd.h"
#include "exec/parallel_engine.h"
#include "grid/metrics.h"
#include "zoo/zoo.h"
#include "util/timing.h"

namespace pm::scenario {
namespace {

using amoebot::OccupancyMode;
using amoebot::Order;
using amoebot::ParticleId;
using core::Dle;
using core::DleState;

struct LegacyComponentTracker {
  int* max_components;
  void operator()(amoebot::System<DleState>& sys, ParticleId) const {
    *max_components = std::max(*max_components, sys.component_count());
  }
};

// The pre-pipeline elect_leader, verbatim: OBD (skipped for n <= 1 or with
// the oracle), boundary-flag copy, Engine/ParallelEngine-driven DLE,
// unique-leader check, Collect.
core::PipelineResult legacy_elect_leader(amoebot::System<DleState>& sys,
                                         const core::PipelineOptions& opts) {
  core::PipelineResult res;
  const long long moves0 = sys.moves();
  auto finalize = [&](core::PipelineResult& r) -> core::PipelineResult& {
    r.moves = sys.moves() - moves0;
    r.peak_occupancy_cells = sys.peak_occupancy_cells();
    return r;
  };

  if (!opts.use_boundary_oracle && sys.particle_count() > 1) {
    const auto t0 = WallClock::now();
    core::ObdRun obd(sys);
    const core::ObdRun::Result ores = obd.run(opts.max_rounds);
    res.obd_rounds = ores.rounds;
    res.obd_ms = ms_since(t0);
    if (!ores.completed) return finalize(res);
    for (ParticleId p = 0; p < sys.particle_count(); ++p) {
      DleState& st = sys.state(p);
      st.outer = obd.outer_ports(p);
      for (int i = 0; i < 6; ++i) {
        st.eligible[static_cast<std::size_t>(i)] = !st.outer[static_cast<std::size_t>(i)];
      }
    }
  }

  Dle dle(Dle::Options{.connected_pull = opts.connected_pull});
  const amoebot::RunResult dres =
      opts.threads > 0
          ? exec::run_parallel(sys, dle,
                               {opts.order, opts.seed, opts.max_rounds, opts.threads})
          : amoebot::run(sys, dle, {opts.order, opts.seed, opts.max_rounds});
  res.dle_rounds = dres.rounds;
  res.dle_ms = dres.wall_ms;
  res.dle_activations = dres.activations;
  if (!dres.completed) return finalize(res);
  const core::ElectionOutcome outcome = core::election_outcome(sys);
  if (outcome.leaders != 1) return finalize(res);
  res.leader = outcome.leader;

  if (opts.reconnect && !opts.connected_pull) {
    const auto t0 = WallClock::now();
    core::CollectRun collect(sys, outcome.leader);
    const core::CollectRun::Result cres = collect.run(opts.max_rounds);
    res.collect_rounds = cres.rounds;
    res.collect_ms = ms_since(t0);
    if (!cres.completed) return finalize(res);
  }
  res.completed = true;
  return finalize(res);
}

// The pre-pipeline run_scenario switch, verbatim (minus the wall-clock
// bookkeeping, which the comparison excludes anyway).
Result legacy_run_scenario(const Spec& spec) {
  Result res;
  res.spec = spec;

  const grid::Shape shape = build_shape(spec);
  const auto m = grid::compute_metrics(shape);
  res.n = m.n;
  res.holes = m.holes;
  res.d = m.d;
  res.d_area = m.d_area;
  res.d_grid = m.d_grid;
  res.l_out = m.l_out;

  switch (spec.algo) {
    case Algo::ObdOnly: {
      Rng rng(spec.seed);
      auto sys = amoebot::System<DleState>::from_shape(shape, rng, spec.occupancy);
      core::ObdRun obd(sys);
      const auto ores = obd.run(spec.max_rounds);
      res.obd_rounds = ores.rounds;
      res.completed = ores.completed;
      res.moves = sys.moves();
      res.peak_occupancy_cells = sys.peak_occupancy_cells();
      break;
    }
    case Algo::DleOracle:
    case Algo::DlePull: {
      if (!spec.track_components) {
        const core::PipelineOptions popts{
            .use_boundary_oracle = true,
            .reconnect = false,
            .connected_pull = spec.algo == Algo::DlePull,
            .order = spec.order,
            .seed = spec.seed,
            .max_rounds = spec.max_rounds,
            .occupancy = spec.occupancy,
            .threads = spec.threads};
        Rng rng(spec.seed);
        auto sys = Dle::make_system(shape, rng, spec.occupancy);
        const auto pres = legacy_elect_leader(sys, popts);
        res.dle_rounds = pres.dle_rounds;
        res.activations = pres.dle_activations;
        res.completed = pres.completed;
        res.leaders = core::election_outcome(sys).leaders;
        res.moves = pres.moves;
        res.peak_occupancy_cells = pres.peak_occupancy_cells;
        break;
      }
      [[fallthrough]];
    }
    case Algo::DleCollect: {
      Rng rng(spec.seed);
      auto sys = Dle::make_system(shape, rng, spec.occupancy);
      Dle dle(Dle::Options{.connected_pull = spec.algo == Algo::DlePull});
      const amoebot::RunOptions ropts{spec.order, spec.seed + 1, spec.max_rounds};
      amoebot::RunResult rres;
      if (spec.track_components) {
        rres = amoebot::run(sys, dle, ropts, LegacyComponentTracker{&res.max_components});
      } else if (spec.threads > 0) {
        rres = exec::run_parallel(
            sys, dle, {ropts.order, ropts.seed, ropts.max_rounds, spec.threads});
      } else {
        rres = amoebot::run(sys, dle, ropts);
      }
      res.dle_rounds = rres.rounds;
      res.activations = rres.activations;
      const auto outcome = core::election_outcome(sys);
      res.leaders = outcome.leaders;
      res.completed = rres.completed && outcome.leaders == 1;
      if (spec.algo == Algo::DleCollect && rres.completed && outcome.leaders == 1) {
        const grid::Node l = sys.body(outcome.leader).head;
        res.ecc = grid::eccentricity_grid(l, shape.nodes());
        core::CollectRun collect(sys, outcome.leader);
        const auto cres = collect.run(spec.max_rounds);
        res.collect_rounds = cres.rounds;
        res.phases = cres.phases;
        res.completed = cres.completed;
      }
      res.moves = sys.moves();
      res.peak_occupancy_cells = sys.peak_occupancy_cells();
      break;
    }
    case Algo::PipelineOracle:
    case Algo::PipelineFull: {
      const core::PipelineOptions popts{
          .use_boundary_oracle = spec.algo == Algo::PipelineOracle,
          .reconnect = true,
          .connected_pull = false,
          .order = spec.order,
          .seed = spec.seed,
          .max_rounds = spec.max_rounds,
          .occupancy = spec.occupancy,
          .threads = spec.threads};
      Rng rng(spec.seed);
      auto sys = Dle::make_system(shape, rng, spec.occupancy);
      const auto pres = legacy_elect_leader(sys, popts);
      res.obd_rounds = pres.obd_rounds;
      res.dle_rounds = pres.dle_rounds;
      res.collect_rounds = pres.collect_rounds;
      res.completed = pres.completed;
      res.leaders = core::election_outcome(sys).leaders;
      res.activations = pres.dle_activations;
      res.moves = pres.moves;
      res.peak_occupancy_cells = pres.peak_occupancy_cells;
      break;
    }
    case Algo::BaselineErosion: {
      if (!shape.simply_connected()) {
        res.completed = false;
        break;
      }
      const auto bres = baselines::sequential_erosion(shape);
      res.baseline_rounds = bres.rounds;
      res.completed = bres.completed;
      break;
    }
    case Algo::BaselineContest: {
      const auto bres = baselines::randomized_boundary_contest(shape, spec.seed);
      res.baseline_rounds = bres.rounds;
      res.completed = bres.completed;
      break;
    }
    case Algo::ZooDaymude:
    case Algo::ZooEmekKutten: {
      // The algorithm zoo postdates the seed repo, so its "legacy" twin is
      // the raw engine loop with no pipeline around it: same system
      // construction, same unified seed, the stage adapter's budget rule
      // (an exhausted budget executes nothing).
      Rng rng(spec.seed);
      auto sys = Dle::make_system(shape, rng, spec.occupancy);
      if (sys.particle_count() <= 1) {
        sys.state(0).status = core::Status::Leader;
        sys.state(0).terminated = true;
        res.completed = true;
      } else if (spec.algo == Algo::ZooDaymude) {
        zoo::DaymudeLeRun run(sys, spec.seed);
        bool fin = false;
        while (!fin && run.rounds() < spec.max_rounds) fin = run.step_round();
        res.baseline_rounds = run.rounds();
        res.activations = run.activations();
        res.completed = fin;
      } else {
        zoo::EkLeRun run(sys);
        bool fin = false;
        while (!fin && run.rounds() < spec.max_rounds) fin = run.step_round();
        res.baseline_rounds = run.rounds();
        res.activations = run.activations();
        res.completed = fin;
      }
      res.leaders = core::election_outcome(sys).leaders;
      res.moves = sys.moves();
      res.peak_occupancy_cells = sys.peak_occupancy_cells();
      break;
    }
  }
  return res;
}

// Every deterministic Result field (wall-clock fields excluded).
void expect_equal(const Result& legacy, const Result& now, const std::string& label) {
  EXPECT_EQ(legacy.n, now.n) << label;
  EXPECT_EQ(legacy.holes, now.holes) << label;
  EXPECT_EQ(legacy.d, now.d) << label;
  EXPECT_EQ(legacy.d_area, now.d_area) << label;
  EXPECT_EQ(legacy.d_grid, now.d_grid) << label;
  EXPECT_EQ(legacy.l_out, now.l_out) << label;
  EXPECT_EQ(legacy.ecc, now.ecc) << label;
  EXPECT_EQ(legacy.obd_rounds, now.obd_rounds) << label;
  EXPECT_EQ(legacy.dle_rounds, now.dle_rounds) << label;
  EXPECT_EQ(legacy.collect_rounds, now.collect_rounds) << label;
  EXPECT_EQ(legacy.baseline_rounds, now.baseline_rounds) << label;
  EXPECT_EQ(legacy.phases, now.phases) << label;
  EXPECT_EQ(legacy.activations, now.activations) << label;
  EXPECT_EQ(legacy.moves, now.moves) << label;
  EXPECT_EQ(legacy.completed, now.completed) << label;
  EXPECT_EQ(legacy.leaders, now.leaders) << label;
  EXPECT_EQ(legacy.max_components, now.max_components) << label;
  EXPECT_EQ(legacy.peak_occupancy_cells, now.peak_occupancy_cells) << label;
}

void compare_suite(const Suite& suite) {
  for (const Spec& spec : suite.specs) {
    const Result legacy = legacy_run_scenario(spec);
    const Result now = run_scenario(spec);
    expect_equal(legacy, now,
                 suite.name + "/" + now.spec.name + " algo=" + algo_name(spec.algo));
  }
}

// In optimized builds (the tier-1 configuration) every registered suite is
// compared in full. Debug builds — where the Differential occupancy mode
// cross-checks each query and -O0 multiplies the cost — shrink the two
// heavy large-n sweeps to keep the suite runnable, without losing their
// spec structure (same algos, orders, thread ladder).
std::vector<Suite> suites_to_compare() {
  std::vector<Suite> suites;
  for (const std::string& name : suite_names()) {
    Suite suite = make_suite(name);
#ifndef NDEBUG
    if (name == "dle_large" || name == "parallel_scaling") {
      for (Spec& s : suite.specs) {
        if (s.family == "hexagon") s.p1 = 8;
        if (s.family == "blob") s.p1 = 300;
      }
    }
#endif
    suites.push_back(std::move(suite));
  }
  return suites;
}

TEST(PipelineVsLegacy, AllRegistrySuitesBitForBit) {
  for (const Suite& suite : suites_to_compare()) {
    compare_suite(suite);
  }
}

TEST(PipelineVsLegacy, OrdersOccupancyAndThreadsSweep) {
  for (const Algo algo :
       {Algo::DleOracle, Algo::DleCollect, Algo::PipelineFull, Algo::ObdOnly}) {
    for (const Order order : {Order::RoundRobin, Order::RandomPerm, Order::RandomStream}) {
      for (const OccupancyMode occ : {OccupancyMode::Dense, OccupancyMode::Hash}) {
        for (const int threads : {0, 2}) {
          if (threads > 0 && (algo == Algo::ObdOnly)) continue;
          Spec spec;
          spec.family = "cheese";
          spec.p1 = 5;
          spec.p2 = 2;
          spec.shape_seed = 4;
          spec.algo = algo;
          spec.order = order;
          spec.seed = 8;
          spec.occupancy = occ;
          spec.threads = threads;
          const Result legacy = legacy_run_scenario(spec);
          const Result now = run_scenario(spec);
          expect_equal(legacy, now,
                       std::string(algo_name(algo)) + "/" + amoebot::order_name(order) +
                           "/" + occupancy_name(occ) + "/t" + std::to_string(threads));
        }
      }
    }
  }
}

TEST(PipelineVsLegacy, ShardedSuiteExecutionChangesNothing) {
  const Suite suite = make_suite("table1");
  SuiteRunOptions serial_opts;
  serial_opts.jobs = 1;
  SuiteRunOptions sharded_opts;
  sharded_opts.jobs = 2;
  const std::vector<Result> serial = run_suite(suite, serial_opts);
  const std::vector<Result> sharded = run_suite(suite, sharded_opts);
  ASSERT_EQ(serial.size(), sharded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_equal(serial[i], sharded[i], "jobs row " + serial[i].spec.name);
    EXPECT_EQ(serial[i].spec.name, sharded[i].spec.name);
  }
}

}  // namespace
}  // namespace pm::scenario
