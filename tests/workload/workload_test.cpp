// The declarative workload API: codec round-trips, strict validation, and
// the registry-as-data differential proof.
//
// `legacy_*` below is a self-contained, verbatim copy of the C++ suite
// registry as it existed before the workload layer (scenario.cpp's
// hard-coded builders). The differential tests assert that the data-driven
// registry — both the in-binary workload::registry_suite() path and the
// committed workloads/*.json files — resolves to exactly the same Spec
// lists, and (for a representative suite) produces bit-identical Results.
// Spec-level identity extends the Result-level proof to every suite:
// run_scenario is a deterministic function of the Spec (pinned by
// ScenarioRunner.IsDeterministicUpToWallClock and pipeline_vs_legacy), so
// equal spec lists imply equal results.
#include "workload/workload.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "scenario/names.h"
#include "scenario/scenario.h"

#ifndef PM_WORKLOADS_DIR
#define PM_WORKLOADS_DIR "workloads"
#endif

namespace pm::workload {
namespace {

using amoebot::Order;
using scenario::Algo;
using scenario::Spec;
using scenario::Suite;

// --- the pre-workload C++ registry, verbatim -------------------------------

Spec legacy_shape_spec(std::string family, int p1, int p2, std::uint64_t shape_seed) {
  Spec s;
  s.family = std::move(family);
  s.p1 = p1;
  s.p2 = p2;
  s.shape_seed = shape_seed;
  return s;
}

Suite legacy_table1() {
  Suite suite{"table1",
              "Table 1 reproduction: every algorithm class on a common shape sweep",
              {}};
  const std::vector<Spec> shapes = {
      legacy_shape_spec("hexagon", 8, 0, 0),   legacy_shape_spec("annulus", 8, 5, 0),
      legacy_shape_spec("cheese", 8, 5, 7),    legacy_shape_spec("blob", 400, 0, 11),
      legacy_shape_spec("comb", 8, 8, 0),
  };
  const std::vector<std::pair<Algo, std::uint64_t>> algos = {
      {Algo::BaselineContest, 3}, {Algo::BaselineErosion, 0}, {Algo::DleOracle, 5},
      {Algo::PipelineOracle, 5},  {Algo::PipelineFull, 5},
  };
  for (const auto& sh : shapes) {
    for (const auto& [algo, seed] : algos) {
      Spec s = sh;
      s.algo = algo;
      s.seed = seed;
      suite.specs.push_back(std::move(s));
    }
  }
  return suite;
}

Suite legacy_obd_scaling() {
  Suite suite{"obd_scaling", "Theorem 41: OBD rounds vs L_out + D", {}};
  auto add = [&](Spec s) {
    s.algo = Algo::ObdOnly;
    s.seed = 17;
    suite.specs.push_back(std::move(s));
  };
  for (const int r : {3, 5, 8, 12, 16}) add(legacy_shape_spec("hexagon", r, 0, 0));
  for (const int n : {100, 200, 400, 800}) add(legacy_shape_spec("blob", n, 0, 41));
  for (const int r : {5, 8, 11}) add(legacy_shape_spec("cheese", r, 3, 9));
  return suite;
}

Suite legacy_dle_scaling() {
  Suite suite{"dle_scaling",
              "Theorem 18: DLE rounds vs D_A (including D_A < D annuli)", {}};
  auto add = [&](Spec s) {
    s.algo = Algo::DleOracle;
    s.seed = 9;
    suite.specs.push_back(std::move(s));
  };
  for (const int r : {4, 8, 12, 16, 24, 32}) add(legacy_shape_spec("hexagon", r, 0, 0));
  for (const int r : {8, 12, 16, 24}) add(legacy_shape_spec("annulus", r, r - 3, 0));
  for (const int n : {200, 400, 800, 1600}) add(legacy_shape_spec("blob", n, 0, 21));
  for (const int r : {6, 10, 14}) add(legacy_shape_spec("cheese", r, r / 2, 5));
  return suite;
}

Suite legacy_collect_scaling() {
  Suite suite{"collect_scaling",
              "Theorem 23: Collect rounds vs leader eccentricity, phases ~ log", {}};
  auto add = [&](Spec s) {
    s.algo = Algo::DleCollect;
    s.seed = 13;
    suite.specs.push_back(std::move(s));
  };
  for (const int n : {100, 200, 400, 800, 1600, 3200}) {
    add(legacy_shape_spec("blob", n, 0, 31));
  }
  for (const int r : {6, 10, 14, 18}) add(legacy_shape_spec("annulus", r, r - 1, 0));
  return suite;
}

Suite legacy_ablation() {
  Suite suite{"ablation_disconnection",
              "Disconnection ablation: pull variant vs DLE; erosion class vs DLE", {}};
  for (const int r : {6, 9, 12, 15}) {
    for (const Algo algo : {Algo::DleOracle, Algo::DlePull}) {
      Spec s = legacy_shape_spec("annulus", r, r - 1, 0);
      s.algo = algo;
      s.seed = 23;
      s.track_components = true;
      suite.specs.push_back(std::move(s));
    }
  }
  for (const int r : {4, 8, 12, 16, 20}) {
    for (const Algo algo : {Algo::DleOracle, Algo::BaselineErosion}) {
      Spec s = legacy_shape_spec("hexagon", r, 0, 0);
      s.algo = algo;
      s.seed = 23;
      s.track_components = algo == Algo::DleOracle;
      suite.specs.push_back(std::move(s));
    }
  }
  return suite;
}

Suite legacy_dle_large() {
  Suite suite{"dle_large",
              "Large-n stress sweep (n >= 20k): dense-occupancy engine scaling", {}};
  auto add = [&](Spec s) {
    s.algo = Algo::DleOracle;
    s.seed = 9;
    suite.specs.push_back(std::move(s));
  };
  add(legacy_shape_spec("hexagon", 82, 0, 0));
  add(legacy_shape_spec("blob", 20000, 0, 21));
  add(legacy_shape_spec("blob", 40000, 0, 21));
  return suite;
}

Suite legacy_parallel_scaling() {
  Suite suite{"parallel_scaling",
              "ParallelEngine thread ladder on the dle_large workload (n = 20,419)", {}};
  for (const int t : {0, 1, 2, 4, 8}) {
    Spec s = legacy_shape_spec("hexagon", 82, 0, 0);
    s.algo = Algo::DleOracle;
    s.seed = 9;
    s.threads = t;
    suite.specs.push_back(std::move(s));
  }
  return suite;
}

Suite legacy_parallel_smoke() {
  Suite suite{"parallel_smoke", "ParallelEngine smoke ladder at small n (CI-sized)", {}};
  for (const int t : {0, 2, 4}) {
    Spec s = legacy_shape_spec("hexagon", 10, 0, 0);
    s.algo = Algo::DleOracle;
    s.seed = 9;
    s.threads = t;
    suite.specs.push_back(std::move(s));
  }
  for (const int t : {0, 4}) {
    Spec s = legacy_shape_spec("blob", 400, 0, 21);
    s.algo = Algo::DleOracle;
    s.seed = 9;
    s.threads = t;
    suite.specs.push_back(std::move(s));
  }
  return suite;
}

Suite legacy_dle_adversarial() {
  Suite suite{"dle_adversarial",
              "Adversarial sweep: mixed shapegen populations x seeds x orders", {}};
  for (const std::uint64_t seed : {101, 202, 303}) {
    const std::vector<Spec> shapes = {
        legacy_shape_spec("cheese", 7, 4, seed),
        legacy_shape_spec("blob", 400, 0, seed + 1),
        legacy_shape_spec("spiral", 6, 2, 0),
        legacy_shape_spec("comb", 10, 6, 0),
        legacy_shape_spec("annulus", 10, 7, 0),
    };
    for (const auto& sh : shapes) {
      Spec s = sh;
      s.algo = Algo::DleOracle;
      s.seed = seed;
      suite.specs.push_back(std::move(s));
    }
  }
  for (const Spec& sh :
       {legacy_shape_spec("cheese", 6, 3, 9), legacy_shape_spec("blob", 300, 0, 17),
        legacy_shape_spec("comb", 8, 5, 0)}) {
    Spec s = sh;
    s.algo = Algo::DleOracle;
    s.order = Order::RandomStream;
    s.seed = 404;
    suite.specs.push_back(std::move(s));
  }
  for (const Spec& sh :
       {legacy_shape_spec("cheese", 5, 2, 4), legacy_shape_spec("blob", 300, 0, 7)}) {
    Spec s = sh;
    s.algo = Algo::PipelineFull;
    s.seed = 8;
    suite.specs.push_back(std::move(s));
  }
  for (const Spec& sh :
       {legacy_shape_spec("blob", 250, 0, 31), legacy_shape_spec("annulus", 8, 7, 0)}) {
    Spec s = sh;
    s.algo = Algo::DleCollect;
    s.seed = 13;
    suite.specs.push_back(std::move(s));
  }
  return suite;
}

Suite legacy_audit_fuzz() {
  Suite suite{"audit_fuzz",
              "Audit fuzz: shapegen families x seeds x fault plans (kill/resume)", {}};
  std::uint64_t fault = 0xF00D;
  int i = 0;
  for (const std::uint64_t seed : {11, 47, 83}) {
    const std::vector<Spec> shapes = {
        legacy_shape_spec("cheese", 6, 3, seed),
        legacy_shape_spec("blob", 300, 0, seed),
        legacy_shape_spec("spiral", 5, 2, 0),
        legacy_shape_spec("comb", 8, 5, 0),
    };
    for (const auto& sh : shapes) {
      Spec s = sh;
      s.algo = Algo::DleOracle;
      s.order = (i++ % 2 == 0) ? Order::RandomPerm : Order::RandomStream;
      s.seed = seed;
      s.fault_seed = ++fault;
      suite.specs.push_back(std::move(s));
    }
  }
  for (const Spec& sh :
       {legacy_shape_spec("cheese", 5, 2, 4), legacy_shape_spec("comb", 6, 4, 0)}) {
    Spec s = sh;
    s.algo = Algo::PipelineFull;
    s.seed = 8;
    s.fault_seed = ++fault;
    suite.specs.push_back(std::move(s));
  }
  for (const Spec& sh :
       {legacy_shape_spec("blob", 200, 0, 31), legacy_shape_spec("annulus", 8, 6, 0)}) {
    Spec s = sh;
    s.algo = Algo::DleCollect;
    s.seed = 13;
    s.fault_seed = ++fault;
    suite.specs.push_back(std::move(s));
  }
  return suite;
}

// Not a pre-workload suite (le_zoo postdates the data registry): a
// hand-expanded twin with every derived expression spelled as a literal, so
// the differential below independently pins the expression evaluation.
Suite legacy_le_zoo() {
  Suite suite{"le_zoo",
              "Algorithm zoo: paper pipeline vs competitor LE engines on the "
              "adversarial shape mix",
              {}};
  const std::vector<Algo> algos = {Algo::DleOracle, Algo::PipelineFull,
                                   Algo::BaselineContest, Algo::ZooDaymude,
                                   Algo::ZooEmekKutten};
  for (const std::uint64_t seed : {101, 202, 303}) {
    const std::vector<Spec> shapes = {
        legacy_shape_spec("cheese", 7, 4, seed),
        legacy_shape_spec("blob", 400, 0, seed + 1),
        legacy_shape_spec("spiral", 6, 2, 0),
        legacy_shape_spec("comb", 10, 6, 0),
        legacy_shape_spec("annulus", 10, 10 - 3, 0),
    };
    for (const auto& sh : shapes) {
      for (const Algo algo : algos) {
        Spec s = sh;
        s.algo = algo;
        s.seed = seed;
        suite.specs.push_back(std::move(s));
      }
    }
  }
  for (const Spec& sh :
       {legacy_shape_spec("cheese", 6, 3, 9), legacy_shape_spec("blob", 300, 0, 17),
        legacy_shape_spec("comb", 8, 5, 0)}) {
    for (const Algo algo : algos) {
      Spec s = sh;
      s.algo = algo;
      s.order = Order::RandomStream;
      s.seed = 404;
      suite.specs.push_back(std::move(s));
    }
  }
  return suite;
}

Suite legacy_suite(const std::string& name) {
  if (name == "table1") return legacy_table1();
  if (name == "obd_scaling") return legacy_obd_scaling();
  if (name == "dle_scaling") return legacy_dle_scaling();
  if (name == "collect_scaling") return legacy_collect_scaling();
  if (name == "ablation_disconnection") return legacy_ablation();
  if (name == "dle_large") return legacy_dle_large();
  if (name == "parallel_scaling") return legacy_parallel_scaling();
  if (name == "parallel_smoke") return legacy_parallel_smoke();
  if (name == "dle_adversarial") return legacy_dle_adversarial();
  if (name == "audit_fuzz") return legacy_audit_fuzz();
  if (name == "le_zoo") return legacy_le_zoo();
  ADD_FAILURE() << "no legacy suite " << name;
  return {};
}

std::string read_workload_file(const std::string& name) {
  const std::string path = std::string(PM_WORKLOADS_DIR) + "/" + name + ".json";
  std::ifstream in(path);
  EXPECT_TRUE(in) << "cannot read committed workload file " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// --- differential: data registry == legacy C++ registry --------------------

TEST(WorkloadRegistry, EverySuiteResolvesToTheLegacySpecList) {
  const auto names = registry_names();
  ASSERT_EQ(names.size(), 11u);
  for (const auto& name : names) {
    const Suite legacy = legacy_suite(name);
    const Suite data = to_scenario_suite(registry_suite(name));
    EXPECT_EQ(data.name, legacy.name);
    EXPECT_EQ(data.description, legacy.description);
    ASSERT_EQ(data.specs.size(), legacy.specs.size()) << name;
    for (std::size_t i = 0; i < legacy.specs.size(); ++i) {
      EXPECT_EQ(data.specs[i], legacy.specs[i]) << name << " spec " << i << ": "
                                                << spec_json(data.specs[i]) << " vs "
                                                << spec_json(legacy.specs[i]);
    }
  }
}

TEST(WorkloadRegistry, CommittedFilesResolveToTheLegacySpecList) {
  for (const auto& name : registry_names()) {
    const std::string text = read_workload_file(name);
    ASSERT_FALSE(text.empty()) << name;
    const WorkloadSuite parsed = parse_suite(text, name + ".json");
    const Suite from_file = to_scenario_suite(parsed);
    const Suite legacy = legacy_suite(name);
    EXPECT_EQ(from_file.name, legacy.name);
    EXPECT_EQ(from_file.specs, legacy.specs) << name;
    // The committed file is canonical emitter output, byte for byte — a
    // hand edit that survives parsing still shows up as a diff here.
    EXPECT_EQ(to_json(parsed), text) << name << ".json is not canonical";
  }
}

// Result-level differential on representative suites: the registry path and
// the committed file produce bit-identical Results (wall clocks excepted).
// parallel_smoke covers the threads axis; table1 covers every algo class.
TEST(WorkloadRegistry, CommittedFileResultsMatchRegistryResults) {
  for (const char* name : {"table1", "parallel_smoke"}) {
    const Suite registry = scenario::make_suite(name);
    const Suite from_file =
        to_scenario_suite(parse_suite(read_workload_file(name), name));
    const auto a = scenario::run_suite(registry);
    const auto b = scenario::run_suite(from_file);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(scenario::result_json_line(a[i], /*with_wall=*/false),
                scenario::result_json_line(b[i], /*with_wall=*/false))
          << name << " row " << i;
    }
  }
}

// --- round-trip property ---------------------------------------------------

TEST(WorkloadCodec, EveryRegistrySuiteRoundTripsByteIdentically) {
  for (const auto& name : registry_names()) {
    const WorkloadSuite suite = registry_suite(name);
    const std::string emitted = to_json(suite);
    const WorkloadSuite reparsed = parse_suite(emitted, name);
    EXPECT_EQ(reparsed, suite) << name << ": parse(emit(x)) != x";
    EXPECT_EQ(to_json(reparsed), emitted) << name << ": emit not canonical";
    EXPECT_EQ(resolve(reparsed), resolve(suite)) << name;
  }
}

TEST(WorkloadCodec, SpecJsonCoversEveryFieldAndHashTracksThem) {
  Spec spec;
  spec.family = "hexagon";
  spec.p1 = 3;
  const std::uint64_t base = content_hash({spec});
  EXPECT_EQ(content_hash({spec}), base);  // stable
  // Flipping any field must move the hash: silent drift is the failure
  // mode the BENCH stamp exists to catch.
  for (const auto& mutate : std::vector<void (*)(Spec&)>{
           [](Spec& s) { s.name = "x"; }, [](Spec& s) { s.family = "line"; },
           [](Spec& s) { s.p1 = 4; }, [](Spec& s) { s.p2 = 1; },
           [](Spec& s) { s.shape_seed = 7; },
           [](Spec& s) { s.algo = Algo::PipelineFull; },
           [](Spec& s) { s.order = Order::RoundRobin; }, [](Spec& s) { s.seed = 2; },
           [](Spec& s) { s.max_rounds = 10; },
           [](Spec& s) { s.occupancy = amoebot::OccupancyMode::Hash; },
           [](Spec& s) { s.track_components = true; }, [](Spec& s) { s.threads = 2; },
           [](Spec& s) { s.fault_seed = 5; }}) {
    Spec changed = spec;
    mutate(changed);
    EXPECT_NE(content_hash({changed}), base) << spec_json(changed);
  }
}

// --- strict validation -----------------------------------------------------

std::string minimal_suite(const std::string& spec_fields) {
  return "{\"workload_version\": 1, \"suite\": \"t\", \"items\": [{\"spec\": {" +
         spec_fields + "}}]}";
}

void expect_rejected(const std::string& text, const std::string& needle) {
  try {
    const WorkloadSuite suite = parse_suite(text, "test");
    (void)resolve(suite);
    FAIL() << "accepted: " << text;
  } catch (const WorkloadError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "error '" << e.what() << "' does not mention '" << needle << "'";
  }
}

TEST(WorkloadValidation, RejectsMalformedSpecs) {
  // Unknown family, with the known list spelled out.
  expect_rejected(minimal_suite("\"family\": \"dodecahedron\", \"p1\": 3"),
                  "unknown shape family");
  expect_rejected(minimal_suite("\"family\": \"dodecahedron\", \"p1\": 3"), "hexagon");
  // Negative size.
  expect_rejected(minimal_suite("\"family\": \"hexagon\", \"p1\": -5"), "outside");
  // Bad enum values.
  expect_rejected(minimal_suite("\"family\": \"hexagon\", \"p1\": 3, \"algo\": \"quantum\""),
                  "unknown algo");
  expect_rejected(
      minimal_suite("\"family\": \"hexagon\", \"p1\": 3, \"order\": \"sorted\""),
      "unknown order");
  expect_rejected(
      minimal_suite("\"family\": \"hexagon\", \"p1\": 3, \"occupancy\": \"sparse\""),
      "unknown occupancy");
  // Wrong types and floats (a string that is not a valid derived
  // expression fails through the expression parser).
  expect_rejected(minimal_suite("\"family\": \"hexagon\", \"p1\": \"three\""),
                  "unknown field 'three'");
  expect_rejected(minimal_suite("\"family\": \"hexagon\", \"p1\": 3.5"),
                  "floating-point");
  // Unknown spec field.
  expect_rejected(minimal_suite("\"family\": \"hexagon\", \"p1\": 3, \"ordr\": \"x\""),
                  "unknown spec field");
  // Missing family entirely.
  expect_rejected(minimal_suite("\"p1\": 3"), "no shape family");
  // Per-family shapegen preconditions fail at load time, not mid-suite.
  expect_rejected(minimal_suite("\"family\": \"annulus\", \"p1\": 3, \"p2\": 9"),
                  "p2 < p1");
  expect_rejected(minimal_suite("\"family\": \"blob\", \"p1\": 0"), "p1 >= 1");
  expect_rejected(minimal_suite("\"family\": \"cheese\", \"p1\": 2"), "p1 >= 3");
  // Combination run_scenario would refuse.
  expect_rejected(
      minimal_suite("\"family\": \"hexagon\", \"p1\": 3, \"algo\": \"obd\", \"threads\": 2"),
      "never consults the Engine");
}

TEST(WorkloadValidation, RejectsMalformedDocuments) {
  // Trailing garbage after the top-level value.
  expect_rejected(minimal_suite("\"family\": \"hexagon\", \"p1\": 3") + " tail",
                  "trailing garbage");
  // Duplicate keys.
  expect_rejected(minimal_suite("\"p1\": 3, \"p1\": 4"), "duplicate key");
  // Unknown top-level key.
  expect_rejected("{\"workload_version\": 1, \"suite\": \"t\", \"items\": "
                  "[{\"spec\": {\"family\": \"line\", \"p1\": 3}}], \"junk\": 1}",
                  "unknown key");
  // Version gate.
  expect_rejected("{\"workload_version\": 99, \"suite\": \"t\", \"items\": "
                  "[{\"spec\": {\"family\": \"line\", \"p1\": 3}}]}",
                  "not supported");
  expect_rejected("{\"suite\": \"t\", \"items\": [{\"spec\": {\"family\": \"line\", "
                  "\"p1\": 3}}]}",
                  "missing \"workload_version\"");
  // Structural requirements.
  expect_rejected("{\"workload_version\": 1, \"items\": [{\"spec\": {\"family\": "
                  "\"line\", \"p1\": 3}}]}",
                  "missing \"suite\"");
  expect_rejected("{\"workload_version\": 1, \"suite\": \"t\"}", "missing \"items\"");
  expect_rejected("{\"workload_version\": 1, \"suite\": \"t\", \"items\": []}",
                  "no items");
  expect_rejected("{\"workload_version\": 1, \"suite\": \"t\", \"items\": "
                  "[{\"both\": {}}]}",
                  "{\"spec\"");
  // Dangling parameter-set reference, with the declared sets listed.
  expect_rejected("{\"workload_version\": 1, \"suite\": \"t\", \"params\": "
                  "{\"shapes\": [{\"family\": \"line\", \"p1\": 3}]}, \"items\": "
                  "[{\"sweep\": {\"axes\": [\"shpaes\"]}}]}",
                  "unknown parameter set");
  // Sweep with no axes.
  expect_rejected("{\"workload_version\": 1, \"suite\": \"t\", \"items\": "
                  "[{\"sweep\": {\"base\": {\"family\": \"line\", \"p1\": 3}}}]}",
                  "needs \"axes\"");
  // Suite names become BENCH_<name>.json paths — reject path-hostile ones
  // at load time instead of after the whole suite has run.
  expect_rejected("{\"workload_version\": 1, \"suite\": \"../evil\", \"items\": "
                  "[{\"spec\": {\"family\": \"line\", \"p1\": 3}}]}",
                  "A-Za-z0-9_-");
  // A hostile nesting bomb must be a clean error, not a stack overflow
  // (pm_serve's isolation contract).
  expect_rejected(std::string(200000, '[') + std::string(200000, ']'),
                  "nesting deeper");
}

TEST(WorkloadValidation, ParseErrorsCarryPosition) {
  try {
    (void)parse_suite("{\n  \"workload_version\": 1,\n  bad\n}", "doc");
    FAIL() << "accepted syntax error";
  } catch (const WorkloadError& e) {
    EXPECT_NE(std::string(e.what()).find("doc:3:"), std::string::npos) << e.what();
  }
}

TEST(WorkloadResolve, SweepOrderIsLastAxisFastest) {
  WorkloadSuite suite;
  suite.name = "t";
  Item item;
  item.kind = Item::Kind::Sweep;
  SpecPatch base;
  base.family = "hexagon";
  item.sweep.base = base;
  Sweep::Axis outer;
  for (const int p1 : {3, 4}) {
    SpecPatch p;
    p.p1 = p1;
    outer.patches.push_back(p);
  }
  Sweep::Axis inner;
  for (const std::uint64_t seed : {7, 8, 9}) {
    SpecPatch p;
    p.seed = seed;
    inner.patches.push_back(p);
  }
  item.sweep.axes = {outer, inner};
  suite.items.push_back(item);
  const auto specs = resolve(suite);
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_EQ(specs[0].p1, 3);
  EXPECT_EQ(specs[0].seed, 7u);
  EXPECT_EQ(specs[1].p1, 3);
  EXPECT_EQ(specs[1].seed, 8u);
  EXPECT_EQ(specs[3].p1, 4);
  EXPECT_EQ(specs[3].seed, 7u);
}

// --- derived sweep axes ----------------------------------------------------

TEST(WorkloadExpr, CanonicalRenderingNormalizesAndIsIdempotent) {
  for (const auto& [raw, canon] : std::vector<std::pair<const char*, const char*>>{
           {"p1-1", "p1 - 1"},
           {"  seed+ 1 ", "seed + 1"},
           {"(p1+2)*3", "(p1 + 2) * 3"},
           {"p1*(2+3)", "p1 * (2 + 3)"},
           {"p1 - (p2 - 1)", "p1 - (p2 - 1)"},
           {"p1 - p2 - 1", "p1 - p2 - 1"},
           {"((p1))", "p1"},
           {"- p1 + 1", "-p1 + 1"},
           {"2*max_rounds/4%7", "2 * max_rounds / 4 % 7"},
       }) {
    EXPECT_EQ(canonical_expr(raw, "t"), canon) << raw;
    EXPECT_EQ(canonical_expr(canon, "t"), canon) << "not idempotent: " << canon;
  }
}

TEST(WorkloadExpr, EvaluatesWithCxxPrecedenceAndTruncation) {
  const auto env = [](std::string_view f) -> long long {
    if (f == "p1") return 10;
    if (f == "seed") return 7;
    return 0;
  };
  EXPECT_EQ(eval_expr("p1 - 1", env, "t"), 9);
  EXPECT_EQ(eval_expr("seed + 2 * p1", env, "t"), 27);
  EXPECT_EQ(eval_expr("(seed + 2) * p1", env, "t"), 90);
  EXPECT_EQ(eval_expr("p1 / 3", env, "t"), 3);
  EXPECT_EQ(eval_expr("p1 % 3", env, "t"), 1);
  EXPECT_EQ(eval_expr("-p1 + 1", env, "t"), -9);
  EXPECT_THROW((void)eval_expr("p1 / (seed - 7)", env, "t"), WorkloadError);
  EXPECT_THROW((void)eval_expr("9223372036854775807 + 1", env, "t"), WorkloadError);
}

TEST(WorkloadExpr, RejectsBadExpressionsAtParseTime) {
  expect_rejected(minimal_suite("\"family\": \"hexagon\", \"p1\": \"p3 + 1\""),
                  "unknown field");
  expect_rejected(minimal_suite("\"family\": \"hexagon\", \"p1\": \"1 +\""),
                  "bad expression");
  expect_rejected(minimal_suite("\"family\": \"hexagon\", \"p1\": \"(1\""),
                  "missing ')'");
  // threads stays literal-only: it is readable from expressions but a
  // string value for it is a type error, not an expression.
  expect_rejected(
      minimal_suite("\"family\": \"hexagon\", \"p1\": 3, \"threads\": \"p1\""),
      "expected an integer");
}

TEST(WorkloadExpr, ResolvesAgainstLiteralFieldsAfterAllPatchesMerge) {
  const WorkloadSuite suite = parse_suite(
      "{\"workload_version\": 1, \"suite\": \"t\", \"items\": [{\"sweep\": {"
      "\"base\": {\"family\": \"annulus\", \"p2\": \"p1 - 1\", \"shape_seed\": "
      "\"seed * 2\"}, \"axes\": [[{\"p1\": 4}, {\"p1\": 9}], [{\"seed\": 5}, "
      "{\"seed\": 6}]]}}]}",
      "doc");
  const auto specs = resolve(suite);
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].p1, 4);
  EXPECT_EQ(specs[0].p2, 3);
  EXPECT_EQ(specs[0].shape_seed, 10u);
  EXPECT_EQ(specs[1].shape_seed, 12u);
  EXPECT_EQ(specs[3].p1, 9);
  EXPECT_EQ(specs[3].p2, 8);
  EXPECT_EQ(specs[3].shape_seed, 12u);
}

TEST(WorkloadExpr, LaterPatchesReplaceExpressionsAndViceVersa) {
  // The axis's literal p2 overrides the base's expression; the expression
  // overrides a literal default.
  const WorkloadSuite suite = parse_suite(
      "{\"workload_version\": 1, \"suite\": \"t\", \"defaults\": {\"p2\": 1}, "
      "\"items\": [{\"sweep\": {\"base\": {\"family\": \"annulus\", \"p1\": 6, "
      "\"p2\": \"p1 - 2\"}, \"axes\": [[{}, {\"p2\": 5}]]}}]}",
      "doc");
  const auto specs = resolve(suite);
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].p2, 4);  // defaults' literal 1 displaced by the expression
  EXPECT_EQ(specs[1].p2, 5);  // expression displaced by the axis literal
}

TEST(WorkloadExpr, RejectsDerivedReferencingDerivedAndOutOfRangeResults) {
  expect_rejected(minimal_suite("\"family\": \"annulus\", \"p1\": \"seed + 6\", "
                                "\"p2\": \"p1 - 1\", \"seed\": 1"),
                  "itself derived");
  expect_rejected(minimal_suite("\"family\": \"hexagon\", \"p1\": 3, "
                                "\"p2\": \"0 - 1\""),
                  "outside");
  expect_rejected(minimal_suite("\"family\": \"hexagon\", \"p1\": 3, "
                                "\"max_rounds\": \"p1 - 3\""),
                  "outside");
}

TEST(WorkloadExpr, ExpressionsRoundTripThroughTheCodec) {
  const std::string text =
      "{\"workload_version\": 1, \"suite\": \"t\", \"items\": [{\"spec\": "
      "{\"family\": \"annulus\", \"p1\": 8, \"p2\": \"p1-  1\"}}]}";
  const WorkloadSuite suite = parse_suite(text, "doc");
  const std::string emitted = to_json(suite);
  EXPECT_NE(emitted.find("\"p2\": \"p1 - 1\""), std::string::npos) << emitted;
  const WorkloadSuite reparsed = parse_suite(emitted, "doc2");
  EXPECT_EQ(reparsed, suite);
  EXPECT_EQ(to_json(reparsed), emitted);
  EXPECT_EQ(resolve(reparsed), resolve(suite));
  EXPECT_EQ(resolve(suite)[0].p2, 7);
}

}  // namespace
}  // namespace pm::workload
