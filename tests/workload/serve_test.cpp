// pm_serve's job loop: determinism across concurrency, per-job isolation,
// and the per-job RunHooks surface.
#include "workload/serve.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

namespace pm::workload {
namespace {

std::string run_stream(const std::string& jobs, const ServeOptions& opts,
                       ServeStats* stats_out = nullptr) {
  std::istringstream in(jobs);
  std::ostringstream out;
  const ServeStats stats = serve(in, out, opts);
  if (stats_out != nullptr) *stats_out = stats;
  return out.str();
}

// A >= 500-job stream mixing families, algos, envelopes, blank lines and
// deliberately broken rows — the acceptance workload for the determinism
// contract.
std::string big_stream(int jobs) {
  std::ostringstream os;
  for (int i = 0; i < jobs; ++i) {
    switch (i % 7) {
      case 0:
        os << "{\"family\": \"hexagon\", \"p1\": " << 2 + i % 3
           << ", \"algo\": \"dle_oracle\", \"seed\": " << 1 + i << "}\n";
        break;
      case 1:
        os << "{\"family\": \"line\", \"p1\": " << 5 + i % 4
           << ", \"algo\": \"dle_oracle\", \"seed\": " << 1 + i << "}\n";
        break;
      case 2:
        os << "{\"family\": \"hexagon\", \"p1\": 2, \"algo\": \"baseline_erosion\"}\n";
        break;
      case 3:
        os << "{\"id\": \"job-" << i << "\", \"spec\": {\"family\": \"annulus\", "
           << "\"p1\": 4, \"p2\": 2, \"algo\": \"dle_oracle\", \"seed\": " << 1 + i
           << "}}\n";
        break;
      case 4:
        os << "\n";  // blank line: skipped, consumes no job slot
        os << "{\"family\": \"hexagon\", \"p1\": 2, \"algo\": \"obd\", \"seed\": "
           << 1 + i << "}\n";
        break;
      case 5:
        // Broken on purpose: one bad family, one syntax error — each must
        // produce exactly one deterministic error record.
        os << (i % 2 == 0 ? "{\"family\": \"nope\", \"p1\": 3}\n"
                          : "this is not json\n");
        break;
      default:
        os << "{\"family\": \"parallelogram\", \"p1\": 4, \"p2\": 3, "
           << "\"algo\": \"dle_oracle\", \"seed\": " << 1 + i << "}\n";
        break;
    }
  }
  return os.str();
}

TEST(Serve, DrainsA500JobStreamDeterministicallyAcrossJobCounts) {
  const std::string stream = big_stream(510);
  ServeStats s1;
  const std::string r1 = run_stream(stream, {.jobs = 1}, &s1);
  EXPECT_EQ(s1.jobs, 510);
  EXPECT_GT(s1.failed, 0);  // the deliberately broken rows
  // One record per job line, in input order.
  EXPECT_EQ(std::count(r1.begin(), r1.end(), '\n'), 510);
  EXPECT_NE(r1.find("{\"job\": 0, "), std::string::npos);
  EXPECT_NE(r1.find("{\"job\": 509, "), std::string::npos);
  for (const int jobs : {2, 3, 8}) {
    ServeStats sn;
    const std::string rn = run_stream(stream, {.jobs = jobs}, &sn);
    EXPECT_EQ(rn, r1) << "output depends on --jobs " << jobs;
    EXPECT_EQ(sn.jobs, s1.jobs);
    EXPECT_EQ(sn.failed, s1.failed);
  }
}

TEST(Serve, ErrorRecordsIsolateBadJobs) {
  const std::string stream =
      "{\"family\": \"hexagon\", \"p1\": 3, \"algo\": \"dle_oracle\", \"seed\": 5}\n"
      "{\"id\": \"exp-42\", \"spec\": {\"family\": \"hexagon\", \"p1\": -2}}\n"
      "garbage\n"
      "{\"family\": \"hexagon\", \"p1\": 3, \"algo\": \"dle_oracle\", \"seed\": 5}\n";
  ServeStats stats;
  const std::string out = run_stream(stream, {}, &stats);
  EXPECT_EQ(stats.jobs, 4);
  EXPECT_EQ(stats.failed, 2);
  std::istringstream lines(out);
  std::string l0, l1, l2, l3;
  std::getline(lines, l0);
  std::getline(lines, l1);
  std::getline(lines, l2);
  std::getline(lines, l3);
  EXPECT_NE(l0.find("\"ok\": true"), std::string::npos);
  EXPECT_NE(l1.find("\"ok\": false"), std::string::npos);
  EXPECT_NE(l1.find("\"id\": \"exp-42\""), std::string::npos);  // failures stay keyed
  EXPECT_NE(l1.find("outside"), std::string::npos);  // actionable validation error
  EXPECT_NE(l2.find("\"ok\": false"), std::string::npos);
  // The two good runs of the same spec emit identical payloads modulo the
  // sequence number.
  EXPECT_EQ(l0.substr(l0.find("\"ok\"")), l3.substr(l3.find("\"ok\"")));
}

TEST(Serve, PerJobAuditIsAttachable) {
  // Envelope opt-in on an otherwise unaudited stream.
  const std::string stream =
      "{\"spec\": {\"family\": \"hexagon\", \"p1\": 3, \"algo\": \"dle_oracle\", "
      "\"seed\": 5}, \"audit\": true}\n"
      "{\"family\": \"hexagon\", \"p1\": 3, \"algo\": \"dle_oracle\", \"seed\": 5}\n";
  const std::string out = run_stream(stream, {});
  std::istringstream lines(out);
  std::string audited, plain;
  std::getline(lines, audited);
  std::getline(lines, plain);
  EXPECT_NE(audited.find("\"audit_report\": []"), std::string::npos);
  EXPECT_NE(audited.find("\"audit_violations\": 0"), std::string::npos);
  EXPECT_EQ(plain.find("\"audit_report\""), std::string::npos);
  EXPECT_NE(plain.find("\"audit_violations\": -1"), std::string::npos);

  // Server-wide default with a per-job opt-out.
  const std::string out2 = run_stream(stream, {.audit = true});
  std::istringstream lines2(out2);
  std::getline(lines2, audited);
  std::getline(lines2, plain);
  EXPECT_NE(audited.find("\"audit_report\": []"), std::string::npos);
  EXPECT_NE(plain.find("\"audit_report\": []"), std::string::npos);
}

TEST(Serve, ExplicitAuditFalseWinsRegardlessOfKeyOrder) {
  // "audit_every" implies auditing, but an explicit "audit": false must
  // disable it whether it appears before or after the cadence key.
  const std::string spec =
      "\"spec\": {\"family\": \"hexagon\", \"p1\": 3, \"algo\": \"dle_oracle\", "
      "\"seed\": 5}";
  const std::string stream = "{" + spec + ", \"audit\": false, \"audit_every\": 4}\n" +
                             "{\"audit_every\": 4, \"audit\": false, " + spec + "}\n" +
                             "{" + spec + ", \"audit_every\": 4}\n";
  const std::string out = run_stream(stream, {});
  std::istringstream lines(out);
  std::string off_first, off_last, cadence_only;
  std::getline(lines, off_first);
  std::getline(lines, off_last);
  std::getline(lines, cadence_only);
  EXPECT_EQ(off_first.find("\"audit_report\""), std::string::npos) << off_first;
  EXPECT_EQ(off_last.find("\"audit_report\""), std::string::npos) << off_last;
  EXPECT_NE(cadence_only.find("\"audit_report\": []"), std::string::npos);
}

TEST(Serve, StatsStreamLeavesResultStreamByteDeterministic) {
  // The ISSUE-pinned regression: enabling the stats side-channel must not
  // perturb a single byte of the result stream — same 510-job acceptance
  // workload, compared against the no-stats reference across job counts.
  const std::string stream = big_stream(510);
  const std::string reference = run_stream(stream, {.jobs = 1});
  for (const int jobs : {1, 3}) {
    std::ostringstream stats_stream;
    ServeOptions opts;
    opts.jobs = jobs;
    opts.stats = &stats_stream;
    opts.stats_every = 100;
    ServeStats sn;
    const std::string rn = run_stream(stream, opts, &sn);
    EXPECT_EQ(rn, reference) << "--stats perturbed the result stream at --jobs "
                             << jobs;
    EXPECT_EQ(sn.jobs, 510);
    // The stats stream itself: cadence lines plus the final summary, each a
    // one-object NDJSON line with the totals. The cadence re-arms from the
    // last emission's job count (window granularity), so wide windows emit
    // slightly fewer lines — at least floor(510 / (100 + window)) + final.
    const std::string stats = stats_stream.str();
    EXPECT_GE(std::count(stats.begin(), stats.end(), '\n'), 510 / (100 + jobs * 4) + 1);
    EXPECT_NE(stats.find("{\"stats\": {\"jobs\": "), std::string::npos) << stats;
    EXPECT_NE(stats.find("\"jobs\": 510"), std::string::npos)
        << "final summary carries end-of-stream totals: " << stats;
    EXPECT_NE(stats.find("\"p99_ms\": "), std::string::npos) << stats;
  }
}

TEST(Serve, WallClockFieldsAreZeroUnlessRequested) {
  const std::string stream =
      "{\"family\": \"hexagon\", \"p1\": 3, \"algo\": \"dle_oracle\", \"seed\": 5}\n";
  const std::string out = run_stream(stream, {});
  EXPECT_NE(out.find("\"wall_ms\": 0.000"), std::string::npos);
  EXPECT_NE(out.find("\"dle_ms\": 0.000"), std::string::npos);
}

}  // namespace
}  // namespace pm::workload
