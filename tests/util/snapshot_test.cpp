// The checkpoint word stream: round-trips, marks, text serialization.
#include "util/snapshot.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

#include "util/check.h"

namespace pm {
namespace {

TEST(Snapshot, RoundTripsScalars) {
  Snapshot snap;
  snap.put(0);
  snap.put(std::numeric_limits<std::uint64_t>::max());
  snap.put_i(-1);
  snap.put_i(std::numeric_limits<std::int64_t>::min());
  snap.put_i(42);

  EXPECT_EQ(snap.get(), 0u);
  EXPECT_EQ(snap.get(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(snap.get_i(), -1);
  EXPECT_EQ(snap.get_i(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(snap.get_i(), 42);
  EXPECT_TRUE(snap.exhausted());
}

TEST(Snapshot, MarksCatchReaderDrift) {
  Snapshot snap;
  snap.put_mark(kSnapSystem);
  snap.put(7);
  snap.expect_mark(kSnapSystem);
  EXPECT_EQ(snap.get(), 7u);
  snap.rewind();
  EXPECT_THROW(snap.expect_mark(kSnapEngine), CheckError);
}

TEST(Snapshot, UnderrunThrows) {
  Snapshot snap;
  snap.put(1);
  (void)snap.get();
  EXPECT_THROW((void)snap.get(), CheckError);
}

TEST(Snapshot, SerializeParseRoundTripsAcrossProcessImages) {
  Snapshot snap;
  snap.put_mark(kSnapPipeline);
  for (std::uint64_t i = 0; i < 100; ++i) snap.put(i * 0x9e3779b97f4a7c15ULL);
  snap.put_i(-123456789);

  // The text form is all a fresh process would receive.
  const std::string text = snap.serialize();
  const Snapshot back = Snapshot::parse(text);
  ASSERT_EQ(back.size(), snap.size());
  back.expect_mark(kSnapPipeline);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(back.get(), i * 0x9e3779b97f4a7c15ULL);
  EXPECT_EQ(back.get_i(), -123456789);
  EXPECT_TRUE(back.exhausted());
}

TEST(Snapshot, ParseRejectsMalformedInput) {
  EXPECT_THROW(Snapshot::parse("not a snapshot"), CheckError);
  EXPECT_THROW(Snapshot::parse("pm-snapshot 2 0"), CheckError);   // future version
  EXPECT_THROW(Snapshot::parse("pm-snapshot 1 3\n1 2"), CheckError);  // truncated
  EXPECT_THROW(Snapshot::parse("pm-snapshot 1 1\nzz&"), CheckError);  // not hex
}

TEST(Snapshot, ParseErrorsAreStructured) {
  // Every malformed-input path throws the dedicated ParseError subtype, so
  // checkpoint consumers can distinguish "corrupt file" from logic errors.
  for (const char* text : {
           "",                               // empty document
           "pm-snapshot",                    // clipped header
           "pm-snapshot x 1\n0",             // non-numeric version
           "pm-snapshot 1 -1\n",             // negative word count
           "pm-snapshot 1 999999999999999",  // implausible word count
           "pm-snapshot 1 1\n+1",            // signs are corruption, not values
           "pm-snapshot 1 1\n11112222333344445",  // oversized word (17 hex digits)
           "pm-snapshot 1 1\n1 trailing-garbage",  // content after the last word
       }) {
    EXPECT_THROW(Snapshot::parse(text), Snapshot::ParseError) << "'" << text << "'";
  }
  // Trailing whitespace is not corruption.
  EXPECT_NO_THROW(Snapshot::parse("pm-snapshot 1 1\nff\n  \n"));
}

TEST(Snapshot, TryParseReturnsNulloptWithTheReason) {
  std::string error;
  EXPECT_FALSE(Snapshot::try_parse("pm-snapshot 1 3\n1 2", &error).has_value());
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;

  const auto ok = Snapshot::try_parse("pm-snapshot 1 2\nab cd\n");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->get(), 0xabu);
  EXPECT_EQ(ok->get(), 0xcdu);
}

}  // namespace
}  // namespace pm
