// Differential tests for the occupancy engines: the dense flat-array index
// and the seed hash map must agree on every query along real movement
// traces, and a system driven on either engine must produce bit-identical
// trajectories for a fixed seed.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "amoebot/system.h"
#include "core/dle/dle.h"
#include "core/le/le.h"
#include "shapegen/shapegen.h"

namespace pm::amoebot {
namespace {

using core::Dle;
using core::DleState;

struct Empty {};

// A randomized but model-legal movement trace driven directly through the
// SystemCore API in Differential mode: every occupied()/particle_at() call
// cross-checks the dense index against the hash map and throws on
// divergence, so reaching the end is the assertion.
TEST(OccupancyDifferential, RandomMovementTraceAgrees) {
  Rng shape_rng(3);
  const auto shape = shapegen::random_blob(120, 17);
  auto sys =
      System<Empty>::from_shape(shape, shape_rng, OccupancyMode::Differential);
  Rng rng(5);
  long long performed = 0;
  for (int step = 0; step < 20'000; ++step) {
    const auto p =
        static_cast<ParticleId>(rng.below(static_cast<std::uint64_t>(sys.particle_count())));
    const Body& b = sys.body(p);
    if (!b.expanded()) {
      // Try to expand into a random empty neighbor of the head.
      const int start = static_cast<int>(rng.below(6));
      for (int k = 0; k < 6; ++k) {
        const grid::Node to =
            grid::neighbor(b.head, grid::dir_from_index(start + k));
        if (!sys.occupied(to)) {
          sys.expand(p, to);
          ++performed;
          break;
        }
      }
    } else if (rng.coin()) {
      rng.coin() ? sys.contract_to_head(p) : sys.contract_to_tail(p);
      ++performed;
    } else {
      // Handover: pull a contracted neighbor of the tail into the tail node.
      for (int k = 0; k < 6; ++k) {
        const grid::Node u = grid::neighbor(b.tail, grid::dir_from_index(k));
        const ParticleId q = sys.particle_at(u);
        if (q != kNoParticle && q != p && !sys.body(q).expanded()) {
          sys.handover(q, p);
          ++performed;
          break;
        }
      }
    }
  }
  EXPECT_GT(performed, 1000);
  EXPECT_EQ(sys.moves(), performed);
  // Full sweep: every occupied node agrees, every body is indexed.
  for (ParticleId p = 0; p < sys.particle_count(); ++p) {
    const Body& b = sys.body(p);
    EXPECT_EQ(sys.particle_at(b.head), p);
    EXPECT_EQ(sys.particle_at(b.tail), p);
  }
}

// DLE driven end-to-end in Differential mode: the full protocol's movement
// pattern (expansions, contractions, handovers in the pull variant) keeps
// both engines in agreement.
TEST(OccupancyDifferential, DleRunsCleanlyInDifferentialMode) {
  for (const bool pull : {false, true}) {
    Rng rng(7);
    auto sys = Dle::make_system(shapegen::swiss_cheese(6, 3, 11), rng,
                                OccupancyMode::Differential);
    Dle dle(Dle::Options{.connected_pull = pull});
    const auto res = run(sys, dle, {Order::RandomPerm, 8, 200'000});
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(core::election_outcome(sys).leaders, 1);
  }
}

// The occupancy engine must not influence the trajectory: Dense and Hash
// runs with identical seeds produce identical rounds, activations, and
// final configurations.
TEST(OccupancyDifferential, DenseAndHashTrajectoriesAreIdentical) {
  const auto shape = shapegen::random_blob(300, 23);
  auto run_mode = [&](OccupancyMode mode) {
    Rng rng(9);
    auto sys = Dle::make_system(shape, rng, mode);
    Dle dle;
    const auto res = run(sys, dle, {Order::RandomPerm, 10, 200'000});
    std::vector<Body> bodies;
    bodies.reserve(static_cast<std::size_t>(sys.particle_count()));
    for (ParticleId p = 0; p < sys.particle_count(); ++p) bodies.push_back(sys.body(p));
    return std::tuple(res.rounds, res.activations, res.completed, res.moves, bodies);
  };
  const auto dense = run_mode(OccupancyMode::Dense);
  const auto hash = run_mode(OccupancyMode::Hash);
  EXPECT_EQ(std::get<0>(dense), std::get<0>(hash));
  EXPECT_EQ(std::get<1>(dense), std::get<1>(hash));
  EXPECT_EQ(std::get<2>(dense), std::get<2>(hash));
  EXPECT_EQ(std::get<3>(dense), std::get<3>(hash));
  const auto& bd = std::get<4>(dense);
  const auto& bh = std::get<4>(hash);
  ASSERT_EQ(bd.size(), bh.size());
  for (std::size_t i = 0; i < bd.size(); ++i) {
    EXPECT_EQ(bd[i].head, bh[i].head) << "particle " << i;
    EXPECT_EQ(bd[i].tail, bh[i].tail) << "particle " << i;
  }
}

// The dense engine reports a peak extent; the hash engine reports none.
TEST(OccupancyDifferential, PeakExtentReported) {
  Rng rng(4);
  auto dense = System<Empty>::from_shape(shapegen::hexagon(4), rng, OccupancyMode::Dense);
  EXPECT_GT(dense.peak_occupancy_cells(), 0);
  Rng rng2(4);
  auto hash = System<Empty>::from_shape(shapegen::hexagon(4), rng2, OccupancyMode::Hash);
  EXPECT_EQ(hash.peak_occupancy_cells(), 0);
}

}  // namespace
}  // namespace pm::amoebot
