// SystemCore batch sessions: while a batch is active, movements journal their
// occupancy updates into the thread's ActivationLog (bodies mutate in place),
// queries overlay the thread's own pending ops — an activation reads its own
// movement — and commit() replays the journal so the indices and counters end
// exactly as a direct sequential execution would.
#include "amoebot/system.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace pm::amoebot {
namespace {

TEST(BatchJournal, ExpandIsJournaledAndVisibleToOwnThread) {
  for (const OccupancyMode mode :
       {OccupancyMode::Dense, OccupancyMode::Hash, OccupancyMode::Differential}) {
    SystemCore sys(mode);
    const ParticleId p = sys.add_particle({0, 0}, 0);
    ActivationLog log;
    sys.begin_batch();
    SystemCore::set_thread_log(&log);
    sys.expand(p, {1, 0});
    // Read-your-own-writes: the journaling thread sees the move...
    EXPECT_TRUE(sys.occupied({1, 0}));
    EXPECT_EQ(sys.particle_at({1, 0}), p);
    EXPECT_TRUE(sys.is_head({1, 0}));
    EXPECT_TRUE(sys.body(p).expanded());
    SystemCore::set_thread_log(nullptr);
    // ...but a thread without a registered log sees the pre-batch indices
    // (the body, mutated in place, is already current).
    EXPECT_FALSE(sys.occupied({1, 0}));
    sys.end_batch();
    // Counters are deferred until commit.
    EXPECT_EQ(sys.moves(), 0);
    EXPECT_EQ(sys.expanded_count(), 0);
    sys.commit(log);
    EXPECT_TRUE(sys.occupied({1, 0}));
    EXPECT_EQ(sys.particle_at({1, 0}), p);
    EXPECT_EQ(sys.moves(), 1);
    EXPECT_EQ(sys.expanded_count(), 1);
  }
}

TEST(BatchJournal, HandoverJournalsBothOpsInOrder) {
  SystemCore sys;
  const ParticleId q = sys.add_particle({0, 0}, 0);
  const ParticleId p = sys.add_particle({-1, 0}, 0);
  sys.expand(q, {1, 0});  // q: tail (0,0), head (1,0); p adjacent to q's tail

  ActivationLog log;
  sys.begin_batch();
  SystemCore::set_thread_log(&log);
  sys.handover(p, q);
  // Overlay: the freed node now answers as p's for this thread.
  EXPECT_EQ(sys.particle_at({0, 0}), p);
  EXPECT_TRUE(sys.body(p).expanded());
  EXPECT_FALSE(sys.body(q).expanded());
  SystemCore::set_thread_log(nullptr);
  sys.end_batch();
  EXPECT_EQ(sys.particle_at({0, 0}), q) << "indices unchanged until commit";

  const long long moves_before = sys.moves();
  sys.commit(log);
  EXPECT_EQ(sys.particle_at({0, 0}), p);
  EXPECT_EQ(sys.particle_at({1, 0}), q);
  EXPECT_EQ(sys.moves(), moves_before + 1);
  EXPECT_EQ(sys.expanded_count(), 1);  // p expanded, q contracted: net equal
}

TEST(BatchJournal, ContractIsDeferred) {
  SystemCore sys;
  const ParticleId p = sys.add_particle({0, 0}, 0);
  sys.expand(p, {1, 0});
  ASSERT_EQ(sys.expanded_count(), 1);

  ActivationLog log;
  sys.begin_batch();
  SystemCore::set_thread_log(&log);
  sys.contract_to_head(p);
  EXPECT_FALSE(sys.occupied({0, 0}));  // own-thread overlay shows the erase
  SystemCore::set_thread_log(nullptr);
  sys.end_batch();
  EXPECT_TRUE(sys.occupied({0, 0}));
  sys.commit(log);
  EXPECT_FALSE(sys.occupied({0, 0}));
  EXPECT_EQ(sys.expanded_count(), 0);
}

TEST(BatchJournal, CommitInsideABatchSessionThrows) {
  SystemCore sys;
  sys.begin_batch();
  const ActivationLog log;
  EXPECT_THROW(sys.commit(log), CheckError);
  sys.end_batch();
}

TEST(BatchJournal, MovesOutsideASessionApplyDirectly) {
  // begin_batch without a registered thread log: movements on threads that
  // did not register (e.g. the main thread between batches) apply directly.
  SystemCore sys;
  const ParticleId p = sys.add_particle({0, 0}, 0);
  sys.expand(p, {1, 0});
  EXPECT_TRUE(sys.occupied({1, 0}));
  EXPECT_EQ(sys.moves(), 1);
  EXPECT_EQ(sys.expanded_count(), 1);
}

}  // namespace
}  // namespace pm::amoebot
