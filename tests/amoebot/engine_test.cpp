// Engine regression: the incremental-termination Engine must reproduce the
// seed scheduler (kept verbatim as run_reference) bit-for-bit — identical
// rounds, activations, and completion — on every order, and across the full
// OBD -> DLE -> Collect pipeline for both occupancy engines.
#include "amoebot/engine.h"

#include <gtest/gtest.h>

#include "core/dle/dle.h"
#include "core/le/le.h"
#include "shapegen/shapegen.h"

namespace pm::amoebot {
namespace {

using core::Dle;
using core::DleState;

struct CountToTarget {
  struct State {
    int count = 0;
  };
  int target = 5;

  void activate(ParticleView<State>& p) { ++p.self().count; }
  [[nodiscard]] bool is_final(const System<State>& sys, ParticleId p) const {
    return sys.state(p).count >= target;
  }
};

TEST(EngineRegression, MatchesReferenceOnToyAlgorithm) {
  for (const Order order : {Order::RoundRobin, Order::RandomPerm, Order::RandomStream}) {
    for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
      const auto shape = shapegen::hexagon(2);
      Rng rng_a(seed);
      auto sys_a = System<CountToTarget::State>::from_shape(shape, rng_a);
      Rng rng_b(seed);
      auto sys_b = System<CountToTarget::State>::from_shape(shape, rng_b);
      CountToTarget algo_a;
      CountToTarget algo_b;
      const RunOptions opts{order, seed, 1000};
      const RunResult incr = run(sys_a, algo_a, opts);
      const RunResult ref = run_reference(sys_b, algo_b, opts);
      EXPECT_EQ(incr.rounds, ref.rounds) << order_name(order) << " seed " << seed;
      EXPECT_EQ(incr.activations, ref.activations);
      EXPECT_EQ(incr.completed, ref.completed);
    }
  }
}

TEST(EngineRegression, MatchesReferenceOnDle) {
  const auto shapes = shapegen::standard_family(5, 2);
  for (const auto& named : shapes) {
    for (const Order order : {Order::RoundRobin, Order::RandomPerm, Order::RandomStream}) {
      Rng rng_a(13);
      auto sys_a = Dle::make_system(named.shape, rng_a);
      Rng rng_b(13);
      auto sys_b = Dle::make_system(named.shape, rng_b);
      Dle dle_a;
      Dle dle_b;
      const RunOptions opts{order, 14, 500'000};
      const RunResult incr = run(sys_a, dle_a, opts);
      const RunResult ref = run_reference(sys_b, dle_b, opts);
      ASSERT_EQ(incr.rounds, ref.rounds) << named.name << " / " << order_name(order);
      ASSERT_EQ(incr.activations, ref.activations) << named.name;
      ASSERT_EQ(incr.completed, ref.completed) << named.name;
      // Trajectories, not just counts: final configurations are identical.
      for (ParticleId p = 0; p < sys_a.particle_count(); ++p) {
        ASSERT_EQ(sys_a.body(p).head, sys_b.body(p).head) << named.name << " p" << p;
        ASSERT_EQ(sys_a.body(p).tail, sys_b.body(p).tail) << named.name << " p" << p;
      }
      EXPECT_EQ(core::election_outcome(sys_a).leaders,
                core::election_outcome(sys_b).leaders);
    }
  }
}

TEST(EngineRegression, MatchesReferenceOnPullVariant) {
  // The pull variant's handovers mutate a second particle's body mid-round,
  // exercising the TouchList movement-partner path.
  Rng rng_a(29);
  auto sys_a = Dle::make_system(shapegen::annulus(6, 5), rng_a);
  Rng rng_b(29);
  auto sys_b = Dle::make_system(shapegen::annulus(6, 5), rng_b);
  Dle dle_a({.connected_pull = true});
  Dle dle_b({.connected_pull = true});
  const RunOptions opts{Order::RandomPerm, 31, 500'000};
  const RunResult incr = run(sys_a, dle_a, opts);
  const RunResult ref = run_reference(sys_b, dle_b, opts);
  EXPECT_EQ(incr.rounds, ref.rounds);
  EXPECT_EQ(incr.activations, ref.activations);
  EXPECT_TRUE(incr.completed);
  EXPECT_EQ(incr.completed, ref.completed);
}

TEST(EngineRegression, MatchesReferenceOnIncompleteRuns) {
  Rng rng_a(3);
  auto sys_a = Dle::make_system(shapegen::hexagon(6), rng_a);
  Rng rng_b(3);
  auto sys_b = Dle::make_system(shapegen::hexagon(6), rng_b);
  Dle dle_a;
  Dle dle_b;
  const RunOptions opts{Order::RandomPerm, 5, 4};  // too few rounds to finish
  const RunResult incr = run(sys_a, dle_a, opts);
  const RunResult ref = run_reference(sys_b, dle_b, opts);
  EXPECT_FALSE(incr.completed);
  EXPECT_EQ(incr.rounds, ref.rounds);
  EXPECT_EQ(incr.activations, ref.activations);
  EXPECT_EQ(incr.completed, ref.completed);
}

// Full pipeline (OBD -> DLE -> Collect): the Engine drives the DLE stage and
// the round-synchronous OBD/Collect engines surround it; per-stage round
// counts must be identical across occupancy engines, i.e. the refactor
// preserves determinism bit-for-bit for fixed seeds.
TEST(EngineRegression, PipelineRoundsIdenticalAcrossOccupancyModes) {
  const auto shape = shapegen::swiss_cheese(6, 4, 2024);
  core::PipelineOptions opts;
  opts.use_boundary_oracle = false;
  opts.seed = 8;
  opts.occupancy = OccupancyMode::Dense;
  const auto dense = core::elect_leader(shape, opts);
  opts.occupancy = OccupancyMode::Hash;
  const auto hash = core::elect_leader(shape, opts);
  opts.occupancy = OccupancyMode::Differential;
  const auto diff = core::elect_leader(shape, opts);
  ASSERT_TRUE(dense.completed);
  EXPECT_EQ(dense.obd_rounds, hash.obd_rounds);
  EXPECT_EQ(dense.dle_rounds, hash.dle_rounds);
  EXPECT_EQ(dense.collect_rounds, hash.collect_rounds);
  EXPECT_EQ(dense.completed, hash.completed);
  EXPECT_EQ(dense.leader, hash.leader);
  EXPECT_EQ(dense.obd_rounds, diff.obd_rounds);
  EXPECT_EQ(dense.dle_rounds, diff.dle_rounds);
  EXPECT_EQ(dense.collect_rounds, diff.collect_rounds);
  EXPECT_EQ(dense.leader, diff.leader);
}

TEST(Engine, ReportsRunMetrics) {
  Rng rng(5);
  auto sys = Dle::make_system(shapegen::annulus(5, 3), rng, OccupancyMode::Dense);
  Dle dle;
  const RunResult res = run(sys, dle, {Order::RandomPerm, 6, 200'000});
  ASSERT_TRUE(res.completed);
  EXPECT_GT(res.moves, 0);                  // DLE moves particles
  EXPECT_EQ(res.moves, sys.moves());        // delta from a fresh system
  EXPECT_GT(res.peak_occupancy_cells, 0);   // dense engine tracked its box
  EXPECT_GE(res.wall_ms, 0.0);
}

TEST(Engine, TemplateHookObservesEveryActivation) {
  Rng rng(2);
  auto sys = System<CountToTarget::State>::from_shape(shapegen::hexagon(2), rng);
  CountToTarget algo;
  long long seen = 0;
  const RunResult res =
      run(sys, algo, {Order::RoundRobin, 1, 100},
          [&](System<CountToTarget::State>&, ParticleId) { ++seen; });
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(seen, res.activations);
}

}  // namespace
}  // namespace pm::amoebot
