// The strong scheduler: atomic activations, fair orders, round accounting.
#include "amoebot/scheduler.h"

#include <gtest/gtest.h>

#include "shapegen/shapegen.h"

namespace pm::amoebot {
namespace {

// A toy algorithm: every particle counts its own activations up to a target
// then goes final. Rounds needed must be exactly `target` for the per-round
// orders and at least `target` for the stream order.
struct CountToTarget {
  struct State {
    int count = 0;
  };
  int target = 5;

  void activate(ParticleView<State>& p) { ++p.self().count; }
  [[nodiscard]] bool is_final(const System<State>& sys, ParticleId p) const {
    return sys.state(p).count >= target;
  }
};

System<CountToTarget::State> make_sys(int scale, std::uint64_t seed) {
  Rng rng(seed);
  return System<CountToTarget::State>::from_shape(shapegen::hexagon(scale), rng);
}

TEST(Scheduler, RoundRobinRoundsEqualTarget) {
  auto sys = make_sys(2, 1);
  CountToTarget algo;
  const RunResult res = run(sys, algo, {Order::RoundRobin, 1, 100});
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.rounds, 5);
  EXPECT_EQ(res.activations, 5LL * sys.particle_count());
}

TEST(Scheduler, RandomPermCoversEveryParticleEachRound) {
  auto sys = make_sys(2, 2);
  CountToTarget algo;
  const RunResult res = run(sys, algo, {Order::RandomPerm, 7, 100});
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.rounds, 5);
  for (ParticleId p = 0; p < sys.particle_count(); ++p) {
    EXPECT_EQ(sys.state(p).count, 5);
  }
}

TEST(Scheduler, RandomStreamIsFairAndCountsRoundsByCoverage) {
  auto sys = make_sys(1, 3);
  CountToTarget algo;
  const RunResult res = run(sys, algo, {Order::RandomStream, 11, 10'000});
  EXPECT_TRUE(res.completed);
  // A single coverage round can activate a particle several times, so no
  // lower bound on rounds holds — only the per-particle final condition.
  EXPECT_GE(res.rounds, 1);
  for (ParticleId p = 0; p < sys.particle_count(); ++p) {
    EXPECT_EQ(sys.state(p).count, 5);  // is_final stops further activations
  }
}

TEST(Scheduler, MaxRoundsStopsIncompleteRuns) {
  auto sys = make_sys(1, 4);
  CountToTarget algo;
  algo.target = 1'000'000;
  const RunResult res = run(sys, algo, {Order::RoundRobin, 1, 10});
  EXPECT_FALSE(res.completed);
  EXPECT_EQ(res.rounds, 10);
}

TEST(Scheduler, FinalParticlesAreNotActivated) {
  auto sys = make_sys(1, 5);
  CountToTarget algo;
  run(sys, algo, {Order::RoundRobin, 1, 50});
  for (ParticleId p = 0; p < sys.particle_count(); ++p) {
    EXPECT_EQ(sys.state(p).count, 5);  // never beyond the final-state bound
  }
}

TEST(Scheduler, EmptySystemCompletesImmediately) {
  System<CountToTarget::State> sys;
  CountToTarget algo;
  const RunResult res = run(sys, algo, {Order::RandomPerm, 1, 10});
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.rounds, 0);
}

// A movement-performing algorithm must be limited to one move per
// activation; the guard throws otherwise.
struct DoubleMover {
  struct State {};
  void activate(ParticleView<State>& p) {
    p.expand_head(0);
    p.contract_to_head();  // second movement in one activation: illegal
  }
  [[nodiscard]] bool is_final(const System<State>&, ParticleId) const { return false; }
};

TEST(Scheduler, OneMovementPerActivationEnforced) {
  Rng rng(1);
  auto sys = System<DoubleMover::State>::from_shape(shapegen::line(1), rng);
  DoubleMover algo;
  EXPECT_THROW(run(sys, algo, {Order::RoundRobin, 1, 1}), CheckError);
}

}  // namespace
}  // namespace pm::amoebot
