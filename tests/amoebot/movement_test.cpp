// Movement semantics of the amoebot model (paper §2.2, Fig 8): expansion,
// contraction, handover, occupancy bookkeeping and model-rule enforcement.
#include <gtest/gtest.h>

#include "amoebot/system.h"
#include "shapegen/shapegen.h"
#include "util/check.h"
#include "util/rng.h"

namespace pm::amoebot {
namespace {

using grid::Dir;
using grid::Node;

struct Empty {};

TEST(Movement, ExpandContractRoundTrip) {
  SystemCore sys;
  const ParticleId p = sys.add_particle({0, 0}, 0);
  EXPECT_FALSE(sys.body(p).expanded());

  sys.expand(p, {1, 0});
  EXPECT_TRUE(sys.body(p).expanded());
  EXPECT_EQ(sys.body(p).head, (Node{1, 0}));
  EXPECT_EQ(sys.body(p).tail, (Node{0, 0}));
  EXPECT_TRUE(sys.occupied({0, 0}));
  EXPECT_TRUE(sys.occupied({1, 0}));
  EXPECT_TRUE(sys.is_head({1, 0}));
  EXPECT_FALSE(sys.is_head({0, 0}));

  sys.contract_to_head(p);
  EXPECT_FALSE(sys.body(p).expanded());
  EXPECT_FALSE(sys.occupied({0, 0}));
  EXPECT_TRUE(sys.occupied({1, 0}));
}

TEST(Movement, ContractToTail) {
  SystemCore sys;
  const ParticleId p = sys.add_particle({0, 0}, 3);
  sys.expand(p, {0, 1});
  sys.contract_to_tail(p);
  EXPECT_EQ(sys.body(p).head, (Node{0, 0}));
  EXPECT_FALSE(sys.occupied({0, 1}));
}

TEST(Movement, IllegalMovesAreRejected) {
  SystemCore sys;
  const ParticleId p = sys.add_particle({0, 0}, 0);
  const ParticleId q = sys.add_particle({1, 0}, 0);
  // Expanding onto an occupied node.
  EXPECT_THROW(sys.expand(p, {1, 0}), CheckError);
  // Expanding to a non-adjacent node.
  EXPECT_THROW(sys.expand(p, {2, 2}), CheckError);
  // Contracting a contracted particle.
  EXPECT_THROW(sys.contract_to_head(p), CheckError);
  // Double expansion.
  sys.expand(p, {0, 1});
  EXPECT_THROW(sys.expand(p, {-1, 0}), CheckError);
  // Handover with a contracted q.
  EXPECT_THROW(sys.handover(q, q), CheckError);
}

TEST(Movement, HandoverTransfersTheNode) {
  SystemCore sys;
  const ParticleId q = sys.add_particle({0, 0}, 0);
  const ParticleId p = sys.add_particle({-1, 0}, 0);
  sys.expand(q, {1, 0});  // q spans (0,0)-(1,0)
  sys.handover(p, q);     // p takes (0,0), q contracts to (1,0)
  EXPECT_EQ(sys.body(p).head, (Node{0, 0}));
  EXPECT_EQ(sys.body(p).tail, (Node{-1, 0}));
  EXPECT_FALSE(sys.body(q).expanded());
  EXPECT_EQ(sys.body(q).head, (Node{1, 0}));
  EXPECT_EQ(sys.particle_at({0, 0}), p);
}

TEST(Movement, HandoverRequiresAdjacency) {
  SystemCore sys;
  const ParticleId q = sys.add_particle({0, 0}, 0);
  const ParticleId p = sys.add_particle({3, 3}, 0);
  sys.expand(q, {1, 0});
  EXPECT_THROW(sys.handover(p, q), CheckError);
}

TEST(Movement, PortArithmeticCommonChirality) {
  SystemCore sys;
  // Orientation 2: port 0 points toward global dir index 2 (SW).
  const ParticleId p = sys.add_particle({0, 0}, 2);
  EXPECT_EQ(sys.port_dir(p, 0), Dir::SW);
  EXPECT_EQ(sys.port_dir(p, 4), Dir::E);
  for (int port = 0; port < 6; ++port) {
    EXPECT_EQ(sys.dir_port(p, sys.port_dir(p, port)), port);
  }
}

TEST(Movement, PortBetweenNeighbors) {
  SystemCore sys;
  const ParticleId p = sys.add_particle({0, 0}, 1);
  const ParticleId q = sys.add_particle({1, 0}, 4);
  // p at (0,0) sees (1,0) via dir E (index 0) -> port (0 - 1) mod 6 = 5.
  EXPECT_EQ(sys.port_between(p, {0, 0}, {1, 0}), 5);
  // q at (1,0) sees (0,0) via dir W (index 3) -> port (3 - 4) mod 6 = 5.
  EXPECT_EQ(sys.port_between(q, {1, 0}, {0, 0}), 5);
}

TEST(Movement, ShapeAndComponents) {
  Rng rng(3);
  auto sys = System<Empty>::from_shape(shapegen::hexagon(2), rng);
  EXPECT_EQ(sys.component_count(), 1);
  EXPECT_TRUE(sys.all_contracted());
  EXPECT_EQ(sys.shape().size(), shapegen::hexagon(2).size());

  SystemCore split;
  split.add_particle({0, 0}, 0);
  split.add_particle({5, 5}, 0);
  split.add_particle({5, 6}, 0);
  EXPECT_EQ(split.component_count(), 2);
}

TEST(Movement, ExpandedParticleCountsBothNodesInShape) {
  SystemCore sys;
  const ParticleId p = sys.add_particle({0, 0}, 0);
  sys.expand(p, {1, 0});
  EXPECT_EQ(sys.shape().size(), 2u);
  EXPECT_EQ(sys.component_count(), 1);
}

TEST(Movement, MoveCounter) {
  SystemCore sys;
  const ParticleId p = sys.add_particle({0, 0}, 0);
  sys.expand(p, {1, 0});
  sys.contract_to_head(p);
  EXPECT_EQ(sys.moves(), 2);
}

}  // namespace
}  // namespace pm::amoebot
