// TouchList footprint completeness — the soundness precondition for both the
// Engine's incremental termination tracking and the exec layer's conflict
// detection: every particle whose state an activation writes (or whose body a
// movement mutates) must appear in the recorded TouchList.
//
// The adversarial algorithm below exercises every allowed mutation channel of
// ParticleView — self(), nbr_state_head(), state_of() via neighbor iteration,
// and all four movement operations including both handover directions —
// while independently recording which particles it actually mutated; the test
// asserts the TouchList is a superset of that record.
#include "amoebot/view.h"

#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "amoebot/system.h"
#include "shapegen/shapegen.h"
#include "util/rng.h"

namespace pm::amoebot {
namespace {

struct AdversaryState {
  int scribbles = 0;
};

// One activation: write every reachable neighbor channel, then perform one
// movement chosen to rotate through the full movement repertoire. `mutated`
// is the ground truth the TouchList must cover.
struct AdversaryAlgo {
  using State = AdversaryState;

  int step = 0;
  std::vector<ParticleId> mutated;  // filled per activation

  void activate(ParticleView<State>& p) {
    mutated.clear();

    // Channel 1: own memory.
    ++p.self().scribbles;
    mutated.push_back(p.id());

    // Channel 2: head-port neighbor writes (only head-of-neighbor ports give
    // a writable channel through nbr_state_head).
    for (int port = 0; port < 6; ++port) {
      if (!p.occupied_head(port) || !p.head_of_nbr_at(port)) continue;
      const ParticleId q = p.nbr_id_head(port);
      if (q == p.id()) continue;  // own tail seen from the head
      ++p.nbr_state_head(port).scribbles;
      mutated.push_back(q);
    }

    // Channel 3: whole-neighborhood writes through state_of.
    p.for_each_neighbor_particle([&](ParticleId q) {
      ++p.state_of(q).scribbles;
      mutated.push_back(q);
    });

    // Channel 4: one movement, rotating through the repertoire.
    const int choice = step++ % 4;
    if (p.expanded()) {
      if (choice == 0) {
        // Handover initiated by the expanded party: pull a contracted
        // neighbor into the vacated tail.
        for (int port = 0; port < 6; ++port) {
          if (!p.occupied_tail(port) || p.tail_port_is_self(port)) continue;
          const ParticleId q = p.nbr_id_tail(port);
          if (p.is_contracted(q)) {
            p.handover_pull_tail(port);
            mutated.push_back(q);
            return;
          }
        }
      }
      if (choice % 2 == 0) {
        p.contract_to_head();
      } else {
        p.contract_to_tail();
      }
      return;
    }
    if (choice == 1) {
      // Handover initiated by the contracted party: expand into an expanded
      // neighbor's tail.
      for (int port = 0; port < 6; ++port) {
        if (!p.occupied_head(port)) continue;
        const ParticleId q = p.nbr_id_head(port);
        if (q != p.id() && !p.is_contracted(q) && !p.head_of_nbr_at(port)) {
          p.handover_expand_head(port);
          mutated.push_back(q);
          return;
        }
      }
    }
    for (int port = 0; port < 6; ++port) {
      if (!p.occupied_head(port)) {
        p.expand_head(port);
        return;
      }
    }
  }

  [[nodiscard]] bool is_final(const System<State>&, ParticleId) const { return false; }
};

TEST(TouchList, RecordsASupersetOfEveryMutationChannel) {
  for (const std::uint64_t seed : {1ULL, 5ULL, 9ULL}) {
    Rng rng(seed);
    auto sys = System<AdversaryState>::from_shape(shapegen::hexagon(3), rng);
    AdversaryAlgo algo;
    Rng order_rng(seed + 100);
    long multi_particle_activations = 0;
    for (int round = 0; round < 60; ++round) {
      for (int k = 0; k < sys.particle_count(); ++k) {
        const auto p = static_cast<ParticleId>(
            order_rng.below(static_cast<std::uint64_t>(sys.particle_count())));
        TouchList touches;
        ParticleView<AdversaryState> view(sys, p, &touches);
        algo.activate(view);
        ASSERT_FALSE(touches.overflowed())
            << "a single activation fits in the TouchList capacity";
        std::unordered_set<ParticleId> recorded;
        for (int i = 0; i < touches.size(); ++i) recorded.insert(touches[i]);
        for (const ParticleId q : algo.mutated) {
          EXPECT_TRUE(recorded.contains(q))
              << "particle " << q << " mutated but not touched (seed " << seed
              << ", activation of " << p << ")";
        }
        if (algo.mutated.size() > 1) ++multi_particle_activations;
      }
    }
    EXPECT_GT(multi_particle_activations, 0)
        << "the adversary must exercise neighbor writes";
  }
}

// The capacity bound documented in view.h: an activation touches itself and
// at most its node-neighbors, comfortably under kCapacity; overflow is
// reported, not silently dropped, once capacity is exceeded.
TEST(TouchList, OverflowIsStickyAndReported) {
  TouchList t;
  for (int i = 0; i < TouchList::kCapacity; ++i) t.add(i);
  EXPECT_FALSE(t.overflowed());
  EXPECT_EQ(t.size(), TouchList::kCapacity);
  t.add(99);
  EXPECT_TRUE(t.overflowed());
  EXPECT_EQ(t.size(), TouchList::kCapacity);  // extra entries are not stored
}

}  // namespace
}  // namespace pm::amoebot
