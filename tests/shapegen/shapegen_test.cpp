// Shape generators: connectivity, determinism, advertised structure.
#include "shapegen/shapegen.h"

#include <gtest/gtest.h>

#include "grid/metrics.h"

namespace pm::shapegen {
namespace {

using grid::Shape;

TEST(ShapeGen, HexagonSizes) {
  // |hexagon(r)| = 3r(r+1) + 1.
  for (int r = 0; r <= 5; ++r) {
    EXPECT_EQ(hexagon(r).size(), static_cast<std::size_t>(3 * r * (r + 1) + 1));
  }
}

TEST(ShapeGen, AllFamiliesConnected) {
  for (const auto& [name, shape] : standard_family(6, /*seed=*/123)) {
    EXPECT_TRUE(shape.is_connected()) << name;
    EXPECT_FALSE(shape.empty()) << name;
  }
}

TEST(ShapeGen, Determinism) {
  const auto a = standard_family(5, 77);
  const auto b = standard_family(5, 77);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].shape.size(), b[i].shape.size()) << a[i].name;
    for (const auto v : a[i].shape.nodes()) {
      EXPECT_TRUE(b[i].shape.contains(v)) << a[i].name;
    }
  }
}

TEST(ShapeGen, AnnulusHasHole) {
  const Shape s = annulus(6, 3);
  EXPECT_EQ(s.hole_count(), 1);
  EXPECT_TRUE(s.is_connected());
}

TEST(ShapeGen, SwissCheeseHoleCountAndSeedSensitivity) {
  const Shape a = swiss_cheese(9, 6, 1);
  const Shape b = swiss_cheese(9, 6, 2);
  EXPECT_EQ(a.hole_count(), 6);
  EXPECT_EQ(b.hole_count(), 6);
  // Different seeds produce different hole placements.
  bool differs = false;
  for (const auto& hole : a.holes()) {
    for (const auto h : hole) {
      if (b.contains(h)) differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(ShapeGen, SpiralIsLongAndThin) {
  const Shape s = spiral(8);
  EXPECT_TRUE(s.is_connected());
  const int d = grid::diameter_exact(s);
  const int dg = grid::diameter_grid(s.nodes());
  // The corridor makes internal distance much larger than grid distance.
  EXPECT_GT(d, dg);
}

TEST(ShapeGen, CombTeeth) {
  const Shape s = comb(4, 3);
  EXPECT_TRUE(s.is_connected());
  EXPECT_TRUE(s.simply_connected());
  EXPECT_EQ(s.size(), static_cast<std::size_t>(7 + 4 * 3));
}

TEST(ShapeGen, RandomBlobExactSize) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Shape s = random_blob(137, seed);
    EXPECT_EQ(s.size(), 137u);
    EXPECT_TRUE(s.is_connected());
  }
}

TEST(ShapeGen, LineIsThin) {
  const Shape s = line(12);
  EXPECT_EQ(s.size(), 12u);
  EXPECT_EQ(s.outer_boundary_length(), 12);
}

}  // namespace
}  // namespace pm::shapegen
