// pm_lint test suite: one golden fixture pair per rule id (the bad file
// fires exactly the expected diagnostics, the good file is silent),
// suppression-syntax semantics, the PR 8 epoch-reuse regression fixture,
// and the tree gate itself — `lint_paths(src/)` must stay empty, and the
// acceptance mutations (delete an epoch field, reintroduce a raw clock,
// drop the StabVerdict epoch guard) must each re-light the gate.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "lint.h"

namespace {

using pm::lint::Context;
using pm::lint::Diagnostic;
using pm::lint::FileReport;
using pm::lint::Report;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string fixture(const std::string& name) {
  return read_file(std::string(PM_LINT_FIXTURES_DIR) + "/" + name);
}

// Lints one fixture under a synthetic label (the label's path components
// decide layer scoping). Context is built from the fixture itself plus the
// shared alias header, exactly like the tree walk does.
FileReport lint_fixture(const std::string& name, const std::string& label) {
  const std::string content = fixture(name);
  const std::string alias = fixture("unordered_alias.h");
  const Context ctx = pm::lint::collect_context(
      {{"src/grid/unordered_alias.h", alias}, {label, content}});
  return pm::lint::lint_source(label, content, ctx);
}

std::vector<std::pair<std::string, int>> rule_lines(const FileReport& rep) {
  std::vector<std::pair<std::string, int>> out;
  for (const Diagnostic& d : rep.diagnostics) out.emplace_back(d.rule, d.line);
  return out;
}

using RL = std::vector<std::pair<std::string, int>>;

// --- golden fixture pairs --------------------------------------------------

TEST(PmLintFixtures, WallClockBadFires) {
  const FileReport rep = lint_fixture("wall_clock_bad.cpp", "src/exec/wall_clock_bad.cpp");
  EXPECT_EQ(rule_lines(rep), (RL{{"pm-wall-clock", 5}, {"pm-wall-clock", 6}, {"pm-wall-clock", 9}}));
}

TEST(PmLintFixtures, WallClockGoodIsSilent) {
  const FileReport rep = lint_fixture("wall_clock_good.cpp", "src/exec/wall_clock_good.cpp");
  EXPECT_TRUE(rep.diagnostics.empty());
}

TEST(PmLintFixtures, WallClockChokepointIsExempt) {
  // The same offending content is sanctioned inside util/timing.h itself.
  const FileReport rep = lint_fixture("wall_clock_bad.cpp", "src/util/timing.h");
  EXPECT_TRUE(rep.diagnostics.empty());
}

TEST(PmLintFixtures, RawRandomBadFires) {
  const FileReport rep = lint_fixture("raw_random_bad.cpp", "src/core/le/raw_random_bad.cpp");
  EXPECT_EQ(rule_lines(rep), (RL{{"pm-raw-random", 6},
                                 {"pm-raw-random", 7},
                                 {"pm-raw-random", 8},
                                 {"pm-raw-random", 9}}));
}

TEST(PmLintFixtures, RawRandomGoodIsSilent) {
  const FileReport rep = lint_fixture("raw_random_good.cpp", "src/core/le/raw_random_good.cpp");
  EXPECT_TRUE(rep.diagnostics.empty());
}

TEST(PmLintFixtures, UnorderedIterBadFires) {
  const FileReport rep =
      lint_fixture("unordered_iter_bad.cpp", "src/audit/unordered_iter_bad.cpp");
  EXPECT_EQ(rule_lines(rep), (RL{{"pm-unordered-iter", 10},
                                 {"pm-unordered-iter", 11},
                                 {"pm-unordered-iter", 12}}));
}

TEST(PmLintFixtures, UnorderedIterGoodIsSilent) {
  const FileReport rep =
      lint_fixture("unordered_iter_good.cpp", "src/audit/unordered_iter_good.cpp");
  EXPECT_TRUE(rep.diagnostics.empty());
}

TEST(PmLintFixtures, UnorderedIterIsLayerScoped) {
  // The same iteration in a non-result layer (viz) is out of scope.
  const FileReport rep =
      lint_fixture("unordered_iter_bad.cpp", "src/viz/unordered_iter_bad.cpp");
  EXPECT_TRUE(rep.diagnostics.empty());
}

TEST(PmLintFixtures, FloatProtocolBadFires) {
  const FileReport rep =
      lint_fixture("float_protocol_bad.cpp", "src/core/obd/float_protocol_bad.cpp");
  EXPECT_EQ(rule_lines(rep), (RL{{"pm-float-protocol", 4},
                                 {"pm-float-protocol", 5},
                                 {"pm-float-protocol", 8},
                                 {"pm-float-protocol", 9}}));
}

TEST(PmLintFixtures, FloatProtocolGoodIsSilent) {
  const FileReport rep =
      lint_fixture("float_protocol_good.cpp", "src/core/obd/float_protocol_good.cpp");
  EXPECT_TRUE(rep.diagnostics.empty());
}

TEST(PmLintFixtures, FloatProtocolIsLayerScoped) {
  // obs/ renders telemetry; floats there are not protocol state.
  const FileReport rep =
      lint_fixture("float_protocol_bad.cpp", "src/obs/float_protocol_bad.cpp");
  EXPECT_TRUE(rep.diagnostics.empty());
}

TEST(PmLintFixtures, TokenEpochFieldBadFires) {
  const FileReport rep =
      lint_fixture("token_epoch_field_bad.h", "src/core/obd/token_epoch_field_bad.h");
  EXPECT_EQ(rule_lines(rep), (RL{{"pm-token-epoch-field", 6}}));
}

TEST(PmLintFixtures, TokenEpochFieldGoodIsSilent) {
  const FileReport rep =
      lint_fixture("token_epoch_field_good.h", "src/core/obd/token_epoch_field_good.h");
  EXPECT_TRUE(rep.diagnostics.empty());
}

// The PR 8 regression: a verdict consumption that checks phase and lane but
// never the token's epoch is exactly the comb(6,5)/spiral(6,2)/cheese(11,3)
// livelock shape. Rule T must flag it.
TEST(PmLintFixtures, EpochReuseLivelockShapeIsFlagged) {
  const FileReport rep =
      lint_fixture("token_epoch_check_bad.cpp", "src/core/obd/token_epoch_check_bad.cpp");
  EXPECT_EQ(rule_lines(rep), (RL{{"pm-token-epoch-check", 27}}));
}

TEST(PmLintFixtures, TokenEpochCheckGoodIsSilent) {
  // Epoch-guarded consumption, pure-control-flow classifiers and
  // unreachable-direction asserts must all stay clean.
  const FileReport rep =
      lint_fixture("token_epoch_check_good.cpp", "src/core/obd/token_epoch_check_good.cpp");
  EXPECT_TRUE(rep.diagnostics.empty());
}

TEST(PmLintFixtures, SwitchDefaultBadFires) {
  const FileReport rep =
      lint_fixture("switch_default_bad.cpp", "src/pipeline/switch_default_bad.cpp");
  EXPECT_EQ(rule_lines(rep), (RL{{"pm-switch-default", 11}}));
}

TEST(PmLintFixtures, SwitchDefaultGoodIsSilent) {
  const FileReport rep =
      lint_fixture("switch_default_good.cpp", "src/pipeline/switch_default_good.cpp");
  EXPECT_TRUE(rep.diagnostics.empty());
}

TEST(PmLintFixtures, SwitchExhaustiveBadFires) {
  const FileReport rep =
      lint_fixture("switch_exhaustive_bad.cpp", "src/pipeline/switch_exhaustive_bad.cpp");
  EXPECT_EQ(rule_lines(rep), (RL{{"pm-switch-exhaustive", 8}}));
}

TEST(PmLintFixtures, SwitchExhaustiveGoodIsSilent) {
  const FileReport rep =
      lint_fixture("switch_exhaustive_good.cpp", "src/pipeline/switch_exhaustive_good.cpp");
  EXPECT_TRUE(rep.diagnostics.empty());
}

// --- suppression semantics -------------------------------------------------

TEST(PmLintSuppressions, TrailingAllowGuardsItsOwnLineOnly) {
  const FileReport rep =
      lint_fixture("suppress_trailing.cpp", "src/core/le/suppress_trailing.cpp");
  EXPECT_EQ(rule_lines(rep), (RL{{"pm-float-protocol", 3}}));
  EXPECT_EQ(rep.suppressions_used, 1);
}

TEST(PmLintSuppressions, StandaloneAllowSkipsCommentsToNextCodeLine) {
  const FileReport rep =
      lint_fixture("suppress_standalone.cpp", "src/core/le/suppress_standalone.cpp");
  EXPECT_TRUE(rep.diagnostics.empty());
  EXPECT_EQ(rep.suppressions_used, 1);
}

TEST(PmLintSuppressions, AllowFileCoversTheWholeFile) {
  const FileReport rep = lint_fixture("suppress_file.cpp", "src/core/le/suppress_file.cpp");
  EXPECT_TRUE(rep.diagnostics.empty());
  EXPECT_EQ(rep.suppressions_used, 1);
}

TEST(PmLintSuppressions, MissingReasonIsADiagnostic) {
  const FileReport rep =
      lint_fixture("suppress_no_reason.cpp", "src/core/le/suppress_no_reason.cpp");
  EXPECT_EQ(rule_lines(rep), (RL{{"pm-allow-missing-reason", 2}}));
}

TEST(PmLintSuppressions, UnusedAllowIsADiagnostic) {
  const FileReport rep =
      lint_fixture("suppress_unused.cpp", "src/core/le/suppress_unused.cpp");
  EXPECT_EQ(rule_lines(rep), (RL{{"pm-unused-allow", 3}}));
}

// --- the tree gate ---------------------------------------------------------

TEST(PmLintTree, SrcTreeIsClean) {
  const Report rep = pm::lint::lint_paths({PM_LINT_SRC_DIR});
  for (const Diagnostic& d : rep.diagnostics) {
    ADD_FAILURE() << d.file << ":" << d.line << ": " << d.rule << ": " << d.message;
  }
  EXPECT_GT(rep.files_scanned, 50);
  EXPECT_GT(rep.suppressions_used, 0);
}

// Acceptance mutation 1: deleting the epoch field from a token struct must
// re-light the gate (rule pm-token-epoch-field).
TEST(PmLintTree, DeletingAnEpochFieldFails) {
  for (const char* rel : {"/core/obd/obd.h", "/zoo/zoo.h"}) {
    const std::string path = std::string(PM_LINT_SRC_DIR) + rel;
    std::string content = read_file(path);
    std::string mutated;
    std::istringstream in(content);
    std::string line;
    int removed = 0;
    while (std::getline(in, line)) {
      // Drop every epoch member declaration (int8/int32/int64 variants).
      if (line.find("epoch = 0;") != std::string::npos) {
        ++removed;
        continue;
      }
      mutated += line;
      mutated += '\n';
    }
    ASSERT_GT(removed, 0) << rel;
    const Context ctx = pm::lint::collect_context({{path, mutated}});
    const FileReport rep = pm::lint::lint_source(std::string("src") + rel, mutated, ctx);
    const bool fired = std::any_of(
        rep.diagnostics.begin(), rep.diagnostics.end(),
        [](const Diagnostic& d) { return d.rule == "pm-token-epoch-field"; });
    EXPECT_TRUE(fired) << rel << ": epoch field deleted but rule stayed silent";
  }
}

// Acceptance mutation 2: reintroducing a raw steady_clock read in protocol
// code must re-light the gate (rule pm-wall-clock).
TEST(PmLintTree, ReintroducingARawClockFails) {
  const std::string path = std::string(PM_LINT_SRC_DIR) + "/core/obd/obd.cpp";
  std::string content = read_file(path);
  content += "\nstatic const auto t0 = std::chrono::steady_clock::now();\n";
  const Context ctx = pm::lint::collect_context({{path, content}});
  const FileReport rep = pm::lint::lint_source("src/core/obd/obd.cpp", content, ctx);
  const bool fired =
      std::any_of(rep.diagnostics.begin(), rep.diagnostics.end(),
                  [](const Diagnostic& d) { return d.rule == "pm-wall-clock"; });
  EXPECT_TRUE(fired);
}

// Acceptance mutation 3: weakening the StabVerdict consumption guard back
// to the pre-PR 8 shape (no epoch comparison) must re-light rule T.
TEST(PmLintTree, DroppingTheStabVerdictEpochGuardFails) {
  const std::string path = std::string(PM_LINT_SRC_DIR) + "/core/obd/obd.cpp";
  std::string content = read_file(path);
  const std::string guard = " &&\n            t.epoch == vn.lbl_verdict";
  const std::size_t at = content.find(guard);
  ASSERT_NE(at, std::string::npos)
      << "the StabVerdict epoch guard moved; update this regression test";
  content.erase(at, guard.size());
  const Context ctx = pm::lint::collect_context({{path, content}});
  const FileReport rep = pm::lint::lint_source("src/core/obd/obd.cpp", content, ctx);
  const bool fired = std::any_of(
      rep.diagnostics.begin(), rep.diagnostics.end(), [](const Diagnostic& d) {
        return d.rule == "pm-token-epoch-check" && d.message.find("StabVerdict") != std::string::npos;
      });
  EXPECT_TRUE(fired) << "epoch guard removed but the consumption site stayed clean";
}

// --- report plumbing -------------------------------------------------------

TEST(PmLintReport, CatalogIsStable) {
  const auto& rules = pm::lint::rule_catalog();
  ASSERT_EQ(rules.size(), 10u);
  EXPECT_STREQ(rules[0].id, "pm-wall-clock");
  EXPECT_STREQ(rules[4].id, "pm-token-epoch-field");
  EXPECT_STREQ(rules[6].id, "pm-switch-default");
  EXPECT_STREQ(rules[8].id, "pm-unused-allow");
}

TEST(PmLintReport, JsonCarriesDiagnosticsAndCounts) {
  Report rep;
  rep.files_scanned = 2;
  rep.suppressions_used = 1;
  rep.diagnostics.push_back({"src/a.cpp", 7, "pm-wall-clock", "msg \"quoted\""});
  const std::string json = pm::lint::to_json(rep);
  EXPECT_NE(json.find("\"files_scanned\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"suppressions_used\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rule\": \"pm-wall-clock\""), std::string::npos) << json;
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos) << json;
}

}  // namespace
