// Fixture: token structs carry their initiator's verdict epoch, and
// non-token structs (even ones whose name merely contains "Token") are
// out of the rule's scope.
#pragma once
#include <cstdint>

struct FixtureToken {
  std::uint8_t kind = 0;
  std::int8_t value = 0;
  std::int8_t epoch = 0;  // initiator's verdict epoch at launch
};

struct Tokenizer {  // not a token struct: name does not end in "Token"
  int cursor = 0;
};
