// Fixture: every enumerator handled — clean with no default arm.
#include <cstdint>

enum class Phase : std::uint8_t { Idle, Wait, Done };

int good_code(Phase p) {
  switch (p) {
    case Phase::Idle:
      return 0;
    case Phase::Wait:
      return 1;
    case Phase::Done:
      return 2;
  }
  return 0;  // unreachable: -Wswitch keeps the cases exhaustive
}
