// Fixture: exhaustive protocol-enum switches are clean, and switches over
// plain integers (no qualified case labels) are outside the rule's scope.
#include <cstdint>

enum class Phase : std::uint8_t { Idle, Wait, Done };

int good_code(Phase p) {
  switch (p) {
    case Phase::Idle:
      return 0;
    case Phase::Wait:
      return 1;
    case Phase::Done:
      return 2;
  }
  return 0;  // unreachable: -Wswitch keeps the cases exhaustive
}

int plain_int_switch(int v) {
  switch (v) {
    case 0:
      return 10;
    default:  // not a protocol enum: default is fine here
      return 20;
  }
}
