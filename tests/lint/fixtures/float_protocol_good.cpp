// Fixture: integer-exact protocol arithmetic is the sanctioned idiom.
struct FixtureResult {
  long rounds = 0;
  long long moves = 0;
};

long good_scaled(long rounds, long units) {
  // Ratios stay integer (numerator kept scaled), as in the BENCH rows.
  return units == 0 ? 0 : (rounds * 1000) / units;
}
