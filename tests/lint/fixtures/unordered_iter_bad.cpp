// Fixture: rule pm-unordered-iter must fire on range-for and .begin() over
// unordered containers (directly typed or through a known alias).
#include <unordered_map>

#include "unordered_alias.h"

long bad_sum(const FixtureNodeSet& nodes) {
  std::unordered_map<int, long> weights;
  long total = 0;
  for (const long v : nodes) total += v;       // line 10: alias range-for
  for (const auto& kv : weights) total += kv.second;  // line 11: range-for
  auto it = weights.begin();                   // line 12: .begin()
  (void)it;
  return total;
}
