// Fixture: a stand-alone allow guards the next code line, skipping
// intervening comment lines.
// pm-lint: allow(pm-float-protocol) fixture: the declaration below is telemetry-only
// (an explanatory comment between the allow and its target is fine)
double telemetry_ms = 0.0;
