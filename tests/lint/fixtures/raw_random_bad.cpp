// Fixture: rule pm-raw-random must fire on nondeterministic sources.
#include <cstdlib>
#include <random>

int bad_roll() {
  std::random_device rd;              // line 6: random_device
  std::mt19937 gen(rd());             // line 7: mt19937
  srand(42);                          // line 8: srand
  return static_cast<int>(gen()) + rand();  // line 9: rand(
}
