// Fixture: point lookups into unordered containers are fine; only
// iteration leaks hash order into results.
#include <vector>

#include "unordered_alias.h"

long good_sum(const FixtureNodeSet& nodes, const std::vector<long>& order) {
  long total = 0;
  for (const long v : order) {          // ordered container: clean
    if (nodes.contains(v)) total += v;  // point query: clean
  }
  if (nodes.count(0) != 0) ++total;
  return total;
}
