// Fixture: rule pm-token-epoch-check — the PR 8 epoch-reuse livelock,
// distilled. A StabVerdict launched under a superseded comparison epoch is
// trusted because only the phase and lane index are checked; the verdict
// resets the head to Idle, the watchdog relaunches, and the ring livelocks
// (observed on comb(6,5), spiral(6,2), cheese(11,3) before the epoch
// guard). The rule must flag every such consumption site.
#include <cstdint>

enum class Kind : std::uint8_t { LenCreate, LenResult, StabProbe, StabVerdict };

struct Token {
  Kind kind{};
  std::int8_t value = 0;
  std::uint8_t lane = 0;
  std::int8_t epoch = 0;
};

struct Head {
  bool stab_wait = false;
  std::uint8_t stab_j = 0;
  std::int8_t lbl_verdict = 0;
  bool stable = false;
};

void consume(Head& vn, const Token& t) {
  switch (t.kind) {
    case Kind::StabVerdict:  // line 27: acts on the verdict, never reads t.epoch
      if (vn.stab_wait && vn.stab_j == t.lane) {
        if (t.value != 0) {
          ++vn.stab_j;
        } else {
          vn.stab_wait = false;  // stale verdict resets a live comparison
        }
      }
      return;
    case Kind::LenCreate:
    case Kind::LenResult:
    case Kind::StabProbe:
      return;
  }
}
