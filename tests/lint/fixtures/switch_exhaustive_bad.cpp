// Fixture: rule pm-switch-exhaustive — no default, but the case list
// misses enumerators of the (unambiguously) matching enum.
#include <cstdint>

enum class Phase : std::uint8_t { Idle, Wait, Done };

int bad_code(Phase p) {
  switch (p) {  // line 8: misses Wait, Done
    case Phase::Idle:
      return 0;
  }
  return 1;
}
