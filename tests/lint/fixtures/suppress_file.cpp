// Fixture: allow-file covers every diagnostic of the rule in the file.
// pm-lint: allow-file(pm-float-protocol) fixture: calibration shim, floats never serialized
double a = 1.0;
double b = 2.0;

double sum() { return a + b; }
