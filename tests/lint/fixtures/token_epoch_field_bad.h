// Fixture: rule pm-token-epoch-field — a protocol token struct without an
// epoch field is exactly how the PR 8 livelock family became expressible.
#pragma once
#include <cstdint>

struct FixtureToken {  // line 6: no epoch member
  std::uint8_t kind = 0;
  std::int8_t value = 0;
  std::uint8_t lane = 0;
};
