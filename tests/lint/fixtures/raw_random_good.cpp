// Fixture: seeded repo RNG and near-miss identifiers stay clean.
int good_roll(int seed) {
  // `rand` only fires as a call: these identifiers must not match.
  int grand_total = seed;
  int operand = 2;
  int rand_like_name = grand_total + operand;
  return rand_like_name;
}
