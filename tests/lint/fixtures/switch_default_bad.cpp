// Fixture: rule pm-switch-default — a default arm in a protocol-enum
// switch silently swallows enumerators added later.
#include <cstdint>

enum class Phase : std::uint8_t { Idle, Wait, Done };

int bad_code(Phase p) {
  switch (p) {
    case Phase::Idle:
      return 0;
    default:  // line 11: swallows Wait, Done and anything added later
      return 1;
  }
}
