// Fixture: the sanctioned idiom — timing flows through util/timing.h.
#include "util/timing.h"

double good_elapsed(pm::WallClock::time_point t0) {
  // "steady_clock" inside a comment or string must not trip the rule:
  const char* doc = "never call steady_clock directly";
  (void)doc;
  return pm::ms_since(t0);
}
