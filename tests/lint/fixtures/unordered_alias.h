// Fixture header: alias that collect_context must resolve to an unordered
// container (mirrors grid::NodeSet).
#pragma once
#include <unordered_set>

using FixtureNodeSet = std::unordered_set<long>;
