// Fixture: rule pm-wall-clock must fire on every raw clock source.
#include <chrono>

long bad_now_ms() {
  const auto t0 = std::chrono::steady_clock::now();  // line 5: steady_clock
  const auto t1 = std::chrono::system_clock::now();  // line 6: system_clock
  (void)t1;
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::high_resolution_clock::now() - t0)  // line 9
      .count();
}
