// Fixture: the epoch-guarded consumption idiom, plus the two sanctioned
// non-consumption shapes — pure-control-flow classifier blocks and
// unreachable-direction asserts — which must stay clean.
#include <cstdint>

#define PM_CHECK_MSG(cond, msg) ((void)(cond))

enum class Kind : std::uint8_t { LenCreate, LenResult, StabProbe, StabVerdict };

struct Token {
  Kind kind{};
  std::int8_t value = 0;
  std::uint8_t lane = 0;
  std::int8_t epoch = 0;
};

struct Head {
  bool stab_wait = false;
  std::uint8_t stab_j = 0;
  std::int8_t lbl_verdict = 0;
};

void consume(Head& vn, const Token& t) {
  switch (t.kind) {
    case Kind::StabVerdict:
      // The guard reads the token's epoch before acting on the verdict.
      if (vn.stab_wait && vn.stab_j == t.lane && t.epoch == vn.lbl_verdict) {
        ++vn.stab_j;
      }
      return;
    case Kind::LenResult:
      PM_CHECK_MSG(false, "ccw-only token travelling clockwise");
      return;
    case Kind::LenCreate:
    case Kind::StabProbe:
      return;
  }
}

// Classification helpers whose verdict cases are pure control flow do not
// consume tokens and must not be flagged.
bool keyed_by_epoch(Kind k) {
  switch (k) {
    case Kind::LenResult:
    case Kind::StabVerdict:
      return true;
    case Kind::LenCreate:
    case Kind::StabProbe:
      return false;
  }
  return false;
}
