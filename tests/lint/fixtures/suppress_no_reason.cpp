// Fixture: an allow without a written reason is itself a diagnostic.
double x = 0.5;  // pm-lint: allow(pm-float-protocol)
