// Fixture: rule pm-float-protocol must fire on any float type in a
// protocol/result layer (the label decides the layer).
struct FixtureResult {
  double rounds_per_unit = 0.0;  // line 4: double
  float load = 0.0f;             // line 5: float
};

double bad_ratio(long rounds, long units) {  // line 8: double
  return static_cast<double>(rounds) / static_cast<double>(units);  // line 9
}
