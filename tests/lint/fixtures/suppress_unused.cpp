// Fixture: an allow that matches no diagnostic is itself a diagnostic, so
// stale suppressions cannot accumulate.
long x = 1;  // pm-lint: allow(pm-float-protocol) fixture: nothing to suppress here
