// Fixture: a trailing allow with a reason suppresses exactly its own line.
double scaled(long v) {  // pm-lint: allow(pm-float-protocol) fixture: documented reason on the same line
  return static_cast<double>(v);  // line 3: NOT suppressed — still fires
}
