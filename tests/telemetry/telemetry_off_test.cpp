// The compile-out flavor: defining PM_TELEMETRY_DISABLED before including
// telemetry.h must select the constexpr no-op stubs, so instrumented call
// sites type-check and cost nothing. Linking against the live pm_core is
// safe by design — the stub lives in a distinct inline namespace, so these
// calls never collide with the real registry symbols. This is the same
// header view every translation unit gets under -DPM_TELEMETRY=OFF.
#define PM_TELEMETRY_DISABLED 1
#include "telemetry/telemetry.h"

#include <gtest/gtest.h>

namespace pm::telemetry {
namespace {

// The whole point: handles are constexpr-constructible and the ops are
// no-ops, so the optimizer deletes the instrumentation entirely.
constexpr Counter kCounter("off.counter");
constexpr Gauge kGauge("off.gauge");
constexpr Histogram kHistogram("off.hist", Kind::Time);

TEST(TelemetryOffTest, InstrumentSitesCompileToNoOps) {
  kCounter.add(5);
  kCounter.inc();
  kGauge.record_max(7);
  kHistogram.observe(123);
  add_count("off.byname", 1);
  observe_value("off.byname.hist", 2);
  gauge_max("off.byname.gauge", 3);
  SUCCEED();  // compiling (and doing nothing) is the assertion
}

TEST(TelemetryOffTest, LevelIsPinnedOff) {
  set_level(2);  // a stub: cannot turn anything on
  static_assert(level() == 0);
  static_assert(!enabled());
  static_assert(!detail());
}

TEST(TelemetryOffTest, HarvestIsEmptyAndResetIsSafe) {
  kCounter.add(1);
  EXPECT_TRUE(harvest().empty());
  reset();
  EXPECT_TRUE(harvest().empty());
}

TEST(TelemetryOffTest, SerializersStillWork) {
  // Serialization is shared infrastructure (pm_diff, artifact readers use
  // it); it must stay available even when collection is compiled out.
  MetricValue m;
  m.name = "off.sample";
  m.value = 9;
  const std::string json = to_json_object(m, /*with_time=*/true);
  EXPECT_NE(json.find("\"name\": \"off.sample\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"value\": 9"), std::string::npos) << json;
  EXPECT_GE(peak_rss_kb(), 0);
}

}  // namespace
}  // namespace pm::telemetry
