// The telemetry registry: counter/gauge/histogram semantics, power-of-two
// bucketing, shard-merge determinism across thread counts and interleavings,
// the count-vs-time serialization contract, and peak-RSS sampling.
#include "telemetry/telemetry.h"

#include <gtest/gtest.h>

#include "util/check.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace pm::telemetry {
namespace {

const MetricValue* find(const std::vector<MetricValue>& metrics, const std::string& name) {
  for (const MetricValue& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

// Every test starts from a clean slate; registrations persist (slots are
// process-wide), values do not.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }
};

TEST_F(TelemetryTest, CountersAccumulateAndHarvestSorted) {
  static const Counter a("test.alpha");
  static const Counter b("test.beta");
  b.add(5);
  a.inc();
  a.add(2);
  const auto metrics = harvest();
  const MetricValue* ma = find(metrics, "test.alpha");
  const MetricValue* mb = find(metrics, "test.beta");
  ASSERT_NE(ma, nullptr);
  ASSERT_NE(mb, nullptr);
  EXPECT_EQ(ma->value, 3u);
  EXPECT_EQ(mb->value, 5u);
  EXPECT_EQ(ma->type, Type::Counter);
  EXPECT_EQ(ma->kind, Kind::Count);
  // Name-sorted: the harvest order is part of the byte-diffable contract.
  EXPECT_TRUE(std::is_sorted(metrics.begin(), metrics.end(),
                             [](const MetricValue& x, const MetricValue& y) {
                               return x.name < y.name;
                             }));
}

TEST_F(TelemetryTest, GaugeMergesByMaximum) {
  static const Gauge g("test.gauge");
  g.record_max(7);
  g.record_max(3);
  g.record_max(11);
  g.record_max(2);
  const auto metrics = harvest();
  const MetricValue* m = find(metrics, "test.gauge");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->type, Type::Gauge);
  EXPECT_EQ(m->value, 11u);
}

TEST_F(TelemetryTest, PowerOfTwoBucketBoundaries) {
  EXPECT_EQ(bucket_index(0), 0);
  EXPECT_EQ(bucket_index(1), 1);
  EXPECT_EQ(bucket_index(2), 2);
  EXPECT_EQ(bucket_index(3), 2);
  EXPECT_EQ(bucket_index(4), 3);
  EXPECT_EQ(bucket_index(7), 3);
  EXPECT_EQ(bucket_index(8), 4);
  EXPECT_EQ(bucket_index((1ull << 63) - 1), 63);
  EXPECT_EQ(bucket_index(1ull << 63), 64);
  EXPECT_EQ(bucket_index(~0ull), 64);
  static_assert(kHistogramBuckets == 65);
}

TEST_F(TelemetryTest, HistogramCountsSumsAndBuckets) {
  static const Histogram h("test.hist");
  for (const std::uint64_t v : {0ull, 1ull, 1ull, 3ull, 8ull}) h.observe(v);
  const auto metrics = harvest();
  const MetricValue* m = find(metrics, "test.hist");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->type, Type::Histogram);
  EXPECT_EQ(m->count, 5u);
  EXPECT_EQ(m->sum, 13u);
  // buckets: [0]=1 (value 0), [1]=2 (two 1s), [2]=1 (value 3), [3]=0,
  // [4]=1 (value 8); trailing zeros trimmed.
  const std::vector<std::uint64_t> expect = {1, 2, 1, 0, 1};
  EXPECT_EQ(m->buckets, expect);
}

TEST_F(TelemetryTest, ShardMergeIsThreadCountAndOrderInvariant) {
  // The same logical workload split across 1, 2, 5, and 13 threads must
  // harvest identically: counters and buckets merge by commutative sums.
  constexpr std::uint64_t kTotal = 13 * 5 * 2 * 3 * 7;  // divisible by every split below
  std::vector<MetricValue> reference;
  for (const int threads : {1, 2, 5, 13}) {
    reset();
    const std::uint64_t per = kTotal / static_cast<std::uint64_t>(threads);
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      // Thread t covers the global index range [t*per, (t+1)*per): the
      // multiset of observed values is the same for every split.
      workers.emplace_back([t, per] {
        static const Counter c("test.merge.count");
        static const Histogram h("test.merge.hist");
        static const Gauge g("test.merge.gauge");
        const std::uint64_t lo = static_cast<std::uint64_t>(t) * per;
        for (std::uint64_t i = lo; i < lo + per; ++i) {
          c.inc();
          h.observe(i % 9);
          g.record_max(i % 101);
        }
      });
    }
    for (std::thread& w : workers) w.join();
    const auto metrics = harvest();
    const MetricValue* c = find(metrics, "test.merge.count");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->value, kTotal) << threads << " threads";
    if (reference.empty()) {
      reference = metrics;
    } else {
      ASSERT_EQ(metrics.size(), reference.size()) << threads << " threads";
      for (std::size_t i = 0; i < metrics.size(); ++i) {
        EXPECT_EQ(metrics[i].name, reference[i].name);
        EXPECT_EQ(metrics[i].value, reference[i].value) << metrics[i].name;
        EXPECT_EQ(metrics[i].count, reference[i].count) << metrics[i].name;
        EXPECT_EQ(metrics[i].sum, reference[i].sum) << metrics[i].name;
        EXPECT_EQ(metrics[i].buckets, reference[i].buckets) << metrics[i].name;
      }
    }
  }
}

TEST_F(TelemetryTest, HarvestSurvivesWriterThreadExit) {
  // A thread's shard must outlive the thread: totals written by an exited
  // thread are merged into the retired store, not lost.
  std::thread([] {
    static const Counter c("test.retired");
    c.add(42);
  }).join();
  const auto metrics = harvest();
  const MetricValue* m = find(metrics, "test.retired");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->value, 42u);
}

TEST_F(TelemetryTest, ResetZeroesValuesButKeepsRegistrations) {
  static const Counter c("test.reset");
  c.add(9);
  reset();
  c.add(4);  // the handle's slot survives the reset
  const auto metrics = harvest();
  const MetricValue* m = find(metrics, "test.reset");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->value, 4u);
}

TEST_F(TelemetryTest, ByNameSlowPathMatchesHandles) {
  add_count("test.byname", 3);
  add_count("test.byname", 4);
  observe_value("test.byname.hist", 6);
  gauge_max("test.byname.gauge", 17);
  const auto metrics = harvest();
  EXPECT_EQ(find(metrics, "test.byname")->value, 7u);
  EXPECT_EQ(find(metrics, "test.byname.hist")->count, 1u);
  EXPECT_EQ(find(metrics, "test.byname.gauge")->value, 17u);
}

TEST_F(TelemetryTest, TimeKindIsScrubbedWithoutWallCountKindSurvives) {
  static const Counter wall("test.scrub.wall_ns", Kind::Time);
  static const Histogram lat("test.scrub.lat_ns", Kind::Time);
  static const Counter rounds("test.scrub.rounds");
  wall.add(123456);
  lat.observe(999);
  lat.observe(1999);
  rounds.add(2);
  const auto metrics = harvest();

  const std::string timed_json = to_json_object(*find(metrics, "test.scrub.lat_ns"),
                                                /*with_time=*/true);
  EXPECT_NE(timed_json.find("\"sum\": 2998"), std::string::npos) << timed_json;

  // with_time=false: values zeroed, the (deterministic) observation count
  // survives, and the counter keeps nothing.
  const std::string scrubbed = to_json_object(*find(metrics, "test.scrub.lat_ns"),
                                              /*with_time=*/false);
  EXPECT_NE(scrubbed.find("\"count\": 2"), std::string::npos) << scrubbed;
  EXPECT_NE(scrubbed.find("\"sum\": 0"), std::string::npos) << scrubbed;
  EXPECT_NE(scrubbed.find("\"buckets\": []"), std::string::npos) << scrubbed;
  const std::string wall_scrubbed = to_json_object(*find(metrics, "test.scrub.wall_ns"),
                                                   /*with_time=*/false);
  EXPECT_NE(wall_scrubbed.find("\"value\": 0"), std::string::npos) << wall_scrubbed;
  // Count-kind is never scrubbed.
  const std::string counted = to_json_object(*find(metrics, "test.scrub.rounds"),
                                             /*with_time=*/false);
  EXPECT_NE(counted.find("\"value\": 2"), std::string::npos) << counted;
}

TEST_F(TelemetryTest, NdjsonTagsEveryLineWithTheLabel) {
  add_count("test.ndjson.a", 1);
  add_count("test.ndjson.b", 2);
  const std::string nd = to_ndjson(harvest(), "suite-x", /*with_time=*/true);
  std::size_t lines = 0;
  std::size_t pos = 0;
  while ((pos = nd.find('\n', pos)) != std::string::npos) {
    ++lines;
    ++pos;
  }
  EXPECT_GE(lines, 2u);
  EXPECT_NE(nd.find("{\"label\": \"suite-x\", \"name\": \"test.ndjson.a\""),
            std::string::npos)
      << nd;
}

TEST_F(TelemetryTest, RuntimeLevelsGateEnabledAndDetail) {
  EXPECT_EQ(level(), 0);
  EXPECT_FALSE(enabled());
  EXPECT_FALSE(detail());
  set_level(1);
  EXPECT_TRUE(enabled());
  EXPECT_FALSE(detail());
  set_level(2);
  EXPECT_TRUE(detail());
  set_level(0);
  EXPECT_FALSE(enabled());
}

TEST_F(TelemetryTest, PeakRssIsPositiveOnLinux) {
#if defined(__linux__)
  const long kb = peak_rss_kb();
  EXPECT_GT(kb, 0);
  // Monotone: the high-water mark cannot shrink.
  EXPECT_GE(peak_rss_kb(), kb);
#else
  EXPECT_GE(peak_rss_kb(), 0);
#endif
}

TEST_F(TelemetryTest, MismatchedReregistrationFailsLoudly) {
  static const Counter c("test.conflict");
  (void)c;
  EXPECT_THROW(Histogram("test.conflict"), CheckError);
  EXPECT_THROW(Counter("test.conflict", Kind::Time), CheckError);
}

}  // namespace
}  // namespace pm::telemetry
