// Algorithm Collect (paper §4.3): reconnection after DLE, phase doubling
// (Lemma 21 / Corollary 22), termination with a connected system
// (Lemma 20, Theorem 23) and the O(D_G) round bound.
#include "core/collect/collect.h"

#include <gtest/gtest.h>

#include <string>

#include "core/dle/dle.h"
#include "grid/metrics.h"
#include "shapegen/shapegen.h"

namespace pm::core {
namespace {

using amoebot::Order;
using amoebot::ParticleId;
using amoebot::System;
using grid::Node;
using grid::Shape;

struct FullRun {
  System<DleState> sys;
  CollectRun::Result collect;
  Node l{};
  int ecc = 0;
  long dle_rounds = 0;
};

FullRun dle_then_collect(const Shape& shape, std::uint64_t seed) {
  Rng rng(seed);
  FullRun out{Dle::make_system(shape, rng), {}, {}, 0, 0};
  Dle algo;
  const auto res = amoebot::run(out.sys, algo, {Order::RandomPerm, seed + 1, 1'000'000});
  EXPECT_TRUE(res.completed);
  out.dle_rounds = res.rounds;
  const ElectionOutcome o = election_outcome(out.sys);
  EXPECT_EQ(o.leaders, 1);
  out.l = out.sys.body(o.leader).head;
  out.ecc = grid::eccentricity_grid(out.l, shape.nodes());
  CollectRun collect(out.sys, o.leader);
  out.collect = collect.run();
  return out;
}

void expect_reconnected(const FullRun& r) {
  EXPECT_TRUE(r.collect.completed);
  EXPECT_EQ(r.collect.collected, r.sys.particle_count()) << "not all particles collected";
  EXPECT_EQ(r.sys.component_count(), 1) << "system not connected after Collect";
  EXPECT_TRUE(r.sys.all_contracted());
}

TEST(Collect, SingleParticle) {
  const auto r = dle_then_collect(shapegen::line(1), 1);
  expect_reconnected(r);
  EXPECT_EQ(r.collect.phases, 1);  // one empty phase, then termination
}

TEST(Collect, TwoParticles) {
  const auto r = dle_then_collect(shapegen::line(2), 2);
  expect_reconnected(r);
}

struct CollectCase {
  std::string name;
  Shape shape;
  std::uint64_t seed;
};

class CollectSweep : public ::testing::TestWithParam<int> {};

TEST_P(CollectSweep, ReconnectsEveryFamily) {
  const std::uint64_t s = static_cast<std::uint64_t>(GetParam());
  const std::vector<CollectCase> cases = {
      {"line", shapegen::line(6 + static_cast<int>(s) * 3), s},
      {"hexagon", shapegen::hexagon(2 + static_cast<int>(s) % 5), s},
      {"thin_ring", shapegen::annulus(4 + static_cast<int>(s) % 6, 3 + static_cast<int>(s) % 6), s},
      {"cheese", shapegen::swiss_cheese(5 + static_cast<int>(s) % 4, 1 + static_cast<int>(s) % 4, s), s},
      {"blob", shapegen::random_blob(60 + 17 * static_cast<int>(s), s), s},
      {"comb", shapegen::comb(3 + static_cast<int>(s) % 4, 4), s},
      {"spiral", shapegen::spiral(3 + static_cast<int>(s) % 5), s},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.name);
    const auto r = dle_then_collect(c.shape, c.seed);
    expect_reconnected(r);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CollectSweep, ::testing::Range(1, 9));

TEST(Collect, PhaseCountIsLogarithmicInEccentricity) {
  // Corollary 22: the stem doubles each phase, so phases <= log2(ε) + 2
  // (one extra phase detects termination).
  for (const int n : {50, 150, 400, 900}) {
    const auto r = dle_then_collect(shapegen::random_blob(n, 77), 5);
    expect_reconnected(r);
    int bound = 2;
    int e = std::max(1, r.ecc);
    while (e > 1) {
      e /= 2;
      ++bound;
    }
    EXPECT_LE(r.collect.phases, bound) << "n=" << n << " ecc=" << r.ecc;
  }
}

TEST(Collect, RoundsLinearInEccentricity) {
  // Theorem 23: O(D_G) rounds. ε_G(l) <= D_G; the engine's constant (six
  // rotations, Detect charges, absorption waves) is below 250 per unit.
  for (const int n : {100, 400, 1200}) {
    const auto r = dle_then_collect(shapegen::random_blob(n, 31), 9);
    expect_reconnected(r);
    EXPECT_LE(r.collect.rounds, 250L * (r.ecc + 1) + 100)
        << "n=" << n << " ecc=" << r.ecc << " rounds=" << r.collect.rounds;
  }
}

TEST(Collect, ReconnectsTheDisconnectedThinRing) {
  // The thin annulus is the configuration DLE demonstrably disconnects
  // (see dle_test); Collect must stitch it back together.
  const auto r = dle_then_collect(shapegen::annulus(8, 7), 13);
  expect_reconnected(r);
}

TEST(Collect, DlePlusCollectLeavesUniqueLeader) {
  const auto r = dle_then_collect(shapegen::swiss_cheese(7, 4, 3), 17);
  expect_reconnected(r);
  const ElectionOutcome o = election_outcome(r.sys);
  EXPECT_EQ(o.leaders, 1);
  EXPECT_EQ(o.followers, r.sys.particle_count() - 1);
}

TEST(Collect, StageCallbackReportsPhases) {
  Rng rng(3);
  auto sys = Dle::make_system(shapegen::hexagon(2), rng);
  Dle algo;
  amoebot::run(sys, algo, {Order::RandomPerm, 4, 100'000});
  const ElectionOutcome o = election_outcome(sys);
  CollectRun collect(sys, o.leader);
  int phase_starts = 0;
  bool saw_done = false;
  std::vector<std::string> stages;
  collect.on_stage = [&](const char* st, int) {
    stages.emplace_back(st);
    if (stages.back() == "phase-start") ++phase_starts;
    if (stages.back() == "done") saw_done = true;
  };
  const auto res = collect.run();
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(phase_starts, res.phases);
  EXPECT_TRUE(saw_done);
  // Every phase runs the three steps in order.
  EXPECT_NE(std::find(stages.begin(), stages.end(), "omp-contract"), stages.end());
  EXPECT_NE(std::find(stages.begin(), stages.end(), "prp-move"), stages.end());
  EXPECT_NE(std::find(stages.begin(), stages.end(), "sdp-expand"), stages.end());
}

TEST(Collect, RequiresContractedLeader) {
  Rng rng(1);
  auto sys = System<DleState>::from_shape(shapegen::line(3), rng);
  sys.expand(0, grid::Node{0, -1});
  EXPECT_THROW(CollectRun(sys, 0), CheckError);
}

// Collect consumes only the breadcrumb property, not a full DLE run: a
// hand-built sparse configuration with one particle at every distance
// (Lemma 19's guarantee) must also reconnect.
class BreadcrumbOnly : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BreadcrumbOnly, CollectsSyntheticBreadcrumbTrails) {
  Rng rng(GetParam());
  amoebot::System<DleState> sys;
  // Leader at origin; one contracted particle at every distance 1..m along
  // randomly chosen rays (plus occasional extras).
  const int m = 9;
  std::vector<Node> used{{0, 0}};
  const ParticleId leader =
      sys.add_particle({0, 0}, static_cast<std::uint8_t>(rng.below(6)));
  (void)leader;
  for (int d = 1; d <= m; ++d) {
    const auto dir = grid::dir_from_index(static_cast<int>(rng.below(6)));
    Node v{0, 0};
    for (int t = 0; t < d; ++t) v = grid::neighbor(v, dir);
    if (!sys.occupied(v)) sys.add_particle(v, static_cast<std::uint8_t>(rng.below(6)));
  }
  CollectRun collect(sys, 0);
  const auto res = collect.run();
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.collected, sys.particle_count());
  EXPECT_EQ(sys.component_count(), 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BreadcrumbOnly, ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace pm::core
