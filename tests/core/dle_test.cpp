// Algorithm DLE (paper §4.1-4.2): correctness (Theorem 12), the Lemma 11
// run-time invariants, the breadcrumb property (Lemma 19), the O(D_A) round
// bound (Theorem 18), and the disconnection behaviour the paper leverages.
#include "core/dle/dle.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "grid/local_boundary.h"
#include "grid/metrics.h"
#include "shapegen/shapegen.h"

namespace pm::core {
namespace {

using amoebot::Order;
using amoebot::ParticleId;
using amoebot::RunOptions;
using amoebot::RunResult;
using amoebot::System;
using grid::Node;
using grid::NodeSet;
using grid::Shape;

struct DleRun {
  System<DleState> sys;
  RunResult res;
  Shape initial;
};

DleRun run_dle(const Shape& shape, Order order, std::uint64_t seed,
               Dle::Options opts = {}, long max_rounds = 1'000'000) {
  Rng rng(seed);
  DleRun out{Dle::make_system(shape, rng), {}, shape};
  Dle algo(opts);
  out.res = run(out.sys, algo, {order, seed + 1, max_rounds});
  return out;
}

void expect_unique_leader(const DleRun& r) {
  ASSERT_TRUE(r.res.completed);
  const ElectionOutcome o = election_outcome(r.sys);
  EXPECT_EQ(o.leaders, 1);
  EXPECT_EQ(o.undecided, 0);
  EXPECT_EQ(o.followers, r.sys.particle_count() - 1);
  EXPECT_TRUE(r.sys.all_contracted());
}

TEST(Dle, SingleParticleBecomesLeader) {
  const auto r = run_dle(shapegen::line(1), Order::RoundRobin, 1);
  expect_unique_leader(r);
  EXPECT_LE(r.res.rounds, 2);
}

TEST(Dle, TwoParticles) {
  const auto r = run_dle(shapegen::line(2), Order::RandomPerm, 2);
  expect_unique_leader(r);
}

struct FamilyCase {
  const char* name;
  int scale;
  Order order;
  std::uint64_t seed;
};

class DleFamilySweep : public ::testing::TestWithParam<FamilyCase> {};

TEST_P(DleFamilySweep, UniqueLeaderOnEveryFamilyAndOrder) {
  const FamilyCase& c = GetParam();
  for (const auto& [name, shape] : shapegen::standard_family(c.scale, c.seed)) {
    SCOPED_TRACE(name);
    const auto r = run_dle(shape, c.order, c.seed);
    expect_unique_leader(r);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DleFamilySweep,
    ::testing::Values(FamilyCase{"rr", 5, Order::RoundRobin, 3},
                      FamilyCase{"perm5", 5, Order::RandomPerm, 11},
                      FamilyCase{"perm6", 6, Order::RandomPerm, 12},
                      FamilyCase{"stream", 4, Order::RandomStream, 13},
                      FamilyCase{"perm7", 7, Order::RandomPerm, 14}),
    [](const auto& info) { return std::string(info.param.name); });

// --- Lemma 11: the four invariants hold after every activation ---

class Lemma11Sweep : public ::testing::TestWithParam<int> {};

TEST_P(Lemma11Sweep, InvariantsHoldThroughout) {
  Shape shape = [&]() -> Shape {
    switch (GetParam()) {
      case 0: return shapegen::hexagon(3);
      case 1: return shapegen::annulus(4, 1);
      case 2: return shapegen::swiss_cheese(5, 3, 9);
      case 3: return shapegen::comb(4, 4);
      default: return shapegen::random_blob(60, static_cast<std::uint64_t>(GetParam()));
    }
  }();
  Rng rng(17);
  auto sys = Dle::make_system(shape, rng);
  Dle algo;

  // Oracle: track S_e (initially the area), removing points as they erode.
  const Shape area = shape.area();
  NodeSet se;
  for (const Node v : area.nodes()) se.insert(v);
  algo.on_erode = [&](Node v) {
    ASSERT_TRUE(se.contains(v)) << "eroded a non-eligible point";
    se.erase(v);
  };

  long long checks = 0;
  auto hook = [&](System<DleState>& s, ParticleId) {
    ++checks;
    std::vector<Node> se_nodes(se.begin(), se.end());
    const Shape se_shape(se_nodes);
    // (2) S_e is simply-connected and non-empty.
    ASSERT_FALSE(se_shape.empty());
    ASSERT_TRUE(se_shape.is_connected());
    ASSERT_TRUE(se_shape.simply_connected());
    for (ParticleId p = 0; p < s.particle_count(); ++p) {
      const auto& body = s.body(p);
      // (1) expanded particle: head in S_e, tail not.
      if (body.expanded()) {
        ASSERT_TRUE(se.contains(body.head));
        ASSERT_FALSE(se.contains(body.tail));
      }
      // (4) eligible flags consistent with S_e at the head.
      const auto& st = s.state(p);
      for (int i = 0; i < 6; ++i) {
        const Node u = grid::neighbor(body.head, s.port_dir(p, i));
        ASSERT_EQ(st.eligible[static_cast<std::size_t>(i)], se.contains(u))
            << "particle " << p << " port " << i;
      }
    }
    // (3) boundary points of S_e are occupied.
    for (const Node v : se_shape.boundary_points()) {
      ASSERT_TRUE(s.occupied(v)) << "unoccupied S_e boundary point";
    }
  };

  const RunResult res = run(sys, algo, {Order::RandomPerm, 23, 100'000}, hook);
  ASSERT_TRUE(res.completed);
  EXPECT_GT(checks, 0);
  EXPECT_EQ(se.size(), 1u);  // exactly the leader's point remains eligible
  const ElectionOutcome o = election_outcome(sys);
  EXPECT_EQ(o.leaders, 1);
  EXPECT_TRUE(se.contains(sys.body(o.leader).head));
}

INSTANTIATE_TEST_SUITE_P(Shapes, Lemma11Sweep, ::testing::Range(0, 8));

// --- Lemma 19: breadcrumbs at every grid distance from the leader ---

class BreadcrumbSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BreadcrumbSweep, ContractedParticleAtEveryDistance) {
  const Shape shape = (GetParam() % 2 == 0)
                          ? shapegen::swiss_cheese(6, 4, GetParam())
                          : shapegen::random_blob(150, GetParam());
  const auto r = run_dle(shape, Order::RandomPerm, GetParam() * 7 + 1);
  ASSERT_TRUE(r.res.completed);
  const ElectionOutcome o = election_outcome(r.sys);
  ASSERT_EQ(o.leaders, 1);
  const Node l = r.sys.body(o.leader).head;
  const int ecc = grid::eccentricity_grid(l, r.initial.nodes());

  std::set<int> occupied_distances;
  int beyond = 0;
  for (ParticleId p = 0; p < r.sys.particle_count(); ++p) {
    ASSERT_FALSE(r.sys.body(p).expanded());
    const int d = grid::grid_distance(l, r.sys.body(p).head);
    occupied_distances.insert(d);
    if (d > ecc) ++beyond;
  }
  for (int i = 0; i <= ecc; ++i) {
    EXPECT_TRUE(occupied_distances.contains(i)) << "no particle at distance " << i;
  }
  EXPECT_EQ(beyond, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BreadcrumbSweep, ::testing::Range<std::uint64_t>(1, 11));

// --- Theorem 18: O(D_A) rounds ---

TEST(Dle, LinearRoundBoundAcrossFamilies) {
  for (const auto& [name, shape] : shapegen::standard_family(7, 31)) {
    SCOPED_TRACE(name);
    const int d_area = grid::diameter_area_exact(shape);
    for (const Order order : {Order::RoundRobin, Order::RandomPerm}) {
      const auto r = run_dle(shape, order, 5);
      ASSERT_TRUE(r.res.completed);
      EXPECT_LE(r.res.rounds, 12 * d_area + 16)
          << "rounds " << r.res.rounds << " vs D_A " << d_area;
    }
  }
}

TEST(Dle, AnnulusRoundsScaleWithAreaDiameterNotShapeDiameter) {
  // Thin annulus: D ~ half the circumference, D_A = 2R. DLE must track D_A.
  const Shape ring = shapegen::annulus(10, 7);
  const int d_area = grid::diameter_area_exact(ring);   // 20
  const int d = grid::diameter_exact(ring);             // ~30+
  ASSERT_GT(d, d_area);
  const auto r = run_dle(ring, Order::RandomPerm, 3);
  ASSERT_TRUE(r.res.completed);
  EXPECT_LE(r.res.rounds, 12 * d_area + 16);
}

// --- Disconnection: the paper's enabling mechanism actually occurs ---

TEST(Dle, SystemDisconnectsOnHoleyShapes) {
  // A thin ring leaves too few particles to keep trails attached while the
  // erosion marches inward — the movers abandon breadcrumb followers, which
  // is precisely the temporary disconnection the paper exploits. (On thick
  // shapes the follower shell keeps everything attached and no disconnection
  // occurs.)
  Rng rng(5);
  auto sys = Dle::make_system(shapegen::annulus(6, 5), rng);
  Dle algo;
  int max_components = 0;
  auto hook = [&](System<DleState>& s, ParticleId) {
    max_components = std::max(max_components, s.component_count());
  };
  const RunResult res = run(sys, algo, {Order::RandomPerm, 6, 100'000}, hook);
  ASSERT_TRUE(res.completed);
  max_components = std::max(max_components, 0);
  EXPECT_GT(max_components, 1) << "expected temporary disconnection on an annulus";
  // ...and the run still elects a unique leader (DLE's predicate).
  EXPECT_EQ(election_outcome(sys).leaders, 1);
}

// --- Connected-pull ablation (paper Remark §4.2.1) ---

class PullVariantSweep : public ::testing::TestWithParam<int> {};

TEST_P(PullVariantSweep, StaysConnectedAndElectsUniqueLeader) {
  const Shape shape = [&]() -> Shape {
    switch (GetParam()) {
      case 0: return shapegen::annulus(4, 1);
      case 1: return shapegen::annulus(5, 2);
      case 2: return shapegen::swiss_cheese(5, 2, 4);
      default: return shapegen::swiss_cheese(6, 3, static_cast<std::uint64_t>(GetParam()));
    }
  }();
  Rng rng(29);
  auto sys = Dle::make_system(shape, rng);
  Dle algo({.connected_pull = true});
  int worst_components = 1;
  long long step = 0;
  auto hook = [&](System<DleState>& s, ParticleId) {
    if (++step % 8 == 0) worst_components = std::max(worst_components, s.component_count());
  };
  const RunResult res = run(sys, algo, {Order::RandomPerm, 31, 200'000}, hook);
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(worst_components, 1) << "pull variant must keep the system connected";
  EXPECT_EQ(election_outcome(sys).leaders, 1);
}

INSTANTIATE_TEST_SUITE_P(Shapes, PullVariantSweep, ::testing::Range(0, 6));

TEST(Dle, OracleInputMatchesEligibleInitialization) {
  Rng rng(1);
  const Shape shape = shapegen::annulus(3, 1);
  auto sys = Dle::make_system(shape, rng);
  for (ParticleId p = 0; p < sys.particle_count(); ++p) {
    const auto& st = sys.state(p);
    const Node v = sys.body(p).head;
    for (int i = 0; i < 6; ++i) {
      const Node u = grid::neighbor(v, sys.port_dir(p, i));
      const bool is_outer = !shape.contains(u) && shape.face_of(u) == grid::kOuterFace;
      EXPECT_EQ(st.outer[static_cast<std::size_t>(i)], is_outer);
      EXPECT_EQ(st.eligible[static_cast<std::size_t>(i)], !is_outer);
    }
  }
}

}  // namespace
}  // namespace pm::core
