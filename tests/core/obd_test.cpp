// Primitive OBD (paper §5): every particle learns which local boundaries
// border the outer face; rounds O(L_out + D) (Theorem 41).
#include "core/obd/obd.h"

#include <gtest/gtest.h>

#include "core/dle/dle.h"
#include "core/le/le.h"
#include "grid/metrics.h"
#include "shapegen/shapegen.h"

namespace pm::core {
namespace {

using amoebot::ParticleId;
using amoebot::System;
using grid::Node;
using grid::Shape;

// Number of wrongly classified ports vs the geometric oracle.
int oracle_errors(const Shape& shape, const System<DleState>& sys, const ObdRun& obd) {
  int errors = 0;
  for (ParticleId p = 0; p < sys.particle_count(); ++p) {
    const auto got = obd.outer_ports(p);
    const Node v = sys.body(p).head;
    for (int i = 0; i < 6; ++i) {
      const Node u = grid::neighbor(v, sys.port_dir(p, i));
      const bool expect = !shape.contains(u) && shape.face_of(u) == grid::kOuterFace;
      if (got[static_cast<std::size_t>(i)] != expect) ++errors;
    }
  }
  return errors;
}

struct ObdCase {
  const char* name;
  Shape shape;
};

class ObdSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ObdSweep, MatchesOracleOnEveryFamily) {
  const std::uint64_t s = GetParam();
  const std::vector<ObdCase> cases = {
      {"line", shapegen::line(3 + static_cast<int>(s))},
      {"hexagon", shapegen::hexagon(1 + static_cast<int>(s) % 4)},
      {"annulus", shapegen::annulus(3 + static_cast<int>(s) % 4, 1 + static_cast<int>(s) % 2)},
      {"cheese", shapegen::swiss_cheese(4 + static_cast<int>(s) % 3, 1 + static_cast<int>(s) % 3, s)},
      {"blob", shapegen::random_blob(40 + 11 * static_cast<int>(s), s)},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.name);
    Rng rng(s);
    auto sys = System<DleState>::from_shape(c.shape, rng);
    ObdRun obd(sys);
    const auto res = obd.run();
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(oracle_errors(c.shape, sys, obd), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObdSweep, ::testing::Range<std::uint64_t>(1, 7));

TEST(Obd, DetectsOuterAmongMultipleHoles) {
  const Shape shape = shapegen::swiss_cheese(7, 5, 3);
  ASSERT_EQ(shape.hole_count(), 5);
  Rng rng(9);
  auto sys = System<DleState>::from_shape(shape, rng);
  ObdRun obd(sys);
  const auto res = obd.run();
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(oracle_errors(shape, sys, obd), 0);
  EXPECT_GE(res.outer_ring, 0);
}

TEST(Obd, RoundsGrowNearLinearlyInBoundaryPlusDiameter) {
  // Theorem 41: O(L_out + D). The engine's constant varies with watchdog
  // retries; we assert the loose envelope used in EXPERIMENTS.md.
  for (const int r : {3, 5, 7}) {
    const Shape shape = shapegen::hexagon(r);
    Rng rng(1);
    auto sys = System<DleState>::from_shape(shape, rng);
    ObdRun obd(sys);
    const auto res = obd.run();
    ASSERT_TRUE(res.completed);
    const auto m = grid::compute_metrics(shape);
    EXPECT_LE(res.rounds, 200L * (m.l_out + m.d) + 200) << "r=" << r;
  }
}

// --- the full pipeline: OBD -> DLE -> Collect ---

class PipelineSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineSweep, FullPipelineElectsAndReconnects) {
  const std::uint64_t s = GetParam();
  const Shape shape = (s % 2 == 0) ? shapegen::swiss_cheese(5, 2, s)
                                   : shapegen::random_blob(60 + 9 * static_cast<int>(s), s);
  Rng rng(s);
  auto sys = Dle::make_system(shape, rng);
  const PipelineResult res =
      elect_leader(sys, {.use_boundary_oracle = false, .seed = s + 1});
  ASSERT_TRUE(res.completed);
  EXPECT_GT(res.obd_rounds, 0);
  const ElectionOutcome o = election_outcome(sys);
  EXPECT_EQ(o.leaders, 1);
  EXPECT_EQ(sys.component_count(), 1);
  EXPECT_TRUE(sys.all_contracted());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineSweep, ::testing::Range<std::uint64_t>(1, 7));

TEST(Pipeline, OracleVariantSkipsObd) {
  const Shape shape = shapegen::annulus(4, 1);
  const PipelineResult res = elect_leader(shape, {.use_boundary_oracle = true, .seed = 3});
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(res.obd_rounds, 0);
  EXPECT_GT(res.dle_rounds, 0);
  EXPECT_GT(res.collect_rounds, 0);
}

TEST(Pipeline, SingleParticle) {
  const PipelineResult res = elect_leader(shapegen::line(1), {.seed = 1});
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(res.obd_rounds, 0);  // no rings to vote on
}

}  // namespace
}  // namespace pm::core
