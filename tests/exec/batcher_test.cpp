// Batcher / footprint soundness: the conflict footprint must over-approximate
// everything an activation can touch, batch members must be pairwise
// commuting (occupied-node distance >= 4), and jump-ahead planning must
// consume every pending particle exactly once, in a commuting-swaps-only
// reordering of the sequence.
#include "exec/conflict.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <unordered_set>
#include <vector>

#include "amoebot/view.h"
#include "core/dle/dle.h"
#include "shapegen/shapegen.h"

namespace pm::exec {
namespace {

using amoebot::ParticleId;
using amoebot::System;
using amoebot::SystemCore;
using amoebot::TouchList;
using core::Dle;
using core::DleState;
using grid::Node;

// Minimum grid distance between any occupied node of a and any of b.
int body_distance(const SystemCore& sys, ParticleId a, ParticleId b) {
  int best = 1 << 20;
  for (const Node u : {sys.body(a).head, sys.body(a).tail}) {
    for (const Node v : {sys.body(b).head, sys.body(b).tail}) {
      best = std::min(best, grid::grid_distance(u, v));
    }
  }
  return best;
}

TEST(BallOffsets, AreTheDistanceKBalls) {
  const std::size_t expected[] = {7, 19, 37};  // 1 + 6, + 12, + 18
  for (int k = 1; k <= 3; ++k) {
    const auto& offsets = ball_offsets(k);
    EXPECT_EQ(offsets.size(), expected[k - 1]) << "k=" << k;
    std::unordered_set<Node, grid::NodeHash> seen;
    for (const Node o : offsets) {
      EXPECT_LE(grid::grid_distance({0, 0}, o), k);
      EXPECT_TRUE(seen.insert(o).second) << "duplicate offset at k=" << k;
    }
  }
}

TEST(Footprint, CoversHeadAndTailBalls) {
  Rng rng(3);
  auto sys = System<DleState>::from_shape(shapegen::line(3), rng);
  // Expand particle 0 so its footprint spans two balls.
  const Node head = sys.body(0).head;
  for (int i = 0; i < grid::kDirCount; ++i) {
    const Node u = grid::neighbor(head, grid::dir_from_index(i));
    if (!sys.occupied(u)) {
      sys.expand(0, u);
      break;
    }
  }
  ASSERT_TRUE(sys.body(0).expanded());
  std::vector<Node> fp;
  collect_footprint(sys, 0, fp);
  const std::unordered_set<Node, grid::NodeHash> fps(fp.begin(), fp.end());
  for (const Node base : {sys.body(0).head, sys.body(0).tail}) {
    for (const Node o : ball_offsets(2)) {
      EXPECT_TRUE(fps.contains({base.x + o.x, base.y + o.y}));
    }
  }
}

// The soundness precondition for conflict detection: every particle a DLE
// activation actually touches (recorded by the TouchList) must occupy nodes
// inside the a-priori footprint computed before the activation ran.
TEST(Footprint, SupersetOfActualDleTouches) {
  for (const auto& named : shapegen::standard_family(4, 1)) {
    Rng rng(17);
    auto sys = Dle::make_system(named.shape, rng);
    Dle dle;
    std::vector<Node> fp;
    for (int round = 0; round < 2000; ++round) {
      bool all_final = true;
      for (ParticleId p = 0; p < sys.particle_count(); ++p) {
        if (dle.is_final(sys, p)) continue;
        all_final = false;
        fp.clear();
        collect_footprint(sys, p, fp);
        const std::unordered_set<Node, grid::NodeHash> fps(fp.begin(), fp.end());
        TouchList touches;
        amoebot::ParticleView<DleState> view(sys, p, &touches);
        dle.activate(view);
        ASSERT_FALSE(touches.overflowed());
        for (int k = 0; k < touches.size(); ++k) {
          const auto& b = sys.body(touches[k]);
          EXPECT_TRUE(fps.contains(b.head))
              << named.name << ": touched particle outside footprint";
          EXPECT_TRUE(fps.contains(b.tail));
        }
      }
      if (all_final) break;
    }
  }
}

TEST(Batcher, AdjacentParticlesNeverShareABatch) {
  // Three particles in a line are mutually within distance 2: every batch
  // is a singleton, consumed in sequence order.
  Rng rng(5);
  auto sys = System<DleState>::from_shape(shapegen::line(3), rng);
  Batcher batcher(sys);
  std::vector<ParticleId> pending{0, 1, 2};
  const std::vector<char> final_flags(3, 0);
  std::vector<ParticleId> batch;
  batcher.plan_batch(pending, final_flags, batch, 1 << 20);
  EXPECT_EQ(batch, std::vector<ParticleId>{0});
  EXPECT_EQ(pending, (std::vector<ParticleId>{1, 2}));
  batcher.plan_batch(pending, final_flags, batch, 1 << 20);
  EXPECT_EQ(batch, std::vector<ParticleId>{1});
  EXPECT_EQ(pending, std::vector<ParticleId>{2});
}

TEST(Batcher, DistantParticlesShareABatch) {
  SystemCore sys;
  sys.add_particle({0, 0}, 0);
  sys.add_particle({10, 0}, 0);   // far beyond any footprint overlap
  sys.add_particle({20, 0}, 0);
  Batcher batcher(sys);
  std::vector<ParticleId> pending{0, 1, 2};
  const std::vector<char> final_flags(3, 0);
  std::vector<ParticleId> batch;
  batcher.plan_batch(pending, final_flags, batch, 1 << 20);
  EXPECT_EQ(batch, (std::vector<ParticleId>{0, 1, 2}));
  EXPECT_TRUE(pending.empty());
}

TEST(Batcher, BatchWidthCapLeavesTheTailPending) {
  SystemCore sys;
  sys.add_particle({0, 0}, 0);
  sys.add_particle({10, 0}, 0);
  sys.add_particle({20, 0}, 0);
  Batcher batcher(sys);
  std::vector<ParticleId> pending{0, 1, 2};
  const std::vector<char> final_flags(3, 0);
  std::vector<ParticleId> batch;
  batcher.plan_batch(pending, final_flags, batch, 2);
  EXPECT_EQ(batch, (std::vector<ParticleId>{0, 1}));
  EXPECT_EQ(pending, (std::vector<ParticleId>{2}));  // unexamined, in order
  batcher.plan_batch(pending, final_flags, batch, 2);
  EXPECT_EQ(batch, (std::vector<ParticleId>{2}));
  EXPECT_TRUE(pending.empty());
}

TEST(Batcher, JumpAheadCommutesPastConflictsOnly) {
  // 1 conflicts with 0 and is deferred; 2 (far from both) jumps ahead into
  // the first batch; 3 sits within the deferred particle's enlarged claim
  // and must not commute past it.
  SystemCore sys;
  sys.add_particle({0, 0}, 0);
  sys.add_particle({2, 0}, 0);   // distance 2 from 0 -> conflicts
  sys.add_particle({20, 0}, 0);  // independent of everything
  sys.add_particle({5, 0}, 0);   // distance 3 from deferred 1 -> must wait
  Batcher batcher(sys);
  std::vector<ParticleId> pending{0, 1, 2, 3};
  const std::vector<char> final_flags(4, 0);
  std::vector<ParticleId> batch;
  batcher.plan_batch(pending, final_flags, batch, 1 << 20);
  EXPECT_EQ(batch, (std::vector<ParticleId>{0, 2}));
  EXPECT_EQ(pending, (std::vector<ParticleId>{1, 3}));
  // 1 and 3 are at distance 3 — still conflicting, so 3 waits once more.
  batcher.plan_batch(pending, final_flags, batch, 1 << 20);
  EXPECT_EQ(batch, (std::vector<ParticleId>{1}));
  EXPECT_EQ(pending, (std::vector<ParticleId>{3}));
  batcher.plan_batch(pending, final_flags, batch, 1 << 20);
  EXPECT_EQ(batch, (std::vector<ParticleId>{3}));
  EXPECT_TRUE(pending.empty());
}

TEST(Batcher, PartitionsWholeRoundsIntoCommutingBatches) {
  Rng rng(11);
  auto sys = System<DleState>::from_shape(shapegen::hexagon(10), rng);
  const int n = sys.particle_count();
  std::vector<ParticleId> seq(static_cast<std::size_t>(n));
  std::iota(seq.begin(), seq.end(), 0);
  Rng shuffle_rng(23);
  shuffle_rng.shuffle(seq);
  const std::vector<char> final_flags(static_cast<std::size_t>(n), 0);

  Batcher batcher(sys);
  std::vector<ParticleId> pending = seq;
  std::vector<ParticleId> batch;
  std::vector<ParticleId> executed;
  int batches = 0;
  while (!pending.empty()) {
    const std::size_t before = pending.size() + executed.size();
    batcher.plan_batch(pending, final_flags, batch, 1 << 20);
    ASSERT_FALSE(batch.empty()) << "no finals here, so every pass must execute";
    ++batches;
    // Members commute pairwise: occupied-node distance >= 4 (two activations
    // within distance 3 can share a touched particle).
    for (std::size_t i = 0; i < batch.size(); ++i) {
      for (std::size_t j = i + 1; j < batch.size(); ++j) {
        EXPECT_GE(body_distance(sys, batch[i], batch[j]), 4);
      }
    }
    executed.insert(executed.end(), batch.begin(), batch.end());
    ASSERT_EQ(pending.size() + executed.size(), before) << "no loss, no duplication";
  }
  // Every particle executed exactly once.
  auto sorted = executed;
  std::sort(sorted.begin(), sorted.end());
  auto expect = seq;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(sorted, expect);
  // Jump-ahead must beat singleton batching clearly on a dense shape (the
  // conservative distance-5 spacing keeps batches narrow at small radii;
  // width grows quadratically with the shape's diameter).
  EXPECT_LT(batches, n / 3) << "batches should be much wider than singletons";
}

TEST(Batcher, SkipsFinalParticlesUnlessAnEarlierClaimCoversThem) {
  SystemCore sys;
  sys.add_particle({0, 0}, 0);   // member
  sys.add_particle({1, 0}, 0);   // final, adjacent to member -> deferred
  sys.add_particle({10, 0}, 0);  // final, far away -> removed as a no-op
  sys.add_particle({20, 0}, 0);  // independent member
  Batcher batcher(sys);
  std::vector<ParticleId> pending{0, 1, 2, 3};
  const std::vector<char> final_flags{0, 1, 1, 0};
  std::vector<ParticleId> batch;
  batcher.plan_batch(pending, final_flags, batch, 1 << 20);
  EXPECT_EQ(batch, (std::vector<ParticleId>{0, 3}));
  // The adjacent final particle could be unfinalized by the member before
  // its sequential turn — it must stay pending, not be skipped.
  EXPECT_EQ(pending, (std::vector<ParticleId>{1}));
}

}  // namespace
}  // namespace pm::exec
