// ThreadPool: the fork/join parallel-for primitive under the ParallelEngine.
#include "exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace pm::exec {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.thread_count(), threads);
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    pool.for_each_index(257, [&](int i) { hits[static_cast<std::size_t>(i)]++; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ReusableAcrossManyBatches) {
  ThreadPool pool(3);
  std::atomic<long> total{0};
  for (int batch = 0; batch < 200; ++batch) {
    pool.for_each_index(batch % 7, [&](int) { total++; });
  }
  long expect = 0;
  for (int batch = 0; batch < 200; ++batch) expect += batch % 7;
  EXPECT_EQ(total.load(), expect);
}

TEST(ThreadPool, ZeroAndNegativeCountsAreNoOps) {
  ThreadPool pool(2);
  bool ran = false;
  pool.for_each_index(0, [&](int) { ran = true; });
  pool.for_each_index(-3, [&](int) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ClampsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1);
  int sum = 0;
  pool.for_each_index(5, [&](int i) { sum += i; });  // inline, no data race
  EXPECT_EQ(sum, 10);
  EXPECT_GE(ThreadPool::default_thread_count(), 1);
}

TEST(ThreadPool, LoadBalancesUnevenWork) {
  // Indices with wildly different costs must all complete; the shared
  // counter hands indices to whichever thread is free.
  ThreadPool pool(4);
  std::atomic<long long> sum{0};
  pool.for_each_index(64, [&](int i) {
    long long local = 0;
    const int spin = (i % 8 == 0) ? 20000 : 10;
    for (int k = 0; k < spin; ++k) local += k;
    sum += local + i;
  });
  long long expect = 0;
  for (int i = 0; i < 64; ++i) {
    const int spin = (i % 8 == 0) ? 20000 : 10;
    expect += static_cast<long long>(spin) * (spin - 1) / 2 + i;
  }
  EXPECT_EQ(sum.load(), expect);
}

}  // namespace
}  // namespace pm::exec
