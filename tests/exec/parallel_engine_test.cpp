// ParallelEngine differential regression: for any fixed (Order, seed) the
// parallel engine must reproduce the sequential Engine — and therefore the
// seed scheduler run_reference — bit-for-bit: identical rounds, activations,
// moves, completion, peak occupancy extent, and final trajectory, at every
// thread count, order, and occupancy mode.
#include "exec/parallel_engine.h"

#include <gtest/gtest.h>

#include "core/dle/dle.h"
#include "core/le/le.h"
#include "shapegen/shapegen.h"

namespace pm::exec {
namespace {

using amoebot::OccupancyMode;
using amoebot::Order;
using amoebot::ParticleId;
using amoebot::RunResult;
using amoebot::System;
using core::Dle;
using core::DleState;

void expect_identical(const RunResult& par, const RunResult& seq, const char* what) {
  EXPECT_EQ(par.rounds, seq.rounds) << what;
  EXPECT_EQ(par.activations, seq.activations) << what;
  EXPECT_EQ(par.moves, seq.moves) << what;
  EXPECT_EQ(par.completed, seq.completed) << what;
  EXPECT_EQ(par.peak_occupancy_cells, seq.peak_occupancy_cells) << what;
}

template <typename State>
void expect_same_trajectory(const System<State>& a, const System<State>& b,
                            const char* what) {
  ASSERT_EQ(a.particle_count(), b.particle_count()) << what;
  for (ParticleId p = 0; p < a.particle_count(); ++p) {
    ASSERT_EQ(a.body(p).head, b.body(p).head) << what << " p" << p;
    ASSERT_EQ(a.body(p).tail, b.body(p).tail) << what << " p" << p;
  }
}

struct CountToTarget {
  struct State {
    int count = 0;
  };
  int target = 5;

  void activate(amoebot::ParticleView<State>& p) { ++p.self().count; }
  [[nodiscard]] bool is_final(const System<State>& sys, ParticleId p) const {
    return sys.state(p).count >= target;
  }
};

TEST(ParallelEngine, MatchesReferenceOnToyAlgorithm) {
  for (const Order order : {Order::RoundRobin, Order::RandomPerm, Order::RandomStream}) {
    for (const int threads : {1, 2, 4}) {
      const std::uint64_t seed = 7;
      const auto shape = shapegen::hexagon(2);
      Rng rng_a(seed);
      auto sys_a = System<CountToTarget::State>::from_shape(shape, rng_a);
      Rng rng_b(seed);
      auto sys_b = System<CountToTarget::State>::from_shape(shape, rng_b);
      CountToTarget algo_a;
      CountToTarget algo_b;
      const RunResult par = run_parallel(sys_a, algo_a, {order, seed, 1000, threads});
      const RunResult ref =
          amoebot::run_reference(sys_b, algo_b, {order, seed, 1000});
      EXPECT_EQ(par.rounds, ref.rounds)
          << amoebot::order_name(order) << " threads " << threads;
      EXPECT_EQ(par.activations, ref.activations);
      EXPECT_EQ(par.completed, ref.completed);
    }
  }
}

TEST(ParallelEngine, MatchesEngineOnDleAllOrdersAndOccupancies) {
  const auto shapes = shapegen::standard_family(5, 2);
  for (const auto& named : shapes) {
    for (const Order order : {Order::RoundRobin, Order::RandomPerm, Order::RandomStream}) {
      for (const OccupancyMode mode :
           {OccupancyMode::Dense, OccupancyMode::Hash, OccupancyMode::Differential}) {
        Rng rng_a(13);
        auto sys_a = Dle::make_system(named.shape, rng_a, mode);
        Rng rng_b(13);
        auto sys_b = Dle::make_system(named.shape, rng_b, mode);
        Dle dle_a;
        Dle dle_b;
        // inline_batch_below = 2 forces every multi-member batch through the
        // pool + journal path even at these small sizes.
        const RunResult par =
            run_parallel(sys_a, dle_a, {order, 14, 500'000, 4, /*inline*/ 2});
        const RunResult seq = amoebot::run(sys_b, dle_b, {order, 14, 500'000});
        expect_identical(par, seq, named.name.c_str());
        expect_same_trajectory(sys_a, sys_b, named.name.c_str());
        EXPECT_EQ(core::election_outcome(sys_a).leaders,
                  core::election_outcome(sys_b).leaders);
      }
    }
  }
}

TEST(ParallelEngine, MatchesEngineOnPullVariantHandovers) {
  // Handovers journal two occupancy ops for one movement and mutate a second
  // particle's body — the batch machinery's hardest case.
  for (const int threads : {2, 3}) {
    Rng rng_a(29);
    auto sys_a = Dle::make_system(shapegen::annulus(6, 5), rng_a);
    Rng rng_b(29);
    auto sys_b = Dle::make_system(shapegen::annulus(6, 5), rng_b);
    Dle dle_a({.connected_pull = true});
    Dle dle_b({.connected_pull = true});
    const RunResult par = run_parallel(
        sys_a, dle_a, {Order::RandomPerm, 31, 500'000, threads, /*inline*/ 2});
    const RunResult seq = amoebot::run(sys_b, dle_b, {Order::RandomPerm, 31, 500'000});
    EXPECT_TRUE(par.completed);
    expect_identical(par, seq, "pull variant");
    expect_same_trajectory(sys_a, sys_b, "pull variant");
  }
}

TEST(ParallelEngine, MatchesEngineOnIncompleteRuns) {
  Rng rng_a(3);
  auto sys_a = Dle::make_system(shapegen::hexagon(6), rng_a);
  Rng rng_b(3);
  auto sys_b = Dle::make_system(shapegen::hexagon(6), rng_b);
  Dle dle_a;
  Dle dle_b;
  const RunResult par = run_parallel(sys_a, dle_a, {Order::RandomPerm, 5, 4, 4});
  const RunResult seq = amoebot::run(sys_b, dle_b, {Order::RandomPerm, 5, 4});
  EXPECT_FALSE(par.completed);
  expect_identical(par, seq, "incomplete");
  expect_same_trajectory(sys_a, sys_b, "incomplete");
}

// Full pipeline: the parallel DLE stage slots between the round-synchronous
// OBD and Collect engines without perturbing either — per-stage rounds, the
// elected leader, and the final configuration all match the sequential run.
TEST(ParallelEngine, PipelineWithObdAndCollectMatchesSequential) {
  const auto shape = shapegen::swiss_cheese(6, 4, 2024);
  core::PipelineOptions opts;
  opts.use_boundary_oracle = false;
  opts.seed = 8;
  opts.occupancy = OccupancyMode::Dense;

  Rng rng_seq(opts.seed);
  auto sys_seq = Dle::make_system(shape, rng_seq, opts.occupancy);
  const auto seq = core::elect_leader(sys_seq, opts);
  ASSERT_TRUE(seq.completed);

  for (const int threads : {1, 2, 4}) {
    core::PipelineOptions popts = opts;
    popts.threads = threads;
    Rng rng_par(opts.seed);
    auto sys_par = Dle::make_system(shape, rng_par, opts.occupancy);
    const auto par = core::elect_leader(sys_par, popts);
    EXPECT_EQ(par.obd_rounds, seq.obd_rounds) << threads;
    EXPECT_EQ(par.dle_rounds, seq.dle_rounds) << threads;
    EXPECT_EQ(par.collect_rounds, seq.collect_rounds) << threads;
    EXPECT_EQ(par.completed, seq.completed) << threads;
    EXPECT_EQ(par.leader, seq.leader) << threads;
    EXPECT_EQ(par.dle_activations, seq.dle_activations) << threads;
    EXPECT_EQ(par.moves, seq.moves) << threads;
    expect_same_trajectory(sys_par, sys_seq, "pipeline");
  }
}

// Large-n differential (n = 9,919): dense mode, the round-robin order that
// produces the widest batches, 8 threads against the sequential Engine.
TEST(ParallelEngine, LargeHexagonMatchesSequential) {
  const auto shape = shapegen::hexagon(57);
  Rng rng_a(9);
  auto sys_a = Dle::make_system(shape, rng_a, OccupancyMode::Dense);
  Rng rng_b(9);
  auto sys_b = Dle::make_system(shape, rng_b, OccupancyMode::Dense);
  Dle dle_a;
  Dle dle_b;
  const RunResult par =
      run_parallel(sys_a, dle_a, {Order::RoundRobin, 9, 2'000'000, 8});
  const RunResult seq = amoebot::run(sys_b, dle_b, {Order::RoundRobin, 9, 2'000'000});
  EXPECT_TRUE(par.completed);
  expect_identical(par, seq, "hexagon(57)");
  expect_same_trajectory(sys_a, sys_b, "hexagon(57)");
}

// The engine's conflict margins assume pull-only handovers: a push handover
// (handover_expand_head) contracts a particle that never activates, which
// breaks the one-node displacement bound. The guard must reject it at any
// thread count — including width-1 inline batches — while the sequential
// Engine still allows it.
TEST(ParallelEngine, RejectsPushHandovers) {
  struct PushAlgo {
    struct State {
      bool done = false;
    };
    void activate(amoebot::ParticleView<State>& p) {
      if (p.self().done) return;
      p.self().done = true;
      if (p.expanded()) return;
      for (int port = 0; port < 6; ++port) {
        if (!p.occupied_head(port) || p.head_of_nbr_at(port)) continue;
        const ParticleId q = p.nbr_id_head(port);
        if (q != p.id() && !p.is_contracted(q)) {
          p.handover_expand_head(port);
          return;
        }
      }
    }
    [[nodiscard]] bool is_final(const System<State>& sys, ParticleId p) const {
      return sys.state(p).done;
    }
  };
  auto make_sys = [] {
    Rng rng(4);
    auto sys = System<PushAlgo::State>::from_shape(shapegen::line(4), rng);
    // Expand particle 1 away from the line so a neighbor can push into it.
    const grid::Node head = sys.body(1).head;
    for (int i = 0; i < grid::kDirCount; ++i) {
      const grid::Node u = grid::neighbor(head, grid::dir_from_index(i));
      if (!sys.occupied(u)) {
        sys.expand(1, u);
        break;
      }
    }
    return sys;
  };
  {
    auto sys = make_sys();
    PushAlgo algo;
    EXPECT_THROW(run_parallel(sys, algo, {Order::RoundRobin, 1, 10, 2}), CheckError);
    EXPECT_FALSE(sys.parallel_contract()) << "guard must reset after the run";
  }
  {
    auto sys = make_sys();
    PushAlgo algo;
    const RunResult seq = amoebot::run(sys, algo, {Order::RoundRobin, 1, 10});
    EXPECT_TRUE(seq.completed) << "sequential Engine still supports push handovers";
    EXPECT_GE(seq.moves, 1);  // at least one push handover happened in-run
  }
}

// Second contract rule: ports resolve against the live body, so reading the
// neighborhood after a movement reaches beyond the plan-time footprint. The
// guard must reject it under the ParallelEngine; the sequential Engine
// still allows it.
TEST(ParallelEngine, RejectsNeighborhoodAccessAfterMovement) {
  struct MoveThenReadAlgo {
    struct State {
      bool done = false;
    };
    void activate(amoebot::ParticleView<State>& p) {
      if (p.self().done) return;
      p.self().done = true;
      if (p.contracted()) {
        for (int port = 0; port < 6; ++port) {
          if (!p.occupied_head(port)) {
            p.expand_head(port);
            break;
          }
        }
      }
      (void)p.occupied_head(0);  // post-move neighborhood probe
    }
    [[nodiscard]] bool is_final(const System<State>& sys, ParticleId p) const {
      return sys.state(p).done;
    }
  };
  auto make_sys = [] {
    Rng rng(6);
    return System<MoveThenReadAlgo::State>::from_shape(shapegen::line(2), rng);
  };
  {
    auto sys = make_sys();
    MoveThenReadAlgo algo;
    EXPECT_THROW(run_parallel(sys, algo, {Order::RoundRobin, 1, 10, 2}), CheckError);
  }
  {
    auto sys = make_sys();
    MoveThenReadAlgo algo;
    const RunResult seq = amoebot::run(sys, algo, {Order::RoundRobin, 1, 10});
    EXPECT_TRUE(seq.completed) << "sequential Engine allows post-move reads";
  }
}

TEST(ParallelEngine, EmptySystemCompletesImmediately) {
  System<DleState> sys;
  Dle dle;
  const RunResult res = run_parallel(sys, dle, {Order::RandomPerm, 1, 100, 2});
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.rounds, 0);
  EXPECT_EQ(res.activations, 0);
}

TEST(ParallelEngine, ModelViolationsStillThrow) {
  // Two adjacent expanded particles both try an illegal second expand via a
  // broken algorithm; the engine must surface the CheckError, not swallow it
  // on a worker thread.
  struct BrokenAlgo {
    struct State {
      bool done = false;
    };
    void activate(amoebot::ParticleView<State>& p) {
      p.self().done = true;
      p.expand_head(0);
      // Illegal second movement in one activation:
      p.expand_head(1);
    }
    [[nodiscard]] bool is_final(const System<State>& sys, ParticleId p) const {
      return sys.state(p).done;
    }
  };
  // Far-apart particles batch together, so the violation fires on a pool
  // thread and must be re-raised from the commit loop.
  std::vector<grid::Node> nodes;
  for (int i = 0; i < 8; ++i) nodes.push_back({10 * i, 0});
  Rng rng(1);
  auto sys = System<BrokenAlgo::State>::from_shape(grid::Shape(nodes), rng);
  BrokenAlgo algo;
  EXPECT_THROW(run_parallel(sys, algo, {Order::RoundRobin, 1, 10, 4}), CheckError);
}

}  // namespace
}  // namespace pm::exec
