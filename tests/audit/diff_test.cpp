// Trace forensics (pm_diff's engine): self-diff cleanliness, engine
// invariance, exact first-divergence reporting on hand-divergent traces,
// and truncation/outcome divergence classes.
#include "audit/diff.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "audit/trace.h"
#include "pipeline/pipeline.h"
#include "shapegen/shapegen.h"
#include "util/snapshot.h"

namespace pm::audit {
namespace {

using pipeline::Pipeline;
using pipeline::RunContext;
using pipeline::SeedPolicy;

// Records one full-pipeline run over the given shape and returns the trace
// (the trace_test.cpp recorder, plus seed/round knobs for injecting
// controlled divergence).
Snapshot record(const grid::Shape& shape, std::uint64_t seed, int threads = 0,
                long max_rounds = 0) {
  RunContext ctx;
  ctx.initial = shape;
  ctx.seeds = SeedPolicy::unified(seed);
  ctx.threads = threads;
  if (max_rounds > 0) ctx.max_rounds = max_rounds;
  Pipeline pipe = Pipeline::standard(std::move(ctx),
                                     {.use_boundary_oracle = true, .reconnect = false});
  TraceWriter writer;
  writer.attach(pipe);
  const pipeline::PipelineOutcome out = pipe.run();
  writer.finish(out, pipe.context());
  return writer.snapshot();
}

TEST(TraceDiffTest, SelfDiffIsClean) {
  const Snapshot trace = record(shapegen::swiss_cheese(4, 2, 4), 8);
  const TraceDiff d = diff_traces(trace, trace);
  EXPECT_TRUE(d.comparable);
  EXPECT_FALSE(d.diverged);
  EXPECT_TRUE(d.config_note.empty());
  EXPECT_GT(d.rounds_compared, 0);
  EXPECT_NE(format_diff(d).find("traces identical"), std::string::npos);
}

TEST(TraceDiffTest, RepeatRunOfSameSpecIsClean) {
  const Snapshot a = record(shapegen::random_blob(120, 31), 8);
  const Snapshot b = record(shapegen::random_blob(120, 31), 8);
  const TraceDiff d = diff_traces(a, b);
  EXPECT_FALSE(d.diverged) << format_diff(d);
}

TEST(TraceDiffTest, SequentialVersusParallelEngineIsCleanWithConfigNote) {
  // Trajectories are engine-invariant: only the header's thread count may
  // differ, never a frame.
  const Snapshot seq = record(shapegen::random_blob(150, 21), 8, /*threads=*/0);
  const Snapshot par = record(shapegen::random_blob(150, 21), 8, /*threads=*/2);
  const TraceDiff d = diff_traces(seq, par);
  EXPECT_TRUE(d.comparable);
  EXPECT_FALSE(d.diverged) << format_diff(d);
  EXPECT_NE(d.config_note.find("threads: 0 vs 2"), std::string::npos) << d.config_note;
}

TEST(TraceDiffTest, DifferentSeedsReportExactFirstDivergence) {
  // Two seeds on the same shape diverge as soon as the erosion lottery
  // first disagrees; the diff must pin the exact round, a concrete
  // particle (or erosion set), and a named field.
  const Snapshot a = record(shapegen::random_blob(120, 31), 8);
  const Snapshot b = record(shapegen::random_blob(120, 31), 9);
  const TraceDiff d = diff_traces(a, b);
  ASSERT_TRUE(d.comparable);
  ASSERT_TRUE(d.diverged);
  EXPECT_NE(d.config_note.find("seed: 8 vs 9"), std::string::npos) << d.config_note;
  EXPECT_GE(d.round, 1) << "a per-round divergence, not an outcome-only one";
  EXPECT_FALSE(d.field.empty());
  EXPECT_FALSE(d.detail.empty());
  // Every per-round field hangs off a particle except the round-aggregate
  // ones, which carry their own evidence instead.
  if (d.field != "moves" && d.field != "eroded" && d.field != "stage") {
    EXPECT_GE(d.particle, 0) << d.field;
  }
  const std::string report = format_diff(d);
  EXPECT_NE(report.find("first divergence at round"), std::string::npos) << report;

  // The first divergence is an ordered fact: swapping the inputs must find
  // the same round, particle, and field (with the sides flipped in detail).
  const TraceDiff r = diff_traces(b, a);
  EXPECT_EQ(r.round, d.round);
  EXPECT_EQ(r.particle, d.particle);
  EXPECT_EQ(r.field, d.field);
  EXPECT_EQ(r.rounds_compared, d.rounds_compared);
}

TEST(TraceDiffTest, TruncatedRunDivergesAtTheCutBoundary) {
  // Same spec, one run capped early: every pre-cut frame matches, then the
  // capped trace's final frame shows its stage failing (done) where the
  // full run keeps going — a "stage" divergence pinned to the cut round.
  const Snapshot full = record(shapegen::swiss_cheese(4, 2, 4), 8);
  const Snapshot cut = record(shapegen::swiss_cheese(4, 2, 4), 8, 0, /*max_rounds=*/5);
  const TraceDiff d = diff_traces(full, cut);
  ASSERT_TRUE(d.comparable);
  ASSERT_TRUE(d.diverged);
  EXPECT_EQ(d.field, "stage");
  EXPECT_EQ(d.round, 6) << "the first round past the 5-round cap";
  EXPECT_EQ(d.rounds_compared, 6) << "five clean frames, then the boundary frame";
  EXPECT_NE(d.detail.find("(done)"), std::string::npos) << d.detail;
  EXPECT_NE(d.config_note.find("max_rounds"), std::string::npos) << d.config_note;
}

TEST(TraceDiffTest, DifferentShapesAreNotComparable) {
  const Snapshot a = record(shapegen::hexagon(3), 8);
  const Snapshot b = record(shapegen::hexagon(4), 8);
  const TraceDiff d = diff_traces(a, b);
  EXPECT_FALSE(d.comparable);
  EXPECT_FALSE(d.diverged) << "no frame comparison happens across shapes";
  EXPECT_NE(d.config_note.find("initial shape"), std::string::npos) << d.config_note;
  EXPECT_NE(format_diff(d).find("not comparable"), std::string::npos);
}

TEST(TraceDiffTest, SurvivesSerializationRoundTrip) {
  // pm_diff works on files: serialize -> parse must not perturb the diff.
  const Snapshot a = record(shapegen::annulus(6, 3), 8);
  const Snapshot b = record(shapegen::annulus(6, 3), 9);
  const Snapshot a2 = Snapshot::parse(a.serialize());
  const Snapshot b2 = Snapshot::parse(b.serialize());
  const TraceDiff d1 = diff_traces(a, b);
  const TraceDiff d2 = diff_traces(a2, b2);
  EXPECT_EQ(d1.diverged, d2.diverged);
  EXPECT_EQ(d1.round, d2.round);
  EXPECT_EQ(d1.particle, d2.particle);
  EXPECT_EQ(d1.field, d2.field);
  EXPECT_EQ(format_diff(d1), format_diff(d2));
}

}  // namespace
}  // namespace pm::audit
