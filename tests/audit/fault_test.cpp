// Deterministic fault injection: seeded kill/resume plans produce runs
// bit-identical to uninterrupted ones — across engine kinds, occupancy
// modes, and process-image (text) round trips — with clean invariant
// audits throughout, plus the periodic-checkpoint/resume workflow.
#include "audit/fault.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "audit/audit.h"
#include "pipeline/pipeline.h"
#include "scenario/scenario.h"
#include "shapegen/shapegen.h"
#include "util/snapshot.h"

namespace pm::audit {
namespace {

using amoebot::OccupancyMode;
using amoebot::ParticleId;
using pipeline::Pipeline;
using pipeline::RunContext;
using pipeline::SeedPolicy;

// Everything deterministic about a finished run (mirrors checkpoint_test's
// fingerprint): per-stage outcomes plus the full final configuration.
struct Fingerprint {
  std::vector<long> stage_rounds;
  std::vector<long long> stage_activations;
  bool completed = false;
  ParticleId leader = amoebot::kNoParticle;
  long long moves = 0;
  long long peak = 0;
  std::string trajectory;

  bool operator==(const Fingerprint&) const = default;
};

Fingerprint fingerprint(Pipeline& pipe, const pipeline::PipelineOutcome& out) {
  Fingerprint fp;
  for (const auto& s : out.stages) {
    fp.stage_rounds.push_back(s.metrics.rounds);
    fp.stage_activations.push_back(s.metrics.activations);
  }
  fp.completed = out.completed;
  fp.leader = out.leader;
  fp.moves = out.moves;
  fp.peak = out.peak_occupancy_cells;
  if (pipe.context().sys != nullptr) {
    std::ostringstream os;
    const auto& sys = *pipe.context().sys;
    for (ParticleId p = 0; p < sys.particle_count(); ++p) {
      const auto& b = sys.body(p);
      os << b.head << "/" << b.tail << "/" << static_cast<int>(b.ori) << ":"
         << core::pack_dle_state(sys.state(p)) << ";";
    }
    fp.trajectory = os.str();
  }
  return fp;
}

FaultRunner::Factory factory_for(const grid::Shape& shape, bool full, bool reconnect,
                                 std::uint64_t seed = 9) {
  return [shape, full, reconnect, seed](int threads, OccupancyMode occupancy) {
    RunContext ctx;
    ctx.initial = shape;
    ctx.seeds = SeedPolicy::unified(seed);
    ctx.threads = threads;
    ctx.occupancy = occupancy;
    return Pipeline::standard(std::move(ctx),
                              {.use_boundary_oracle = !full, .reconnect = reconnect});
  };
}

Fingerprint reference_run(const FaultRunner::Factory& make) {
  FaultRunner runner(make, FaultPlan{}, 0, amoebot::kDefaultOccupancy);
  const pipeline::PipelineOutcome out = runner.run();
  return fingerprint(runner.pipeline(), out);
}

TEST(FaultInjection, SeededPlansProduceBitIdenticalResults) {
  const grid::Shape shape = shapegen::random_blob(150, 21);
  const auto make = factory_for(shape, false, false);
  const Fingerprint ref = reference_run(make);
  ASSERT_TRUE(ref.completed);
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    FaultPlan plan = FaultPlan::from_seed(seed, 20, 0, amoebot::kDefaultOccupancy);
    FaultRunner runner(make, plan, 0, amoebot::kDefaultOccupancy);
    const auto auditor = Auditor::standard();
    runner.set_auditor(auditor.get());
    const pipeline::PipelineOutcome out = runner.run();
    auditor->finish(out, runner.pipeline().context());
    EXPECT_EQ(fingerprint(runner.pipeline(), out), ref) << "fault seed " << seed;
    EXPECT_TRUE(auditor->clean()) << "fault seed " << seed << ": " << auditor->report();
  }
}

TEST(FaultInjection, SequentialToParallelResumeIsExact) {
  // The acceptance path: a run killed under the sequential engine resumes
  // under exec::ParallelEngine (and back), through the serialized text
  // form, with an auditor attached the whole way.
  const grid::Shape shape = shapegen::random_blob(200, 21);
  const auto make = factory_for(shape, false, false);
  const Fingerprint ref = reference_run(make);
  ASSERT_TRUE(ref.completed);

  FaultPlan plan;
  plan.kills.push_back({.after_round = 3, .resume_threads = 2,
                        .resume_occupancy = amoebot::kDefaultOccupancy,
                        .through_text = true});
  plan.kills.push_back({.after_round = 8, .resume_threads = 0,
                        .resume_occupancy = amoebot::kDefaultOccupancy,
                        .through_text = true});
  FaultRunner runner(make, plan, 0, amoebot::kDefaultOccupancy);
  const auto auditor = Auditor::standard();
  runner.set_auditor(auditor.get());
  const pipeline::PipelineOutcome out = runner.run();
  auditor->finish(out, runner.pipeline().context());
  EXPECT_EQ(runner.kills_executed(), 2);
  EXPECT_EQ(fingerprint(runner.pipeline(), out), ref);
  EXPECT_TRUE(auditor->clean()) << auditor->report();
}

TEST(FaultInjection, FullPipelineSurvivesKillsInEveryStage) {
  // Kills spread across OBD, DLE and Collect of the full composition.
  const grid::Shape shape = shapegen::swiss_cheese(4, 2, 4);
  const auto make = factory_for(shape, true, true, 8);
  const Fingerprint ref = reference_run(make);
  ASSERT_TRUE(ref.completed);
  long total = 0;
  for (const long r : ref.stage_rounds) total += r;
  ASSERT_GT(total, 12);

  FaultPlan plan;
  for (const long at : {1L, total / 3, total / 2, total - 2}) {
    plan.kills.push_back({.after_round = at, .resume_threads = at % 2 == 0 ? 2 : 0,
                          .resume_occupancy = amoebot::kDefaultOccupancy,
                          .through_text = true});
  }
  FaultRunner runner(make, plan, 0, amoebot::kDefaultOccupancy);
  const auto auditor = Auditor::standard();
  runner.set_auditor(auditor.get());
  const pipeline::PipelineOutcome out = runner.run();
  auditor->finish(out, runner.pipeline().context());
  EXPECT_EQ(fingerprint(runner.pipeline(), out), ref);
  EXPECT_TRUE(auditor->clean()) << auditor->report();
}

TEST(FaultInjection, OccupancySwitchPreservesEverythingIncludingThePeakGauge) {
  const grid::Shape shape = shapegen::random_blob(150, 21);
  const auto make = factory_for(shape, false, false);
  const Fingerprint ref = reference_run(make);
  ASSERT_TRUE(ref.completed);

  // A dense → hash → dense round-trip: the hash leg replays the dense
  // growth rule through the geometry shadow, so even the peak-extent
  // gauge matches the uninterrupted run.
  FaultPlan plan;
  plan.kills.push_back({.after_round = 4, .resume_threads = 0,
                        .resume_occupancy = OccupancyMode::Hash, .through_text = true});
  plan.kills.push_back({.after_round = 9, .resume_threads = 0,
                        .resume_occupancy = OccupancyMode::Dense, .through_text = true});
  FaultRunner runner(make, plan, 0, OccupancyMode::Dense);
  const pipeline::PipelineOutcome out = runner.run();
  const Fingerprint got = fingerprint(runner.pipeline(), out);
  EXPECT_EQ(got, ref);
}

TEST(FaultInjection, SeededPlansWithOccupancySwitchesStayExact) {
  // The seeded path through allow_occupancy_switch: plans that flip the
  // occupancy index (and possibly the engine) mid-run must preserve every
  // deterministic quantity, the peak-extent gauge included.
  const grid::Shape shape = shapegen::random_blob(150, 21);
  const auto make = factory_for(shape, false, false);
  const Fingerprint ref = reference_run(make);
  ASSERT_TRUE(ref.completed);
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    FaultPlan plan = FaultPlan::from_seed(seed, 15, 0, amoebot::kDefaultOccupancy,
                                          /*allow_occupancy_switch=*/true);
    FaultRunner runner(make, plan, 0, amoebot::kDefaultOccupancy);
    const pipeline::PipelineOutcome out = runner.run();
    const Fingerprint got = fingerprint(runner.pipeline(), out);
    EXPECT_EQ(got, ref) << "fault seed " << seed;
  }
}

TEST(FaultInjection, PeriodicCheckpointsResumeToTheSameResult) {
  const grid::Shape shape = shapegen::random_blob(150, 21);
  const auto make = factory_for(shape, false, false);
  const Fingerprint ref = reference_run(make);
  const std::string path = ::testing::TempDir() + "/pm_fault_ckpt.snap";

  // First runner checkpoints every 4 rounds; its last checkpoint survives
  // because we stop it mid-run by running only the kill-free prefix.
  {
    FaultRunner writer(make, FaultPlan{}, 0, amoebot::kDefaultOccupancy);
    writer.set_checkpoint(4, path);
    (void)writer.run();  // full run; checkpoints were overwritten then left
  }
  // The completed run left its final periodic checkpoint on disk (the
  // runner itself never deletes; that policy lives in run_scenario). A
  // second runner resumes from it and finishes identically.
  {
    FaultRunner resumer(make, FaultPlan{}, 0, amoebot::kDefaultOccupancy);
    resumer.set_checkpoint(0, path);
    std::string why;
    ASSERT_TRUE(resumer.try_resume(&why)) << why;
    const pipeline::PipelineOutcome out = resumer.run();
    EXPECT_EQ(fingerprint(resumer.pipeline(), out), ref);
  }
  std::remove(path.c_str());
}

TEST(FaultInjection, CorruptCheckpointFallsBackToAFreshRun) {
  const grid::Shape shape = shapegen::hexagon(4);
  const auto make = factory_for(shape, false, false);
  const Fingerprint ref = reference_run(make);
  const std::string path = ::testing::TempDir() + "/pm_fault_corrupt.snap";
  {
    std::ofstream out(path);
    out << "pm-snapshot 1 9999\n1 2 3\n";  // truncated body
  }
  FaultRunner runner(make, FaultPlan{}, 0, amoebot::kDefaultOccupancy);
  runner.set_checkpoint(0, path);
  std::string why;
  EXPECT_FALSE(runner.try_resume(&why));
  EXPECT_NE(why.find("corrupt"), std::string::npos) << why;
  const pipeline::PipelineOutcome out = runner.run();
  EXPECT_EQ(fingerprint(runner.pipeline(), out), ref);
  std::remove(path.c_str());
}

TEST(FaultInjection, ScenarioFaultSeedMatchesUninterruptedTwin) {
  // The Spec-level wiring audit_fuzz rides on: a fault-seeded spec reports
  // the exact Result of its fault-free twin (wall clock aside).
  scenario::Spec spec;
  spec.family = "cheese";
  spec.p1 = 6;
  spec.p2 = 3;
  spec.shape_seed = 11;
  spec.algo = scenario::Algo::DleOracle;
  spec.seed = 11;
  const scenario::Result plain = scenario::run_scenario(spec);
  spec.fault_seed = 0xF00F;
  scenario::RunHooks hooks;
  hooks.audit = true;
  const scenario::Result faulted = scenario::run_scenario(spec, hooks);
  ASSERT_TRUE(plain.completed);
  ASSERT_TRUE(faulted.completed);
  EXPECT_EQ(plain.dle_rounds, faulted.dle_rounds);
  EXPECT_EQ(plain.activations, faulted.activations);
  EXPECT_EQ(plain.moves, faulted.moves);
  EXPECT_EQ(plain.leaders, faulted.leaders);
  EXPECT_EQ(plain.peak_occupancy_cells, faulted.peak_occupancy_cells);
  EXPECT_EQ(faulted.audit_violations, 0);
}

}  // namespace
}  // namespace pm::audit
